// telescope_validation — §4.3's evaluation workflow: validate the inference
// against a telescope whose address space you actually control, scrub the
// result with public activity hit lists, and render the Hilbert map.
#include <cstdio>
#include <fstream>

#include "analysis/hilbert_map.hpp"
#include "pipeline/collector.hpp"
#include "pipeline/evaluation.hpp"
#include "pipeline/hitlists.hpp"
#include "pipeline/inference.hpp"
#include "pipeline/spoof_tolerance.hpp"
#include "sim/simulation.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace mtscope;

int main() {
  sim::Simulation simulation(sim::SimConfig::tiny(31));
  const auto& plan = simulation.plan();

  // A 3-day multi-vantage-point observation window.
  const auto ixps = pipeline::all_ixps(simulation);
  const int days[] = {0, 1, 2};
  const auto stats = pipeline::collect_stats(simulation, ixps, days);
  const std::uint64_t tolerance =
      pipeline::compute_spoof_tolerance(stats, plan.unrouted_slash8s());

  const routing::SpecialPurposeRegistry registry = routing::SpecialPurposeRegistry::standard();
  pipeline::PipelineConfig config;
  config.volume_scale = simulation.config().volume_scale;
  config.spoof_tolerance_pkts = tolerance;
  const pipeline::InferenceEngine engine(config, plan.rib(), registry);
  const auto result = engine.infer(stats);

  // 1. Can we re-discover the operational telescopes?
  std::printf("telescope re-discovery over 3 days (tolerance %llu):\n",
              static_cast<unsigned long long>(tolerance));
  for (const auto& telescope : plan.telescopes()) {
    const auto coverage = pipeline::evaluate_telescope_coverage(result.dark, telescope, nullptr);
    std::printf("  %-5s %6s of %6s /24s inferred (%s)\n", coverage.code.c_str(),
                util::with_commas(coverage.inferred).c_str(),
                util::with_commas(coverage.size).c_str(),
                util::percent(coverage.coverage_of_dark()).c_str());
  }

  // 2. Hit-list scrubbing (Censys / NDT / ISI analogues).
  std::vector<pipeline::HitList> lists;
  for (const auto& spec : pipeline::default_hitlist_specs()) {
    lists.push_back(pipeline::HitList::generate(plan, spec, simulation.config().seed));
    std::printf("hit list %-7s: %s active /24s\n", lists.back().name().c_str(),
                util::with_commas(lists.back().blocks().size()).c_str());
  }
  std::uint64_t removed = 0;
  const auto corrected =
      pipeline::apply_hitlist_correction(result.dark, pipeline::hitlist_union(lists), &removed);

  const auto before = pipeline::evaluate_against_ground_truth(result.dark, plan);
  const auto after = pipeline::evaluate_against_ground_truth(corrected, plan);
  std::printf("\nhit-list correction removed %s blocks: FP rate %s -> %s\n",
              util::with_commas(removed).c_str(),
              util::percent(before.false_positive_rate()).c_str(),
              util::percent(after.false_positive_rate()).c_str());

  // 3. Hilbert map of the telescope /8, final set vs telescope boundary.
  const std::uint8_t slash8 = plan.telescope_slash8();
  const analysis::HilbertMap map(slash8, [&](net::Block24 block) {
    const bool dark = corrected.contains(block);
    const bool marked = (block.index() & 0xffff) / 16384 != 2;  // TUS1's quadrants
    if (dark && marked) return analysis::HilbertPixel::kDarkMarked;
    if (dark) return analysis::HilbertPixel::kDark;
    if (marked) return analysis::HilbertPixel::kMarked;
    return analysis::HilbertPixel::kNoData;
  });
  std::printf("\nHilbert map of %u.0.0.0/8 (telescope boundary marked '+'):\n%s", slash8,
              map.render_ascii(48).c_str());

  std::ofstream pgm("telescope_validation.pgm", std::ios::binary);
  map.write_pgm(pgm);
  std::printf("\nwrote telescope_validation.pgm\n");
  return 0;
}
