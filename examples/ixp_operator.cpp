// ixp_operator — "operating a meta-telescope in your spare time".
//
// The workflow §9 proposes for an IXP operator: every day, feed the fabric's
// sampled flow data through the pipeline, maintain a spoofing tolerance from
// unrouted space, track which prefixes are *stable* members of the
// meta-telescope, and surface an opt-in customer report: which member
// networks sent traffic into inferred-dark space today (likely compromised
// or scanning hosts).
#include <cstdio>
#include <map>

#include "pipeline/inference.hpp"
#include "pipeline/spoof_tolerance.hpp"
#include "sim/simulation.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace mtscope;

int main() {
  sim::Simulation simulation(sim::SimConfig::tiny(99));
  const std::size_t ixp_index = simulation.ixp_index("CE1");
  const sim::Ixp& ixp = simulation.ixps()[ixp_index];
  const auto& plan = simulation.plan();
  const routing::SpecialPurposeRegistry registry = routing::SpecialPurposeRegistry::standard();

  std::printf("operating a meta-telescope at %s (%s, sampling 1:%u)\n\n",
              ixp.spec().code.c_str(), ixp.spec().region.c_str(), ixp.sampling_rate());

  pipeline::VantageStats cumulative(plan.universe_mask());
  trie::Block24Set stable;  // prefixes inferred on every day so far
  bool first_day = true;

  util::TextTable log({"Day", "Flows", "Tolerance", "#Dark today", "#Stable", "Alerts"});

  for (int day = 0; day < 7; ++day) {
    // Today's data, decoded from the fabric's IPFIX stream.
    const sim::IxpDayData data = simulation.run_ixp_day(ixp_index, day);
    pipeline::VantageStats today(plan.universe_mask());
    today.add_flows(data.flows, ixp.sampling_rate(), day);
    cumulative.add_flows(data.flows, ixp.sampling_rate(), day);

    // Daily spoofing tolerance from the two known-unrouted /8s (§7.2).
    const std::uint64_t tolerance =
        pipeline::compute_spoof_tolerance(today, plan.unrouted_slash8s());

    pipeline::PipelineConfig config;
    config.volume_scale = simulation.config().volume_scale;
    config.spoof_tolerance_pkts = tolerance;
    const pipeline::InferenceEngine engine(config, plan.rib(), registry);
    const auto result = engine.infer(today);

    // Stability: the intersection of every daily inference (§7.1's advice
    // for operators who want prefixes they can rely on).
    if (first_day) {
      stable = result.dark;
      first_day = false;
    } else {
      stable &= result.dark;
    }

    // Customer alerting: member-network sources that touched inferred dark
    // space today.  (The "meta-telescope information as a service" of §9.)
    std::map<std::uint32_t, std::uint64_t> alerts_per_as;
    for (const auto& flow : data.flows) {
      if (!result.dark.contains(net::Block24::containing(flow.key.dst))) continue;
      const auto as_index = plan.as_of(net::Block24::containing(flow.key.src));
      if (!as_index) continue;
      if (!ixp.is_member(*as_index)) continue;
      alerts_per_as[plan.ases()[*as_index].asn.value()] += flow.packets;
    }

    log.add_row({std::to_string(day), util::with_commas(data.flows.size()),
                 std::to_string(tolerance), util::with_commas(result.dark.size()),
                 util::with_commas(stable.size()), std::to_string(alerts_per_as.size())});

    if (day == 6 && !alerts_per_as.empty()) {
      std::printf("day 6 opt-in customer report (members whose hosts probed dark space):\n");
      std::size_t shown = 0;
      for (const auto& [asn, packets] : alerts_per_as) {
        if (shown++ >= 5) break;
        const auto* org = [&]() -> const sim::AsInfo* {
          for (const auto& info : plan.ases()) {
            if (info.asn.value() == asn) return &info;
          }
          return nullptr;
        }();
        std::printf("  AS%u (%s): %s sampled packets into meta-telescope space\n", asn,
                    org != nullptr ? org->org_name.c_str() : "?",
                    util::with_commas(packets).c_str());
      }
      std::printf("\n");
    }
  }

  std::printf("%s\n", log.render().c_str());
  std::printf("after a week: %s prefixes inferred on EVERY day at this fabric alone\n",
              util::with_commas(stable.size()).c_str());
  std::printf("(daily intersection is very conservative under 1:%u sampling — most\n"
              " operators will prefer cumulative windows, cf. Table 4's 7-day runs)\n",
              ixp.sampling_rate());
  std::printf("(re-run inference daily: routing and allocations change under you — §7.1)\n");
  return 0;
}
