// Quickstart: build a small simulated Internet, watch one day of flow data
// at two IXPs, and infer meta-telescope prefixes.
//
//   $ ./quickstart [seed]
//
// This is the 60-second tour of the public API:
//   sim::Simulation      — the synthetic Internet + vantage points
//   pipeline::collect_stats — run days through the IPFIX export path
//   pipeline::InferenceEngine — the paper's 7-step pipeline
//   pipeline::evaluate_against_ground_truth — how well did we do?
#include <cstdio>
#include <cstdlib>

#include "pipeline/collector.hpp"
#include "pipeline/evaluation.hpp"
#include "pipeline/inference.hpp"
#include "sim/simulation.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace mtscope;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  // 1. A small simulated Internet: one general /8 plus the legacy /8, the
  //    telescope /8 and two unrouted /8s, observed by two IXPs.
  sim::Simulation simulation(sim::SimConfig::tiny(seed));
  const sim::AddressPlan& plan = simulation.plan();
  std::printf("universe: %s allocated /24s (%s dark, %s active) in %zu ASes\n",
              util::with_commas(plan.allocated_blocks().size()).c_str(),
              util::with_commas(plan.dark_blocks().size()).c_str(),
              util::with_commas(plan.active_blocks().size()).c_str(), plan.ases().size());

  // 2. Collect one day of decoded IPFIX flows from both vantage points.
  const auto ixps = pipeline::all_ixps(simulation);
  const int days[] = {0};
  const pipeline::VantageStats stats = pipeline::collect_stats(simulation, ixps, days);
  std::printf("collected %s flows covering %s /24s\n",
              util::with_commas(stats.flows_ingested()).c_str(),
              util::with_commas(stats.blocks().size()).c_str());

  // 3. Run the seven-step inference pipeline.
  const routing::SpecialPurposeRegistry registry = routing::SpecialPurposeRegistry::standard();
  pipeline::PipelineConfig config;
  config.volume_scale = simulation.config().volume_scale;
  const pipeline::InferenceEngine engine(config, plan.rib(), registry);
  const pipeline::InferenceResult result = engine.infer(stats);

  std::printf("pipeline: seen %s -> dark %s, unclean %s, gray %s\n",
              util::with_commas(result.funnel.seen).c_str(),
              util::with_commas(result.dark.size()).c_str(),
              util::with_commas(result.unclean).c_str(),
              util::with_commas(result.gray).c_str());

  // 4. Score against the simulator's ground truth (a luxury the real
  //    Internet never grants).
  const auto eval = pipeline::evaluate_against_ground_truth(result.dark, plan);
  std::printf("ground truth: %s truly dark, %s active (false-positive rate %s)\n",
              util::with_commas(eval.truly_dark).c_str(),
              util::with_commas(eval.truly_active).c_str(),
              util::percent(eval.false_positive_rate()).c_str());

  // 5. A few example meta-telescope prefixes.
  std::printf("example meta-telescope prefixes:\n");
  std::size_t shown = 0;
  result.dark.for_each([&](net::Block24 block) {
    if (shown++ < 5) std::printf("  %s\n", block.to_string().c_str());
  });
  return 0;
}
