// scan_campaign_analysis — the §8 use case: once a meta-telescope exists,
// its traffic answers measurement questions no single telescope can, e.g.
// "which ports are being hunted, and WHERE?"  This example detects the
// Satori-style campaign the simulator hides in African address space.
#include <algorithm>
#include <cstdio>

#include "analysis/ports.hpp"
#include "pipeline/collector.hpp"
#include "pipeline/inference.hpp"
#include "pipeline/spoof_tolerance.hpp"
#include "sim/simulation.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace mtscope;

int main() {
  // Full-scale universe: regional campaigns need enough per-region dark
  // space to be statistically visible (takes ~15s to simulate a fleet-day).
  sim::Simulation simulation(sim::SimConfig{});
  const auto& plan = simulation.plan();

  // Build the meta-telescope from one day of data at all vantage points.
  const auto ixps = pipeline::all_ixps(simulation);
  const int days[] = {0};
  const auto stats = pipeline::collect_stats(simulation, ixps, days);
  const std::uint64_t tolerance =
      pipeline::compute_spoof_tolerance(stats, plan.unrouted_slash8s());

  const routing::SpecialPurposeRegistry registry = routing::SpecialPurposeRegistry::standard();
  pipeline::PipelineConfig config;
  config.volume_scale = simulation.config().volume_scale;
  config.spoof_tolerance_pkts = tolerance;
  const pipeline::InferenceEngine engine(config, plan.rib(), registry);
  const auto result = engine.infer(stats);
  std::printf("meta-telescope: %s dark /24s across the simulated Internet\n\n",
              util::with_commas(result.dark.size()).c_str());

  // Feed the same flows back through the regional port-activity analysis.
  const auto pfx2as = plan.make_pfx2as();
  analysis::PortActivity activity(plan.geodb(), plan.nettypes(), pfx2as);
  for (const std::size_t i : ixps) {
    activity.add_flows(simulation.run_ixp_day(i, 0).flows, result.dark);
  }

  // Campaign detector: a port whose within-region share is a large multiple
  // of its global share is a regionally targeted campaign.
  std::printf("regionally targeted ports (share in region >> global share):\n");
  struct Finding {
    geo::Continent region;
    std::uint16_t port;
    double lift;
    double regional_share;
  };
  std::vector<Finding> findings;
  for (const std::uint16_t port : activity.joint_top_ports_by_region(16)) {
    const double global =
        static_cast<double>([&] {
          std::uint64_t sum = 0;
          for (const geo::Continent c : geo::kAllContinents) sum += activity.count(c, port);
          return sum;
        }()) /
        std::max<std::uint64_t>(1, activity.grand_total());
    if (global <= 0.0) continue;
    for (const geo::Continent c : geo::kAllContinents) {
      if (activity.total(c) < 200) continue;  // too little data to judge
      const double regional = activity.share(c, port);
      const double lift = regional / global;
      if (lift > 2.5 && regional > 0.01) {
        findings.push_back({c, port, lift, regional});
      }
    }
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) { return a.lift > b.lift; });
  for (const Finding& f : findings) {
    std::printf("  port %-6u in %-3s: %s of regional traffic (%.1fx its global share)\n",
                f.port, std::string(geo::continent_code(f.region)).c_str(),
                util::percent(f.regional_share).c_str(), f.lift);
  }

  const bool satori = std::any_of(findings.begin(), findings.end(), [](const Finding& f) {
    return f.region == geo::Continent::kAfrica && (f.port == 37215 || f.port == 52869);
  });
  std::printf("\n%s\n", satori
                            ? "=> Satori-style campaign detected: ports 37215/52869 hammering "
                              "African space (matches §8.1)"
                            : "=> no strong regional campaign found on 37215/52869 (check "
                              "volumes)");
  return 0;
}
