# End-to-end check of the streaming CLI pipeline: `mtscope stream` writes
# a two-day tiny-sim flow stream, `mtscope ingest` consumes it publishing
# one snapshot per day, and `mtscope query` classifies IPs from the final
# published epoch — the full produce -> ingest -> serve loop with only the
# shipped binaries.  Invoked by the ingest_publish_check ctest registered
# in the top-level CMakeLists:
#   cmake -DCLI=<mtscope_cli> -DOUT_DIR=<scratch dir> -P ingest_publish_check.cmake
if(NOT DEFINED CLI)
  message(FATAL_ERROR "pass -DCLI=<path to mtscope_cli>")
endif()
if(NOT DEFINED OUT_DIR)
  set(OUT_DIR "${CMAKE_CURRENT_BINARY_DIR}")
endif()

set(stream "${OUT_DIR}/ingest_publish_check.mtfl")
set(snapshot "${OUT_DIR}/ingest_publish_check.snap")
set(metrics "${OUT_DIR}/ingest_publish_check.metrics.json")
file(REMOVE "${stream}" "${snapshot}" "${snapshot}.tmp" "${metrics}")

execute_process(
  COMMAND "${CLI}" stream --scale tiny --seed 7 --days 2 --out "${stream}"
  RESULT_VARIABLE status
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "mtscope_cli stream failed (${status}):\n${stdout}\n${stderr}")
endif()
if(NOT EXISTS "${stream}")
  message(FATAL_ERROR "stream --out did not create ${stream}")
endif()

execute_process(
  COMMAND "${CLI}" ingest --source "${stream}" --snapshot-out "${snapshot}"
          --window-days 2 --metrics-out "${metrics}"
  RESULT_VARIABLE status
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "mtscope_cli ingest failed (${status}):\n${stdout}\n${stderr}")
endif()
if(NOT EXISTS "${snapshot}")
  message(FATAL_ERROR "ingest did not publish ${snapshot}")
endif()
if(EXISTS "${snapshot}.tmp")
  message(FATAL_ERROR "ingest left its staging file behind: ${snapshot}.tmp")
endif()

# One epoch per completed day, no failures, and the daemon said so both on
# stdout (the totals summary) and in its metrics snapshot.  (The failure
# counter is lazily registered, so a clean run simply omits it.)
string(FIND "${stdout}" "2 epoch(s) published (0 failure(s))" at)
if(at EQUAL -1)
  message(FATAL_ERROR "expected 2 clean publishes in the ingest summary:\n${stdout}\n${stderr}")
endif()
file(READ "${metrics}" json)
foreach(needle
    "\"ingest.publish.epochs\": 2"
    "\"ingest.days\": 2"
    "\"ingest.window.days\""
    "\"ingest.publish_us\"")
  string(FIND "${json}" "${needle}" at)
  if(at EQUAL -1)
    message(FATAL_ERROR "ingest metrics missing ${needle}:\n${json}")
  endif()
endforeach()
string(FIND "${json}" "\"ingest.publish.failures\"" at)
if(NOT at EQUAL -1)
  message(FATAL_ERROR "clean run registered a publish failure:\n${json}")
endif()

# The published epoch must serve: classify a mix of IPs from it.
execute_process(
  COMMAND "${CLI}" query --snapshot "${snapshot}" --ips -
  INPUT_FILE /dev/null
  RESULT_VARIABLE status
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "mtscope_cli query failed on the published snapshot (${status}):\n${stdout}\n${stderr}")
endif()

file(REMOVE "${stream}" "${snapshot}" "${metrics}")
message(STATUS "ingest publish pipeline OK: 2 epochs through ${snapshot}")
