# Regression gate over bench/micro_analytics's BENCH_analytics.json.
#
# Two tiers, mirroring cmake/parallel_gate.cmake:
#
#   * Correctness + coverage gate, always on: bit_identical must be true
#     (the parallel matrix matched the serial oracle, build_analytics was
#     deterministic across repetitions, and the ANALYTICS section
#     round-tripped byte-identically), the workload must have ingested
#     flows and produced matrix cells, and every timed stage must carry a
#     positive measurement — a silently-skipped or degenerate bench fails
#     loudly.
#   * Tap overhead ceiling, context-gated: the analytics tap may slow the
#     collect by at most TAP_OVERHEAD_CEILING_PCT percent (default 150) —
#     but only when the recorded meta block says the bench had at least
#     MIN_CORES_FOR_RATIO effective cores.  On an oversubscribed
#     single-core container the off/on delta measures scheduler weather,
#     not the tap.
#
#   cmake -DBENCH_JSON=<path> [-DTAP_OVERHEAD_CEILING_PCT=150] \
#         [-DMIN_CORES_FOR_RATIO=2] -P analytics_gate.cmake
#
# The ceiling is deliberately generous: it catches the tap accidentally
# becoming a second collect pass (the regression class this gate exists
# for), not run-to-run noise.  Tighten only with pinned CI hardware.
if(NOT DEFINED BENCH_JSON)
  message(FATAL_ERROR "pass -DBENCH_JSON=<path to BENCH_analytics.json>")
endif()
if(NOT DEFINED TAP_OVERHEAD_CEILING_PCT)
  set(TAP_OVERHEAD_CEILING_PCT 150)
endif()
if(NOT DEFINED MIN_CORES_FOR_RATIO)
  set(MIN_CORES_FOR_RATIO 2)
endif()

if(NOT EXISTS "${BENCH_JSON}")
  message(FATAL_ERROR "bench output missing: ${BENCH_JSON}")
endif()
file(READ "${BENCH_JSON}" json)

# cmake's math() is integer-only; truncate fractional parts when a whole
# number is all the comparison needs (negative overhead truncates toward
# zero, which is fine for a ceiling check).
function(json_int out_var)
  string(JSON value ERROR_VARIABLE err GET "${json}" ${ARGN})
  if(err)
    message(FATAL_ERROR "BENCH_analytics.json missing ${ARGN}: ${err}")
  endif()
  string(REGEX REPLACE "\\..*$" "" value "${value}")
  if(value STREQUAL "" OR value STREQUAL "-")
    set(value 0)
  endif()
  set(${out_var} "${value}" PARENT_SCOPE)
endfunction()

# -- correctness + coverage gate (always on) ---------------------------------
string(JSON bit_identical ERROR_VARIABLE err GET "${json}" bit_identical)
if(err)
  message(FATAL_ERROR "BENCH_analytics.json missing bit_identical: ${err}")
endif()
if(NOT bit_identical STREQUAL "ON" AND NOT bit_identical STREQUAL "true")
  message(FATAL_ERROR
    "analytics gate: bit_identical=${bit_identical} - the matrix, the rollup "
    "or the ANALYTICS codec diverged from its reference")
endif()

json_int(flows workload flows)
json_int(rx_cells workload rx_cells)
if(flows LESS_EQUAL 0 OR rx_cells LESS_EQUAL 0)
  message(FATAL_ERROR
    "analytics gate: degenerate workload (flows=${flows}, rx_cells=${rx_cells}) - "
    "the tap did not actually populate a matrix")
endif()

json_int(collect_ms tap collect_ms)
json_int(rollup_ms rollup build_ms)
if(collect_ms LESS_EQUAL 0 OR rollup_ms LESS 0)
  message(FATAL_ERROR
    "analytics gate: degenerate measurement (tap collect_ms=${collect_ms}, "
    "rollup build_ms=${rollup_ms})")
endif()

json_int(kept_cells rollup kept_cells)
json_int(scanners rollup scanners)
if(kept_cells LESS_EQUAL 0 OR scanners LESS_EQUAL 0)
  message(FATAL_ERROR
    "analytics gate: empty rollup (kept_cells=${kept_cells}, "
    "scanners=${scanners}) - the meta-telescope intersect produced nothing")
endif()

# -- tap overhead ceiling (only when the hardware context supports it) -------
json_int(cores meta effective_cores)
json_int(overhead_pct tap overhead_pct)
if(cores GREATER_EQUAL MIN_CORES_FOR_RATIO)
  if(overhead_pct GREATER TAP_OVERHEAD_CEILING_PCT)
    message(FATAL_ERROR
      "analytics gate: tap overhead ${overhead_pct}% above ceiling "
      "${TAP_OVERHEAD_CEILING_PCT}% on a ${cores}-core host - the analytics "
      "tap regressed the collect path")
  endif()
  message(STATUS
    "analytics gate OK: bit_identical, flows=${flows}, rx_cells=${rx_cells}, "
    "kept_cells=${kept_cells}, tap overhead ${overhead_pct}% "
    "(ceiling ${TAP_OVERHEAD_CEILING_PCT}%, cores=${cores})")
else()
  message(STATUS
    "analytics gate OK: bit_identical, flows=${flows}, rx_cells=${rx_cells}, "
    "kept_cells=${kept_cells}; tap overhead ${overhead_pct}% recorded "
    "(ceiling not enforced: cores=${cores}, need >= ${MIN_CORES_FOR_RATIO})")
endif()
