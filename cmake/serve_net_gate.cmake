# Perf-regression gate over bench/micro_serve_net's BENCH_serve_net.json:
# fail CI when the serve plane's measured throughput drops below a floor,
# the load generator's uncontended p99 latency blows past a ceiling on
# either protocol curve, or the MTBIN binary protocol loses its pipelined
# single-reactor duel against the line protocol (binary exists to shed
# per-request text parsing; losing to it means the codec regressed).
# Correctness fields (mismatches, failed clients, reload count) are
# re-checked too — the bench enforces them itself, but the gate makes a
# silently-skipped bench impossible to miss.
#
#   cmake -DBENCH_JSON=<path> [-DQPS_FLOOR=50000] [-DP99_CEIL_US=250000] \
#         [-DBIN_RATIO_PCT_FLOOR=100] -P serve_net_gate.cmake
#
# The floor/ceiling defaults are deliberately loose: they catch collapse
# (an accidental O(n) wakeup, a lost reactor, an event-loop busy spin),
# not noise.  Tighten them only with pinned CI hardware.
if(NOT DEFINED BENCH_JSON)
  message(FATAL_ERROR "pass -DBENCH_JSON=<path to BENCH_serve_net.json>")
endif()
if(NOT DEFINED QPS_FLOOR)
  set(QPS_FLOOR 50000)
endif()
if(NOT DEFINED P99_CEIL_US)
  set(P99_CEIL_US 250000)
endif()
if(NOT DEFINED BIN_RATIO_PCT_FLOOR)
  # binary >= 1.0x line at the uncontended pipelined duel (best-of reps).
  set(BIN_RATIO_PCT_FLOOR 100)
endif()

if(NOT EXISTS "${BENCH_JSON}")
  message(FATAL_ERROR "bench output missing: ${BENCH_JSON}")
endif()
file(READ "${BENCH_JSON}" json)

# cmake's math() is integer-only; qps values are floats, so truncate the
# fractional part before comparing.
function(json_int out_var)
  string(JSON value ERROR_VARIABLE err GET "${json}" ${ARGN})
  if(err)
    message(FATAL_ERROR "BENCH_serve_net.json missing ${ARGN}: ${err}")
  endif()
  string(REGEX REPLACE "\\..*$" "" value "${value}")
  set(${out_var} "${value}" PARENT_SCOPE)
endfunction()

# -- correctness re-check ----------------------------------------------------
json_int(mismatched mismatched_batches)
json_int(failed failed_clients)
json_int(reloads reloads)
if(NOT mismatched EQUAL 0 OR NOT failed EQUAL 0)
  message(FATAL_ERROR
    "serve_net gate: correctness failure recorded "
    "(mismatched_batches=${mismatched}, failed_clients=${failed})")
endif()
if(NOT reloads EQUAL 1)
  message(FATAL_ERROR
    "serve_net gate: expected exactly 1 mid-run hot reload, saw ${reloads}")
endif()

# -- throughput floor --------------------------------------------------------
json_int(qps aggregate_qps)
if(qps LESS QPS_FLOOR)
  message(FATAL_ERROR
    "serve_net gate: aggregate_qps ${qps} below floor ${QPS_FLOOR} - "
    "the serve plane regressed")
endif()

# -- protocol duel: binary must hold >= BIN_RATIO_PCT_FLOOR% of line qps
#    at the uncontended pipelined single-reactor stage ------------------------
json_int(bin_ratio_pct binary_over_line_pct)
if(bin_ratio_pct LESS BIN_RATIO_PCT_FLOOR)
  message(FATAL_ERROR
    "serve_net gate: binary_over_line ${bin_ratio_pct}% below floor "
    "${BIN_RATIO_PCT_FLOOR}% - the MTBIN pipeline regressed against the line protocol")
endif()

# -- loadgen curves (one per protocol): zero errors everywhere, p99 ceiling
#    on the lightest step (heavier steps may legitimately queue; the
#    uncontended step is the stable latency signal) ---------------------------
set(p99_report "")
foreach(curve loadgen loadgen_binary)
  string(JSON step_count ERROR_VARIABLE err LENGTH "${json}" ${curve} steps)
  if(err OR step_count EQUAL 0)
    message(FATAL_ERROR "BENCH_serve_net.json has no ${curve} steps: ${err}")
  endif()
  math(EXPR last_step "${step_count} - 1")
  foreach(i RANGE ${last_step})
    json_int(step_errors ${curve} steps ${i} errors)
    if(NOT step_errors EQUAL 0)
      message(FATAL_ERROR
        "serve_net gate: ${curve} step ${i} recorded ${step_errors} error(s)")
    endif()
  endforeach()
  json_int(p99 ${curve} steps 0 latency_us p99)
  json_int(first_target ${curve} steps 0 target)
  if(p99 GREATER P99_CEIL_US)
    message(FATAL_ERROR
      "serve_net gate: ${curve} p99 ${p99}us at the lightest step (${first_target} q/s) "
      "exceeds ceiling ${P99_CEIL_US}us - serve latency regressed")
  endif()
  string(APPEND p99_report "${curve} p99=${p99}us ")
endforeach()

json_int(ratio_pct_x100 multi_over_single)  # informational only (single-core CI)
message(STATUS
  "serve_net gate OK: aggregate_qps=${qps} (floor ${QPS_FLOOR}), "
  "binary_over_line=${bin_ratio_pct}% (floor ${BIN_RATIO_PCT_FLOOR}%), "
  "lightest-step ${p99_report}(ceiling ${P99_CEIL_US}us)")
