# Perf-regression gate over bench/micro_parallel's BENCH_parallel.json.
#
# Two tiers, because the two claims need different hardware to support
# them:
#
#   * Correctness + coverage gate, always on: bit_identical must be true,
#     the workload must actually have ingested flows and produced blocks,
#     and every parallel row must carry a positive measurement — a
#     silently-skipped or degenerate bench fails loudly.
#   * Speedup floor, context-gated: parallel rows with threads >= 2 must
#     reach SPEEDUP_FLOOR_PCT (percent of the serial reference, default
#     100 = parity) — but only when the recorded meta block says the bench
#     ran with at least MIN_CORES_FOR_RATIO effective cores.  A single-core
#     container cannot be asked for multicore speedups; demanding them
#     there would gate on scheduler weather, not regressions.  The
#     single-worker batched row (threads == 1) is exempt from the floor on
#     any hardware: it shares the serial row's core budget, so its ratio
#     is informative but noise-bound.
#
#   cmake -DBENCH_JSON=<path> [-DSPEEDUP_FLOOR_PCT=100] \
#         [-DMIN_CORES_FOR_RATIO=2] -P parallel_gate.cmake
#
# The floor is deliberately parity, not a target speedup: it catches the
# parallel path losing to serial (the regression this PR's refactor
# removed), not runner noise.  Tighten only with pinned CI hardware.
if(NOT DEFINED BENCH_JSON)
  message(FATAL_ERROR "pass -DBENCH_JSON=<path to BENCH_parallel.json>")
endif()
if(NOT DEFINED SPEEDUP_FLOOR_PCT)
  set(SPEEDUP_FLOOR_PCT 100)
endif()
if(NOT DEFINED MIN_CORES_FOR_RATIO)
  set(MIN_CORES_FOR_RATIO 2)
endif()

if(NOT EXISTS "${BENCH_JSON}")
  message(FATAL_ERROR "bench output missing: ${BENCH_JSON}")
endif()
file(READ "${BENCH_JSON}" json)

# cmake's math() is integer-only; truncate fractional parts when a whole
# number is all the comparison needs.
function(json_int out_var)
  string(JSON value ERROR_VARIABLE err GET "${json}" ${ARGN})
  if(err)
    message(FATAL_ERROR "BENCH_parallel.json missing ${ARGN}: ${err}")
  endif()
  string(REGEX REPLACE "\\..*$" "" value "${value}")
  set(${out_var} "${value}" PARENT_SCOPE)
endfunction()

# Ratios need the fractional part (1.02x vs 0.98x is the whole question),
# so read them as integer percent: "1.07" -> 107, "0.89" -> 89, "2" -> 200.
function(json_pct out_var)
  string(JSON value ERROR_VARIABLE err GET "${json}" ${ARGN})
  if(err)
    message(FATAL_ERROR "BENCH_parallel.json missing ${ARGN}: ${err}")
  endif()
  if(value MATCHES "^([0-9]+)\\.([0-9]+)")
    set(int_part "${CMAKE_MATCH_1}")
    string(SUBSTRING "${CMAKE_MATCH_2}00" 0 2 frac)
    string(REGEX REPLACE "^0+" "" frac "${frac}")
    if(frac STREQUAL "")
      set(frac 0)
    endif()
    math(EXPR pct "(${int_part} * 100) + ${frac}")
  elseif(value MATCHES "^[0-9]+$")
    math(EXPR pct "${value} * 100")
  else()
    message(FATAL_ERROR "BENCH_parallel.json ${ARGN} is not a number: ${value}")
  endif()
  set(${out_var} "${pct}" PARENT_SCOPE)
endfunction()

# -- correctness + coverage gate (always on) ---------------------------------
string(JSON bit_identical ERROR_VARIABLE err GET "${json}" bit_identical)
if(err)
  message(FATAL_ERROR "BENCH_parallel.json missing bit_identical: ${err}")
endif()
if(NOT bit_identical STREQUAL "ON" AND NOT bit_identical STREQUAL "true")
  message(FATAL_ERROR
    "parallel gate: bit_identical=${bit_identical} - a parallel configuration "
    "diverged from the serial reference output")
endif()

json_int(flows workload flows)
json_int(blocks workload blocks)
if(flows LESS_EQUAL 0 OR blocks LESS_EQUAL 0)
  message(FATAL_ERROR
    "parallel gate: degenerate workload (flows=${flows}, blocks=${blocks}) - "
    "the bench did not actually collect anything")
endif()

string(JSON row_count ERROR_VARIABLE err LENGTH "${json}" parallel)
if(err OR row_count EQUAL 0)
  message(FATAL_ERROR "BENCH_parallel.json has no parallel rows: ${err}")
endif()

# -- speedup floor (only when the hardware context supports the claim) -------
json_int(cores meta effective_cores)
math(EXPR last_row "${row_count} - 1")
set(enforced 0)
foreach(i RANGE ${last_row})
  json_int(threads parallel ${i} threads)
  json_int(collect_ms parallel ${i} collect_ms)
  if(collect_ms LESS_EQUAL 0)
    message(FATAL_ERROR
      "parallel gate: parallel row ${i} (threads=${threads}) recorded "
      "collect_ms=${collect_ms} - the measurement is degenerate")
  endif()
  json_pct(speedup_pct parallel ${i} speedup)
  if(threads GREATER_EQUAL 2 AND cores GREATER_EQUAL MIN_CORES_FOR_RATIO)
    if(speedup_pct LESS SPEEDUP_FLOOR_PCT)
      message(FATAL_ERROR
        "parallel gate: threads=${threads} speedup ${speedup_pct}% below floor "
        "${SPEEDUP_FLOOR_PCT}% on a ${cores}-core host - parallel collect "
        "regressed below the serial path")
    endif()
    math(EXPR enforced "${enforced} + 1")
  else()
    message(STATUS
      "parallel gate: threads=${threads} speedup ${speedup_pct}% recorded "
      "(floor not enforced: cores=${cores}, need >= ${MIN_CORES_FOR_RATIO} "
      "and threads >= 2)")
  endif()
endforeach()

message(STATUS
  "parallel gate OK: bit_identical, flows=${flows}, blocks=${blocks}, "
  "${row_count} parallel row(s), speedup floor enforced on ${enforced} "
  "row(s) (cores=${cores})")
