# End-to-end check of --metrics-out: run the CLI's infer pipeline on the
# tiny universe with the parallel engine engaged, then validate that the
# snapshot it wrote is structurally sound JSON carrying the seven funnel
# counters (the Figure 2 contract).  Invoked by the metrics_snapshot_check
# ctest registered in the top-level CMakeLists:
#   cmake -DCLI=<mtscope_cli> -DOUT_DIR=<scratch dir> -P metrics_snapshot_check.cmake
if(NOT DEFINED CLI)
  message(FATAL_ERROR "pass -DCLI=<path to mtscope_cli>")
endif()
if(NOT DEFINED OUT_DIR)
  set(OUT_DIR "${CMAKE_CURRENT_BINARY_DIR}")
endif()

set(snapshot "${OUT_DIR}/metrics_snapshot_check.json")
file(REMOVE "${snapshot}")

execute_process(
  COMMAND "${CLI}" infer --scale tiny --seed 7 --days 1 --threads 2 --shards 4
          --metrics-out "${snapshot}"
  RESULT_VARIABLE status
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "mtscope_cli infer failed (${status}):\n${stdout}\n${stderr}")
endif()

if(NOT EXISTS "${snapshot}")
  message(FATAL_ERROR "--metrics-out did not create ${snapshot}")
endif()
file(READ "${snapshot}" json)

# Structural sanity: an object from first byte to last, braces balanced.
string(STRIP "${json}" stripped)
if(NOT stripped MATCHES "^\\{")
  message(FATAL_ERROR "snapshot does not start with '{':\n${json}")
endif()
if(NOT stripped MATCHES "\\}$")
  message(FATAL_ERROR "snapshot does not end with '}':\n${json}")
endif()
string(REGEX MATCHALL "\\{" opens "${stripped}")
string(REGEX MATCHALL "\\}" closes "${stripped}")
list(LENGTH opens open_count)
list(LENGTH closes close_count)
if(NOT open_count EQUAL close_count)
  message(FATAL_ERROR
    "snapshot braces unbalanced ({ x${open_count} vs } x${close_count}):\n${json}")
endif()

# The three registry sections and the full seven-step funnel must be there.
foreach(needle
    "\"counters\""
    "\"gauges\""
    "\"timers\""
    "\"funnel.seen\""
    "\"funnel.after_tcp\""
    "\"funnel.after_size\""
    "\"funnel.after_source\""
    "\"funnel.after_reserved\""
    "\"funnel.after_routed\""
    "\"funnel.after_volume\""
    "\"collect.flows\""
    "\"infer.total_us\"")
  string(FIND "${json}" "${needle}" at)
  if(at EQUAL -1)
    message(FATAL_ERROR "snapshot is missing ${needle}:\n${json}")
  endif()
endforeach()

message(STATUS "metrics snapshot OK: ${snapshot}")
