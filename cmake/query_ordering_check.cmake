# Regression check for the query_stream buffering bug: verdicts go to
# buffered stdout and the summary to unbuffered stderr, so before the
# fflush fix a `2>&1` redirection showed the summary *before* the verdicts
# it summarizes.  This script reproduces exactly that redirection through
# the shell and asserts the on-disk order.  It doubles as an end-to-end
# CRLF/whitespace check: the IP list it feeds carries a \r\n line and a
# padded line that must classify normally, plus a signed address that must
# be diagnosed as bad.  Invoked by the query_stream_ordering_check ctest:
#   cmake -DCLI=<mtscope_cli> -DOUT_DIR=<scratch dir> -P query_ordering_check.cmake
if(NOT DEFINED CLI)
  message(FATAL_ERROR "pass -DCLI=<path to mtscope_cli>")
endif()
if(NOT DEFINED OUT_DIR)
  set(OUT_DIR "${CMAKE_CURRENT_BINARY_DIR}")
endif()

find_program(SH_PROGRAM sh)
if(NOT SH_PROGRAM)
  message(FATAL_ERROR "query ordering check needs a POSIX sh for 2>&1 redirection")
endif()

set(snap "${OUT_DIR}/query_ordering_check.snap")
set(ips "${OUT_DIR}/query_ordering_check.ips")
set(merged "${OUT_DIR}/query_ordering_check.out")
file(REMOVE "${snap}" "${ips}" "${merged}")

execute_process(
  COMMAND "${CLI}" infer --scale tiny --seed 7 --snapshot-out "${snap}"
  RESULT_VARIABLE status
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "mtscope_cli infer failed (${status}):\n${stdout}\n${stderr}")
endif()

# CRLF line, padded line, plain line, then garbage: three verdicts and one
# "bad ip" diagnostic (which makes the expected exit status 1).
file(WRITE "${ips}" "10.0.0.1\r\n  192.0.2.7  \n8.8.8.8\n+1.2.3.4\n")

execute_process(
  COMMAND "${SH_PROGRAM}" -c "'${CLI}' query --snapshot '${snap}' --ips '${ips}' > '${merged}' 2>&1"
  RESULT_VARIABLE status)
if(NOT status EQUAL 1)
  message(FATAL_ERROR "expected exit 1 for a list with one bad ip, got ${status}")
endif()

file(READ "${merged}" out)

foreach(needle "10.0.0.1 " "192.0.2.7 " "8.8.8.8 " "bad ip: +1.2.3.4")
  string(FIND "${out}" "${needle}" at)
  if(at EQUAL -1)
    message(FATAL_ERROR "merged output is missing '${needle}':\n${out}")
  endif()
endforeach()

# The ordering pin: the last verdict line must precede the summary.
string(FIND "${out}" "8.8.8.8 " verdict_at)
string(FIND "${out}" "queried 3 ip(s)" summary_at)
if(summary_at EQUAL -1)
  message(FATAL_ERROR "merged output is missing the summary line:\n${out}")
endif()
if(NOT verdict_at LESS summary_at)
  message(FATAL_ERROR
    "summary (offset ${summary_at}) printed before the verdicts (offset ${verdict_at}) — "
    "stdout was not flushed before the stderr summary:\n${out}")
endif()

message(STATUS "query stream ordering OK: ${merged}")
