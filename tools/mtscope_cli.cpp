// mtscope — command-line front end.
//
//   mtscope infer    [--seed N] [--scale tiny|full] [--days K] [--ixps A,B]
//                    [--threads N] [--shards M] [--no-tolerance] [--csv FILE]
//                    [--hilbert OCTET FILE.pgm] [--metrics-out FILE]
//   mtscope capture  [--seed N] [--telescope TUS1|TEU1|TEU2] [--day D] --pcap FILE
//   mtscope datasets [--seed N] [--scale tiny|full] --out-dir DIR
//   mtscope ports    [--seed N] [--scale tiny|full] [--top K]
//
// `infer` runs the full pipeline over simulated vantage-point data and
// emits the meta-telescope prefix list; on a real deployment the same code
// path starts from an IPFIX/NetFlow collector instead of the simulator.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/hilbert_map.hpp"
#include "analysis/ports.hpp"
#include "analysis/world_map.hpp"
#include "net/pcap.hpp"
#include "obs/metrics.hpp"
#include "pipeline/collector.hpp"
#include "pipeline/evaluation.hpp"
#include "pipeline/inference.hpp"
#include "pipeline/parallel.hpp"
#include "pipeline/spoof_tolerance.hpp"
#include "sim/simulation.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace mtscope;

namespace {

struct Options {
  std::string command;
  std::uint64_t seed = 42;
  bool tiny = false;
  int days = 1;
  std::string ixps;             // comma-separated codes; empty = all
  unsigned threads = 1;         // collect/infer worker threads; 1 = serial
  unsigned shards = 0;          // 0 = pick per thread count
  bool tolerance = true;
  std::string csv_path;
  std::string metrics_path;
  int hilbert_octet = -1;
  std::string hilbert_path;
  std::string telescope = "TUS1";
  int day = 0;
  std::string pcap_path;
  std::string out_dir;
  std::size_t top = 10;
};

void usage() {
  std::fprintf(stderr,
               "usage: mtscope <infer|capture|datasets|ports> [options]\n"
               "  common:  --seed N        simulation seed (default 42)\n"
               "           --scale tiny|full\n"
               "  infer:   --days K --ixps CE1,NA1 --no-tolerance --csv FILE\n"
               "           --threads N (parallel collect+infer; default 1 = serial)\n"
               "           --shards M (per-worker stats shards; default: thread count)\n"
               "           --hilbert OCTET FILE.pgm\n"
               "           --metrics-out FILE (pipeline metrics JSON snapshot)\n"
               "  capture: --telescope TUS1|TEU1|TEU2 --day D --pcap FILE\n"
               "  datasets: --out-dir DIR\n"
               "  ports:   --top K\n");
}

bool parse_args(int argc, char** argv, Options& opt) {
  if (argc < 2) return false;
  opt.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--scale") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.tiny = std::strcmp(v, "tiny") == 0;
    } else if (arg == "--days") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.days = std::atoi(v);
    } else if (arg == "--ixps") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.ixps = v;
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.threads = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--shards") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.shards = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--no-tolerance") {
      opt.tolerance = false;
    } else if (arg == "--csv") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.csv_path = v;
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.metrics_path = v;
    } else if (arg == "--hilbert") {
      const char* octet = next();
      const char* path = next();
      if (octet == nullptr || path == nullptr) return false;
      opt.hilbert_octet = std::atoi(octet);
      opt.hilbert_path = path;
    } else if (arg == "--telescope") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.telescope = v;
    } else if (arg == "--day") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.day = std::atoi(v);
    } else if (arg == "--pcap") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.pcap_path = v;
    } else if (arg == "--out-dir") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.out_dir = v;
    } else if (arg == "--top") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.top = static_cast<std::size_t>(std::atoi(v));
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

sim::Simulation make_simulation(const Options& opt) {
  if (opt.tiny) return sim::Simulation(sim::SimConfig::tiny(opt.seed));
  sim::SimConfig config;
  config.seed = opt.seed;
  return sim::Simulation(config);
}

std::vector<std::size_t> select_ixps(const sim::Simulation& simulation, const Options& opt) {
  if (opt.ixps.empty()) return pipeline::all_ixps(simulation);
  std::vector<std::size_t> out;
  for (const auto code : util::split(opt.ixps, ',')) {
    out.push_back(simulation.ixp_index(std::string(util::trim(code))));
  }
  return out;
}

int cmd_infer(const Options& opt) {
  const sim::Simulation simulation = make_simulation(opt);
  const auto ixps = select_ixps(simulation, opt);
  std::vector<int> days;
  for (int d = 0; d < std::max(1, opt.days); ++d) days.push_back(d);

  // Observability is opt-in: without --metrics-out the pipeline runs its
  // uninstrumented (null-registry) hot paths.
  obs::MetricsRegistry metrics_registry;
  obs::MetricsRegistry* metrics = opt.metrics_path.empty() ? nullptr : &metrics_registry;

  pipeline::CollectOptions collect_options;
  collect_options.threads = std::max(1u, opt.threads);
  collect_options.shards = opt.shards > 0 ? opt.shards : collect_options.threads;
  collect_options.metrics = metrics;

  std::fprintf(stderr, "collecting %zu vantage point(s) x %zu day(s) on %u thread(s)...\n",
               ixps.size(), days.size(), collect_options.threads);
  const auto stats = pipeline::collect_stats(simulation, ixps, days, collect_options);

  std::uint64_t tolerance = 0;
  if (opt.tolerance) {
    obs::StageTimer timer(metrics, "pipeline.tolerance_us");
    tolerance =
        pipeline::compute_spoof_tolerance(stats, simulation.plan().unrouted_slash8s());
  }
  const auto registry = routing::SpecialPurposeRegistry::standard();
  pipeline::PipelineConfig config;
  config.volume_scale = simulation.config().volume_scale;
  config.spoof_tolerance_pkts = tolerance;
  const pipeline::InferenceEngine engine(config, simulation.plan().rib(), registry);
  const auto result =
      pipeline::parallel_infer(engine, stats, collect_options.threads, metrics);
  const auto eval = pipeline::evaluate_against_ground_truth(result.dark, simulation.plan());

  std::printf("seen=%s dark=%s unclean=%s gray=%s tolerance=%llu fp-rate=%s\n",
              util::with_commas(result.funnel.seen).c_str(),
              util::with_commas(result.dark.size()).c_str(),
              util::with_commas(result.unclean).c_str(),
              util::with_commas(result.gray).c_str(),
              static_cast<unsigned long long>(tolerance),
              util::percent(eval.false_positive_rate()).c_str());

  if (!opt.csv_path.empty()) {
    std::ofstream out(opt.csv_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", opt.csv_path.c_str());
      return 1;
    }
    util::CsvWriter writer(out);
    writer.write_row({"prefix", "origin_asn", "country"});
    const auto pfx2as = simulation.plan().make_pfx2as();
    result.dark.for_each([&](net::Block24 block) {
      const auto asn = pfx2as.resolve(block);
      const auto country = simulation.plan().geodb().country_of(block);
      writer.write_row({block.to_string(), asn ? std::to_string(asn->value()) : "",
                        country.value_or("")});
    });
    std::fprintf(stderr, "wrote %s\n", opt.csv_path.c_str());
  }

  if (metrics != nullptr) {
    std::ofstream out(opt.metrics_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", opt.metrics_path.c_str());
      return 1;
    }
    metrics_registry.write_json(out);
    out << '\n';
    std::fprintf(stderr, "wrote %s\n", opt.metrics_path.c_str());
  }

  if (opt.hilbert_octet >= 0 && opt.hilbert_octet <= 255 && !opt.hilbert_path.empty()) {
    const analysis::HilbertMap map(
        static_cast<std::uint8_t>(opt.hilbert_octet), [&](net::Block24 block) {
          return result.dark.contains(block) ? analysis::HilbertPixel::kDark
                                             : analysis::HilbertPixel::kNoData;
        });
    std::ofstream out(opt.hilbert_path, std::ios::binary);
    map.write_pgm(out);
    std::fprintf(stderr, "wrote %s\n", opt.hilbert_path.c_str());
  }
  return 0;
}

int cmd_capture(const Options& opt) {
  if (opt.pcap_path.empty()) {
    std::fprintf(stderr, "capture requires --pcap FILE\n");
    return 1;
  }
  const sim::Simulation simulation = make_simulation(opt);
  const auto& telescopes = simulation.plan().telescopes();
  std::size_t index = telescopes.size();
  for (std::size_t t = 0; t < telescopes.size(); ++t) {
    if (telescopes[t].spec.code == opt.telescope) index = t;
  }
  if (index == telescopes.size()) {
    std::fprintf(stderr, "unknown telescope %s\n", opt.telescope.c_str());
    return 1;
  }
  const auto capture = simulation.run_telescope_day(index, opt.day);

  std::ofstream out(opt.pcap_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", opt.pcap_path.c_str());
    return 1;
  }
  net::PcapWriter writer(out);
  for (const auto& p : capture.packets) {
    writer.write(p.timestamp_us,
                 net::synthesize_packet(p.src, p.dst, p.proto, p.src_port, p.dst_port,
                                        p.tcp_flags, p.ip_length));
  }
  std::printf("captured %llu packets from %s day %d into %s\n",
              static_cast<unsigned long long>(writer.packets_written()),
              opt.telescope.c_str(), opt.day, opt.pcap_path.c_str());
  return 0;
}

int cmd_datasets(const Options& opt) {
  if (opt.out_dir.empty()) {
    std::fprintf(stderr, "datasets requires --out-dir DIR (must exist)\n");
    return 1;
  }
  const sim::Simulation simulation = make_simulation(opt);
  const auto& plan = simulation.plan();

  const auto write = [&](const std::string& name, const auto& saver) {
    const std::string path = opt.out_dir + "/" + name;
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return false;
    }
    saver(out);
    std::printf("wrote %s\n", path.c_str());
    return true;
  };

  bool ok = true;
  ok &= write("pfx2as.txt", [&](std::ostream& o) { plan.make_pfx2as().save(o); });
  ok &= write("as2org.txt", [&](std::ostream& o) { plan.make_as2org().save(o); });
  ok &= write("geodb.csv", [&](std::ostream& o) { plan.geodb().save(o); });
  ok &= write("nettypes.csv", [&](std::ostream& o) { plan.nettypes().save(o); });
  return ok ? 0 : 1;
}

int cmd_ports(const Options& opt) {
  const sim::Simulation simulation = make_simulation(opt);
  const auto ixps = pipeline::all_ixps(simulation);
  const int days[] = {0};
  const auto stats = pipeline::collect_stats(simulation, ixps, days);
  const std::uint64_t tolerance =
      pipeline::compute_spoof_tolerance(stats, simulation.plan().unrouted_slash8s());
  const auto registry = routing::SpecialPurposeRegistry::standard();
  pipeline::PipelineConfig config;
  config.volume_scale = simulation.config().volume_scale;
  config.spoof_tolerance_pkts = tolerance;
  const pipeline::InferenceEngine engine(config, simulation.plan().rib(), registry);
  const auto result = engine.infer(stats);

  analysis::PortCounter counter;
  for (const std::size_t i : ixps) {
    for (const auto& flow : simulation.run_ixp_day(i, 0).flows) {
      if (flow.key.proto == net::IpProto::kTcp &&
          result.dark.contains(net::Block24::containing(flow.key.dst))) {
        counter.add(flow.key.dst_port, flow.packets);
      }
    }
  }
  util::TextTable table({"Rank", "Port", "Sampled packets", "Share"});
  const auto top = counter.top(opt.top);
  const std::uint64_t total = counter.total();
  for (std::size_t r = 0; r < top.size(); ++r) {
    table.add_row({"#" + std::to_string(r + 1), std::to_string(top[r].first),
                   util::with_commas(top[r].second),
                   util::percent(static_cast<double>(top[r].second) /
                                 std::max<std::uint64_t>(1, total))});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) {
    usage();
    return 2;
  }
  if (opt.command == "infer") return cmd_infer(opt);
  if (opt.command == "capture") return cmd_capture(opt);
  if (opt.command == "datasets") return cmd_datasets(opt);
  if (opt.command == "ports") return cmd_ports(opt);
  usage();
  return 2;
}
