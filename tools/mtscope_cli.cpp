// mtscope — command-line front end.
//
//   mtscope infer    [--seed N] [--scale tiny|full] [--days K] [--ixps A,B]
//                    [--threads N] [--shards M] [--no-tolerance] [--csv FILE]
//                    [--hilbert OCTET FILE.pgm] [--metrics-out FILE]
//                    [--snapshot-out FILE] [--analytics]
//   mtscope query    --snapshot FILE [--ips FILE|-] [--bench [--lookups N]]
//                    [--metrics-out FILE]
//   mtscope serve    --snapshot FILE --port N [--max-conns N]
//                    [--idle-timeout-ms N] [--watch-interval-ms N]
//                    [--metrics-out FILE]
//   mtscope stream   [--seed N] [--scale tiny|full] [--days K] [--ixps A,B]
//                    --out FILE
//   mtscope ingest   --source FILE --snapshot-out FILE [--window-days N]
//                    [--cadence-days N] [--threads N] [--no-tolerance]
//                    [--max-epochs N] [--metrics-out FILE]
//   mtscope analyze  --snapshot FILE [--query LINE] [--top K]
//   mtscope capture  [--seed N] [--telescope TUS1|TEU1|TEU2] [--day D] --pcap FILE
//   mtscope datasets [--seed N] [--scale tiny|full] --out-dir DIR
//   mtscope ports    [--seed N] [--scale tiny|full] [--top K]
//
// `infer` runs the full pipeline over simulated vantage-point data and
// emits the meta-telescope prefix list; `--snapshot-out` persists the run
// as a versioned binary snapshot (DESIGN.md §10).  `query` is the
// one-shot serving side: it loads a snapshot into a TelescopeIndex and
// answers per-IP classification lookups at memory speed.  `serve` is the
// operated telescope (DESIGN.md §12): a TCP daemon answering the same
// verdicts over a line protocol, with SIGHUP hot reload and graceful
// SIGTERM drain.  `stream` + `ingest` are the continuous-operation pair
// (DESIGN.md §13): `stream` exports simulated vantage-days as a flow
// stream (write it to a FIFO for live producer/consumer operation), and
// `ingest` consumes one, maintains the multi-day window incrementally,
// and atomically republishes `--snapshot-out` on cadence — which a
// watching `serve` picks up with zero operator touches.  On a real
// deployment the same code paths start from an IPFIX/NetFlow collector
// instead of the simulator.  `analyze` reads the ANALYTICS section of a
// snapshot built with `--analytics` (or by `ingest`, which attaches it by
// default) and answers the same `top-ports` / `outages` / `scanners`
// queries the TCP server speaks — one formatter, two front ends
// (DESIGN.md §15).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "analysis/hilbert_map.hpp"
#include "analysis/ports.hpp"
#include "analysis/world_map.hpp"
#include "cli_options.hpp"
#include "ingest/daemon.hpp"
#include "ingest/flow_stream.hpp"
#include "net/pcap.hpp"
#include "obs/metrics.hpp"
#include "pipeline/collector.hpp"
#include "pipeline/evaluation.hpp"
#include "pipeline/inference.hpp"
#include "pipeline/parallel.hpp"
#include "pipeline/spoof_tolerance.hpp"
#include "serve/analytics_format.hpp"
#include "serve/loadgen.hpp"
#include "serve/server.hpp"
#include "serve/snapshot.hpp"
#include "serve/telescope_index.hpp"
#include "serve/wire.hpp"
#include "sim/simulation.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace mtscope;
using cli::Options;

namespace {

sim::Simulation make_simulation(const Options& opt) {
  if (opt.tiny) return sim::Simulation(sim::SimConfig::tiny(opt.seed));
  sim::SimConfig config;
  config.seed = opt.seed;
  return sim::Simulation(config);
}

std::vector<std::size_t> select_ixps(const sim::Simulation& simulation, const Options& opt) {
  if (opt.ixps.empty()) return pipeline::all_ixps(simulation);
  std::vector<std::size_t> out;
  for (const auto code : util::split(opt.ixps, ',')) {
    out.push_back(simulation.ixp_index(std::string(util::trim(code))));
  }
  return out;
}

int cmd_infer(const Options& opt) {
  const sim::Simulation simulation = make_simulation(opt);
  const auto ixps = select_ixps(simulation, opt);
  std::vector<int> days;
  for (int d = 0; d < std::max(1, opt.days); ++d) days.push_back(d);

  // Observability is opt-in: without --metrics-out the pipeline runs its
  // uninstrumented (null-registry) hot paths.
  obs::MetricsRegistry metrics_registry;
  obs::MetricsRegistry* metrics = opt.metrics_path.empty() ? nullptr : &metrics_registry;

  pipeline::CollectOptions collect_options;
  collect_options.threads = std::max(1u, opt.threads);
  collect_options.shards = opt.shards > 0 ? opt.shards : collect_options.threads;
  collect_options.metrics = metrics;
  collect_options.analytics = opt.analytics;

  std::fprintf(stderr, "collecting %zu vantage point(s) x %zu day(s) on %u thread(s)...\n",
               ixps.size(), days.size(), collect_options.threads);
  const auto stats = pipeline::collect_stats(simulation, ixps, days, collect_options);

  std::uint64_t tolerance = 0;
  if (opt.tolerance) {
    obs::StageTimer timer(metrics, "pipeline.tolerance_us");
    tolerance =
        pipeline::compute_spoof_tolerance(stats, simulation.plan().unrouted_slash8s());
  }
  const auto registry = routing::SpecialPurposeRegistry::standard();
  pipeline::PipelineConfig config;
  config.volume_scale = simulation.config().volume_scale;
  config.spoof_tolerance_pkts = tolerance;
  const pipeline::InferenceEngine engine(config, simulation.plan().rib(), registry);
  const auto result =
      pipeline::parallel_infer(engine, stats, collect_options.threads, metrics);
  const auto eval = pipeline::evaluate_against_ground_truth(result.dark, simulation.plan());

  std::printf("seen=%s dark=%s unclean=%s gray=%s tolerance=%llu fp-rate=%s\n",
              util::with_commas(result.funnel.seen).c_str(),
              util::with_commas(result.dark.size()).c_str(),
              util::with_commas(result.unclean).c_str(),
              util::with_commas(result.gray).c_str(),
              static_cast<unsigned long long>(tolerance),
              util::percent(eval.false_positive_rate()).c_str());

  if (!opt.csv_path.empty()) {
    std::ofstream out(opt.csv_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", opt.csv_path.c_str());
      return 1;
    }
    util::CsvWriter writer(out);
    writer.write_row({"prefix", "origin_asn", "country"});
    const auto pfx2as = simulation.plan().make_pfx2as();
    result.dark.for_each([&](net::Block24 block) {
      const auto asn = pfx2as.resolve(block);
      const auto country = simulation.plan().geodb().country_of(block);
      writer.write_row({block.to_string(), asn ? std::to_string(asn->value()) : "",
                        country.value_or("")});
    });
    std::fprintf(stderr, "wrote %s\n", opt.csv_path.c_str());
  }

  if (!opt.snapshot_out.empty()) {
    serve::RunMetadata meta;
    meta.seed = opt.seed;
    meta.threads = collect_options.threads;
    meta.shards = collect_options.shards;
    meta.days = static_cast<std::uint32_t>(days.size());
    meta.spoof_tolerance_pkts = tolerance;
    meta.flows_ingested = stats.flows_ingested();
    meta.created_unix_s = static_cast<std::uint64_t>(std::time(nullptr));
    meta.source = std::string("sim scale=") + (opt.tiny ? "tiny" : "full") +
                  " ixps=" + (opt.ixps.empty() ? "all" : opt.ixps);

    obs::StageTimer build_timer(metrics, "serve.snapshot.build_us");
    auto snapshot = serve::build_snapshot(result, simulation.plan().rib(), meta);
    if (opt.analytics) {
      snapshot.analytics = serve::build_analytics(stats.ibr(), snapshot,
                                                  ingest::plan_labeler(simulation.plan()));
    }
    build_timer.stop();
    obs::StageTimer write_timer(metrics, "serve.snapshot.write_us");
    const auto written = serve::write_snapshot_file(snapshot, opt.snapshot_out);
    write_timer.stop();
    if (!written.ok()) {
      std::fprintf(stderr, "cannot write snapshot: %s\n", written.error().to_string().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s (%llu bytes, %zu blocks, %zu prefixes)\n",
                 opt.snapshot_out.c_str(), static_cast<unsigned long long>(written.value()),
                 snapshot.blocks.size(), snapshot.prefixes.size());
  }

  if (metrics != nullptr) {
    std::ofstream out(opt.metrics_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", opt.metrics_path.c_str());
      return 1;
    }
    metrics_registry.write_json(out);
    out << '\n';
    std::fprintf(stderr, "wrote %s\n", opt.metrics_path.c_str());
  }

  if (opt.hilbert_octet >= 0 && opt.hilbert_octet <= 255 && !opt.hilbert_path.empty()) {
    const analysis::HilbertMap map(
        static_cast<std::uint8_t>(opt.hilbert_octet), [&](net::Block24 block) {
          return result.dark.contains(block) ? analysis::HilbertPixel::kDark
                                             : analysis::HilbertPixel::kNoData;
        });
    std::ofstream out(opt.hilbert_path, std::ios::binary);
    map.write_pgm(out);
    std::fprintf(stderr, "wrote %s\n", opt.hilbert_path.c_str());
  }
  return 0;
}

/// Export simulated vantage-days as a flow stream (ingest's input).  The
/// target may be a FIFO, in which case the open blocks until an ingest
/// daemon attaches and frames stream as they are generated.
int cmd_stream(const Options& opt) {
  if (opt.stream_out.empty()) {
    std::fprintf(stderr, "stream requires --out FILE\n");
    return 1;
  }
  const sim::Simulation simulation = make_simulation(opt);
  const auto ixps = select_ixps(simulation, opt);

  std::ofstream out(opt.stream_out, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", opt.stream_out.c_str());
    return 1;
  }
  ingest::FlowStreamWriter writer(out);
  writer.write_header({opt.seed, opt.tiny});

  std::uint64_t flows = 0;
  for (int day = 0; day < std::max(1, opt.days); ++day) {
    for (const std::size_t ixp : ixps) {
      const auto data = simulation.run_ixp_day(ixp, day);
      writer.write_dataset(day, simulation.ixps()[ixp].sampling_rate(),
                           simulation.ixps()[ixp].spec().code, data.flows);
      flows += data.flows.size();
    }
    writer.write_day_end(day);
  }
  writer.write_stream_end();
  if (!writer.ok()) {
    std::fprintf(stderr, "write error on %s\n", opt.stream_out.c_str());
    return 1;
  }
  std::fprintf(stderr, "streamed %zu vantage point(s) x %d day(s), %llu flow(s) to %s\n",
               ixps.size(), std::max(1, opt.days), static_cast<unsigned long long>(flows),
               opt.stream_out.c_str());
  return 0;
}

/// The continuous pipeline: consume a flow stream, maintain the sliding
/// window, republish --snapshot-out atomically on cadence.
int cmd_ingest(const Options& opt) {
  if (opt.source_path.empty()) {
    std::fprintf(stderr, "ingest requires --source FILE\n");
    return 1;
  }
  if (opt.snapshot_out.empty()) {
    std::fprintf(stderr, "ingest requires --snapshot-out FILE\n");
    return 1;
  }
  obs::MetricsRegistry metrics_registry;
  obs::MetricsRegistry* metrics = opt.metrics_path.empty() ? nullptr : &metrics_registry;

  ingest::IngestConfig config;
  config.source_path = opt.source_path;
  config.snapshot_out = opt.snapshot_out;
  config.window_days = static_cast<int>(opt.window_days);
  config.cadence_days = static_cast<int>(opt.cadence_days);
  config.threads = std::max(1u, opt.threads);
  config.tolerance = opt.tolerance;
  config.max_epochs = opt.max_epochs;
  config.created_unix_s = static_cast<std::uint64_t>(std::time(nullptr));

  ingest::IngestDaemon daemon(config, metrics);
  daemon.on_publish = [&](std::uint64_t epoch, const serve::TelescopeSnapshot& snapshot) {
    std::fprintf(stderr, "published epoch %llu: %zu block(s), window of %u day(s)\n",
                 static_cast<unsigned long long>(epoch), snapshot.blocks.size(),
                 static_cast<unsigned>(snapshot.meta.days));
  };

  std::fprintf(stderr, "ingesting %s -> %s (window %d day(s), cadence %d, %u thread(s))\n",
               opt.source_path.c_str(), opt.snapshot_out.c_str(), config.window_days,
               config.cadence_days, config.threads);
  const auto finished = daemon.run();
  if (!finished.ok()) {
    std::fprintf(stderr, "ingest failed: %s\n", finished.error().to_string().c_str());
    return 1;
  }
  const auto& totals = finished.value();
  std::printf("ingested %llu dataset(s), %llu flow(s), %llu day(s): "
              "%llu epoch(s) published (%llu failure(s)), %llu day(s) evicted\n",
              static_cast<unsigned long long>(totals.datasets),
              static_cast<unsigned long long>(totals.flows),
              static_cast<unsigned long long>(totals.days),
              static_cast<unsigned long long>(totals.publishes),
              static_cast<unsigned long long>(totals.publish_failures),
              static_cast<unsigned long long>(totals.days_evicted));

  if (metrics != nullptr) {
    std::ofstream out(opt.metrics_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", opt.metrics_path.c_str());
      return 1;
    }
    metrics_registry.write_json(out);
    out << '\n';
    std::fprintf(stderr, "wrote %s\n", opt.metrics_path.c_str());
  }
  return 0;
}

int cmd_capture(const Options& opt) {
  if (opt.pcap_path.empty()) {
    std::fprintf(stderr, "capture requires --pcap FILE\n");
    return 1;
  }
  const sim::Simulation simulation = make_simulation(opt);
  const auto& telescopes = simulation.plan().telescopes();
  std::size_t index = telescopes.size();
  for (std::size_t t = 0; t < telescopes.size(); ++t) {
    if (telescopes[t].spec.code == opt.telescope) index = t;
  }
  if (index == telescopes.size()) {
    std::fprintf(stderr, "unknown telescope %s\n", opt.telescope.c_str());
    return 1;
  }
  const auto capture = simulation.run_telescope_day(index, opt.day);

  std::ofstream out(opt.pcap_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", opt.pcap_path.c_str());
    return 1;
  }
  net::PcapWriter writer(out);
  for (const auto& p : capture.packets) {
    writer.write(p.timestamp_us,
                 net::synthesize_packet(p.src, p.dst, p.proto, p.src_port, p.dst_port,
                                        p.tcp_flags, p.ip_length));
  }
  std::printf("captured %llu packets from %s day %d into %s\n",
              static_cast<unsigned long long>(writer.packets_written()),
              opt.telescope.c_str(), opt.day, opt.pcap_path.c_str());
  return 0;
}

int cmd_datasets(const Options& opt) {
  if (opt.out_dir.empty()) {
    std::fprintf(stderr, "datasets requires --out-dir DIR (must exist)\n");
    return 1;
  }
  const sim::Simulation simulation = make_simulation(opt);
  const auto& plan = simulation.plan();

  const auto write = [&](const std::string& name, const auto& saver) {
    const std::string path = opt.out_dir + "/" + name;
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return false;
    }
    saver(out);
    std::printf("wrote %s\n", path.c_str());
    return true;
  };

  bool ok = true;
  ok &= write("pfx2as.txt", [&](std::ostream& o) { plan.make_pfx2as().save(o); });
  ok &= write("as2org.txt", [&](std::ostream& o) { plan.make_as2org().save(o); });
  ok &= write("geodb.csv", [&](std::ostream& o) { plan.geodb().save(o); });
  ok &= write("nettypes.csv", [&](std::ostream& o) { plan.nettypes().save(o); });
  return ok ? 0 : 1;
}

int cmd_ports(const Options& opt) {
  const sim::Simulation simulation = make_simulation(opt);
  const auto ixps = pipeline::all_ixps(simulation);
  const int days[] = {0};
  const auto stats = pipeline::collect_stats(simulation, ixps, days);
  const std::uint64_t tolerance =
      pipeline::compute_spoof_tolerance(stats, simulation.plan().unrouted_slash8s());
  const auto registry = routing::SpecialPurposeRegistry::standard();
  pipeline::PipelineConfig config;
  config.volume_scale = simulation.config().volume_scale;
  config.spoof_tolerance_pkts = tolerance;
  const pipeline::InferenceEngine engine(config, simulation.plan().rib(), registry);
  const auto result = engine.infer(stats);

  analysis::PortCounter counter;
  for (const std::size_t i : ixps) {
    for (const auto& flow : simulation.run_ixp_day(i, 0).flows) {
      if (flow.key.proto == net::IpProto::kTcp &&
          result.dark.contains(net::Block24::containing(flow.key.dst))) {
        counter.add(flow.key.dst_port, flow.packets);
      }
    }
  }
  util::TextTable table({"Rank", "Port", "Sampled packets", "Share"});
  const auto top = counter.top(opt.top);
  const std::uint64_t total = counter.total();
  for (std::size_t r = 0; r < top.size(); ++r) {
    table.add_row({"#" + std::to_string(r + 1), std::to_string(top[r].first),
                   util::with_commas(top[r].second),
                   util::percent(static_cast<double>(top[r].second) /
                                 std::max<std::uint64_t>(1, total))});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

/// One verdict line on stdout: "IP CLASS PREFIX ASN" for classified
/// blocks, "IP none" for everything outside the meta-telescope map —
/// rendered by the same serve::format_verdict the TCP server speaks, so
/// the CLI and wire outputs cannot drift apart.
void print_verdict(const net::Ipv4Addr addr,
                   const std::optional<serve::TelescopeIndex::Verdict>& verdict) {
  std::printf("%s\n", serve::format_verdict(addr, verdict).c_str());
}

/// Classify every IP from `in` (one per line; blank lines and #-comments
/// skipped), maintaining the serve.lookup.* counters.
int query_stream(const serve::TelescopeIndex& index, std::istream& in,
                 obs::MetricsRegistry* metrics) {
  std::uint64_t total = 0, dark = 0, unclean = 0, gray = 0, miss = 0, invalid = 0;
  std::string line;
  while (std::getline(in, line)) {
    const auto token = util::trim(line);
    if (token.empty() || token.front() == '#') continue;
    const auto addr = net::Ipv4Addr::parse(token);
    if (!addr.has_value()) {
      std::fprintf(stderr, "bad ip: %s\n", std::string(token).c_str());
      ++invalid;
      continue;
    }
    ++total;
    const auto verdict = index.lookup(*addr);
    if (!verdict.has_value()) {
      ++miss;
    } else if (verdict->cls == serve::BlockClass::kDark) {
      ++dark;
    } else if (verdict->cls == serve::BlockClass::kUnclean) {
      ++unclean;
    } else {
      ++gray;
    }
    print_verdict(*addr, verdict);
  }
  // Verdicts go to buffered stdout, the summary to unbuffered stderr;
  // without this flush a `2>&1` redirection shows the summary *before*
  // the verdicts it summarizes.
  std::fflush(stdout);
  std::fprintf(stderr,
               "queried %llu ip(s): dark=%llu unclean=%llu gray=%llu miss=%llu invalid=%llu\n",
               static_cast<unsigned long long>(total), static_cast<unsigned long long>(dark),
               static_cast<unsigned long long>(unclean), static_cast<unsigned long long>(gray),
               static_cast<unsigned long long>(miss),
               static_cast<unsigned long long>(invalid));
  if (metrics != nullptr) {
    metrics->counter("serve.lookup.total").add(total);
    metrics->counter("serve.lookup.dark").add(dark);
    metrics->counter("serve.lookup.unclean").add(unclean);
    metrics->counter("serve.lookup.gray").add(gray);
    metrics->counter("serve.lookup.miss").add(miss);
    metrics->counter("serve.lookup.invalid").add(invalid);
  }
  return invalid == 0 ? 0 : 1;
}

/// --bench: time classify() over a deterministic mix of present and
/// random addresses (roughly half hit when the snapshot is non-empty).
void bench_lookups(const serve::TelescopeIndex& index, const Options& opt,
                   obs::MetricsRegistry* metrics) {
  const std::uint64_t n = opt.bench_lookups;
  util::Rng rng(opt.seed);
  std::vector<net::Ipv4Addr> probes;
  probes.reserve(static_cast<std::size_t>(n));
  const auto& blocks = index.snapshot().blocks;
  for (std::uint64_t i = 0; i < n; ++i) {
    if (!blocks.empty() && (i & 1u) == 0) {
      const auto& entry = blocks[static_cast<std::size_t>(rng.uniform(blocks.size()))];
      probes.push_back(net::Ipv4Addr((entry.block_index() << 8) |
                                     static_cast<std::uint32_t>(rng.uniform(256))));
    } else {
      probes.push_back(net::Ipv4Addr(static_cast<std::uint32_t>(
          rng.uniform(std::uint64_t{1} << 32))));
    }
  }

  std::uint64_t hits = 0;
  const auto start = std::chrono::steady_clock::now();
  for (const auto addr : probes) {
    hits += index.classify(addr).has_value() ? 1 : 0;
  }
  const auto stop = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(stop - start).count();
  const double qps = seconds > 0 ? static_cast<double>(n) / seconds : 0.0;
  std::printf("bench: %llu lookups in %.3f ms, %.1f M lookups/s, hit-rate %s\n",
              static_cast<unsigned long long>(n), seconds * 1e3, qps / 1e6,
              util::percent(static_cast<double>(hits) /
                            std::max<std::uint64_t>(1, n)).c_str());

  // Protocol-pipeline leg: the per-request CPU the server spends on the
  // selected wire protocol — request parse/decode + lookup + reply
  // format/encode — with no socket in the way.  This is the line-vs-MTBIN
  // comparison the serve plane's binary protocol exists for.
  const bool binary = opt.proto == "binary";
  std::string requests;
  for (const auto addr : probes) {
    if (binary) {
      serve::wire::Request request;
      request.addr = addr;
      serve::wire::append_request(requests, request);
    } else {
      requests += addr.to_string();
      requests += '\n';
    }
  }
  std::string replies;
  std::uint64_t answered = 0;
  const auto p0 = std::chrono::steady_clock::now();
  if (binary) {
    const std::span<const std::uint8_t> bytes(
        reinterpret_cast<const std::uint8_t*>(requests.data()), requests.size());
    for (std::size_t off = 0; off + serve::wire::kRequestSize <= bytes.size();
         off += serve::wire::kRequestSize) {
      const auto decoded =
          serve::wire::decode_request(bytes.subspan(off, serve::wire::kRequestSize));
      if (decoded.ok()) {
        const auto addr = decoded.value().addr;
        serve::wire::append_response(replies,
                                     serve::wire::make_verdict_response(addr, index.lookup(addr)));
        ++answered;
      }
      if (replies.size() > (1u << 24)) replies.clear();  // bound the reply scratch
    }
  } else {
    std::size_t at = 0;
    for (;;) {
      const std::size_t newline = requests.find('\n', at);
      if (newline == std::string::npos) break;
      const auto token = util::trim(std::string_view(requests).substr(at, newline - at));
      at = newline + 1;
      const auto addr = net::Ipv4Addr::parse(token);
      if (addr.has_value()) {
        replies += serve::format_verdict(*addr, index.lookup(*addr));
        replies += '\n';
        ++answered;
      }
      if (replies.size() > (1u << 24)) replies.clear();
    }
  }
  const auto p1 = std::chrono::steady_clock::now();
  const double proto_seconds = std::chrono::duration<double>(p1 - p0).count();
  const double proto_qps =
      proto_seconds > 0 ? static_cast<double>(answered) / proto_seconds : 0.0;
  std::printf("bench: %s protocol pipeline: %llu requests in %.3f ms, %.1f M req/s\n",
              opt.proto.c_str(), static_cast<unsigned long long>(answered),
              proto_seconds * 1e3, proto_qps / 1e6);
  std::fflush(stdout);  // keep the report ordered against later stderr lines
  if (metrics != nullptr) {
    metrics->counter("serve.lookup.total").add(n);
    metrics->gauge("serve.lookup.qps").set(static_cast<std::int64_t>(qps));
    metrics->gauge("serve.lookup.proto_qps").set(static_cast<std::int64_t>(proto_qps));
  }
}

/// The operated telescope: serve verdicts over TCP until SIGTERM/SIGINT
/// drains us (exit 0).  SIGHUP atomically reloads --snapshot — point the
/// path at the file `infer --snapshot-out` rewrites and the daemon picks
/// up each new run without dropping a query.
int cmd_serve(const Options& opt) {
  if (opt.snapshot_path.empty()) {
    std::fprintf(stderr, "serve requires --snapshot FILE\n");
    return 1;
  }
  if (opt.port < 0) {
    std::fprintf(stderr, "serve requires --port N (0 = kernel-assigned)\n");
    return 1;
  }
  obs::MetricsRegistry metrics_registry;
  obs::MetricsRegistry* metrics = opt.metrics_path.empty() ? nullptr : &metrics_registry;

  serve::ServerConfig config;
  config.snapshot_path = opt.snapshot_path;
  config.port = static_cast<std::uint16_t>(opt.port);
  config.reactors = static_cast<int>(opt.reactors);
  config.max_conns = static_cast<int>(opt.max_conns);
  config.idle_timeout_ms = static_cast<int>(opt.idle_timeout_ms);
  config.watch_interval_ms = static_cast<int>(opt.watch_interval_ms);

  serve::QueryServer server(config, metrics);
  const auto started = server.start();
  if (!started.ok()) {
    std::fprintf(stderr, "cannot start server: %s\n", started.error().to_string().c_str());
    return 1;
  }
  server.install_signal_handlers();

  const auto index = server.manager().current();
  std::fprintf(stderr,
               "serving %s on port %u: %zu block(s), epoch %llu, %u reactor(s) "
               "(SIGHUP reloads, SIGTERM/SIGINT drain)\n",
               opt.snapshot_path.c_str(), server.port(), index->size(),
               static_cast<unsigned long long>(server.manager().epoch()), opt.reactors);

  const int status = server.run();

  const auto stats = server.stats();
  std::fprintf(stderr,
               "drained: %llu connection(s), %llu query(ies) (%llu invalid), "
               "%llu reload(s), %llu timeout(s), %llu drop(s)\n",
               static_cast<unsigned long long>(stats.connections),
               static_cast<unsigned long long>(stats.queries),
               static_cast<unsigned long long>(stats.invalid),
               static_cast<unsigned long long>(stats.reloads),
               static_cast<unsigned long long>(stats.timeouts),
               static_cast<unsigned long long>(stats.drops));

  if (metrics != nullptr) {
    std::ofstream out(opt.metrics_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", opt.metrics_path.c_str());
      return 1;
    }
    metrics_registry.write_json(out);
    out << '\n';
    std::fprintf(stderr, "wrote %s\n", opt.metrics_path.c_str());
  }
  return status;
}

/// Drive a running serve instance through a stepped load sweep and write
/// the latency-vs-throughput curve as JSON — the honest companion to the
/// server's aggregate QPS counters.
int cmd_loadgen(const Options& opt) {
  if (opt.port <= 0) {
    std::fprintf(stderr, "loadgen requires --port N (a running serve instance)\n");
    return 1;
  }
  if (opt.steps.empty()) {
    std::fprintf(stderr, "loadgen requires --steps N,N,... (offered qps per step)\n");
    return 1;
  }
  const auto steps = serve::parse_step_list(opt.steps);
  if (!steps.ok()) {
    std::fprintf(stderr, "loadgen: %s\n", steps.error().to_string().c_str());
    return 1;
  }

  serve::LoadgenConfig config;
  config.host = opt.host;
  config.port = static_cast<std::uint16_t>(opt.port);
  config.mode = opt.load_mode == "closed" ? serve::LoadMode::kClosed : serve::LoadMode::kOpen;
  config.proto = opt.proto == "binary" ? serve::WireProtocol::kBinary
                                       : serve::WireProtocol::kLine;
  config.connections = static_cast<int>(opt.conns);
  config.steps = steps.value();
  config.warmup_ms = static_cast<int>(opt.warmup_ms);
  config.measure_ms = static_cast<int>(opt.measure_ms);
  config.cooldown_ms = static_cast<int>(opt.cooldown_ms);
  config.seed = opt.seed;

  std::fprintf(stderr, "loadgen: %s:%u, %s loop, %s protocol, %u connection(s), %zu step(s)\n",
               config.host.c_str(), config.port, serve::to_string(config.mode),
               serve::to_string(config.proto), opt.conns, config.steps.size());
  const auto results = serve::run_loadgen(config);
  if (!results.ok()) {
    std::fprintf(stderr, "loadgen failed: %s\n", results.error().to_string().c_str());
    return 1;
  }
  for (const auto& step : results.value()) {
    std::fprintf(stderr,
                 "  step %llu: offered %.0f q/s, achieved %.0f q/s, "
                 "p50 %llu us, p99 %llu us, %llu error(s)\n",
                 static_cast<unsigned long long>(step.target), step.offered_qps,
                 step.achieved_qps, static_cast<unsigned long long>(step.p50_us),
                 static_cast<unsigned long long>(step.p99_us),
                 static_cast<unsigned long long>(step.errors));
  }

  const std::string out_path = opt.stream_out.empty() ? "BENCH_serve_net.json" : opt.stream_out;
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  serve::write_loadgen_json(out, config, results.value());
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  return 0;
}

int cmd_query(const Options& opt) {
  if (opt.snapshot_path.empty()) {
    std::fprintf(stderr, "query requires --snapshot FILE\n");
    return 1;
  }
  obs::MetricsRegistry metrics_registry;
  obs::MetricsRegistry* metrics = opt.metrics_path.empty() ? nullptr : &metrics_registry;

  serve::SnapshotManager manager;
  const auto installed = manager.load_and_install(opt.snapshot_path, metrics);
  if (!installed.ok()) {
    std::fprintf(stderr, "cannot load snapshot: %s\n",
                 installed.error().to_string().c_str());
    return 1;
  }
  const auto index = manager.current();
  const auto& meta = index->metadata();
  std::fprintf(stderr,
               "loaded %s: %zu block(s), %zu prefix(es), seed=%llu, "
               "%.1f KiB resident, epoch %llu\n",
               opt.snapshot_path.c_str(), index->size(), index->snapshot().prefixes.size(),
               static_cast<unsigned long long>(meta.seed),
               static_cast<double>(index->memory_bytes()) / 1024.0,
               static_cast<unsigned long long>(installed.value()));

  int status = 0;
  if (!opt.ips_path.empty()) {
    if (opt.ips_path == "-") {
      status = query_stream(*index, std::cin, metrics);
    } else {
      std::ifstream in(opt.ips_path);
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n", opt.ips_path.c_str());
        return 1;
      }
      status = query_stream(*index, in, metrics);
    }
  }
  if (opt.bench) bench_lookups(*index, opt, metrics);
  if (opt.ips_path.empty() && !opt.bench) {
    std::fprintf(stderr, "nothing to do: pass --ips FILE|- and/or --bench\n");
    status = 1;
  }

  if (metrics != nullptr) {
    std::ofstream out(opt.metrics_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", opt.metrics_path.c_str());
      return 1;
    }
    metrics_registry.write_json(out);
    out << '\n';
    std::fprintf(stderr, "wrote %s\n", opt.metrics_path.c_str());
  }
  return status;
}

/// Offline analytics front end: answer one --query line, or print the
/// three summary reports, from a snapshot's ANALYTICS section.  Every
/// reply is rendered by serve::answer_analytics_query — the exact
/// formatter behind the TCP server's analytics verbs.
int cmd_analyze(const Options& opt) {
  if (opt.snapshot_path.empty()) {
    std::fprintf(stderr, "analyze requires --snapshot FILE\n");
    return 1;
  }
  serve::SnapshotManager manager;
  const auto installed = manager.load_and_install(opt.snapshot_path, nullptr);
  if (!installed.ok()) {
    std::fprintf(stderr, "cannot load snapshot: %s\n",
                 installed.error().to_string().c_str());
    return 1;
  }
  const auto index = manager.current();
  const auto& analytics = index->snapshot().analytics;
  if (!analytics.has_value()) {
    std::fprintf(stderr,
                 "%s carries no ANALYTICS section (build it with `infer --analytics` "
                 "or `ingest`)\n",
                 opt.snapshot_path.c_str());
    return 1;
  }
  std::fprintf(stderr,
               "loaded %s: %zu block(s), window day %u+%u, %zu cell(s), "
               "%zu outage(s), %zu scanner(s)\n",
               opt.snapshot_path.c_str(), index->size(), analytics->first_day,
               analytics->window_days, analytics->cells.size(),
               analytics->outages.size(), analytics->scanners.size());

  const auto answer = [&](std::string_view line) {
    std::printf("%s\n", serve::answer_analytics_query(*index, line, opt.top).c_str());
  };
  if (!opt.analyze_query.empty()) {
    answer(opt.analyze_query);
  } else {
    answer("top-ports");
    answer("outages");
    answer("scanners");
  }
  std::fflush(stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  std::string error;
  if (!cli::parse_args(argc, argv, opt, error)) {
    std::fprintf(stderr, "mtscope: %s\n%s", error.c_str(), cli::usage_text());
    return 2;
  }
  if (opt.command == "infer") return cmd_infer(opt);
  if (opt.command == "query") return cmd_query(opt);
  if (opt.command == "serve") return cmd_serve(opt);
  if (opt.command == "loadgen") return cmd_loadgen(opt);
  if (opt.command == "stream") return cmd_stream(opt);
  if (opt.command == "ingest") return cmd_ingest(opt);
  if (opt.command == "analyze") return cmd_analyze(opt);
  if (opt.command == "capture") return cmd_capture(opt);
  if (opt.command == "datasets") return cmd_datasets(opt);
  if (opt.command == "ports") return cmd_ports(opt);
  return 2;  // unreachable: parse_args validated the command
}
