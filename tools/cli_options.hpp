// mtscope CLI option model + parser, split out of main() so the argument
// surface is unit-testable: tests/test_cli_args.cpp pins every diagnostic
// string and the accept/reject decision for each flag.
//
// Parsing is strict where the old inline loop was forgiving: numeric
// values must consume their whole token ("--threads 4x" is an error, not
// 4), zero is rejected where it would be nonsense (--threads 0), and
// enumerated values (--scale) must name a known member.  main() maps a
// false return to exit code 2 after printing `error` and the usage text.
#pragma once

#include <cstdint>
#include <string>

namespace mtscope::cli {

struct Options {
  std::string command;

  // common
  std::uint64_t seed = 42;
  bool tiny = false;

  // infer
  int days = 1;
  std::string ixps;              // comma-separated codes; empty = all
  unsigned threads = 1;          // collect/infer worker threads; 1 = serial
  unsigned shards = 0;           // 0 = pick per thread count
  bool tolerance = true;
  bool analytics = false;        // --analytics: build + persist the IBR analytics
  std::string csv_path;
  std::string metrics_path;
  std::string snapshot_out;      // persist the run as a telescope snapshot
  int hilbert_octet = -1;
  std::string hilbert_path;

  // analyze
  std::string analyze_query;     // --query LINE; empty = summary report

  // query
  std::string snapshot_path;     // --snapshot FILE (shared with serve)
  std::string ips_path;          // --ips FILE, "-" = stdin
  bool bench = false;            // --bench: measure lookup throughput
  std::uint64_t bench_lookups = 2'000'000;

  // serve
  int port = -1;                 // --port N (required; 0 = kernel-assigned)
  unsigned reactors = 1;         // --reactors N (event loops, one listener each)
  unsigned max_conns = 1024;     // --max-conns N
  unsigned idle_timeout_ms = 30'000;  // --idle-timeout-ms N
  unsigned watch_interval_ms = 0;     // --watch-interval-ms N; 0 = SIGHUP only

  // loadgen (shares --port with serve, --out with stream; --proto is
  // shared with query --bench)
  std::string host = "127.0.0.1";  // --host IP (dotted quad)
  std::string load_mode = "open";  // --mode open|closed
  std::string proto = "line";      // --proto line|binary (MTBIN frames)
  std::string steps;               // --steps N,N,... (rate or depth per step)
  unsigned conns = 4;              // --conns N (concurrent connections)
  unsigned warmup_ms = 200;        // --warmup-ms N
  unsigned measure_ms = 1000;      // --measure-ms N
  unsigned cooldown_ms = 200;      // --cooldown-ms N

  // stream / ingest
  std::string stream_out;        // --out FILE (stream: flow stream target)
  std::string source_path;       // --source FILE (ingest: flow stream source)
  unsigned window_days = 7;      // --window-days N (sliding window length)
  unsigned cadence_days = 1;     // --cadence-days N (publish every N days)
  std::uint64_t max_epochs = 0;  // --max-epochs N; 0 = run to stream end

  // capture / datasets / ports
  std::string telescope = "TUS1";
  int day = 0;
  std::string pcap_path;
  std::string out_dir;
  std::size_t top = 10;
};

/// Parse argv into `opt`.  Returns false on any malformed input and sets
/// `error` to a one-line diagnostic; `opt` is then partially filled and
/// must not be used.
bool parse_args(int argc, const char* const* argv, Options& opt, std::string& error);

/// The usage text main() prints on parse failure (shared with tests).
[[nodiscard]] const char* usage_text() noexcept;

}  // namespace mtscope::cli
