#include "cli_options.hpp"

#include <charconv>
#include <cstring>
#include <string_view>

namespace mtscope::cli {

namespace {

/// Whole-token unsigned parse: "12" yes, "", "1x", "-1", "0x10" no.
template <typename T>
bool parse_uint(std::string_view text, T& out) {
  if (text.empty()) return false;
  T value{};
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) return false;
  out = value;
  return true;
}

struct Parser {
  int argc;
  const char* const* argv;
  Options& opt;
  std::string& error;
  int i = 2;

  bool fail(std::string message) {
    error = std::move(message);
    return false;
  }

  /// The value token for the flag at argv[i]; null + diagnostic if absent.
  const char* value_for(const std::string& flag) {
    if (i + 1 >= argc) {
      error = "missing value for " + flag;
      return nullptr;
    }
    return argv[++i];
  }

  template <typename T>
  bool uint_for(const std::string& flag, T& out, T minimum) {
    const char* v = value_for(flag);
    if (v == nullptr) return false;
    if (!parse_uint(v, out)) {
      return fail("invalid value for " + flag + ": '" + v + "' (expected a non-negative integer)");
    }
    if (out < minimum) {
      return fail(flag + " must be >= " + std::to_string(minimum));
    }
    return true;
  }
};

}  // namespace

const char* usage_text() noexcept {
  return
      "usage: mtscope <infer|query|serve|loadgen|stream|ingest|analyze|capture|datasets|ports>"
      " [options]\n"
      "  common:  --seed N        simulation seed (default 42)\n"
      "           --scale tiny|full\n"
      "  infer:   --days K --ixps CE1,NA1 --no-tolerance --csv FILE\n"
      "           --threads N (parallel collect+infer; default 1 = serial)\n"
      "           --shards M (per-worker stats shards; default: thread count)\n"
      "           --hilbert OCTET FILE.pgm\n"
      "           --metrics-out FILE (pipeline metrics JSON snapshot)\n"
      "           --snapshot-out FILE (persist the run as a telescope snapshot)\n"
      "           --analytics (attach the IBR analytics section to the snapshot)\n"
      "  query:   --snapshot FILE (telescope snapshot to serve from)\n"
      "           --ips FILE|- (classify IPs, one per line; - = stdin)\n"
      "           --bench [--lookups N] [--proto line|binary]\n"
      "           (measure the per-request protocol pipeline throughput)\n"
      "           --metrics-out FILE (serve.* metrics JSON snapshot)\n"
      "  serve:   --snapshot FILE --port N (TCP query daemon; 0 = kernel-assigned)\n"
      "           --reactors N (event loops w/ SO_REUSEPORT listeners; default 1)\n"
      "           --max-conns N (default 1024) --idle-timeout-ms N (default 30000)\n"
      "           --metrics-out FILE (serve.server.* metrics, written on exit)\n"
      "           --watch-interval-ms N (poll --snapshot for atomic republish)\n"
      "           SIGHUP reloads --snapshot; SIGTERM/SIGINT drain and exit 0\n"
      "  loadgen: --port N [--host IP] (drive a running serve instance)\n"
      "           --steps N,N,... (offered qps per step; closed: depth/conn)\n"
      "           --mode open|closed (default open) --conns N (default 4)\n"
      "           --proto line|binary (wire protocol; default line)\n"
      "           --warmup-ms/--measure-ms/--cooldown-ms (200/1000/200)\n"
      "           --out FILE (latency-vs-throughput JSON; default\n"
      "           BENCH_serve_net.json)\n"
      "  stream:  --out FILE (write simulated vantage-days as a flow stream;\n"
      "           FIFO-friendly) --days K --ixps A,B\n"
      "  ingest:  --source FILE --snapshot-out FILE (continuous pipeline:\n"
      "           consume a flow stream, publish snapshots atomically)\n"
      "           --window-days N (default 7) --cadence-days N (default 1)\n"
      "           --threads N --no-tolerance --max-epochs N\n"
      "           --metrics-out FILE (ingest.* metrics, written on exit)\n"
      "  analyze: --snapshot FILE (answer analytics queries from a snapshot)\n"
      "           --query 'top-ports [P|ASN|CC] | outages [SINCE] | scanners [N]'\n"
      "           --top K (ranking depth; default 10); no --query = full report\n"
      "  capture: --telescope TUS1|TEU1|TEU2 --day D --pcap FILE\n"
      "  datasets: --out-dir DIR\n"
      "  ports:   --top K\n";
}

bool parse_args(int argc, const char* const* argv, Options& opt, std::string& error) {
  error.clear();
  if (argc < 2) {
    error = "missing command";
    return false;
  }
  opt.command = argv[1];
  if (opt.command != "infer" && opt.command != "query" && opt.command != "serve" &&
      opt.command != "loadgen" && opt.command != "stream" && opt.command != "ingest" &&
      opt.command != "analyze" && opt.command != "capture" && opt.command != "datasets" &&
      opt.command != "ports") {
    error = "unknown command: " + opt.command;
    return false;
  }

  Parser p{argc, argv, opt, error};
  for (; p.i < argc; ++p.i) {
    const std::string arg = argv[p.i];
    if (arg == "--seed") {
      if (!p.uint_for(arg, opt.seed, std::uint64_t{0})) return false;
    } else if (arg == "--scale") {
      const char* v = p.value_for(arg);
      if (v == nullptr) return false;
      if (std::strcmp(v, "tiny") != 0 && std::strcmp(v, "full") != 0) {
        return p.fail("invalid value for --scale: '" + std::string(v) +
                      "' (expected tiny or full)");
      }
      opt.tiny = std::strcmp(v, "tiny") == 0;
    } else if (arg == "--days") {
      unsigned days = 0;
      if (!p.uint_for(arg, days, 1u)) return false;
      opt.days = static_cast<int>(days);
    } else if (arg == "--ixps") {
      const char* v = p.value_for(arg);
      if (v == nullptr) return false;
      opt.ixps = v;
    } else if (arg == "--threads") {
      if (!p.uint_for(arg, opt.threads, 1u)) return false;
    } else if (arg == "--shards") {
      if (!p.uint_for(arg, opt.shards, 1u)) return false;
    } else if (arg == "--no-tolerance") {
      opt.tolerance = false;
    } else if (arg == "--analytics") {
      opt.analytics = true;
    } else if (arg == "--query") {
      const char* v = p.value_for(arg);
      if (v == nullptr) return false;
      opt.analyze_query = v;
    } else if (arg == "--csv") {
      const char* v = p.value_for(arg);
      if (v == nullptr) return false;
      opt.csv_path = v;
    } else if (arg == "--metrics-out") {
      const char* v = p.value_for(arg);
      if (v == nullptr) return false;
      opt.metrics_path = v;
    } else if (arg == "--snapshot-out") {
      const char* v = p.value_for(arg);
      if (v == nullptr) return false;
      opt.snapshot_out = v;
    } else if (arg == "--snapshot") {
      const char* v = p.value_for(arg);
      if (v == nullptr) return false;
      opt.snapshot_path = v;
    } else if (arg == "--ips") {
      const char* v = p.value_for(arg);
      if (v == nullptr) return false;
      opt.ips_path = v;
    } else if (arg == "--bench") {
      opt.bench = true;
    } else if (arg == "--port") {
      unsigned port = 0;
      if (!p.uint_for(arg, port, 0u)) return false;
      if (port > 65535) return p.fail("--port must be in [0, 65535]");
      opt.port = static_cast<int>(port);
    } else if (arg == "--reactors") {
      if (!p.uint_for(arg, opt.reactors, 1u)) return false;
      if (opt.reactors > 256) return p.fail("--reactors must be in [1, 256]");
    } else if (arg == "--max-conns") {
      if (!p.uint_for(arg, opt.max_conns, 1u)) return false;
    } else if (arg == "--idle-timeout-ms") {
      if (!p.uint_for(arg, opt.idle_timeout_ms, 1u)) return false;
    } else if (arg == "--watch-interval-ms") {
      if (!p.uint_for(arg, opt.watch_interval_ms, 1u)) return false;
    } else if (arg == "--out") {
      const char* v = p.value_for(arg);
      if (v == nullptr) return false;
      opt.stream_out = v;
    } else if (arg == "--source") {
      const char* v = p.value_for(arg);
      if (v == nullptr) return false;
      opt.source_path = v;
    } else if (arg == "--window-days") {
      if (!p.uint_for(arg, opt.window_days, 1u)) return false;
    } else if (arg == "--cadence-days") {
      if (!p.uint_for(arg, opt.cadence_days, 1u)) return false;
    } else if (arg == "--max-epochs") {
      if (!p.uint_for(arg, opt.max_epochs, std::uint64_t{1})) return false;
    } else if (arg == "--host") {
      const char* v = p.value_for(arg);
      if (v == nullptr) return false;
      opt.host = v;
    } else if (arg == "--mode") {
      const char* v = p.value_for(arg);
      if (v == nullptr) return false;
      if (std::strcmp(v, "open") != 0 && std::strcmp(v, "closed") != 0) {
        return p.fail("invalid value for --mode: '" + std::string(v) +
                      "' (expected open or closed)");
      }
      opt.load_mode = v;
    } else if (arg == "--proto") {
      const char* v = p.value_for(arg);
      if (v == nullptr) return false;
      if (std::strcmp(v, "line") != 0 && std::strcmp(v, "binary") != 0) {
        return p.fail("invalid value for --proto: '" + std::string(v) +
                      "' (expected line or binary)");
      }
      opt.proto = v;
    } else if (arg == "--steps") {
      const char* v = p.value_for(arg);
      if (v == nullptr) return false;
      opt.steps = v;
    } else if (arg == "--conns") {
      if (!p.uint_for(arg, opt.conns, 1u)) return false;
    } else if (arg == "--warmup-ms") {
      if (!p.uint_for(arg, opt.warmup_ms, 0u)) return false;
    } else if (arg == "--measure-ms") {
      if (!p.uint_for(arg, opt.measure_ms, 1u)) return false;
    } else if (arg == "--cooldown-ms") {
      if (!p.uint_for(arg, opt.cooldown_ms, 0u)) return false;
    } else if (arg == "--lookups") {
      if (!p.uint_for(arg, opt.bench_lookups, std::uint64_t{1})) return false;
    } else if (arg == "--hilbert") {
      unsigned octet = 0;
      if (!p.uint_for(arg, octet, 0u)) return false;
      if (octet > 255) return p.fail("--hilbert octet must be in [0, 255]");
      const char* path = p.value_for(arg);
      if (path == nullptr) return p.fail("missing output path for --hilbert");
      opt.hilbert_octet = static_cast<int>(octet);
      opt.hilbert_path = path;
    } else if (arg == "--telescope") {
      const char* v = p.value_for(arg);
      if (v == nullptr) return false;
      opt.telescope = v;
    } else if (arg == "--day") {
      unsigned day = 0;
      if (!p.uint_for(arg, day, 0u)) return false;
      opt.day = static_cast<int>(day);
    } else if (arg == "--pcap") {
      const char* v = p.value_for(arg);
      if (v == nullptr) return false;
      opt.pcap_path = v;
    } else if (arg == "--out-dir") {
      const char* v = p.value_for(arg);
      if (v == nullptr) return false;
      opt.out_dir = v;
    } else if (arg == "--top") {
      if (!p.uint_for(arg, opt.top, std::size_t{1})) return false;
    } else {
      error = "unknown option: " + arg;
      return false;
    }
  }
  return true;
}

}  // namespace mtscope::cli
