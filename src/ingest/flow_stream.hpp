// Flow-stream wire format: the byte stream `mtscope ingest` consumes and
// `mtscope stream` produces (DESIGN.md §13).
//
// A stream is the continuous-operation stand-in for a live IPFIX collector
// feed: a sequence of per-vantage, per-day datasets with explicit day
// boundaries, written to a regular file or a FIFO.  The reader blocks on
// the underlying istream, so a FIFO turns the pair of processes into a
// genuine producer/consumer pipeline.
//
// Layout (all integers little-endian; see util/bytes.hpp):
//
//   header : magic "MTFLOW\r\n" (8) | version u16 | flags u16 |
//            seed u64 | crc32 u32 over the preceding 20 bytes    = 24 B
//   frame  : kind u8 followed by a kind-specific body:
//     kDataset   : day u32 | sampling_rate u32 | vantage_len u8 |
//                  vantage bytes | record_count u32 |
//                  crc32 u32 over the encoded records | records
//     kDayEnd    : day u32          (all datasets for `day` delivered)
//     kStreamEnd : (empty)          (producer finished cleanly)
//
// Each flow record encodes fixed-width (kRecordBytes): src u32 | dst u32 |
// src_port u16 | dst_port u16 | proto u8 | tcp_flags_or u8 | first_us u64 |
// last_us u64 | packets u64 | bytes u64 | sampling_rate u32.
//
// The header carries the simulation seed and scale (flags bit 0 = tiny) so
// the consumer can rebuild the generating plan — RIB, universe mask,
// unrouted /8s, volume scale — with zero out-of-band configuration, the
// role Route Views + IXP contracts play for the paper's real deployment.
//
// Readers reject bad magic, future versions, truncation mid-frame and CRC
// mismatches with typed util::Error codes ("stream.bad_magic",
// "stream.unsupported_version", "stream.truncated", "stream.bad_crc",
// "stream.bad_frame") — never by crashing.  EOF exactly on a frame
// boundary reads as a clean end of stream even without a kStreamEnd frame,
// so a producer killed between frames loses at most unflushed data.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "flow/record.hpp"
#include "util/result.hpp"

namespace mtscope::ingest {

inline constexpr std::uint16_t kFlowStreamVersion = 1;
inline constexpr std::size_t kFlowRecordBytes = 50;

/// Stream-level provenance from the header.
struct StreamHeader {
  std::uint64_t seed = 0;
  bool tiny = false;

  friend bool operator==(const StreamHeader&, const StreamHeader&) = default;
};

/// One decoded frame.  `day` is meaningful for kDataset and kDayEnd;
/// `sampling_rate`, `vantage` and `flows` only for kDataset.
struct StreamEvent {
  enum class Kind : std::uint8_t {
    kDataset = 1,
    kDayEnd = 2,
    kStreamEnd = 3,
  };

  Kind kind = Kind::kStreamEnd;
  int day = 0;
  std::uint32_t sampling_rate = 1;
  std::string vantage;
  std::vector<flow::FlowRecord> flows;
};

/// Serializer.  Writes are flushed per frame so a FIFO consumer makes
/// progress while the producer is still generating; io errors latch into
/// ok() instead of throwing (the POSIX convention of the CLI layer).
class FlowStreamWriter {
 public:
  explicit FlowStreamWriter(std::ostream& out) : out_(out) {}

  void write_header(const StreamHeader& header);
  void write_dataset(int day, std::uint32_t sampling_rate, std::string_view vantage,
                     std::span<const flow::FlowRecord> flows);
  void write_day_end(int day);
  void write_stream_end();

  [[nodiscard]] bool ok() const noexcept;

 private:
  void put(std::span<const std::uint8_t> bytes);

  std::ostream& out_;
};

/// Deserializer over a blocking istream (regular file or FIFO).
class FlowStreamReader {
 public:
  explicit FlowStreamReader(std::istream& in) : in_(in) {}

  /// Must be called once, before next().
  [[nodiscard]] util::Result<StreamHeader> read_header();

  /// The next frame; blocks until one is available.  Clean EOF (at a frame
  /// boundary or after kStreamEnd) comes back as a kStreamEnd event.
  [[nodiscard]] util::Result<StreamEvent> next();

 private:
  /// Read exactly n bytes into out.  Returns 0 on success, -1 on EOF with
  /// nothing read, 1 on EOF mid-read (truncation).
  [[nodiscard]] int read_exact(std::span<std::uint8_t> out);

  std::istream& in_;
};

}  // namespace mtscope::ingest
