// SlidingWindow: the paper's multi-day analysis window (§6.1) maintained
// incrementally for continuous operation (DESIGN.md §13).
//
// The batch pipeline folds every vantage-day into one VantageStats and
// runs the funnel once.  A streaming deployment cannot afford that: when
// day D+1 arrives, re-collecting days D-6..D+1 from scratch repeats a
// week of ingest work to retire one day.  Instead the window retains one
// VantageStats *per day* (the per-day delta), so
//
//   admit  — route a dataset to its day's slice: O(dataset), touches no
//            other day;
//   evict  — drop the slice that aged out: O(1), no subtraction, no
//            rescan (subtracting stats from a merged store is impossible
//            anyway: max-like fields such as the source bitmap and the
//            day set do not invert);
//   merged — pairwise tree-merge of the retained slices, the same
//            reduction the parallel collector uses on its shards.
//
// Bit-identicality contract: merged() equals the single VantageStats a
// from-scratch batch collect over the same vantage-days would produce.
// The argument is the parallel engine's (pipeline/parallel.hpp): every
// per-block quantity is a sum of unsigned counters, a bitwise OR, or a
// set union — commutative and associative — so partitioning by day and
// re-merging cannot change the result, regardless of arrival order or
// merge-tree shape.  tests/test_ingest_window.cpp proves it differentially
// down to the serialized snapshot bytes; the window laws themselves are
// property-tested in tests/test_pipeline_properties.cpp.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <vector>

#include "flow/record.hpp"
#include "pipeline/vantage_stats.hpp"
#include "trie/block24_set.hpp"

namespace mtscope::ingest {

class SlidingWindow {
 public:
  /// A window spans `window_days` consecutive logical days.  `source_mask`
  /// is forwarded to every per-day slice (see VantageStats: it bounds
  /// source-side memory against spoofed scatter).  With `analytics` set,
  /// each slice also maintains its day's IBR analytics matrix, and
  /// merged() folds the matrices with the same commutative merge as the
  /// stores — so every published epoch's matrix is bit-identical to a
  /// from-scratch batch build over the retained days.
  explicit SlidingWindow(int window_days,
                         std::shared_ptr<const trie::Block24Set> source_mask = nullptr,
                         bool analytics = false);

  /// Ingest one dataset into its day's slice, creating the slice if this
  /// is the day's first dataset.  Days may arrive interleaved; only
  /// eviction assumes forward progress.
  void add_flows(int day, std::span<const flow::FlowRecord> flows, std::uint32_t sampling_rate);

  /// Admit a day with no datasets (an outage day still elapses: it widens
  /// the per-day volume normalisation exactly as an empty day does in a
  /// batch run that lists it).
  void note_day(int day);

  struct EvictionReport {
    int days = 0;             // slices dropped
    std::uint64_t rows = 0;   // /24 store rows released
    std::uint64_t flows = 0;  // ingested flows released
  };

  /// Slide the window forward: drop every slice older than
  /// `newest_day - window_days() + 1`.  O(1) per evicted day.
  EvictionReport advance_to(int newest_day);

  /// Drop every slice with day < `day` (advance_to's engine, exposed for
  /// the evict-then-readmit property tests).
  EvictionReport evict_before(int day);

  /// The batch-equivalent view: all retained slices tree-merged into one
  /// VantageStats.  Cost is one pass over the retained data; the slices
  /// themselves are not consumed.
  [[nodiscard]] pipeline::VantageStats merged() const;

  [[nodiscard]] int window_days() const noexcept { return window_days_; }
  [[nodiscard]] std::size_t slice_count() const noexcept { return slices_.size(); }
  [[nodiscard]] bool empty() const noexcept { return slices_.empty(); }

  /// Retained days, ascending.
  [[nodiscard]] std::vector<int> days() const;

  /// Sum of flows ingested across retained slices.
  [[nodiscard]] std::uint64_t flows_ingested() const noexcept;

 private:
  /// The slice for `day`, inserted in day order if absent.
  pipeline::VantageStats& slice_for(int day);

  int window_days_;
  std::shared_ptr<const trie::Block24Set> source_mask_;
  bool analytics_ = false;

  struct DaySlice {
    int day = 0;
    pipeline::VantageStats stats;
  };
  std::deque<DaySlice> slices_;  // ascending by day
};

}  // namespace mtscope::ingest
