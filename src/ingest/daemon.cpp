#include "ingest/daemon.hpp"

#include <algorithm>
#include <fstream>
#include <utility>
#include <vector>

#include "ingest/publish.hpp"
#include "pipeline/inference.hpp"
#include "pipeline/parallel.hpp"
#include "pipeline/spoof_tolerance.hpp"
#include "routing/special_purpose.hpp"
#include "sim/simulation.hpp"

namespace mtscope::ingest {

serve::RunMetadata publish_metadata(const StreamHeader& header, int window_days,
                                    std::span<const int> days, std::uint64_t flows_ingested,
                                    std::uint64_t spoof_tolerance_pkts,
                                    std::uint64_t created_unix_s) {
  serve::RunMetadata meta;
  meta.seed = header.seed;
  meta.spoof_tolerance_pkts = spoof_tolerance_pkts;
  meta.flows_ingested = flows_ingested;
  meta.created_unix_s = created_unix_s;
  // Funnel parallelism and shard count never change the published bytes
  // (the parallel engine's bit-identicality contract), so the metadata
  // records the canonical serial shape instead of the worker config —
  // keeping every epoch a pure function of the stream content.
  meta.threads = 1;
  meta.shards = 1;
  meta.days = static_cast<std::uint32_t>(days.size());
  meta.source = std::string("ingest scale=") + (header.tiny ? "tiny" : "full") +
                " window=" + std::to_string(window_days) + "d through day " +
                std::to_string(days.empty() ? -1 : days.back());
  return meta;
}

serve::BlockLabeler plan_labeler(const sim::AddressPlan& plan) {
  return [&plan](net::Block24 block) {
    serve::BlockLabel label;
    if (const auto country = plan.geodb().country_of(block);
        country.has_value() && country->size() == 2) {
      label.country[0] = (*country)[0];
      label.country[1] = (*country)[1];
    }
    label.continent = static_cast<std::uint8_t>(plan.geodb().continent_of(block));
    if (const auto covering = plan.rib().lookup(block.first_address());
        covering.has_value()) {
      if (const auto type = plan.nettypes().resolve(covering->second.origin);
          type.has_value()) {
        label.net_type = static_cast<std::uint8_t>(*type);
      }
    }
    return label;
  };
}

IngestDaemon::IngestDaemon(IngestConfig config, obs::MetricsRegistry* metrics)
    : config_(std::move(config)), metrics_(metrics) {}

util::Result<IngestTotals> IngestDaemon::run() {
  std::ifstream in(config_.source_path, std::ios::binary);
  if (!in) {
    return util::make_error("ingest.io", "cannot open flow stream " + config_.source_path);
  }
  FlowStreamReader reader(in);
  const auto header_read = reader.read_header();
  if (!header_read.ok()) return header_read.error();
  const StreamHeader header = header_read.value();

  // Rebuild the generating plan from the header; this is where a real
  // deployment would load Route Views and the vantage-point metadata.
  const sim::Simulation simulation(header.tiny ? sim::SimConfig::tiny(header.seed) : [&] {
    sim::SimConfig config;
    config.seed = header.seed;
    return config;
  }());
  const auto registry = routing::SpecialPurposeRegistry::standard();

  SlidingWindow window(config_.window_days, simulation.plan().universe_mask(),
                       config_.analytics);
  const serve::BlockLabeler labeler = plan_labeler(simulation.plan());
  IngestTotals totals;
  std::uint64_t completed_days = 0;

  const auto refresh_and_publish = [&] {
    obs::StageTimer merge_timer(metrics_, "ingest.merge_us");
    const pipeline::VantageStats stats = window.merged();
    merge_timer.stop();

    std::uint64_t tolerance = 0;
    if (config_.tolerance) {
      obs::StageTimer timer(metrics_, "ingest.tolerance_us");
      tolerance =
          pipeline::compute_spoof_tolerance(stats, simulation.plan().unrouted_slash8s());
    }

    pipeline::PipelineConfig pipeline_config;
    pipeline_config.volume_scale = simulation.config().volume_scale;
    pipeline_config.spoof_tolerance_pkts = tolerance;
    const pipeline::InferenceEngine engine(pipeline_config, simulation.plan().rib(), registry);

    obs::StageTimer funnel_timer(metrics_, "ingest.funnel_us");
    const auto result = pipeline::parallel_infer(engine, stats, config_.threads);
    funnel_timer.stop();

    const auto meta = publish_metadata(header, config_.window_days, window.days(),
                                       stats.flows_ingested(), tolerance,
                                       config_.created_unix_s);
    obs::StageTimer build_timer(metrics_, "ingest.snapshot.build_us");
    auto snapshot = serve::build_snapshot(result, simulation.plan().rib(), meta);
    build_timer.stop();

    if (config_.analytics) {
      // Every cadence republishes fresh analytics derived from the same
      // merged window the verdicts came from — the matrix merge is
      // bit-identical to batch, so the section is too.
      obs::StageTimer analytics_timer(metrics_, "ingest.analytics.build_us");
      snapshot.analytics = serve::build_analytics(stats.ibr(), snapshot, labeler);
      analytics_timer.stop();
      if (metrics_ != nullptr) {
        metrics_->gauge("ingest.analytics.cells")
            .set(static_cast<std::int64_t>(snapshot.analytics->cells.size()));
        metrics_->gauge("ingest.analytics.outages")
            .set(static_cast<std::int64_t>(snapshot.analytics->outages.size()));
        metrics_->gauge("ingest.analytics.scanners")
            .set(static_cast<std::int64_t>(snapshot.analytics->scanners.size()));
      }
    }

    obs::StageTimer publish_timer(metrics_, "ingest.publish_us");
    const auto published = publish_snapshot(snapshot, config_.snapshot_out);
    publish_timer.stop();

    if (metrics_ != nullptr) {
      metrics_->gauge("ingest.window.days").set(static_cast<std::int64_t>(window.slice_count()));
      metrics_->gauge("ingest.window.blocks")
          .set(static_cast<std::int64_t>(stats.blocks().size()));
      metrics_->gauge("ingest.window.flows")
          .set(static_cast<std::int64_t>(stats.flows_ingested()));
    }
    if (!published.ok()) {
      totals.publish_failures += 1;
      if (metrics_ != nullptr) metrics_->counter("ingest.publish.failures").add(1);
      return;
    }
    totals.publishes += 1;
    if (metrics_ != nullptr) {
      metrics_->gauge("ingest.publish.epochs").set(static_cast<std::int64_t>(totals.publishes));
      metrics_->counter("ingest.publish.bytes").add(published.value());
    }
    if (on_publish) on_publish(totals.publishes, snapshot);
  };

  while (!stop_.load(std::memory_order_acquire)) {
    auto event_read = reader.next();
    if (!event_read.ok()) return event_read.error();
    const StreamEvent& event = event_read.value();

    if (event.kind == StreamEvent::Kind::kStreamEnd) break;

    if (event.kind == StreamEvent::Kind::kDataset) {
      obs::StageTimer ingest_timer(metrics_, "ingest.ingest_us");
      window.add_flows(event.day, event.flows, event.sampling_rate);
      ingest_timer.stop();
      totals.datasets += 1;
      totals.flows += event.flows.size();
      if (metrics_ != nullptr) {
        metrics_->counter("ingest.datasets").add(1);
        metrics_->counter("ingest.flows").add(event.flows.size());
      }
      continue;
    }

    // Day-end: the day elapsed even if no dataset frame arrived for it
    // (an outage day still widens the volume normalisation), then the
    // window slides and — on cadence — the funnel re-runs.
    window.note_day(event.day);
    const auto evicted = window.advance_to(event.day);
    totals.days += 1;
    totals.days_evicted += static_cast<std::uint64_t>(evicted.days);
    totals.rows_evicted += evicted.rows;
    totals.last_day = event.day;
    completed_days += 1;
    if (metrics_ != nullptr) {
      metrics_->counter("ingest.days").add(1);
      metrics_->counter("ingest.days_evicted").add(static_cast<std::uint64_t>(evicted.days));
      metrics_->counter("ingest.rows_evicted").add(evicted.rows);
    }

    if (completed_days % static_cast<std::uint64_t>(std::max(1, config_.cadence_days)) == 0) {
      refresh_and_publish();
      if (config_.max_epochs != 0 && totals.publishes >= config_.max_epochs) break;
    }
  }

  return totals;
}

}  // namespace mtscope::ingest
