#include "ingest/publish.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <span>
#include <vector>

namespace mtscope::ingest {

namespace {

util::Error io_error(const std::string& what, const std::string& path) {
  return util::make_error("publish.io", what + " " + path + ": " + std::strerror(errno));
}

/// write(2) until done, honouring the short-write fault.  Returns bytes
/// actually written, or -1 on a real io error.
std::int64_t write_all(int fd, std::span<const std::uint8_t> bytes, std::size_t limit) {
  std::size_t off = 0;
  const std::size_t want = std::min(bytes.size(), limit);
  while (off < want) {
    const auto n = ::write(fd, bytes.data() + off, want - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    off += static_cast<std::size_t>(n);
  }
  return static_cast<std::int64_t>(off);
}

/// fsync the directory containing `path` so the rename itself is durable.
void sync_parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash + 1);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

std::string publish_temp_path(const std::string& path) { return path + ".tmp"; }

util::Result<std::uint64_t> publish_snapshot(const serve::TelescopeSnapshot& snapshot,
                                             const std::string& path,
                                             const PublishFaults* faults) {
  std::vector<std::uint8_t> bytes = serve::serialize_snapshot(snapshot);
  if (faults != nullptr && faults->corrupt_first_byte && !bytes.empty()) {
    bytes[0] ^= 0xff;
  }

  const std::string tmp = publish_temp_path(path);
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return io_error("cannot open", tmp);

  const std::size_t limit =
      faults != nullptr ? faults->truncate_after_bytes : static_cast<std::size_t>(-1);
  const std::int64_t written = write_all(fd, bytes, limit);
  if (written < 0) {
    const auto error = io_error("cannot write", tmp);
    ::close(fd);
    return error;
  }
  if (static_cast<std::size_t>(written) < bytes.size()) {
    // Injected ENOSPC / power cut: the torn temp file stays behind, exactly
    // as a crash would leave it; the target was never touched.
    ::close(fd);
    return util::make_error("publish.torn",
                            "short write publishing " + path + " (" + std::to_string(written) +
                                " of " + std::to_string(bytes.size()) + " bytes)");
  }
  if (::fsync(fd) != 0) {
    const auto error = io_error("cannot fsync", tmp);
    ::close(fd);
    return error;
  }
  if (::close(fd) != 0) return io_error("cannot close", tmp);

  if (faults != nullptr && faults->fail_before_rename) {
    // Injected crash in the window between a durable temp and the rename:
    // complete temp on disk, target untouched.
    return util::make_error("publish.crashed",
                            "simulated crash before rename of " + tmp + " onto " + path);
  }

  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return io_error("cannot rename " + tmp + " onto", path);
  }
  sync_parent_dir(path);
  return static_cast<std::uint64_t>(bytes.size());
}

}  // namespace mtscope::ingest
