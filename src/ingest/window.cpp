#include "ingest/window.hpp"

#include <algorithm>
#include <utility>

namespace mtscope::ingest {

SlidingWindow::SlidingWindow(int window_days,
                             std::shared_ptr<const trie::Block24Set> source_mask,
                             bool analytics)
    : window_days_(std::max(1, window_days)),
      source_mask_(std::move(source_mask)),
      analytics_(analytics) {}

pipeline::VantageStats& SlidingWindow::slice_for(int day) {
  // Datasets almost always arrive for the newest day; scan from the back.
  auto it = slices_.end();
  while (it != slices_.begin()) {
    auto prev = std::prev(it);
    if (prev->day == day) return prev->stats;
    if (prev->day < day) break;
    it = prev;
  }
  it = slices_.insert(it, DaySlice{day, pipeline::VantageStats(source_mask_, analytics_)});
  return it->stats;
}

void SlidingWindow::add_flows(int day, std::span<const flow::FlowRecord> flows,
                              std::uint32_t sampling_rate) {
  slice_for(day).add_flows(flows, sampling_rate, day);
}

void SlidingWindow::note_day(int day) { slice_for(day).note_day(day); }

SlidingWindow::EvictionReport SlidingWindow::advance_to(int newest_day) {
  return evict_before(newest_day - window_days_ + 1);
}

SlidingWindow::EvictionReport SlidingWindow::evict_before(int day) {
  EvictionReport report;
  while (!slices_.empty() && slices_.front().day < day) {
    report.days += 1;
    report.rows += slices_.front().stats.blocks().size();
    report.flows += slices_.front().stats.flows_ingested();
    slices_.pop_front();
  }
  return report;
}

pipeline::VantageStats SlidingWindow::merged() const {
  if (slices_.empty()) return pipeline::VantageStats(source_mask_, analytics_);

  // The parallel collector's merge primitive (pipeline::merge_stats):
  // merge is commutative/associative, so the fold shape is free and the
  // result is bit-identical to any batch collect over the same days.  Only
  // the first slice is copied (the fold target); the rest merge in from
  // const views, so a publish no longer duplicates the whole window — the
  // slices stay untouched for the next cadence.
  auto it = slices_.begin();
  pipeline::VantageStats first = it->stats;
  std::vector<const pipeline::VantageStats*> rest;
  rest.reserve(slices_.size() - 1);
  for (++it; it != slices_.end(); ++it) rest.push_back(&it->stats);
  return pipeline::merge_stats(std::move(first), rest);
}

std::vector<int> SlidingWindow::days() const {
  std::vector<int> out;
  out.reserve(slices_.size());
  for (const auto& slice : slices_) out.push_back(slice.day);
  return out;
}

std::uint64_t SlidingWindow::flows_ingested() const noexcept {
  std::uint64_t total = 0;
  for (const auto& slice : slices_) total += slice.stats.flows_ingested();
  return total;
}

}  // namespace mtscope::ingest
