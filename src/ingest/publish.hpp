// Atomic snapshot publication (DESIGN.md §13): the write side of the
// zero-touch publish pipeline.
//
// serve::write_snapshot_file streams bytes straight into the target path —
// fine for a one-shot `infer --snapshot-out`, fatal for continuous
// operation where a `mtscope serve` watcher (or a SIGHUP) may load the
// path at any instant.  publish_snapshot() instead writes the full image
// to `<path>.tmp`, fsyncs it, rename(2)s it over the target, and fsyncs
// the directory.  POSIX rename atomicity guarantees every reader observes
// either the complete old file or the complete new file — never a torn
// prefix — and the directory fsync makes the swap durable across a crash.
//
// A crash (or injected fault) anywhere before the rename leaves the target
// untouched and at most a stale `<path>.tmp` behind; the next successful
// publish overwrites it.  One publisher per target path is the contract
// (the ingest daemon), which is what makes the fixed temp name safe.
//
// PublishFaults is the test seam for the crash windows the fault-injection
// suite pins (tests/test_snapshot.cpp): a short write (ENOSPC / power
// cut), a crash after the temp write but before the rename, and silent
// bit rot that only the snapshot CRCs can catch downstream.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "serve/snapshot.hpp"
#include "util/result.hpp"

namespace mtscope::ingest {

/// Injectable failures, each simulating a crash point.  Default-constructed
/// faults are all disabled (the production path).
struct PublishFaults {
  /// Stop writing the temp file after this many bytes (simulates ENOSPC or
  /// a crash mid-write).  SIZE_MAX disables.
  std::size_t truncate_after_bytes = static_cast<std::size_t>(-1);

  /// Abort after the temp file is complete and fsynced, before rename(2)
  /// (the narrowest crash window: durable temp, unchanged target).
  bool fail_before_rename = false;

  /// Flip the first byte of the image before writing (silent corruption;
  /// the publish "succeeds" and the reader's CRC check must catch it).
  bool corrupt_first_byte = false;
};

/// Serialize and atomically publish `snapshot` at `path`.  Returns the
/// byte count written.  Failures — real io errors ("publish.io") or
/// injected crashes ("publish.torn", "publish.crashed") — leave the
/// target path untouched.
[[nodiscard]] util::Result<std::uint64_t> publish_snapshot(
    const serve::TelescopeSnapshot& snapshot, const std::string& path,
    const PublishFaults* faults = nullptr);

/// The temp path publish_snapshot() stages through (shared with tests).
[[nodiscard]] std::string publish_temp_path(const std::string& path);

}  // namespace mtscope::ingest
