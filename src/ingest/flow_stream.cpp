#include "ingest/flow_stream.hpp"

#include <istream>
#include <ostream>

#include "util/bytes.hpp"

namespace mtscope::ingest {

namespace {

constexpr std::uint8_t kMagic[8] = {'M', 'T', 'F', 'L', 'O', 'W', '\r', '\n'};
constexpr std::size_t kHeaderBytes = 24;  // magic + version + flags + seed + crc
constexpr std::uint16_t kFlagTiny = 0x0001;

void encode_record(std::vector<std::uint8_t>& out, const flow::FlowRecord& r) {
  util::le_put_u32(out, r.key.src.value());
  util::le_put_u32(out, r.key.dst.value());
  util::le_put_u16(out, r.key.src_port);
  util::le_put_u16(out, r.key.dst_port);
  out.push_back(static_cast<std::uint8_t>(r.key.proto));
  out.push_back(r.tcp_flags_or);
  util::le_put_u64(out, r.first_us);
  util::le_put_u64(out, r.last_us);
  util::le_put_u64(out, r.packets);
  util::le_put_u64(out, r.bytes);
  util::le_put_u32(out, r.sampling_rate);
}

flow::FlowRecord decode_record(std::span<const std::uint8_t> b, std::size_t at) {
  flow::FlowRecord r;
  r.key.src = net::Ipv4Addr(util::le_get_u32(b, at + 0));
  r.key.dst = net::Ipv4Addr(util::le_get_u32(b, at + 4));
  r.key.src_port = util::le_get_u16(b, at + 8);
  r.key.dst_port = util::le_get_u16(b, at + 10);
  r.key.proto = static_cast<net::IpProto>(b[at + 12]);
  r.tcp_flags_or = b[at + 13];
  r.first_us = util::le_get_u64(b, at + 14);
  r.last_us = util::le_get_u64(b, at + 22);
  r.packets = util::le_get_u64(b, at + 30);
  r.bytes = util::le_get_u64(b, at + 38);
  r.sampling_rate = util::le_get_u32(b, at + 46);
  return r;
}

}  // namespace

// --- writer ---------------------------------------------------------------

void FlowStreamWriter::put(std::span<const std::uint8_t> bytes) {
  out_.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
}

bool FlowStreamWriter::ok() const noexcept { return out_.good(); }

void FlowStreamWriter::write_header(const StreamHeader& header) {
  std::vector<std::uint8_t> bytes(std::begin(kMagic), std::end(kMagic));
  util::le_put_u16(bytes, kFlowStreamVersion);
  util::le_put_u16(bytes, header.tiny ? kFlagTiny : 0);
  util::le_put_u64(bytes, header.seed);
  util::le_put_u32(bytes, util::crc32(bytes));
  put(bytes);
  out_.flush();
}

void FlowStreamWriter::write_dataset(int day, std::uint32_t sampling_rate,
                                     std::string_view vantage,
                                     std::span<const flow::FlowRecord> flows) {
  std::vector<std::uint8_t> payload;
  payload.reserve(flows.size() * kFlowRecordBytes);
  for (const auto& r : flows) encode_record(payload, r);

  std::vector<std::uint8_t> frame;
  frame.reserve(16 + vantage.size() + payload.size());
  frame.push_back(static_cast<std::uint8_t>(StreamEvent::Kind::kDataset));
  util::le_put_u32(frame, static_cast<std::uint32_t>(day));
  util::le_put_u32(frame, sampling_rate);
  frame.push_back(static_cast<std::uint8_t>(vantage.size() & 0xff));
  for (const char c : vantage.substr(0, 255)) {
    frame.push_back(static_cast<std::uint8_t>(c));
  }
  util::le_put_u32(frame, static_cast<std::uint32_t>(flows.size()));
  util::le_put_u32(frame, util::crc32(payload));
  frame.insert(frame.end(), payload.begin(), payload.end());
  put(frame);
  out_.flush();
}

void FlowStreamWriter::write_day_end(int day) {
  std::vector<std::uint8_t> frame;
  frame.push_back(static_cast<std::uint8_t>(StreamEvent::Kind::kDayEnd));
  util::le_put_u32(frame, static_cast<std::uint32_t>(day));
  put(frame);
  out_.flush();
}

void FlowStreamWriter::write_stream_end() {
  const std::uint8_t kind = static_cast<std::uint8_t>(StreamEvent::Kind::kStreamEnd);
  put({&kind, 1});
  out_.flush();
}

// --- reader ---------------------------------------------------------------

int FlowStreamReader::read_exact(std::span<std::uint8_t> out) {
  std::size_t got = 0;
  while (got < out.size()) {
    in_.read(reinterpret_cast<char*>(out.data() + got),
             static_cast<std::streamsize>(out.size() - got));
    const auto n = in_.gcount();
    if (n <= 0) return got == 0 ? -1 : 1;
    got += static_cast<std::size_t>(n);
  }
  return 0;
}

util::Result<StreamHeader> FlowStreamReader::read_header() {
  std::uint8_t raw[kHeaderBytes];
  if (read_exact(raw) != 0) {
    return util::make_error("stream.truncated", "flow stream shorter than its header");
  }
  const std::span<const std::uint8_t> bytes(raw, kHeaderBytes);
  for (std::size_t i = 0; i < sizeof(kMagic); ++i) {
    if (raw[i] != kMagic[i]) {
      return util::make_error("stream.bad_magic", "not a flow stream (bad magic)");
    }
  }
  const std::uint16_t version = util::le_get_u16(bytes, 8);
  if (version != kFlowStreamVersion) {
    return util::make_error("stream.unsupported_version",
                            "flow stream version " + std::to_string(version) +
                                " (reader speaks " + std::to_string(kFlowStreamVersion) + ")");
  }
  const std::uint32_t crc = util::le_get_u32(bytes, kHeaderBytes - 4);
  if (crc != util::crc32(bytes.first(kHeaderBytes - 4))) {
    return util::make_error("stream.bad_crc", "flow stream header checksum mismatch");
  }
  StreamHeader header;
  header.tiny = (util::le_get_u16(bytes, 10) & kFlagTiny) != 0;
  header.seed = util::le_get_u64(bytes, 12);
  return header;
}

util::Result<StreamEvent> FlowStreamReader::next() {
  std::uint8_t kind_byte = 0;
  const int status = read_exact({&kind_byte, 1});
  StreamEvent event;
  if (status == -1) {
    // EOF on a frame boundary: the producer stopped cleanly enough.
    event.kind = StreamEvent::Kind::kStreamEnd;
    return event;
  }

  switch (static_cast<StreamEvent::Kind>(kind_byte)) {
    case StreamEvent::Kind::kStreamEnd:
      event.kind = StreamEvent::Kind::kStreamEnd;
      return event;

    case StreamEvent::Kind::kDayEnd: {
      std::uint8_t raw[4];
      if (read_exact(raw) != 0) {
        return util::make_error("stream.truncated", "flow stream ends inside a day-end frame");
      }
      event.kind = StreamEvent::Kind::kDayEnd;
      event.day = static_cast<int>(util::le_get_u32(raw, 0));
      return event;
    }

    case StreamEvent::Kind::kDataset: {
      std::uint8_t fixed[9];  // day + sampling_rate + vantage_len
      if (read_exact(fixed) != 0) {
        return util::make_error("stream.truncated", "flow stream ends inside a dataset frame");
      }
      event.kind = StreamEvent::Kind::kDataset;
      event.day = static_cast<int>(util::le_get_u32(fixed, 0));
      event.sampling_rate = util::le_get_u32(fixed, 4);
      const std::size_t vantage_len = fixed[8];

      std::vector<std::uint8_t> var(vantage_len + 8);  // vantage + count + crc
      if (read_exact(var) != 0) {
        return util::make_error("stream.truncated", "flow stream ends inside a dataset frame");
      }
      event.vantage.assign(reinterpret_cast<const char*>(var.data()), vantage_len);
      const std::uint32_t count = util::le_get_u32(var, vantage_len);
      const std::uint32_t crc = util::le_get_u32(var, vantage_len + 4);

      std::vector<std::uint8_t> payload(std::size_t{count} * kFlowRecordBytes);
      if (read_exact(payload) != 0) {
        return util::make_error("stream.truncated",
                                "flow stream ends inside a dataset payload (" +
                                    std::to_string(count) + " records expected)");
      }
      if (util::crc32(payload) != crc) {
        return util::make_error("stream.bad_crc", "dataset payload checksum mismatch (day " +
                                                      std::to_string(event.day) + ")");
      }
      event.flows.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        event.flows.push_back(decode_record(payload, std::size_t{i} * kFlowRecordBytes));
      }
      return event;
    }
  }
  return util::make_error("stream.bad_frame",
                          "unknown frame kind " + std::to_string(int{kind_byte}));
}

}  // namespace mtscope::ingest
