// IngestDaemon: continuous telescope operation (DESIGN.md §13).
//
// The batch pipeline is collect → infer → snapshot, once.  The daemon is
// the same pipeline folded into a loop over a flow stream (flow_stream.hpp):
//
//   dataset frame  -> route into the day's SlidingWindow slice
//   day-end frame  -> slide the window, and on every cadence_days-th
//                     completed day: merge the retained slices, re-derive
//                     the spoofing tolerance (§7.2 — it is a per-window
//                     statistic), re-run the seven-step funnel, and
//                     atomically publish a fresh snapshot over
//                     `snapshot_out` (publish.hpp)
//
// A `mtscope serve --watch-interval-ms` daemon pointed at the same path
// picks each epoch up without a signal — the zero-touch publish pipeline.
// Because the publish is an atomic rename, the watcher can never load a
// torn file; because the window merge is bit-identical to batch (see
// window.hpp), every published epoch is byte-for-byte the snapshot a
// batch run over the same days would have written.
//
// The stream header carries the simulation seed and scale, from which the
// daemon rebuilds the generating plan (RIB, universe mask, unrouted /8s,
// volume scale) — the stand-in for the Route Views feed and IXP metadata
// a real deployment configures out of band.
//
// Observability (`ingest.*`, null-registry convention): per-frame counters
// (datasets, flows, days, evictions), window gauges (days, blocks, flows
// retained), per-cadence stage timers (merge, tolerance, funnel, snapshot
// build, publish) and the publish epoch/failure tallies.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <span>
#include <string>

#include "ingest/flow_stream.hpp"
#include "ingest/window.hpp"
#include "obs/metrics.hpp"
#include "serve/analytics_format.hpp"
#include "serve/snapshot.hpp"
#include "util/result.hpp"

namespace mtscope::sim {
class AddressPlan;
}

namespace mtscope::ingest {

struct IngestConfig {
  std::string source_path;    // flow stream: regular file or FIFO
  std::string snapshot_out;   // atomic publish target
  int window_days = 7;        // paper's multi-day window length
  int cadence_days = 1;       // funnel + publish every N completed days
  unsigned threads = 1;       // funnel worker threads (never changes bytes)
  bool tolerance = true;      // re-derive the §7.2 spoofing tolerance
  bool analytics = true;      // maintain the IBR matrix, publish ANALYTICS
  std::uint64_t max_epochs = 0;  // stop after N publishes; 0 = stream end

  /// Stamped into RunMetadata::created_unix_s verbatim.  The CLI passes
  /// wall-clock time; tests pass a constant so published bytes are a pure
  /// function of the stream.
  std::uint64_t created_unix_s = 0;
};

/// Lifetime totals run() reports (the obs counters mirror them).
struct IngestTotals {
  std::uint64_t datasets = 0;
  std::uint64_t flows = 0;
  std::uint64_t days = 0;          // day-end frames consumed
  std::uint64_t days_evicted = 0;
  std::uint64_t rows_evicted = 0;
  std::uint64_t publishes = 0;     // successful epochs
  std::uint64_t publish_failures = 0;
  int last_day = -1;               // newest completed day; -1 if none
};

/// The RunMetadata every publish stamps — a pure function of the stream
/// header and window state, shared with the differential harness so the
/// batch baseline reconstructs the daemon's bytes exactly.
[[nodiscard]] serve::RunMetadata publish_metadata(const StreamHeader& header, int window_days,
                                                  std::span<const int> days,
                                                  std::uint64_t flows_ingested,
                                                  std::uint64_t spoof_tolerance_pkts,
                                                  std::uint64_t created_unix_s);

/// The labeler the daemon (and the batch CLI) hands to build_analytics:
/// country + continent from the plan's GeoDb, network type by resolving
/// the block's covering announcement through the plan's NetTypeDb — the
/// simulator's stand-ins for GeoLite2 and IPinfo.  Captures `plan` by
/// reference; the plan must outlive the labeler.
[[nodiscard]] serve::BlockLabeler plan_labeler(const sim::AddressPlan& plan);

class IngestDaemon {
 public:
  explicit IngestDaemon(IngestConfig config, obs::MetricsRegistry* metrics = nullptr);

  /// Consume the stream until a clean end, max_epochs, or request_stop().
  /// Blocking (FIFO sources park in read).  Stream decode errors and a
  /// missing source are typed failures; a *publish* failure is not fatal —
  /// the previous epoch keeps serving, the failure is counted, and
  /// ingestion continues (the operational contract).
  [[nodiscard]] util::Result<IngestTotals> run();

  /// Called after each successful publish, before the next frame is read:
  /// (epoch ordinal starting at 1, the snapshot just published).  Tests
  /// use it to gate the producer on a consumer's progress.
  std::function<void(std::uint64_t, const serve::TelescopeSnapshot&)> on_publish;

  /// Stop after the frame in flight.  Thread-safe.
  void request_stop() noexcept { stop_.store(true, std::memory_order_release); }

 private:
  IngestConfig config_;
  obs::MetricsRegistry* metrics_;
  std::atomic<bool> stop_{false};
};

}  // namespace mtscope::ingest
