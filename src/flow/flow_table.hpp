// 5-tuple flow aggregation with active/idle timeouts — the exporter-side
// cache that turns sampled packets into IPFIX flow records.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "flow/packet.hpp"
#include "flow/record.hpp"

namespace mtscope::flow {

struct FlowTableConfig {
  std::uint64_t idle_timeout_us = 15ull * 1'000'000;    // expire after quiet period
  std::uint64_t active_timeout_us = 300ull * 1'000'000; // force-export long flows
  std::uint32_t sampling_rate = 1;                      // recorded into exported flows
  std::size_t max_entries = 1u << 20;                   // hard cap; evicts oldest on overflow
};

/// Aggregates packets into flows.  Call `add` with monotonically
/// non-decreasing timestamps; expired flows accumulate in the export queue
/// retrievable via `drain_exported`.  `flush` force-exports everything.
class FlowTable {
 public:
  explicit FlowTable(FlowTableConfig config = {});

  /// Account one (sampled) packet.
  void add(const PacketMeta& packet);

  /// Take all flows exported so far (expired or evicted).
  [[nodiscard]] std::vector<FlowRecord> drain_exported();

  /// Force-export all active flows (end of measurement interval).
  void flush();

  [[nodiscard]] std::size_t active_flows() const noexcept { return table_.size(); }
  [[nodiscard]] std::uint64_t packets_seen() const noexcept { return packets_seen_; }
  [[nodiscard]] std::uint64_t flows_exported() const noexcept { return flows_exported_; }

 private:
  void expire(std::uint64_t now_us);
  void export_flow(const FlowRecord& flow);

  FlowTableConfig config_;
  std::unordered_map<FlowKey, FlowRecord> table_;
  std::vector<FlowRecord> exported_;
  std::uint64_t last_expiry_scan_us_ = 0;
  std::uint64_t packets_seen_ = 0;
  std::uint64_t flows_exported_ = 0;
};

}  // namespace mtscope::flow
