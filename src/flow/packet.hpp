// Header-level packet metadata — the unit of traffic in the simulator.
//
// Vantage points never see payloads (the paper's IXP data is header-only
// IPFIX); PacketMeta carries exactly the fields the flow pipeline needs.
// Telescope observers can materialise full wire bytes from it via
// net::synthesize_packet when a pcap is wanted.
#pragma once

#include <cstdint>

#include "net/headers.hpp"
#include "net/ipv4.hpp"

namespace mtscope::flow {

struct PacketMeta {
  std::uint64_t timestamp_us = 0;
  net::Ipv4Addr src;
  net::Ipv4Addr dst;
  net::IpProto proto = net::IpProto::kTcp;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t ip_length = 40;  // total IP packet length in bytes
  std::uint8_t tcp_flags = 0;

  friend bool operator==(const PacketMeta&, const PacketMeta&) = default;
};

/// A 40-byte TCP SYN — the signature packet of Internet background
/// radiation (>=93% of telescope TCP traffic in the paper).
[[nodiscard]] inline PacketMeta make_syn(std::uint64_t ts_us, net::Ipv4Addr src,
                                         net::Ipv4Addr dst, std::uint16_t src_port,
                                         std::uint16_t dst_port,
                                         std::uint16_t ip_length = 40) {
  PacketMeta p;
  p.timestamp_us = ts_us;
  p.src = src;
  p.dst = dst;
  p.proto = net::IpProto::kTcp;
  p.src_port = src_port;
  p.dst_port = dst_port;
  p.ip_length = ip_length;
  p.tcp_flags = net::TcpFlags::kSyn;
  return p;
}

}  // namespace mtscope::flow
