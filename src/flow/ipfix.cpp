#include "flow/ipfix.hpp"

#include <unordered_map>

#include "util/bytes.hpp"

namespace mtscope::flow {

namespace {

using util::be_get_u16;
using util::be_get_u32;
using util::be_put_u16;
using util::be_put_u32;
using util::be_put_u64;

constexpr std::uint16_t kVersion = 10;
constexpr std::size_t kMessageHeaderSize = 16;
constexpr std::size_t kSetHeaderSize = 4;
constexpr std::uint16_t kTemplateSetId = 2;

// Our template: fixed field order; total record size 42 bytes.
struct FieldSpec {
  std::uint16_t element_id;
  std::uint16_t length;
};
constexpr FieldSpec kTemplateFields[] = {
    {InformationElement::kSourceIPv4Address, 4},
    {InformationElement::kDestinationIPv4Address, 4},
    {InformationElement::kSourceTransportPort, 2},
    {InformationElement::kDestinationTransportPort, 2},
    {InformationElement::kProtocolIdentifier, 1},
    {InformationElement::kTcpControlBits, 1},
    {InformationElement::kPacketDeltaCount, 8},
    {InformationElement::kOctetDeltaCount, 8},
    {InformationElement::kFlowStartMicroseconds, 8},
    {InformationElement::kFlowEndMicroseconds, 8},
    {InformationElement::kSamplingPacketInterval, 4},
};
constexpr std::size_t kFieldCount = std::size(kTemplateFields);
constexpr std::size_t kRecordSize = 4 + 4 + 2 + 2 + 1 + 1 + 8 + 8 + 8 + 8 + 4;

/// Append the template set for our record layout.
void append_template_set(std::vector<std::uint8_t>& out, std::uint16_t template_id) {
  be_put_u16(out, kTemplateSetId);
  be_put_u16(out, static_cast<std::uint16_t>(kSetHeaderSize + 4 + 4 * kFieldCount));
  be_put_u16(out, template_id);
  be_put_u16(out, static_cast<std::uint16_t>(kFieldCount));
  for (const FieldSpec& f : kTemplateFields) {
    be_put_u16(out, f.element_id);
    be_put_u16(out, f.length);
  }
}

void append_record(std::vector<std::uint8_t>& out, const FlowRecord& r) {
  be_put_u32(out, r.key.src.value());
  be_put_u32(out, r.key.dst.value());
  be_put_u16(out, r.key.src_port);
  be_put_u16(out, r.key.dst_port);
  out.push_back(static_cast<std::uint8_t>(r.key.proto));
  out.push_back(r.tcp_flags_or);
  be_put_u64(out, r.packets);
  be_put_u64(out, r.bytes);
  be_put_u64(out, r.first_us);
  be_put_u64(out, r.last_us);
  be_put_u32(out, r.sampling_rate);
}

}  // namespace

IpfixEncoder::IpfixEncoder(IpfixEncoderConfig config) : config_(config) {
  if (config_.template_id < 256) {
    throw std::invalid_argument("IpfixEncoder: template ids below 256 are reserved");
  }
  const std::size_t min_size =
      kMessageHeaderSize + kSetHeaderSize + 4 + 4 * kFieldCount + kSetHeaderSize + kRecordSize;
  if (config_.max_message_bytes < min_size || config_.max_message_bytes > 65535) {
    throw std::invalid_argument("IpfixEncoder: max_message_bytes out of range");
  }
}

std::vector<std::vector<std::uint8_t>> IpfixEncoder::encode(std::span<const FlowRecord> records,
                                                            std::uint32_t export_time_s) {
  std::vector<std::vector<std::uint8_t>> messages;
  std::size_t index = 0;
  bool template_sent = false;

  while (index < records.size() || messages.empty()) {
    std::vector<std::uint8_t> msg;
    // Message header placeholder; length patched at the end.
    be_put_u16(msg, kVersion);
    be_put_u16(msg, 0);
    be_put_u32(msg, export_time_s);
    be_put_u32(msg, sequence_);
    be_put_u32(msg, config_.observation_domain);

    if (config_.template_in_every_message || !template_sent) {
      append_template_set(msg, config_.template_id);
      template_sent = true;
    }

    if (index < records.size()) {
      const std::size_t data_set_start = msg.size();
      be_put_u16(msg, config_.template_id);
      be_put_u16(msg, 0);  // set length patched below
      std::size_t count_in_set = 0;
      while (index < records.size() &&
             msg.size() + kRecordSize <= config_.max_message_bytes) {
        append_record(msg, records[index]);
        ++index;
        ++count_in_set;
      }
      const auto set_len = static_cast<std::uint16_t>(msg.size() - data_set_start);
      msg[data_set_start + 2] = static_cast<std::uint8_t>(set_len >> 8);
      msg[data_set_start + 3] = static_cast<std::uint8_t>(set_len & 0xff);
      sequence_ += static_cast<std::uint32_t>(count_in_set);
    }

    const auto msg_len = static_cast<std::uint16_t>(msg.size());
    msg[2] = static_cast<std::uint8_t>(msg_len >> 8);
    msg[3] = static_cast<std::uint8_t>(msg_len & 0xff);
    messages.push_back(std::move(msg));

    if (records.empty()) break;  // template-only heartbeat message
  }
  return messages;
}

util::Result<std::size_t> IpfixDecoder::feed(std::span<const std::uint8_t> message) {
  if (message.size() < kMessageHeaderSize) {
    return util::make_error("ipfix.truncated", "message shorter than header");
  }
  const std::uint16_t version = be_get_u16(message, 0);
  if (version != kVersion) {
    return util::make_error("ipfix.version", "unsupported IPFIX version");
  }
  const std::uint16_t declared_length = be_get_u16(message, 2);
  if (declared_length < kMessageHeaderSize || declared_length > message.size()) {
    return util::make_error("ipfix.length", "declared message length invalid");
  }
  const std::uint32_t domain = be_get_u32(message, 12);

  std::size_t decoded_here = 0;
  std::size_t offset = kMessageHeaderSize;
  while (offset < declared_length) {
    if (offset + kSetHeaderSize > declared_length) {
      return util::make_error("ipfix.set", "set header cut short");
    }
    const std::uint16_t set_id = be_get_u16(message, offset);
    const std::uint16_t set_length = be_get_u16(message, offset + 2);
    if (set_length < kSetHeaderSize || offset + set_length > declared_length) {
      return util::make_error("ipfix.set", "set length invalid");
    }
    const auto body = message.subspan(offset + kSetHeaderSize, set_length - kSetHeaderSize);

    if (set_id == kTemplateSetId) {
      auto result = decode_template_set(domain, body);
      if (!result.ok()) return result.error();
    } else if (set_id >= 256) {
      auto result = decode_data_set(domain, set_id, body);
      if (!result.ok()) return result.error();
      decoded_here += result.value();
    } else {
      // Options templates (3) and reserved ids: skip per RFC 7011 §8.
      ++sets_skipped_;
    }
    offset += set_length;
  }
  ++messages_;
  records_ += decoded_here;
  return decoded_here;
}

util::Result<std::size_t> IpfixDecoder::decode_template_set(std::uint32_t domain,
                                                            std::span<const std::uint8_t> body) {
  std::size_t offset = 0;
  std::size_t parsed = 0;
  // A template set may hold several template records; trailing bytes smaller
  // than a minimal record are padding.
  while (offset + 4 <= body.size()) {
    const std::uint16_t template_id = be_get_u16(body, offset);
    const std::uint16_t field_count = be_get_u16(body, offset + 2);
    if (template_id < 256) {
      return util::make_error("ipfix.template", "template id below 256");
    }
    offset += 4;
    if (offset + std::size_t{field_count} * 4 > body.size()) {
      return util::make_error("ipfix.template", "template record cut short");
    }
    std::vector<TemplateField> fields;
    fields.reserve(field_count);
    for (std::uint16_t f = 0; f < field_count; ++f) {
      TemplateField field;
      field.element_id = be_get_u16(body, offset);
      field.length = be_get_u16(body, offset + 2);
      if (field.element_id & 0x8000u) {
        return util::make_error("ipfix.template", "enterprise elements not supported");
      }
      if (field.length == 0 || field.length == 0xffff) {
        return util::make_error("ipfix.template", "variable-length fields not supported");
      }
      fields.push_back(field);
      offset += 4;
    }
    templates_[TemplateKey{domain, template_id}] = std::move(fields);
    ++parsed;
  }
  return parsed;
}

util::Result<std::size_t> IpfixDecoder::decode_data_set(std::uint32_t domain,
                                                        std::uint16_t set_id,
                                                        std::span<const std::uint8_t> body) {
  const auto it = templates_.find(TemplateKey{domain, set_id});
  if (it == templates_.end()) {
    return util::make_error("ipfix.data", "data set references unknown template");
  }
  const auto& fields = it->second;
  std::size_t record_size = 0;
  for (const TemplateField& f : fields) record_size += f.length;
  if (record_size == 0) return util::make_error("ipfix.data", "zero-size record");

  std::size_t decoded = 0;
  std::size_t offset = 0;
  while (offset + record_size <= body.size()) {
    FlowRecord r;
    for (const TemplateField& f : fields) {
      // Read the field value as a big-endian unsigned integer.
      std::uint64_t value = 0;
      if (f.length > 8) return util::make_error("ipfix.data", "field longer than 8 bytes");
      for (std::uint16_t b = 0; b < f.length; ++b) value = (value << 8) | body[offset + b];
      switch (f.element_id) {
        case InformationElement::kSourceIPv4Address:
          r.key.src = net::Ipv4Addr(static_cast<std::uint32_t>(value));
          break;
        case InformationElement::kDestinationIPv4Address:
          r.key.dst = net::Ipv4Addr(static_cast<std::uint32_t>(value));
          break;
        case InformationElement::kSourceTransportPort:
          r.key.src_port = static_cast<std::uint16_t>(value);
          break;
        case InformationElement::kDestinationTransportPort:
          r.key.dst_port = static_cast<std::uint16_t>(value);
          break;
        case InformationElement::kProtocolIdentifier:
          r.key.proto = static_cast<net::IpProto>(value);
          break;
        case InformationElement::kTcpControlBits:
          r.tcp_flags_or = static_cast<std::uint8_t>(value);
          break;
        case InformationElement::kPacketDeltaCount:
          r.packets = value;
          break;
        case InformationElement::kOctetDeltaCount:
          r.bytes = value;
          break;
        case InformationElement::kFlowStartMicroseconds:
          r.first_us = value;
          break;
        case InformationElement::kFlowEndMicroseconds:
          r.last_us = value;
          break;
        case InformationElement::kSamplingPacketInterval:
          r.sampling_rate = static_cast<std::uint32_t>(value);
          break;
        default:
          break;  // tolerate extra elements from richer exporters
      }
      offset += f.length;
    }
    decoded_.push_back(r);
    ++decoded;
  }
  // Remaining bytes < record_size are padding; RFC 7011 permits this.
  return decoded;
}

std::vector<FlowRecord> IpfixDecoder::drain() {
  std::vector<FlowRecord> out;
  out.swap(decoded_);
  return out;
}

}  // namespace mtscope::flow
