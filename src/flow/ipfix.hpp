// IPFIX (RFC 7011) wire codec for flow records.
//
// The vantage points export flows over this codec and the collector decodes
// them back, so the inference pipeline consumes exactly what a real IPFIX
// mediation path would deliver.  We implement the message/set/template
// framing faithfully: 16-byte message header (version 10), template sets
// (set id 2) and data sets addressed by template id (>= 256).  One
// simplification is documented: timestamp elements 154/155
// (flowStart/EndMicroseconds) are encoded as plain uint64 microseconds since
// the epoch instead of NTP-format dateTimeMicroseconds — both ends of this
// codec are ours, and the value survives round-trips exactly.
//
// The decoder never trusts input: every length field is bounds-checked, an
// unknown template id is a skippable condition (records buffered until the
// template arrives is out of scope — we require template-before-data, as our
// exporter guarantees), and unknown set ids are skipped per RFC 7011 §8.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "flow/record.hpp"
#include "util/result.hpp"

namespace mtscope::flow {

/// IANA information element ids used by our template.
struct InformationElement {
  static constexpr std::uint16_t kOctetDeltaCount = 1;      // 8 bytes
  static constexpr std::uint16_t kPacketDeltaCount = 2;     // 8 bytes
  static constexpr std::uint16_t kProtocolIdentifier = 4;   // 1 byte
  static constexpr std::uint16_t kTcpControlBits = 6;       // 1 byte
  static constexpr std::uint16_t kSourceTransportPort = 7;  // 2 bytes
  static constexpr std::uint16_t kSourceIPv4Address = 8;    // 4 bytes
  static constexpr std::uint16_t kDestinationTransportPort = 11;  // 2 bytes
  static constexpr std::uint16_t kDestinationIPv4Address = 12;    // 4 bytes
  static constexpr std::uint16_t kFlowStartMicroseconds = 154;    // 8 bytes (see header note)
  static constexpr std::uint16_t kFlowEndMicroseconds = 155;      // 8 bytes
  static constexpr std::uint16_t kSamplingPacketInterval = 305;   // 4 bytes
};

struct IpfixEncoderConfig {
  std::uint32_t observation_domain = 0;
  std::uint16_t template_id = 256;
  /// Maximum message size; RFC caps messages at 65535 bytes.
  std::size_t max_message_bytes = 1400;
  /// Re-send the template set at the start of every message (robust for
  /// datagram transport; costs 4+4*11 bytes per message).
  bool template_in_every_message = true;
};

/// Encodes flow records into one or more IPFIX messages.
class IpfixEncoder {
 public:
  explicit IpfixEncoder(IpfixEncoderConfig config = {});

  /// Encode `records` into framed IPFIX messages.  `export_time_s` goes into
  /// the message headers; the sequence number advances across calls.
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> encode(
      std::span<const FlowRecord> records, std::uint32_t export_time_s);

  [[nodiscard]] std::uint32_t sequence() const noexcept { return sequence_; }

 private:
  IpfixEncoderConfig config_;
  std::uint32_t sequence_ = 0;
};

/// Decodes IPFIX messages produced by any exporter using our template
/// layout.  Stateful: template definitions persist across messages, keyed
/// by (observation domain, template id).
class IpfixDecoder {
 public:
  /// Decode one message, appending decoded flows to the internal buffer.
  /// Returns an error for malformed framing; unknown sets are skipped.
  [[nodiscard]] util::Result<std::size_t> feed(std::span<const std::uint8_t> message);

  /// Take everything decoded so far.
  [[nodiscard]] std::vector<FlowRecord> drain();

  [[nodiscard]] std::uint64_t messages_seen() const noexcept { return messages_; }
  [[nodiscard]] std::uint64_t records_decoded() const noexcept { return records_; }
  [[nodiscard]] std::uint64_t sets_skipped() const noexcept { return sets_skipped_; }

 private:
  struct TemplateField {
    std::uint16_t element_id = 0;
    std::uint16_t length = 0;
  };
  struct TemplateKey {
    std::uint32_t domain = 0;
    std::uint16_t template_id = 0;
    friend bool operator==(const TemplateKey&, const TemplateKey&) = default;
  };
  struct TemplateKeyHash {
    std::size_t operator()(const TemplateKey& k) const noexcept {
      return (std::size_t{k.domain} << 16) ^ k.template_id;
    }
  };

  [[nodiscard]] util::Result<std::size_t> decode_template_set(
      std::uint32_t domain, std::span<const std::uint8_t> body);
  [[nodiscard]] util::Result<std::size_t> decode_data_set(
      std::uint32_t domain, std::uint16_t set_id, std::span<const std::uint8_t> body);

  std::unordered_map<TemplateKey, std::vector<TemplateField>, TemplateKeyHash> templates_;
  std::vector<FlowRecord> decoded_;
  std::uint64_t messages_ = 0;
  std::uint64_t records_ = 0;
  std::uint64_t sets_skipped_ = 0;
};

}  // namespace mtscope::flow
