// Packet samplers modelling the 1-in-N sampling IXP flow exporters apply.
//
// Two strategies:
//  * DeterministicSampler — count-based systematic sampling (every Nth
//    packet), the common router implementation and what §7.3's sub-sampling
//    experiment does ("for a factor of 2, consider every second packet").
//  * ProbabilisticSampler — i.i.d. acceptance with probability 1/N.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "util/rng.hpp"

namespace mtscope::flow {

class DeterministicSampler {
 public:
  explicit DeterministicSampler(std::uint32_t rate, std::uint32_t phase = 0)
      : rate_(rate), counter_(phase % (rate == 0 ? 1 : rate)) {
    if (rate == 0) throw std::invalid_argument("DeterministicSampler: rate must be >= 1");
  }

  /// Returns true if this packet is sampled.
  bool accept() noexcept {
    if (++counter_ >= rate_) {
      counter_ = 0;
      return true;
    }
    return false;
  }

  [[nodiscard]] std::uint32_t rate() const noexcept { return rate_; }

 private:
  std::uint32_t rate_;
  std::uint32_t counter_;
};

class ProbabilisticSampler {
 public:
  ProbabilisticSampler(std::uint32_t rate, util::Rng rng) : rate_(rate), rng_(rng) {
    if (rate == 0) throw std::invalid_argument("ProbabilisticSampler: rate must be >= 1");
  }

  bool accept() noexcept { return rate_ == 1 || rng_.uniform(rate_) == 0; }

  [[nodiscard]] std::uint32_t rate() const noexcept { return rate_; }

 private:
  std::uint32_t rate_;
  util::Rng rng_;
};

}  // namespace mtscope::flow
