// FlowBatch: struct-of-arrays decode of the ingest-hot FlowRecord fields.
//
// The collector's per-record path touches a FlowRecord's scattered fields
// (two addresses, proto, packets, bytes) and recomputes both /24 block ids
// inside every store call.  At paper scale that per-record dance — field
// loads across a 64-byte struct, two Block24::containing calls, the
// branchy TCP test — sits between the exporter and the store on every one
// of millions of flows per day.
//
// A FlowBatch decodes the hot fields of many records at once into flat
// parallel arrays *before* any store is touched: block ids and host octets
// are computed exactly once, the sampling-rate volume estimate is a single
// vectorizable multiply over the packets column, and the TCP predicate
// becomes a byte per record instead of an enum compare in the middle of the
// insert loop.  Downstream stages (shard routing, store insertion — see
// pipeline/shard_router.hpp and VantageStats::add_batch_rx/tx) then run
// tight loops over these columns with no FlowRecord in sight.
//
// Decoding is pure projection: every column value is computed from one
// record with the same arithmetic the per-record path uses, so a batch of
// size 1 is bit-identical to the per-record path by construction (the
// batched differential grid in tests/test_parallel_pipeline pins the rest).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "flow/record.hpp"
#include "net/ipv4.hpp"

namespace mtscope::flow {

class FlowBatch {
 public:
  /// Records per batch when the caller does not say otherwise: large
  /// enough to amortize the per-batch routing scratch, small enough that
  /// one batch's columns (~26 B/record) stay cache-resident.
  static constexpr std::size_t kDefaultRecords = 4096;

  /// Decode `records` into the columns, replacing previous contents.  The
  /// capacity of the columns is retained across calls, so a reused batch
  /// allocates only on its first (largest) decode.
  void decode(std::span<const FlowRecord> records, std::uint32_t sampling_rate);

  void clear() noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return dst_block_.size(); }
  [[nodiscard]] bool empty() const noexcept { return dst_block_.empty(); }

  // --- columns, one entry per decoded record ----------------------------

  /// Destination /24 block id (Block24::index()).
  [[nodiscard]] std::span<const std::uint32_t> dst_block() const noexcept {
    return dst_block_;
  }
  /// Destination host octet (last byte of the address).
  [[nodiscard]] std::span<const std::uint8_t> dst_host() const noexcept {
    return dst_host_;
  }
  /// Source /24 block id.
  [[nodiscard]] std::span<const std::uint32_t> src_block() const noexcept {
    return src_block_;
  }
  /// Source host octet.
  [[nodiscard]] std::span<const std::uint8_t> src_host() const noexcept {
    return src_host_;
  }
  /// Sampled packet count.
  [[nodiscard]] std::span<const std::uint64_t> packets() const noexcept {
    return packets_;
  }
  /// packets x sampling_rate — the volume estimate the funnel thresholds.
  [[nodiscard]] std::span<const std::uint64_t> est_packets() const noexcept {
    return est_packets_;
  }
  /// Sampled byte count (read only for TCP records downstream).
  [[nodiscard]] std::span<const std::uint64_t> bytes() const noexcept { return bytes_; }
  /// 1 when the record's protocol is TCP, else 0.
  [[nodiscard]] std::span<const std::uint8_t> tcp() const noexcept { return tcp_; }
  /// Destination port (read by the analytics matrix tap).
  [[nodiscard]] std::span<const std::uint16_t> dst_port() const noexcept {
    return dst_port_;
  }

 private:
  std::vector<std::uint32_t> dst_block_;
  std::vector<std::uint8_t> dst_host_;
  std::vector<std::uint32_t> src_block_;
  std::vector<std::uint8_t> src_host_;
  std::vector<std::uint64_t> packets_;
  std::vector<std::uint64_t> est_packets_;
  std::vector<std::uint64_t> bytes_;
  std::vector<std::uint8_t> tcp_;
  std::vector<std::uint16_t> dst_port_;
};

}  // namespace mtscope::flow
