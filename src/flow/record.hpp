// Flow records — what IPFIX exports and what the inference pipeline eats.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>

#include "net/headers.hpp"
#include "net/ipv4.hpp"

namespace mtscope::flow {

/// 5-tuple flow key.
struct FlowKey {
  net::Ipv4Addr src;
  net::Ipv4Addr dst;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  net::IpProto proto = net::IpProto::kTcp;

  friend bool operator==(const FlowKey&, const FlowKey&) = default;
};

/// An exported (aggregated, possibly sampled) flow.
///
/// `sampling_rate` records the 1-in-N packet sampling the exporter applied;
/// `packets`/`bytes` are *sampled* counts (multiply by sampling_rate for the
/// volume estimate), matching IPFIX semantics at real IXPs.
struct FlowRecord {
  FlowKey key;
  std::uint64_t first_us = 0;
  std::uint64_t last_us = 0;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::uint8_t tcp_flags_or = 0;  // OR of all observed flag bytes
  std::uint32_t sampling_rate = 1;

  /// Estimated true packet count given the sampling rate.
  [[nodiscard]] std::uint64_t estimated_packets() const noexcept {
    return packets * sampling_rate;
  }

  /// Average IP packet size over the sampled packets of this flow.
  [[nodiscard]] double average_packet_size() const noexcept {
    return packets == 0 ? 0.0 : static_cast<double>(bytes) / static_cast<double>(packets);
  }

  friend bool operator==(const FlowRecord&, const FlowRecord&) = default;
};

}  // namespace mtscope::flow

template <>
struct std::hash<mtscope::flow::FlowKey> {
  std::size_t operator()(const mtscope::flow::FlowKey& key) const noexcept {
    // FNV-ish mix over the tuple fields; quality matters because the flow
    // table hashes millions of keys per simulated day.
    std::uint64_t h = 1469598103934665603ULL;
    const auto feed = [&h](std::uint64_t v) {
      h ^= v;
      h *= 1099511628211ULL;
    };
    feed(key.src.value());
    feed(key.dst.value());
    feed((std::uint64_t{key.src_port} << 32) | key.dst_port);
    feed(static_cast<std::uint64_t>(key.proto));
    return static_cast<std::size_t>(h ^ (h >> 32));
  }
};
