#include "flow/flow_batch.hpp"

namespace mtscope::flow {

void FlowBatch::clear() noexcept {
  dst_block_.clear();
  dst_host_.clear();
  src_block_.clear();
  src_host_.clear();
  packets_.clear();
  est_packets_.clear();
  bytes_.clear();
  tcp_.clear();
  dst_port_.clear();
}

void FlowBatch::decode(std::span<const FlowRecord> records, std::uint32_t sampling_rate) {
  clear();
  const std::size_t n = records.size();
  dst_block_.reserve(n);
  dst_host_.reserve(n);
  src_block_.reserve(n);
  src_host_.reserve(n);
  packets_.reserve(n);
  est_packets_.reserve(n);
  bytes_.reserve(n);
  tcp_.reserve(n);
  dst_port_.reserve(n);

  for (const FlowRecord& r : records) {
    // The exact arithmetic of the per-record path (VantageStats::
    // add_flow_rx/tx): block id = address >> 8, host = low octet, volume
    // estimate = sampled packets x exporter sampling rate.
    dst_block_.push_back(net::Block24::containing(r.key.dst).index());
    dst_host_.push_back(static_cast<std::uint8_t>(r.key.dst.value() & 0xff));
    src_block_.push_back(net::Block24::containing(r.key.src).index());
    src_host_.push_back(static_cast<std::uint8_t>(r.key.src.value() & 0xff));
    packets_.push_back(r.packets);
    est_packets_.push_back(r.packets * sampling_rate);
    bytes_.push_back(r.bytes);
    tcp_.push_back(r.key.proto == net::IpProto::kTcp ? 1 : 0);
    dst_port_.push_back(r.key.dst_port);
  }
}

}  // namespace mtscope::flow
