// NetFlow v5 wire codec.
//
// The paper's ISP dataset is border-router NetFlow (§3.2); IXPs speak IPFIX.
// This codec lets the library ingest both: fixed 24-byte header + 48-byte
// records, up to 30 records per datagram per the classic spec.  The decoder
// bounds-checks everything and returns Result errors instead of trusting
// wire input.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "flow/record.hpp"
#include "util/result.hpp"

namespace mtscope::flow {

struct NetflowV5Config {
  /// Engine identity stamped into headers.
  std::uint8_t engine_type = 0;
  std::uint8_t engine_id = 0;
  /// Sampling mode (2 bits) and interval (14 bits) packed per the spec.
  std::uint16_t sampling_interval = 1;
};

/// Encodes flow records into NetFlow v5 datagrams (max 30 records each).
class NetflowV5Encoder {
 public:
  explicit NetflowV5Encoder(NetflowV5Config config = {});

  /// `uptime_ms`/`unix_secs` fill the header clock fields; flow first/last
  /// timestamps are expressed as sysuptime offsets, so `uptime_ms` should
  /// be >= the newest flow's age.
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> encode(
      std::span<const FlowRecord> records, std::uint32_t unix_secs, std::uint32_t uptime_ms);

  [[nodiscard]] std::uint32_t flow_sequence() const noexcept { return sequence_; }

 private:
  NetflowV5Config config_;
  std::uint32_t sequence_ = 0;
};

/// Decodes NetFlow v5 datagrams.
class NetflowV5Decoder {
 public:
  /// Decode one datagram; decoded flows accumulate until drain().
  [[nodiscard]] util::Result<std::size_t> feed(std::span<const std::uint8_t> datagram);

  [[nodiscard]] std::vector<FlowRecord> drain();

  [[nodiscard]] std::uint64_t datagrams_seen() const noexcept { return datagrams_; }
  [[nodiscard]] std::uint64_t records_decoded() const noexcept { return records_; }

 private:
  std::vector<FlowRecord> decoded_;
  std::uint64_t datagrams_ = 0;
  std::uint64_t records_ = 0;
};

}  // namespace mtscope::flow
