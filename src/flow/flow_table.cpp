#include "flow/flow_table.hpp"

#include <algorithm>

namespace mtscope::flow {

FlowTable::FlowTable(FlowTableConfig config) : config_(config) {
  if (config_.sampling_rate == 0) {
    throw std::invalid_argument("FlowTable: sampling_rate must be >= 1");
  }
  if (config_.max_entries == 0) {
    throw std::invalid_argument("FlowTable: max_entries must be >= 1");
  }
}

void FlowTable::add(const PacketMeta& packet) {
  ++packets_seen_;

  // Periodic expiry scan: amortised by only scanning once per idle timeout's
  // worth of simulated time rather than on every packet.
  if (packet.timestamp_us >= last_expiry_scan_us_ + config_.idle_timeout_us) {
    expire(packet.timestamp_us);
    last_expiry_scan_us_ = packet.timestamp_us;
  }

  const FlowKey key{packet.src, packet.dst, packet.src_port, packet.dst_port, packet.proto};
  auto it = table_.find(key);
  if (it == table_.end()) {
    if (table_.size() >= config_.max_entries) {
      // Emergency eviction: export the oldest entry found in a bounded probe
      // (full scans would be O(n) per packet under overload).
      auto victim = table_.begin();
      std::size_t probes = 0;
      for (auto scan = table_.begin(); scan != table_.end() && probes < 16; ++scan, ++probes) {
        if (scan->second.last_us < victim->second.last_us) victim = scan;
      }
      export_flow(victim->second);
      table_.erase(victim);
    }
    FlowRecord fresh;
    fresh.key = key;
    fresh.first_us = packet.timestamp_us;
    fresh.last_us = packet.timestamp_us;
    fresh.packets = 1;
    fresh.bytes = packet.ip_length;
    fresh.tcp_flags_or = packet.tcp_flags;
    fresh.sampling_rate = config_.sampling_rate;
    table_.emplace(key, fresh);
    return;
  }

  FlowRecord& flow = it->second;
  // Active timeout: export the accumulated record and restart the flow.
  if (packet.timestamp_us >= flow.first_us + config_.active_timeout_us) {
    export_flow(flow);
    flow.first_us = packet.timestamp_us;
    flow.packets = 0;
    flow.bytes = 0;
    flow.tcp_flags_or = 0;
  }
  flow.last_us = std::max(flow.last_us, packet.timestamp_us);
  flow.packets += 1;
  flow.bytes += packet.ip_length;
  flow.tcp_flags_or |= packet.tcp_flags;
}

void FlowTable::expire(std::uint64_t now_us) {
  for (auto it = table_.begin(); it != table_.end();) {
    if (now_us >= it->second.last_us + config_.idle_timeout_us) {
      export_flow(it->second);
      it = table_.erase(it);
    } else {
      ++it;
    }
  }
}

void FlowTable::export_flow(const FlowRecord& flow) {
  if (flow.packets == 0) return;  // nothing accumulated since last active-timeout export
  exported_.push_back(flow);
  ++flows_exported_;
}

std::vector<FlowRecord> FlowTable::drain_exported() {
  std::vector<FlowRecord> out;
  out.swap(exported_);
  return out;
}

void FlowTable::flush() {
  for (const auto& [key, flow] : table_) export_flow(flow);
  table_.clear();
}

}  // namespace mtscope::flow
