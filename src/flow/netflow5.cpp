#include "flow/netflow5.hpp"

#include "util/bytes.hpp"

namespace mtscope::flow {

namespace {

using util::be_get_u16;
using util::be_get_u32;
using util::be_put_u16;
using util::be_put_u32;

constexpr std::uint16_t kVersion = 5;
constexpr std::size_t kHeaderSize = 24;
constexpr std::size_t kRecordSize = 48;
constexpr std::size_t kMaxRecords = 30;

}  // namespace

NetflowV5Encoder::NetflowV5Encoder(NetflowV5Config config) : config_(config) {
  if (config_.sampling_interval == 0) {
    throw std::invalid_argument("NetflowV5Encoder: sampling_interval must be >= 1");
  }
  if (config_.sampling_interval > 0x3fff) {
    throw std::invalid_argument("NetflowV5Encoder: sampling_interval exceeds 14 bits");
  }
}

std::vector<std::vector<std::uint8_t>> NetflowV5Encoder::encode(
    std::span<const FlowRecord> records, std::uint32_t unix_secs, std::uint32_t uptime_ms) {
  std::vector<std::vector<std::uint8_t>> datagrams;
  std::size_t index = 0;

  while (index < records.size() || (records.empty() && datagrams.empty())) {
    const std::size_t batch = std::min(kMaxRecords, records.size() - index);
    std::vector<std::uint8_t> dgram;
    dgram.reserve(kHeaderSize + batch * kRecordSize);

    be_put_u16(dgram, kVersion);
    be_put_u16(dgram, static_cast<std::uint16_t>(batch));
    be_put_u32(dgram, uptime_ms);
    be_put_u32(dgram, unix_secs);
    be_put_u32(dgram, 0);  // residual nanoseconds
    be_put_u32(dgram, sequence_);
    dgram.push_back(config_.engine_type);
    dgram.push_back(config_.engine_id);
    // Sampling mode 01 (packet interval) in the top 2 bits.
    be_put_u16(dgram, static_cast<std::uint16_t>((1u << 14) | config_.sampling_interval));

    for (std::size_t i = 0; i < batch; ++i) {
      const FlowRecord& r = records[index + i];
      be_put_u32(dgram, r.key.src.value());
      be_put_u32(dgram, r.key.dst.value());
      be_put_u32(dgram, 0);  // nexthop
      be_put_u16(dgram, 0);  // input ifindex
      be_put_u16(dgram, 0);  // output ifindex
      be_put_u32(dgram, static_cast<std::uint32_t>(r.packets));
      be_put_u32(dgram, static_cast<std::uint32_t>(r.bytes));
      // First/last as sysuptime offsets in ms; clamp into the uptime window.
      const auto to_uptime = [&](std::uint64_t ts_us) {
        const std::uint64_t ms = ts_us / 1000;
        return static_cast<std::uint32_t>(ms > uptime_ms ? uptime_ms : ms);
      };
      be_put_u32(dgram, to_uptime(r.first_us));
      be_put_u32(dgram, to_uptime(r.last_us));
      be_put_u16(dgram, r.key.src_port);
      be_put_u16(dgram, r.key.dst_port);
      dgram.push_back(0);  // pad1
      dgram.push_back(r.tcp_flags_or);
      dgram.push_back(static_cast<std::uint8_t>(r.key.proto));
      dgram.push_back(0);  // tos
      be_put_u16(dgram, 0);   // src AS
      be_put_u16(dgram, 0);   // dst AS
      dgram.push_back(24); // src mask (we aggregate at /24)
      dgram.push_back(24); // dst mask
      be_put_u16(dgram, 0);   // pad2
    }
    sequence_ += static_cast<std::uint32_t>(batch);
    datagrams.push_back(std::move(dgram));
    index += batch;
    if (records.empty()) break;  // heartbeat datagram with zero records
  }
  return datagrams;
}

util::Result<std::size_t> NetflowV5Decoder::feed(std::span<const std::uint8_t> datagram) {
  if (datagram.size() < kHeaderSize) {
    return util::make_error("netflow5.truncated", "datagram shorter than header");
  }
  if (be_get_u16(datagram, 0) != kVersion) {
    return util::make_error("netflow5.version", "not a NetFlow v5 datagram");
  }
  const std::uint16_t count = be_get_u16(datagram, 2);
  if (count > kMaxRecords) {
    return util::make_error("netflow5.count", "record count exceeds 30");
  }
  if (datagram.size() < kHeaderSize + std::size_t{count} * kRecordSize) {
    return util::make_error("netflow5.truncated", "record area cut short");
  }
  const std::uint32_t unix_secs = be_get_u32(datagram, 8);
  const std::uint32_t uptime_ms = be_get_u32(datagram, 4);
  const std::uint16_t sampling = be_get_u16(datagram, 22);
  const std::uint32_t sampling_interval = std::max<std::uint32_t>(1, sampling & 0x3fff);

  // Flow timestamps: unix epoch of "uptime 0" is unix_secs - uptime_ms.
  const std::uint64_t boot_us =
      std::uint64_t{unix_secs} * 1'000'000 - std::uint64_t{uptime_ms} * 1000;

  for (std::uint16_t i = 0; i < count; ++i) {
    const std::size_t at = kHeaderSize + std::size_t{i} * kRecordSize;
    FlowRecord r;
    r.key.src = net::Ipv4Addr(be_get_u32(datagram, at));
    r.key.dst = net::Ipv4Addr(be_get_u32(datagram, at + 4));
    r.packets = be_get_u32(datagram, at + 16);
    r.bytes = be_get_u32(datagram, at + 20);
    r.first_us = boot_us + std::uint64_t{be_get_u32(datagram, at + 24)} * 1000;
    r.last_us = boot_us + std::uint64_t{be_get_u32(datagram, at + 28)} * 1000;
    r.key.src_port = be_get_u16(datagram, at + 32);
    r.key.dst_port = be_get_u16(datagram, at + 34);
    r.tcp_flags_or = datagram[at + 37];
    r.key.proto = static_cast<net::IpProto>(datagram[at + 38]);
    r.sampling_rate = sampling_interval;
    decoded_.push_back(r);
  }
  ++datagrams_;
  records_ += count;
  return static_cast<std::size_t>(count);
}

std::vector<FlowRecord> NetflowV5Decoder::drain() {
  std::vector<FlowRecord> out;
  out.swap(decoded_);
  return out;
}

}  // namespace mtscope::flow
