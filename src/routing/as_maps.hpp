// Prefix-to-AS and AS-to-organisation mapping datasets.
//
// Mirrors CAIDA's pfx2as and as2org products, including their text formats,
// so the analysis code paths (Table 6, Table 7) resolve AS and organisation
// exactly the way the paper does.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/ipv4.hpp"
#include "net/prefix.hpp"
#include "trie/prefix_trie.hpp"
#include "util/result.hpp"

namespace mtscope::routing {

/// CAIDA pfx2as-style dataset: longest-prefix match from address to origin AS.
class PrefixToAs {
 public:
  void add(const net::Prefix& prefix, net::AsNumber asn);

  [[nodiscard]] std::optional<net::AsNumber> resolve(net::Ipv4Addr addr) const;
  [[nodiscard]] std::optional<net::AsNumber> resolve(net::Block24 block) const {
    return resolve(block.first_address());
  }

  [[nodiscard]] std::size_t size() const noexcept { return trie_.size(); }

  /// CAIDA text format: "<base> <length> <asn>" per line, tab-separated.
  void save(std::ostream& out) const;
  [[nodiscard]] static util::Result<PrefixToAs> load(std::istream& in);

 private:
  trie::PrefixTrie<net::AsNumber> trie_;
};

/// Organisation record in the as2org dataset.
struct Organization {
  std::string org_id;
  std::string name;
  std::string country;  // ISO 3166 alpha-2
};

/// CAIDA as2org-style dataset: ASN -> organisation.
class AsToOrg {
 public:
  void add(net::AsNumber asn, Organization org);

  [[nodiscard]] const Organization* resolve(net::AsNumber asn) const;
  [[nodiscard]] std::size_t size() const noexcept { return by_asn_.size(); }

  /// Pipe-separated format: "asn|org_id|name|country" per line.
  void save(std::ostream& out) const;
  [[nodiscard]] static util::Result<AsToOrg> load(std::istream& in);

 private:
  std::unordered_map<net::AsNumber, Organization> by_asn_;
};

}  // namespace mtscope::routing
