// RFC 6890 special-purpose IPv4 address registry.
//
// Filter step 4 of the pipeline removes /24s inside private, multicast,
// loopback and otherwise reserved space: telescope prefixes must be publicly
// reachable.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "net/ipv4.hpp"
#include "net/prefix.hpp"
#include "trie/prefix_trie.hpp"

namespace mtscope::routing {

/// One registry entry.
struct SpecialPurposeEntry {
  net::Prefix prefix;
  std::string name;        // e.g. "Private-Use"
  std::string rfc;         // defining document
  bool globally_reachable; // RFC 6890 "Global" attribute
};

/// Registry of special-purpose blocks with prefix-trie lookups.
class SpecialPurposeRegistry {
 public:
  /// Registry preloaded with the RFC 6890 / IANA special-purpose table.
  [[nodiscard]] static SpecialPurposeRegistry standard();

  /// Empty registry for custom test topologies.
  SpecialPurposeRegistry() = default;

  void add(SpecialPurposeEntry entry);

  /// True if the address is inside any special-purpose block that is not
  /// globally reachable.
  [[nodiscard]] bool is_reserved(net::Ipv4Addr addr) const;

  /// True if any part of the /24 is inside reserved space (conservative:
  /// a partially reserved block is unusable as a telescope prefix).
  [[nodiscard]] bool is_reserved(net::Block24 block) const;

  /// The entry covering `addr`, if any (most specific wins).
  [[nodiscard]] const SpecialPurposeEntry* lookup(net::Ipv4Addr addr) const;

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] const std::vector<SpecialPurposeEntry>& entries() const noexcept {
    return entries_;
  }

 private:
  std::vector<SpecialPurposeEntry> entries_;
  trie::PrefixTrie<std::size_t> index_;  // prefix -> index into entries_
};

}  // namespace mtscope::routing
