#include "routing/rib.hpp"

#include <unordered_map>

namespace mtscope::routing {

bool Rib::announce(const net::Prefix& prefix, net::AsNumber origin) {
  return trie_.insert(prefix, Route{origin});
}

bool Rib::withdraw(const net::Prefix& prefix) { return trie_.erase(prefix); }

std::optional<std::pair<net::Prefix, Route>> Rib::lookup(net::Ipv4Addr addr) const {
  const auto match = trie_.longest_match(addr);
  if (!match) return std::nullopt;
  return std::make_pair(match->first, *match->second);
}

bool Rib::is_routed(net::Block24 block) const {
  // A /24 is routed when some announcement covers the whole block.  All
  // covering prefixes of the first address are candidates.
  for (const auto& [prefix, route] : trie_.matches(block.first_address())) {
    (void)route;
    if (prefix.contains(block)) return true;
  }
  return false;
}

bool Rib::is_routed(net::Ipv4Addr addr) const { return trie_.covers(addr); }

std::optional<net::AsNumber> Rib::origin_of(net::Ipv4Addr addr) const {
  const auto match = lookup(addr);
  if (!match) return std::nullopt;
  return match->second.origin;
}

std::vector<std::pair<net::Prefix, net::AsNumber>> Rib::announcements() const {
  std::vector<std::pair<net::Prefix, net::AsNumber>> out;
  out.reserve(trie_.size());
  trie_.walk([&](const net::Prefix& p, const Route& r) { out.emplace_back(p, r.origin); });
  return out;
}

std::vector<std::pair<net::Prefix, net::AsNumber>> Rib::announcements_up_to(
    int max_length) const {
  std::vector<std::pair<net::Prefix, net::AsNumber>> out;
  trie_.walk([&](const net::Prefix& p, const Route& r) {
    if (p.length() <= max_length) out.emplace_back(p, r.origin);
  });
  return out;
}

void Rib::merge(const Rib& other) {
  other.trie_.walk([&](const net::Prefix& p, const Route& r) {
    if (trie_.find(p) == nullptr) trie_.insert(p, r);
  });
}

void RouteViews::add_dump(int day, const Rib& dump) {
  DayEntry& entry = days_[day];
  entry.merged.merge(dump);
  ++entry.dumps;
}

const Rib& RouteViews::daily_rib(int day) const {
  const auto it = days_.find(day);
  return it == days_.end() ? empty_ : it->second.merged;
}

std::size_t RouteViews::dump_count(int day) const {
  const auto it = days_.find(day);
  return it == days_.end() ? 0 : it->second.dumps;
}

}  // namespace mtscope::routing
