#include "routing/as_maps.hpp"

#include <istream>
#include <map>
#include <ostream>

#include "util/strings.hpp"

namespace mtscope::routing {

void PrefixToAs::add(const net::Prefix& prefix, net::AsNumber asn) {
  trie_.insert(prefix, asn);
}

std::optional<net::AsNumber> PrefixToAs::resolve(net::Ipv4Addr addr) const {
  const auto match = trie_.longest_match(addr);
  if (!match) return std::nullopt;
  return *match->second;
}

void PrefixToAs::save(std::ostream& out) const {
  trie_.walk([&](const net::Prefix& p, const net::AsNumber& asn) {
    out << p.base().to_string() << '\t' << p.length() << '\t' << asn.value() << '\n';
  });
}

util::Result<PrefixToAs> PrefixToAs::load(std::istream& in) {
  PrefixToAs out;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const auto fields = util::split_ws(trimmed);
    if (fields.size() != 3) {
      return util::make_error("pfx2as.fields",
                              "line " + std::to_string(line_no) + ": expected 3 fields");
    }
    const auto addr = net::Ipv4Addr::parse(fields[0]);
    const auto length = util::parse_uint<unsigned>(fields[1]);
    const auto asn = util::parse_uint<std::uint32_t>(fields[2]);
    if (!addr || !length || *length > 32 || !asn) {
      return util::make_error("pfx2as.parse",
                              "line " + std::to_string(line_no) + ": malformed entry");
    }
    out.add(net::Prefix::canonical(*addr, static_cast<int>(*length)), net::AsNumber(*asn));
  }
  return out;
}

void AsToOrg::add(net::AsNumber asn, Organization org) {
  by_asn_[asn] = std::move(org);
}

const Organization* AsToOrg::resolve(net::AsNumber asn) const {
  const auto it = by_asn_.find(asn);
  return it == by_asn_.end() ? nullptr : &it->second;
}

void AsToOrg::save(std::ostream& out) const {
  // Deterministic output order for reproducible fixtures.
  std::map<std::uint32_t, const Organization*> ordered;
  for (const auto& [asn, org] : by_asn_) ordered[asn.value()] = &org;
  for (const auto& [asn, org] : ordered) {
    out << asn << '|' << org->org_id << '|' << org->name << '|' << org->country << '\n';
  }
}

util::Result<AsToOrg> AsToOrg::load(std::istream& in) {
  AsToOrg out;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const auto fields = util::split(trimmed, '|');
    if (fields.size() != 4) {
      return util::make_error("as2org.fields",
                              "line " + std::to_string(line_no) + ": expected 4 fields");
    }
    const auto asn = util::parse_uint<std::uint32_t>(fields[0]);
    if (!asn) {
      return util::make_error("as2org.parse", "line " + std::to_string(line_no) + ": bad ASN");
    }
    out.add(net::AsNumber(*asn),
            Organization{std::string(fields[1]), std::string(fields[2]), std::string(fields[3])});
  }
  return out;
}

}  // namespace mtscope::routing
