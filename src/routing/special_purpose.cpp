#include "routing/special_purpose.hpp"

namespace mtscope::routing {

namespace {

net::Prefix p(std::string_view text) {
  auto parsed = net::Prefix::parse(text);
  if (!parsed) throw std::logic_error("bad builtin prefix");
  return *parsed;
}

}  // namespace

SpecialPurposeRegistry SpecialPurposeRegistry::standard() {
  SpecialPurposeRegistry reg;
  // IANA IPv4 Special-Purpose Address Registry (RFC 6890 and successors).
  reg.add({p("0.0.0.0/8"), "This host on this network", "RFC1122", false});
  reg.add({p("10.0.0.0/8"), "Private-Use", "RFC1918", false});
  reg.add({p("100.64.0.0/10"), "Shared Address Space", "RFC6598", false});
  reg.add({p("127.0.0.0/8"), "Loopback", "RFC1122", false});
  reg.add({p("169.254.0.0/16"), "Link Local", "RFC3927", false});
  reg.add({p("172.16.0.0/12"), "Private-Use", "RFC1918", false});
  reg.add({p("192.0.0.0/24"), "IETF Protocol Assignments", "RFC6890", false});
  reg.add({p("192.0.2.0/24"), "Documentation (TEST-NET-1)", "RFC5737", false});
  reg.add({p("192.88.99.0/24"), "6to4 Relay Anycast", "RFC3068", true});
  reg.add({p("192.168.0.0/16"), "Private-Use", "RFC1918", false});
  reg.add({p("198.18.0.0/15"), "Benchmarking", "RFC2544", false});
  reg.add({p("198.51.100.0/24"), "Documentation (TEST-NET-2)", "RFC5737", false});
  reg.add({p("203.0.113.0/24"), "Documentation (TEST-NET-3)", "RFC5737", false});
  reg.add({p("224.0.0.0/4"), "Multicast", "RFC5771", false});
  reg.add({p("240.0.0.0/4"), "Reserved", "RFC1112", false});
  reg.add({p("255.255.255.255/32"), "Limited Broadcast", "RFC919", false});
  return reg;
}

void SpecialPurposeRegistry::add(SpecialPurposeEntry entry) {
  index_.insert(entry.prefix, entries_.size());
  entries_.push_back(std::move(entry));
}

bool SpecialPurposeRegistry::is_reserved(net::Ipv4Addr addr) const {
  const SpecialPurposeEntry* entry = lookup(addr);
  return entry != nullptr && !entry->globally_reachable;
}

bool SpecialPurposeRegistry::is_reserved(net::Block24 block) const {
  // A /24 either lies entirely inside one registry prefix (all registry
  // entries are /8.. /16 style, i.e. <= /24, except the /32 broadcast) or
  // contains one.  Checking both block endpoints covers the <= /24 case;
  // the lone /32 entry (255.255.255.255) is inside 240.0.0.0/4 anyway.
  return is_reserved(block.first_address()) || is_reserved(block.last_address());
}

const SpecialPurposeEntry* SpecialPurposeRegistry::lookup(net::Ipv4Addr addr) const {
  const auto match = index_.longest_match(addr);
  if (!match) return nullptr;
  return &entries_[*match->second];
}

}  // namespace mtscope::routing
