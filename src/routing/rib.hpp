// BGP Routing Information Base.
//
// Stores announced prefixes with their origin AS.  Filter step 5 of the
// pipeline ("Globally Routed") asks whether a /24 is covered by any
// announcement; the analysis section asks for the covering announcement of
// a block (for prefix-index computation) and the origin AS.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/ipv4.hpp"
#include "net/prefix.hpp"
#include "trie/prefix_trie.hpp"

namespace mtscope::routing {

/// One BGP route (origin-AS attribute only; path details are out of scope).
struct Route {
  net::AsNumber origin;
};

class Rib {
 public:
  /// Announce `prefix` from `origin`.  Re-announcing overwrites the origin
  /// (as a RIB would after an implicit withdraw).  Returns true if new.
  bool announce(const net::Prefix& prefix, net::AsNumber origin);

  /// Withdraw an announcement.  Returns true if it existed.
  bool withdraw(const net::Prefix& prefix);

  /// Longest-prefix match.
  [[nodiscard]] std::optional<std::pair<net::Prefix, Route>> lookup(net::Ipv4Addr addr) const;

  /// True if `block` is entirely inside some announced prefix.
  [[nodiscard]] bool is_routed(net::Block24 block) const;

  /// True if `addr` is inside any announced prefix.
  [[nodiscard]] bool is_routed(net::Ipv4Addr addr) const;

  /// Origin AS of the most specific announcement covering `addr`.
  [[nodiscard]] std::optional<net::AsNumber> origin_of(net::Ipv4Addr addr) const;

  /// All announced prefixes (with origins), in address order.
  [[nodiscard]] std::vector<std::pair<net::Prefix, net::AsNumber>> announcements() const;

  /// All announcements with a given maximum length (e.g. the /8../16
  /// covering prefixes used for Figure 7's prefix index).
  [[nodiscard]] std::vector<std::pair<net::Prefix, net::AsNumber>> announcements_up_to(
      int max_length) const;

  [[nodiscard]] std::size_t size() const noexcept { return trie_.size(); }
  [[nodiscard]] bool empty() const noexcept { return trie_.empty(); }

  /// Merge another RIB into this one (used by RouteViews to union the 12
  /// per-day dumps).  Existing origins win on conflict, matching "first
  /// dump of the day wins" semantics.
  void merge(const Rib& other);

 private:
  trie::PrefixTrie<Route> trie_;
};

/// Route Views-style collector: a day is the union of several RIB dumps.
class RouteViews {
 public:
  /// Add one RIB dump for logical day `day`.
  void add_dump(int day, const Rib& dump);

  /// The merged RIB for a day; empty RIB if no dumps were added.
  [[nodiscard]] const Rib& daily_rib(int day) const;

  [[nodiscard]] std::size_t dump_count(int day) const;

 private:
  struct DayEntry {
    Rib merged;
    std::size_t dumps = 0;
  };
  std::unordered_map<int, DayEntry> days_;
  Rib empty_;
};

}  // namespace mtscope::routing
