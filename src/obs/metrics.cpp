#include "obs/metrics.hpp"

#include <cstdio>
#include <ostream>
#include <sstream>

namespace mtscope::obs {

namespace {

void write_escaped(std::ostream& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          out << buf;
        } else {
          out << c;
        }
    }
  }
}

void write_indent(std::ostream& out, int spaces) {
  for (int i = 0; i < spaces; ++i) out << ' ';
}

/// Writes one sorted `"section": { "name": <value>, ... }` block.
template <typename Map, typename ValueWriter>
void write_section(std::ostream& out, int indent, std::string_view section, const Map& map,
                   ValueWriter&& write_value, bool trailing_comma) {
  write_indent(out, indent + 2);
  out << '"' << section << "\": {";
  bool first = true;
  for (const auto& [name, metric] : map) {
    out << (first ? "\n" : ",\n");
    first = false;
    write_indent(out, indent + 4);
    out << '"';
    write_escaped(out, name);
    out << "\": ";
    write_value(metric);
  }
  if (!first) {
    out << '\n';
    write_indent(out, indent + 2);
  }
  out << '}' << (trailing_comma ? "," : "") << '\n';
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.emplace(std::string(name), Counter{}).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.emplace(std::string(name), Gauge{}).first->second;
}

TimingHistogram& MetricsRegistry::timer(std::string_view name) {
  const auto it = timers_.find(name);
  if (it != timers_.end()) return it->second;
  return timers_.emplace(std::string(name), TimingHistogram{}).first->second;
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const TimingHistogram* MetricsRegistry::find_timer(std::string_view name) const {
  const auto it = timers_.find(name);
  return it == timers_.end() ? nullptr : &it->second;
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  const Counter* c = find_counter(name);
  return c == nullptr ? 0 : c->value();
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) counter(name).add(c.value());
  for (const auto& [name, g] : other.gauges_) gauge(name).max_with(g.value());
  for (const auto& [name, t] : other.timers_) timer(name).merge(t);
}

void MetricsRegistry::write_json(std::ostream& out, int indent) const {
  out << "{\n";
  write_section(out, indent, "counters", counters_,
                [&](const Counter& c) { out << c.value(); }, true);
  write_section(out, indent, "gauges", gauges_, [&](const Gauge& g) { out << g.value(); },
                true);
  write_section(
      out, indent, "timers", timers_,
      [&](const TimingHistogram& t) {
        out << "{\"count\": " << t.count() << ", \"total\": " << t.total_us()
            << ", \"min\": " << t.min_us() << ", \"max\": " << t.max_us()
            << ", \"mean\": " << t.mean_us() << ", \"p50\": " << t.quantile_us(0.5)
            << ", \"p99\": " << t.quantile_us(0.99) << "}";
      },
      false);
  write_indent(out, indent);
  out << '}';
}

std::string MetricsRegistry::to_json(int indent) const {
  std::ostringstream out;
  write_json(out, indent);
  return out.str();
}

}  // namespace mtscope::obs
