// Pipeline observability: named counters, gauges and timing histograms
// behind one registry, with deterministic JSON snapshots.
//
// The paper's headline artifact is itself an observability product — the
// Figure 2 funnel counts and the per-IXP coverage tables are what make the
// meta-telescope trustworthy — so the pipeline exports the same numbers it
// returns, plus per-stage wall-clock timing and parallel-engine health
// (task balance, shard skew, merge-tree shape).
//
// Conventions:
//  * Null-object default: every instrumentation site takes a
//    `MetricsRegistry*` that may be nullptr and must then cost nothing on
//    the hot path (no clock reads, no lookups).  StageTimer honours this.
//  * Thread-local registries: parallel workers never share a registry.
//    Each worker writes its own and the owner merges them in worker-index
//    order after the join — counter totals are then independent of
//    scheduling (sums commute), which is what makes snapshots comparable
//    across thread/shard configurations.
//  * Merge semantics: counters add, gauges keep the maximum, timing
//    histograms pool their samples.
//  * JSON snapshots iterate std::maps, so key order — and therefore the
//    byte stream for identical contents — is deterministic.
#pragma once

#include <bit>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>

#include "telemetry/histogram.hpp"

namespace mtscope::obs {

/// Monotonic event count.  Merge = sum.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written level (worker count, shard size, merge-tree depth).
/// Merge keeps the maximum — the natural reduction for "how deep / how
/// skewed did it get" across workers.
class Gauge {
 public:
  void set(std::int64_t v) noexcept { value_ = v; }
  void max_with(std::int64_t v) noexcept {
    if (v > value_) value_ = v;
  }
  [[nodiscard]] std::int64_t value() const noexcept { return value_; }

 private:
  std::int64_t value_ = 0;
};

/// Wall-clock duration distribution in microseconds: exact count / total /
/// min / max plus a log2-bucketed telemetry::Histogram (bin k holds
/// durations in [2^k, 2^(k+1)) us) so the tail stays visible in bounded
/// memory no matter how long a stage runs.
class TimingHistogram {
 public:
  TimingHistogram() : log2_us_(0, 63) {}

  void record_us(std::uint64_t us) {
    ++count_;
    total_us_ += us;
    min_us_ = count_ == 1 ? us : std::min(min_us_, us);
    max_us_ = std::max(max_us_, us);
    log2_us_.add(bucket_of(us));
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t total_us() const noexcept { return total_us_; }
  [[nodiscard]] std::uint64_t min_us() const noexcept { return count_ == 0 ? 0 : min_us_; }
  [[nodiscard]] std::uint64_t max_us() const noexcept { return max_us_; }

  /// Integer mean (total/count); 0 when empty.
  [[nodiscard]] std::uint64_t mean_us() const noexcept {
    return count_ == 0 ? 0 : total_us_ / count_;
  }

  /// Lower bound of the log2 bucket holding quantile q (0 when empty) —
  /// an order-of-magnitude answer, which is what timing dashboards need.
  [[nodiscard]] std::uint64_t quantile_us(double q) const {
    if (count_ == 0) return 0;
    const std::uint32_t bucket = log2_us_.quantile(q);
    return bucket == 0 ? 0 : std::uint64_t{1} << bucket;
  }

  void merge(const TimingHistogram& other) {
    if (other.count_ == 0) return;
    min_us_ = count_ == 0 ? other.min_us_ : std::min(min_us_, other.min_us_);
    max_us_ = std::max(max_us_, other.max_us_);
    count_ += other.count_;
    total_us_ += other.total_us_;
    log2_us_.merge(other.log2_us_);
  }

 private:
  static std::uint32_t bucket_of(std::uint64_t us) noexcept {
    return us == 0 ? 0 : static_cast<std::uint32_t>(std::bit_width(us) - 1);
  }

  std::uint64_t count_ = 0;
  std::uint64_t total_us_ = 0;
  std::uint64_t min_us_ = 0;
  std::uint64_t max_us_ = 0;
  telemetry::Histogram log2_us_;
};

/// Named metrics, one namespace per kind.  Registration is idempotent:
/// counter("x") returns the same Counter every call.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  TimingHistogram& timer(std::string_view name);

  [[nodiscard]] const Counter* find_counter(std::string_view name) const;
  [[nodiscard]] const Gauge* find_gauge(std::string_view name) const;
  [[nodiscard]] const TimingHistogram* find_timer(std::string_view name) const;

  /// Counter value by name; 0 for an unregistered counter.
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;

  [[nodiscard]] bool empty() const noexcept {
    return counters_.empty() && gauges_.empty() && timers_.empty();
  }
  [[nodiscard]] std::size_t size() const noexcept {
    return counters_.size() + gauges_.size() + timers_.size();
  }

  /// Fold another registry in: counters add, gauges take the max, timers
  /// pool samples.  Commutative on counters/gauges/timer totals, so
  /// merging per-worker registries in any fixed order yields the same
  /// snapshot for the same work.
  void merge(const MetricsRegistry& other);

  /// Deterministic JSON snapshot: three sorted sections ("counters",
  /// "gauges", "timers"), integer values only, no trailing newline.
  /// `indent` shifts every line but the first — for embedding the object
  /// inside a larger document.
  void write_json(std::ostream& out, int indent = 0) const;
  [[nodiscard]] std::string to_json(int indent = 0) const;

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, TimingHistogram, std::less<>> timers_;
};

/// RAII scoped wall-clock measurement: records the elapsed time into
/// `registry->timer(name)` on destruction (or an early stop()).  A null
/// registry makes construction and destruction free — no clock is read.
class StageTimer {
 public:
  StageTimer(MetricsRegistry* registry, std::string_view name) : registry_(registry) {
    if (registry_ != nullptr) {
      name_ = name;
      start_ = std::chrono::steady_clock::now();
    }
  }

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

  ~StageTimer() { stop(); }

  /// Record now instead of at scope exit.  Idempotent.
  void stop() {
    if (registry_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    registry_->timer(name_).record_us(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count()));
    registry_ = nullptr;
  }

 private:
  MetricsRegistry* registry_;
  std::string name_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace mtscope::obs
