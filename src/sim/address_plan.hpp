// The simulated Internet's address allocation plan and ground truth.
//
// AddressPlan carves a configurable number of /8s into autonomous systems
// with realistic size, country, and business-type distributions; decides
// which /24s are actually used; places the operational telescopes; and
// derives every auxiliary dataset the paper buys or licenses (BGP RIB,
// pfx2as, as2org, geolocation, network types).
//
// Special structures reproduced from the paper's figures:
//  * a "legacy /8" whose right /9 is one giant unused allocation and whose
//    left half holds a dark /14 plus an unannounced /10 (Figure 5);
//  * a "telescope /8" three quarters of which belong to the TUS1 telescope
//    (Figure 6), announced by an ISP that peers only in North America;
//  * two fully unrouted /8s used to baseline spoofing (§7.2).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "geo/geodb.hpp"
#include "geo/nettype.hpp"
#include "net/ipv4.hpp"
#include "net/prefix.hpp"
#include "routing/as_maps.hpp"
#include "routing/rib.hpp"
#include "sim/config.hpp"
#include "trie/block24_set.hpp"
#include "util/rng.hpp"

namespace mtscope::sim {

/// Ground-truth role of a /24 block.
enum class BlockRole : std::uint8_t {
  kUnallocated,  // not part of any allocation (or in an unrouted /8)
  kDark,         // allocated + announced, hosts nothing
  kActive,       // normal production block
  kQuietActive,  // active but barely sends (false-positive fuel, §4.3)
  kAsymAck,      // active; outbound path invisible at IXPs (filter 6's prey)
  kTelescope,    // part of an operational telescope (dark by construction)
};

/// One simulated autonomous system.
struct AsInfo {
  net::AsNumber asn;
  std::string org_name;
  std::string country;             // ISO alpha-2
  geo::Continent continent;
  geo::NetType type;
  bool legacy = false;             // mostly-unused legacy allocation
  std::vector<net::Prefix> allocated;   // address space owned
  std::vector<net::Prefix> announced;   // what is actually in BGP
};

/// One operational telescope instance.
struct TelescopeInfo {
  TelescopeSpec spec;
  std::size_t as_index = 0;              // owning / announcing AS
  std::vector<net::Prefix> prefixes;     // covering prefixes (contiguous)
  std::vector<net::Block24> blocks;      // all member /24s
};

/// The ISP that hosts the TUS1 telescope and whose labelled NetFlow tunes
/// the classifier (Table 3).
struct IspInfo {
  std::size_t as_index = 0;
  std::vector<net::Block24> blocks;  // the ISP's own (non-telescope) space
};

class AddressPlan {
 public:
  explicit AddressPlan(const SimConfig& config);

  [[nodiscard]] const std::vector<AsInfo>& ases() const noexcept { return ases_; }
  [[nodiscard]] const AsInfo& as_at(std::size_t index) const { return ases_.at(index); }

  /// Ground-truth role of a block (kUnallocated if outside the universe).
  [[nodiscard]] BlockRole role(net::Block24 block) const noexcept;

  /// Index into ases() of the block's owner; nullopt if unallocated.
  [[nodiscard]] std::optional<std::size_t> as_of(net::Block24 block) const noexcept;

  /// The announced BGP table (ground truth; RouteViews snapshots derive
  /// from it with per-dump flap noise).
  [[nodiscard]] const routing::Rib& rib() const noexcept { return rib_; }

  /// One day's worth of Route Views dumps (12, as the paper merges),
  /// each missing a small random subset of routes (route flaps).
  [[nodiscard]] routing::RouteViews make_route_views(int day, int dumps = 12) const;

  /// Auxiliary datasets derived from the plan.
  [[nodiscard]] const geo::GeoDb& geodb() const noexcept { return geodb_; }
  [[nodiscard]] const geo::NetTypeDb& nettypes() const noexcept { return nettypes_; }
  [[nodiscard]] routing::PrefixToAs make_pfx2as() const;
  [[nodiscard]] routing::AsToOrg make_as2org() const;

  /// Ground-truth block sets.
  [[nodiscard]] const trie::Block24Set& dark_blocks() const noexcept { return dark_; }
  [[nodiscard]] const trie::Block24Set& active_blocks() const noexcept { return active_; }
  [[nodiscard]] const trie::Block24Set& allocated_blocks() const noexcept { return allocated_; }

  /// All allocated blocks of one AS.
  [[nodiscard]] std::vector<net::Block24> blocks_of(std::size_t as_index) const;

  [[nodiscard]] const std::vector<TelescopeInfo>& telescopes() const noexcept {
    return telescopes_;
  }
  [[nodiscard]] const IspInfo& isp() const noexcept { return isp_; }

  /// The two allocated-but-never-announced /8s (spoofing baseline).
  [[nodiscard]] const std::vector<std::uint8_t>& unrouted_slash8s() const noexcept {
    return unrouted_slash8s_;
  }

  /// First octets of all /8s in the universe (routed and unrouted).
  [[nodiscard]] const std::vector<std::uint8_t>& slash8s() const noexcept { return slash8s_; }

  /// Every /24 inside the universe's /8s (including the unrouted pair) —
  /// the recommended source mask for pipeline::VantageStats.
  [[nodiscard]] std::shared_ptr<const trie::Block24Set> universe_mask() const;

  /// The legacy /8's first octet (Figure 5's Hilbert map subject).
  [[nodiscard]] std::uint8_t legacy_slash8() const noexcept { return legacy_slash8_; }

  /// The announced dark /14 inside the legacy /8 — the subject of the
  /// scripted outage scenario (SimConfig::outage).
  [[nodiscard]] const net::Prefix& outage_prefix() const noexcept { return outage_prefix_; }

  /// True when the scripted outage silences `block`'s IBR on `day`: the
  /// block lies inside outage_prefix() and the day is within the spec.
  [[nodiscard]] bool in_outage(net::Block24 block, int day) const noexcept {
    return config_.outage.active(day) && outage_prefix_.contains(block);
  }

  /// The telescope /8's first octet (Figure 6's Hilbert map subject).
  [[nodiscard]] std::uint8_t telescope_slash8() const noexcept { return telescope_slash8_; }

  /// Indices of the ASes whose members-of-IXP assignment must be special:
  /// the TUS1-hosting ISP (NA-only peering), the legacy /9 org (CE1 only),
  /// the legacy /14 org (NA1 only), and the TEU2 org (10 IXPs).
  [[nodiscard]] std::size_t teu2_as_index() const noexcept { return teu2_as_; }
  [[nodiscard]] std::size_t teu1_as_index() const noexcept { return teu1_as_; }
  [[nodiscard]] std::size_t legacy9_as_index() const noexcept { return legacy9_as_; }
  [[nodiscard]] std::size_t legacy14_as_index() const noexcept { return legacy14_as_; }

 private:
  struct Slash8Layout {
    std::uint8_t base = 0;
    std::vector<std::uint32_t> as_index;  // per /24, kNoAs if none
    std::vector<BlockRole> roles;         // per /24
  };
  static constexpr std::uint32_t kNoAs = 0xffffffffu;

  /// Create an AS and return its index.
  std::size_t make_as(util::Rng& rng, geo::Continent continent_hint, bool force_continent);

  /// Carve `blocks` /24s starting at `start_index` inside layout for a new
  /// or existing AS; marks roles.
  void assign_range(Slash8Layout& layout, std::uint32_t start, std::uint32_t count,
                    std::size_t as_index, util::Rng& rng);

  void carve_general_slash8(Slash8Layout& layout, util::Rng& rng);
  void carve_range(Slash8Layout& layout, std::uint32_t start, std::uint32_t end, util::Rng& rng,
                   std::optional<geo::Continent> continent_bias);
  void build_legacy_slash8(Slash8Layout& layout, util::Rng& rng);
  void build_telescope_slash8(Slash8Layout& layout, util::Rng& rng);
  void finalize_datasets();

  [[nodiscard]] const Slash8Layout* layout_of(net::Block24 block) const noexcept;

  SimConfig config_;
  std::vector<AsInfo> ases_;
  std::vector<Slash8Layout> layouts_;
  std::array<const Slash8Layout*, 256> layout_lookup_{};
  std::vector<std::uint8_t> slash8s_;
  std::vector<std::uint8_t> unrouted_slash8s_;
  std::uint8_t legacy_slash8_ = 0;
  std::uint8_t telescope_slash8_ = 0;
  // /32 until build_legacy_slash8 sets the dark /14 (a /32 contains no /24).
  net::Prefix outage_prefix_{net::Ipv4Addr(0), 32};
  std::size_t teu2_as_ = 0;
  std::size_t teu1_as_ = 0;
  std::size_t legacy9_as_ = 0;
  std::size_t legacy14_as_ = 0;

  routing::Rib rib_;
  geo::GeoDb geodb_;
  geo::NetTypeDb nettypes_;
  trie::Block24Set dark_;
  trie::Block24Set active_;
  trie::Block24Set allocated_;
  std::vector<TelescopeInfo> telescopes_;
  IspInfo isp_;
};

}  // namespace mtscope::sim
