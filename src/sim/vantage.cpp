#include "sim/vantage.hpp"

#include <algorithm>

namespace mtscope::sim {

geo::Continent ixp_region_continent(const std::string& region) noexcept {
  if (region == "North America") return geo::Continent::kNorthAmerica;
  if (region == "South America") return geo::Continent::kSouthAmerica;
  // "Central Europe" / "South Europe" and anything unrecognised default to
  // Europe, matching the paper's fleet.
  return geo::Continent::kEurope;
}

Ixp::Ixp(IxpSpec spec, std::size_t index, const AddressPlan& plan, std::uint64_t seed)
    : spec_(std::move(spec)), index_(index), continent_(ixp_region_continent(spec_.region)) {
  const std::size_t as_count = plan.ases().size();
  visibility_.assign(as_count, 0.0);
  member_.assign(as_count, false);

  util::Rng rng(util::mix64(seed, 0x1c90000ull + index_));

  // Membership probability: proportional to the IXP's member count, skewed
  // strongly toward same-region networks ("keep local data local"), with a
  // remote-peering tail.
  const double base = std::min(0.9, static_cast<double>(spec_.member_count) /
                                        std::max<std::size_t>(1, as_count));
  // Transit coverage: big fabrics carry traffic for many non-member
  // networks via member transit providers.
  const double transit_share = std::min(0.6, 0.5 * spec_.visibility_boost);

  for (std::size_t a = 0; a < as_count; ++a) {
    const AsInfo& info = plan.ases()[a];
    const bool same_region = info.continent == continent_;
    const double p_member = std::min(0.9, base * (same_region ? 2.2 : 0.45));
    if (rng.chance(p_member)) {
      member_[a] = true;
      ++member_total_;
      visibility_[a] = rng.uniform01() * 0.035 + 0.005;  // U(0.005, 0.04)
    } else if (rng.chance(transit_share * (same_region ? 1.0 : 0.55))) {
      visibility_[a] = rng.uniform01() * 0.018 + 0.002;  // U(0.002, 0.02)
    } else if (rng.chance(0.2)) {
      visibility_[a] = rng.uniform01() * 0.002;          // distant echo
    }
    visibility_[a] *= spec_.visibility_boost;
  }

  // Quadratic in fabric size: big IXPs attract disproportionally more of
  // the DDoS paths whose spoofed packets poison the source filter.
  spoof_share_ = 0.01 * spec_.visibility_boost * spec_.visibility_boost;
}

}  // namespace mtscope::sim
