#include "sim/traffic_model.hpp"

#include <algorithm>
#include <array>
#include <cmath>

namespace mtscope::sim {

namespace {

struct PortWeight {
  std::uint16_t port;
  double weight;
};

// Global scan-port popularity (descending).  Mirai's telnet obsession puts
// 23 on top everywhere (Figure 11: "port 23 dominates in all regions except
// OC and AF").
constexpr std::array<PortWeight, 22> kBasePorts = {{
    {23, 100}, {8080, 62}, {22, 58}, {80, 52}, {3389, 46}, {443, 44},
    {8443, 30}, {5555, 26}, {2222, 24}, {445, 22}, {6379, 18}, {3306, 13},
    {37215, 12}, {5038, 11}, {7001, 9}, {25565, 8}, {6001, 8}, {60023, 7},
    {52869, 6}, {81, 6}, {8090, 6}, {2375, 5},
}};

double continent_multiplier(geo::Continent c, std::uint16_t port) {
  using geo::Continent;
  switch (c) {
    case Continent::kAfrica:
      // Satori (Mirai variant) scans 37215 + 52869 aggressively toward AF;
      // 3306 also AF-popular (§8.1, §8.2).
      if (port == 37215) return 9.0;
      if (port == 52869) return 10.0;
      if (port == 3306) return 3.0;
      if (port == 23) return 0.6;
      break;
    case Continent::kOceania:
      if (port == 6001) return 6.0;
      if (port == 23) return 0.55;
      break;
    case Continent::kNorthAmerica:
      if (port == 7001) return 3.0;
      if (port == 3306) return 2.0;
      if (port == 6379) return 1.6;
      break;
    case Continent::kEurope:
      if (port == 23) return 1.35;
      break;
    case Continent::kAsia:
      if (port == 5555) return 1.8;  // ADB debug bridge, Android-dense region
      break;
    default:
      break;
  }
  return 1.0;
}

double type_multiplier(geo::NetType t, std::uint16_t port) {
  using geo::NetType;
  switch (t) {
    case NetType::kDataCenter:
      // "Scanners are trying to find unprotected Web servers within data
      // centers"; 5038 also data-center-hot (§8.2).
      if (port == 80) return 2.6;
      if (port == 5038) return 4.0;
      if (port == 6379) return 2.0;
      if (port == 2375) return 3.0;
      break;
    case NetType::kEducation:
      if (port == 80) return 2.0;
      if (port == 443) return 1.5;
      break;
    case NetType::kIsp:
      if (port == 23) return 1.8;
      if (port == 5555) return 1.5;
      if (port == 3389) return 1.4;
      break;
    case NetType::kEnterprise:
      if (port == 3389) return 2.0;
      if (port == 445) return 1.6;
      break;
  }
  return 1.0;
}

}  // namespace

PortModel::PortModel() {
  ports_.reserve(kBasePorts.size());
  for (const PortWeight& pw : kBasePorts) ports_.push_back(pw.port);

  cumulative_.resize(geo::kAllContinents.size() * geo::kAllNetTypes.size());
  for (geo::Continent c : geo::kAllContinents) {
    for (geo::NetType t : geo::kAllNetTypes) {
      std::vector<double>& table = cumulative_[table_index(c, t)];
      table.reserve(kBasePorts.size());
      double running = 0.0;
      for (const PortWeight& pw : kBasePorts) {
        running += pw.weight * continent_multiplier(c, pw.port) * type_multiplier(t, pw.port);
        table.push_back(running);
      }
    }
  }
}

std::uint16_t PortModel::scan_port(util::Rng& rng, geo::Continent continent,
                                   geo::NetType type) const {
  const std::vector<double>& table = cumulative_[table_index(continent, type)];
  const double target = rng.uniform01() * table.back();
  const auto it = std::lower_bound(table.begin(), table.end(), target);
  return ports_[static_cast<std::size_t>(it - table.begin())];
}

double BlockTraits::syn40_share(net::Block24 block) const noexcept {
  // Two independent uniforms -> one normal draw via Box-Muller, all
  // deterministic in (seed, block).
  const std::uint64_t h1 = util::mix64(seed_, 0x51a0000ull | block.index());
  const std::uint64_t h2 = util::mix64(seed_ ^ 0x9e3779b97f4a7c15ULL, block.index());
  const double u1 = (static_cast<double>(h1 >> 11) + 0.5) * 0x1.0p-53;
  const double u2 = static_cast<double>(h2 >> 11) * 0x1.0p-53;
  const double n = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * 3.14159265358979323846 * u2);
  return std::clamp(0.785 + 0.096 * n, 0.30, 0.99);
}

int BlockTraits::isp_active_size_class(net::Block24 block) const noexcept {
  const std::uint64_t h = util::mix64(seed_ ^ 0x15bc1a55ull, block.index());
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  if (u < 0.075) return 1;  // ack-heavy: median 40 (Table 3's 7% median-FPR)
  if (u < 0.225) return 2;  // smallish: median 42..46 (the jump to 22.6%)
  return 0;
}

bool BlockTraits::leased_today(net::Block24 block, int day,
                               double lease_fraction) const noexcept {
  // Dynamic pools are sticky: the same blocks are handed to subscribers day
  // after day (the paper's TEU1 kept a stable unused core of 265 of 768
  // /24s), with a little daily churn at the edge.
  const std::uint64_t pool_hash = util::mix64(seed_ ^ 0x7e01ull, block.index());
  const bool in_pool =
      static_cast<double>(pool_hash >> 11) * 0x1.0p-53 < lease_fraction;
  const std::uint64_t churn_hash =
      util::mix64(seed_ ^ 0xc452ull, util::mix64(block.index(), day));
  const bool churn = static_cast<double>(churn_hash >> 11) * 0x1.0p-53 < 0.05;
  return in_pool != churn;
}

double DayFactors::scan(int day) noexcept {
  static constexpr double kFactors[7] = {1.45, 1.00, 1.05, 0.95, 1.00, 1.10, 1.15};
  return kFactors[((day % 7) + 7) % 7];
}

double DayFactors::production(int day) noexcept {
  static constexpr double kFactors[7] = {1.00, 1.02, 1.00, 0.98, 0.95, 0.45, 0.40};
  return kFactors[((day % 7) + 7) % 7];
}

double DayFactors::spoof(int day) noexcept {
  static constexpr double kFactors[7] = {1.30, 1.10, 1.00, 1.00, 1.10, 0.60, 0.55};
  return kFactors[((day % 7) + 7) % 7];
}

std::uint16_t draw_scan_size(util::Rng& rng, double share40) noexcept {
  if (rng.uniform01() < share40) return 40;
  return rng.uniform01() < 0.8 ? 48 : 56;
}

std::uint16_t draw_production_size(util::Rng& rng) noexcept {
  const double u = rng.uniform01();
  if (u < 0.55) return 1400;
  if (u < 0.75) return 600;
  if (u < 0.90) return 200;
  return 90;
}

}  // namespace mtscope::sim
