// Simulation configuration: universe scale, traffic intensities and the
// vantage-point / telescope fleet.
//
// All traffic rates are expressed in PAPER UNITS (real packets per day) and
// then multiplied by `volume_scale` when generating, so the paper's
// thresholds (44-byte average, 1.7M packets/day) keep their meaning: the
// inference pipeline divides its volume thresholds by the same scale.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/ipv4.hpp"

namespace mtscope::sim {

/// Per-component traffic intensities, in real packets/day per target /24
/// (destination-side) unless noted.  Defaults are calibrated so that a dark
/// /24 receives ~2M packets/day of IBR, the figure the paper reports for
/// its operational telescopes (Table 2).
struct TrafficProfile {
  // --- Internet background radiation (destined to every routed /24) ---
  double random_scan_pkts_per_day = 700'000;   // ZMap-style uniform scanning
  double botnet_scan_pkts_per_day = 1'150'000; // Mirai/Satori-style, port+region biased
  double backscatter_pkts_per_day = 120'000;   // DDoS victim SYN-ACK/RST reflections
  double misconfig_pkts_per_day = 60'000;      // stale configs, byte-order bugs (mostly UDP)

  // --- Production traffic (active /24s only) ---
  double production_rx_pkts_per_day = 30'000'000;  // inbound to active blocks
  double production_tx_pkts_per_day = 25'000'000;  // outbound from active blocks
  double quiet_active_rx_pkts_per_day = 300'000;   // "quiet" active blocks: low duty cycle
  double quiet_active_tx_pkts_per_day = 2'000;     // almost never send (false-positive fuel)

  // --- CDN asymmetric-return-path blocks (active, but outbound invisible) ---
  double asym_ack_rx_pkts_per_day = 250'000'000;     // pure 40-byte ACK streams

  // --- Spoofed-source traffic ---
  // Two components, as real packets/day across the Internet.  The "routed"
  // component models spoofers who bias sources into announced space (evades
  // bogon filters); the "uniform" component spreads sources across the
  // whole 32-bit space and is what the unrouted-/8 tolerance baseline
  // measures (§7.2).  The ratio of the two controls how well the tolerance
  // tracks the damage: the paper's tolerance works precisely because
  // unrouted space is hit at a comparable per-/24 rate to routed space.
  double spoofed_routed_pkts_per_day = 3.8e11;
  double spoofed_uniform_pkts_per_day = 4.7e12;

  // Weekend attenuation of production traffic (drives Figure 8's weekend
  // bump in inferred prefixes).  Days 0..6 map to Mon..Sun.
  double weekend_production_factor = 0.45;

  // Share of 40-byte vs 48-byte TCP SYNs in scanning traffic (paper: >=93%
  // of telescope TCP packets are 40 bytes; a step at 48 bytes).
  double syn40_share = 0.94;
};

/// One IXP vantage point, mirroring Table 1's fleet.
struct IxpSpec {
  std::string code;          // "CE1" ... "SE6"
  std::string region;        // "Central Europe", "North America", "South Europe"
  int member_count = 100;    // drives membership sampling
  double visibility_boost = 1.0;  // bigger IXPs see a larger traffic share
  std::uint32_t sampling_rate = 10'000;  // 1-in-N packet sampling
};

/// One operational telescope, mirroring Table 2.
struct TelescopeSpec {
  std::string code;           // "TUS1", "TEU1", "TEU2"
  std::string location;       // "North America" / "Central Europe"
  std::uint32_t size_24s = 64;           // scaled-down block count
  std::vector<std::uint16_t> blocked_ports;  // TEU1 blocks 23 and 445 at ingress
  double dynamic_active_fraction = 0.0;  // TEU1: share of blocks leased out per day
  bool announced_at_many_ixps = false;   // TEU2: direct peering at 10 IXPs
  std::uint32_t capture_window_24s = 32; // how many /24s get full packet capture
};

/// A scripted connectivity outage for detector evaluation: the legacy
/// /8's announced dark /14 (AddressPlan::outage_prefix()) stops emitting
/// IBR for `duration_days` days starting at `start_day` — ground truth
/// the outage-detection tests score precision/recall against.  The
/// suppression consumes every RNG draw it would have emitted, so traffic
/// everywhere else is bit-identical to the same seed without the outage.
struct OutageSpec {
  int start_day = 0;
  int duration_days = 0;  // 0 disables the scenario

  [[nodiscard]] bool active(int day) const noexcept {
    return duration_days > 0 && day >= start_day && day < start_day + duration_days;
  }
};

struct SimConfig {
  std::uint64_t seed = 42;

  /// Number of general-purpose /8s carved into ASes (plus the legacy /8,
  /// the telescope /8 and two unrouted /8s that are always present).
  int general_slash8s = 3;

  /// Traffic scale factor applied to every rate in TrafficProfile.  The
  /// pipeline must be told the same factor so its absolute thresholds
  /// (1.7M pkts/day) can be rescaled.
  double volume_scale = 1e-3;

  TrafficProfile traffic;

  /// Fraction of active blocks that are "quiet" (receive scans, barely
  /// send) and fraction that sit behind asymmetric return paths.
  double quiet_active_fraction = 0.10;
  double asym_ack_fraction = 0.02;

  /// Probability that an AS is a mostly-unused legacy allocation.
  double legacy_as_fraction = 0.08;

  /// The IXP fleet; defaults to the paper's 14 sites.
  std::vector<IxpSpec> ixps = default_ixps();

  /// The telescope fleet; defaults to scaled TUS1/TEU1/TEU2.
  std::vector<TelescopeSpec> telescopes = default_telescopes();

  /// Scripted outage scenario; disabled by default.
  OutageSpec outage;

  [[nodiscard]] static std::vector<IxpSpec> default_ixps();
  [[nodiscard]] static std::vector<TelescopeSpec> default_telescopes();

  /// A tiny configuration for unit tests: one general /8, modest traffic.
  [[nodiscard]] static SimConfig tiny(std::uint64_t seed = 7);
};

}  // namespace mtscope::sim
