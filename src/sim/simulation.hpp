// Simulation: one object that owns the universe (AddressPlan), the vantage
// points (Ixp fleet with special-case visibility wiring), and the traffic
// generators, and runs logical days through the genuine export path:
//
//   sampled packets -> time sort -> FlowTable -> IPFIX encode -> IPFIX
//   decode -> FlowRecords (what the inference pipeline consumes)
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "flow/record.hpp"
#include "sim/address_plan.hpp"
#include "sim/config.hpp"
#include "sim/generators.hpp"
#include "sim/vantage.hpp"

namespace mtscope::sim {

/// One vantage point's decoded flow data for one day, plus exporter
/// statistics (Table 1's "sampled flows" column).
struct IxpDayData {
  std::size_t ixp_index = 0;
  int day = 0;
  std::vector<flow::FlowRecord> flows;
  std::uint64_t sampled_packets = 0;
  std::uint64_t sampled_bytes = 0;
  std::uint64_t ipfix_messages = 0;
  std::uint64_t ipfix_bytes = 0;
  std::uint64_t ipfix_sets_skipped = 0;  // unknown-set parse drops (RFC 7011 §8)
};

/// One telescope-day of raw captured packets (full, unsampled).
struct TelescopeDayData {
  std::size_t telescope_index = 0;
  int day = 0;
  std::vector<flow::PacketMeta> packets;
  std::size_t captured_blocks = 0;  // capture window size
};

class Simulation {
 public:
  explicit Simulation(SimConfig config);

  [[nodiscard]] const SimConfig& config() const noexcept { return config_; }
  [[nodiscard]] const AddressPlan& plan() const noexcept { return *plan_; }
  [[nodiscard]] const std::vector<Ixp>& ixps() const noexcept { return ixps_; }

  /// Index of the IXP with the given code ("CE1"...); throws if unknown.
  [[nodiscard]] std::size_t ixp_index(const std::string& code) const;

  /// Run one IXP-day through the full exporter/collector path.
  [[nodiscard]] IxpDayData run_ixp_day(std::size_t ixp_index, int day) const;

  /// Capture one telescope-day (unsampled, capture window only).
  [[nodiscard]] TelescopeDayData run_telescope_day(std::size_t telescope_index, int day) const;

  /// One week of the TUS1-hosting ISP's labelled border NetFlow (Table 3).
  [[nodiscard]] std::vector<IspBlockObservation> run_isp_week() const;

 private:
  void wire_special_visibility();

  SimConfig config_;
  std::unique_ptr<AddressPlan> plan_;
  std::vector<Ixp> ixps_;
  std::unique_ptr<IxpTrafficGenerator> ixp_gen_;
  std::unique_ptr<TelescopeTrafficGenerator> telescope_gen_;
  std::unique_ptr<IspTrafficGenerator> isp_gen_;
};

}  // namespace mtscope::sim
