#include "sim/address_plan.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace mtscope::sim {

namespace {

// /8 first-octet pools, chosen clear of RFC 6890 space.
constexpr std::array<std::uint8_t, 14> kGeneralSlash8Pool = {24, 34,  45,  57,  63,  77,  89,
                                                             96, 101, 113, 134, 147, 155, 163};
constexpr std::uint8_t kLegacySlash8 = 52;
constexpr std::uint8_t kTelescopeSlash8 = 44;
constexpr std::array<std::uint8_t, 2> kUnroutedSlash8s = {37, 102};

struct CountryWeight {
  const char* code;
  double weight;
};

const std::vector<CountryWeight>& countries_of(geo::Continent c) {
  static const std::vector<CountryWeight> na = {
      {"US", 0.74}, {"CA", 0.12}, {"MX", 0.08}, {"PA", 0.02}, {"CR", 0.02}, {"DO", 0.02}};
  static const std::vector<CountryWeight> sa = {
      {"BR", 0.45}, {"AR", 0.20}, {"CL", 0.12}, {"CO", 0.12}, {"PE", 0.06}, {"UY", 0.05}};
  static const std::vector<CountryWeight> eu = {
      {"DE", 0.18}, {"GB", 0.14}, {"FR", 0.12}, {"NL", 0.10}, {"IT", 0.08}, {"ES", 0.07},
      {"PL", 0.07}, {"SE", 0.06}, {"CH", 0.05}, {"RU", 0.05}, {"UA", 0.04}, {"RO", 0.04}};
  static const std::vector<CountryWeight> af = {
      {"ZA", 0.30}, {"NG", 0.20}, {"EG", 0.16}, {"KE", 0.12}, {"MA", 0.09},
      {"GH", 0.07}, {"TN", 0.06}};
  static const std::vector<CountryWeight> as = {
      {"CN", 0.50}, {"JP", 0.11}, {"IN", 0.09}, {"KR", 0.07}, {"SG", 0.05}, {"HK", 0.04},
      {"TW", 0.04}, {"TH", 0.03}, {"VN", 0.03}, {"ID", 0.02}, {"TR", 0.02}};
  static const std::vector<CountryWeight> oc = {
      {"AU", 0.62}, {"NZ", 0.28}, {"FJ", 0.05}, {"PG", 0.05}};
  static const std::vector<CountryWeight> intl = {{"US", 1.0}};
  switch (c) {
    case geo::Continent::kNorthAmerica: return na;
    case geo::Continent::kSouthAmerica: return sa;
    case geo::Continent::kEurope: return eu;
    case geo::Continent::kAfrica: return af;
    case geo::Continent::kAsia: return as;
    case geo::Continent::kOceania: return oc;
    case geo::Continent::kInternational: return intl;
  }
  return intl;
}

geo::Continent pick_continent(util::Rng& rng) {
  // Allocation shares loosely follow real RIR history: North America heavy
  // (legacy space), Asia second — this drives the paper's "most prefixes in
  // the USA, China second" finding.
  static constexpr std::array<std::pair<geo::Continent, double>, 6> kWeights = {{
      {geo::Continent::kNorthAmerica, 0.33},
      {geo::Continent::kAsia, 0.27},
      {geo::Continent::kEurope, 0.19},
      {geo::Continent::kOceania, 0.08},
      {geo::Continent::kAfrica, 0.07},
      {geo::Continent::kSouthAmerica, 0.06},
  }};
  double total = 0.0;
  for (const auto& [c, w] : kWeights) total += w;
  double target = rng.uniform01() * total;
  for (const auto& [c, w] : kWeights) {
    target -= w;
    if (target <= 0.0) return c;
  }
  return geo::Continent::kNorthAmerica;
}

geo::NetType pick_net_type(util::Rng& rng) {
  const double u = rng.uniform01();
  if (u < 0.45) return geo::NetType::kIsp;
  if (u < 0.70) return geo::NetType::kEnterprise;
  if (u < 0.85) return geo::NetType::kEducation;
  return geo::NetType::kDataCenter;
}

/// Base probability that an allocated /24 hosts something, by network type.
double active_probability(geo::NetType type, geo::Continent continent) {
  double p = 0.68;
  switch (type) {
    case geo::NetType::kIsp: p = 0.68; break;
    case geo::NetType::kEnterprise: p = 0.72; break;
    case geo::NetType::kEducation: p = 0.55; break;
    // Data centers emerged under IPv4 scarcity -> little dark space
    // (paper, Figure 16's observation).
    case geo::NetType::kDataCenter: p = 0.92; break;
  }
  switch (continent) {
    case geo::Continent::kNorthAmerica: p *= 0.82; break;  // legacy abundance
    case geo::Continent::kEurope: p = std::min(0.97, p * 1.10); break;  // scarcity
    case geo::Continent::kAfrica: p = std::min(0.97, p * 1.06); break;
    case geo::Continent::kAsia: p *= 0.92; break;  // big sparsely-used legacy blocks
    default: break;
  }
  return p;
}

}  // namespace

AddressPlan::AddressPlan(const SimConfig& config) : config_(config) {
  if (config.general_slash8s < 1 ||
      config.general_slash8s > static_cast<int>(kGeneralSlash8Pool.size())) {
    throw std::invalid_argument("AddressPlan: general_slash8s out of range [1, 14]");
  }
  util::Rng rng(util::mix64(config.seed, 0x0add7e55u));

  // Universe layout: N general /8s + legacy /8 + telescope /8; two unrouted
  // /8s participate in the universe but have no layout (kUnallocated).
  for (int i = 0; i < config.general_slash8s; ++i) slash8s_.push_back(kGeneralSlash8Pool[i]);
  slash8s_.push_back(kLegacySlash8);
  slash8s_.push_back(kTelescopeSlash8);
  legacy_slash8_ = kLegacySlash8;
  telescope_slash8_ = kTelescopeSlash8;
  for (std::uint8_t base : kUnroutedSlash8s) {
    slash8s_.push_back(base);
    unrouted_slash8s_.push_back(base);
  }

  layouts_.reserve(static_cast<std::size_t>(config.general_slash8s) + 2);
  for (int i = 0; i < config.general_slash8s; ++i) {
    Slash8Layout layout;
    layout.base = kGeneralSlash8Pool[i];
    layout.as_index.assign(65536, kNoAs);
    layout.roles.assign(65536, BlockRole::kUnallocated);
    layouts_.push_back(std::move(layout));
  }
  {
    Slash8Layout legacy;
    legacy.base = kLegacySlash8;
    legacy.as_index.assign(65536, kNoAs);
    legacy.roles.assign(65536, BlockRole::kUnallocated);
    layouts_.push_back(std::move(legacy));
  }
  {
    Slash8Layout telescope;
    telescope.base = kTelescopeSlash8;
    telescope.as_index.assign(65536, kNoAs);
    telescope.roles.assign(65536, BlockRole::kUnallocated);
    layouts_.push_back(std::move(telescope));
  }

  // The first general /8 hosts the TEU1/TEU2 telescopes at its head; the
  // rest of it and all other general /8s are carved into ordinary ASes.
  for (int i = 0; i < config.general_slash8s; ++i) {
    util::Rng fork = rng.fork(0x100 + static_cast<std::uint64_t>(i));
    if (i == 0) {
      Slash8Layout& layout = layouts_[0];
      // TEU1's host: an EU eyeball ISP with a /15 (512 blocks).
      teu1_as_ = make_as(fork, geo::Continent::kEurope, /*force=*/true);
      ases_[teu1_as_].type = geo::NetType::kIsp;
      nettypes_.add(ases_[teu1_as_].asn, geo::NetType::kIsp);
      assign_range(layout, 0, 512, teu1_as_, fork);
      // Carve TEU1 out of the host's space (offset 64, spec size).
      const TelescopeSpec& teu1_spec = config_.telescopes.at(1);
      TelescopeInfo teu1;
      teu1.spec = teu1_spec;
      teu1.as_index = teu1_as_;
      for (std::uint32_t b = 64; b < 64 + teu1_spec.size_24s && b < 512; ++b) {
        layout.roles[b] = BlockRole::kTelescope;
        const net::Block24 block((std::uint32_t{layout.base} << 16) | b);
        teu1.blocks.push_back(block);
        dark_.insert(block);
        active_.erase(block);
      }
      // Greedy prefix cover of the telescope's (possibly non-power-of-two)
      // block range.
      {
        std::uint32_t at = 64;
        std::uint32_t remaining = std::min<std::uint32_t>(teu1_spec.size_24s, 512 - 64);
        while (remaining > 0) {
          std::uint32_t size = 1;
          while (size * 2 <= remaining && at % (size * 2) == 0) size *= 2;
          int len = 24;
          for (std::uint32_t s = size; s > 1; s >>= 1) --len;
          teu1.prefixes.push_back(net::Prefix::canonical(
              net::Ipv4Addr((std::uint32_t{layout.base} << 24) | (at << 8)), len));
          at += size;
          remaining -= size;
        }
      }
      telescopes_.push_back(std::move(teu1));

      // TEU2: its own small AS, directly announced at many IXPs.
      const TelescopeSpec& teu2_spec = config_.telescopes.at(2);
      teu2_as_ = make_as(fork, geo::Continent::kEurope, /*force=*/true);
      ases_[teu2_as_].type = geo::NetType::kEducation;
      nettypes_.add(ases_[teu2_as_].asn, geo::NetType::kEducation);
      TelescopeInfo teu2;
      teu2.spec = teu2_spec;
      teu2.as_index = teu2_as_;
      const std::uint32_t teu2_start = 512;
      for (std::uint32_t b = teu2_start; b < teu2_start + teu2_spec.size_24s; ++b) {
        layout.as_index[b] = static_cast<std::uint32_t>(teu2_as_);
        layout.roles[b] = BlockRole::kTelescope;
        const net::Block24 block((std::uint32_t{layout.base} << 16) | b);
        teu2.blocks.push_back(block);
        dark_.insert(block);
        allocated_.insert(block);
      }
      int len = 24;
      for (std::uint32_t s = teu2_spec.size_24s; s > 1; s >>= 1) --len;
      const net::Prefix teu2_prefix = net::Prefix::canonical(
          net::Ipv4Addr((std::uint32_t{layout.base} << 24) | (teu2_start << 8)), len);
      teu2.prefixes.push_back(teu2_prefix);
      ases_[teu2_as_].allocated.push_back(teu2_prefix);
      ases_[teu2_as_].announced.push_back(teu2_prefix);
      rib_.announce(teu2_prefix, ases_[teu2_as_].asn);
      geodb_.add(teu2_prefix, ases_[teu2_as_].country);
      telescopes_.push_back(std::move(teu2));

      carve_range(layout, teu2_start + teu2_spec.size_24s, 65536, fork, std::nullopt);
    } else {
      carve_general_slash8(layouts_[i], fork);
    }
  }

  {
    util::Rng fork = rng.fork(0x200);
    build_legacy_slash8(layouts_[layouts_.size() - 2], fork);
  }
  {
    util::Rng fork = rng.fork(0x201);
    build_telescope_slash8(layouts_.back(), fork);
  }

  // Order telescopes TUS1, TEU1, TEU2 (build order appended TUS1 last).
  std::sort(telescopes_.begin(), telescopes_.end(),
            [](const TelescopeInfo& a, const TelescopeInfo& b) {
              return a.spec.code < b.spec.code;  // TEU1 < TEU2 < TUS1
            });
  std::rotate(telescopes_.begin(), telescopes_.end() - 1, telescopes_.end());  // TUS1 first

  finalize_datasets();
}

std::size_t AddressPlan::make_as(util::Rng& rng, geo::Continent continent_hint,
                                 bool force_continent) {
  AsInfo info;
  info.asn = net::AsNumber(static_cast<std::uint32_t>(1000 + ases_.size()));
  info.continent = force_continent ? continent_hint : pick_continent(rng);
  const auto& countries = countries_of(info.continent);
  std::vector<double> weights;
  weights.reserve(countries.size());
  for (const auto& cw : countries) weights.push_back(cw.weight);
  info.country = countries[rng.weighted_pick(weights)].code;
  info.type = pick_net_type(rng);
  info.legacy = rng.chance(config_.legacy_as_fraction);
  info.org_name = info.country + std::string("-") +
                  std::string(geo::net_type_name(info.type)) + "-" +
                  std::to_string(info.asn.value());
  nettypes_.add(info.asn, info.type);
  ases_.push_back(std::move(info));
  return ases_.size() - 1;
}

void AddressPlan::assign_range(Slash8Layout& layout, std::uint32_t start, std::uint32_t count,
                               std::size_t as_index, util::Rng& rng) {
  AsInfo& as_info = ases_[as_index];
  const double p_active = as_info.legacy ? 0.04 : active_probability(as_info.type,
                                                                     as_info.continent);

  // Activity assigned via a two-state Markov chain so dark space clusters
  // into contiguous runs, as real allocations do (matters for the Hilbert
  // maps and the prefix-index ECDF).
  bool active = rng.chance(p_active);
  constexpr double kSwitchOut = 0.12;  // chance of leaving the current run
  for (std::uint32_t b = start; b < start + count && b < 65536; ++b) {
    if (rng.chance(kSwitchOut)) active = rng.chance(p_active);

    BlockRole role;
    if (active) {
      if (rng.chance(config_.asym_ack_fraction)) {
        role = BlockRole::kAsymAck;
      } else if (rng.chance(config_.quiet_active_fraction)) {
        role = BlockRole::kQuietActive;
      } else {
        role = BlockRole::kActive;
      }
    } else {
      role = BlockRole::kDark;
    }
    layout.as_index[b] = static_cast<std::uint32_t>(as_index);
    layout.roles[b] = role;

    const net::Block24 block((std::uint32_t{layout.base} << 16) | b);
    allocated_.insert(block);
    if (role == BlockRole::kDark) {
      dark_.insert(block);
    } else {
      active_.insert(block);
    }
  }

  // Record the covering prefix (aligned power-of-two carving guarantees one
  // exists when callers pass aligned ranges; odd ranges get /24 pieces).
  std::uint32_t at = start;
  std::uint32_t remaining = count;
  while (remaining > 0) {
    std::uint32_t size = 1;
    while (size * 2 <= remaining && at % (size * 2) == 0) size *= 2;
    int len = 24;
    for (std::uint32_t s = size; s > 1; s >>= 1) --len;
    const net::Prefix prefix = net::Prefix::canonical(
        net::Ipv4Addr((std::uint32_t{layout.base} << 24) | (at << 8)), len);
    as_info.allocated.push_back(prefix);
    geodb_.add(prefix, as_info.country);

    // Announcement policy: exact prefix (70%), split into two more-specifics
    // (25%), or left unannounced (5% — dark space invisible to BGP).
    const double u = rng.uniform01();
    if (u < 0.70 || len >= 24) {
      as_info.announced.push_back(prefix);
      rib_.announce(prefix, as_info.asn);
    } else if (u < 0.95) {
      const auto [low, high] = prefix.children();
      as_info.announced.push_back(low);
      as_info.announced.push_back(high);
      rib_.announce(low, as_info.asn);
      rib_.announce(high, as_info.asn);
    }
    at += size;
    remaining -= size;
  }
}

void AddressPlan::carve_general_slash8(Slash8Layout& layout, util::Rng& rng) {
  carve_range(layout, 0, 65536, rng, std::nullopt);
}

void AddressPlan::carve_range(Slash8Layout& layout, std::uint32_t start, std::uint32_t end,
                              util::Rng& rng, std::optional<geo::Continent> continent_bias) {
  std::uint32_t cursor = start;
  while (cursor < end) {
    // Allocation sizes: geometric over /22.. /14 (4 to 1024 /24s), skewed
    // small the way RIR delegations are.
    int k = 2;
    while (k < 10 && rng.chance(0.55)) ++k;
    std::uint32_t size = 1u << k;
    // Align the cursor to the allocation size.
    std::uint32_t aligned = (cursor + size - 1) & ~(size - 1);
    while (aligned + size > end && size > 4) {
      size >>= 1;
      aligned = (cursor + size - 1) & ~(size - 1);
    }
    if (aligned + size > end) break;

    const bool force = continent_bias.has_value();
    const std::size_t as_index =
        make_as(rng, continent_bias.value_or(geo::Continent::kNorthAmerica), force);
    assign_range(layout, aligned, size, as_index, rng);
    cursor = aligned + size;
  }
}

void AddressPlan::build_legacy_slash8(Slash8Layout& layout, util::Rng& rng) {
  // Right /9 (blocks 32768..65535): one giant unused legacy enterprise
  // allocation, announced as a /9 — Figure 5's right half.
  legacy9_as_ = make_as(rng, geo::Continent::kNorthAmerica, /*force=*/true);
  AsInfo& l9 = ases_[legacy9_as_];
  l9.type = geo::NetType::kEnterprise;
  l9.legacy = true;
  l9.country = "US";
  nettypes_.add(l9.asn, l9.type);
  const net::Prefix right_half = net::Prefix::canonical(
      net::Ipv4Addr((std::uint32_t{layout.base} << 24) | (32768u << 8)), 9);
  l9.allocated.push_back(right_half);
  l9.announced.push_back(right_half);
  rib_.announce(right_half, l9.asn);
  geodb_.add(right_half, l9.country);
  for (std::uint32_t b = 32768; b < 65536; ++b) {
    layout.as_index[b] = static_cast<std::uint32_t>(legacy9_as_);
    layout.roles[b] = BlockRole::kDark;
    const net::Block24 block((std::uint32_t{layout.base} << 16) | b);
    allocated_.insert(block);
    dark_.insert(block);
  }

  // First /10 (blocks 0..16383): allocated but NEVER announced — invisible
  // to BGP, removed by pipeline step 5.
  {
    const std::size_t lu = make_as(rng, geo::Continent::kNorthAmerica, /*force=*/true);
    AsInfo& info = ases_[lu];
    info.type = geo::NetType::kEnterprise;
    info.legacy = true;
    info.country = "US";
    nettypes_.add(info.asn, info.type);
    const net::Prefix unannounced = net::Prefix::canonical(
        net::Ipv4Addr(std::uint32_t{layout.base} << 24), 10);
    info.allocated.push_back(unannounced);
    geodb_.add(unannounced, info.country);
    for (std::uint32_t b = 0; b < 16384; ++b) {
      layout.as_index[b] = static_cast<std::uint32_t>(lu);
      layout.roles[b] = BlockRole::kDark;
      const net::Block24 block((std::uint32_t{layout.base} << 16) | b);
      allocated_.insert(block);
      dark_.insert(block);
    }
  }

  // Second /10 (16384..32767): a dark /14 at 20480 (Figure 5's left-half
  // feature) and ordinary carving around it.
  legacy14_as_ = make_as(rng, geo::Continent::kNorthAmerica, /*force=*/true);
  AsInfo& l14 = ases_[legacy14_as_];
  l14.type = geo::NetType::kEducation;
  l14.legacy = true;
  l14.country = "US";
  nettypes_.add(l14.asn, l14.type);
  const net::Prefix dark14 = net::Prefix::canonical(
      net::Ipv4Addr((std::uint32_t{layout.base} << 24) | (20480u << 8)), 14);
  outage_prefix_ = dark14;
  l14.allocated.push_back(dark14);
  l14.announced.push_back(dark14);
  rib_.announce(dark14, l14.asn);
  geodb_.add(dark14, l14.country);
  for (std::uint32_t b = 20480; b < 21504; ++b) {
    layout.as_index[b] = static_cast<std::uint32_t>(legacy14_as_);
    layout.roles[b] = BlockRole::kDark;
    const net::Block24 block((std::uint32_t{layout.base} << 16) | b);
    allocated_.insert(block);
    dark_.insert(block);
  }
  carve_range(layout, 16384, 20480, rng, std::nullopt);
  carve_range(layout, 21504, 32768, rng, std::nullopt);
}

void AddressPlan::build_telescope_slash8(Slash8Layout& layout, util::Rng& rng) {
  // The TUS1 host: a North-American ISP that peers only at the NA IXPs.
  const std::size_t isp_as = make_as(rng, geo::Continent::kNorthAmerica, /*force=*/true);
  AsInfo& isp_info = ases_[isp_as];
  isp_info.type = geo::NetType::kIsp;
  isp_info.country = "US";
  nettypes_.add(isp_info.asn, isp_info.type);
  isp_.as_index = isp_as;

  // TUS1 occupies quarters 0, 1 and 3 of the /8 (Figure 6's telescope
  // covering three quadrants of the Hilbert map).
  TelescopeInfo tus1;
  tus1.spec = config_.telescopes.at(0);
  tus1.as_index = isp_as;
  const auto add_quarter = [&](std::uint32_t q) {
    const std::uint32_t start = q * 16384;
    const net::Prefix quarter = net::Prefix::canonical(
        net::Ipv4Addr((std::uint32_t{layout.base} << 24) | (start << 8)), 10);
    tus1.prefixes.push_back(quarter);
    isp_info.allocated.push_back(quarter);
    isp_info.announced.push_back(quarter);
    rib_.announce(quarter, isp_info.asn);
    geodb_.add(quarter, isp_info.country);
    for (std::uint32_t b = start; b < start + 16384; ++b) {
      layout.as_index[b] = static_cast<std::uint32_t>(isp_as);
      layout.roles[b] = BlockRole::kTelescope;
      const net::Block24 block((std::uint32_t{layout.base} << 16) | b);
      allocated_.insert(block);
      dark_.insert(block);
      tus1.blocks.push_back(block);
    }
  };
  add_quarter(0);
  add_quarter(1);
  add_quarter(3);
  telescopes_.push_back(std::move(tus1));

  // Quarter 2 (32768..49151): the ISP's own production /13 (2048 blocks)
  // plus ordinary NA-biased allocations — this mixed space is the labelled
  // dataset behind Table 3.
  assign_range(layout, 32768, 2048, isp_as, rng);
  for (std::uint32_t b = 32768; b < 32768 + 2048; ++b) {
    isp_.blocks.emplace_back((std::uint32_t{layout.base} << 16) | b);
  }
  carve_range(layout, 32768 + 2048, 49152, rng, geo::Continent::kNorthAmerica);
}

void AddressPlan::finalize_datasets() {
  // geodb/nettypes are filled during construction; build the O(1) first
  // octet -> layout lookup used by the hot role()/as_of() queries.
  layout_lookup_.fill(nullptr);
  for (const Slash8Layout& layout : layouts_) layout_lookup_[layout.base] = &layout;
}

const AddressPlan::Slash8Layout* AddressPlan::layout_of(net::Block24 block) const noexcept {
  return layout_lookup_[block.index() >> 16];
}

BlockRole AddressPlan::role(net::Block24 block) const noexcept {
  const Slash8Layout* layout = layout_of(block);
  if (layout == nullptr) return BlockRole::kUnallocated;
  return layout->roles[block.index() & 0xffff];
}

std::optional<std::size_t> AddressPlan::as_of(net::Block24 block) const noexcept {
  const Slash8Layout* layout = layout_of(block);
  if (layout == nullptr) return std::nullopt;
  const std::uint32_t index = layout->as_index[block.index() & 0xffff];
  if (index == kNoAs) return std::nullopt;
  return index;
}

routing::RouteViews AddressPlan::make_route_views(int day, int dumps) const {
  routing::RouteViews views;
  const auto announcements = rib_.announcements();
  for (int d = 0; d < dumps; ++d) {
    util::Rng rng(util::mix64(config_.seed, util::mix64(0x5200 + day, d)));
    routing::Rib dump;
    for (const auto& [prefix, asn] : announcements) {
      // Route flaps: each dump misses ~0.5% of routes; the 12-dump union
      // recovers nearly all of them, as the paper's merge does.
      if (!rng.chance(0.005)) dump.announce(prefix, asn);
    }
    views.add_dump(day, dump);
  }
  return views;
}

std::shared_ptr<const trie::Block24Set> AddressPlan::universe_mask() const {
  auto mask = std::make_shared<trie::Block24Set>();
  for (const std::uint8_t base : slash8s_) {
    const std::uint32_t first = std::uint32_t{base} << 16;
    for (std::uint32_t i = 0; i < 65536; ++i) mask->insert(net::Block24(first + i));
  }
  return mask;
}

routing::PrefixToAs AddressPlan::make_pfx2as() const {
  routing::PrefixToAs out;
  for (const auto& [prefix, asn] : rib_.announcements()) out.add(prefix, asn);
  return out;
}

routing::AsToOrg AddressPlan::make_as2org() const {
  routing::AsToOrg out;
  for (const AsInfo& info : ases_) {
    out.add(info.asn, routing::Organization{"ORG-" + std::to_string(info.asn.value()),
                                            info.org_name, info.country});
  }
  return out;
}

std::vector<net::Block24> AddressPlan::blocks_of(std::size_t as_index) const {
  std::vector<net::Block24> out;
  for (const net::Prefix& prefix : ases_.at(as_index).allocated) {
    for (const net::Block24 block : prefix.blocks24()) out.push_back(block);
  }
  return out;
}

}  // namespace mtscope::sim
