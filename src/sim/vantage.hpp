// IXP vantage points: membership, per-AS traffic visibility and sampling.
//
// An IXP never sees all traffic toward a network: only the share that
// happens to be routed across its fabric (the paper's "Routing" and
// "Locality" limitations).  We model that share as a per-(IXP, AS)
// visibility factor in [0, 1]: member networks exchange a few percent of
// their total traffic over any one fabric; networks reachable via a member
// transit provider contribute less; everything else is (near) invisible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geo/geodb.hpp"
#include "sim/address_plan.hpp"
#include "sim/config.hpp"
#include "util/rng.hpp"

namespace mtscope::sim {

class Ixp {
 public:
  /// Build membership and default visibility for every AS in the plan.
  Ixp(IxpSpec spec, std::size_t index, const AddressPlan& plan, std::uint64_t seed);

  [[nodiscard]] const IxpSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::size_t index() const noexcept { return index_; }
  [[nodiscard]] geo::Continent continent() const noexcept { return continent_; }

  /// Share of traffic toward AS `as_index` that crosses this IXP.
  [[nodiscard]] double visibility(std::size_t as_index) const {
    return visibility_.at(as_index);
  }

  /// Override (used for the special ASes: telescope hosts, legacy orgs).
  void set_visibility(std::size_t as_index, double value) {
    visibility_.at(as_index) = value;
  }

  [[nodiscard]] bool is_member(std::size_t as_index) const { return member_.at(as_index); }
  [[nodiscard]] std::size_t member_count() const noexcept { return member_total_; }

  /// Share of global spoofed-DDoS traffic whose victims are reached via
  /// this fabric (scales the spoofed packets this IXP samples).
  [[nodiscard]] double spoof_share() const noexcept { return spoof_share_; }

  [[nodiscard]] std::uint32_t sampling_rate() const noexcept { return spec_.sampling_rate; }

 private:
  IxpSpec spec_;
  std::size_t index_;
  geo::Continent continent_;
  std::vector<double> visibility_;
  std::vector<bool> member_;
  std::size_t member_total_ = 0;
  double spoof_share_ = 0.0;
};

/// Region string of an IxpSpec -> continent.
[[nodiscard]] geo::Continent ixp_region_continent(const std::string& region) noexcept;

}  // namespace mtscope::sim
