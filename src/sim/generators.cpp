#include "sim/generators.hpp"

#include <algorithm>

namespace mtscope::sim {

namespace {

/// Service ports production and backscatter traffic gravitates to.
constexpr std::uint16_t kServicePorts[] = {443, 80, 53, 22, 993, 3306, 8443};

std::uint16_t random_service_port(util::Rng& rng) {
  return kServicePorts[rng.uniform(std::size(kServicePorts))];
}

std::uint16_t random_ephemeral_port(util::Rng& rng) {
  return static_cast<std::uint16_t>(49152 + rng.uniform(16384));
}

}  // namespace

// ---------------------------------------------------------------------------
// IxpTrafficGenerator

IxpTrafficGenerator::IxpTrafficGenerator(const AddressPlan& plan, const SimConfig& config)
    : plan_(plan), config_(config), traits_(config.seed) {
  plan_.allocated_blocks().for_each([&](net::Block24 block) {
    if (plan_.rib().is_routed(block)) {
      routed_.insert(block);
      routed_list_.push_back(block);
    }
  });
  active_list_ = plan_.active_blocks().to_vector();
  for (const std::uint8_t slash8 : plan_.slash8s()) {
    const std::uint32_t first = std::uint32_t{slash8} << 16;
    for (std::uint32_t i = 0; i < 65536; ++i) universe_list_.emplace_back(first + i);
  }
}

std::uint64_t IxpTrafficGenerator::ts(util::Rng& rng, int day) const {
  return static_cast<std::uint64_t>(day) * kDayUs + rng.uniform(kDayUs);
}

net::Ipv4Addr IxpTrafficGenerator::random_active_ip(util::Rng& rng) const {
  if (active_list_.empty()) return net::Ipv4Addr(rng.uniform(0x100000000ull));
  const net::Block24 block = active_list_[rng.uniform(active_list_.size())];
  return net::Ipv4Addr((block.index() << 8) | static_cast<std::uint32_t>(rng.uniform(254) + 1));
}

net::Ipv4Addr IxpTrafficGenerator::random_routed_ip(util::Rng& rng) const {
  if (routed_list_.empty()) return net::Ipv4Addr(rng.uniform(0x100000000ull));
  const net::Block24 block = routed_list_[rng.uniform(routed_list_.size())];
  return net::Ipv4Addr((block.index() << 8) | static_cast<std::uint32_t>(rng.uniform(254) + 1));
}

std::vector<flow::PacketMeta> IxpTrafficGenerator::generate_day(const Ixp& ixp, int day) const {
  std::vector<flow::PacketMeta> out;
  out.reserve(1u << 20);

  util::Rng day_rng(util::mix64(config_.seed, util::mix64(0x1990 + ixp.index(), day)));

  for (std::size_t a = 0; a < plan_.ases().size(); ++a) {
    if (ixp.visibility(a) <= 0.0) continue;
    util::Rng as_rng = day_rng.fork(a);
    for (const net::Prefix& prefix : plan_.ases()[a].allocated) {
      const std::uint32_t first = prefix.base().value() >> 8;
      const std::uint64_t count = prefix.block24_count();
      for (std::uint64_t i = 0; i < count; ++i) {
        emit_block_traffic(ixp, day, a, net::Block24(first + static_cast<std::uint32_t>(i)),
                           as_rng, out);
      }
    }
  }

  {
    util::Rng spoof_rng = day_rng.fork(0xdead);
    emit_spoofed(ixp, day, spoof_rng, out);
  }
  {
    util::Rng bogon_rng = day_rng.fork(0xb060);
    emit_bogon_noise(ixp, day, bogon_rng, out);
  }
  return out;
}

void IxpTrafficGenerator::emit_block_traffic(const Ixp& ixp, int day, std::size_t as_index,
                                             net::Block24 block, util::Rng& rng,
                                             std::vector<flow::PacketMeta>& out) const {
  const AsInfo& as_info = plan_.ases()[as_index];
  const double vis = ixp.visibility(as_index);
  const double scale = config_.volume_scale;
  const double inv_r = 1.0 / ixp.sampling_rate();
  const TrafficProfile& tp = config_.traffic;

  BlockRole role = plan_.role(block);
  if (role == BlockRole::kUnallocated) return;

  // TEU1's dynamically allocated blocks behave like active eyeball space on
  // lease days.
  const bool is_teu1 = as_index == plan_.teu1_as_index() && role == BlockRole::kTelescope;
  if (is_teu1) {
    const double lease = config_.telescopes.at(1).dynamic_active_fraction;
    if (traits_.leased_today(block, day, lease)) role = BlockRole::kActive;
  }

  const bool routed = routed_.contains(block);
  const auto dst_ip = [&] {
    return net::Ipv4Addr((block.index() << 8) | static_cast<std::uint32_t>(rng.uniform(254) + 1));
  };

  // Scripted outage (SimConfig::outage): the block's inbound IBR is
  // generated and then dropped — every RNG draw still happens, so traffic
  // everywhere else in the universe is bit-identical to a run without the
  // outage.  Only the push into `out` is suppressed, the way a prefix
  // withdrawal silences the radiation without changing anyone else's day.
  const bool suppressed = plan_.in_outage(block, day);

  if (routed) {
    // --- Scanning (random + botnet), the core of IBR ---
    // TEU2 draws ~20% more background radiation than the average block
    // (Table 2: 2.29M vs 1.91M packets/day per /24).
    const double ibr_boost = (as_index == plan_.teu2_as_index()) ? 1.35 : 1.0;
    const double scan_rate = (tp.random_scan_pkts_per_day + tp.botnet_scan_pkts_per_day) *
                             ibr_boost * DayFactors::scan(day) * scale * vis * inv_r;
    const std::uint64_t scans = rng.poisson(scan_rate);
    if (scans > 0) {
      // Aggregate SYN mix (>=93% are 40B, Table 2); the ISP generator keeps
      // per-block heterogeneity for Table 3's classifier sweep.
      const double share40 = tp.syn40_share;
      for (std::uint64_t i = 0; i < scans; ++i) {
        flow::PacketMeta p = flow::make_syn(
            ts(rng, day), random_active_ip(rng), dst_ip(), random_ephemeral_port(rng),
            ports_.scan_port(rng, as_info.continent, as_info.type), draw_scan_size(rng, share40));
        if (!suppressed) out.push_back(p);
      }
    }

    // --- Backscatter: victims answering spoofed SYNs ---
    const std::uint64_t scatter = rng.poisson(tp.backscatter_pkts_per_day *
                                              DayFactors::spoof(day) * scale * vis * inv_r);
    for (std::uint64_t i = 0; i < scatter; ++i) {
      flow::PacketMeta p;
      p.timestamp_us = ts(rng, day);
      p.src = random_active_ip(rng);
      p.dst = dst_ip();
      p.proto = net::IpProto::kTcp;
      p.src_port = random_service_port(rng);
      p.dst_port = random_ephemeral_port(rng);
      p.ip_length = rng.chance(0.8) ? 40 : 44;
      p.tcp_flags = rng.chance(0.6) ? (net::TcpFlags::kSyn | net::TcpFlags::kAck)
                                    : net::TcpFlags::kRst;
      if (!suppressed) out.push_back(p);
    }

    // --- Misconfiguration noise (mostly UDP, odd sizes) ---
    const std::uint64_t noise =
        rng.poisson(tp.misconfig_pkts_per_day * scale * vis * inv_r);
    for (std::uint64_t i = 0; i < noise; ++i) {
      flow::PacketMeta p;
      p.timestamp_us = ts(rng, day);
      p.src = random_active_ip(rng);
      p.dst = dst_ip();
      p.proto = net::IpProto::kUdp;
      p.src_port = random_ephemeral_port(rng);
      p.dst_port = rng.chance(0.5) ? 53 : random_service_port(rng);
      p.ip_length = static_cast<std::uint16_t>(80 + rng.uniform(400));
      if (!suppressed) out.push_back(p);
    }
  }

  // --- Role-dependent production traffic ---
  const double prod_factor = DayFactors::production(day);
  switch (role) {
    case BlockRole::kActive: {
      const std::uint64_t rx =
          rng.poisson(tp.production_rx_pkts_per_day * prod_factor * scale * vis * inv_r);
      for (std::uint64_t i = 0; i < rx; ++i) {
        flow::PacketMeta p;
        p.timestamp_us = ts(rng, day);
        p.src = random_active_ip(rng);
        p.dst = dst_ip();
        p.proto = net::IpProto::kTcp;
        p.src_port = random_service_port(rng);
        p.dst_port = random_ephemeral_port(rng);
        p.ip_length = draw_production_size(rng);
        p.tcp_flags = net::TcpFlags::kAck | (rng.chance(0.3) ? net::TcpFlags::kPsh : 0);
        out.push_back(p);
      }
      const std::uint64_t tx =
          rng.poisson(tp.production_tx_pkts_per_day * prod_factor * scale * vis * inv_r);
      for (std::uint64_t i = 0; i < tx; ++i) {
        flow::PacketMeta p;
        p.timestamp_us = ts(rng, day);
        p.src = dst_ip();  // an address inside this block
        p.dst = random_active_ip(rng);
        p.proto = net::IpProto::kTcp;
        p.src_port = random_ephemeral_port(rng);
        p.dst_port = random_service_port(rng);
        p.ip_length = draw_production_size(rng);
        p.tcp_flags = net::TcpFlags::kAck;
        out.push_back(p);
      }
      break;
    }
    case BlockRole::kQuietActive: {
      const std::uint64_t rx =
          rng.poisson(tp.quiet_active_rx_pkts_per_day * prod_factor * scale * vis * inv_r);
      for (std::uint64_t i = 0; i < rx; ++i) {
        flow::PacketMeta p;
        p.timestamp_us = ts(rng, day);
        p.src = random_active_ip(rng);
        p.dst = dst_ip();
        p.proto = net::IpProto::kTcp;
        p.src_port = random_service_port(rng);
        p.dst_port = random_ephemeral_port(rng);
        p.ip_length = draw_production_size(rng);
        p.tcp_flags = net::TcpFlags::kAck;
        out.push_back(p);
      }
      const std::uint64_t tx =
          rng.poisson(tp.quiet_active_tx_pkts_per_day * prod_factor * scale * vis * inv_r);
      for (std::uint64_t i = 0; i < tx; ++i) {
        flow::PacketMeta p;
        p.timestamp_us = ts(rng, day);
        p.src = dst_ip();
        p.dst = random_active_ip(rng);
        p.proto = net::IpProto::kTcp;
        p.src_port = random_ephemeral_port(rng);
        p.dst_port = random_service_port(rng);
        p.ip_length = draw_production_size(rng);
        p.tcp_flags = net::TcpFlags::kAck;
        out.push_back(p);
      }
      break;
    }
    case BlockRole::kAsymAck: {
      // The CDN pure-ACK return path: high-volume 40-byte ACK streams with
      // no visible outbound leg — exactly what pipeline step 6 exists for.
      const std::uint64_t rx =
          rng.poisson(tp.asym_ack_rx_pkts_per_day * prod_factor * scale * vis * inv_r);
      for (std::uint64_t i = 0; i < rx; ++i) {
        flow::PacketMeta p;
        p.timestamp_us = ts(rng, day);
        p.src = random_active_ip(rng);
        p.dst = dst_ip();
        p.proto = net::IpProto::kTcp;
        p.src_port = random_ephemeral_port(rng);
        p.dst_port = 443;
        p.ip_length = 40;
        p.tcp_flags = net::TcpFlags::kAck;
        out.push_back(p);
      }
      break;
    }
    case BlockRole::kDark:
    case BlockRole::kTelescope:
    case BlockRole::kUnallocated:
      break;
  }
}

void IxpTrafficGenerator::emit_spoofed(const Ixp& ixp, int day, util::Rng& rng,
                                       std::vector<flow::PacketMeta>& out) const {
  const TrafficProfile& tp = config_.traffic;
  const double base = config_.volume_scale * DayFactors::spoof(day) * ixp.spoof_share() /
                      ixp.sampling_rate();
  // Two spoofing populations (see TrafficProfile): routed-biased sources and
  // sources uniform over the whole 32-bit space.  Uniform sources outside
  // the simulated universe would be dropped by the pipeline's universe mask
  // anyway, so we draw them over the universe at a rate thinned by
  // universe/2^32 — identical per-/24 hit rate, far fewer wasted packets.
  const double universe_fraction =
      static_cast<double>(universe_list_.size()) / 16'777'216.0;
  const double routed_rate = tp.spoofed_routed_pkts_per_day * base;
  const double uniform_rate = tp.spoofed_uniform_pkts_per_day * base * universe_fraction;

  const auto emit = [&](net::Ipv4Addr src) {
    flow::PacketMeta p;
    p.timestamp_us = ts(rng, day);
    p.src = src;
    p.dst = random_active_ip(rng);  // DDoS victims live in used space
    p.proto = net::IpProto::kTcp;
    p.src_port = random_ephemeral_port(rng);
    p.dst_port = random_service_port(rng);
    p.ip_length = rng.chance(0.7) ? 40 : static_cast<std::uint16_t>(44 + rng.uniform(1200));
    p.tcp_flags = net::TcpFlags::kSyn;
    out.push_back(p);
  };

  const std::uint64_t routed_count = rng.poisson(routed_rate);
  for (std::uint64_t i = 0; i < routed_count; ++i) emit(random_routed_ip(rng));
  const std::uint64_t uniform_count = rng.poisson(uniform_rate);
  for (std::uint64_t i = 0; i < uniform_count; ++i) {
    const net::Block24 block = universe_list_[rng.uniform(universe_list_.size())];
    emit(net::Ipv4Addr((block.index() << 8) | static_cast<std::uint32_t>(rng.uniform(254) + 1)));
  }
}

void IxpTrafficGenerator::emit_bogon_noise(const Ixp& ixp, int day, util::Rng& rng,
                                           std::vector<flow::PacketMeta>& out) const {
  // A trickle of traffic destined to private / reserved space leaks across
  // most fabrics (funnel step 4's prey).  ~30 sampled packets/day at a big
  // IXP, spread over RFC 1918 and TEST-NET destinations.
  static constexpr std::uint32_t kBogonBases[] = {
      0x0a000000u,  // 10.0.0.0/8
      0xc0a80000u,  // 192.168.0.0/16
      0xac100000u,  // 172.16.0.0/12
      0xc0000200u,  // 192.0.2.0/24
  };
  const std::uint64_t count = rng.poisson(30.0 * ixp.spec().visibility_boost);
  (void)day;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint32_t base = kBogonBases[rng.uniform(std::size(kBogonBases))];
    flow::PacketMeta p;
    p.timestamp_us = ts(rng, day);
    p.src = random_active_ip(rng);
    p.dst = net::Ipv4Addr(base | static_cast<std::uint32_t>(rng.uniform(65536)));
    p.proto = net::IpProto::kTcp;
    p.src_port = random_ephemeral_port(rng);
    p.dst_port = 23;
    p.ip_length = 40;
    p.tcp_flags = net::TcpFlags::kSyn;
    out.push_back(p);
  }
}

// ---------------------------------------------------------------------------
// TelescopeTrafficGenerator

TelescopeTrafficGenerator::TelescopeTrafficGenerator(const AddressPlan& plan,
                                                     const SimConfig& config)
    : plan_(plan), config_(config), traits_(config.seed) {
  active_list_ = plan_.active_blocks().to_vector();
}

net::Ipv4Addr TelescopeTrafficGenerator::random_active_ip(util::Rng& rng) const {
  if (active_list_.empty()) return net::Ipv4Addr(static_cast<std::uint32_t>(rng.next()));
  const net::Block24 block = active_list_[rng.uniform(active_list_.size())];
  return net::Ipv4Addr((block.index() << 8) | static_cast<std::uint32_t>(rng.uniform(254) + 1));
}

std::vector<flow::PacketMeta> TelescopeTrafficGenerator::generate_day(
    const TelescopeInfo& telescope, int day) const {
  std::vector<flow::PacketMeta> out;
  const TrafficProfile& tp = config_.traffic;
  const double scale = config_.volume_scale;
  const bool is_teu2 = telescope.spec.code == "TEU2";
  const double ibr_boost = is_teu2 ? 1.35 : 1.0;

  const std::size_t window =
      std::min<std::size_t>(telescope.spec.capture_window_24s, telescope.blocks.size());

  util::Rng day_rng(util::mix64(config_.seed,
                                util::mix64(0x7e1e5c0 + day, telescope.spec.code.size() +
                                                                 telescope.blocks.size())));

  const std::size_t as_index = telescope.as_index;
  const AsInfo& as_info = plan_.ases()[as_index];

  for (std::size_t w = 0; w < window; ++w) {
    const net::Block24 block = telescope.blocks[w];
    util::Rng rng = day_rng.fork(block.index());

    // Skip dynamically leased blocks: the provider reassigns them to users
    // and the telescope stops capturing them for the day.
    if (telescope.spec.dynamic_active_fraction > 0.0 &&
        traits_.leased_today(block, day, telescope.spec.dynamic_active_fraction)) {
      continue;
    }

    const double share40 = tp.syn40_share;
    const auto dst_ip = [&] {
      return net::Ipv4Addr((block.index() << 8) |
                           static_cast<std::uint32_t>(rng.uniform(254) + 1));
    };

    const auto blocked = [&](std::uint16_t port) {
      return std::find(telescope.spec.blocked_ports.begin(), telescope.spec.blocked_ports.end(),
                       port) != telescope.spec.blocked_ports.end();
    };

    // Scanning.
    const std::uint64_t scans =
        rng.poisson((tp.random_scan_pkts_per_day + tp.botnet_scan_pkts_per_day) * ibr_boost *
                    DayFactors::scan(day) * scale);
    for (std::uint64_t i = 0; i < scans; ++i) {
      const std::uint16_t port = ports_.scan_port(rng, as_info.continent, as_info.type);
      if (blocked(port)) continue;
      out.push_back(flow::make_syn(static_cast<std::uint64_t>(day) * kDayUs +
                                       rng.uniform(kDayUs),
                                   random_active_ip(rng), dst_ip(), random_ephemeral_port(rng),
                                   port, draw_scan_size(rng, share40)));
    }

    // Backscatter.
    const std::uint64_t scatter = rng.poisson(tp.backscatter_pkts_per_day * ibr_boost *
                                              DayFactors::spoof(day) * scale);
    for (std::uint64_t i = 0; i < scatter; ++i) {
      flow::PacketMeta p;
      p.timestamp_us = static_cast<std::uint64_t>(day) * kDayUs + rng.uniform(kDayUs);
      p.src = random_active_ip(rng);
      p.dst = dst_ip();
      p.proto = net::IpProto::kTcp;
      p.src_port = random_service_port(rng);
      p.dst_port = random_ephemeral_port(rng);
      p.ip_length = rng.chance(0.8) ? 40 : 44;
      p.tcp_flags = rng.chance(0.6) ? (net::TcpFlags::kSyn | net::TcpFlags::kAck)
                                    : net::TcpFlags::kRst;
      out.push_back(p);
    }

    // Misconfiguration (UDP) — TEU2 receives proportionally more UDP
    // (Table 2: 79.5% TCP vs ~94% at TUS1).
    const double udp_boost = is_teu2 ? 6.0 : 1.0;
    const std::uint64_t noise =
        rng.poisson(tp.misconfig_pkts_per_day * udp_boost * scale);
    for (std::uint64_t i = 0; i < noise; ++i) {
      flow::PacketMeta p;
      p.timestamp_us = static_cast<std::uint64_t>(day) * kDayUs + rng.uniform(kDayUs);
      p.src = random_active_ip(rng);
      p.dst = dst_ip();
      p.proto = net::IpProto::kUdp;
      p.src_port = random_ephemeral_port(rng);
      p.dst_port = rng.chance(0.5) ? 53 : 1900;
      p.ip_length = static_cast<std::uint16_t>(80 + rng.uniform(400));
      out.push_back(p);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// IspTrafficGenerator

IspTrafficGenerator::IspTrafficGenerator(const AddressPlan& plan, const SimConfig& config)
    : plan_(plan), config_(config), traits_(config.seed) {}

std::vector<IspBlockObservation> IspTrafficGenerator::generate_week(
    std::size_t isp_sample, std::size_t telescope_sample) const {
  const TrafficProfile& tp = config_.traffic;
  const double scale = config_.volume_scale;

  std::vector<net::Block24> blocks;
  const auto& isp_blocks = plan_.isp().blocks;
  for (std::size_t i = 0; i < std::min(isp_sample, isp_blocks.size()); ++i) {
    blocks.push_back(isp_blocks[i]);
  }
  const auto& tus1 = plan_.telescopes().at(0).blocks;
  for (std::size_t i = 0; i < std::min(telescope_sample, tus1.size()); ++i) {
    blocks.push_back(tus1[i]);
  }

  std::vector<IspBlockObservation> out;
  out.reserve(blocks.size());

  for (const net::Block24 block : blocks) {
    util::Rng rng(util::mix64(config_.seed, 0x15b00000ull | block.index()));
    IspBlockObservation obs;
    obs.block = block;
    obs.role = plan_.role(block);

    const auto add_bucket = [&](std::uint16_t size, std::uint64_t packets,
                                net::IpProto proto = net::IpProto::kTcp) {
      if (packets == 0) return;
      flow::FlowRecord r;
      r.key.src = net::Ipv4Addr(0x01010101u);
      r.key.dst = block.first_address();
      r.key.proto = proto;
      r.packets = packets;
      r.bytes = std::uint64_t{size} * packets;
      obs.inbound.add_flow(r);
    };

    for (int day = 0; day < 7; ++day) {
      // Every routed block receives the IBR mix.
      const double scan_rate = (tp.random_scan_pkts_per_day + tp.botnet_scan_pkts_per_day) *
                               DayFactors::scan(day) * scale;
      const std::uint64_t scans = rng.poisson(scan_rate);
      const double share40 = traits_.syn40_share(block);
      std::uint64_t n40 = 0;
      std::uint64_t n48 = 0;
      std::uint64_t n56 = 0;
      for (std::uint64_t i = 0; i < scans; ++i) {
        const std::uint16_t size = draw_scan_size(rng, share40);
        if (size == 40) ++n40;
        else if (size == 48) ++n48;
        else ++n56;
      }
      add_bucket(40, n40);
      add_bucket(48, n48);
      add_bucket(56, n56);

      const std::uint64_t scatter =
          rng.poisson(tp.backscatter_pkts_per_day * DayFactors::spoof(day) * scale);
      add_bucket(40, scatter * 8 / 10);
      add_bucket(44, scatter - scatter * 8 / 10);

      add_bucket(200, rng.poisson(tp.misconfig_pkts_per_day * scale), net::IpProto::kUdp);

      const double prod_factor = DayFactors::production(day);
      switch (obs.role) {
        case BlockRole::kActive: {
          const std::uint64_t rx =
              rng.poisson(tp.production_rx_pkts_per_day * prod_factor * scale);
          // Table 3's texture: most active blocks receive large packets, a
          // 7.5% slice is ACK-heavy (median 40), a 15% slice is small-packet
          // traffic (median 42..46).
          switch (traits_.isp_active_size_class(block)) {
            case 1:  // ack-heavy
              add_bucket(40, rx * 6 / 10);
              add_bucket(1400, rx - rx * 6 / 10);
              break;
            case 2: {  // smallish: median at 42..46, deterministic per block
              const std::uint16_t med =
                  static_cast<std::uint16_t>(42 + (util::mix64(config_.seed, block.index()) % 5));
              add_bucket(med, rx * 55 / 100);
              add_bucket(1400, rx - rx * 55 / 100);
              break;
            }
            default:
              add_bucket(1400, rx * 55 / 100);
              add_bucket(600, rx * 20 / 100);
              add_bucket(200, rx * 15 / 100);
              add_bucket(90, rx - rx * 55 / 100 - rx * 20 / 100 - rx * 15 / 100);
          }
          obs.tx_packets_week +=
              rng.poisson(tp.production_tx_pkts_per_day * prod_factor * scale);
          break;
        }
        case BlockRole::kQuietActive: {
          const std::uint64_t rx =
              rng.poisson(tp.quiet_active_rx_pkts_per_day * prod_factor * scale);
          add_bucket(1400, rx / 2);
          add_bucket(200, rx - rx / 2);
          obs.tx_packets_week +=
              rng.poisson(tp.quiet_active_tx_pkts_per_day * prod_factor * scale);
          break;
        }
        case BlockRole::kAsymAck: {
          const std::uint64_t rx =
              rng.poisson(tp.asym_ack_rx_pkts_per_day * prod_factor * scale);
          add_bucket(40, rx);
          // Border NetFlow sees the outbound leg even when IXPs do not.
          obs.tx_packets_week += rx / 3;
          break;
        }
        case BlockRole::kDark:
        case BlockRole::kTelescope: {
          // ~5% of dark blocks are contaminated by a few spoofed packets
          // per week, landing them in the excluded middle class exactly as
          // the paper's >=10M-packet constraint intends.
          if ((util::mix64(config_.seed ^ 0x5b00f, block.index()) % 100) < 5) {
            obs.tx_packets_week += 1 + rng.uniform(3);
          }
          break;
        }
        case BlockRole::kUnallocated:
          break;
      }
    }
    out.push_back(std::move(obs));
  }
  return out;
}

}  // namespace mtscope::sim
