// Traffic generators: IXP-side sampled packets, telescope-side full
// captures, and ISP-side NetFlow.
//
// The IXP generator produces the *sampled* packet stream directly: for each
// (block, traffic component) it draws Poisson(rate x visibility x day-factor
// / sampling-rate).  This is statistically identical to generating the full
// stream and sampling 1-in-N, at a millionth of the cost, and it is the only
// way to simulate paper-scale volumes (~10^12 packets/day) on one machine.
// The sampled stream then flows through the genuine exporter path: 5-tuple
// flow table -> IPFIX encode -> IPFIX decode -> inference, so the pipeline
// consumes exactly what a real collector would hand it.
#pragma once

#include <cstdint>
#include <vector>

#include "flow/packet.hpp"
#include "sim/address_plan.hpp"
#include "sim/traffic_model.hpp"
#include "sim/vantage.hpp"
#include "telemetry/block_stats.hpp"
#include "trie/block24_set.hpp"

namespace mtscope::sim {

/// Microseconds in a simulated day.
inline constexpr std::uint64_t kDayUs = 86'400ull * 1'000'000;

class IxpTrafficGenerator {
 public:
  IxpTrafficGenerator(const AddressPlan& plan, const SimConfig& config);

  /// All sampled packets crossing `ixp` on `day` (unsorted).
  [[nodiscard]] std::vector<flow::PacketMeta> generate_day(const Ixp& ixp, int day) const;

 private:
  void emit_block_traffic(const Ixp& ixp, int day, std::size_t as_index, net::Block24 block,
                          util::Rng& rng, std::vector<flow::PacketMeta>& out) const;
  void emit_spoofed(const Ixp& ixp, int day, util::Rng& rng,
                    std::vector<flow::PacketMeta>& out) const;
  void emit_bogon_noise(const Ixp& ixp, int day, util::Rng& rng,
                        std::vector<flow::PacketMeta>& out) const;

  [[nodiscard]] net::Ipv4Addr random_active_ip(util::Rng& rng) const;
  [[nodiscard]] net::Ipv4Addr random_routed_ip(util::Rng& rng) const;
  [[nodiscard]] std::uint64_t ts(util::Rng& rng, int day) const;

  const AddressPlan& plan_;
  SimConfig config_;
  PortModel ports_;
  BlockTraits traits_;
  trie::Block24Set routed_;                 // blocks covered by a BGP announcement
  std::vector<net::Block24> active_list_;   // for source/victim sampling
  std::vector<net::Block24> routed_list_;   // for routed-biased spoof sources
  std::vector<net::Block24> universe_list_; // for uniform spoof sources
};

/// Full (unsampled) packet capture at an operational telescope's capture
/// window.  TEU1's ingress port blocking and daily dynamic allocation are
/// honoured here.
class TelescopeTrafficGenerator {
 public:
  TelescopeTrafficGenerator(const AddressPlan& plan, const SimConfig& config);

  [[nodiscard]] std::vector<flow::PacketMeta> generate_day(const TelescopeInfo& telescope,
                                                           int day) const;

 private:
  [[nodiscard]] net::Ipv4Addr random_active_ip(util::Rng& rng) const;

  const AddressPlan& plan_;
  SimConfig config_;
  PortModel ports_;
  BlockTraits traits_;
  std::vector<net::Block24> active_list_;
};

/// One labelled observation from the ISP's border NetFlow (Table 3's
/// tuning dataset).
struct IspBlockObservation {
  net::Block24 block;
  BlockRole role = BlockRole::kDark;
  telemetry::DetailedBlockStats inbound;
  std::uint64_t tx_packets_week = 0;
};

class IspTrafficGenerator {
 public:
  IspTrafficGenerator(const AddressPlan& plan, const SimConfig& config);

  /// Synthesize a week of border flow records for a sample of the ISP's
  /// own blocks plus a window of TUS1 telescope blocks, aggregated into
  /// per-block inbound statistics and weekly source counts.
  [[nodiscard]] std::vector<IspBlockObservation> generate_week(
      std::size_t isp_sample = 448, std::size_t telescope_sample = 64) const;

 private:
  const AddressPlan& plan_;
  SimConfig config_;
  BlockTraits traits_;
};

}  // namespace mtscope::sim
