#include "sim/simulation.hpp"

#include <algorithm>
#include <stdexcept>

#include "flow/flow_table.hpp"
#include "flow/ipfix.hpp"

namespace mtscope::sim {

Simulation::Simulation(SimConfig config) : config_(std::move(config)) {
  plan_ = std::make_unique<AddressPlan>(config_);
  ixps_.reserve(config_.ixps.size());
  for (std::size_t i = 0; i < config_.ixps.size(); ++i) {
    ixps_.emplace_back(config_.ixps[i], i, *plan_, config_.seed);
  }
  wire_special_visibility();
  ixp_gen_ = std::make_unique<IxpTrafficGenerator>(*plan_, config_);
  telescope_gen_ = std::make_unique<TelescopeTrafficGenerator>(*plan_, config_);
  isp_gen_ = std::make_unique<IspTrafficGenerator>(*plan_, config_);
}

void Simulation::wire_special_visibility() {
  const auto set_everywhere = [&](std::size_t as_index, double value) {
    for (Ixp& ixp : ixps_) ixp.set_visibility(as_index, value);
  };
  const auto set_at = [&](std::size_t as_index, const std::string& code, double value) {
    for (Ixp& ixp : ixps_) {
      if (ixp.spec().code == code) ixp.set_visibility(as_index, value);
    }
  };

  // TUS1's hosting ISP peers only in North America; its address space is
  // invisible at the European fabrics (Table 4: CE1 infers none of TUS1).
  const std::size_t isp = plan_->isp().as_index;
  set_everywhere(isp, 0.0);
  set_at(isp, "NA1", 0.008);
  set_at(isp, "NA2", 0.003);
  set_at(isp, "NA3", 0.0005);
  set_at(isp, "NA4", 0.0005);

  // TEU1's host: a European eyeball ISP reachable mostly via CE fabrics.
  const std::size_t teu1 = plan_->teu1_as_index();
  set_everywhere(teu1, 0.0);
  set_at(teu1, "CE1", 0.007);
  set_at(teu1, "CE2", 0.003);

  // TEU2 peers directly at (up to) ten IXPs and is therefore unusually well
  // observed — the reason the volume filter eats it (§4.3).
  const std::size_t teu2 = plan_->teu2_as_index();
  set_everywhere(teu2, 0.0);
  const std::size_t teu2_sites = std::min<std::size_t>(10, ixps_.size());
  for (std::size_t i = 0; i < teu2_sites; ++i) {
    ixps_[i].set_visibility(teu2, 0.48 / static_cast<double>(teu2_sites));
  }

  // Figure 5's legacy orgs: the /9 is routed via Central Europe only, the
  // /14 via North America only — different vantage points see different
  // halves of the same /8.
  set_everywhere(plan_->legacy9_as_index(), 0.0);
  set_at(plan_->legacy9_as_index(), "CE1", 0.015);
  set_everywhere(plan_->legacy14_as_index(), 0.0);
  set_at(plan_->legacy14_as_index(), "NA1", 0.02);
}

std::size_t Simulation::ixp_index(const std::string& code) const {
  for (std::size_t i = 0; i < ixps_.size(); ++i) {
    if (ixps_[i].spec().code == code) return i;
  }
  throw std::invalid_argument("Simulation::ixp_index: unknown IXP code " + code);
}

IxpDayData Simulation::run_ixp_day(std::size_t ixp_index, int day) const {
  const Ixp& ixp = ixps_.at(ixp_index);

  std::vector<flow::PacketMeta> packets = ixp_gen_->generate_day(ixp, day);
  std::sort(packets.begin(), packets.end(),
            [](const flow::PacketMeta& a, const flow::PacketMeta& b) {
              return a.timestamp_us < b.timestamp_us;
            });

  IxpDayData out;
  out.ixp_index = ixp_index;
  out.day = day;
  out.sampled_packets = packets.size();

  flow::FlowTableConfig table_config;
  table_config.sampling_rate = ixp.sampling_rate();
  flow::FlowTable table(table_config);
  for (const flow::PacketMeta& p : packets) {
    out.sampled_bytes += p.ip_length;
    table.add(p);
  }
  table.flush();
  const std::vector<flow::FlowRecord> raw_flows = table.drain_exported();

  // Real export path: IPFIX encode at the exporter, decode at the
  // collector.  The inference pipeline sees only decoded records.
  flow::IpfixEncoderConfig enc_config;
  enc_config.observation_domain = static_cast<std::uint32_t>(ixp_index);
  enc_config.max_message_bytes = 8000;
  flow::IpfixEncoder encoder(enc_config);
  flow::IpfixDecoder decoder;
  const auto messages =
      encoder.encode(raw_flows, static_cast<std::uint32_t>(day * 86'400));
  for (const auto& message : messages) {
    out.ipfix_bytes += message.size();
    auto result = decoder.feed(message);
    if (!result.ok()) {
      throw std::runtime_error("Simulation: IPFIX round-trip failed: " +
                               result.error().to_string());
    }
  }
  out.ipfix_messages = messages.size();
  out.ipfix_sets_skipped = decoder.sets_skipped();
  out.flows = decoder.drain();
  return out;
}

TelescopeDayData Simulation::run_telescope_day(std::size_t telescope_index, int day) const {
  const TelescopeInfo& telescope = plan_->telescopes().at(telescope_index);
  TelescopeDayData out;
  out.telescope_index = telescope_index;
  out.day = day;
  out.captured_blocks =
      std::min<std::size_t>(telescope.spec.capture_window_24s, telescope.blocks.size());
  out.packets = telescope_gen_->generate_day(telescope, day);
  return out;
}

std::vector<IspBlockObservation> Simulation::run_isp_week() const {
  return isp_gen_->generate_week();
}

}  // namespace mtscope::sim
