// Statistical ingredients of the synthetic traffic: scan-port popularity by
// region and network type, per-block packet-size traits, and day-of-week
// modulation.
//
// The numbers here are reverse-engineered from the paper's observations:
//  * Table 5's per-telescope top-ports and Figures 11/12/18-20's regional /
//    network-type skews (port 37215+52869 hot in Africa = Satori, 6001 in
//    Oceania, 7001+3306 in North America, 80/5038 hot in data centers...);
//  * §4.1's packet-size profile: >=93% of telescope TCP packets are 40
//    bytes with a step at 48 (SYN + one option);
//  * Table 3's classifier sweep, which requires cross-block heterogeneity
//    in the 40-byte share (else every threshold >= 41 would be perfect).
#pragma once

#include <cstdint>
#include <vector>

#include "geo/geodb.hpp"
#include "geo/nettype.hpp"
#include "net/ipv4.hpp"
#include "util/rng.hpp"

namespace mtscope::sim {

/// Scan-destination-port model: weighted draw conditioned on the target's
/// continent and network type.
class PortModel {
 public:
  PortModel();

  /// Draw a scan destination port for a target in (continent, type).
  [[nodiscard]] std::uint16_t scan_port(util::Rng& rng, geo::Continent continent,
                                        geo::NetType type) const;

  /// The global base port list, most popular first (used by analyses to
  /// cross-check inferred rankings).
  [[nodiscard]] const std::vector<std::uint16_t>& base_ports() const noexcept { return ports_; }

 private:
  // One cumulative-weight table per (continent, type) pair.
  std::vector<std::uint16_t> ports_;
  std::vector<std::vector<double>> cumulative_;  // [continent*4+type][port index]

  [[nodiscard]] std::size_t table_index(geo::Continent c, geo::NetType t) const noexcept {
    return static_cast<std::size_t>(c) * geo::kAllNetTypes.size() + static_cast<std::size_t>(t);
  }
};

/// Per-/24 stable random traits, derived by hashing the block id with the
/// simulation seed, so every generator (IXP-side, telescope-side, ISP-side)
/// sees the same block behave the same way.
class BlockTraits {
 public:
  explicit BlockTraits(std::uint64_t seed) : seed_(seed) {}

  /// Share of 40-byte packets in TCP scan traffic toward this block.
  /// ~Normal(0.785, 0.096) clamped — calibrated against Table 3 (see
  /// DESIGN.md); the aggregate across blocks stays >= 93% 40-byte because
  /// volume-weighting favours high-p blocks... and because scanning sources
  /// are shared; aggregates land near the paper's figure.
  [[nodiscard]] double syn40_share(net::Block24 block) const noexcept;

  /// ISP active-block inbound size class (Table 3's false-positive texture):
  /// 0 = normal (large packets), 1 = ack-heavy (median 40), 2 = smallish
  /// (median 42..46).
  [[nodiscard]] int isp_active_size_class(net::Block24 block) const noexcept;

  /// TEU1 dynamic allocation: is this telescope block leased out (active)
  /// on `day`?
  [[nodiscard]] bool leased_today(net::Block24 block, int day,
                                  double lease_fraction) const noexcept;

 private:
  std::uint64_t seed_;
};

/// Day-of-week modulation (day 0 = Monday of the measurement week).
/// Separate curves per traffic family; see DESIGN.md §"figure 8".
struct DayFactors {
  /// Scanning: a campaign surge on day 0, mild weekend uptick.
  [[nodiscard]] static double scan(int day) noexcept;
  /// Production: strong weekend dip (enterprises/universities idle).
  [[nodiscard]] static double production(int day) noexcept;
  /// Spoofed DDoS: weekday-heavy.
  [[nodiscard]] static double spoof(int day) noexcept;
};

/// Draw a TCP scan packet size honouring the block's 40-byte share.
[[nodiscard]] std::uint16_t draw_scan_size(util::Rng& rng, double share40) noexcept;

/// Draw a production data-packet size (mean ~900 bytes).
[[nodiscard]] std::uint16_t draw_production_size(util::Rng& rng) noexcept;

}  // namespace mtscope::sim
