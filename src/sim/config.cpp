#include "sim/config.hpp"

namespace mtscope::sim {

std::vector<IxpSpec> SimConfig::default_ixps() {
  // Member counts and relative sizes follow Table 1; sampling rates are
  // typical sFlow/IPFIX deployments (large fabrics sample more sparsely).
  return {
      {"CE1", "Central Europe", 1000, 1.00, 100},
      {"CE2", "Central Europe", 250, 0.35, 70},
      {"CE3", "Central Europe", 200, 0.30, 70},
      {"CE4", "Central Europe", 200, 0.28, 70},
      {"NA1", "North America", 250, 0.90, 100},
      {"NA2", "North America", 125, 0.40, 70},
      {"NA3", "North America", 20, 0.08, 40},
      {"NA4", "North America", 20, 0.12, 40},
      {"SE1", "South Europe", 200, 0.45, 70},
      {"SE2", "South Europe", 10, 0.30, 70},
      {"SE3", "South Europe", 40, 0.15, 40},
      {"SE4", "South Europe", 40, 0.38, 70},
      {"SE5", "South Europe", 20, 0.10, 40},
      {"SE6", "South Europe", 30, 0.09, 40},
  };
}

std::vector<TelescopeSpec> SimConfig::default_telescopes() {
  TelescopeSpec tus1;
  tus1.code = "TUS1";
  tus1.location = "North America";
  tus1.size_24s = 0;  // derived: occupies three quarters of the telescope /8
  tus1.capture_window_24s = 24;

  TelescopeSpec teu1;
  teu1.code = "TEU1";
  teu1.location = "Central Europe";
  teu1.size_24s = 192;
  teu1.blocked_ports = {23, 445};
  teu1.dynamic_active_fraction = 0.65;
  teu1.capture_window_24s = 16;

  TelescopeSpec teu2;
  teu2.code = "TEU2";
  teu2.location = "Central Europe";
  teu2.size_24s = 8;
  teu2.announced_at_many_ixps = true;
  teu2.capture_window_24s = 8;

  return {tus1, teu1, teu2};
}

SimConfig SimConfig::tiny(std::uint64_t seed) {
  SimConfig cfg;
  cfg.seed = seed;
  cfg.general_slash8s = 1;
  cfg.volume_scale = 1e-3;
  cfg.ixps = {
      {"CE1", "Central Europe", 200, 1.0, 100},
      {"NA1", "North America", 100, 0.9, 100},
  };
  auto telescopes = default_telescopes();
  telescopes[1].size_24s = 32;
  telescopes[1].capture_window_24s = 8;
  telescopes[0].capture_window_24s = 8;
  cfg.telescopes = telescopes;
  return cfg;
}

}  // namespace mtscope::sim
