// QueryServer: the operated meta-telescope — a concurrent TCP server that
// answers per-IP classification queries from a loaded snapshot.
//
// Protocol (DESIGN.md §12): line-oriented over TCP.  Each request is one
// IPv4 dotted quad terminated by '\n' (a trailing '\r' and surrounding
// whitespace are stripped, so CRLF clients and hand-edited IP lists work);
// blank lines and '#' comments are ignored.  Each reply is one line with
// the same fields the CLI's query subcommand prints:
//
//   <ip> <class> <prefix> <origin-as>\n     classified block
//   <ip> none\n                             not in the meta-telescope map
//   <token> invalid\n                        unparseable request line
//
// Architecture: a single-threaded epoll reactor (serve/event_loop.hpp)
// over non-blocking sockets.  "Concurrent" means many simultaneous
// clients, not many lookup threads — one core already answers tens of
// millions of classify() calls per second, so the bottleneck is socket
// I/O, and one reactor thread keeps every mutable structure
// single-writer.  Lookups run on the SnapshotManager's lock-free reader
// path: the reactor grabs the current shared_ptr once per input batch and
// queries the immutable index with no further synchronization.
//
// Robustness contract:
//  * Bounded buffers.  At most one bounded chunk is read per readable
//    event (level-triggered epoll re-arms while input remains); a request
//    line longer than max_request_bytes gets one "invalid" reply and the
//    connection is closed.  Replies queue in a per-connection buffer; past
//    max_pending_bytes the server stops reading that connection
//    (back-pressure) until the client drains below half.
//  * Idle timeout.  A connection making no read or write progress for
//    idle_timeout_ms is closed (serve.server.timeouts).  This is also how
//    a back-pressured slow reader eventually gets disconnected.
//  * Hot reload.  request_reload() (or SIGHUP via
//    install_signal_handlers()) atomically swaps the snapshot through the
//    SnapshotManager epoch path.  A failed reload (missing/corrupt file)
//    keeps the old epoch serving.  In-flight queries are never dropped:
//    the swap happens between input batches on the reactor thread.
//  * Watch mode (zero-touch publish).  With watch_interval_ms > 0 the
//    reactor polls snapshot_path's identity (dev/inode/size/mtime) on
//    that cadence and runs the same reload path when it changes — no
//    signal needed, which is how an ingest daemon's atomic publishes
//    (ingest/publish.hpp: write-temp + fsync + rename) flow into a live
//    server.  The rename guarantees the watcher never loads a torn file;
//    a changed-but-corrupt file fails typed, keeps the old epoch, and is
//    not retried until the signature changes again.
//  * Graceful drain.  request_stop() (or SIGTERM/SIGINT) closes the
//    listener, answers every request already received, flushes every
//    queued reply (up to drain_timeout_ms), then run() returns 0.
//
// request_stop() / request_reload() are async-signal-safe and
// thread-safe: they set an atomic flag and write an eventfd.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "net/ipv4.hpp"
#include "obs/metrics.hpp"
#include "serve/event_loop.hpp"
#include "serve/telescope_index.hpp"
#include "util/result.hpp"

namespace mtscope::serve {

/// One reply line, exactly as the CLI's print_verdict renders it (without
/// the trailing newline the server appends): shared so the wire protocol
/// and `mtscope query` output can never drift apart.
[[nodiscard]] std::string format_verdict(net::Ipv4Addr addr,
                                         const std::optional<TelescopeIndex::Verdict>& verdict);

struct ServerConfig {
  std::string snapshot_path;            // loaded at start() and on each reload
  std::uint16_t port = 0;               // 0 = kernel-assigned (see port())
  int max_conns = 1024;                 // accepted beyond this are closed at once
  int idle_timeout_ms = 30'000;         // no-progress connections are dropped
  int drain_timeout_ms = 5'000;         // cap on flushing replies after stop
  int watch_interval_ms = 0;            // poll snapshot_path for replacement; 0 = SIGHUP only
  std::size_t max_request_bytes = 4096;     // longest accepted request line
  std::size_t max_pending_bytes = 256 * 1024;  // reply backlog before back-pressure
};

/// Monotonic server totals, readable from any thread (tests, benches, the
/// CLI's exit banner).  The obs counters mirror these when a registry is
/// attached.
struct ServerStats {
  std::uint64_t connections = 0;  // accepted, lifetime
  std::uint64_t active = 0;       // currently open
  std::uint64_t queries = 0;      // reply lines produced (incl. invalid)
  std::uint64_t invalid = 0;      // unparseable request lines
  std::uint64_t reloads = 0;      // successful snapshot swaps
  std::uint64_t reload_failures = 0;
  std::uint64_t timeouts = 0;     // idle/no-progress disconnects
  std::uint64_t drops = 0;        // over-capacity rejects + buffer-overrun kills
};

class QueryServer {
 public:
  /// With a registry, maintains serve.server.{connections,active,queries,
  /// invalid,reloads,reload_failures,timeouts,drops} plus the
  /// serve.server.request_us latency histogram.  The registry is touched
  /// only from the reactor thread; read it after run() returns.
  explicit QueryServer(ServerConfig config, obs::MetricsRegistry* metrics = nullptr);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Load + install the snapshot, bind + listen.  Expected failures (bad
  /// snapshot file, port in use) come back as typed errors.
  [[nodiscard]] util::Result<bool> start();

  /// The bound port — the kernel's pick when config.port was 0.  Valid
  /// after a successful start().
  [[nodiscard]] std::uint16_t port() const noexcept { return bound_port_; }

  /// The reactor: blocks until a stop request has fully drained.  Returns
  /// 0 on a clean drain (the SIGTERM contract), 1 if start() was never
  /// called successfully.
  int run();

  /// Begin graceful drain.  Async-signal-safe, idempotent.
  void request_stop() noexcept;

  /// Swap in config.snapshot_path at the next reactor iteration.
  /// Async-signal-safe; failures leave the current epoch serving.
  void request_reload() noexcept;

  /// Route SIGHUP -> request_reload, SIGTERM/SIGINT -> request_stop to
  /// this instance (one live signal-handling server per process; the
  /// destructor detaches).
  void install_signal_handlers();

  [[nodiscard]] const SnapshotManager& manager() const noexcept { return manager_; }
  [[nodiscard]] ServerStats stats() const noexcept;

 private:
  struct Connection;

  void accept_ready();
  void handle_wake();
  void connection_ready(int fd, std::uint32_t events);
  bool process_input(Connection& conn);       // false => close the connection
  void answer_line(Connection& conn, std::string_view line, const TelescopeIndex& index);
  bool flush_output(Connection& conn);        // false => close the connection
  void update_interest(Connection& conn);
  void close_connection(int fd);
  void sweep_idle();
  void begin_drain();
  void do_reload();     // the swap itself, shared by SIGHUP and the watcher
  void check_watch();   // watch-mode poll (no-op unless due)
  [[nodiscard]] int next_timeout_ms() const;

  /// File identity for watch mode: a successful atomic publish always
  /// changes the inode (rename swaps a freshly written temp file in).
  struct FileSig {
    std::uint64_t dev = 0;
    std::uint64_t ino = 0;
    std::int64_t size = 0;
    std::int64_t mtime_s = 0;
    std::int64_t mtime_ns = 0;

    friend bool operator==(const FileSig&, const FileSig&) noexcept = default;
  };
  [[nodiscard]] bool stat_snapshot(FileSig& out) const noexcept;

  ServerConfig config_;
  obs::MetricsRegistry* metrics_;
  SnapshotManager manager_;
  EventLoop loop_;
  int listen_fd_ = -1;
  int wake_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  bool started_ = false;
  bool draining_ = false;
  std::chrono::steady_clock::time_point drain_deadline_{};
  std::chrono::steady_clock::time_point next_watch_{};
  FileSig watch_sig_{};
  bool watch_sig_valid_ = false;
  std::unordered_map<int, std::unique_ptr<Connection>> conns_;

  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> reload_requested_{false};

  // Cross-thread-readable totals; the reactor is the only writer.
  // active_ mirrors conns_.size() because stats() must not touch the
  // reactor-owned map from another thread.
  std::atomic<std::uint64_t> active_{0};
  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> queries_{0};
  std::atomic<std::uint64_t> invalid_{0};
  std::atomic<std::uint64_t> reloads_{0};
  std::atomic<std::uint64_t> reload_failures_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  std::atomic<std::uint64_t> drops_{0};

  // Registry handles resolved once (map nodes are stable); null without a
  // registry so the hot path stays free of string lookups.
  obs::Counter* queries_counter_ = nullptr;
  obs::Counter* invalid_counter_ = nullptr;
  obs::TimingHistogram* request_timer_ = nullptr;
};

}  // namespace mtscope::serve
