// QueryServer: the operated meta-telescope — a concurrent TCP server that
// answers per-IP classification queries from a loaded snapshot.
//
// Protocol (DESIGN.md §12): line-oriented over TCP.  Each request is one
// IPv4 dotted quad terminated by '\n' (a trailing '\r' and surrounding
// whitespace are stripped, so CRLF clients and hand-edited IP lists work);
// blank lines and '#' comments are ignored.  Each reply is one line with
// the same fields the CLI's query subcommand prints:
//
//   <ip> <class> <prefix> <origin-as>\n     classified block
//   <ip> none\n                             not in the meta-telescope map
//   <token> invalid\n                        unparseable request line
//
// The echoed <token> is sanitized: bytes outside printable ASCII are
// replaced with '.', so binary garbage is never reflected onto the wire.
//
// Binary protocol (MTBIN, serve/wire.hpp): a connection whose first bytes
// are exactly the 8-byte preamble "MTBIN/1\n" switches to fixed-width
// CRC32-sealed frames — 12-byte requests (lookup / count-in), 20-byte
// responses — with no per-request text parsing or formatting.  Both
// protocols share one port, one reactor loop, the same sendmsg reply
// coalescing, and the same back-pressure/fairness caps; a line client is
// never affected because no line-protocol opener matches the preamble.
// A malformed frame gets one invalid-frame response and the stream
// resumes at the next frame boundary (fixed widths cannot desync), so
// corruption is answered, never crashed on.
//
// Counting contract (every protocol, every path): each produced reply
// increments `queries`; replies reporting a malformed request (bad IP
// line, overlong line, malformed frame) also increment `invalid`; and
// when the violation kills the connection (only the overlong line cap)
// `drops` is incremented as well.
//
// Architecture: N independent epoll reactors (serve/event_loop.hpp), one
// per core with `--reactors N`, each owning its own SO_REUSEPORT listener,
// eventfd, and connection table — the kernel load-balances accepts across
// listeners, and no connection ever migrates between reactors, so every
// mutable structure stays single-writer and the reactors share nothing
// but the SnapshotManager epoch and a handful of monotonic counters.
// Lookups run on the SnapshotManager's lock-free reader path: a reactor
// grabs the current shared_ptr once per input batch and queries the
// immutable index with no further synchronization, which is also why a
// reload needs no cross-reactor coordination — every reactor's next batch
// simply observes the new epoch.
//
// Robustness contract:
//  * Bounded buffers.  At most one bounded chunk is read per readable
//    event (level-triggered epoll re-arms while input remains); a request
//    line longer than max_request_bytes — whether it arrived complete or
//    is still unterminated — gets one "invalid" reply and the connection
//    is closed.  The cap is exact: with a partial line pending, reads are
//    clamped so the input buffer never exceeds max_request_bytes + 1.
//    Replies queue in a per-connection buffer; past
//    max_pending_bytes the server stops reading that connection
//    (back-pressure) until the client drains below half.
//  * Write fairness.  A flush writes at most max_flush_bytes_per_event
//    bytes per event (one sendmsg over the drained buffer plus the fresh
//    batch), then re-arms EPOLLOUT — one connection with a huge reply
//    backlog cannot monopolize its reactor while other ready connections
//    starve (serve.server.partial_flushes counts capped flushes).
//  * Idle timeout.  A connection making no read or write progress for
//    idle_timeout_ms is closed (serve.server.timeouts).  This is also how
//    a back-pressured slow reader eventually gets disconnected.  The
//    sweep runs on a coarse deadline (idle_timeout_ms / 4), not on every
//    wakeup, so deadline accounting costs O(conns) per sweep period
//    instead of per event.
//  * Hot reload.  request_reload() (or SIGHUP via
//    install_signal_handlers()) atomically swaps the snapshot through the
//    SnapshotManager epoch path; reactor 0 performs the load, every
//    reactor picks the new epoch up at its next input batch.  A failed
//    reload (missing/corrupt file) keeps the old epoch serving.
//    In-flight queries are never dropped: each batch is answered from
//    exactly one epoch.
//  * Watch mode (zero-touch publish).  With watch_interval_ms > 0,
//    reactor 0 polls snapshot_path's identity (dev/inode/size/mtime) on
//    that cadence and runs the same reload path when it changes — no
//    signal needed, which is how an ingest daemon's atomic publishes
//    (ingest/publish.hpp: write-temp + fsync + rename) flow into a live
//    server.  The rename guarantees the watcher never loads a torn file;
//    a changed-but-corrupt file fails typed, keeps the old epoch, and is
//    not retried until the signature changes again.
//  * Graceful drain.  request_stop() (or SIGTERM/SIGINT) closes every
//    listener, answers every request already received on every reactor,
//    flushes every queued reply (up to drain_timeout_ms), then run()
//    returns 0 once the last reactor has drained.
//
// request_stop() / request_reload() are async-signal-safe and
// thread-safe: they set an atomic flag and write the reactors' eventfds.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/ipv4.hpp"
#include "obs/metrics.hpp"
#include "serve/event_loop.hpp"
#include "serve/telescope_index.hpp"
#include "util/result.hpp"

namespace mtscope::serve {

/// One reply line, exactly as the CLI's print_verdict renders it (without
/// the trailing newline the server appends): shared so the wire protocol
/// and `mtscope query` output can never drift apart.
[[nodiscard]] std::string format_verdict(net::Ipv4Addr addr,
                                         const std::optional<TelescopeIndex::Verdict>& verdict);

/// Copy up to `limit` bytes of `token` into `out`, replacing every byte
/// outside printable ASCII [0x20, 0x7e] with '.' — the server must never
/// reflect control characters or raw binary back at a client.
void append_sanitized_echo(std::string& out, std::string_view token, std::size_t limit);

struct ServerConfig {
  std::string snapshot_path;            // loaded at start() and on each reload
  std::uint16_t port = 0;               // 0 = kernel-assigned (see port())
  int reactors = 1;                     // event loops, one SO_REUSEPORT listener each
  int max_conns = 1024;                 // accepted beyond this are closed at once
  int idle_timeout_ms = 30'000;         // no-progress connections are dropped
  int drain_timeout_ms = 5'000;         // cap on flushing replies after stop
  int watch_interval_ms = 0;            // poll snapshot_path for replacement; 0 = SIGHUP only
  std::size_t max_request_bytes = 4096;     // longest accepted request line
  std::size_t max_pending_bytes = 256 * 1024;  // reply backlog before back-pressure
  std::size_t max_flush_bytes_per_event = 256 * 1024;  // write-fairness cap per event
};

/// Monotonic server totals, readable from any thread (tests, benches, the
/// CLI's exit banner).  Aggregated across every reactor; the obs counters
/// mirror these when a registry is attached.
struct ServerStats {
  std::uint64_t connections = 0;  // accepted, lifetime
  std::uint64_t active = 0;       // currently open
  std::uint64_t queries = 0;      // replies produced, lines or frames (incl. invalid)
  std::uint64_t invalid = 0;      // malformed requests (bad lines, bad frames)
  std::uint64_t reloads = 0;      // successful snapshot swaps
  std::uint64_t reload_failures = 0;
  std::uint64_t timeouts = 0;     // idle/no-progress disconnects
  std::uint64_t drops = 0;        // over-capacity rejects + buffer-overrun kills
  std::uint64_t partial_flushes = 0;  // flushes capped by max_flush_bytes_per_event
};

class QueryServer {
 public:
  /// With a registry, maintains serve.server.{connections,active,queries,
  /// invalid,reloads,reload_failures,timeouts,drops,partial_flushes} plus
  /// the serve.server.request_us latency histogram.  Each reactor writes
  /// its own private registry; after run() returns they are merged into
  /// the attached registry in reactor-index order (counters add, gauges
  /// keep the max, timers pool), so the snapshot is deterministic for the
  /// same work regardless of scheduling.  Read it after run() returns.
  explicit QueryServer(ServerConfig config, obs::MetricsRegistry* metrics = nullptr);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Load + install the snapshot, bind + listen (one SO_REUSEPORT
  /// listener per reactor).  Expected failures (bad snapshot file, port
  /// in use) come back as typed errors.
  [[nodiscard]] util::Result<bool> start();

  /// The bound port — the kernel's pick when config.port was 0.  Every
  /// reactor's listener shares it.  Valid after a successful start().
  [[nodiscard]] std::uint16_t port() const noexcept { return bound_port_; }

  /// Run every reactor (reactor 0 on the calling thread, the rest on
  /// their own threads) and block until a stop request has fully drained
  /// all of them.  Returns 0 on a clean drain (the SIGTERM contract), 1
  /// if start() was never called successfully.
  int run();

  /// Begin graceful drain on every reactor.  Async-signal-safe,
  /// idempotent.
  void request_stop() noexcept;

  /// Swap in config.snapshot_path at reactor 0's next iteration; the
  /// other reactors observe the new epoch at their next input batch.
  /// Async-signal-safe; failures leave the current epoch serving.
  void request_reload() noexcept;

  /// Route SIGHUP -> request_reload, SIGTERM/SIGINT -> request_stop to
  /// this instance (one live signal-handling server per process; the
  /// destructor detaches).
  void install_signal_handlers();

  [[nodiscard]] const SnapshotManager& manager() const noexcept { return manager_; }
  [[nodiscard]] ServerStats stats() const noexcept;

  /// Lifetime accepted-connection count per reactor, for accept-
  /// distribution checks — SO_REUSEPORT hashes connections across the
  /// listeners, so under many clients every reactor should see some.
  [[nodiscard]] std::vector<std::uint64_t> reactor_connections() const;

 private:
  struct Connection;
  class Reactor;

  void do_reload();     // reactor 0's thread only: the swap itself
  void check_watch();   // reactor 0's thread only: watch-mode poll

  /// File identity for watch mode: a successful atomic publish always
  /// changes the inode (rename swaps a freshly written temp file in).
  struct FileSig {
    std::uint64_t dev = 0;
    std::uint64_t ino = 0;
    std::int64_t size = 0;
    std::int64_t mtime_s = 0;
    std::int64_t mtime_ns = 0;

    friend bool operator==(const FileSig&, const FileSig&) noexcept = default;
  };
  [[nodiscard]] bool stat_snapshot(FileSig& out) const noexcept;

  ServerConfig config_;
  obs::MetricsRegistry* metrics_;
  SnapshotManager manager_;
  std::vector<std::unique_ptr<Reactor>> reactors_;
  std::uint16_t bound_port_ = 0;
  bool started_ = false;

  // Watch-mode state: touched only by reactor 0's thread after start().
  std::chrono::steady_clock::time_point next_watch_{};
  FileSig watch_sig_{};
  bool watch_sig_valid_ = false;

  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> reload_requested_{false};

  // Cross-thread-readable totals, shared by every reactor (relaxed
  // fetch_add — sums commute).  active_ mirrors the live connection count
  // because stats() must not touch the reactor-owned maps from another
  // thread; it is also what enforces max_conns across reactors.
  std::atomic<std::uint64_t> active_{0};
  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> queries_{0};
  std::atomic<std::uint64_t> invalid_{0};
  std::atomic<std::uint64_t> reloads_{0};
  std::atomic<std::uint64_t> reload_failures_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  std::atomic<std::uint64_t> drops_{0};
  std::atomic<std::uint64_t> partial_flushes_{0};
};

}  // namespace mtscope::serve
