// TelescopeIndex: an immutable, memory-speed query structure over one
// loaded snapshot, plus the SnapshotManager that hot-swaps indexes under
// concurrent readers.
//
// The serving problem is asymmetric: a snapshot is produced once per
// inference run but queried millions of times ("is traffic to this IP
// IBR?").  The index therefore spends load time to make lookups nearly
// free: the snapshot's sorted block array is kept flat, and a rank-style
// bucket directory — first-entry offset for each of the 2^16 possible
// /16 "buckets" (256 consecutive /24 indices each) — narrows any lookup
// to a handful of contiguous entries.  classify() is two dependent cache
// lines: one into the 256 KiB directory, one into the bucket's entries.
// O(1) expected, O(log 256) worst case, no hashing, no pointers.
//
// Everything is const after construction, so any number of threads may
// query one index with no synchronization.  Hot reload goes through
// SnapshotManager: readers grab the current shared_ptr, a swapper
// publishes a fresh index and bumps the epoch; an in-flight reader keeps
// its old index alive until it drops the pointer.  Queries never hold the
// manager's lock — it guards exactly one pointer copy per current() /
// install(), never a lookup.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "net/ipv4.hpp"
#include "net/prefix.hpp"
#include "obs/metrics.hpp"
#include "serve/snapshot.hpp"
#include "util/result.hpp"

namespace mtscope::serve {

class TelescopeIndex {
 public:
  /// Builds the bucket directory over `snapshot.blocks` (already sorted —
  /// parse_snapshot enforces it; build_snapshot emits it).
  explicit TelescopeIndex(TelescopeSnapshot snapshot);

  /// Read + parse + index a snapshot file.  With a registry attached,
  /// records serve.snapshot.read_us / index_us / load_us timers and the
  /// serve.snapshot.{blocks,prefixes,bytes} gauges.
  [[nodiscard]] static util::Result<std::shared_ptr<const TelescopeIndex>> load_file(
      const std::string& path, obs::MetricsRegistry* metrics = nullptr);

  /// Step-7 verdict for a /24; nullopt when the block is not part of the
  /// meta-telescope map (eliminated by the funnel or never seen).
  [[nodiscard]] std::optional<BlockClass> classify(net::Block24 block) const noexcept {
    const BlockEntry* entry = find(block.index());
    return entry == nullptr ? std::nullopt : std::optional(entry->cls());
  }

  [[nodiscard]] std::optional<BlockClass> classify(net::Ipv4Addr addr) const noexcept {
    return classify(net::Block24::containing(addr));
  }

  /// Full verdict: class plus the covering BGP announcement recorded at
  /// snapshot time.
  struct Verdict {
    net::Block24 block;
    BlockClass cls = BlockClass::kDark;
    std::optional<net::Prefix> prefix;
    std::optional<net::AsNumber> origin;
  };

  [[nodiscard]] std::optional<Verdict> lookup(net::Ipv4Addr addr) const;

  /// Range query: visit every classified /24 inside `prefix` (length <=
  /// 24), in ascending block order.  Visits nothing for longer prefixes.
  void for_each_in(const net::Prefix& prefix,
                   const std::function<void(net::Block24, BlockClass)>& visit) const;

  /// Number of classified /24s inside `prefix`.
  [[nodiscard]] std::size_t count_in(const net::Prefix& prefix) const noexcept;

  [[nodiscard]] const TelescopeSnapshot& snapshot() const noexcept { return snapshot_; }
  [[nodiscard]] const RunMetadata& metadata() const noexcept { return snapshot_.meta; }
  [[nodiscard]] const pipeline::FunnelCounts& funnel() const noexcept {
    return snapshot_.funnel;
  }
  [[nodiscard]] std::size_t size() const noexcept { return snapshot_.blocks.size(); }

  /// Resident footprint: block + prefix arrays plus the bucket directory.
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

 private:
  // 2^16 buckets of 256 /24 indices each; offsets_[b] is the first entry
  // of bucket b, offsets_[b + 1] its end.
  static constexpr std::size_t kBuckets = 1u << 16;

  [[nodiscard]] const BlockEntry* find(std::uint32_t block_index) const noexcept;

  TelescopeSnapshot snapshot_;
  std::vector<std::uint32_t> offsets_;  // kBuckets + 1 entries
};

/// Epoch-swap holder for the serving process: readers call current() per
/// query (or batch) and run on an immutable index with no further
/// synchronization; install() publishes a replacement without disturbing
/// them.  The handoff is a mutex-guarded shared_ptr copy rather than
/// std::atomic<shared_ptr>: GCC 12's _Sp_atomic unlocks its reader path
/// with relaxed ordering (no happens-before to the next writer — a
/// memory-model defect TSan correctly reports, fixed in later libstdc++),
/// and a once-per-batch pointer copy is not a contention point.
class SnapshotManager {
 public:
  /// The live index; nullptr before the first install.
  [[nodiscard]] std::shared_ptr<const TelescopeIndex> current() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return current_;
  }

  /// Publish `next` and return the new epoch (first install = epoch 1).
  /// Records serve.snapshot.swap_us and the serve.snapshot.epoch gauge.
  std::uint64_t install(std::shared_ptr<const TelescopeIndex> next,
                        obs::MetricsRegistry* metrics = nullptr);

  /// load_file + install in one step.
  [[nodiscard]] util::Result<std::uint64_t> load_and_install(
      const std::string& path, obs::MetricsRegistry* metrics = nullptr);

  [[nodiscard]] std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }

 private:
  mutable std::mutex mutex_;
  std::shared_ptr<const TelescopeIndex> current_;
  std::atomic<std::uint64_t> epoch_{0};
};

}  // namespace mtscope::serve
