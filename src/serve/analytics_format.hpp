// Analytics snapshot assembly and the shared query formatter
// (DESIGN.md §15).
//
// build_analytics() is the bridge between the collector's raw IBR matrix
// and the published map: it intersects the matrix's rx cells with the
// snapshot's classified blocks (the meta-telescope filter — collection is
// unfiltered because classification does not exist yet at collect time),
// labels every published block with geography and network type, runs the
// outage detector over the dark-class per-prefix day series, and ranks
// services and scanners.  It is a pure function of deterministic sorted
// inputs, so the ANALYTICS section it fills is bit-identical whether the
// matrix came from a batch build, a thread/shard grid, or the sliding
// window — the differential tests pin exactly that.
//
// answer_analytics_query() is the one formatter both consumers share: the
// line-protocol server routes `top-ports` / `outages` / `scanners` verbs
// through it (server.cpp), and `mtscope analyze` prints the same strings,
// so the wire protocol and the CLI can never drift apart.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>

#include "analytics/ibr_matrix.hpp"
#include "analytics/outage.hpp"
#include "serve/snapshot.hpp"
#include "serve/telescope_index.hpp"

namespace mtscope::serve {

/// Supplies the geography / network-type label for one published block.
/// The ingest daemon closes over its GeoDb + NetTypeDb (plan_labeler);
/// tests stub whatever fixture they need.
using BlockLabeler = std::function<BlockLabel(net::Block24)>;

/// Derive the ANALYTICS payload for `snapshot` from a collected matrix:
/// block labels, per-block top-port cells, dark-prefix day series, outage
/// events, service rankings and scanner profiles.  Deterministic for a
/// given (matrix contents, snapshot, labeler) regardless of how the
/// matrix was folded together.
[[nodiscard]] AnalyticsData build_analytics(const analytics::IbrMatrix& matrix,
                                            const TelescopeSnapshot& snapshot,
                                            const BlockLabeler& labeler,
                                            const analytics::OutageConfig& config = {});

/// True when `line`'s first token is an analytics verb (`top-ports`,
/// `outages`, `scanners`) — the server's dispatch test, cheap enough to
/// run on every request line before the IPv4 fast path.
[[nodiscard]] bool is_analytics_verb(std::string_view line);

/// Answer one analytics request line from the loaded snapshot.  Returns
/// the complete reply line without a trailing newline:
///
///   top-ports [<prefix>|<asn>|<cc>]  ->  "top-ports <scope> blocks=<n> <port>:<pkts> ..."
///   outages [<since-day>]            ->  "outages n=<k> <prefix>:d<s>-d<e>:-<sev>% ..."
///   scanners [<n>]                   ->  "scanners n=<k> <src>:pkts=<p>:blocks=<b>:ports=<q> ..."
///
/// A snapshot without analytics answers "<verb> unavailable"; malformed
/// arguments echo back sanitized with " invalid" appended, exactly like
/// the server's IPv4 path.
[[nodiscard]] std::string answer_analytics_query(const TelescopeIndex& index,
                                                 std::string_view line, std::size_t top = 5);

}  // namespace mtscope::serve
