// MTBIN: the compact binary query protocol served alongside the line
// protocol on the same port (DESIGN.md §12).
//
// A connection opts in by sending the 8-byte preamble "MTBIN/1\n" as its
// very first bytes; anything else (including any dotted-quad line) keeps
// the connection on the line protocol, so existing clients never change.
// After the preamble the stream is a sequence of fixed-width frames —
// 12-byte requests, 20-byte responses — with no per-request text parsing
// or formatting on either side.
//
// Every frame is sealed by a trailing CRC32 (IEEE 802.3, the same
// polynomial the snapshot format uses) over the bytes before it, so any
// single-byte corruption is detected rather than silently answered as a
// different query.  Fixed widths mean a corrupt frame never desyncs the
// stream: the server replies with one invalid-frame response and decoding
// resumes at the next 12-byte boundary.
//
// Request frame (12 bytes, little-endian):
//   off 0  u8   verb      1 = lookup, 2 = count-in
//   off 1  u8   plen      prefix length for count-in (0..24); 0 for lookup
//   off 2  u16  reserved  must be zero
//   off 4  u32  addr      IPv4 address (lookup) or range base (count-in)
//   off 8  u32  crc32     over bytes [0, 8)
//
// Response frame (20 bytes, little-endian):
//   off 0  u8   status    0 = verdict, 1 = invalid frame, 2 = count
//   off 1  u8   cls       verdict: 0 dark / 1 unclean / 2 gray / 3 none
//                         invalid: the InvalidReason code
//   off 2  u8   flags     bit0 = has prefix, bit1 = has origin AS
//   off 3  u8   plen      covering-prefix length / echoed count-in length
//   off 4  u32  addr      echo of the request address
//   off 8  u64  payload   verdict: prefix base (low u32) + origin ASN
//                         (high u32); count: the /24 count
//   off 16 u32  crc32     over bytes [0, 16)
//
// Decoding fails typed (wire.truncated / wire.bad_crc / wire.bad_verb /
// wire.bad_reserved / wire.bad_plen / wire.bad_status / wire.bad_class /
// wire.bad_flags), mirroring the snapshot codec's error taxonomy: every
// malformed frame is an expected condition, never a crash.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "net/ipv4.hpp"
#include "serve/telescope_index.hpp"
#include "util/result.hpp"

namespace mtscope::serve::wire {

/// Sent once by a binary client immediately after connect.
inline constexpr std::string_view kPreamble = "MTBIN/1\n";
inline constexpr std::size_t kRequestSize = 12;
inline constexpr std::size_t kResponseSize = 20;

enum class Verb : std::uint8_t {
  kLookup = 1,   // classify one address
  kCountIn = 2,  // count classified /24s inside addr/plen
};

enum class Status : std::uint8_t {
  kVerdict = 0,  // answer to a lookup
  kInvalid = 1,  // the request frame was malformed; cls carries the reason
  kCount = 2,    // answer to a count-in
};

/// Why a request frame was refused, echoed in an invalid response's `cls`
/// byte so a binary client can tell corruption from a bad query.
enum class InvalidReason : std::uint8_t {
  kBadCrc = 1,
  kBadVerb = 2,
  kBadReserved = 3,
  kBadPlen = 4,
};

/// The verdict `cls` code for "not in the meta-telescope map" — the
/// binary rendering of the line protocol's "<ip> none".  Codes 0..2 are
/// BlockClass values verbatim.
inline constexpr std::uint8_t kClassNone = 3;

struct Request {
  Verb verb = Verb::kLookup;
  std::uint8_t plen = 0;  // count-in only; 0 for lookup
  net::Ipv4Addr addr;

  friend bool operator==(const Request&, const Request&) noexcept = default;
};

struct Response {
  Status status = Status::kVerdict;
  std::uint8_t cls = kClassNone;  // class code, or InvalidReason when invalid
  bool has_prefix = false;
  bool has_origin = false;
  std::uint8_t plen = 0;
  net::Ipv4Addr addr;
  std::uint32_t prefix_base = 0;  // covering-prefix base when has_prefix
  std::uint32_t origin_asn = 0;   // origin AS when has_origin
  std::uint64_t count = 0;        // count responses only

  friend bool operator==(const Response&, const Response&) noexcept = default;
};

/// Append one encoded frame to `out` (the server's batch buffer or a
/// client's send buffer).  Encoding cannot fail: the structs can only
/// hold representable values, and the CRC is computed here.
void append_request(std::string& out, const Request& request);
void append_response(std::string& out, const Response& response);

/// Decode exactly one frame from the front of `bytes`.  Shorter input is
/// wire.truncated; the CRC is checked before any field is interpreted, so
/// random corruption always surfaces as wire.bad_crc.
[[nodiscard]] util::Result<Request> decode_request(std::span<const std::uint8_t> bytes);
[[nodiscard]] util::Result<Response> decode_response(std::span<const std::uint8_t> bytes);

/// Map a decode_request error code to the reason byte an invalid-frame
/// response carries (wire.bad_crc -> kBadCrc, ...).
[[nodiscard]] InvalidReason invalid_reason(std::string_view error_code) noexcept;

/// Build the binary answer for one lookup — the exact semantic twin of
/// format_verdict(addr, verdict), so the two protocols cannot drift.
[[nodiscard]] Response make_verdict_response(
    net::Ipv4Addr addr, const std::optional<TelescopeIndex::Verdict>& verdict);

[[nodiscard]] Response make_invalid_response(net::Ipv4Addr addr, InvalidReason reason);

[[nodiscard]] Response make_count_response(net::Ipv4Addr base, std::uint8_t plen,
                                           std::uint64_t count);

}  // namespace mtscope::serve::wire
