#include "serve/wire.hpp"

#include <array>

#include "util/bytes.hpp"

namespace mtscope::serve::wire {

namespace {

using util::crc32;
using util::le_get_u16;
using util::le_get_u32;
using util::le_get_u64;
using util::le_patch_u16;
using util::le_patch_u32;
using util::le_patch_u64;

util::Error wire_error(const char* code, std::string message) {
  return util::make_error(code, std::move(message));
}

/// Flags byte: only these two bits are defined; anything else is a
/// malformed frame.
constexpr std::uint8_t kFlagPrefix = 0x01;
constexpr std::uint8_t kFlagOrigin = 0x02;
constexpr std::uint8_t kKnownFlags = kFlagPrefix | kFlagOrigin;

/// count-in mirrors TelescopeIndex::for_each_in's contract: range queries
/// are over /24 blocks, so lengths past 24 have nothing to count and are
/// refused at the codec instead of silently answering 0.
constexpr std::uint8_t kMaxCountPlen = 24;

}  // namespace

void append_request(std::string& out, const Request& request) {
  std::array<std::uint8_t, kRequestSize> frame{};
  frame[0] = static_cast<std::uint8_t>(request.verb);
  frame[1] = request.plen;
  le_patch_u16(frame, 2, 0);
  le_patch_u32(frame, 4, request.addr.value());
  le_patch_u32(frame, 8, crc32(std::span(frame).first(8)));
  out.append(reinterpret_cast<const char*>(frame.data()), frame.size());
}

void append_response(std::string& out, const Response& response) {
  std::array<std::uint8_t, kResponseSize> frame{};
  frame[0] = static_cast<std::uint8_t>(response.status);
  frame[1] = response.cls;
  frame[2] = static_cast<std::uint8_t>((response.has_prefix ? kFlagPrefix : 0) |
                                       (response.has_origin ? kFlagOrigin : 0));
  frame[3] = response.plen;
  le_patch_u32(frame, 4, response.addr.value());
  if (response.status == Status::kCount) {
    le_patch_u64(frame, 8, response.count);
  } else {
    le_patch_u32(frame, 8, response.prefix_base);
    le_patch_u32(frame, 12, response.origin_asn);
  }
  le_patch_u32(frame, 16, crc32(std::span(frame).first(16)));
  out.append(reinterpret_cast<const char*>(frame.data()), frame.size());
}

util::Result<Request> decode_request(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kRequestSize) {
    return wire_error("wire.truncated",
                      "request frame needs " + std::to_string(kRequestSize) + " bytes, got " +
                          std::to_string(bytes.size()));
  }
  const auto frame = bytes.first(kRequestSize);
  // CRC first: a frame that fails the seal has no trustworthy fields, so
  // random corruption is always wire.bad_crc, never a misread verb.
  const std::uint32_t expected = crc32(frame.first(8));
  const std::uint32_t stored = le_get_u32(frame, 8);
  if (stored != expected) {
    return wire_error("wire.bad_crc", "request frame checksum mismatch");
  }
  const std::uint8_t verb = frame[0];
  if (verb != static_cast<std::uint8_t>(Verb::kLookup) &&
      verb != static_cast<std::uint8_t>(Verb::kCountIn)) {
    return wire_error("wire.bad_verb", "unknown verb " + std::to_string(verb));
  }
  if (le_get_u16(frame, 2) != 0) {
    return wire_error("wire.bad_reserved", "reserved field must be zero");
  }
  Request request;
  request.verb = static_cast<Verb>(verb);
  request.plen = frame[1];
  request.addr = net::Ipv4Addr(le_get_u32(frame, 4));
  if (request.verb == Verb::kLookup ? request.plen != 0 : request.plen > kMaxCountPlen) {
    return wire_error("wire.bad_plen",
                      "prefix length " + std::to_string(request.plen) + " invalid for verb " +
                          std::to_string(verb));
  }
  return request;
}

util::Result<Response> decode_response(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kResponseSize) {
    return wire_error("wire.truncated",
                      "response frame needs " + std::to_string(kResponseSize) + " bytes, got " +
                          std::to_string(bytes.size()));
  }
  const auto frame = bytes.first(kResponseSize);
  const std::uint32_t expected = crc32(frame.first(16));
  const std::uint32_t stored = le_get_u32(frame, 16);
  if (stored != expected) {
    return wire_error("wire.bad_crc", "response frame checksum mismatch");
  }
  const std::uint8_t status = frame[0];
  if (status > static_cast<std::uint8_t>(Status::kCount)) {
    return wire_error("wire.bad_status", "unknown status " + std::to_string(status));
  }
  const std::uint8_t flags = frame[2];
  if ((flags & ~kKnownFlags) != 0) {
    return wire_error("wire.bad_flags", "undefined flag bits set");
  }
  Response response;
  response.status = static_cast<Status>(status);
  response.cls = frame[1];
  response.has_prefix = (flags & kFlagPrefix) != 0;
  response.has_origin = (flags & kFlagOrigin) != 0;
  response.plen = frame[3];
  response.addr = net::Ipv4Addr(le_get_u32(frame, 4));
  if (response.status == Status::kVerdict && response.cls > kClassNone) {
    return wire_error("wire.bad_class", "unknown class code " + std::to_string(response.cls));
  }
  if (response.plen > 32) {
    return wire_error("wire.bad_plen", "prefix length " + std::to_string(response.plen));
  }
  if (response.status == Status::kCount) {
    response.count = le_get_u64(frame, 8);
  } else {
    response.prefix_base = le_get_u32(frame, 8);
    response.origin_asn = le_get_u32(frame, 12);
  }
  return response;
}

InvalidReason invalid_reason(std::string_view error_code) noexcept {
  if (error_code == "wire.bad_verb") return InvalidReason::kBadVerb;
  if (error_code == "wire.bad_reserved") return InvalidReason::kBadReserved;
  if (error_code == "wire.bad_plen") return InvalidReason::kBadPlen;
  return InvalidReason::kBadCrc;
}

Response make_verdict_response(net::Ipv4Addr addr,
                               const std::optional<TelescopeIndex::Verdict>& verdict) {
  Response response;
  response.status = Status::kVerdict;
  response.addr = addr;
  if (!verdict.has_value()) {
    response.cls = kClassNone;
    return response;
  }
  response.cls = static_cast<std::uint8_t>(verdict->cls);
  if (verdict->prefix.has_value()) {
    response.has_prefix = true;
    response.plen = static_cast<std::uint8_t>(verdict->prefix->length());
    response.prefix_base = verdict->prefix->base().value();
  }
  if (verdict->origin.has_value()) {
    response.has_origin = true;
    response.origin_asn = verdict->origin->value();
  }
  return response;
}

Response make_invalid_response(net::Ipv4Addr addr, InvalidReason reason) {
  Response response;
  response.status = Status::kInvalid;
  response.cls = static_cast<std::uint8_t>(reason);
  response.addr = addr;
  return response;
}

Response make_count_response(net::Ipv4Addr base, std::uint8_t plen, std::uint64_t count) {
  Response response;
  response.status = Status::kCount;
  response.cls = 0;
  response.plen = plen;
  response.addr = base;
  response.count = count;
  return response;
}

}  // namespace mtscope::serve::wire
