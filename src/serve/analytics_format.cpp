#include "serve/analytics_format.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <span>
#include <utility>
#include <vector>

#include "analytics/scanner.hpp"
#include "serve/server.hpp"
#include "util/strings.hpp"

namespace mtscope::serve {

namespace {

/// Ports kept per published block in the ANALYTICS section — enough for
/// the "what is this block attracting" question without persisting the
/// whole matrix row.
constexpr std::size_t kTopPortsPerBlock = 8;

/// Same echo cap as the server's invalid-IPv4 reply.
constexpr std::size_t kEchoBytes = 64;

std::string invalid_reply(std::string_view token) {
  std::string out;
  append_sanitized_echo(out, token, kEchoBytes);
  out += " invalid";
  return out;
}

/// Aggregate kept port cells over a sorted block-index scope (nullptr
/// scope = every published block) and append "<port>:<pkts>" entries,
/// volume descending, port ascending on ties.
void append_port_ranking(std::string& reply, const AnalyticsData& a,
                         const std::vector<std::uint32_t>* scope, std::size_t top) {
  std::map<std::uint16_t, std::uint64_t> sums;
  if (scope == nullptr) {
    for (const PortCell& c : a.cells) sums[c.port] += c.packets;
  } else {
    // Both sides ascend by block index; cells additionally by port.
    std::size_t si = 0;
    for (const PortCell& c : a.cells) {
      while (si < scope->size() && (*scope)[si] < c.block) ++si;
      if (si == scope->size()) break;
      if ((*scope)[si] == c.block) sums[c.port] += c.packets;
    }
  }
  std::vector<std::pair<std::uint16_t, std::uint64_t>> ranked(sums.begin(), sums.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& x, const auto& y) {
    return x.second != y.second ? x.second > y.second : x.first < y.first;
  });
  if (ranked.size() > top) ranked.resize(top);
  for (const auto& [port, packets] : ranked) {
    reply += ' ';
    reply += std::to_string(port);
    reply += ':';
    reply += std::to_string(packets);
  }
}

std::string answer_top_ports(const TelescopeIndex& index, const AnalyticsData& a,
                             std::span<const std::string_view> args, std::string_view echo,
                             std::size_t top) {
  const TelescopeSnapshot& snapshot = index.snapshot();
  if (args.empty()) {
    std::string reply = "top-ports map blocks=";
    reply += std::to_string(snapshot.blocks.size());
    append_port_ranking(reply, a, nullptr, top);
    return reply;
  }
  if (args.size() > 1) return invalid_reply(echo);

  const std::string_view target = args[0];
  std::vector<std::uint32_t> scope;
  if (target.find('/') != std::string_view::npos) {
    const auto prefix = net::Prefix::parse(target);
    if (!prefix.has_value()) return invalid_reply(echo);
    index.for_each_in(*prefix,
                      [&scope](net::Block24 block, BlockClass) { scope.push_back(block.index()); });
  } else if (!target.empty() && (target[0] >= '0' && target[0] <= '9')) {
    const auto asn = util::parse_uint<std::uint32_t>(target);
    if (!asn.has_value()) return invalid_reply(echo);
    for (const BlockEntry& b : snapshot.blocks) {
      if (b.prefix_id != BlockEntry::kNoPrefix &&
          snapshot.prefixes[b.prefix_id].origin_asn == *asn) {
        scope.push_back(b.block_index());
      }
    }
  } else if (target.size() == 2) {
    const std::string cc = util::to_lower(target);
    for (std::size_t i = 0; i < snapshot.blocks.size(); ++i) {
      const BlockLabel& l = a.labels[i];
      if (util::to_lower(std::string_view(l.country, 2)) == cc) {
        scope.push_back(snapshot.blocks[i].block_index());
      }
    }
  } else {
    return invalid_reply(echo);
  }

  std::string reply = "top-ports ";
  reply.append(target.begin(), target.end());
  reply += " blocks=";
  reply += std::to_string(scope.size());
  append_port_ranking(reply, a, &scope, top);
  return reply;
}

std::string answer_outages(const TelescopeSnapshot& snapshot, const AnalyticsData& a,
                           std::span<const std::string_view> args, std::string_view echo) {
  std::uint32_t since = 0;
  if (args.size() > 1) return invalid_reply(echo);
  if (args.size() == 1) {
    const auto parsed = util::parse_uint<std::uint32_t>(args[0]);
    if (!parsed.has_value()) return invalid_reply(echo);
    since = *parsed;
  }
  std::vector<const analytics::OutageEvent*> matched;
  for (const analytics::OutageEvent& o : a.outages) {
    if (o.end_day >= since) matched.push_back(&o);
  }
  std::string reply = "outages n=";
  reply += std::to_string(matched.size());
  for (const analytics::OutageEvent* o : matched) {
    reply += ' ';
    reply += snapshot.prefixes[o->prefix_id].prefix().to_string();
    reply += ":d";
    reply += std::to_string(o->start_day);
    reply += "-d";
    reply += std::to_string(o->end_day);
    reply += ":-";
    reply += std::to_string(o->severity_pct);
    reply += '%';
  }
  return reply;
}

std::string answer_scanners(const AnalyticsData& a, std::span<const std::string_view> args,
                            std::string_view echo, std::size_t top) {
  std::size_t count = top;
  if (args.size() > 1) return invalid_reply(echo);
  if (args.size() == 1) {
    const auto parsed = util::parse_uint<std::size_t>(args[0]);
    if (!parsed.has_value() || *parsed == 0) return invalid_reply(echo);
    count = *parsed;
  }
  count = std::min(count, a.scanners.size());
  std::string reply = "scanners n=";
  reply += std::to_string(count);
  for (std::size_t i = 0; i < count; ++i) {
    const analytics::ScannerProfile& s = a.scanners[i];
    reply += ' ';
    reply += net::Block24(s.src_block).to_string();
    reply += ":pkts=";
    reply += std::to_string(s.est_packets);
    reply += ":blocks=";
    reply += std::to_string(s.blocks_touched);
    reply += ":ports=";
    reply += std::to_string(s.ports_touched);
  }
  return reply;
}

}  // namespace

AnalyticsData build_analytics(const analytics::IbrMatrix& matrix,
                              const TelescopeSnapshot& snapshot, const BlockLabeler& labeler,
                              const analytics::OutageConfig& config) {
  AnalyticsData out;
  if (!matrix.empty()) {
    out.first_day = static_cast<std::uint32_t>(matrix.first_day());
    out.window_days =
        static_cast<std::uint32_t>(matrix.last_day() - matrix.first_day() + 1);
  }
  out.labels.reserve(snapshot.blocks.size());
  for (const BlockEntry& b : snapshot.blocks) out.labels.push_back(labeler(b.block()));

  const std::vector<analytics::IbrMatrix::RxCell> cells = matrix.rx_cells();
  // (prefix_id, day) packet sums over dark-class blocks: the ordered map
  // doubles as the sorted series export.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t> dark_series;
  std::vector<analytics::LabeledPortCount> labeled;

  // Two-pointer intersect: cells and published blocks both ascend by
  // block index — this is where the meta-telescope filter happens.
  std::size_t bi = 0;
  std::size_t ci = 0;
  while (ci < cells.size() && bi < snapshot.blocks.size()) {
    const std::uint32_t block = cells[ci].block;
    if (snapshot.blocks[bi].block_index() < block) {
      ++bi;
      continue;
    }
    std::size_t end = ci;
    while (end < cells.size() && cells[end].block == block) ++end;
    if (snapshot.blocks[bi].block_index() != block) {
      ci = end;
      continue;
    }

    const BlockEntry& entry = snapshot.blocks[bi];
    const BlockLabel& label = out.labels[bi];
    const bool dark =
        entry.cls() == BlockClass::kDark && entry.prefix_id != BlockEntry::kNoPrefix;

    // Per-port window sums; the run is sorted by (port, day), so ports
    // arrive grouped.
    std::vector<std::pair<std::uint16_t, std::uint64_t>> ports;
    for (std::size_t i = ci; i < end; ++i) {
      if (ports.empty() || ports.back().first != cells[i].port) {
        ports.emplace_back(cells[i].port, 0);
      }
      ports.back().second += cells[i].packets;
      if (dark && cells[i].packets > 0) {
        dark_series[{entry.prefix_id, std::uint32_t{cells[i].day}}] += cells[i].packets;
      }
    }
    for (const auto& [port, packets] : ports) {
      labeled.push_back({label.continent, label.net_type, port, packets});
    }
    std::vector<std::pair<std::uint16_t, std::uint64_t>> best = ports;
    std::sort(best.begin(), best.end(), [](const auto& x, const auto& y) {
      return x.second != y.second ? x.second > y.second : x.first < y.first;
    });
    if (best.size() > kTopPortsPerBlock) best.resize(kTopPortsPerBlock);
    std::sort(best.begin(), best.end());
    for (const auto& [port, packets] : best) out.cells.push_back({block, port, packets});

    ci = end;
    ++bi;
  }

  out.series.reserve(dark_series.size());
  for (const auto& [key, packets] : dark_series) {
    out.series.push_back({key.first, key.second, packets});
  }

  // Dense per-prefix reconstruction: a silent day inside the window is a
  // zero bin — exactly the signal the detector exists to catch.
  std::vector<analytics::PrefixDaySeries> dense;
  for (const SeriesPoint& p : out.series) {
    if (dense.empty() || dense.back().prefix_id != p.prefix_id) {
      dense.push_back({p.prefix_id, std::vector<std::uint64_t>(out.window_days, 0)});
    }
    dense.back().packets[p.day - out.first_day] += p.packets;
  }
  out.outages = analytics::detect_outages(dense, out.first_day, config);

  out.services = analytics::top_services(labeled);

  const auto in_map = [&snapshot](std::uint32_t block) {
    const auto it = std::lower_bound(
        snapshot.blocks.begin(), snapshot.blocks.end(), block,
        [](const BlockEntry& e, std::uint32_t b) { return e.block_index() < b; });
    return it != snapshot.blocks.end() && it->block_index() == block;
  };
  out.scanners = analytics::top_scanners(matrix, in_map);
  return out;
}

bool is_analytics_verb(std::string_view line) {
  const auto tokens = util::split_ws(line);
  if (tokens.empty()) return false;
  return tokens[0] == "top-ports" || tokens[0] == "outages" || tokens[0] == "scanners";
}

std::string answer_analytics_query(const TelescopeIndex& index, std::string_view line,
                                   std::size_t top) {
  const std::string_view echo = util::trim(line);
  const auto tokens = util::split_ws(echo);
  if (tokens.empty()) return invalid_reply(echo);
  const std::string_view verb = tokens[0];
  const std::span<const std::string_view> args(tokens.data() + 1, tokens.size() - 1);

  const auto& analytics = index.snapshot().analytics;
  if (!analytics.has_value()) {
    std::string reply(verb);
    reply += " unavailable";
    return reply;
  }
  if (verb == "top-ports") return answer_top_ports(index, *analytics, args, echo, top);
  if (verb == "outages") return answer_outages(index.snapshot(), *analytics, args, echo);
  if (verb == "scanners") return answer_scanners(*analytics, args, echo, top);
  return invalid_reply(echo);
}

}  // namespace mtscope::serve
