#include "serve/telescope_index.hpp"

#include <algorithm>
#include <utility>

namespace mtscope::serve {

TelescopeIndex::TelescopeIndex(TelescopeSnapshot snapshot)
    : snapshot_(std::move(snapshot)), offsets_(kBuckets + 1, 0) {
  // Counting pass, then prefix-sum: offsets_[b] ends up as the index of
  // the first entry whose bucket is >= b.
  for (const BlockEntry& entry : snapshot_.blocks) {
    ++offsets_[(entry.block_index() >> 8) + 1];
  }
  for (std::size_t b = 1; b <= kBuckets; ++b) offsets_[b] += offsets_[b - 1];
}

const BlockEntry* TelescopeIndex::find(std::uint32_t block_index) const noexcept {
  const std::uint32_t bucket = block_index >> 8;
  const std::uint32_t lo = offsets_[bucket];
  const std::uint32_t hi = offsets_[bucket + 1];
  // A bucket holds at most 256 entries and typically a handful; the linear
  // scan stays inside one or two cache lines and beats binary search.
  for (std::uint32_t i = lo; i < hi; ++i) {
    const std::uint32_t index = snapshot_.blocks[i].block_index();
    if (index == block_index) return &snapshot_.blocks[i];
    if (index > block_index) break;
  }
  return nullptr;
}

std::optional<TelescopeIndex::Verdict> TelescopeIndex::lookup(net::Ipv4Addr addr) const {
  const net::Block24 block = net::Block24::containing(addr);
  const BlockEntry* entry = find(block.index());
  if (entry == nullptr) return std::nullopt;
  Verdict v;
  v.block = block;
  v.cls = entry->cls();
  if (entry->prefix_id != BlockEntry::kNoPrefix) {
    const PrefixEntry& p = snapshot_.prefixes[entry->prefix_id];
    v.prefix = p.prefix();
    v.origin = net::AsNumber(p.origin_asn);
  }
  return v;
}

void TelescopeIndex::for_each_in(
    const net::Prefix& prefix,
    const std::function<void(net::Block24, BlockClass)>& visit) const {
  if (prefix.length() > 24) return;
  const std::uint32_t first = prefix.first_block24().index();
  const std::uint32_t last = first + static_cast<std::uint32_t>(prefix.block24_count()) - 1;
  const auto begin = std::lower_bound(
      snapshot_.blocks.begin(), snapshot_.blocks.end(), first,
      [](const BlockEntry& e, std::uint32_t v) { return e.block_index() < v; });
  for (auto it = begin; it != snapshot_.blocks.end() && it->block_index() <= last; ++it) {
    visit(it->block(), it->cls());
  }
}

std::size_t TelescopeIndex::count_in(const net::Prefix& prefix) const noexcept {
  std::size_t count = 0;
  for_each_in(prefix, [&](net::Block24, BlockClass) { ++count; });
  return count;
}

std::size_t TelescopeIndex::memory_bytes() const noexcept {
  return snapshot_.blocks.capacity() * sizeof(BlockEntry) +
         snapshot_.prefixes.capacity() * sizeof(PrefixEntry) +
         offsets_.capacity() * sizeof(std::uint32_t);
}

util::Result<std::shared_ptr<const TelescopeIndex>> TelescopeIndex::load_file(
    const std::string& path, obs::MetricsRegistry* metrics) {
  obs::StageTimer load_timer(metrics, "serve.snapshot.load_us");

  obs::StageTimer read_timer(metrics, "serve.snapshot.read_us");
  auto snapshot = read_snapshot_file(path);
  if (!snapshot.ok()) return snapshot.error();
  read_timer.stop();

  obs::StageTimer index_timer(metrics, "serve.snapshot.index_us");
  auto index = std::make_shared<const TelescopeIndex>(std::move(snapshot).value());
  index_timer.stop();

  if (metrics != nullptr) {
    metrics->gauge("serve.snapshot.blocks")
        .set(static_cast<std::int64_t>(index->size()));
    metrics->gauge("serve.snapshot.prefixes")
        .set(static_cast<std::int64_t>(index->snapshot().prefixes.size()));
    metrics->gauge("serve.snapshot.bytes")
        .set(static_cast<std::int64_t>(index->memory_bytes()));
  }
  return index;
}

std::uint64_t SnapshotManager::install(std::shared_ptr<const TelescopeIndex> next,
                                       obs::MetricsRegistry* metrics) {
  obs::StageTimer swap_timer(metrics, "serve.snapshot.swap_us");
  std::uint64_t epoch = 0;
  std::shared_ptr<const TelescopeIndex> previous;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    previous = std::exchange(current_, std::move(next));
    epoch = epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }
  // `previous` dies here, outside the lock — if the swapper held the last
  // reference, the old index's arrays are not freed while readers wait.
  previous.reset();
  swap_timer.stop();
  if (metrics != nullptr) {
    metrics->gauge("serve.snapshot.epoch").set(static_cast<std::int64_t>(epoch));
  }
  return epoch;
}

util::Result<std::uint64_t> SnapshotManager::load_and_install(const std::string& path,
                                                              obs::MetricsRegistry* metrics) {
  auto index = TelescopeIndex::load_file(path, metrics);
  if (!index.ok()) return index.error();
  return install(std::move(index).value(), metrics);
}

}  // namespace mtscope::serve
