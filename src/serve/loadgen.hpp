// Stepped load generator for the serve plane, modeled on the mutated
// methodology: drive the line protocol at a sequence of offered-load
// steps, measure latency only inside a warm-up/measure/cool-down window
// per step, and report nearest-rank percentiles — a latency-vs-throughput
// curve instead of one aggregate QPS number, because a server's p99 near
// saturation is the figure that decides how many reactors a deployment
// needs.
//
// Two arrival models, selected per run:
//  * open loop — arrivals are paced by a clock, independent of replies.
//    Each step's value is an offered rate in queries/s split evenly over
//    the connections; latency includes queueing delay, so driving the
//    server past saturation shows the hockey stick rather than hiding it
//    (the coordinated-omission trap closed-loop tools fall into).
//  * closed loop — each step's value is a pipeline depth per connection;
//    a new request is sent only when a reply returns.  Measures the
//    server's best-case service latency at a bounded concurrency.
//
// Per step the generator opens fresh connections (no cross-step backlog),
// runs warm-up (sends, no samples), measure (samples latency per matched
// reply — the protocol answers in order per connection, so matching is a
// FIFO of send timestamps), cool-down (keeps load applied so the tail of
// the measure window isn't serviced by an idle server), then half-closes
// and drains every reply the server still owes.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "util/result.hpp"

namespace mtscope::serve {

enum class LoadMode {
  kOpen,    // steps are offered rates in queries/s (all connections combined)
  kClosed,  // steps are pipeline depths per connection
};

[[nodiscard]] const char* to_string(LoadMode mode) noexcept;

/// Which wire protocol the generator speaks: the text line protocol or
/// the fixed-width MTBIN frames (serve/wire.hpp), negotiated by sending
/// the preamble right after connect.
enum class WireProtocol {
  kLine,
  kBinary,
};

[[nodiscard]] const char* to_string(WireProtocol proto) noexcept;

struct LoadgenConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  LoadMode mode = LoadMode::kOpen;
  WireProtocol proto = WireProtocol::kLine;
  int connections = 4;
  std::vector<std::uint64_t> steps;  // rate (open) or depth (closed) per step
  int warmup_ms = 200;
  int measure_ms = 1000;
  int cooldown_ms = 200;
  std::uint64_t seed = 42;  // query-address stream seed (deterministic)
};

/// One point on the latency-vs-throughput curve.
struct StepResult {
  std::uint64_t target = 0;       // the step's rate or depth
  std::uint64_t sent = 0;         // requests sent inside the measure window
  std::uint64_t received = 0;     // replies received inside the measure window
  std::uint64_t errors = 0;       // connect/send/recv failures across the step
  std::uint64_t samples = 0;      // latency samples (sent and matched in-window)
  double offered_qps = 0.0;       // sent / measure seconds
  double achieved_qps = 0.0;      // received / measure seconds
  std::uint64_t min_us = 0;
  double mean_us = 0.0;
  std::uint64_t p50_us = 0;
  std::uint64_t p90_us = 0;
  std::uint64_t p99_us = 0;
  std::uint64_t max_us = 0;
};

/// Nearest-rank percentile (q in (0, 100]) over ascending-sorted samples:
/// the ceil(q/100 * n)-th smallest.  The caller sorts once per step and
/// reads every percentile from the same sorted data (summarize does) —
/// the old by-value signature copied and re-sorted the full sample vector
/// per percentile.  Zero samples yield 0.
[[nodiscard]] std::uint64_t percentile_us(std::span<const std::uint64_t> sorted_samples,
                                          double q);

/// Parse a comma-separated step list ("1000,5000,20000") into positive
/// integers.  Typed loadgen.steps error on empty lists, empty elements,
/// zeros, or non-numeric tokens.
[[nodiscard]] util::Result<std::vector<std::uint64_t>> parse_step_list(std::string_view text);

/// Run every configured step against host:port.  Fails typed
/// (loadgen.config / loadgen.socket) on bad config or if a step cannot
/// connect; per-request send/recv failures are counted in StepResult::errors
/// instead of aborting the run.
[[nodiscard]] util::Result<std::vector<StepResult>> run_loadgen(const LoadgenConfig& config);

/// Machine-readable curve: one JSON object with the run parameters and a
/// "steps" array (latency fields grouped under "latency_us").  Stable key
/// order, two-space indent — diff-friendly like the metrics snapshots.
void write_loadgen_json(std::ostream& out, const LoadgenConfig& config,
                        const std::vector<StepResult>& steps);

}  // namespace mtscope::serve
