#include "serve/loadgen.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <ostream>
#include <random>
#include <thread>

#include "net/ipv4.hpp"
#include "serve/wire.hpp"

namespace mtscope::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// The step's phase boundaries on the shared clock: load is applied from
/// `begin` to `end`, samples are taken only from sends inside
/// [measure_begin, measure_end).
struct Phases {
  Clock::time_point begin;
  Clock::time_point measure_begin;
  Clock::time_point measure_end;
  Clock::time_point end;
};

/// Everything one connection's sender and receiver share.  The protocol
/// replies in order per connection, so matching a reply to its request is
/// popping the front of the send-timestamp queue.
struct ConnState {
  int fd = -1;
  std::mutex mutex;
  std::deque<Clock::time_point> in_flight;
  std::atomic<bool> sender_done{false};

  // Receiver-side tallies, merged after join.
  std::uint64_t sent_in_window = 0;      // sender-owned
  std::uint64_t received_in_window = 0;  // receiver-owned
  std::uint64_t errors = 0;
  std::size_t rx_carry = 0;               // receiver-owned: partial-frame bytes
  std::vector<std::uint64_t> samples_us;  // receiver-owned
};

/// Replies completed by this received chunk.  Line protocol: newline
/// count.  Binary: whole 20-byte frames, carrying partial-frame bytes
/// across chunks in conn.rx_carry (TCP segments frames arbitrarily).
std::size_t count_replies(ConnState& conn, WireProtocol proto, const char* chunk,
                          std::size_t n) {
  if (proto == WireProtocol::kLine) {
    return static_cast<std::size_t>(std::count(chunk, chunk + n, '\n'));
  }
  const std::size_t total = conn.rx_carry + n;
  conn.rx_carry = total % wire::kResponseSize;
  return total / wire::kResponseSize;
}

[[nodiscard]] std::uint64_t us_between(Clock::time_point from, Clock::time_point to) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(to - from).count());
}

int connect_to(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  const int enable = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
  // Bounded recv so a server that drops replies (it should not) cannot
  // hang the generator; the receiver re-checks its exit condition on
  // every timeout tick.
  timeval timeout{};
  timeout.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  return fd;
}

bool send_all(int fd, const char* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const auto n = ::send(fd, data + off, size - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Deterministic query-address stream.  Half the draws land inside
/// 60.0.0.0/6 — the simulation's meta-telescope address range, so both
/// the classified and the "none" lookup paths stay hot regardless of
/// which snapshot the server carries.
class AddrStream {
 public:
  AddrStream(std::uint64_t seed, WireProtocol proto) : rng_(seed), proto_(proto) {}

  void append_request(std::string& out) {
    const std::uint64_t draw = rng_();
    std::uint32_t value = static_cast<std::uint32_t>(draw);
    if ((draw & 1) != 0) value = 0x3C00'0000u | (value & 0x03FF'FFFFu);
    // Same draw -> same address in both protocols, so a line and a binary
    // run with equal seeds offer the identical query stream.
    if (proto_ == WireProtocol::kBinary) {
      wire::Request request;
      request.addr = net::Ipv4Addr(value);
      wire::append_request(out, request);
      return;
    }
    out += net::Ipv4Addr(value).to_string();
    out += '\n';
  }

 private:
  std::mt19937_64 rng_;
  WireProtocol proto_;
};

/// Open-loop sender: paced absolute-deadline sends, batched so the wakeup
/// cadence never drops below ~100us even at very high per-connection
/// rates (at that point per-request sleeps are noise anyway).
void run_open_sender(ConnState& conn, const Phases& phases, std::uint64_t rate_qps,
                     std::uint64_t seed, WireProtocol proto) {
  AddrStream addrs(seed, proto);
  const auto interval = std::chrono::nanoseconds(
      std::max<std::uint64_t>(1, 1'000'000'000ull / std::max<std::uint64_t>(1, rate_qps)));
  const std::size_t batch =
      interval < std::chrono::microseconds(100)
          ? static_cast<std::size_t>(std::chrono::microseconds(100) / interval)
          : 1;

  std::string wire;
  auto next = phases.begin;
  while (true) {
    const auto now = Clock::now();
    if (now >= phases.end) break;
    if (now < next) {
      std::this_thread::sleep_until(next);
      continue;
    }
    wire.clear();
    for (std::size_t i = 0; i < batch; ++i) addrs.append_request(wire);
    const auto stamp = Clock::now();
    {
      const std::lock_guard<std::mutex> lock(conn.mutex);
      for (std::size_t i = 0; i < batch; ++i) conn.in_flight.push_back(stamp);
    }
    if (!send_all(conn.fd, wire.data(), wire.size())) {
      ++conn.errors;
      break;
    }
    if (stamp >= phases.measure_begin && stamp < phases.measure_end) {
      conn.sent_in_window += batch;
    }
    next += interval * batch;
    // A send() stall (server back-pressure) can leave us behind schedule;
    // catching up from `now` keeps the offered rate honest instead of
    // bursting the backlog at line rate.
    if (next < now) next = now;
  }
  conn.sender_done.store(true, std::memory_order_release);
  ::shutdown(conn.fd, SHUT_WR);
}

/// Shared receiver: count completed replies (lines or frames), match each
/// to its send timestamp, sample the ones sent inside the measure window.
/// Runs until the server half-closes back (EOF after our SHUT_WR drains)
/// or errors.
void run_receiver(ConnState& conn, const Phases& phases, WireProtocol proto) {
  char chunk[16 * 1024];
  while (true) {
    const auto n = ::recv(conn.fd, chunk, sizeof(chunk), 0);
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Timeout tick: if the sender is done and nothing is owed, the
        // server just has no more to say.
        const std::lock_guard<std::mutex> lock(conn.mutex);
        if (conn.sender_done.load(std::memory_order_acquire) && conn.in_flight.empty()) break;
        continue;
      }
      ++conn.errors;
      break;
    }
    const auto now = Clock::now();
    const auto lines = count_replies(conn, proto, chunk, static_cast<std::size_t>(n));
    if (lines == 0) continue;
    const std::lock_guard<std::mutex> lock(conn.mutex);
    for (std::size_t i = 0; i < lines && !conn.in_flight.empty(); ++i) {
      const auto stamp = conn.in_flight.front();
      conn.in_flight.pop_front();
      if (stamp >= phases.measure_begin && stamp < phases.measure_end) {
        conn.samples_us.push_back(us_between(stamp, now));
      }
    }
    if (now >= phases.measure_begin && now < phases.measure_end) {
      conn.received_in_window += lines;
    }
  }
}

/// Closed-loop connection: keep `depth` requests outstanding, replenish
/// one per reply, stop replenishing at the end of cool-down and drain.
void run_closed_conn(ConnState& conn, const Phases& phases, std::uint64_t depth,
                     std::uint64_t seed, WireProtocol proto) {
  AddrStream addrs(seed, proto);
  std::string wire;
  const auto send_n = [&](std::size_t count) {
    wire.clear();
    for (std::size_t i = 0; i < count; ++i) addrs.append_request(wire);
    const auto stamp = Clock::now();
    for (std::size_t i = 0; i < count; ++i) conn.in_flight.push_back(stamp);
    if (!send_all(conn.fd, wire.data(), wire.size())) {
      ++conn.errors;
      return false;
    }
    if (stamp >= phases.measure_begin && stamp < phases.measure_end) {
      conn.sent_in_window += count;
    }
    return true;
  };

  if (!send_n(static_cast<std::size_t>(depth))) return;

  char chunk[16 * 1024];
  bool draining = false;
  while (!conn.in_flight.empty()) {
    const auto n = ::recv(conn.fd, chunk, sizeof(chunk), 0);
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (draining) break;  // server owes replies but went silent: give up
        continue;
      }
      ++conn.errors;
      break;
    }
    const auto now = Clock::now();
    const auto lines = count_replies(conn, proto, chunk, static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < lines && !conn.in_flight.empty(); ++i) {
      const auto stamp = conn.in_flight.front();
      conn.in_flight.pop_front();
      if (stamp >= phases.measure_begin && stamp < phases.measure_end) {
        conn.samples_us.push_back(us_between(stamp, now));
      }
    }
    if (now >= phases.measure_begin && now < phases.measure_end) {
      conn.received_in_window += lines;
    }
    if (now < phases.end) {
      if (lines > 0 && !send_n(lines)) break;
    } else if (!draining) {
      draining = true;
      ::shutdown(conn.fd, SHUT_WR);
    }
  }
}

StepResult summarize(std::uint64_t target, int measure_ms,
                     std::vector<std::unique_ptr<ConnState>>& conns) {
  StepResult result;
  result.target = target;
  std::vector<std::uint64_t> samples;
  for (const auto& conn : conns) {
    result.sent += conn->sent_in_window;
    result.received += conn->received_in_window;
    result.errors += conn->errors;
    samples.insert(samples.end(), conn->samples_us.begin(), conn->samples_us.end());
  }
  const double seconds = static_cast<double>(measure_ms) / 1000.0;
  result.offered_qps = static_cast<double>(result.sent) / seconds;
  result.achieved_qps = static_cast<double>(result.received) / seconds;
  result.samples = samples.size();
  if (!samples.empty()) {
    // One sort serves every percentile — percentile_us reads sorted data
    // rather than copying and re-sorting the vector per quantile.
    std::sort(samples.begin(), samples.end());
    result.min_us = samples.front();
    result.max_us = samples.back();
    double total = 0.0;
    for (const auto s : samples) total += static_cast<double>(s);
    result.mean_us = total / static_cast<double>(samples.size());
    result.p50_us = percentile_us(samples, 50.0);
    result.p90_us = percentile_us(samples, 90.0);
    result.p99_us = percentile_us(samples, 99.0);
  }
  return result;
}

util::Result<StepResult> run_step(const LoadgenConfig& config, std::uint64_t target,
                                  std::size_t step_index) {
  std::vector<std::unique_ptr<ConnState>> conns;
  conns.reserve(static_cast<std::size_t>(config.connections));
  for (int i = 0; i < config.connections; ++i) {
    auto conn = std::make_unique<ConnState>();
    conn->fd = connect_to(config.host, config.port);
    // The binary preamble goes out before any sender thread exists, so
    // the first request frame can never race ahead of the negotiation.
    if (conn->fd < 0 ||
        (config.proto == WireProtocol::kBinary &&
         !send_all(conn->fd, wire::kPreamble.data(), wire::kPreamble.size()))) {
      if (conn->fd >= 0) ::close(conn->fd);
      for (const auto& open : conns) ::close(open->fd);
      return util::make_error("loadgen.socket",
                              "connect to " + config.host + ":" + std::to_string(config.port) +
                                  " failed: " + std::strerror(errno));
    }
    conns.push_back(std::move(conn));
  }

  Phases phases;
  phases.begin = Clock::now();
  phases.measure_begin = phases.begin + std::chrono::milliseconds(config.warmup_ms);
  phases.measure_end = phases.measure_begin + std::chrono::milliseconds(config.measure_ms);
  phases.end = phases.measure_end + std::chrono::milliseconds(config.cooldown_ms);

  std::vector<std::thread> threads;
  for (int i = 0; i < config.connections; ++i) {
    ConnState& conn = *conns[static_cast<std::size_t>(i)];
    // Distinct deterministic stream per (run, step, connection).
    const std::uint64_t seed =
        config.seed + 0x9e3779b97f4a7c15ull * (step_index * 1024 + static_cast<std::size_t>(i) + 1);
    if (config.mode == LoadMode::kOpen) {
      // The offered rate splits evenly; the first connections carry the
      // remainder so the step total is exact.
      const std::uint64_t share = target / static_cast<std::uint64_t>(config.connections) +
                                  (static_cast<std::uint64_t>(i) <
                                           target % static_cast<std::uint64_t>(config.connections)
                                       ? 1
                                       : 0);
      threads.emplace_back([&conn, phases, share, seed, proto = config.proto] {
        run_open_sender(conn, phases, share, seed, proto);
      });
      threads.emplace_back([&conn, phases, proto = config.proto] {
        run_receiver(conn, phases, proto);
      });
    } else {
      threads.emplace_back([&conn, phases, target, seed, proto = config.proto] {
        run_closed_conn(conn, phases, target, seed, proto);
      });
    }
  }
  for (auto& thread : threads) thread.join();
  for (const auto& conn : conns) ::close(conn->fd);

  return summarize(target, config.measure_ms, conns);
}

void append_fixed(std::string& out, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.1f", value);
  out += buffer;
}

}  // namespace

const char* to_string(LoadMode mode) noexcept {
  return mode == LoadMode::kOpen ? "open" : "closed";
}

const char* to_string(WireProtocol proto) noexcept {
  return proto == WireProtocol::kLine ? "line" : "binary";
}

std::uint64_t percentile_us(std::span<const std::uint64_t> sorted_samples, double q) {
  if (sorted_samples.empty()) return 0;  // a cool-down-only step measures nothing
  const auto index = static_cast<std::size_t>(
      std::ceil(q / 100.0 * static_cast<double>(sorted_samples.size())));
  return sorted_samples[std::min(sorted_samples.size() - 1,
                                 std::max<std::size_t>(1, index) - 1)];
}

util::Result<std::vector<std::uint64_t>> parse_step_list(std::string_view text) {
  std::vector<std::uint64_t> steps;
  if (text.empty()) return util::make_error("loadgen.steps", "empty step list");
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = std::min(text.find(',', start), text.size());
    const std::string_view token = text.substr(start, comma - start);
    std::uint64_t value = 0;
    const auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
    if (token.empty() || ec != std::errc() || ptr != token.data() + token.size() || value == 0) {
      return util::make_error("loadgen.steps",
                              "invalid step '" + std::string(token) +
                                  "' (expected comma-separated positive integers)");
    }
    steps.push_back(value);
    if (comma == text.size()) break;
    start = comma + 1;
  }
  return steps;
}

util::Result<std::vector<StepResult>> run_loadgen(const LoadgenConfig& config) {
  if (config.port == 0) return util::make_error("loadgen.config", "port must be nonzero");
  if (config.connections < 1) {
    return util::make_error("loadgen.config", "connections must be >= 1");
  }
  if (config.steps.empty()) return util::make_error("loadgen.config", "no load steps");
  if (config.measure_ms < 1 || config.warmup_ms < 0 || config.cooldown_ms < 0) {
    return util::make_error("loadgen.config", "invalid phase durations");
  }
  std::vector<StepResult> results;
  results.reserve(config.steps.size());
  for (std::size_t i = 0; i < config.steps.size(); ++i) {
    auto step = run_step(config, config.steps[i], i);
    if (!step.ok()) return step.error();
    results.push_back(std::move(step.value()));
  }
  return results;
}

void write_loadgen_json(std::ostream& out, const LoadgenConfig& config,
                        const std::vector<StepResult>& steps) {
  std::string text;
  text += "{\n";
  text += "  \"tool\": \"mtscope loadgen\",\n";
  text += "  \"host\": \"" + config.host + "\",\n";
  text += "  \"port\": " + std::to_string(config.port) + ",\n";
  text += "  \"mode\": \"" + std::string(to_string(config.mode)) + "\",\n";
  text += "  \"proto\": \"" + std::string(to_string(config.proto)) + "\",\n";
  text += "  \"connections\": " + std::to_string(config.connections) + ",\n";
  text += "  \"warmup_ms\": " + std::to_string(config.warmup_ms) + ",\n";
  text += "  \"measure_ms\": " + std::to_string(config.measure_ms) + ",\n";
  text += "  \"cooldown_ms\": " + std::to_string(config.cooldown_ms) + ",\n";
  text += "  \"seed\": " + std::to_string(config.seed) + ",\n";
  text += "  \"steps\": [";
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const StepResult& step = steps[i];
    text += i == 0 ? "\n" : ",\n";
    text += "    {\n";
    text += "      \"target\": " + std::to_string(step.target) + ",\n";
    text += "      \"offered_qps\": ";
    append_fixed(text, step.offered_qps);
    text += ",\n      \"achieved_qps\": ";
    append_fixed(text, step.achieved_qps);
    text += ",\n      \"sent\": " + std::to_string(step.sent) + ",\n";
    text += "      \"received\": " + std::to_string(step.received) + ",\n";
    text += "      \"errors\": " + std::to_string(step.errors) + ",\n";
    text += "      \"samples\": " + std::to_string(step.samples) + ",\n";
    text += "      \"latency_us\": {\n";
    text += "        \"min\": " + std::to_string(step.min_us) + ",\n";
    text += "        \"mean\": ";
    append_fixed(text, step.mean_us);
    text += ",\n        \"p50\": " + std::to_string(step.p50_us) + ",\n";
    text += "        \"p90\": " + std::to_string(step.p90_us) + ",\n";
    text += "        \"p99\": " + std::to_string(step.p99_us) + ",\n";
    text += "        \"max\": " + std::to_string(step.max_us) + "\n";
    text += "      }\n";
    text += "    }";
  }
  text += steps.empty() ? "]\n" : "\n  ]\n";
  text += "}\n";
  out << text;
}

}  // namespace mtscope::serve
