#include "serve/event_loop.hpp"

#include <sys/epoll.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <system_error>

namespace mtscope::serve {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

EventLoop::EventLoop() : epoll_fd_(::epoll_create1(EPOLL_CLOEXEC)) {
  if (epoll_fd_ < 0) throw_errno("epoll_create1");
}

EventLoop::~EventLoop() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::add(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) throw_errno("epoll_ctl(ADD)");
}

void EventLoop::modify(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) throw_errno("epoll_ctl(MOD)");
}

void EventLoop::remove(int fd) {
  // ENOENT tolerated: a connection torn down twice (e.g. error path after
  // a drain close) must not abort the server.
  epoll_event ev{};
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, &ev) != 0 && errno != ENOENT && errno != EBADF) {
    throw_errno("epoll_ctl(DEL)");
  }
}

int EventLoop::wait(std::vector<Event>& out, int timeout_ms) {
  std::array<epoll_event, 128> ready;
  out.clear();
  const int n =
      ::epoll_wait(epoll_fd_, ready.data(), static_cast<int>(ready.size()), timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return 0;  // signal wake; caller re-checks its flags
    throw_errno("epoll_wait");
  }
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(Event{ready[static_cast<std::size_t>(i)].data.fd,
                        ready[static_cast<std::size_t>(i)].events});
  }
  return n;
}

}  // namespace mtscope::serve
