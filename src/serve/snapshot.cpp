#include "serve/snapshot.hpp"

#include <algorithm>
#include <array>
#include <fstream>
#include <map>

#include "routing/rib.hpp"
#include "util/bytes.hpp"

namespace mtscope::serve {

namespace {

using util::crc32;
using util::le_get_u16;
using util::le_get_u32;
using util::le_get_u64;
using util::le_patch_u32;
using util::le_put_u16;
using util::le_put_u32;
using util::le_put_u64;

// "\r\n" in the magic catches text-mode / newline-translating transports
// the way the PNG signature does.
constexpr std::array<std::uint8_t, 8> kMagic = {'M', 'T', 'S', 'N', 'A', 'P', '\r', '\n'};
constexpr std::size_t kHeaderSize = 24;
constexpr std::size_t kTableEntrySize = 24;

// Section kinds, in the order the writer emits them (readers require it:
// a fixed order is what makes re-serialization byte-identical).
enum SectionKind : std::uint32_t {
  kSectionMeta = 1,
  kSectionFunnel = 2,
  kSectionPrefixes = 3,
  kSectionBlocks = 4,
  kSectionAnalytics = 5,  // version >= 2 only
};
constexpr std::array<std::uint32_t, 5> kSectionOrder = {
    kSectionMeta, kSectionFunnel, kSectionPrefixes, kSectionBlocks, kSectionAnalytics};

constexpr std::size_t kMetaFixedSize = 48;     // 4 x u64 + 3 x u32 + source_len u32
constexpr std::size_t kFunnelSize = 80;        // 10 x u64
constexpr std::size_t kPrefixEntrySize = 12;   // base u32 + asn u32 + len u8 + pad[3]
constexpr std::size_t kBlockEntrySize = 8;     // packed u32 + prefix_id u32

constexpr std::size_t kAnalyticsFixedSize = 32;  // 8 x u32 header
constexpr std::size_t kLabelSize = 4;            // country[2] + continent u8 + net_type u8
constexpr std::size_t kCellSize = 16;            // block u32 + port u16 + pad u16 + packets u64
constexpr std::size_t kSeriesPointSize = 16;     // prefix_id u32 + day u32 + packets u64
constexpr std::size_t kOutageSize = 32;          // 4 x u32 + 2 x u64
constexpr std::size_t kServiceSize = 16;         // u8 x2 + u16 + rank u32 + packets u64
constexpr std::size_t kScannerSize = 24;         // 3 x u32 + pad u32 + packets u64

// Ordinal ceilings for label validation: geo::Continent has seven values
// (kNorthAmerica..kInternational) and geo::NetType four.
constexpr std::uint8_t kMaxContinent = 6;
constexpr std::uint8_t kMaxNetType = 3;

util::Error err(std::string code, std::string message) {
  return util::make_error(std::move(code), std::move(message));
}

std::vector<std::uint8_t> serialize_meta(const RunMetadata& m) {
  std::vector<std::uint8_t> out;
  out.reserve(kMetaFixedSize + m.source.size());
  le_put_u64(out, m.seed);
  le_put_u64(out, m.spoof_tolerance_pkts);
  le_put_u64(out, m.flows_ingested);
  le_put_u64(out, m.created_unix_s);
  le_put_u32(out, m.threads);
  le_put_u32(out, m.shards);
  le_put_u32(out, m.days);
  le_put_u32(out, static_cast<std::uint32_t>(m.source.size()));
  out.insert(out.end(), m.source.begin(), m.source.end());
  return out;
}

std::vector<std::uint8_t> serialize_funnel(const TelescopeSnapshot& s) {
  std::vector<std::uint8_t> out;
  out.reserve(kFunnelSize);
  le_put_u64(out, s.funnel.seen);
  le_put_u64(out, s.funnel.after_tcp);
  le_put_u64(out, s.funnel.after_size);
  le_put_u64(out, s.funnel.after_source);
  le_put_u64(out, s.funnel.after_reserved);
  le_put_u64(out, s.funnel.after_routed);
  le_put_u64(out, s.funnel.after_volume);
  le_put_u64(out, s.dark_count);
  le_put_u64(out, s.unclean_count);
  le_put_u64(out, s.gray_count);
  return out;
}

std::vector<std::uint8_t> serialize_prefixes(const TelescopeSnapshot& s) {
  std::vector<std::uint8_t> out;
  out.reserve(4 + s.prefixes.size() * kPrefixEntrySize);
  le_put_u32(out, static_cast<std::uint32_t>(s.prefixes.size()));
  for (const PrefixEntry& p : s.prefixes) {
    le_put_u32(out, p.base);
    le_put_u32(out, p.origin_asn);
    out.push_back(p.length);
    out.push_back(0);
    out.push_back(0);
    out.push_back(0);
  }
  return out;
}

std::vector<std::uint8_t> serialize_blocks(const TelescopeSnapshot& s) {
  std::vector<std::uint8_t> out;
  out.reserve(4 + s.blocks.size() * kBlockEntrySize);
  le_put_u32(out, static_cast<std::uint32_t>(s.blocks.size()));
  for (const BlockEntry& b : s.blocks) {
    le_put_u32(out, b.packed);
    le_put_u32(out, b.prefix_id);
  }
  return out;
}

std::vector<std::uint8_t> serialize_analytics(const AnalyticsData& a) {
  std::vector<std::uint8_t> out;
  out.reserve(kAnalyticsFixedSize + a.labels.size() * kLabelSize + a.cells.size() * kCellSize +
              a.series.size() * kSeriesPointSize + a.outages.size() * kOutageSize +
              a.services.size() * kServiceSize + a.scanners.size() * kScannerSize);
  le_put_u32(out, a.first_day);
  le_put_u32(out, a.window_days);
  le_put_u32(out, static_cast<std::uint32_t>(a.labels.size()));
  le_put_u32(out, static_cast<std::uint32_t>(a.cells.size()));
  le_put_u32(out, static_cast<std::uint32_t>(a.series.size()));
  le_put_u32(out, static_cast<std::uint32_t>(a.outages.size()));
  le_put_u32(out, static_cast<std::uint32_t>(a.services.size()));
  le_put_u32(out, static_cast<std::uint32_t>(a.scanners.size()));
  for (const BlockLabel& l : a.labels) {
    out.push_back(static_cast<std::uint8_t>(l.country[0]));
    out.push_back(static_cast<std::uint8_t>(l.country[1]));
    out.push_back(l.continent);
    out.push_back(l.net_type);
  }
  for (const PortCell& c : a.cells) {
    le_put_u32(out, c.block);
    le_put_u16(out, c.port);
    le_put_u16(out, 0);
    le_put_u64(out, c.packets);
  }
  for (const SeriesPoint& p : a.series) {
    le_put_u32(out, p.prefix_id);
    le_put_u32(out, p.day);
    le_put_u64(out, p.packets);
  }
  for (const analytics::OutageEvent& o : a.outages) {
    le_put_u32(out, o.prefix_id);
    le_put_u32(out, o.start_day);
    le_put_u32(out, o.end_day);
    le_put_u32(out, o.severity_pct);
    le_put_u64(out, o.baseline);
    le_put_u64(out, o.observed);
  }
  for (const analytics::ServicePortStat& s : a.services) {
    out.push_back(s.continent);
    out.push_back(s.net_type);
    le_put_u16(out, s.port);
    le_put_u32(out, s.rank);
    le_put_u64(out, s.packets);
  }
  for (const analytics::ScannerProfile& s : a.scanners) {
    le_put_u32(out, s.src_block);
    le_put_u32(out, s.blocks_touched);
    le_put_u32(out, s.ports_touched);
    le_put_u32(out, 0);
    le_put_u64(out, s.est_packets);
  }
  return out;
}

util::Result<AnalyticsData> parse_analytics(std::span<const std::uint8_t> body,
                                            std::size_t block_count,
                                            std::size_t prefix_count) {
  if (body.size() < kAnalyticsFixedSize) {
    return err("snapshot.bad_section", "ANALYTICS section shorter than its header");
  }
  AnalyticsData a;
  a.first_day = le_get_u32(body, 0);
  a.window_days = le_get_u32(body, 4);
  const std::uint32_t label_count = le_get_u32(body, 8);
  const std::uint32_t cell_count = le_get_u32(body, 12);
  const std::uint32_t series_count = le_get_u32(body, 16);
  const std::uint32_t outage_count = le_get_u32(body, 20);
  const std::uint32_t service_count = le_get_u32(body, 24);
  const std::uint32_t scanner_count = le_get_u32(body, 28);
  const std::uint64_t expected =
      kAnalyticsFixedSize + std::uint64_t{label_count} * kLabelSize +
      std::uint64_t{cell_count} * kCellSize + std::uint64_t{series_count} * kSeriesPointSize +
      std::uint64_t{outage_count} * kOutageSize + std::uint64_t{service_count} * kServiceSize +
      std::uint64_t{scanner_count} * kScannerSize;
  if (body.size() != expected) {
    return err("snapshot.bad_section", "ANALYTICS record counts disagree with section length");
  }
  if (label_count != block_count) {
    return err("snapshot.bad_section", "ANALYTICS label count disagrees with the block table");
  }
  std::size_t at = kAnalyticsFixedSize;

  a.labels.reserve(label_count);
  for (std::uint32_t i = 0; i < label_count; ++i, at += kLabelSize) {
    BlockLabel l;
    l.country[0] = static_cast<char>(body[at]);
    l.country[1] = static_cast<char>(body[at + 1]);
    l.continent = body[at + 2];
    l.net_type = body[at + 3];
    if (l.continent > kMaxContinent || l.net_type > kMaxNetType) {
      return err("snapshot.bad_section", "ANALYTICS label has an out-of-range ordinal");
    }
    a.labels.push_back(l);
  }

  a.cells.reserve(cell_count);
  for (std::uint32_t i = 0; i < cell_count; ++i, at += kCellSize) {
    PortCell c;
    c.block = le_get_u32(body, at);
    c.port = le_get_u16(body, at + 4);
    if (le_get_u16(body, at + 6) != 0) {
      return err("snapshot.bad_section", "ANALYTICS cell has non-zero padding");
    }
    c.packets = le_get_u64(body, at + 8);
    if (!a.cells.empty() && std::pair(a.cells.back().block, a.cells.back().port) >=
                                std::pair(c.block, c.port)) {
      return err("snapshot.bad_section", "ANALYTICS cells are not strictly ascending");
    }
    a.cells.push_back(c);
  }

  a.series.reserve(series_count);
  for (std::uint32_t i = 0; i < series_count; ++i, at += kSeriesPointSize) {
    SeriesPoint p;
    p.prefix_id = le_get_u32(body, at);
    p.day = le_get_u32(body, at + 4);
    p.packets = le_get_u64(body, at + 8);
    if (p.prefix_id >= prefix_count) {
      return err("snapshot.bad_section", "ANALYTICS series references a missing prefix");
    }
    if (p.day < a.first_day || p.day - a.first_day >= a.window_days) {
      return err("snapshot.bad_section", "ANALYTICS series day falls outside the window");
    }
    if (p.packets == 0) {
      return err("snapshot.bad_section", "ANALYTICS series stores an explicit zero");
    }
    if (!a.series.empty() && std::pair(a.series.back().prefix_id, a.series.back().day) >=
                                 std::pair(p.prefix_id, p.day)) {
      return err("snapshot.bad_section", "ANALYTICS series points are not strictly ascending");
    }
    a.series.push_back(p);
  }

  a.outages.reserve(outage_count);
  for (std::uint32_t i = 0; i < outage_count; ++i, at += kOutageSize) {
    analytics::OutageEvent o;
    o.prefix_id = le_get_u32(body, at);
    o.start_day = le_get_u32(body, at + 4);
    o.end_day = le_get_u32(body, at + 8);
    o.severity_pct = le_get_u32(body, at + 12);
    o.baseline = le_get_u64(body, at + 16);
    o.observed = le_get_u64(body, at + 24);
    if (o.prefix_id >= prefix_count) {
      return err("snapshot.bad_section", "ANALYTICS outage references a missing prefix");
    }
    if (o.start_day > o.end_day || o.severity_pct > 100) {
      return err("snapshot.bad_section", "ANALYTICS outage event is malformed");
    }
    a.outages.push_back(o);
  }

  a.services.reserve(service_count);
  for (std::uint32_t i = 0; i < service_count; ++i, at += kServiceSize) {
    analytics::ServicePortStat s;
    s.continent = body[at];
    s.net_type = body[at + 1];
    s.port = le_get_u16(body, at + 2);
    s.rank = le_get_u32(body, at + 4);
    s.packets = le_get_u64(body, at + 8);
    if (s.continent > kMaxContinent || s.net_type > kMaxNetType) {
      return err("snapshot.bad_section", "ANALYTICS service has an out-of-range ordinal");
    }
    if (!a.services.empty()) {
      const auto& prev = a.services.back();
      if (std::tuple(prev.continent, prev.net_type, prev.rank) >=
          std::tuple(s.continent, s.net_type, s.rank)) {
        return err("snapshot.bad_section", "ANALYTICS services are not strictly ascending");
      }
    }
    a.services.push_back(s);
  }

  a.scanners.reserve(scanner_count);
  for (std::uint32_t i = 0; i < scanner_count; ++i, at += kScannerSize) {
    analytics::ScannerProfile s;
    s.src_block = le_get_u32(body, at);
    s.blocks_touched = le_get_u32(body, at + 4);
    s.ports_touched = le_get_u32(body, at + 8);
    if (le_get_u32(body, at + 12) != 0) {
      return err("snapshot.bad_section", "ANALYTICS scanner has non-zero padding");
    }
    s.est_packets = le_get_u64(body, at + 16);
    if (!a.scanners.empty()) {
      const auto& prev = a.scanners.back();
      if (std::pair(prev.est_packets, s.src_block) <= std::pair(s.est_packets, prev.src_block)) {
        return err("snapshot.bad_section",
                   "ANALYTICS scanners are not sorted by volume desc, source asc");
      }
    }
    a.scanners.push_back(s);
  }
  return a;
}

util::Result<RunMetadata> parse_meta(std::span<const std::uint8_t> body) {
  if (body.size() < kMetaFixedSize) {
    return err("snapshot.bad_section", "META section shorter than its fixed fields");
  }
  RunMetadata m;
  m.seed = le_get_u64(body, 0);
  m.spoof_tolerance_pkts = le_get_u64(body, 8);
  m.flows_ingested = le_get_u64(body, 16);
  m.created_unix_s = le_get_u64(body, 24);
  m.threads = le_get_u32(body, 32);
  m.shards = le_get_u32(body, 36);
  m.days = le_get_u32(body, 40);
  const std::uint32_t source_len = le_get_u32(body, 44);
  if (body.size() != kMetaFixedSize + source_len) {
    return err("snapshot.bad_section", "META source string length mismatch");
  }
  m.source.assign(reinterpret_cast<const char*>(body.data()) + kMetaFixedSize, source_len);
  return m;
}

util::Result<std::vector<PrefixEntry>> parse_prefixes(std::span<const std::uint8_t> body) {
  if (body.size() < 4) {
    return err("snapshot.bad_section", "PREFIXES section shorter than its count field");
  }
  const std::uint32_t count = le_get_u32(body, 0);
  if (body.size() != 4 + std::uint64_t{count} * kPrefixEntrySize) {
    return err("snapshot.bad_section", "PREFIXES entry count disagrees with section length");
  }
  std::vector<PrefixEntry> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::size_t at = 4 + std::size_t{i} * kPrefixEntrySize;
    PrefixEntry p;
    p.base = le_get_u32(body, at);
    p.origin_asn = le_get_u32(body, at + 4);
    p.length = body[at + 8];
    if (p.length > 32 || (p.base & ~net::Prefix::mask_for(p.length)) != 0) {
      return err("snapshot.bad_section", "PREFIXES entry is not a canonical prefix");
    }
    if (body[at + 9] != 0 || body[at + 10] != 0 || body[at + 11] != 0) {
      return err("snapshot.bad_section", "PREFIXES entry has non-zero padding");
    }
    if (!out.empty() &&
        std::pair(out.back().base, out.back().length) >= std::pair(p.base, p.length)) {
      return err("snapshot.bad_section", "PREFIXES entries are not strictly ascending");
    }
    out.push_back(p);
  }
  return out;
}

util::Result<std::vector<BlockEntry>> parse_blocks(std::span<const std::uint8_t> body,
                                                   std::size_t prefix_count,
                                                   std::array<std::uint64_t, 3>& class_totals) {
  if (body.size() < 4) {
    return err("snapshot.bad_section", "BLOCKS section shorter than its count field");
  }
  const std::uint32_t count = le_get_u32(body, 0);
  if (body.size() != 4 + std::uint64_t{count} * kBlockEntrySize) {
    return err("snapshot.bad_section", "BLOCKS entry count disagrees with section length");
  }
  std::vector<BlockEntry> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::size_t at = 4 + std::size_t{i} * kBlockEntrySize;
    BlockEntry b;
    b.packed = le_get_u32(body, at);
    b.prefix_id = le_get_u32(body, at + 4);
    if ((b.packed >> 26) != 0 || ((b.packed >> 24) & 0x3u) > 2) {
      return err("snapshot.bad_section", "BLOCKS entry has an invalid class");
    }
    if (b.prefix_id != BlockEntry::kNoPrefix && b.prefix_id >= prefix_count) {
      return err("snapshot.bad_section", "BLOCKS entry references a missing prefix");
    }
    if (!out.empty() && out.back().block_index() >= b.block_index()) {
      return err("snapshot.bad_section", "BLOCKS entries are not strictly ascending");
    }
    ++class_totals[static_cast<std::size_t>(b.cls())];
    out.push_back(b);
  }
  return out;
}

}  // namespace

std::string_view to_string(BlockClass cls) noexcept {
  switch (cls) {
    case BlockClass::kDark: return "dark";
    case BlockClass::kUnclean: return "unclean";
    case BlockClass::kGray: return "gray";
  }
  return "invalid";
}

TelescopeSnapshot build_snapshot(const pipeline::InferenceResult& result,
                                 const routing::Rib& rib, RunMetadata meta) {
  TelescopeSnapshot snapshot;
  snapshot.meta = std::move(meta);
  snapshot.funnel = result.funnel;
  snapshot.dark_count = result.dark.size();
  snapshot.unclean_count = result.unclean;
  snapshot.gray_count = result.gray;

  // Pass 1: gather every classified block with its covering announcement.
  struct Classified {
    net::Block24 block;
    BlockClass cls;
    std::optional<std::pair<net::Prefix, routing::Route>> covering;
  };
  std::vector<Classified> classified;
  classified.reserve(static_cast<std::size_t>(snapshot.dark_count + snapshot.unclean_count +
                                              snapshot.gray_count));
  std::map<std::pair<std::uint32_t, std::uint8_t>, std::uint32_t> prefix_ids;
  const auto gather = [&](const trie::Block24Set& set, BlockClass cls) {
    set.for_each([&](net::Block24 block) {
      Classified c{block, cls, rib.lookup(block.first_address())};
      if (c.covering.has_value()) {
        prefix_ids.emplace(std::pair(c.covering->first.base().value(),
                                     static_cast<std::uint8_t>(c.covering->first.length())),
                           0);
      }
      classified.push_back(std::move(c));
    });
  };
  gather(result.dark, BlockClass::kDark);
  gather(result.unclean_blocks, BlockClass::kUnclean);
  gather(result.gray_blocks, BlockClass::kGray);

  // The three class sets each iterate in ascending order; interleaving
  // them restores one globally ascending block sequence.
  std::sort(classified.begin(), classified.end(),
            [](const Classified& a, const Classified& b) { return a.block < b.block; });

  // Pass 2: number the referenced prefixes in (base, length) order — the
  // std::map already iterates that way — then emit the block records.
  snapshot.prefixes.reserve(prefix_ids.size());
  for (auto& [key, id] : prefix_ids) {
    id = static_cast<std::uint32_t>(snapshot.prefixes.size());
    PrefixEntry entry;
    entry.base = key.first;
    entry.length = key.second;
    entry.origin_asn = 0;  // patched below from the covering route
    snapshot.prefixes.push_back(entry);
  }
  snapshot.blocks.reserve(classified.size());
  for (const Classified& c : classified) {
    std::uint32_t prefix_id = BlockEntry::kNoPrefix;
    if (c.covering.has_value()) {
      const auto key = std::pair(c.covering->first.base().value(),
                                 static_cast<std::uint8_t>(c.covering->first.length()));
      prefix_id = prefix_ids.at(key);
      snapshot.prefixes[prefix_id].origin_asn = c.covering->second.origin.value();
    }
    snapshot.blocks.push_back(BlockEntry::make(c.block, c.cls, prefix_id));
  }
  return snapshot;
}

std::vector<std::uint8_t> serialize_snapshot(const TelescopeSnapshot& snapshot) {
  // Analytics-free snapshots stay on the version-1 wire form — the bytes a
  // v1 writer produced — so pre-analytics readers and golden files are
  // unaffected.  Analytics selects version 2 with the fifth section.
  const std::uint16_t version = snapshot.analytics.has_value() ? 2 : 1;
  std::vector<std::vector<std::uint8_t>> payloads;
  payloads.reserve(kSectionOrder.size());
  payloads.push_back(serialize_meta(snapshot.meta));
  payloads.push_back(serialize_funnel(snapshot));
  payloads.push_back(serialize_prefixes(snapshot));
  payloads.push_back(serialize_blocks(snapshot));
  if (snapshot.analytics.has_value()) {
    payloads.push_back(serialize_analytics(*snapshot.analytics));
  }

  const std::size_t table_size = payloads.size() * kTableEntrySize;
  std::uint64_t file_size = kHeaderSize + table_size + 4;
  for (const auto& p : payloads) file_size += p.size();

  std::vector<std::uint8_t> out;
  out.reserve(file_size);
  // push_back rather than a range insert: GCC 12's -Wstringop-overflow
  // false-positives on inserting a fixed array into an empty vector.
  for (const std::uint8_t byte : kMagic) out.push_back(byte);
  le_put_u16(out, version);
  le_put_u16(out, 0);  // flags
  le_put_u32(out, static_cast<std::uint32_t>(payloads.size()));
  le_put_u64(out, file_size);

  std::uint64_t offset = kHeaderSize + table_size + 4;
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    le_put_u32(out, kSectionOrder[i]);
    le_put_u32(out, crc32(payloads[i]));
    le_put_u64(out, offset);
    le_put_u64(out, payloads[i].size());
    offset += payloads[i].size();
  }
  le_put_u32(out, crc32(out));  // table_crc seals header + table
  for (const auto& p : payloads) out.insert(out.end(), p.begin(), p.end());
  return out;
}

util::Result<TelescopeSnapshot> parse_snapshot(std::span<const std::uint8_t> data) {
  if (data.size() < kHeaderSize) {
    return err("snapshot.truncated", "file shorter than the snapshot header");
  }
  if (!std::equal(kMagic.begin(), kMagic.end(), data.begin())) {
    return err("snapshot.bad_magic", "not a telescope snapshot (magic mismatch)");
  }
  const std::uint16_t version = le_get_u16(data, 8);
  if (version == 0 || version > kSnapshotVersion) {
    return err("snapshot.unsupported_version",
               "snapshot version " + std::to_string(version) + " is not supported (max " +
                   std::to_string(kSnapshotVersion) + ")");
  }
  const std::uint32_t section_count = le_get_u32(data, 12);
  const std::uint32_t expected_sections = version >= 2 ? 5 : 4;
  if (section_count != expected_sections) {
    return err("snapshot.bad_section",
               "version " + std::to_string(version) + " snapshots carry exactly " +
                   std::to_string(expected_sections) + " sections");
  }
  const std::uint64_t file_size = le_get_u64(data, 16);
  if (file_size != data.size()) {
    return err("snapshot.truncated", "file size disagrees with the header (" +
                                         std::to_string(data.size()) + " bytes on disk, " +
                                         std::to_string(file_size) + " declared)");
  }
  const std::size_t table_end = kHeaderSize + section_count * kTableEntrySize;
  if (data.size() < table_end + 4) {
    return err("snapshot.truncated", "file ends inside the section table");
  }
  if (le_get_u32(data, table_end) != crc32(data.first(table_end))) {
    return err("snapshot.bad_crc", "header/table checksum mismatch");
  }

  std::array<std::span<const std::uint8_t>, 5> sections;
  for (std::size_t i = 0; i < section_count; ++i) {
    const std::size_t at = kHeaderSize + i * kTableEntrySize;
    const std::uint32_t kind = le_get_u32(data, at);
    const std::uint32_t crc = le_get_u32(data, at + 4);
    const std::uint64_t offset = le_get_u64(data, at + 8);
    const std::uint64_t length = le_get_u64(data, at + 16);
    if (kind != kSectionOrder[i]) {
      return err("snapshot.bad_section", "unexpected section kind or order");
    }
    if (offset < table_end + 4 || offset > data.size() || length > data.size() - offset) {
      return err("snapshot.truncated", "section extends past the end of the file");
    }
    sections[i] = data.subspan(offset, length);
    if (crc32(sections[i]) != crc) {
      return err("snapshot.bad_crc", "section " + std::to_string(kind) + " checksum mismatch");
    }
  }

  TelescopeSnapshot snapshot;
  auto meta = parse_meta(sections[0]);
  if (!meta.ok()) return meta.error();
  snapshot.meta = std::move(meta).value();

  if (sections[1].size() != kFunnelSize) {
    return err("snapshot.bad_section", "FUNNEL section has the wrong size");
  }
  snapshot.funnel.seen = le_get_u64(sections[1], 0);
  snapshot.funnel.after_tcp = le_get_u64(sections[1], 8);
  snapshot.funnel.after_size = le_get_u64(sections[1], 16);
  snapshot.funnel.after_source = le_get_u64(sections[1], 24);
  snapshot.funnel.after_reserved = le_get_u64(sections[1], 32);
  snapshot.funnel.after_routed = le_get_u64(sections[1], 40);
  snapshot.funnel.after_volume = le_get_u64(sections[1], 48);
  snapshot.dark_count = le_get_u64(sections[1], 56);
  snapshot.unclean_count = le_get_u64(sections[1], 64);
  snapshot.gray_count = le_get_u64(sections[1], 72);

  auto prefixes = parse_prefixes(sections[2]);
  if (!prefixes.ok()) return prefixes.error();
  snapshot.prefixes = std::move(prefixes).value();

  std::array<std::uint64_t, 3> class_totals = {0, 0, 0};
  auto blocks = parse_blocks(sections[3], snapshot.prefixes.size(), class_totals);
  if (!blocks.ok()) return blocks.error();
  snapshot.blocks = std::move(blocks).value();

  if (class_totals[0] != snapshot.dark_count || class_totals[1] != snapshot.unclean_count ||
      class_totals[2] != snapshot.gray_count) {
    return err("snapshot.bad_section", "class totals disagree with the block records");
  }

  if (section_count == 5) {
    auto analytics =
        parse_analytics(sections[4], snapshot.blocks.size(), snapshot.prefixes.size());
    if (!analytics.ok()) return analytics.error();
    snapshot.analytics = std::move(analytics).value();
  }
  return snapshot;
}

util::Result<std::uint64_t> write_snapshot_file(const TelescopeSnapshot& snapshot,
                                                const std::string& path) {
  const std::vector<std::uint8_t> bytes = serialize_snapshot(snapshot);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return err("snapshot.io", "cannot open " + path + " for writing");
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) return err("snapshot.io", "short write to " + path);
  return static_cast<std::uint64_t>(bytes.size());
}

util::Result<TelescopeSnapshot> read_snapshot_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return err("snapshot.io", "cannot open " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  if (size > 0) in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) return err("snapshot.io", "short read from " + path);
  return parse_snapshot(bytes);
}

}  // namespace mtscope::serve
