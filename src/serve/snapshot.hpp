// Telescope snapshot: the versioned, checksummed on-disk form of one
// inference run (DESIGN.md §10).
//
// The paper's end product is a map from /24 to classification that
// downstream consumers query ("is traffic to this block IBR?") — the way
// operational telescope feeds are consumed.  The pipeline produces that
// map once per run; this module persists it so a serving process can load
// it in milliseconds and answer lookups at memory speed, instead of
// re-collecting a week of flow data per question.
//
// On-disk layout (all integers little-endian; see util/bytes.hpp):
//
//   header   : magic "MTSNAP\r\n" (8) | version u16 | flags u16 |
//              section_count u32 | file_size u64                   = 24 B
//   table    : section_count x { kind u32 | crc32 u32 |
//              offset u64 | length u64 }                           = 24 B each
//   table_crc: u32 over every byte before it (header + table)
//   sections : payloads, contiguous, in table order
//
// Version 1 carries exactly four sections: META (run provenance), FUNNEL
// (Figure 2 counters + class totals), PREFIXES (deduplicated covering BGP
// announcements), BLOCKS (sorted /24 records packing class + prefix id).
// Version 2 appends a fifth ANALYTICS section (block labels, top-port
// cells, per-prefix day series, outage events, service rankings, scanner
// profiles — DESIGN.md §15).  The writer emits version 1 when a snapshot
// carries no analytics, so analytics-free snapshots are byte-identical to
// what a v1 writer produced; with analytics attached it emits version 2
// with all five sections.  Readers accept both.
// Readers reject unknown magic, versions from the future, truncation, CRC
// mismatches and malformed payloads with typed util::Error codes
// ("snapshot.bad_magic", "snapshot.unsupported_version",
// "snapshot.truncated", "snapshot.bad_crc", "snapshot.bad_section",
// "snapshot.io") — never by crashing.  Serialization is deterministic:
// parse + re-serialize reproduces the input byte for byte.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "analytics/outage.hpp"
#include "analytics/scanner.hpp"
#include "net/ipv4.hpp"
#include "net/prefix.hpp"
#include "pipeline/inference.hpp"
#include "util/result.hpp"

namespace mtscope::routing {
class Rib;
}

namespace mtscope::serve {

inline constexpr std::uint16_t kSnapshotVersion = 2;

/// Step-7 verdict for one /24 held in a snapshot.
enum class BlockClass : std::uint8_t { kDark = 0, kUnclean = 1, kGray = 2 };

[[nodiscard]] std::string_view to_string(BlockClass cls) noexcept;

/// Provenance of the inference run a snapshot captures.  Everything here
/// is written verbatim and read back verbatim — `created_unix_s` is caller
/// supplied so serialization stays a pure function of the struct.
struct RunMetadata {
  std::uint64_t seed = 0;
  std::uint64_t spoof_tolerance_pkts = 0;
  std::uint64_t flows_ingested = 0;
  std::uint64_t created_unix_s = 0;
  std::uint32_t threads = 1;
  std::uint32_t shards = 1;
  std::uint32_t days = 1;
  std::string source;  // free-form: simulator scale, IXP selection, ...

  friend bool operator==(const RunMetadata&, const RunMetadata&) = default;
};

/// One deduplicated covering BGP announcement (step 5's witness).
struct PrefixEntry {
  std::uint32_t base = 0;        // network address, host order
  std::uint32_t origin_asn = 0;  // origin AS of the announcement
  std::uint8_t length = 0;       // prefix length

  [[nodiscard]] net::Prefix prefix() const { return net::Prefix(net::Ipv4Addr(base), length); }

  friend bool operator==(const PrefixEntry&, const PrefixEntry&) = default;
};

/// One classified /24: block index and class packed into a word, plus the
/// id of its covering announcement in the prefix table.
struct BlockEntry {
  static constexpr std::uint32_t kNoPrefix = 0xffffffffu;

  std::uint32_t packed = 0;              // bits 0..23 block index, 24..25 class
  std::uint32_t prefix_id = kNoPrefix;   // index into TelescopeSnapshot::prefixes

  [[nodiscard]] static BlockEntry make(net::Block24 block, BlockClass cls,
                                       std::uint32_t prefix_id) noexcept {
    return {block.index() | (std::uint32_t{static_cast<std::uint8_t>(cls)} << 24), prefix_id};
  }

  [[nodiscard]] std::uint32_t block_index() const noexcept { return packed & 0x00ffffffu; }
  [[nodiscard]] net::Block24 block() const noexcept { return net::Block24(block_index()); }
  [[nodiscard]] BlockClass cls() const noexcept {
    return static_cast<BlockClass>((packed >> 24) & 0x3u);
  }

  friend bool operator==(const BlockEntry&, const BlockEntry&) = default;
};

/// Geography / network-type label for one published block, index-aligned
/// with TelescopeSnapshot::blocks.  `country` is an ISO 3166 alpha-2 code
/// ("--" when unknown); `continent` and `net_type` are geo::Continent and
/// geo::NetType ordinals.
struct BlockLabel {
  char country[2] = {'-', '-'};
  std::uint8_t continent = 0;
  std::uint8_t net_type = 0;

  friend bool operator==(const BlockLabel&, const BlockLabel&) = default;
};

/// One (block, destination port) aggregate over the analysis window — the
/// snapshot keeps each published block's top ports, not the full matrix.
struct PortCell {
  std::uint32_t block = 0;
  std::uint16_t port = 0;
  std::uint64_t packets = 0;

  friend bool operator==(const PortCell&, const PortCell&) = default;
};

/// One nonzero day bin of a prefix's IBR series (prefix_id indexes
/// TelescopeSnapshot::prefixes); silent days are implicit zeros.
struct SeriesPoint {
  std::uint32_t prefix_id = 0;
  std::uint32_t day = 0;
  std::uint64_t packets = 0;

  friend bool operator==(const SeriesPoint&, const SeriesPoint&) = default;
};

/// The ANALYTICS section payload: everything the analytics verbs and the
/// `analyze` command answer from, derived from the IBR matrix when the
/// snapshot is built (serve/analytics_format.hpp) and persisted so a
/// serving process never needs the matrix itself.
struct AnalyticsData {
  std::uint32_t first_day = 0;    // earliest day bin in the window
  std::uint32_t window_days = 0;  // day bins spanned (0 only when empty)
  std::vector<BlockLabel> labels;               // aligned with blocks
  std::vector<PortCell> cells;                  // sorted (block, port)
  std::vector<SeriesPoint> series;              // sorted (prefix_id, day)
  std::vector<analytics::OutageEvent> outages;  // detector output order
  std::vector<analytics::ServicePortStat> services;  // (continent, net_type, rank)
  std::vector<analytics::ScannerProfile> scanners;   // packets desc, src asc

  friend bool operator==(const AnalyticsData&, const AnalyticsData&) = default;
};

/// The in-memory image of one snapshot — what build_snapshot() produces,
/// serialize_snapshot() writes and parse_snapshot() restores.  `blocks` is
/// strictly sorted by block index (parse rejects anything else), which is
/// the invariant TelescopeIndex's lookup structure relies on.
struct TelescopeSnapshot {
  RunMetadata meta;
  pipeline::FunnelCounts funnel;
  std::uint64_t dark_count = 0;
  std::uint64_t unclean_count = 0;
  std::uint64_t gray_count = 0;
  std::vector<PrefixEntry> prefixes;
  std::vector<BlockEntry> blocks;
  /// Engaged iff the snapshot was built with analytics; selects the wire
  /// version (1 absent, 2 present).
  std::optional<AnalyticsData> analytics;

  friend bool operator==(const TelescopeSnapshot&, const TelescopeSnapshot&) = default;
};

/// Capture `result` (plus each classified block's covering announcement
/// from `rib`) into a snapshot.  Deterministic: block records ascend by
/// index, the prefix table ascends by (base, length) and holds only
/// referenced announcements.
[[nodiscard]] TelescopeSnapshot build_snapshot(const pipeline::InferenceResult& result,
                                               const routing::Rib& rib, RunMetadata meta);

/// The exact file bytes for `snapshot` (header, table, checksums, payload).
[[nodiscard]] std::vector<std::uint8_t> serialize_snapshot(const TelescopeSnapshot& snapshot);

/// Validate and decode file bytes.  Every failure is a typed Error; the
/// input is never modified and no partial snapshot escapes.
[[nodiscard]] util::Result<TelescopeSnapshot> parse_snapshot(std::span<const std::uint8_t> data);

/// Streamed-file convenience wrappers around serialize/parse.
[[nodiscard]] util::Result<std::uint64_t> write_snapshot_file(const TelescopeSnapshot& snapshot,
                                                              const std::string& path);
[[nodiscard]] util::Result<TelescopeSnapshot> read_snapshot_file(const std::string& path);

}  // namespace mtscope::serve
