#include "serve/server.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <string_view>
#include <utility>
#include <vector>

#include "util/strings.hpp"

namespace mtscope::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// The one server receiving process signals (install_signal_handlers).
std::atomic<QueryServer*> g_signal_server{nullptr};

extern "C" void mtscope_serve_signal_handler(int signum) {
  // Async-signal-safe: one atomic load plus the eventfd write inside the
  // request_* methods.
  QueryServer* server = g_signal_server.load(std::memory_order_acquire);
  if (server == nullptr) return;
  if (signum == SIGHUP) {
    server->request_reload();
  } else {
    server->request_stop();
  }
}

util::Error socket_error(const char* what) {
  return util::make_error("serve.socket",
                          std::string(what) + ": " + std::strerror(errno));
}

/// How much of a garbage request line gets echoed back in the "invalid"
/// reply — enough to recognize, never enough to amplify.
constexpr std::size_t kInvalidEchoBytes = 64;

}  // namespace

std::string format_verdict(net::Ipv4Addr addr,
                           const std::optional<TelescopeIndex::Verdict>& verdict) {
  if (!verdict.has_value()) return addr.to_string() + " none";
  std::string out = addr.to_string();
  out += ' ';
  out += to_string(verdict->cls);
  out += ' ';
  out += verdict->prefix ? verdict->prefix->to_string() : "-";
  out += ' ';
  out += verdict->origin ? verdict->origin->to_string() : "-";
  return out;
}

/// Per-client state.  `out` is drained from `out_off` so flushing never
/// memmoves; the string is recycled once empty.
struct QueryServer::Connection {
  int fd = -1;
  std::string in;
  std::string out;
  std::size_t out_off = 0;
  Clock::time_point last_activity{};
  std::uint32_t interest = 0;
  bool paused = false;       // back-pressure: reply backlog over the cap
  bool read_closed = false;  // peer EOF (or drain): no further requests
  bool fatal = false;        // protocol violation: close once out drains

  [[nodiscard]] std::size_t pending() const noexcept { return out.size() - out_off; }
};

QueryServer::QueryServer(ServerConfig config, obs::MetricsRegistry* metrics)
    : config_(std::move(config)), metrics_(metrics) {
  if (metrics_ != nullptr) {
    queries_counter_ = &metrics_->counter("serve.server.queries");
    invalid_counter_ = &metrics_->counter("serve.server.invalid");
    request_timer_ = &metrics_->timer("serve.server.request_us");
  }
}

QueryServer::~QueryServer() {
  QueryServer* expected = this;
  g_signal_server.compare_exchange_strong(expected, nullptr);
  for (auto& [fd, conn] : conns_) {
    loop_.remove(fd);
    ::close(fd);
  }
  conns_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
}

util::Result<bool> QueryServer::start() {
  const auto installed = manager_.load_and_install(config_.snapshot_path, metrics_);
  if (!installed.ok()) return installed.error();

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return socket_error("socket");
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(config_.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    return socket_error("bind");
  }
  if (::listen(listen_fd_, 128) != 0) return socket_error("listen");

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    return socket_error("getsockname");
  }
  bound_port_ = ntohs(bound.sin_port);

  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) return socket_error("eventfd");

  loop_.add(listen_fd_, EPOLLIN);
  loop_.add(wake_fd_, EPOLLIN);
  if (config_.watch_interval_ms > 0) {
    // Record the identity of the file just loaded so the first poll only
    // fires once a publisher actually replaces it.
    watch_sig_valid_ = stat_snapshot(watch_sig_);
    next_watch_ = Clock::now() + std::chrono::milliseconds(config_.watch_interval_ms);
  }
  started_ = true;
  return true;
}

void QueryServer::request_stop() noexcept {
  stop_requested_.store(true, std::memory_order_release);
  const std::uint64_t one = 1;
  if (wake_fd_ >= 0) {
    [[maybe_unused]] const auto n = ::write(wake_fd_, &one, sizeof(one));
  }
}

void QueryServer::request_reload() noexcept {
  reload_requested_.store(true, std::memory_order_release);
  const std::uint64_t one = 1;
  if (wake_fd_ >= 0) {
    [[maybe_unused]] const auto n = ::write(wake_fd_, &one, sizeof(one));
  }
}

void QueryServer::install_signal_handlers() {
  g_signal_server.store(this, std::memory_order_release);
  struct sigaction action{};
  action.sa_handler = mtscope_serve_signal_handler;
  ::sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: epoll_wait returns EINTR and re-checks flags
  ::sigaction(SIGHUP, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
}

ServerStats QueryServer::stats() const noexcept {
  ServerStats s;
  s.connections = connections_.load(std::memory_order_relaxed);
  s.active = active_.load(std::memory_order_relaxed);
  s.queries = queries_.load(std::memory_order_relaxed);
  s.invalid = invalid_.load(std::memory_order_relaxed);
  s.reloads = reloads_.load(std::memory_order_relaxed);
  s.reload_failures = reload_failures_.load(std::memory_order_relaxed);
  s.timeouts = timeouts_.load(std::memory_order_relaxed);
  s.drops = drops_.load(std::memory_order_relaxed);
  return s;
}

int QueryServer::run() {
  if (!started_) return 1;
  std::vector<EventLoop::Event> events;
  while (true) {
    if (draining_) {
      if (conns_.empty()) break;
      if (Clock::now() >= drain_deadline_) {
        for (auto it = conns_.begin(); it != conns_.end();) {
          const int fd = it->first;
          ++it;
          close_connection(fd);
        }
        break;
      }
    }

    loop_.wait(events, next_timeout_ms());
    for (const auto& event : events) {
      if (event.fd == wake_fd_) {
        handle_wake();
      } else if (event.fd == listen_fd_) {
        accept_ready();
      } else {
        connection_ready(event.fd, event.events);
      }
    }
    // Signals may land without a consumable wake event (EINTR during
    // epoll_wait); the flags are the source of truth.
    if (reload_requested_.load(std::memory_order_acquire) ||
        stop_requested_.load(std::memory_order_acquire)) {
      handle_wake();
    }
    sweep_idle();
    check_watch();
  }
  return 0;
}

int QueryServer::next_timeout_ms() const {
  const bool watching = config_.watch_interval_ms > 0 && !draining_;
  if (conns_.empty() && !draining_ && !watching) return -1;
  const auto now = Clock::now();
  std::int64_t timeout_ms = config_.idle_timeout_ms;
  if (watching) {
    // Wake for the next snapshot poll even with zero connections open.
    const auto watch_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(next_watch_ - now).count();
    timeout_ms = std::min(timeout_ms, watch_ms);
  }
  for (const auto& [fd, conn] : conns_) {
    const auto idle_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(now - conn->last_activity)
            .count();
    timeout_ms = std::min(timeout_ms, std::int64_t{config_.idle_timeout_ms} - idle_ms);
  }
  if (draining_) {
    const auto drain_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(drain_deadline_ - now).count();
    timeout_ms = std::min(timeout_ms, drain_ms);
  }
  // +1 rounds the sub-millisecond remainder up so a deadline poll never
  // spins hot at timeout 0.
  return static_cast<int>(std::clamp<std::int64_t>(timeout_ms + 1, 1, 60'000));
}

void QueryServer::handle_wake() {
  std::uint64_t drained = 0;
  [[maybe_unused]] const auto n = ::read(wake_fd_, &drained, sizeof(drained));

  if (reload_requested_.exchange(false, std::memory_order_acq_rel)) {
    do_reload();
  }
  if (stop_requested_.load(std::memory_order_acquire) && !draining_) {
    begin_drain();
  }
}

void QueryServer::do_reload() {
  const auto installed = manager_.load_and_install(config_.snapshot_path, metrics_);
  if (installed.ok()) {
    reloads_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_ != nullptr) metrics_->counter("serve.server.reloads").add(1);
  } else {
    // The previous epoch keeps serving; operators see the failure in the
    // stats and the unchanged serve.snapshot.epoch gauge.
    reload_failures_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_ != nullptr) metrics_->counter("serve.server.reload_failures").add(1);
  }
  // Either way the watcher's reference point is what is on disk now: a
  // failed load must not be re-attempted every poll tick, only once the
  // publisher replaces the file again.
  if (config_.watch_interval_ms > 0) watch_sig_valid_ = stat_snapshot(watch_sig_);
}

bool QueryServer::stat_snapshot(FileSig& out) const noexcept {
  struct ::stat st{};
  if (::stat(config_.snapshot_path.c_str(), &st) != 0) return false;
  out.dev = static_cast<std::uint64_t>(st.st_dev);
  out.ino = static_cast<std::uint64_t>(st.st_ino);
  out.size = static_cast<std::int64_t>(st.st_size);
  out.mtime_s = static_cast<std::int64_t>(st.st_mtim.tv_sec);
  out.mtime_ns = static_cast<std::int64_t>(st.st_mtim.tv_nsec);
  return true;
}

void QueryServer::check_watch() {
  if (config_.watch_interval_ms <= 0 || draining_) return;
  const auto now = Clock::now();
  if (now < next_watch_) return;
  next_watch_ = now + std::chrono::milliseconds(config_.watch_interval_ms);
  FileSig sig;
  if (!stat_snapshot(sig)) return;  // transient (publisher mid-swap?); next tick retries
  if (watch_sig_valid_ && sig == watch_sig_) return;
  do_reload();
}

void QueryServer::begin_drain() {
  draining_ = true;
  drain_deadline_ = Clock::now() + std::chrono::milliseconds(config_.drain_timeout_ms);
  if (listen_fd_ >= 0) {
    loop_.remove(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Answer everything already received, then let flush_output /
  // update_interest retire each connection as its backlog empties.  A
  // connection whose backlog fits the socket buffer right now must be
  // closed here — with reads off and nothing pending its interest mask is
  // empty, so no event would ever fire to retire it.
  for (auto it = conns_.begin(); it != conns_.end();) {
    Connection& conn = *it->second;
    ++it;  // close_connection erases the entry
    conn.read_closed = true;
    if (!process_input(conn) || !flush_output(conn) || conn.pending() == 0) {
      close_connection(conn.fd);
      continue;
    }
    update_interest(conn);
  }
}

void QueryServer::accept_ready() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure (e.g. ECONNABORTED): keep serving
    }
    if (conns_.size() >= static_cast<std::size_t>(config_.max_conns)) {
      ::close(fd);
      drops_.fetch_add(1, std::memory_order_relaxed);
      if (metrics_ != nullptr) metrics_->counter("serve.server.drops").add(1);
      continue;
    }
    const int enable = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));

    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->last_activity = Clock::now();
    conn->interest = EPOLLIN | EPOLLRDHUP;
    loop_.add(fd, conn->interest);
    conns_.emplace(fd, std::move(conn));
    active_.store(conns_.size(), std::memory_order_relaxed);

    connections_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_ != nullptr) {
      metrics_->counter("serve.server.connections").add(1);
      metrics_->gauge("serve.server.active").set(static_cast<std::int64_t>(conns_.size()));
    }
  }
}

void QueryServer::connection_ready(int fd, std::uint32_t events) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;  // closed earlier in this dispatch batch
  Connection& conn = *it->second;

  if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    close_connection(fd);
    return;
  }

  if ((events & (EPOLLIN | EPOLLRDHUP)) != 0 && !conn.read_closed && !conn.fatal) {
    // One bounded chunk per event: level-triggered epoll re-arms while
    // input remains, so a pipelining client cannot balloon `in`/`out`
    // between back-pressure checks.
    char chunk[16 * 1024];
    const auto n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      conn.in.append(chunk, static_cast<std::size_t>(n));
      conn.last_activity = Clock::now();
      if (!process_input(conn)) {
        close_connection(fd);
        return;
      }
    } else if (n == 0) {
      // Peer finished sending (possibly via shutdown(SHUT_WR)); answer
      // what is buffered, flush, then close.
      conn.read_closed = true;
      if (!process_input(conn)) {
        close_connection(fd);
        return;
      }
    } else if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      close_connection(fd);
      return;
    }
  }

  if (!flush_output(conn)) {
    close_connection(fd);
    return;
  }
  if ((conn.read_closed || conn.fatal) && conn.pending() == 0) {
    close_connection(fd);
    return;
  }
  update_interest(conn);
}

bool QueryServer::process_input(Connection& conn) {
  // One index grab per batch: the lock-free reader path.  Everything in
  // this batch is answered from one consistent epoch even if a reload
  // lands concurrently with the next batch.
  const std::shared_ptr<const TelescopeIndex> index = manager_.current();
  std::size_t start = 0;
  for (;;) {
    const std::size_t newline = conn.in.find('\n', start);
    if (newline == std::string::npos) break;
    answer_line(conn, std::string_view(conn.in).substr(start, newline - start), *index);
    start = newline + 1;
  }
  conn.in.erase(0, start);

  if (conn.in.size() > config_.max_request_bytes) {
    // A "line" that exceeds the cap without a newline is a protocol
    // violation, not a slow write: answer once, then hang up.
    conn.out.append(std::string_view(conn.in).substr(0, kInvalidEchoBytes));
    conn.out += " invalid\n";
    conn.in.clear();
    conn.fatal = true;
    invalid_.fetch_add(1, std::memory_order_relaxed);
    drops_.fetch_add(1, std::memory_order_relaxed);
    if (invalid_counter_ != nullptr) invalid_counter_->add(1);
    if (metrics_ != nullptr) metrics_->counter("serve.server.drops").add(1);
  }
  if (conn.pending() > config_.max_pending_bytes) conn.paused = true;
  return true;
}

void QueryServer::answer_line(Connection& conn, std::string_view line,
                              const TelescopeIndex& index) {
  const auto token = util::trim(line);  // strips CRLF and padding
  if (token.empty() || token.front() == '#') return;

  const auto t0 = request_timer_ != nullptr ? Clock::now() : Clock::time_point{};
  const auto addr = net::Ipv4Addr::parse(token);
  if (!addr.has_value()) {
    conn.out.append(token.substr(0, kInvalidEchoBytes));
    conn.out += " invalid\n";
    invalid_.fetch_add(1, std::memory_order_relaxed);
    if (invalid_counter_ != nullptr) invalid_counter_->add(1);
  } else {
    conn.out += format_verdict(*addr, index.lookup(*addr));
    conn.out += '\n';
  }
  queries_.fetch_add(1, std::memory_order_relaxed);
  if (queries_counter_ != nullptr) queries_counter_->add(1);
  if (request_timer_ != nullptr) {
    request_timer_->record_us(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - t0).count()));
  }
}

bool QueryServer::flush_output(Connection& conn) {
  while (conn.pending() > 0) {
    const auto n = ::send(conn.fd, conn.out.data() + conn.out_off, conn.pending(),
                          MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_off += static_cast<std::size_t>(n);
      conn.last_activity = Clock::now();
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;  // EPIPE / ECONNRESET: the peer is gone
  }
  if (conn.pending() == 0 && conn.out_off > 0) {
    conn.out.clear();
    conn.out_off = 0;
  }
  if (conn.paused && conn.pending() < config_.max_pending_bytes / 2) {
    conn.paused = false;  // back-pressure released
  }
  return true;
}

void QueryServer::update_interest(Connection& conn) {
  std::uint32_t wanted = 0;
  if (!conn.paused && !conn.read_closed && !conn.fatal) wanted |= EPOLLIN | EPOLLRDHUP;
  if (conn.pending() > 0) wanted |= EPOLLOUT;
  if (wanted != conn.interest) {
    loop_.modify(conn.fd, wanted);
    conn.interest = wanted;
  }
}

void QueryServer::close_connection(int fd) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  loop_.remove(fd);
  ::close(fd);
  conns_.erase(it);
  active_.store(conns_.size(), std::memory_order_relaxed);
  if (metrics_ != nullptr) {
    metrics_->gauge("serve.server.active").set(static_cast<std::int64_t>(conns_.size()));
  }
}

void QueryServer::sweep_idle() {
  if (conns_.empty()) return;
  const auto now = Clock::now();
  const auto limit = std::chrono::milliseconds(config_.idle_timeout_ms);
  std::vector<int> expired;
  for (const auto& [fd, conn] : conns_) {
    if (now - conn->last_activity > limit) expired.push_back(fd);
  }
  for (const int fd : expired) {
    // Covers the back-pressured slow reader: paused connections make no
    // read progress and a full socket buffer blocks write progress, so
    // their last_activity freezes until this sweep retires them.
    timeouts_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_ != nullptr) metrics_->counter("serve.server.timeouts").add(1);
    close_connection(fd);
  }
}

}  // namespace mtscope::serve
