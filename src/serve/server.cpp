#include "serve/server.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <span>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "serve/analytics_format.hpp"
#include "serve/wire.hpp"
#include "util/bytes.hpp"
#include "util/strings.hpp"

namespace mtscope::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// The one server receiving process signals (install_signal_handlers).
std::atomic<QueryServer*> g_signal_server{nullptr};

extern "C" void mtscope_serve_signal_handler(int signum) {
  // Async-signal-safe: one atomic load plus the eventfd writes inside the
  // request_* methods.
  QueryServer* server = g_signal_server.load(std::memory_order_acquire);
  if (server == nullptr) return;
  if (signum == SIGHUP) {
    server->request_reload();
  } else {
    server->request_stop();
  }
}

util::Error socket_error(const char* what) {
  return util::make_error("serve.socket",
                          std::string(what) + ": " + std::strerror(errno));
}

/// How much of a garbage request line gets echoed back in the "invalid"
/// reply — enough to recognize, never enough to amplify.
constexpr std::size_t kInvalidEchoBytes = 64;

}  // namespace

std::string format_verdict(net::Ipv4Addr addr,
                           const std::optional<TelescopeIndex::Verdict>& verdict) {
  if (!verdict.has_value()) return addr.to_string() + " none";
  std::string out = addr.to_string();
  out += ' ';
  out += to_string(verdict->cls);
  out += ' ';
  out += verdict->prefix ? verdict->prefix->to_string() : "-";
  out += ' ';
  out += verdict->origin ? verdict->origin->to_string() : "-";
  return out;
}

void append_sanitized_echo(std::string& out, std::string_view token, std::size_t limit) {
  const std::size_t n = std::min(token.size(), limit);
  for (std::size_t i = 0; i < n; ++i) {
    const auto byte = static_cast<unsigned char>(token[i]);
    out += (byte >= 0x20 && byte <= 0x7e) ? token[i] : '.';
  }
}

/// Per-client state.  `out` is drained from `out_off` so flushing never
/// memmoves; the string is recycled once empty.  Fresh replies for a batch
/// are built in the reactor's scratch buffer and coalesced with the
/// leftover `out` bytes into one sendmsg — only what the kernel refuses
/// (or the fairness cap defers) is copied into `out`.
struct QueryServer::Connection {
  /// Decided by the first bytes: exactly the MTBIN preamble switches to
  /// fixed-width binary frames, anything else locks in the line protocol.
  /// Undecided only while the received bytes are a strict prefix of the
  /// preamble.
  enum class Proto : std::uint8_t { kUndecided, kLine, kBinary };

  int fd = -1;
  std::string in;
  std::string out;
  std::size_t out_off = 0;
  Clock::time_point last_activity{};
  std::uint32_t interest = 0;
  Proto proto = Proto::kUndecided;
  bool paused = false;       // back-pressure: reply backlog over the cap
  bool read_closed = false;  // peer EOF (or drain): no further requests
  bool fatal = false;        // protocol violation: close once out drains

  [[nodiscard]] std::size_t pending() const noexcept { return out.size() - out_off; }
};

// ---------------------------------------------------------------------------
// Reactor: one event loop, one SO_REUSEPORT listener, one connection
// table.  Everything it mutates is thread-confined; it reaches into the
// parent only for the shared SnapshotManager, the config, and the relaxed
// monotonic counters.

class QueryServer::Reactor {
 public:
  Reactor(QueryServer& server, int index)
      : server_(server), index_(index) {
    if (server_.metrics_ != nullptr) {
      registry_ = std::make_unique<obs::MetricsRegistry>();
      queries_counter_ = &registry_->counter("serve.server.queries");
      invalid_counter_ = &registry_->counter("serve.server.invalid");
      connections_counter_ = &registry_->counter("serve.server.connections");
      drops_counter_ = &registry_->counter("serve.server.drops");
      timeouts_counter_ = &registry_->counter("serve.server.timeouts");
      partial_flush_counter_ = &registry_->counter("serve.server.partial_flushes");
      active_gauge_ = &registry_->gauge("serve.server.active");
      request_timer_ = &registry_->timer("serve.server.request_us");
    }
  }

  ~Reactor() {
    for (auto& [fd, conn] : conns_) {
      loop_.remove(fd);
      ::close(fd);
    }
    conns_.clear();
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
  }

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Bind + listen on `port` (0 = kernel-assigned, first reactor only)
  /// and create the wake eventfd.  With more than one reactor every
  /// listener sets SO_REUSEPORT so the kernel spreads accepts.
  [[nodiscard]] util::Result<std::uint16_t> open(std::uint16_t port) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) return socket_error("socket");
    const int enable = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
    if (server_.config_.reactors > 1) {
      if (::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEPORT, &enable, sizeof(enable)) != 0) {
        return socket_error("setsockopt(SO_REUSEPORT)");
      }
    }

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    addr.sin_port = htons(port);
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      return socket_error("bind");
    }
    if (::listen(listen_fd_, 128) != 0) return socket_error("listen");

    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
      return socket_error("getsockname");
    }

    wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (wake_fd_ < 0) return socket_error("eventfd");

    loop_.add(listen_fd_, EPOLLIN);
    loop_.add(wake_fd_, EPOLLIN);
    return ntohs(bound.sin_port);
  }

  /// Async-signal-safe: one write(2) on an fd that is set once in open()
  /// and never changes while the reactor may run.
  void wake() noexcept {
    const std::uint64_t one = 1;
    if (wake_fd_ >= 0) {
      [[maybe_unused]] const auto n = ::write(wake_fd_, &one, sizeof(one));
    }
  }

  void run() {
    std::vector<EventLoop::Event> events;
    while (true) {
      if (draining_) {
        if (conns_.empty()) break;
        if (Clock::now() >= drain_deadline_) {
          for (auto it = conns_.begin(); it != conns_.end();) {
            const int fd = it->first;
            ++it;
            close_connection(fd);
          }
          break;
        }
      }

      loop_.wait(events, next_timeout_ms());
      for (const auto& event : events) {
        if (event.fd == wake_fd_) {
          handle_wake();
        } else if (event.fd == listen_fd_) {
          accept_ready();
        } else {
          connection_ready(event.fd, event.events);
        }
      }
      // Signals may land without a consumable wake event (EINTR during
      // epoll_wait); the flags are the source of truth.
      if (server_.reload_requested_.load(std::memory_order_acquire) ||
          server_.stop_requested_.load(std::memory_order_acquire)) {
        handle_wake();
      }
      maybe_sweep();
      if (index_ == 0) server_.check_watch();
    }
  }

  [[nodiscard]] std::uint64_t accepted() const noexcept {
    return accepted_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const obs::MetricsRegistry* registry() const noexcept {
    return registry_.get();
  }

 private:
  /// The idle sweep runs on a coarse deadline — a quarter of the idle
  /// timeout — instead of recomputing every connection's deadline on
  /// every wakeup, which was O(conns) per event.  A connection is retired
  /// between idle_timeout and idle_timeout + cadence after its last
  /// progress, which the timeout contract allows (it promises "no sooner
  /// than", not "exactly at").
  [[nodiscard]] std::int64_t sweep_cadence_ms() const noexcept {
    return std::max<std::int64_t>(1, server_.config_.idle_timeout_ms / 4);
  }

  [[nodiscard]] int next_timeout_ms() const {
    const bool watching =
        index_ == 0 && server_.config_.watch_interval_ms > 0 && !draining_;
    if (conns_.empty() && !draining_ && !watching) return -1;
    const auto now = Clock::now();
    std::int64_t timeout_ms = 60'000;
    const auto until = [&](Clock::time_point deadline) {
      return std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now).count();
    };
    if (!conns_.empty()) timeout_ms = std::min(timeout_ms, until(next_sweep_));
    if (watching) timeout_ms = std::min(timeout_ms, until(server_.next_watch_));
    if (draining_) timeout_ms = std::min(timeout_ms, until(drain_deadline_));
    // +1 rounds the sub-millisecond remainder up so a deadline poll never
    // spins hot at timeout 0.
    return static_cast<int>(std::clamp<std::int64_t>(timeout_ms + 1, 1, 60'000));
  }

  void handle_wake() {
    std::uint64_t drained = 0;
    [[maybe_unused]] const auto n = ::read(wake_fd_, &drained, sizeof(drained));

    // Reactor 0 owns the reload: the SnapshotManager install is a single
    // epoch swap every reactor's next batch observes, so loading once is
    // both sufficient and what keeps the file read off the other loops.
    if (index_ == 0 &&
        server_.reload_requested_.exchange(false, std::memory_order_acq_rel)) {
      server_.do_reload();
    }
    if (server_.stop_requested_.load(std::memory_order_acquire) && !draining_) {
      begin_drain();
    }
  }

  void begin_drain() {
    draining_ = true;
    drain_deadline_ =
        Clock::now() + std::chrono::milliseconds(server_.config_.drain_timeout_ms);
    if (listen_fd_ >= 0) {
      loop_.remove(listen_fd_);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    // Answer everything already received, then let flush_output /
    // update_interest retire each connection as its backlog empties.  A
    // connection whose backlog fits the socket buffer right now must be
    // closed here — with reads off and nothing pending its interest mask
    // is empty, so no event would ever fire to retire it.
    for (auto it = conns_.begin(); it != conns_.end();) {
      Connection& conn = *it->second;
      ++it;  // close_connection erases the entry
      conn.read_closed = true;
      batch_.clear();
      process_input(conn);
      if (!flush_output(conn, batch_) || conn.pending() == 0) {
        close_connection(conn.fd);
        continue;
      }
      update_interest(conn);
    }
  }

  void accept_ready() {
    for (;;) {
      const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        return;  // transient accept failure (e.g. ECONNABORTED): keep serving
      }
      // max_conns caps the whole server; with several reactors accepting
      // concurrently the check is best-effort (a burst can overshoot by
      // at most reactors-1), which is the usual REUSEPORT trade.
      if (server_.active_.load(std::memory_order_relaxed) >=
          static_cast<std::uint64_t>(server_.config_.max_conns)) {
        ::close(fd);
        server_.drops_.fetch_add(1, std::memory_order_relaxed);
        if (drops_counter_ != nullptr) drops_counter_->add(1);
        continue;
      }
      const int enable = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));

      auto conn = std::make_unique<Connection>();
      conn->fd = fd;
      conn->last_activity = Clock::now();
      conn->interest = EPOLLIN | EPOLLRDHUP;
      loop_.add(fd, conn->interest);
      if (conns_.empty()) next_sweep_ = Clock::now() + std::chrono::milliseconds(sweep_cadence_ms());
      conns_.emplace(fd, std::move(conn));
      server_.active_.fetch_add(1, std::memory_order_relaxed);

      accepted_.fetch_add(1, std::memory_order_relaxed);
      server_.connections_.fetch_add(1, std::memory_order_relaxed);
      if (connections_counter_ != nullptr) {
        connections_counter_->add(1);
        active_gauge_->set(static_cast<std::int64_t>(conns_.size()));
      }
    }
  }

  void connection_ready(int fd, std::uint32_t events) {
    const auto it = conns_.find(fd);
    if (it == conns_.end()) return;  // closed earlier in this dispatch batch
    Connection& conn = *it->second;

    if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
      close_connection(fd);
      return;
    }

    batch_.clear();
    if ((events & (EPOLLIN | EPOLLRDHUP)) != 0 && !conn.read_closed && !conn.fatal) {
      // One bounded chunk per event: level-triggered epoll re-arms while
      // input remains, so a pipelining client cannot balloon `in`/`out`
      // between back-pressure checks.
      char chunk[16 * 1024];
      std::size_t want = sizeof(chunk);
      if (conn.proto != Connection::Proto::kBinary && !conn.in.empty()) {
        // A partial line (or preamble prefix) is already buffered: cap the
        // read so `in` can never grow past max_request_bytes plus the one
        // byte that proves the violation — previously a client could park
        // max_request_bytes + 16KiB - 1 unanswered bytes here.  Binary
        // mode is exempt: frames are fixed-width, so the residual after
        // process_input is always shorter than one frame.
        const std::size_t cap = server_.config_.max_request_bytes + 1;
        want = std::min(want, cap > conn.in.size() ? cap - conn.in.size() : std::size_t{1});
      }
      const auto n = ::recv(fd, chunk, want, 0);
      if (n > 0) {
        conn.in.append(chunk, static_cast<std::size_t>(n));
        conn.last_activity = Clock::now();
        process_input(conn);
      } else if (n == 0) {
        // Peer finished sending (possibly via shutdown(SHUT_WR)); answer
        // what is buffered, flush, then close.
        conn.read_closed = true;
        process_input(conn);
      } else if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
        close_connection(fd);
        return;
      }
    }

    if (!flush_output(conn, batch_)) {
      close_connection(fd);
      return;
    }
    if (conn.pending() > server_.config_.max_pending_bytes) conn.paused = true;
    if ((conn.read_closed || conn.fatal) && conn.pending() == 0) {
      close_connection(fd);
      return;
    }
    update_interest(conn);
  }

  /// Answer every complete request in `conn.in` — lines or MTBIN frames,
  /// per the negotiated protocol — appending the replies to the reactor's
  /// scratch batch buffer; the caller coalesces it into one sendmsg via
  /// flush_output(conn, batch_).
  void process_input(Connection& conn) {
    if (conn.proto == Connection::Proto::kUndecided && !negotiate(conn)) return;

    // One index grab per batch: the lock-free reader path.  Everything in
    // this batch is answered from one consistent epoch even if a reload
    // lands concurrently with the next batch.
    const std::shared_ptr<const TelescopeIndex> index = server_.manager_.current();
    if (conn.proto == Connection::Proto::kBinary) {
      process_binary(conn, *index);
      return;
    }

    std::size_t start = 0;
    for (;;) {
      const std::size_t newline = conn.in.find('\n', start);
      if (newline == std::string::npos) break;
      if (newline - start > server_.config_.max_request_bytes) {
        kill_overlong(conn, std::string_view(conn.in).substr(start, newline - start));
        return;
      }
      answer_line(std::string_view(conn.in).substr(start, newline - start), *index);
      start = newline + 1;
    }
    conn.in.erase(0, start);

    if (conn.in.size() > server_.config_.max_request_bytes) {
      kill_overlong(conn, conn.in);
    }
  }

  /// First bytes decide the protocol.  Exactly the MTBIN preamble flips
  /// the connection to binary frames; any divergence — which includes
  /// every line-protocol opener, since no dotted quad, comment or verb
  /// starts with "MTBIN/1\n" — locks in line mode with all bytes kept.
  /// A strict prefix of the preamble waits for more input, unless the
  /// peer already half-closed (then it is a line-mode leftover).
  /// Returns false while still undecided.
  bool negotiate(Connection& conn) {
    const std::size_t probe = std::min(conn.in.size(), wire::kPreamble.size());
    if (conn.in.compare(0, probe, wire::kPreamble.data(), probe) != 0) {
      conn.proto = Connection::Proto::kLine;
      return true;
    }
    if (probe == wire::kPreamble.size()) {
      conn.proto = Connection::Proto::kBinary;
      conn.in.erase(0, wire::kPreamble.size());
      return true;
    }
    if (conn.read_closed) {
      conn.proto = Connection::Proto::kLine;
      return true;
    }
    return false;
  }

  /// A request line past the cap — complete or still unterminated — is a
  /// protocol violation, not a slow write: one sanitized "invalid" reply,
  /// then hang up.  Per the counting contract it is a produced reply
  /// (queries) that was invalid (invalid) and killed the connection
  /// (drops).
  void kill_overlong(Connection& conn, std::string_view line) {
    append_sanitized_echo(batch_, line, kInvalidEchoBytes);
    batch_ += " invalid\n";
    conn.in.clear();
    conn.fatal = true;
    server_.queries_.fetch_add(1, std::memory_order_relaxed);
    server_.invalid_.fetch_add(1, std::memory_order_relaxed);
    server_.drops_.fetch_add(1, std::memory_order_relaxed);
    if (queries_counter_ != nullptr) queries_counter_->add(1);
    if (invalid_counter_ != nullptr) invalid_counter_->add(1);
    if (drops_counter_ != nullptr) drops_counter_->add(1);
  }

  /// Answer every complete fixed-width MTBIN frame.  A malformed frame
  /// gets one invalid-frame response and decoding resumes at the next
  /// 12-byte boundary — fixed widths mean a corrupt frame can never
  /// desync the stream, so the connection stays up.
  void process_binary(Connection& conn, const TelescopeIndex& index) {
    const std::span<const std::uint8_t> bytes(
        reinterpret_cast<const std::uint8_t*>(conn.in.data()), conn.in.size());
    std::size_t consumed = 0;
    while (bytes.size() - consumed >= wire::kRequestSize) {
      answer_frame(bytes.subspan(consumed, wire::kRequestSize), index);
      consumed += wire::kRequestSize;
    }
    conn.in.erase(0, consumed);
  }

  void answer_frame(std::span<const std::uint8_t> frame, const TelescopeIndex& index) {
    const auto t0 = request_timer_ != nullptr ? Clock::now() : Clock::time_point{};
    const auto decoded = wire::decode_request(frame);
    if (!decoded.ok()) {
      // The addr field is echoed only when the frame's seal held; after a
      // CRC failure no field is trustworthy, so the reply carries 0.
      const auto reason = wire::invalid_reason(decoded.error().code);
      const net::Ipv4Addr addr = reason == wire::InvalidReason::kBadCrc
                                     ? net::Ipv4Addr(0)
                                     : net::Ipv4Addr(util::le_get_u32(frame, 4));
      wire::append_response(batch_, wire::make_invalid_response(addr, reason));
      server_.invalid_.fetch_add(1, std::memory_order_relaxed);
      if (invalid_counter_ != nullptr) invalid_counter_->add(1);
    } else if (decoded.value().verb == wire::Verb::kLookup) {
      const net::Ipv4Addr addr = decoded.value().addr;
      wire::append_response(batch_, wire::make_verdict_response(addr, index.lookup(addr)));
    } else {
      // count-in canonicalizes the base (host bits masked off) and echoes
      // the canonical form, mirroring what the index actually counted.
      const auto prefix =
          net::Prefix::canonical(decoded.value().addr, decoded.value().plen);
      wire::append_response(
          batch_, wire::make_count_response(prefix.base(), decoded.value().plen,
                                            index.count_in(prefix)));
    }
    server_.queries_.fetch_add(1, std::memory_order_relaxed);
    if (queries_counter_ != nullptr) queries_counter_->add(1);
    if (request_timer_ != nullptr) {
      request_timer_->record_us(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - t0).count()));
    }
  }

  void answer_line(std::string_view line, const TelescopeIndex& index) {
    const auto token = util::trim(line);  // strips CRLF and padding
    if (token.empty() || token.front() == '#') return;

    // Analytics verbs (top-ports / outages / scanners) share one
    // formatter with `mtscope analyze`, so the wire and the CLI can never
    // drift; everything else stays on the IPv4 fast path below.
    if (is_analytics_verb(token)) {
      const auto verb_t0 = request_timer_ != nullptr ? Clock::now() : Clock::time_point{};
      batch_ += answer_analytics_query(index, token);
      batch_ += '\n';
      server_.queries_.fetch_add(1, std::memory_order_relaxed);
      if (queries_counter_ != nullptr) queries_counter_->add(1);
      if (request_timer_ != nullptr) {
        request_timer_->record_us(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - verb_t0)
                .count()));
      }
      return;
    }

    const auto t0 = request_timer_ != nullptr ? Clock::now() : Clock::time_point{};
    const auto addr = net::Ipv4Addr::parse(token);
    if (!addr.has_value()) {
      append_sanitized_echo(batch_, token, kInvalidEchoBytes);
      batch_ += " invalid\n";
      server_.invalid_.fetch_add(1, std::memory_order_relaxed);
      if (invalid_counter_ != nullptr) invalid_counter_->add(1);
    } else {
      batch_ += format_verdict(*addr, index.lookup(*addr));
      batch_ += '\n';
    }
    server_.queries_.fetch_add(1, std::memory_order_relaxed);
    if (queries_counter_ != nullptr) queries_counter_->add(1);
    if (request_timer_ != nullptr) {
      request_timer_->record_us(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - t0).count()));
    }
  }

  /// Flush the leftover per-connection buffer plus this event's fresh
  /// batch as one vectored send.  At most max_flush_bytes_per_event bytes
  /// leave per call — past the cap the remainder stays queued and
  /// EPOLLOUT re-arms, so a huge backlog on one connection yields the
  /// reactor to every other ready connection (the fairness contract).
  /// Returns false when the peer is gone (EPIPE / ECONNRESET).
  bool flush_output(Connection& conn, std::string_view batch = {}) {
    std::size_t budget = server_.config_.max_flush_bytes_per_event;
    std::size_t batch_off = 0;
    bool peer_gone = false;
    while (budget > 0 && (conn.pending() > 0 || batch.size() > batch_off)) {
      iovec iov[2];
      int iov_count = 0;
      std::size_t want = 0;
      if (conn.pending() > 0) {
        const std::size_t len = std::min(conn.pending(), budget);
        iov[iov_count++] = {const_cast<char*>(conn.out.data()) + conn.out_off, len};
        want += len;
      }
      if (want < budget && batch.size() > batch_off) {
        const std::size_t len = std::min(batch.size() - batch_off, budget - want);
        iov[iov_count++] = {const_cast<char*>(batch.data()) + batch_off, len};
        want += len;
      }
      msghdr msg{};
      msg.msg_iov = iov;
      msg.msg_iovlen = static_cast<std::size_t>(iov_count);
      const auto n = ::sendmsg(conn.fd, &msg, MSG_NOSIGNAL);
      if (n > 0) {
        std::size_t sent = static_cast<std::size_t>(n);
        budget -= std::min(budget, sent);
        const std::size_t from_out = std::min(sent, conn.pending());
        conn.out_off += from_out;
        batch_off += sent - from_out;
        conn.last_activity = Clock::now();
        continue;
      }
      if (errno == EINTR) continue;
      if (errno != EAGAIN && errno != EWOULDBLOCK) peer_gone = true;
      break;
    }
    if (conn.pending() == 0 && conn.out_off > 0) {
      conn.out.clear();
      conn.out_off = 0;
    }
    // What the kernel refused (or the cap deferred) queues for EPOLLOUT.
    if (batch_off < batch.size()) conn.out.append(batch, batch_off, std::string::npos);
    if (peer_gone) return false;
    if (budget == 0 && conn.pending() > 0) {
      server_.partial_flushes_.fetch_add(1, std::memory_order_relaxed);
      if (partial_flush_counter_ != nullptr) partial_flush_counter_->add(1);
    }
    if (conn.paused && conn.pending() < server_.config_.max_pending_bytes / 2) {
      conn.paused = false;  // back-pressure released
    }
    return true;
  }

  void update_interest(Connection& conn) {
    std::uint32_t wanted = 0;
    if (!conn.paused && !conn.read_closed && !conn.fatal) wanted |= EPOLLIN | EPOLLRDHUP;
    if (conn.pending() > 0) wanted |= EPOLLOUT;
    if (wanted != conn.interest) {
      loop_.modify(conn.fd, wanted);
      conn.interest = wanted;
    }
  }

  void close_connection(int fd) {
    const auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    loop_.remove(fd);
    ::close(fd);
    conns_.erase(it);
    server_.active_.fetch_sub(1, std::memory_order_relaxed);
    if (active_gauge_ != nullptr) {
      active_gauge_->set(static_cast<std::int64_t>(conns_.size()));
    }
  }

  void maybe_sweep() {
    if (conns_.empty()) return;
    const auto now = Clock::now();
    if (now < next_sweep_) return;
    next_sweep_ = now + std::chrono::milliseconds(sweep_cadence_ms());
    const auto limit = std::chrono::milliseconds(server_.config_.idle_timeout_ms);
    std::vector<int> expired;
    for (const auto& [fd, conn] : conns_) {
      if (now - conn->last_activity > limit) expired.push_back(fd);
    }
    for (const int fd : expired) {
      // Covers the back-pressured slow reader: paused connections make no
      // read progress and a full socket buffer blocks write progress, so
      // their last_activity freezes until this sweep retires them.
      server_.timeouts_.fetch_add(1, std::memory_order_relaxed);
      if (timeouts_counter_ != nullptr) timeouts_counter_->add(1);
      close_connection(fd);
    }
  }

  QueryServer& server_;
  const int index_;
  EventLoop loop_;
  int listen_fd_ = -1;
  int wake_fd_ = -1;
  bool draining_ = false;
  Clock::time_point drain_deadline_{};
  Clock::time_point next_sweep_{};
  std::unordered_map<int, std::unique_ptr<Connection>> conns_;
  std::string batch_;  // scratch reply buffer, one event's verdicts
  std::atomic<std::uint64_t> accepted_{0};

  // Private registry + resolved handles (map nodes are stable); all null
  // without a parent registry so the hot path stays free of lookups.
  std::unique_ptr<obs::MetricsRegistry> registry_;
  obs::Counter* queries_counter_ = nullptr;
  obs::Counter* invalid_counter_ = nullptr;
  obs::Counter* connections_counter_ = nullptr;
  obs::Counter* drops_counter_ = nullptr;
  obs::Counter* timeouts_counter_ = nullptr;
  obs::Counter* partial_flush_counter_ = nullptr;
  obs::Gauge* active_gauge_ = nullptr;
  obs::TimingHistogram* request_timer_ = nullptr;
};

// ---------------------------------------------------------------------------
// QueryServer: lifecycle, reactor fan-out, and the shared reload path.

QueryServer::QueryServer(ServerConfig config, obs::MetricsRegistry* metrics)
    : config_(std::move(config)), metrics_(metrics) {
  if (config_.reactors < 1) config_.reactors = 1;
}

QueryServer::~QueryServer() {
  QueryServer* expected = this;
  g_signal_server.compare_exchange_strong(expected, nullptr);
  reactors_.clear();
}

util::Result<bool> QueryServer::start() {
  const auto installed = manager_.load_and_install(config_.snapshot_path, metrics_);
  if (!installed.ok()) return installed.error();

  reactors_.reserve(static_cast<std::size_t>(config_.reactors));
  for (int i = 0; i < config_.reactors; ++i) {
    auto reactor = std::make_unique<Reactor>(*this, i);
    // Reactor 0 resolves port 0 to the kernel's pick; the rest bind the
    // same port through SO_REUSEPORT so accepts spread across loops.
    const auto opened = reactor->open(i == 0 ? config_.port : bound_port_);
    if (!opened.ok()) return opened.error();
    if (i == 0) bound_port_ = opened.value();
    reactors_.push_back(std::move(reactor));
  }

  if (config_.watch_interval_ms > 0) {
    // Record the identity of the file just loaded so the first poll only
    // fires once a publisher actually replaces it.
    watch_sig_valid_ = stat_snapshot(watch_sig_);
    next_watch_ = Clock::now() + std::chrono::milliseconds(config_.watch_interval_ms);
  }
  started_ = true;
  return true;
}

void QueryServer::request_stop() noexcept {
  stop_requested_.store(true, std::memory_order_release);
  for (const auto& reactor : reactors_) reactor->wake();
}

void QueryServer::request_reload() noexcept {
  reload_requested_.store(true, std::memory_order_release);
  if (!reactors_.empty()) reactors_.front()->wake();
}

void QueryServer::install_signal_handlers() {
  g_signal_server.store(this, std::memory_order_release);
  struct sigaction action{};
  action.sa_handler = mtscope_serve_signal_handler;
  ::sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: epoll_wait returns EINTR and re-checks flags
  ::sigaction(SIGHUP, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
}

ServerStats QueryServer::stats() const noexcept {
  ServerStats s;
  s.connections = connections_.load(std::memory_order_relaxed);
  s.active = active_.load(std::memory_order_relaxed);
  s.queries = queries_.load(std::memory_order_relaxed);
  s.invalid = invalid_.load(std::memory_order_relaxed);
  s.reloads = reloads_.load(std::memory_order_relaxed);
  s.reload_failures = reload_failures_.load(std::memory_order_relaxed);
  s.timeouts = timeouts_.load(std::memory_order_relaxed);
  s.drops = drops_.load(std::memory_order_relaxed);
  s.partial_flushes = partial_flushes_.load(std::memory_order_relaxed);
  return s;
}

std::vector<std::uint64_t> QueryServer::reactor_connections() const {
  std::vector<std::uint64_t> out;
  out.reserve(reactors_.size());
  for (const auto& reactor : reactors_) out.push_back(reactor->accepted());
  return out;
}

int QueryServer::run() {
  if (!started_) return 1;
  std::vector<std::thread> threads;
  threads.reserve(reactors_.size() - 1);
  for (std::size_t i = 1; i < reactors_.size(); ++i) {
    threads.emplace_back([reactor = reactors_[i].get()] { reactor->run(); });
  }
  reactors_.front()->run();
  for (auto& thread : threads) thread.join();

  // Deterministic metrics handoff: fold every reactor's private registry
  // into the attached one in reactor-index order (counters add, gauges
  // max, timers pool) — totals are then independent of scheduling.
  if (metrics_ != nullptr) {
    for (const auto& reactor : reactors_) metrics_->merge(*reactor->registry());
  }
  return 0;
}

void QueryServer::do_reload() {
  const auto installed = manager_.load_and_install(config_.snapshot_path, metrics_);
  if (installed.ok()) {
    reloads_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_ != nullptr) metrics_->counter("serve.server.reloads").add(1);
  } else {
    // The previous epoch keeps serving; operators see the failure in the
    // stats and the unchanged serve.snapshot.epoch gauge.
    reload_failures_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_ != nullptr) metrics_->counter("serve.server.reload_failures").add(1);
  }
  // Either way the watcher's reference point is what is on disk now: a
  // failed load must not be re-attempted every poll tick, only once the
  // publisher replaces the file again.
  if (config_.watch_interval_ms > 0) watch_sig_valid_ = stat_snapshot(watch_sig_);
}

bool QueryServer::stat_snapshot(FileSig& out) const noexcept {
  struct ::stat st{};
  if (::stat(config_.snapshot_path.c_str(), &st) != 0) return false;
  out.dev = static_cast<std::uint64_t>(st.st_dev);
  out.ino = static_cast<std::uint64_t>(st.st_ino);
  out.size = static_cast<std::int64_t>(st.st_size);
  out.mtime_s = static_cast<std::int64_t>(st.st_mtim.tv_sec);
  out.mtime_ns = static_cast<std::int64_t>(st.st_mtim.tv_nsec);
  return true;
}

void QueryServer::check_watch() {
  if (config_.watch_interval_ms <= 0) return;
  if (stop_requested_.load(std::memory_order_acquire)) return;
  const auto now = Clock::now();
  if (now < next_watch_) return;
  next_watch_ = now + std::chrono::milliseconds(config_.watch_interval_ms);
  FileSig sig;
  if (!stat_snapshot(sig)) return;  // transient (publisher mid-swap?); next tick retries
  if (watch_sig_valid_ && sig == watch_sig_) return;
  do_reload();
}

}  // namespace mtscope::serve
