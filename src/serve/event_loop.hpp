// EventLoop: a thin RAII wrapper over Linux epoll for the query server.
//
// Deliberately minimal — the server's reactor needs exactly "tell the
// kernel which fds I care about, hand me back the ready set" — so this
// wraps the three epoll_ctl verbs and epoll_wait, nothing more.  Readiness
// dispatch (fd -> connection) stays in the server, which owns the fd
// lifetimes; the loop never closes or reads an fd itself.  Level-triggered
// on purpose: the server reads one bounded chunk per readable event and
// relies on the kernel re-arming the fd while input remains, which is what
// bounds per-connection memory under pipelined clients.
#pragma once

#include <cstdint>
#include <vector>

namespace mtscope::serve {

class EventLoop {
 public:
  /// One ready fd from wait(): `events` is the epoll event mask
  /// (EPOLLIN / EPOLLOUT / EPOLLHUP / ...).
  struct Event {
    int fd = -1;
    std::uint32_t events = 0;
  };

  /// Throws std::system_error if epoll_create1 fails (resource exhaustion
  /// at startup is a precondition violation, not an expected failure).
  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Register `fd` with interest mask `events` (EPOLLIN | EPOLLOUT | ...).
  /// Throws std::system_error on kernel refusal — callers register only
  /// fds they just created, so failure means a programming error.
  void add(int fd, std::uint32_t events);

  /// Replace the interest mask of a registered fd.
  void modify(int fd, std::uint32_t events);

  /// Deregister; must precede close(fd) so the kernel entry never dangles.
  void remove(int fd);

  /// Block up to `timeout_ms` (-1 = forever, 0 = poll) and fill `out` with
  /// the ready set.  Returns the number of ready fds; 0 on timeout.  An
  /// EINTR wakeup returns 0 — the server treats it as a spurious wake and
  /// re-checks its signal flags, which is exactly what a signal wants.
  int wait(std::vector<Event>& out, int timeout_ms);

 private:
  int epoll_fd_ = -1;
};

}  // namespace mtscope::serve
