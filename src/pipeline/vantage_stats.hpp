// VantageStats: the per-/24, per-IP measurement state the inference
// pipeline reads.
//
// The paper's classification step is per-IP ("for a block of IP addresses
// to be a meta-telescope prefix, ALL IPv4 addresses have to survive the
// filter steps"), so destination-side statistics are tracked per host
// address inside each /24 — cheap, because sampled IXP data touches only a
// handful of addresses per block.  Source-side activity is a 256-bit bitmap
// plus a packet counter per block (a /24 has at most 256 distinct sources).
//
// Storage lives in pipeline::BlockStatsStore (open-addressing index over
// struct-of-arrays columns, per-IP runs in a bump arena — see
// block_stats_store.hpp and DESIGN.md §9); this class layers the flow
// semantics on top: sampling-rate scaling, the source mask, the distinct-
// day set, and the ingested-flow counter.
//
// Instances merge, which is how multi-day and multi-vantage-point inference
// works (§6.1, §7.1): merge the stats, run the same pipeline.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <span>
#include <vector>

#include "analytics/ibr_matrix.hpp"
#include "flow/flow_batch.hpp"
#include "flow/record.hpp"
#include "net/ipv4.hpp"
#include "pipeline/block_stats_store.hpp"
#include "trie/block24_set.hpp"

namespace mtscope::pipeline {

/// All measurement state for one /24, as a standalone value.  The live
/// pipeline keeps this data columnar inside BlockStatsStore; this struct
/// remains for callers (and tests) that build observations by hand.
struct BlockObservation {
  std::vector<IpRxStats> rx_ips;      // kept sorted by host (see rx_ip)
  std::uint64_t rx_packets = 0;       // sampled
  std::uint64_t rx_tcp_packets = 0;
  std::uint64_t rx_tcp_bytes = 0;
  std::uint64_t rx_est_packets = 0;   // sampled x sampling_rate (volume estimate)
  std::uint64_t tx_packets = 0;       // sampled
  std::uint64_t tx_host_bits[4] = {0, 0, 0, 0};  // which host bytes sent

  [[nodiscard]] bool host_sent(std::uint8_t host) const noexcept {
    return (tx_host_bits[host >> 6] >> (host & 63)) & 1;
  }

  void mark_host_sent(std::uint8_t host) noexcept {
    tx_host_bits[host >> 6] |= std::uint64_t{1} << (host & 63);
  }

  [[nodiscard]] double avg_tcp_size() const noexcept {
    return rx_tcp_packets == 0 ? 0.0
                               : static_cast<double>(rx_tcp_bytes) /
                                     static_cast<double>(rx_tcp_packets);
  }

  [[nodiscard]] IpRxStats& rx_ip(std::uint8_t host);

  void merge(const BlockObservation& other);
};

class VantageStats {
 public:
  VantageStats() = default;

  /// With a source mask, source-side accounting is kept only for blocks in
  /// the mask.  Spoofed packets scatter sources across the whole 32-bit
  /// space; without a mask every one of them would allocate a tracking
  /// entry for a block the pipeline can never classify (it has no inbound
  /// traffic).  Pass the measurement universe to bound memory.
  explicit VantageStats(std::shared_ptr<const trie::Block24Set> source_mask)
      : source_mask_(std::move(source_mask)) {}

  /// With `analytics` set, destination-side ingest additionally populates
  /// the IBR analytics matrix (see analytics/ibr_matrix.hpp) — a per-day
  /// per-port tap beside the store insert.  Off by default: the
  /// classification-only pipeline pays one branch per record.
  VantageStats(std::shared_ptr<const trie::Block24Set> source_mask, bool analytics)
      : source_mask_(std::move(source_mask)), ibr_(analytics) {}

  /// Ingest one dataset: decoded flow records from one vantage point for
  /// one logical day.  `sampling_rate` scales the volume estimates; `day`
  /// feeds the distinct-day count used for per-day volume averaging.
  void add_flows(std::span<const flow::FlowRecord> flows, std::uint32_t sampling_rate, int day);

  /// Record coverage of a logical day without ingesting records.  The
  /// sharded collector calls this once per dataset so the merged union of
  /// shards covers exactly the days the serial path would.
  void note_day(int day);

  /// Destination-side accounting for a single record (plus the per-record
  /// bookkeeping: the ingested-flow counter).  Exposed so the sharded
  /// collector can route each side of one record to the shard owning its
  /// block; add_flows() is exactly note_day + add_flow_rx + add_flow_tx.
  void add_flow_rx(const flow::FlowRecord& record, std::uint32_t sampling_rate);

  /// Source-side accounting for a single record (subject to the source
  /// mask).  Counterpart of add_flow_rx; counts no flow.
  void add_flow_tx(const flow::FlowRecord& record);

  /// Batched destination-side ingest: add_flow_rx for every batch row in
  /// `rows`, reading the pre-decoded columns instead of FlowRecords.  The
  /// sharded collector passes each shard's routed run (see
  /// pipeline/shard_router.hpp) so one call touches one store
  /// contiguously; `rows` spanning the whole batch reproduces the serial
  /// per-record order.  Bit-identical to the per-record calls by
  /// construction — same values, same insertion sequence.
  void add_batch_rx(const flow::FlowBatch& batch, std::span<const std::uint32_t> rows);

  /// Batched source-side ingest, the add_flow_tx counterpart of
  /// add_batch_rx (subject to the source mask; counts no flow).
  void add_batch_tx(const flow::FlowBatch& batch, std::span<const std::uint32_t> rows);

  /// Batched analytics tap: fold every batch row in `rows` into the IBR
  /// matrix under day bin `day`.  The sharded collector passes each
  /// shard's rx-routed run — the same partition add_batch_rx consumes, so
  /// every record lands in exactly one shard's matrix and the disjoint
  /// merge reproduces the serial tap bit-identically.  No-op unless the
  /// analytics constructor flag was set.
  void add_analytics_batch(const flow::FlowBatch& batch, std::span<const std::uint32_t> rows,
                           int day) {
    ibr_.add_batch(batch, rows, day);
  }

  /// Pre-size the underlying store for `blocks` rows (see
  /// BlockStatsStore::reserve_rows).
  void reserve_blocks(std::size_t blocks) { store_.reserve_rows(blocks); }

  /// Merge another stats object (other vantage points / other days /
  /// another shard).  Commutative and associative (see the pipeline
  /// property tests) — the invariant the parallel collector relies on.
  void merge(const VantageStats& other);

  /// The columnar store itself: size()/empty(), row iteration (yielding
  /// BlockStatsStore::ConstRow views), dense row(i) access, and the
  /// collect.store.* layout diagnostics.
  [[nodiscard]] const BlockStatsStore& blocks() const noexcept { return store_; }

  /// Falsy row view when the block has never been observed.
  [[nodiscard]] BlockStatsStore::ConstRow find(net::Block24 block) const noexcept {
    return store_.find(block);
  }

  /// Number of distinct logical days covered; 0 for an object that has
  /// ingested nothing.  An empty object used to pretend it covered one day,
  /// which corrupted merge accounting: an empty merge target "owned" a day
  /// no shard ever recorded.  Callers that divide by days clamp explicitly
  /// instead (see InferenceEngine::volume_cap_for).
  [[nodiscard]] int day_count() const noexcept { return static_cast<int>(days_.size()); }

  [[nodiscard]] std::uint64_t flows_ingested() const noexcept { return flows_; }

  /// The IBR analytics matrix (empty and disabled unless the analytics
  /// constructor flag was set).  Merged through merge()/merge_stats with
  /// the same commutative fold as the store.
  [[nodiscard]] const analytics::IbrMatrix& ibr() const noexcept { return ibr_; }

 private:
  BlockStatsStore store_;
  std::shared_ptr<const trie::Block24Set> source_mask_;
  std::set<int> days_;
  std::uint64_t flows_ = 0;
  analytics::IbrMatrix ibr_;
};

/// The shared merge primitive: fold `rest` into `first` in index order and
/// return the result.  This is the one reduction both consumers of
/// many-way stats merges ride — the parallel collector folds its disjoint
/// shard columns through it (passing the exact row total so the store
/// index is built once), and ingest::SlidingWindow::merged() folds its
/// per-day slices through it (copying only the first slice instead of all
/// of them).  Merge is commutative and associative (property-tested in
/// tests/test_pipeline_properties), so the fold order is a pure
/// implementation choice; any shape yields bit-identical output.
[[nodiscard]] VantageStats merge_stats(VantageStats first,
                                       std::span<const VantageStats* const> rest,
                                       std::size_t reserve_rows = 0);

}  // namespace mtscope::pipeline
