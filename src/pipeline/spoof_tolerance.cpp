#include "pipeline/spoof_tolerance.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace mtscope::pipeline {

std::uint64_t compute_spoof_tolerance(const VantageStats& stats,
                                      std::span<const std::uint8_t> unrouted_slash8s,
                                      SpoofToleranceConfig config) {
  if (unrouted_slash8s.empty()) return 0;

  // Collect per-/24 outbound sample counts.  Only blocks present in the
  // stats map can be non-zero; the remaining blocks of each /8 contribute
  // zeros, which we account for arithmetically instead of materialising.
  std::vector<std::uint64_t> nonzero;
  std::uint64_t population = 0;
  for (const std::uint8_t base : unrouted_slash8s) {
    population += 65536;
    const std::uint32_t first = std::uint32_t{base} << 16;
    for (std::uint32_t i = 0; i < 65536; ++i) {
      const BlockObservation* obs = stats.find(net::Block24(first + i));
      if (obs != nullptr && obs->tx_packets > 0) nonzero.push_back(obs->tx_packets);
    }
  }
  if (nonzero.empty()) return 0;

  std::sort(nonzero.begin(), nonzero.end());

  // Rank of the requested percentile within the full population (zeros
  // included).  If the rank falls inside the zero mass, the tolerance is 0.
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(config.percentile * static_cast<double>(population)));
  const std::uint64_t zeros = population - nonzero.size();
  if (rank <= zeros) return 0;
  const std::uint64_t index = rank - zeros - 1;
  return nonzero[std::min<std::uint64_t>(index, nonzero.size() - 1)];
}

}  // namespace mtscope::pipeline
