#include "pipeline/spoof_tolerance.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace mtscope::pipeline {

std::uint64_t compute_spoof_tolerance(const VantageStats& stats,
                                      std::span<const std::uint8_t> unrouted_slash8s,
                                      SpoofToleranceConfig config) {
  if (unrouted_slash8s.empty()) return 0;

  // Collect per-/24 outbound sample counts.  Only blocks present in the
  // store can be non-zero; the remaining blocks of each /8 contribute
  // zeros, which we account for arithmetically instead of materialising.
  // One pass over the store's rows (O(observed blocks)) replaces the old
  // 65536 finds per /8; the multiplicity table keeps the semantics for a
  // base listed more than once (its samples and zero-mass count each time).
  std::uint64_t multiplicity[256] = {};
  std::uint64_t population = 0;
  for (const std::uint8_t base : unrouted_slash8s) {
    population += 65536;
    ++multiplicity[base];
  }
  std::vector<std::uint64_t> nonzero;
  for (const BlockStatsStore::ConstRow row : stats.blocks()) {
    const std::uint64_t count = multiplicity[row.block().index() >> 16];
    if (count == 0) continue;
    const std::uint64_t tx = row.tx_packets();
    if (tx == 0) continue;
    for (std::uint64_t c = 0; c < count; ++c) nonzero.push_back(tx);
  }
  if (nonzero.empty()) return 0;

  std::sort(nonzero.begin(), nonzero.end());

  // Rank of the requested percentile within the full population (zeros
  // included).  If the rank falls inside the zero mass, the tolerance is 0.
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(config.percentile * static_cast<double>(population)));
  const std::uint64_t zeros = population - nonzero.size();
  if (rank <= zeros) return 0;
  const std::uint64_t index = rank - zeros - 1;
  return nonzero[std::min<std::uint64_t>(index, nonzero.size() - 1)];
}

}  // namespace mtscope::pipeline
