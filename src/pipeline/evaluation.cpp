#include "pipeline/evaluation.hpp"

namespace mtscope::pipeline {

GroundTruthEval evaluate_against_ground_truth(const trie::Block24Set& inferred,
                                              const sim::AddressPlan& plan) {
  GroundTruthEval out;
  inferred.for_each([&](net::Block24 block) {
    ++out.inferred;
    switch (plan.role(block)) {
      case sim::BlockRole::kDark:
      case sim::BlockRole::kTelescope:
        ++out.truly_dark;
        break;
      case sim::BlockRole::kActive:
      case sim::BlockRole::kQuietActive:
      case sim::BlockRole::kAsymAck:
        ++out.truly_active;
        break;
      case sim::BlockRole::kUnallocated:
        ++out.unallocated;
        break;
    }
  });
  return out;
}

TelescopeCoverage evaluate_telescope_coverage(
    const trie::Block24Set& inferred, const sim::TelescopeInfo& telescope,
    const std::function<bool(net::Block24)>& dark_on_window) {
  TelescopeCoverage out;
  out.code = telescope.spec.code;
  out.size = telescope.blocks.size();
  for (const net::Block24 block : telescope.blocks) {
    const bool dark = !dark_on_window || dark_on_window(block);
    if (dark) ++out.actually_dark;
    if (inferred.contains(block)) ++out.inferred;
  }
  return out;
}

}  // namespace mtscope::pipeline
