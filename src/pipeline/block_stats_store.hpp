// BlockStatsStore: the columnar per-/24 measurement store under
// VantageStats.
//
// The paper's funnel (§4.2, Figure 2) covers millions of /24s — ~6M seen,
// 3.8M gray — and collect/infer over that population is won or lost on
// memory layout, not instruction count.  The node-based
// unordered_map<Block24, BlockObservation> it replaces paid a pointer
// chase per block plus a heap-allocated vector per block for a handful of
// per-IP records; this store keeps everything in flat arrays:
//
//   * an open-addressing index (linear probing, Fibonacci hashing of the
//     24-bit block id, power-of-two capacity, ≤ 7/8 load) whose entries
//     pack the key next to the row id, so a probe never leaves the slot
//     array;
//   * struct-of-arrays columns for the hot funnel fields (rx_packets,
//     rx_tcp_packets, rx_tcp_bytes, rx_est_packets, tx_packets), so a
//     pass that reads one field streams one array — a source-only block
//     costs a single rx_packets load.  Column capacity is reserved in
//     lockstep with the index (rows ≤ 7/8 · slots), so the columns never
//     carry push_back doubling slack;
//   * tx host bitmaps in a side table indexed by a per-row offset —
//     almost every observed block is destination-only, so the dense
//     column the map path carried would be ~90% zeros;
//   * per-IP stats sorted by host, held in a small inline buffer per row
//     (most blocks see only a couple of sampled addresses) with spill
//     into a chunked arena of size-classed runs — no per-block heap
//     allocation, grown-out runs are recycled through per-class free
//     lists, and the sorted order makes block merge a linear two-run
//     walk instead of the quadratic probe-per-entry the old rx_ip()
//     loop did.
//
// Everything the store accumulates is a sum, a bitwise OR, or a sorted
// multiset union keyed by host — commutative and associative — so results
// are bit-identical no matter how ingestion is partitioned (the
// thread×shard differential grid in tests/test_parallel_pipeline is the
// oracle, and tests/test_block_stats_store pins the store against a
// map-backed reference implementation differentially).
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "net/ipv4.hpp"

namespace mtscope::pipeline {

/// Destination-side counters for one host address within a block.
struct IpRxStats {
  std::uint8_t host = 0;         // last octet
  std::uint32_t packets = 0;     // sampled
  std::uint32_t tcp_packets = 0;
  std::uint64_t tcp_bytes = 0;

  [[nodiscard]] double avg_tcp_size() const noexcept {
    return tcp_packets == 0 ? 0.0
                            : static_cast<double>(tcp_bytes) / static_cast<double>(tcp_packets);
  }
};

class BlockStatsStore {
 public:
  /// Per-IP records kept inline in the row before spilling to the arena.
  /// Two covers the bulk of blocks at IXP sampling rates; a /24 can never
  /// need more than 256 entries (one per host), which bounds merge scratch.
  static constexpr std::uint32_t kInlineIps = 2;
  static constexpr std::uint32_t kMaxIps = 256;

  BlockStatsStore() = default;
  BlockStatsStore(const BlockStatsStore& other);
  BlockStatsStore& operator=(const BlockStatsStore& other);
  BlockStatsStore(BlockStatsStore&&) noexcept = default;
  BlockStatsStore& operator=(BlockStatsStore&&) noexcept = default;
  ~BlockStatsStore() = default;

  /// Read-only view of one row.  Accessors index straight into the
  /// columns, so a caller that never asks for a field never touches its
  /// array.  Invalid (default-constructed / not-found) views are falsy.
  class ConstRow {
   public:
    ConstRow() = default;

    explicit operator bool() const noexcept { return store_ != nullptr; }

    [[nodiscard]] net::Block24 block() const noexcept {
      return net::Block24(store_->keys_[row_]);
    }
    [[nodiscard]] std::uint64_t rx_packets() const noexcept {
      return store_->rx_packets_[row_];
    }
    [[nodiscard]] std::uint64_t rx_tcp_packets() const noexcept {
      return store_->rx_tcp_packets_[row_];
    }
    [[nodiscard]] std::uint64_t rx_tcp_bytes() const noexcept {
      return store_->rx_tcp_bytes_[row_];
    }
    [[nodiscard]] std::uint64_t rx_est_packets() const noexcept {
      return store_->rx_est_packets_[row_];
    }
    [[nodiscard]] std::uint64_t tx_packets() const noexcept {
      return store_->tx_packets_[row_];
    }
    [[nodiscard]] bool host_sent(std::uint8_t host) const noexcept {
      const std::uint32_t t = store_->tx_idx_[row_];
      return t != kNoTxBits &&
             ((store_->tx_bits_[t][host >> 6] >> (host & 63)) & 1) != 0;
    }
    [[nodiscard]] const std::array<std::uint64_t, 4>& tx_host_bits() const noexcept {
      const std::uint32_t t = store_->tx_idx_[row_];
      return t == kNoTxBits ? kZeroTxBits : store_->tx_bits_[t];
    }
    /// Per-IP records, sorted by host.
    [[nodiscard]] std::span<const IpRxStats> ips() const noexcept {
      const IpSlot& slot = store_->ip_slots_[row_];
      return {slot.data(), slot.count};
    }
    [[nodiscard]] double avg_tcp_size() const noexcept {
      const std::uint64_t pkts = rx_tcp_packets();
      return pkts == 0 ? 0.0
                       : static_cast<double>(rx_tcp_bytes()) / static_cast<double>(pkts);
    }

   private:
    friend class BlockStatsStore;
    ConstRow(const BlockStatsStore* store, std::uint32_t row) noexcept
        : store_(store), row_(row) {}

    const BlockStatsStore* store_ = nullptr;
    std::uint32_t row_ = 0;
  };

  /// Forward iteration over rows in insertion (dense) order.
  class const_iterator {
   public:
    using value_type = ConstRow;
    using difference_type = std::ptrdiff_t;

    const_iterator() = default;
    ConstRow operator*() const noexcept { return ConstRow(store_, row_); }
    const_iterator& operator++() noexcept {
      ++row_;
      return *this;
    }
    const_iterator operator++(int) noexcept {
      const_iterator copy = *this;
      ++row_;
      return copy;
    }
    friend bool operator==(const const_iterator&, const const_iterator&) noexcept = default;

   private:
    friend class BlockStatsStore;
    const_iterator(const BlockStatsStore* store, std::uint32_t row) noexcept
        : store_(store), row_(row) {}

    const BlockStatsStore* store_ = nullptr;
    std::uint32_t row_ = 0;
  };

  [[nodiscard]] std::size_t size() const noexcept { return keys_.size(); }
  [[nodiscard]] bool empty() const noexcept { return keys_.empty(); }
  [[nodiscard]] const_iterator begin() const noexcept { return {this, 0}; }
  [[nodiscard]] const_iterator end() const noexcept {
    return {this, static_cast<std::uint32_t>(keys_.size())};
  }

  /// Row by dense index in [0, size()) — what the parallel funnel range-
  /// partitions over, with no pointer snapshot of the table required.
  [[nodiscard]] ConstRow row(std::size_t index) const noexcept {
    return {this, static_cast<std::uint32_t>(index)};
  }

  /// Falsy view when the block has never been observed.
  [[nodiscard]] ConstRow find(net::Block24 block) const noexcept;

  /// Pre-size the index (and, in lockstep, the columns) for at least
  /// `rows` rows, so inserts up to that count never rehash.  The sharded
  /// collector calls this with batch statistics before each insert run and
  /// with the exact disjoint row total before the shard fold — growing a
  /// six-figure store through the doubling schedule rebuilds the index
  /// log2(rows) times; one reserve rebuilds it once.  No-op when the store
  /// already has the capacity.
  void reserve_rows(std::size_t rows);

  /// Hint that `block` is about to be probed (add_rx/add_tx/find/merge).
  /// Pulls the slot cache line the probe will start at.  The batched
  /// ingest path knows its keys a whole FlowBatch ahead, so it issues
  /// these ~16 rows early and the index misses overlap instead of
  /// serializing — the memory-level parallelism a record-at-a-time
  /// caller structurally cannot express.  Pure hint: no effect on
  /// results, safe at any load factor.
  void prefetch_block(net::Block24 block) const noexcept {
    if (slots_.empty()) return;
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(slots_.data() + probe_start(block.index(), slots_.size()));
#endif
  }

  /// Destination-side accounting for one flow record's worth of traffic
  /// toward `host` inside `block`.
  void add_rx(net::Block24 block, std::uint8_t host, std::uint64_t packets,
              std::uint64_t est_packets, bool tcp, std::uint64_t tcp_bytes);

  /// Batched add_rx over a routed run: `rows` indexes into the parallel
  /// column spans (a FlowBatch's SoA layout).  Runs in two passes — probe
  /// every key into a row scratch first, then apply the column updates —
  /// so the index misses of upcoming probes and the column/ip-run misses
  /// of upcoming updates are both in flight while the current row
  /// retires.  Exactly equivalent to calling add_rx once per row in
  /// order: pass one creates rows at first occurrence just like the
  /// interleaved loop, pass two adds commutative sums.
  void add_rx_rows(std::span<const std::uint32_t> rows,
                   std::span<const std::uint32_t> keys,
                   std::span<const std::uint8_t> hosts,
                   std::span<const std::uint64_t> packets,
                   std::span<const std::uint64_t> est_packets,
                   std::span<const std::uint8_t> tcp,
                   std::span<const std::uint64_t> tcp_bytes);

  /// Source-side accounting: `host` inside `block` sent `packets`.
  void add_tx(net::Block24 block, std::uint8_t host, std::uint64_t packets);

  /// Fold another store in.  Rows new to this store append column-wise
  /// (one bulk copy per row); shared rows add counters, OR host bitmaps,
  /// and union the sorted per-IP runs in one linear walk — in place when
  /// the run has room, straight into a fresh arena run when it does not.
  /// Commutative and associative.
  void merge(const BlockStatsStore& other);

  // --- capacity / layout diagnostics (the collect.store.* gauges) -------

  /// Heap bytes owned by the store: index + columns + arena chunks.
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

  /// Occupancy of the open-addressing index in [0, 1].
  [[nodiscard]] double load_factor() const noexcept {
    return slots_.empty() ? 0.0
                          : static_cast<double>(keys_.size()) /
                                static_cast<double>(slots_.size());
  }

  /// Arena run allocations handed to rows that outgrew the inline buffer
  /// (first spills and regrows both count; free-list reuses count too).
  [[nodiscard]] std::uint64_t arena_spills() const noexcept { return arena_.spills; }

  /// IpRxStats slots carved out of arena chunks, and the subset currently
  /// parked on the per-class free lists (a regrow retires the old run;
  /// the next same-class spill recycles it).
  [[nodiscard]] std::uint64_t arena_allocated_ips() const noexcept {
    return arena_.allocated;
  }
  [[nodiscard]] std::uint64_t arena_wasted_ips() const noexcept { return arena_.wasted; }

 private:
  /// Per-row handle to the sorted per-IP run.  The run lives in the
  /// inline buffer until it overflows, then in a size-classed arena run;
  /// the two share storage since exactly one is active (capacity says
  /// which).
  struct IpSlot {
    union {
      std::array<IpRxStats, kInlineIps> inline_ips;
      IpRxStats* spill;
    };
    std::uint16_t count = 0;
    std::uint16_t capacity = kInlineIps;

    IpSlot() noexcept : inline_ips{} {}

    [[nodiscard]] bool spilled() const noexcept { return capacity > kInlineIps; }
    [[nodiscard]] IpRxStats* data() noexcept {
      return spilled() ? spill : inline_ips.data();
    }
    [[nodiscard]] const IpRxStats* data() const noexcept {
      return spilled() ? spill : inline_ips.data();
    }
  };

  /// Chunked arena for spilled per-IP runs.  Runs come in fixed size
  /// classes; a grown-out run goes onto its class's free list and the
  /// next spill of that class recycles it.  Chunks never move, so
  /// handed-out pointers stay valid for the life of the store.
  struct IpArena {
    static constexpr std::size_t kChunkIps = 4096;
    /// Run capacities: ~1.4x steps so a run never over-provisions by
    /// more than ~40%, bounded by one entry per possible host.
    static constexpr std::array<std::uint16_t, 13> kRunClasses{
        4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256};

    std::vector<std::unique_ptr<IpRxStats[]>> chunks;
    std::array<std::vector<IpRxStats*>, kRunClasses.size()> free_runs{};
    std::size_t last_chunk_size = 0;
    std::size_t last_chunk_used = 0;
    std::uint64_t spills = 0;
    std::uint64_t allocated = 0;
    std::uint64_t wasted = 0;

    /// Index of the smallest class with capacity >= n (n <= kMaxIps).
    [[nodiscard]] static std::uint32_t class_of(std::uint32_t n) noexcept;

    /// A run of kRunClasses[cls] entries — recycled if one is free,
    /// freshly carved from the current chunk otherwise.
    IpRxStats* allocate(std::uint32_t cls);

    /// Park a grown-out run for reuse by the next same-class allocate.
    void retire(IpRxStats* run, std::uint32_t cls);
  };

  /// Fibonacci hashing: the golden-ratio multiply smears the 24-bit block
  /// id over the full word and the top bits index the table, which keeps
  /// linear probe runs short even for the sequential block ids dense /8s
  /// produce.
  [[nodiscard]] static std::uint32_t probe_start(std::uint32_t key,
                                                 std::size_t capacity) noexcept {
    const std::uint32_t h = key * 0x9E3779B9u;
    return h >> (std::countl_zero(static_cast<std::uint32_t>(capacity)) + 1);
  }

  [[nodiscard]] std::uint32_t find_row(net::Block24 block) const noexcept;
  std::uint32_t find_or_insert(net::Block24 block);
  void rehash(std::size_t new_capacity);

  /// The row's tx bitmap in the side table, created on first use.
  std::array<std::uint64_t, 4>& tx_bits_for(std::uint32_t row);

  /// Find-or-insert `host` in the row's sorted run, growing inline->arena
  /// as needed.  Returns a reference valid until the next mutation.
  IpRxStats& upsert_ip(std::uint32_t row, std::uint8_t host);

  /// Union `theirs` (sorted, non-empty) into the row's sorted run, adding
  /// counters on equal hosts.  Linear in the combined length.
  void merge_ips(std::uint32_t row, std::span<const IpRxStats> theirs);

  /// Replace the row's (empty) run with a copy of `theirs`.
  void assign_ips(std::uint32_t row, std::span<const IpRxStats> theirs);

  static constexpr std::uint32_t kNoTxBits = 0xffffffffu;
  static constexpr std::array<std::uint64_t, 4> kZeroTxBits{};

  // Open-addressing index: power-of-two sized, entries pack the 24-bit
  // block id in the high word and row index + 1 in the low word (0 marks
  // an empty slot), so probing stays inside this one array.
  std::vector<std::uint64_t> slots_;

  // SoA columns, one entry per row, indexed by the dense row id.
  std::vector<std::uint32_t> keys_;  // Block24::index()
  std::vector<std::uint64_t> rx_packets_;
  std::vector<std::uint64_t> rx_tcp_packets_;
  std::vector<std::uint64_t> rx_tcp_bytes_;
  std::vector<std::uint64_t> rx_est_packets_;
  std::vector<std::uint64_t> tx_packets_;
  std::vector<std::uint32_t> tx_idx_;  // offset into tx_bits_, kNoTxBits if none
  std::vector<IpSlot> ip_slots_;

  // Host bitmaps for the (few) rows that ever transmitted.
  std::vector<std::array<std::uint64_t, 4>> tx_bits_;

  IpArena arena_;

  // Probe-phase output of add_rx_rows, kept across batches so the batched
  // path never allocates per batch.  Pure scratch: not copied, not part
  // of the store's logical state.
  std::vector<std::uint32_t> row_scratch_;
};

}  // namespace mtscope::pipeline
