// Packet-size classifier tuning (paper §4.1, Table 3).
//
// Given labelled per-/24 observations from a production network that hosts
// both dark and active space, sweep the "median/average inbound TCP packet
// size <= N bytes" rule and report the confusion matrix + F1 per threshold.
// "Dark" is the positive class, as in the paper.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/generators.hpp"

namespace mtscope::pipeline {

enum class SizeFeature : std::uint8_t { kMedian, kAverage };

[[nodiscard]] std::string_view size_feature_name(SizeFeature f) noexcept;

/// Label derivation thresholds, mirroring §4.1: a block is labelled ACTIVE
/// only with >= `active_min_tx_packets` weekly outbound packets (filters
/// spoofed contamination); labelled DARK only with zero outbound packets.
/// Blocks in between are excluded from evaluation.
struct LabelConfig {
  std::uint64_t active_min_tx_packets = 10'000'000;  // paper: 10M/week
  double volume_scale = 1.0;                          // rescales the threshold
};

struct ClassifierOutcome {
  SizeFeature feature = SizeFeature::kAverage;
  double threshold = 44.0;
  std::uint64_t true_positive = 0;   // classified dark, is dark
  std::uint64_t false_positive = 0;  // classified dark, is active
  std::uint64_t true_negative = 0;   // classified active, is active
  std::uint64_t false_negative = 0;  // classified active, is dark

  [[nodiscard]] double fpr() const noexcept;  // FP / (FP + TN)
  [[nodiscard]] double fnr() const noexcept;  // FN / (FN + TP)
  [[nodiscard]] double tpr() const noexcept { return 1.0 - fnr(); }
  [[nodiscard]] double tnr() const noexcept { return 1.0 - fpr(); }
  [[nodiscard]] double f1() const noexcept;
};

/// Counts of how the labelling partitioned the observations (the paper's
/// 26,079 -> 18,151 dark / 5,835 active / rest excluded narrative).
struct LabelSummary {
  std::uint64_t total = 0;
  std::uint64_t labelled_dark = 0;
  std::uint64_t labelled_active = 0;
  std::uint64_t excluded = 0;  // some outbound, below the active floor
};

[[nodiscard]] LabelSummary summarize_labels(std::span<const sim::IspBlockObservation> data,
                                            const LabelConfig& config);

/// Evaluate one (feature, threshold) rule over labelled data.
[[nodiscard]] ClassifierOutcome evaluate_classifier(
    std::span<const sim::IspBlockObservation> data, SizeFeature feature, double threshold,
    const LabelConfig& config);

/// Full Table 3 sweep: both features at each threshold.
[[nodiscard]] std::vector<ClassifierOutcome> sweep_classifier(
    std::span<const sim::IspBlockObservation> data, std::span<const double> thresholds,
    const LabelConfig& config);

}  // namespace mtscope::pipeline
