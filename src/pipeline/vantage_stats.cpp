#include "pipeline/vantage_stats.hpp"

namespace mtscope::pipeline {

IpRxStats& BlockObservation::rx_ip(std::uint8_t host) {
  // rx_ips is kept sorted by host, so lookup is a binary search and merge
  // below stays linear (the old linear probe made dense-block merges
  // quadratic).
  const auto it = std::lower_bound(
      rx_ips.begin(), rx_ips.end(), host,
      [](const IpRxStats& ip, std::uint8_t h) { return ip.host < h; });
  if (it != rx_ips.end() && it->host == host) return *it;
  return *rx_ips.insert(it, IpRxStats{host, 0, 0, 0});
}

void BlockObservation::merge(const BlockObservation& other) {
  // Linear two-run union over the sorted rx_ips.
  std::vector<IpRxStats> merged;
  merged.reserve(rx_ips.size() + other.rx_ips.size());
  auto mine = rx_ips.begin();
  auto theirs = other.rx_ips.begin();
  while (mine != rx_ips.end() && theirs != other.rx_ips.end()) {
    if (mine->host < theirs->host) {
      merged.push_back(*mine++);
    } else if (mine->host > theirs->host) {
      merged.push_back(*theirs++);
    } else {
      IpRxStats combined = *mine++;
      combined.packets += theirs->packets;
      combined.tcp_packets += theirs->tcp_packets;
      combined.tcp_bytes += theirs->tcp_bytes;
      ++theirs;
      merged.push_back(combined);
    }
  }
  merged.insert(merged.end(), mine, rx_ips.end());
  merged.insert(merged.end(), theirs, other.rx_ips.end());
  rx_ips = std::move(merged);

  rx_packets += other.rx_packets;
  rx_tcp_packets += other.rx_tcp_packets;
  rx_tcp_bytes += other.rx_tcp_bytes;
  rx_est_packets += other.rx_est_packets;
  tx_packets += other.tx_packets;
  for (int w = 0; w < 4; ++w) tx_host_bits[w] |= other.tx_host_bits[w];
}

void VantageStats::note_day(int day) { days_.insert(day); }

void VantageStats::add_flow_rx(const flow::FlowRecord& r, std::uint32_t sampling_rate) {
  ++flows_;
  store_.add_rx(net::Block24::containing(r.key.dst),
                static_cast<std::uint8_t>(r.key.dst.value() & 0xff), r.packets,
                r.packets * sampling_rate, r.key.proto == net::IpProto::kTcp, r.bytes);
}

void VantageStats::add_flow_tx(const flow::FlowRecord& r) {
  const net::Block24 src_block = net::Block24::containing(r.key.src);
  if (source_mask_ == nullptr || source_mask_->contains(src_block)) {
    store_.add_tx(src_block, static_cast<std::uint8_t>(r.key.src.value() & 0xff),
                  r.packets);
  }
}

void VantageStats::add_flows(std::span<const flow::FlowRecord> flows,
                             std::uint32_t sampling_rate, int day) {
  note_day(day);
  for (const flow::FlowRecord& r : flows) {
    add_flow_rx(r, sampling_rate);
    add_flow_tx(r);
  }
}

void VantageStats::merge(const VantageStats& other) {
  store_.merge(other.store_);
  days_.insert(other.days_.begin(), other.days_.end());
  flows_ += other.flows_;
}

}  // namespace mtscope::pipeline
