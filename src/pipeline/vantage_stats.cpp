#include "pipeline/vantage_stats.hpp"

namespace mtscope::pipeline {

IpRxStats& BlockObservation::rx_ip(std::uint8_t host) {
  for (IpRxStats& ip : rx_ips) {
    if (ip.host == host) return ip;
  }
  rx_ips.push_back(IpRxStats{host, 0, 0, 0});
  return rx_ips.back();
}

void BlockObservation::merge(const BlockObservation& other) {
  for (const IpRxStats& theirs : other.rx_ips) {
    IpRxStats& mine = rx_ip(theirs.host);
    mine.packets += theirs.packets;
    mine.tcp_packets += theirs.tcp_packets;
    mine.tcp_bytes += theirs.tcp_bytes;
  }
  rx_packets += other.rx_packets;
  rx_tcp_packets += other.rx_tcp_packets;
  rx_tcp_bytes += other.rx_tcp_bytes;
  rx_est_packets += other.rx_est_packets;
  tx_packets += other.tx_packets;
  for (int w = 0; w < 4; ++w) tx_host_bits[w] |= other.tx_host_bits[w];
}

void VantageStats::note_day(int day) { days_.insert(day); }

void VantageStats::add_flow_rx(const flow::FlowRecord& r, std::uint32_t sampling_rate) {
  ++flows_;
  BlockObservation& dst = blocks_[net::Block24::containing(r.key.dst)];
  dst.rx_packets += r.packets;
  dst.rx_est_packets += r.packets * sampling_rate;
  IpRxStats& ip = dst.rx_ip(static_cast<std::uint8_t>(r.key.dst.value() & 0xff));
  ip.packets += static_cast<std::uint32_t>(r.packets);
  if (r.key.proto == net::IpProto::kTcp) {
    dst.rx_tcp_packets += r.packets;
    dst.rx_tcp_bytes += r.bytes;
    ip.tcp_packets += static_cast<std::uint32_t>(r.packets);
    ip.tcp_bytes += r.bytes;
  }
}

void VantageStats::add_flow_tx(const flow::FlowRecord& r) {
  const net::Block24 src_block = net::Block24::containing(r.key.src);
  if (source_mask_ == nullptr || source_mask_->contains(src_block)) {
    BlockObservation& src = blocks_[src_block];
    src.tx_packets += r.packets;
    src.mark_host_sent(static_cast<std::uint8_t>(r.key.src.value() & 0xff));
  }
}

void VantageStats::add_flows(std::span<const flow::FlowRecord> flows,
                             std::uint32_t sampling_rate, int day) {
  note_day(day);
  for (const flow::FlowRecord& r : flows) {
    add_flow_rx(r, sampling_rate);
    add_flow_tx(r);
  }
}

void VantageStats::merge(const VantageStats& other) {
  for (const auto& [block, obs] : other.blocks_) {
    blocks_[block].merge(obs);
  }
  days_.insert(other.days_.begin(), other.days_.end());
  flows_ += other.flows_;
}

}  // namespace mtscope::pipeline
