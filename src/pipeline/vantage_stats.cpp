#include "pipeline/vantage_stats.hpp"

namespace mtscope::pipeline {

IpRxStats& BlockObservation::rx_ip(std::uint8_t host) {
  // rx_ips is kept sorted by host, so lookup is a binary search and merge
  // below stays linear (the old linear probe made dense-block merges
  // quadratic).
  const auto it = std::lower_bound(
      rx_ips.begin(), rx_ips.end(), host,
      [](const IpRxStats& ip, std::uint8_t h) { return ip.host < h; });
  if (it != rx_ips.end() && it->host == host) return *it;
  return *rx_ips.insert(it, IpRxStats{host, 0, 0, 0});
}

void BlockObservation::merge(const BlockObservation& other) {
  // Linear two-run union over the sorted rx_ips.
  std::vector<IpRxStats> merged;
  merged.reserve(rx_ips.size() + other.rx_ips.size());
  auto mine = rx_ips.begin();
  auto theirs = other.rx_ips.begin();
  while (mine != rx_ips.end() && theirs != other.rx_ips.end()) {
    if (mine->host < theirs->host) {
      merged.push_back(*mine++);
    } else if (mine->host > theirs->host) {
      merged.push_back(*theirs++);
    } else {
      IpRxStats combined = *mine++;
      combined.packets += theirs->packets;
      combined.tcp_packets += theirs->tcp_packets;
      combined.tcp_bytes += theirs->tcp_bytes;
      ++theirs;
      merged.push_back(combined);
    }
  }
  merged.insert(merged.end(), mine, rx_ips.end());
  merged.insert(merged.end(), theirs, other.rx_ips.end());
  rx_ips = std::move(merged);

  rx_packets += other.rx_packets;
  rx_tcp_packets += other.rx_tcp_packets;
  rx_tcp_bytes += other.rx_tcp_bytes;
  rx_est_packets += other.rx_est_packets;
  tx_packets += other.tx_packets;
  for (int w = 0; w < 4; ++w) tx_host_bits[w] |= other.tx_host_bits[w];
}

void VantageStats::note_day(int day) { days_.insert(day); }

void VantageStats::add_flow_rx(const flow::FlowRecord& r, std::uint32_t sampling_rate) {
  ++flows_;
  store_.add_rx(net::Block24::containing(r.key.dst),
                static_cast<std::uint8_t>(r.key.dst.value() & 0xff), r.packets,
                r.packets * sampling_rate, r.key.proto == net::IpProto::kTcp, r.bytes);
}

void VantageStats::add_flow_tx(const flow::FlowRecord& r) {
  const net::Block24 src_block = net::Block24::containing(r.key.src);
  if (source_mask_ == nullptr || source_mask_->contains(src_block)) {
    store_.add_tx(src_block, static_cast<std::uint8_t>(r.key.src.value() & 0xff),
                  r.packets);
  }
}

void VantageStats::add_flows(std::span<const flow::FlowRecord> flows,
                             std::uint32_t sampling_rate, int day) {
  note_day(day);
  for (const flow::FlowRecord& r : flows) {
    add_flow_rx(r, sampling_rate);
    add_flow_tx(r);
  }
  if (ibr_.enabled()) {
    // Per-record analytics tap — the serial twin of add_analytics_batch
    // (same values per record, commutative sums, so both paths fold to
    // bit-identical matrices).
    for (const flow::FlowRecord& r : flows) {
      ibr_.add_flow(net::Block24::containing(r.key.src).index(),
                    net::Block24::containing(r.key.dst).index(), r.key.dst_port, day,
                    r.packets * sampling_rate);
    }
  }
}

void VantageStats::add_batch_rx(const flow::FlowBatch& batch,
                                std::span<const std::uint32_t> rows) {
  flows_ += rows.size();
  // Upper bound on new rows this run can create; reserving here means the
  // insert loop below never rehashes mid-run (batch statistics size the
  // store, per the shard-affinity design in DESIGN.md §14).
  store_.reserve_rows(store_.size() + rows.size());
  store_.add_rx_rows(rows, batch.dst_block(), batch.dst_host(), batch.packets(),
                     batch.est_packets(), batch.tcp(), batch.bytes());
}

void VantageStats::add_batch_tx(const flow::FlowBatch& batch,
                                std::span<const std::uint32_t> rows) {
  const std::span<const std::uint32_t> block = batch.src_block();
  const std::span<const std::uint8_t> host = batch.src_host();
  const std::span<const std::uint64_t> packets = batch.packets();
  const trie::Block24Set* mask = source_mask_.get();
  constexpr std::size_t kPrefetchAhead = 16;
  for (std::size_t k = 0; k < rows.size(); ++k) {
    if (k + kPrefetchAhead < rows.size()) {
      store_.prefetch_block(net::Block24(block[rows[k + kPrefetchAhead]]));
    }
    const std::uint32_t i = rows[k];
    const net::Block24 src_block(block[i]);
    if (mask == nullptr || mask->contains(src_block)) {
      store_.add_tx(src_block, host[i], packets[i]);
    }
  }
}

void VantageStats::merge(const VantageStats& other) {
  store_.merge(other.store_);
  days_.insert(other.days_.begin(), other.days_.end());
  flows_ += other.flows_;
  ibr_.merge(other.ibr_);
}

VantageStats merge_stats(VantageStats first, std::span<const VantageStats* const> rest,
                         std::size_t reserve_rows) {
  if (reserve_rows > 0) first.reserve_blocks(reserve_rows);
  for (const VantageStats* part : rest) first.merge(*part);
  return first;
}

}  // namespace mtscope::pipeline
