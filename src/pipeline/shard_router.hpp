// ShardRouter: deal one FlowBatch's rows to shard-affine stores.
//
// The sharded collector keys every store touch by Block24 % shards — the
// same partition BlockStatsStore rows end up in — so a worker holding one
// store per shard must route each record twice: destination side by the
// dst block, source side by the src block.  Doing that per record means the
// insert loop bounces between `shards` stores in whatever order the
// exporter emitted flows, evicting each store's index from cache between
// touches.
//
// The router instead buckets a whole batch up front with a counting sort
// over the block-id columns: one pass counts rows per shard, a prefix sum
// carves the order array into per-shard segments, a scatter pass fills
// them.  Insertion then walks each shard's rows as one contiguous run, so
// a store's index and columns stay hot for the whole run and each store is
// touched exactly twice per batch (rx run + tx run).  The scatter is
// stable (ascending row order within a shard) — irrelevant to the output,
// which is order-independent by the merge laws, but it keeps replays
// deterministic to the byte for debugging.
//
// Scratch arrays are retained across route() calls; a reused router
// allocates only on its first (largest) batch.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "flow/flow_batch.hpp"

namespace mtscope::pipeline {

class ShardRouter {
 public:
  /// Bucket `batch`'s rows: destination side by dst_block() % shards,
  /// source side by src_block() % shards.  shards == 1 short-circuits to
  /// one identity segment over all rows.
  void route(const flow::FlowBatch& batch, unsigned shards);

  /// Batch row indices whose destination /24 lands in `shard`, ascending.
  [[nodiscard]] std::span<const std::uint32_t> rx_rows(unsigned shard) const noexcept {
    return segment(rx_order_, rx_offsets_, shard);
  }

  /// Batch row indices whose source /24 lands in `shard`, ascending.
  [[nodiscard]] std::span<const std::uint32_t> tx_rows(unsigned shard) const noexcept {
    return segment(tx_order_, tx_offsets_, shard);
  }

  [[nodiscard]] unsigned shards() const noexcept { return shards_; }

 private:
  static std::span<const std::uint32_t> segment(const std::vector<std::uint32_t>& order,
                                                const std::vector<std::uint32_t>& offsets,
                                                unsigned shard) noexcept {
    return {order.data() + offsets[shard], offsets[shard + 1] - offsets[shard]};
  }

  void bucket(std::span<const std::uint32_t> blocks, unsigned shards,
              std::vector<std::uint32_t>& order, std::vector<std::uint32_t>& offsets);

  unsigned shards_ = 0;
  std::vector<std::uint32_t> rx_order_;
  std::vector<std::uint32_t> tx_order_;
  std::vector<std::uint32_t> rx_offsets_;  // shards + 1 entries
  std::vector<std::uint32_t> tx_offsets_;
  std::vector<std::uint32_t> cursor_;  // scatter scratch, reused per batch
};

}  // namespace mtscope::pipeline
