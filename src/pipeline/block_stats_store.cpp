#include "pipeline/block_stats_store.hpp"

#include <algorithm>
#include <bit>
#include <limits>

namespace mtscope::pipeline {

namespace {

constexpr std::uint32_t kNoRow = std::numeric_limits<std::uint32_t>::max();

inline std::uint64_t pack_slot(std::uint32_t key, std::uint32_t row) noexcept {
  return (static_cast<std::uint64_t>(key) << 32) | (row + 1);
}

}  // namespace

std::uint32_t BlockStatsStore::IpArena::class_of(std::uint32_t n) noexcept {
  std::uint32_t cls = 0;
  while (kRunClasses[cls] < n) ++cls;
  return cls;
}

IpRxStats* BlockStatsStore::IpArena::allocate(std::uint32_t cls) {
  ++spills;
  std::vector<IpRxStats*>& free = free_runs[cls];
  if (!free.empty()) {
    IpRxStats* run = free.back();
    free.pop_back();
    wasted -= kRunClasses[cls];
    return run;
  }
  const std::uint32_t n = kRunClasses[cls];
  allocated += n;
  if (last_chunk_used + n > last_chunk_size) {
    chunks.push_back(std::make_unique<IpRxStats[]>(kChunkIps));
    last_chunk_size = kChunkIps;
    last_chunk_used = 0;
  }
  IpRxStats* out = chunks.back().get() + last_chunk_used;
  last_chunk_used += n;
  return out;
}

void BlockStatsStore::IpArena::retire(IpRxStats* run, std::uint32_t cls) {
  free_runs[cls].push_back(run);
  wasted += kRunClasses[cls];
}

BlockStatsStore::BlockStatsStore(const BlockStatsStore& other)
    : slots_(other.slots_),
      keys_(other.keys_),
      rx_packets_(other.rx_packets_),
      rx_tcp_packets_(other.rx_tcp_packets_),
      rx_tcp_bytes_(other.rx_tcp_bytes_),
      rx_est_packets_(other.rx_est_packets_),
      tx_packets_(other.tx_packets_),
      tx_idx_(other.tx_idx_),
      ip_slots_(other.ip_slots_),
      tx_bits_(other.tx_bits_) {
  // The copied slots still point into `other`'s arena: re-home every spilled
  // run into a fresh arena, compacted to the tightest class that fits its
  // live count.
  for (IpSlot& slot : ip_slots_) {
    if (!slot.spilled()) continue;
    const std::uint32_t cls = IpArena::class_of(slot.count);
    IpRxStats* run = arena_.allocate(cls);
    std::copy(slot.spill, slot.spill + slot.count, run);
    slot.spill = run;
    slot.capacity = IpArena::kRunClasses[cls];
  }
}

BlockStatsStore& BlockStatsStore::operator=(const BlockStatsStore& other) {
  if (this != &other) {
    BlockStatsStore copy(other);
    *this = std::move(copy);
  }
  return *this;
}

std::uint32_t BlockStatsStore::find_row(net::Block24 block) const noexcept {
  if (slots_.empty()) return kNoRow;
  const std::uint32_t mask = static_cast<std::uint32_t>(slots_.size()) - 1;
  std::uint32_t i = probe_start(block.index(), slots_.size());
  while (true) {
    const std::uint64_t entry = slots_[i];
    if (entry == 0) return kNoRow;
    if (static_cast<std::uint32_t>(entry >> 32) == block.index()) {
      return static_cast<std::uint32_t>(entry) - 1;
    }
    i = (i + 1) & mask;
  }
}

BlockStatsStore::ConstRow BlockStatsStore::find(net::Block24 block) const noexcept {
  const std::uint32_t row = find_row(block);
  return row == kNoRow ? ConstRow{} : ConstRow{this, row};
}

void BlockStatsStore::rehash(std::size_t new_capacity) {
  slots_.assign(new_capacity, 0);
  const std::uint32_t mask = static_cast<std::uint32_t>(new_capacity) - 1;
  for (std::uint32_t row = 0; row < keys_.size(); ++row) {
    std::uint32_t i = probe_start(keys_[row], new_capacity);
    while (slots_[i] != 0) i = (i + 1) & mask;
    slots_[i] = pack_slot(keys_[row], row);
  }
  // The table admits at most 7/8 · capacity rows before the next rehash;
  // reserving exactly that keeps the columns free of doubling slack.
  const std::size_t max_rows = new_capacity / 8 * 7 + 1;
  keys_.reserve(max_rows);
  rx_packets_.reserve(max_rows);
  rx_tcp_packets_.reserve(max_rows);
  rx_tcp_bytes_.reserve(max_rows);
  rx_est_packets_.reserve(max_rows);
  tx_packets_.reserve(max_rows);
  tx_idx_.reserve(max_rows);
  ip_slots_.reserve(max_rows);
}

void BlockStatsStore::reserve_rows(std::size_t rows) {
  // Same growth predicate as find_or_insert: capacity is enough when
  // rows <= 7/8 of it.
  if (rows * 8 <= slots_.size() * 7) return;
  std::size_t capacity = std::max<std::size_t>(16, slots_.size() * 2);
  while (rows * 8 > capacity * 7) capacity *= 2;
  rehash(capacity);
}

std::uint32_t BlockStatsStore::find_or_insert(net::Block24 block) {
  // Grow before probing so the insert below always finds an empty slot and
  // the load factor stays under 7/8.
  if ((keys_.size() + 1) * 8 > slots_.size() * 7) {
    rehash(std::max<std::size_t>(16, slots_.size() * 2));
  }
  const std::uint32_t mask = static_cast<std::uint32_t>(slots_.size()) - 1;
  std::uint32_t i = probe_start(block.index(), slots_.size());
  while (true) {
    const std::uint64_t entry = slots_[i];
    if (entry == 0) break;
    if (static_cast<std::uint32_t>(entry >> 32) == block.index()) {
      return static_cast<std::uint32_t>(entry) - 1;
    }
    i = (i + 1) & mask;
  }
  const std::uint32_t row = static_cast<std::uint32_t>(keys_.size());
  slots_[i] = pack_slot(block.index(), row);
  keys_.push_back(block.index());
  rx_packets_.push_back(0);
  rx_tcp_packets_.push_back(0);
  rx_tcp_bytes_.push_back(0);
  rx_est_packets_.push_back(0);
  tx_packets_.push_back(0);
  tx_idx_.push_back(kNoTxBits);
  ip_slots_.emplace_back();
  return row;
}

std::array<std::uint64_t, 4>& BlockStatsStore::tx_bits_for(std::uint32_t row) {
  std::uint32_t t = tx_idx_[row];
  if (t == kNoTxBits) {
    t = static_cast<std::uint32_t>(tx_bits_.size());
    tx_bits_.push_back({0, 0, 0, 0});
    tx_idx_[row] = t;
  }
  return tx_bits_[t];
}

IpRxStats& BlockStatsStore::upsert_ip(std::uint32_t row, std::uint8_t host) {
  IpSlot& slot = ip_slots_[row];
  IpRxStats* data = slot.data();
  std::uint32_t lo = 0;
  std::uint32_t hi = slot.count;
  while (lo < hi) {
    const std::uint32_t mid = (lo + hi) / 2;
    if (data[mid].host < host) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < slot.count && data[lo].host == host) return data[lo];

  if (slot.count == slot.capacity) {
    const std::uint32_t cls = IpArena::class_of(slot.count + 1u);
    IpRxStats* run = arena_.allocate(cls);
    std::copy(data, data + slot.count, run);
    if (slot.spilled()) arena_.retire(slot.spill, IpArena::class_of(slot.capacity));
    slot.spill = run;
    slot.capacity = IpArena::kRunClasses[cls];
    data = run;
  }
  for (std::uint32_t i = slot.count; i > lo; --i) data[i] = data[i - 1];
  data[lo] = IpRxStats{host, 0, 0, 0};
  ++slot.count;
  return data[lo];
}

void BlockStatsStore::assign_ips(std::uint32_t row, std::span<const IpRxStats> theirs) {
  IpSlot& slot = ip_slots_[row];
  if (theirs.size() > kInlineIps) {
    const std::uint32_t cls = IpArena::class_of(static_cast<std::uint32_t>(theirs.size()));
    slot.spill = arena_.allocate(cls);
    slot.capacity = IpArena::kRunClasses[cls];
  }
  std::copy(theirs.begin(), theirs.end(), slot.data());
  slot.count = static_cast<std::uint16_t>(theirs.size());
}

void BlockStatsStore::merge_ips(std::uint32_t row, std::span<const IpRxStats> theirs) {
  IpSlot& slot = ip_slots_[row];
  if (slot.count == 0) {
    assign_ips(row, theirs);
    return;
  }
  IpRxStats* mine = slot.data();

  // Size the union with a compare-only pass (both runs are sorted and
  // short), then merge without intermediate scratch.
  std::uint32_t n = 0;
  {
    std::uint32_t i = 0;
    std::size_t j = 0;
    while (i < slot.count && j < theirs.size()) {
      const std::uint8_t a = mine[i].host;
      const std::uint8_t b = theirs[j].host;
      i += a <= b;
      j += b <= a;
      ++n;
    }
    n += (slot.count - i) + static_cast<std::uint32_t>(theirs.size() - j);
  }

  if (n > slot.capacity) {
    // Forward-merge both runs straight into a bigger arena run, then
    // retire the old one for recycling.
    const std::uint32_t cls = IpArena::class_of(n);
    IpRxStats* out = arena_.allocate(cls);
    std::uint32_t i = 0;
    std::size_t j = 0;
    std::uint32_t k = 0;
    while (i < slot.count && j < theirs.size()) {
      if (mine[i].host < theirs[j].host) {
        out[k++] = mine[i++];
      } else if (mine[i].host > theirs[j].host) {
        out[k++] = theirs[j++];
      } else {
        IpRxStats combined = mine[i++];
        const IpRxStats& t = theirs[j++];
        combined.packets += t.packets;
        combined.tcp_packets += t.tcp_packets;
        combined.tcp_bytes += t.tcp_bytes;
        out[k++] = combined;
      }
    }
    while (i < slot.count) out[k++] = mine[i++];
    while (j < theirs.size()) out[k++] = theirs[j++];
    if (slot.spilled()) arena_.retire(slot.spill, IpArena::class_of(slot.capacity));
    slot.spill = out;
    slot.capacity = IpArena::kRunClasses[cls];
  } else {
    // Union fits where the run already lives: merge backward in place.
    // The write cursor k never catches the read cursor i (k - i equals
    // the number of their entries still to place), so nothing unread is
    // overwritten.
    std::int32_t i = static_cast<std::int32_t>(slot.count) - 1;
    std::ptrdiff_t j = static_cast<std::ptrdiff_t>(theirs.size()) - 1;
    std::int32_t k = static_cast<std::int32_t>(n) - 1;
    while (j >= 0) {
      if (i >= 0 && mine[i].host > theirs[j].host) {
        mine[k--] = mine[i--];
      } else if (i >= 0 && mine[i].host == theirs[j].host) {
        IpRxStats combined = mine[i--];
        const IpRxStats& t = theirs[j--];
        combined.packets += t.packets;
        combined.tcp_packets += t.tcp_packets;
        combined.tcp_bytes += t.tcp_bytes;
        mine[k--] = combined;
      } else {
        mine[k--] = theirs[j--];
      }
    }
  }
  slot.count = static_cast<std::uint16_t>(n);
}

void BlockStatsStore::add_rx(net::Block24 block, std::uint8_t host, std::uint64_t packets,
                             std::uint64_t est_packets, bool tcp, std::uint64_t tcp_bytes) {
  const std::uint32_t row = find_or_insert(block);
  rx_packets_[row] += packets;
  rx_est_packets_[row] += est_packets;
  IpRxStats& ip = upsert_ip(row, host);
  ip.packets += static_cast<std::uint32_t>(packets);
  if (tcp) {
    rx_tcp_packets_[row] += packets;
    rx_tcp_bytes_[row] += tcp_bytes;
    ip.tcp_packets += static_cast<std::uint32_t>(packets);
    ip.tcp_bytes += tcp_bytes;
  }
}

void BlockStatsStore::add_rx_rows(std::span<const std::uint32_t> rows,
                                  std::span<const std::uint32_t> keys,
                                  std::span<const std::uint8_t> hosts,
                                  std::span<const std::uint64_t> packets,
                                  std::span<const std::uint64_t> est_packets,
                                  std::span<const std::uint8_t> tcp,
                                  std::span<const std::uint64_t> tcp_bytes) {
  constexpr std::size_t kProbeAhead = 16;
  constexpr std::size_t kUpdateAhead = 8;

  // Pass 1: resolve every key to its dense row (creating first-seen rows
  // exactly where the interleaved loop would), slot lines pulled ahead.
  row_scratch_.resize(rows.size());
  for (std::size_t k = 0; k < rows.size(); ++k) {
    if (k + kProbeAhead < rows.size()) {
      prefetch_block(net::Block24(keys[rows[k + kProbeAhead]]));
    }
    row_scratch_[k] = find_or_insert(net::Block24(keys[rows[k]]));
  }

  // Pass 2: commutative column sums against known rows; the hot counter
  // and per-IP-run lines of upcoming rows load while this one retires.
  for (std::size_t k = 0; k < rows.size(); ++k) {
#if defined(__GNUC__) || defined(__clang__)
    if (k + kUpdateAhead < rows.size()) {
      const std::uint32_t ahead = row_scratch_[k + kUpdateAhead];
      __builtin_prefetch(&rx_packets_[ahead], 1);
      __builtin_prefetch(&rx_est_packets_[ahead], 1);
      __builtin_prefetch(&ip_slots_[ahead], 1);
    }
#endif
    const std::uint32_t row = row_scratch_[k];
    const std::uint32_t i = rows[k];
    rx_packets_[row] += packets[i];
    rx_est_packets_[row] += est_packets[i];
    IpRxStats& ip = upsert_ip(row, hosts[i]);
    ip.packets += static_cast<std::uint32_t>(packets[i]);
    if (tcp[i] != 0) {
      rx_tcp_packets_[row] += packets[i];
      rx_tcp_bytes_[row] += tcp_bytes[i];
      ip.tcp_packets += static_cast<std::uint32_t>(packets[i]);
      ip.tcp_bytes += tcp_bytes[i];
    }
  }
}

void BlockStatsStore::add_tx(net::Block24 block, std::uint8_t host, std::uint64_t packets) {
  const std::uint32_t row = find_or_insert(block);
  tx_packets_[row] += packets;
  tx_bits_for(row)[host >> 6] |= std::uint64_t{1} << (host & 63);
}

void BlockStatsStore::merge(const BlockStatsStore& other) {
  // Their key column is a sequential read, so the fold knows every probe
  // in advance — same look-ahead trick as the batched ingest loop.
  constexpr std::uint32_t kPrefetchAhead = 16;
  for (std::uint32_t theirs = 0; theirs < other.keys_.size(); ++theirs) {
    if (theirs + kPrefetchAhead < other.keys_.size()) {
      prefetch_block(net::Block24(other.keys_[theirs + kPrefetchAhead]));
    }
    const std::size_t rows_before = keys_.size();
    const std::uint32_t row = find_or_insert(net::Block24(other.keys_[theirs]));
    const IpSlot& their_slot = other.ip_slots_[theirs];
    if (keys_.size() != rows_before) {
      // Row is new to this store: bulk-copy instead of merging into zeros.
      rx_packets_[row] = other.rx_packets_[theirs];
      rx_tcp_packets_[row] = other.rx_tcp_packets_[theirs];
      rx_tcp_bytes_[row] = other.rx_tcp_bytes_[theirs];
      rx_est_packets_[row] = other.rx_est_packets_[theirs];
      tx_packets_[row] = other.tx_packets_[theirs];
      if (other.tx_idx_[theirs] != kNoTxBits) {
        tx_bits_for(row) = other.tx_bits_[other.tx_idx_[theirs]];
      }
      if (their_slot.count > 0) {
        assign_ips(row, {their_slot.data(), their_slot.count});
      }
      continue;
    }
    rx_packets_[row] += other.rx_packets_[theirs];
    rx_tcp_packets_[row] += other.rx_tcp_packets_[theirs];
    rx_tcp_bytes_[row] += other.rx_tcp_bytes_[theirs];
    rx_est_packets_[row] += other.rx_est_packets_[theirs];
    tx_packets_[row] += other.tx_packets_[theirs];
    if (other.tx_idx_[theirs] != kNoTxBits) {
      const std::array<std::uint64_t, 4>& their_bits = other.tx_bits_[other.tx_idx_[theirs]];
      std::array<std::uint64_t, 4>& bits = tx_bits_for(row);
      for (int w = 0; w < 4; ++w) bits[w] |= their_bits[w];
    }
    if (their_slot.count > 0) {
      merge_ips(row, {their_slot.data(), their_slot.count});
    }
  }
}

std::size_t BlockStatsStore::memory_bytes() const noexcept {
  std::size_t arena_bytes = arena_.chunks.size() * IpArena::kChunkIps * sizeof(IpRxStats);
  for (const std::vector<IpRxStats*>& free : arena_.free_runs) {
    arena_bytes += free.capacity() * sizeof(IpRxStats*);
  }
  return slots_.capacity() * sizeof(std::uint64_t) +
         keys_.capacity() * sizeof(std::uint32_t) +
         rx_packets_.capacity() * sizeof(std::uint64_t) +
         rx_tcp_packets_.capacity() * sizeof(std::uint64_t) +
         rx_tcp_bytes_.capacity() * sizeof(std::uint64_t) +
         rx_est_packets_.capacity() * sizeof(std::uint64_t) +
         tx_packets_.capacity() * sizeof(std::uint64_t) +
         tx_idx_.capacity() * sizeof(std::uint32_t) +
         tx_bits_.capacity() * sizeof(std::array<std::uint64_t, 4>) +
         ip_slots_.capacity() * sizeof(IpSlot) +
         row_scratch_.capacity() * sizeof(std::uint32_t) + arena_bytes;
}

}  // namespace mtscope::pipeline
