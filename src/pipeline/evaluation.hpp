// Evaluation against simulation ground truth (paper §4.3): false-positive
// accounting and operational-telescope coverage (Table 4).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "sim/address_plan.hpp"
#include "trie/block24_set.hpp"

namespace mtscope::pipeline {

struct GroundTruthEval {
  std::uint64_t inferred = 0;
  std::uint64_t truly_dark = 0;    // inferred & ground-truth dark
  std::uint64_t truly_active = 0;  // inferred & ground-truth active (FP)
  std::uint64_t unallocated = 0;   // inferred but outside any allocation

  [[nodiscard]] double false_positive_rate() const noexcept {
    return inferred == 0 ? 0.0
                         : static_cast<double>(truly_active) / static_cast<double>(inferred);
  }
};

/// Compare an inferred meta-telescope set against the plan's ground truth.
[[nodiscard]] GroundTruthEval evaluate_against_ground_truth(const trie::Block24Set& inferred,
                                                            const sim::AddressPlan& plan);

struct TelescopeCoverage {
  std::string code;
  std::uint64_t size = 0;           // total /24s
  std::uint64_t actually_dark = 0;  // /24s dark during the window (TEU1 leases out some)
  std::uint64_t inferred = 0;       // /24s recovered by the pipeline

  [[nodiscard]] double coverage_of_dark() const noexcept {
    return actually_dark == 0
               ? 0.0
               : static_cast<double>(inferred) / static_cast<double>(actually_dark);
  }
};

/// How much of one operational telescope the meta-telescope recovered.
/// `dark_on_window(block)` reports whether the block was genuinely dark
/// during the evaluation window (handles TEU1's daily leasing).
[[nodiscard]] TelescopeCoverage evaluate_telescope_coverage(
    const trie::Block24Set& inferred, const sim::TelescopeInfo& telescope,
    const std::function<bool(net::Block24)>& dark_on_window);

}  // namespace mtscope::pipeline
