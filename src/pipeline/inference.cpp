#include "pipeline/inference.hpp"

#include <algorithm>
#include <stdexcept>

namespace mtscope::pipeline {

void FunnelCounts::merge(const FunnelCounts& other) noexcept {
  seen += other.seen;
  after_tcp += other.after_tcp;
  after_size += other.after_size;
  after_source += other.after_source;
  after_reserved += other.after_reserved;
  after_routed += other.after_routed;
  after_volume += other.after_volume;
}

void InferenceResult::merge(const InferenceResult& other) {
  dark |= other.dark;
  unclean += other.unclean;
  gray += other.gray;
  funnel.merge(other.funnel);
}

InferenceEngine::InferenceEngine(PipelineConfig config, const routing::Rib& rib,
                                 const routing::SpecialPurposeRegistry& registry)
    : config_(config), rib_(rib), registry_(registry) {
  if (config_.avg_size_threshold <= 0.0) {
    throw std::invalid_argument("InferenceEngine: avg_size_threshold must be positive");
  }
  if (config_.volume_scale <= 0.0) {
    throw std::invalid_argument("InferenceEngine: volume_scale must be positive");
  }
}

double InferenceEngine::volume_cap_for(const VantageStats& stats) const noexcept {
  const double days = static_cast<double>(std::max(1, stats.day_count()));
  return config_.max_rx_pkts_per_day * config_.volume_scale * days;
}

void InferenceEngine::classify_block(net::Block24 block, const BlockObservation& obs,
                                     double volume_cap, InferenceResult& out) const {
  if (obs.rx_packets == 0) return;  // source-only blocks: not candidates
  ++out.funnel.seen;

  // Does the spoofing tolerance forgive this block's outbound activity?
  const bool originates = obs.tx_packets > config_.spoof_tolerance_pkts;

  // Per-address survival through steps 1-3.
  bool any_tcp = false;        // step 1
  bool any_size_ok = false;    // step 2
  bool any_clean = false;      // step 3
  bool any_liveness = false;   // for classification (step 7)
  for (const IpRxStats& ip : obs.rx_ips) {
    if (ip.packets == 0) continue;
    const bool tcp = ip.tcp_packets > 0;
    const bool size_ok = tcp && ip.avg_tcp_size() <= config_.avg_size_threshold;
    const bool sent = originates && obs.host_sent(ip.host);
    any_tcp |= tcp;
    any_size_ok |= size_ok;
    any_clean |= size_ok && !sent;
    // Liveness evidence for step 7: an address only disqualifies the
    // block from "dark" when its traffic genuinely looks like a used
    // host.  A single 48-byte SYN (a SYN carrying an MSS option) or a
    // stray UDP probe is IBR-consistent; repeated over-threshold TCP, or
    // any full-size data packet, is not.  Without this distinction,
    // sampling noise would demote every *well-observed* dark block to
    // "unclean" — exactly the blocks the meta-telescope most wants.
    const bool liveness =
        tcp && ip.avg_tcp_size() > config_.avg_size_threshold &&
        ((ip.tcp_packets >= 2 && ip.avg_tcp_size() > config_.liveness_syn_ceiling) ||
         ip.avg_tcp_size() > config_.liveness_data_floor);
    any_liveness |= liveness;
  }

  if (!any_tcp) return;
  ++out.funnel.after_tcp;
  if (!any_size_ok) return;
  ++out.funnel.after_size;
  if (!any_clean) return;
  ++out.funnel.after_source;

  // Steps 4-6 are properties of the whole /24.
  if (registry_.is_reserved(block)) return;
  ++out.funnel.after_reserved;
  if (!rib_.is_routed(block)) return;
  ++out.funnel.after_routed;
  if (static_cast<double>(obs.rx_est_packets) > volume_cap) return;
  ++out.funnel.after_volume;

  // Step 7: classify.
  if (originates) {
    ++out.gray;
  } else if (any_liveness) {
    ++out.unclean;
  } else {
    out.dark.insert(block);
  }
}

InferenceResult InferenceEngine::infer(const VantageStats& stats) const {
  InferenceResult result;
  const double volume_cap = volume_cap_for(stats);
  for (const auto& [block, obs] : stats.blocks()) {
    classify_block(block, obs, volume_cap, result);
  }
  return result;
}

}  // namespace mtscope::pipeline
