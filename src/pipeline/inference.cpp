#include "pipeline/inference.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace mtscope::pipeline {

namespace {

inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

void FunnelCounts::merge(const FunnelCounts& other) noexcept {
  seen += other.seen;
  after_tcp += other.after_tcp;
  after_size += other.after_size;
  after_source += other.after_source;
  after_reserved += other.after_reserved;
  after_routed += other.after_routed;
  after_volume += other.after_volume;
}

void InferenceResult::merge(const InferenceResult& other) {
  dark |= other.dark;
  unclean_blocks |= other.unclean_blocks;
  gray_blocks |= other.gray_blocks;
  unclean += other.unclean;
  gray += other.gray;
  funnel.merge(other.funnel);
}

void StepDurations::merge(const StepDurations& other) noexcept {
  scan_ns += other.scan_ns;
  reserved_ns += other.reserved_ns;
  routed_ns += other.routed_ns;
  volume_ns += other.volume_ns;
  classify_ns += other.classify_ns;
}

void StepDurations::record(obs::MetricsRegistry& metrics) const {
  metrics.timer("infer.step.scan_us").record_us(scan_ns / 1000);
  metrics.timer("infer.step.reserved_us").record_us(reserved_ns / 1000);
  metrics.timer("infer.step.routed_us").record_us(routed_ns / 1000);
  metrics.timer("infer.step.volume_us").record_us(volume_ns / 1000);
  metrics.timer("infer.step.classify_us").record_us(classify_ns / 1000);
}

void record_inference_metrics(const InferenceResult& result, obs::MetricsRegistry& metrics) {
  const FunnelCounts& f = result.funnel;
  metrics.counter(funnel_metric::kSeen).add(f.seen);
  metrics.counter(funnel_metric::kAfterTcp).add(f.after_tcp);
  metrics.counter(funnel_metric::kAfterSize).add(f.after_size);
  metrics.counter(funnel_metric::kAfterSource).add(f.after_source);
  metrics.counter(funnel_metric::kAfterReserved).add(f.after_reserved);
  metrics.counter(funnel_metric::kAfterRouted).add(f.after_routed);
  metrics.counter(funnel_metric::kAfterVolume).add(f.after_volume);
  metrics.counter("funnel.eliminated.tcp").add(f.seen - f.after_tcp);
  metrics.counter("funnel.eliminated.size").add(f.after_tcp - f.after_size);
  metrics.counter("funnel.eliminated.source").add(f.after_size - f.after_source);
  metrics.counter("funnel.eliminated.reserved").add(f.after_source - f.after_reserved);
  metrics.counter("funnel.eliminated.routed").add(f.after_reserved - f.after_routed);
  metrics.counter("funnel.eliminated.volume").add(f.after_routed - f.after_volume);
  metrics.counter("infer.dark").add(result.dark.size());
  metrics.counter("infer.unclean").add(result.unclean);
  metrics.counter("infer.gray").add(result.gray);
}

InferenceEngine::InferenceEngine(PipelineConfig config, const routing::Rib& rib,
                                 const routing::SpecialPurposeRegistry& registry)
    : config_(config), rib_(rib), registry_(registry) {
  if (config_.avg_size_threshold <= 0.0) {
    throw std::invalid_argument("InferenceEngine: avg_size_threshold must be positive");
  }
  if (config_.volume_scale <= 0.0) {
    throw std::invalid_argument("InferenceEngine: volume_scale must be positive");
  }
}

double InferenceEngine::volume_cap_for(const VantageStats& stats) const noexcept {
  const double days = static_cast<double>(std::max(1, stats.day_count()));
  return config_.max_rx_pkts_per_day * config_.volume_scale * days;
}

template <bool kTimed>
void InferenceEngine::classify_block_impl(BlockStatsStore::ConstRow obs, double volume_cap,
                                          InferenceResult& out,
                                          StepDurations* durations) const {
  // Source-only blocks are not candidates — and with the columnar store
  // this early return touches exactly one column.
  if (obs.rx_packets() == 0) return;
  ++out.funnel.seen;

  std::uint64_t t0 = 0;
  if constexpr (kTimed) t0 = now_ns();

  // Does the spoofing tolerance forgive this block's outbound activity?
  const bool originates = obs.tx_packets() > config_.spoof_tolerance_pkts;

  // Per-address survival through steps 1-3.
  bool any_tcp = false;        // step 1
  bool any_size_ok = false;    // step 2
  bool any_clean = false;      // step 3
  bool any_liveness = false;   // for classification (step 7)
  for (const IpRxStats& ip : obs.ips()) {
    if (ip.packets == 0) continue;
    const bool tcp = ip.tcp_packets > 0;
    const bool size_ok = tcp && ip.avg_tcp_size() <= config_.avg_size_threshold;
    const bool sent = originates && obs.host_sent(ip.host);
    any_tcp |= tcp;
    any_size_ok |= size_ok;
    any_clean |= size_ok && !sent;
    // Liveness evidence for step 7: an address only disqualifies the
    // block from "dark" when its traffic genuinely looks like a used
    // host.  A single 48-byte SYN (a SYN carrying an MSS option) or a
    // stray UDP probe is IBR-consistent; repeated over-threshold TCP, or
    // any full-size data packet, is not.  Without this distinction,
    // sampling noise would demote every *well-observed* dark block to
    // "unclean" — exactly the blocks the meta-telescope most wants.
    const bool liveness =
        tcp && ip.avg_tcp_size() > config_.avg_size_threshold &&
        ((ip.tcp_packets >= 2 && ip.avg_tcp_size() > config_.liveness_syn_ceiling) ||
         ip.avg_tcp_size() > config_.liveness_data_floor);
    any_liveness |= liveness;
  }

  if constexpr (kTimed) {
    const std::uint64_t t1 = now_ns();
    durations->scan_ns += t1 - t0;
    t0 = t1;
  }

  if (!any_tcp) return;
  ++out.funnel.after_tcp;
  if (!any_size_ok) return;
  ++out.funnel.after_size;
  if (!any_clean) return;
  ++out.funnel.after_source;

  // Steps 4-6 are properties of the whole /24.
  const net::Block24 block = obs.block();
  const bool reserved = registry_.is_reserved(block);
  if constexpr (kTimed) {
    const std::uint64_t t1 = now_ns();
    durations->reserved_ns += t1 - t0;
    t0 = t1;
  }
  if (reserved) return;
  ++out.funnel.after_reserved;

  const bool routed = rib_.is_routed(block);
  if constexpr (kTimed) {
    const std::uint64_t t1 = now_ns();
    durations->routed_ns += t1 - t0;
    t0 = t1;
  }
  if (!routed) return;
  ++out.funnel.after_routed;

  const bool over_volume = static_cast<double>(obs.rx_est_packets()) > volume_cap;
  if constexpr (kTimed) {
    const std::uint64_t t1 = now_ns();
    durations->volume_ns += t1 - t0;
    t0 = t1;
  }
  if (over_volume) return;
  ++out.funnel.after_volume;

  // Step 7: classify.
  if (originates) {
    out.gray_blocks.insert(block);
    ++out.gray;
  } else if (any_liveness) {
    out.unclean_blocks.insert(block);
    ++out.unclean;
  } else {
    out.dark.insert(block);
  }
  if constexpr (kTimed) durations->classify_ns += now_ns() - t0;
}

void InferenceEngine::classify_block(BlockStatsStore::ConstRow obs, double volume_cap,
                                     InferenceResult& out) const {
  classify_block_impl<false>(obs, volume_cap, out, nullptr);
}

void InferenceEngine::classify_block_timed(BlockStatsStore::ConstRow obs, double volume_cap,
                                           InferenceResult& out,
                                           StepDurations& durations) const {
  classify_block_impl<true>(obs, volume_cap, out, &durations);
}

InferenceResult InferenceEngine::infer(const VantageStats& stats,
                                       obs::MetricsRegistry* metrics) const {
  InferenceResult result;
  const double volume_cap = volume_cap_for(stats);
  if (metrics == nullptr) {
    for (const BlockStatsStore::ConstRow obs : stats.blocks()) {
      classify_block(obs, volume_cap, result);
    }
    return result;
  }

  StepDurations durations;
  {
    obs::StageTimer total(metrics, "infer.total_us");
    for (const BlockStatsStore::ConstRow obs : stats.blocks()) {
      classify_block_timed(obs, volume_cap, result, durations);
    }
  }
  durations.record(*metrics);
  record_inference_metrics(result, *metrics);
  return result;
}

}  // namespace mtscope::pipeline
