// Activity hit lists (paper §3.3, §4.3): external datasets that confirm
// liveness of /24s (Censys scans, NDT speed tests, ISI ICMP history).
//
// Used to (a) lower-bound the pipeline's false positives and (b) scrub the
// inferred set ("we can apply such active-network ground-truth data to
// further filter our inferences").  Generated here from simulation ground
// truth with each dataset's real-world bias: partial coverage, a
// network-type skew (NDT sees eyeballs), and a sprinkle of stale entries.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/address_plan.hpp"
#include "trie/block24_set.hpp"

namespace mtscope::pipeline {

struct HitListSpec {
  std::string name;
  /// Probability that a truly active /24 appears in the list.
  double coverage = 0.8;
  /// Restrict to ISP-type networks (NDT's eyeball bias); empty = all types.
  bool isp_only = false;
  /// Probability that a truly dark /24 appears anyway (stale history).
  double stale_rate = 0.003;
};

/// The paper's three datasets with their approximate characters.
[[nodiscard]] std::vector<HitListSpec> default_hitlist_specs();

class HitList {
 public:
  HitList(std::string name, trie::Block24Set listed)
      : name_(std::move(name)), listed_(std::move(listed)) {}

  /// Generate one list from ground truth.
  [[nodiscard]] static HitList generate(const sim::AddressPlan& plan, const HitListSpec& spec,
                                        std::uint64_t seed);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const trie::Block24Set& blocks() const noexcept { return listed_; }
  [[nodiscard]] bool contains(net::Block24 block) const noexcept {
    return listed_.contains(block);
  }

 private:
  std::string name_;
  trie::Block24Set listed_;
};

/// Union of several hit lists.
[[nodiscard]] trie::Block24Set hitlist_union(const std::vector<HitList>& lists);

/// §4.3's final correction: remove hit-listed blocks from the inferred set.
/// Returns the scrubbed set; `removed` (optional) receives the cut count.
[[nodiscard]] trie::Block24Set apply_hitlist_correction(const trie::Block24Set& inferred,
                                                        const trie::Block24Set& active_union,
                                                        std::uint64_t* removed = nullptr);

}  // namespace mtscope::pipeline
