// Convenience glue: run simulated IXP-days through the export path and
// accumulate the decoded flows into VantageStats — the "collector" role of
// a meta-telescope deployment.
#pragma once

#include <span>

#include "obs/metrics.hpp"
#include "pipeline/vantage_stats.hpp"
#include "sim/simulation.hpp"

namespace mtscope::pipeline {

struct CollectOptions;  // pipeline/parallel.hpp

/// Collect merged stats over a set of vantage points and days.  Applies the
/// plan's universe mask to bound source-side memory.  With a registry
/// attached, records per-dataset ingest health (flow counts, parse drops,
/// per-vantage totals, ingest duration); nullptr costs nothing.
///
/// This is the *reference* ingestion path: one store, one record at a
/// time, no batching — the semantic oracle every batched/sharded
/// configuration is proven bit-identical against (the differential grids
/// in tests/test_parallel_pipeline and tests/test_ingest_window compare
/// to this function's output).  Production collection goes through the
/// overload below.
[[nodiscard]] VantageStats collect_stats(const sim::Simulation& simulation,
                                         std::span<const std::size_t> ixp_indices,
                                         std::span<const int> days,
                                         obs::MetricsRegistry* metrics = nullptr);

/// Same collection through the staged batched engine (bit-identical
/// output; see pipeline/parallel.hpp).  threads=1 runs the batched
/// single-worker path inline — still batched, just without a pool.
[[nodiscard]] VantageStats collect_stats(const sim::Simulation& simulation,
                                         std::span<const std::size_t> ixp_indices,
                                         std::span<const int> days,
                                         const CollectOptions& options);

/// Per-dataset ingest accounting shared by the serial and sharded
/// collectors: `collect.datasets` / `collect.flows` / `collect.parse_drops`
/// totals plus `collect.vantage.<CODE>.{datasets,flows}`.  Totals depend
/// only on the datasets ingested, never on how they were partitioned —
/// the invariant the metrics tests pin.
void record_dataset_metrics(obs::MetricsRegistry& metrics, const sim::Simulation& simulation,
                            std::size_t ixp_index, const sim::IxpDayData& data);

/// Layout diagnostics of the final per-run store, recorded by both the
/// serial and sharded collectors once collection finishes:
/// `collect.store.blocks` (rows), `collect.store.bytes` (heap footprint),
/// `collect.store.load_factor` (index occupancy, percent), and
/// `collect.store.arena_spills` (per-IP runs that outgrew the inline
/// buffer).  Gauges, because they describe the state of one store, not a
/// running total.
void record_store_metrics(obs::MetricsRegistry& metrics, const VantageStats& stats);

/// All vantage points of the simulation.
[[nodiscard]] std::vector<std::size_t> all_ixps(const sim::Simulation& simulation);

}  // namespace mtscope::pipeline
