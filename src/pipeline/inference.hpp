// The meta-telescope inference pipeline (paper §4.2) — the core
// contribution.
//
// Seven steps over per-IP destination statistics:
//   1. TCP traffic present            (IBR is TCP-SYN dominated)
//   2. average TCP packet size <= 44  (tuned in §4.1 / Table 3)
//   3. source address unseen          (modulo the spoofing tolerance, §7.2)
//   4. not private/multicast/reserved (RFC 6890)
//   5. globally routed                (Route Views union)
//   6. receive volume <= 1.7M pkts/day/24 (asymmetric-return-path filter)
//   7. classify: dark / unclean darknet / graynet.  An address demotes its
//      block from "dark" to "unclean" only when its traffic is genuine
//      liveness evidence (repeated over-threshold TCP or a full-size data
//      packet) — single SYN-with-options or stray UDP probes are
//      IBR-consistent and tolerated.
//
// Funnel counts report, after each step, how many /24s still have at least
// one surviving address — matching Figure 2's semantics (which is the only
// reading under which the paper's own numbers are self-consistent: step 3
// removes ~100k blocks while 3.8M blocks are ultimately gray).
#pragma once

#include <cstdint>
#include <vector>

#include "net/ipv4.hpp"
#include "pipeline/vantage_stats.hpp"
#include "routing/rib.hpp"
#include "routing/special_purpose.hpp"
#include "trie/block24_set.hpp"

namespace mtscope::pipeline {

struct PipelineConfig {
  /// Average inbound TCP IP-packet-size threshold in bytes (step 2).
  double avg_size_threshold = 44.0;

  /// Volume cap in real packets per day per /24 (step 6), paper units.
  double max_rx_pkts_per_day = 1'700'000;

  /// The traffic-scale factor the generating simulation applied; volume
  /// estimates are divided by it before comparing against the cap.  Use 1.0
  /// for real (unscaled) data.
  double volume_scale = 1.0;

  /// Liveness-evidence bounds for step 7 (see inference.cpp): repeated TCP
  /// above the ceiling, or any single packet above the floor, marks an
  /// address as genuinely used.  48 bytes = a SYN carrying options, still
  /// IBR-consistent even when repeated.
  double liveness_syn_ceiling = 48.0;
  double liveness_data_floor = 100.0;

  /// Sampled packets a block may "source" before step 3 disqualifies it —
  /// the spoofing tolerance (0 = paper's strict default; §7.2 derives
  /// per-day values from unrouted space).
  std::uint64_t spoof_tolerance_pkts = 0;
};

/// Figure 2's funnel: /24 counts with >= 1 surviving address after each step.
struct FunnelCounts {
  std::uint64_t seen = 0;            // blocks receiving any traffic
  std::uint64_t after_tcp = 0;       // step 1
  std::uint64_t after_size = 0;      // step 2
  std::uint64_t after_source = 0;    // step 3
  std::uint64_t after_reserved = 0;  // step 4
  std::uint64_t after_routed = 0;    // step 5
  std::uint64_t after_volume = 0;    // step 6

  /// Element-wise sum — the reduction step of the parallel engine.
  void merge(const FunnelCounts& other) noexcept;

  friend bool operator==(const FunnelCounts&, const FunnelCounts&) noexcept = default;
};

/// Final classification (step 7).
struct InferenceResult {
  trie::Block24Set dark;          // meta-telescope prefixes
  std::uint64_t unclean = 0;      // unclean darknets
  std::uint64_t gray = 0;         // graynets
  FunnelCounts funnel;

  [[nodiscard]] std::uint64_t dark_count() const noexcept { return dark.size(); }

  /// Fold in a partial result computed over a disjoint block range: counts
  /// add, the dark set unions.  Commutative, so any reduction order yields
  /// the same result.
  void merge(const InferenceResult& other);
};

class InferenceEngine {
 public:
  /// `rib` and `registry` must outlive the engine.
  InferenceEngine(PipelineConfig config, const routing::Rib& rib,
                  const routing::SpecialPurposeRegistry& registry);

  /// Run the full pipeline over accumulated vantage statistics.
  [[nodiscard]] InferenceResult infer(const VantageStats& stats) const;

  /// Steps 1-7 for a single /24, accumulating into `out` — the building
  /// block shared by infer() and pipeline::parallel_infer().  `volume_cap`
  /// must come from volume_cap_for() on the *whole* stats object so every
  /// range partition applies the same day normalisation.
  void classify_block(net::Block24 block, const BlockObservation& obs, double volume_cap,
                      InferenceResult& out) const;

  /// The step-6 volume cap for `stats`, in estimated sampled packets over
  /// the covered window (empty stats clamp to one day).
  [[nodiscard]] double volume_cap_for(const VantageStats& stats) const noexcept;

  [[nodiscard]] const PipelineConfig& config() const noexcept { return config_; }

 private:
  PipelineConfig config_;
  const routing::Rib& rib_;
  const routing::SpecialPurposeRegistry& registry_;
};

}  // namespace mtscope::pipeline
