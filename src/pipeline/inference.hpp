// The meta-telescope inference pipeline (paper §4.2) — the core
// contribution.
//
// Seven steps over per-IP destination statistics:
//   1. TCP traffic present            (IBR is TCP-SYN dominated)
//   2. average TCP packet size <= 44  (tuned in §4.1 / Table 3)
//   3. source address unseen          (modulo the spoofing tolerance, §7.2)
//   4. not private/multicast/reserved (RFC 6890)
//   5. globally routed                (Route Views union)
//   6. receive volume <= 1.7M pkts/day/24 (asymmetric-return-path filter)
//   7. classify: dark / unclean darknet / graynet.  An address demotes its
//      block from "dark" to "unclean" only when its traffic is genuine
//      liveness evidence (repeated over-threshold TCP or a full-size data
//      packet) — single SYN-with-options or stray UDP probes are
//      IBR-consistent and tolerated.
//
// Funnel counts report, after each step, how many /24s still have at least
// one surviving address — matching Figure 2's semantics (which is the only
// reading under which the paper's own numbers are self-consistent: step 3
// removes ~100k blocks while 3.8M blocks are ultimately gray).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "net/ipv4.hpp"
#include "obs/metrics.hpp"
#include "pipeline/vantage_stats.hpp"
#include "routing/rib.hpp"
#include "routing/special_purpose.hpp"
#include "trie/block24_set.hpp"

namespace mtscope::pipeline {

/// Canonical metric names for the Figure 2 funnel — shared by the serial
/// and parallel inference paths, the tests, and the snapshot schema check.
namespace funnel_metric {
inline constexpr std::string_view kSeen = "funnel.seen";
inline constexpr std::string_view kAfterTcp = "funnel.after_tcp";
inline constexpr std::string_view kAfterSize = "funnel.after_size";
inline constexpr std::string_view kAfterSource = "funnel.after_source";
inline constexpr std::string_view kAfterReserved = "funnel.after_reserved";
inline constexpr std::string_view kAfterRouted = "funnel.after_routed";
inline constexpr std::string_view kAfterVolume = "funnel.after_volume";
}  // namespace funnel_metric

struct PipelineConfig {
  /// Average inbound TCP IP-packet-size threshold in bytes (step 2).
  double avg_size_threshold = 44.0;

  /// Volume cap in real packets per day per /24 (step 6), paper units.
  double max_rx_pkts_per_day = 1'700'000;

  /// The traffic-scale factor the generating simulation applied; volume
  /// estimates are divided by it before comparing against the cap.  Use 1.0
  /// for real (unscaled) data.
  double volume_scale = 1.0;

  /// Liveness-evidence bounds for step 7 (see inference.cpp): repeated TCP
  /// above the ceiling, or any single packet above the floor, marks an
  /// address as genuinely used.  48 bytes = a SYN carrying options, still
  /// IBR-consistent even when repeated.
  double liveness_syn_ceiling = 48.0;
  double liveness_data_floor = 100.0;

  /// Sampled packets a block may "source" before step 3 disqualifies it —
  /// the spoofing tolerance (0 = paper's strict default; §7.2 derives
  /// per-day values from unrouted space).
  std::uint64_t spoof_tolerance_pkts = 0;
};

/// Figure 2's funnel: /24 counts with >= 1 surviving address after each step.
struct FunnelCounts {
  std::uint64_t seen = 0;            // blocks receiving any traffic
  std::uint64_t after_tcp = 0;       // step 1
  std::uint64_t after_size = 0;      // step 2
  std::uint64_t after_source = 0;    // step 3
  std::uint64_t after_reserved = 0;  // step 4
  std::uint64_t after_routed = 0;    // step 5
  std::uint64_t after_volume = 0;    // step 6

  /// Element-wise sum — the reduction step of the parallel engine.
  void merge(const FunnelCounts& other) noexcept;

  friend bool operator==(const FunnelCounts&, const FunnelCounts&) noexcept = default;
};

/// Final classification (step 7).  Every /24 surviving steps 1-6 lands in
/// exactly one of the three membership sets; `unclean` and `gray` remain
/// the scalar totals the reporting paths always printed (kept in lockstep
/// with the sets, so existing output is byte-identical).  The sets are what
/// the serve layer snapshots: a query server answers "what is this /24?",
/// not just "how many were gray?".
struct InferenceResult {
  trie::Block24Set dark;            // meta-telescope prefixes
  trie::Block24Set unclean_blocks;  // unclean darknets (liveness evidence)
  trie::Block24Set gray_blocks;     // graynets (an address sends)
  std::uint64_t unclean = 0;        // == unclean_blocks.size()
  std::uint64_t gray = 0;           // == gray_blocks.size()
  FunnelCounts funnel;

  [[nodiscard]] std::uint64_t dark_count() const noexcept { return dark.size(); }

  /// Fold in a partial result computed over a disjoint block range: counts
  /// add, the dark set unions.  Commutative, so any reduction order yields
  /// the same result.
  void merge(const InferenceResult& other);
};

/// Wall-clock nanoseconds accumulated per funnel stage.  Steps 1-3 share
/// one entry because the engine evaluates them in a single fused scan over
/// the block's addresses — timing them apart would mean running the scan
/// three times.
struct StepDurations {
  std::uint64_t scan_ns = 0;      // steps 1-3: per-address survival scan
  std::uint64_t reserved_ns = 0;  // step 4: RFC 6890 lookup
  std::uint64_t routed_ns = 0;    // step 5: RIB lookup
  std::uint64_t volume_ns = 0;    // step 6: volume cap
  std::uint64_t classify_ns = 0;  // step 7: classification

  void merge(const StepDurations& other) noexcept;

  /// Record each stage as one sample of the matching `infer.step.*_us`
  /// timer in `metrics`.
  void record(obs::MetricsRegistry& metrics) const;
};

/// Write the Figure 2 funnel of `result` into `metrics`: the seven
/// per-step survivor counters (funnel_metric::*), the per-step elimination
/// counts (`funnel.eliminated.*`), and the step-7 classification totals
/// (`infer.dark` / `infer.unclean` / `infer.gray`).  Counters are set from
/// the result itself, so every path that records them — serial or
/// parallel, any thread/shard config — snapshots exactly the values it
/// returns.
void record_inference_metrics(const InferenceResult& result, obs::MetricsRegistry& metrics);

class InferenceEngine {
 public:
  /// `rib` and `registry` must outlive the engine.
  InferenceEngine(PipelineConfig config, const routing::Rib& rib,
                  const routing::SpecialPurposeRegistry& registry);

  /// Run the full pipeline over accumulated vantage statistics.  With a
  /// registry attached, records the funnel counters, per-stage durations
  /// and total wall clock; with the default nullptr the hot loop is the
  /// uninstrumented classify_block path, unchanged.
  [[nodiscard]] InferenceResult infer(const VantageStats& stats,
                                      obs::MetricsRegistry* metrics = nullptr) const;

  /// Steps 1-7 for a single /24 (a row view into the columnar store),
  /// accumulating into `out` — the building block shared by infer() and
  /// pipeline::parallel_infer().  `volume_cap` must come from
  /// volume_cap_for() on the *whole* stats object so every range partition
  /// applies the same day normalisation.
  void classify_block(BlockStatsStore::ConstRow obs, double volume_cap,
                      InferenceResult& out) const;

  /// classify_block plus per-stage wall-clock accounting into `durations`.
  /// Same funnel logic — both entry points instantiate one templated
  /// implementation, so the timed path cannot drift from the fast one.
  void classify_block_timed(BlockStatsStore::ConstRow obs, double volume_cap,
                            InferenceResult& out, StepDurations& durations) const;

  /// The step-6 volume cap for `stats`, in estimated sampled packets over
  /// the covered window (empty stats clamp to one day).
  [[nodiscard]] double volume_cap_for(const VantageStats& stats) const noexcept;

  [[nodiscard]] const PipelineConfig& config() const noexcept { return config_; }

 private:
  template <bool kTimed>
  void classify_block_impl(BlockStatsStore::ConstRow obs, double volume_cap,
                           InferenceResult& out, StepDurations* durations) const;

  PipelineConfig config_;
  const routing::Rib& rib_;
  const routing::SpecialPurposeRegistry& registry_;
};

}  // namespace mtscope::pipeline
