// Spoofing tolerance (paper §7.2): how many sampled "outbound" packets a
// /24 may show before we believe it actually originates traffic.
//
// Key idea: unrouted address space cannot legitimately send packets, so any
// source activity observed "from" it is spoofed by definition.  The 99.99th
// percentile of per-/24 source packet counts inside known-unrouted /8s is
// the per-dataset baseline for how hard spoofing hits an innocent block.
#pragma once

#include <cstdint>
#include <span>

#include "pipeline/vantage_stats.hpp"

namespace mtscope::pipeline {

struct SpoofToleranceConfig {
  double percentile = 0.9999;
};

/// Compute the tolerance from the given unrouted /8 first-octets.  All
/// 65,536 /24s of each /8 enter the distribution (including the silent
/// majority with zero packets), exactly as the paper's percentile is taken
/// over the whole unrouted block population.
[[nodiscard]] std::uint64_t compute_spoof_tolerance(
    const VantageStats& stats, std::span<const std::uint8_t> unrouted_slash8s,
    SpoofToleranceConfig config = {});

}  // namespace mtscope::pipeline
