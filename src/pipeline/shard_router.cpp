#include "pipeline/shard_router.hpp"

#include <numeric>

namespace mtscope::pipeline {

void ShardRouter::bucket(std::span<const std::uint32_t> blocks, unsigned shards,
                         std::vector<std::uint32_t>& order,
                         std::vector<std::uint32_t>& offsets) {
  const std::uint32_t n = static_cast<std::uint32_t>(blocks.size());
  order.resize(n);
  offsets.assign(shards + 1, 0);
  if (shards == 1) {
    std::iota(order.begin(), order.end(), 0u);
    offsets[1] = n;
    return;
  }

  // Counting sort: histogram, exclusive prefix sum, stable scatter.
  for (const std::uint32_t block : blocks) ++offsets[block % shards + 1];
  for (unsigned s = 1; s <= shards; ++s) offsets[s] += offsets[s - 1];
  cursor_.assign(offsets.begin(), offsets.end() - 1);
  for (std::uint32_t i = 0; i < n; ++i) {
    order[cursor_[blocks[i] % shards]++] = i;
  }
}

void ShardRouter::route(const flow::FlowBatch& batch, unsigned shards) {
  shards_ = shards == 0 ? 1 : shards;
  bucket(batch.dst_block(), shards_, rx_order_, rx_offsets_);
  bucket(batch.src_block(), shards_, tx_order_, tx_offsets_);
}

}  // namespace mtscope::pipeline
