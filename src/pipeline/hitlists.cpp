#include "pipeline/hitlists.hpp"

#include "geo/nettype.hpp"
#include "util/rng.hpp"

namespace mtscope::pipeline {

std::vector<HitListSpec> default_hitlist_specs() {
  return {
      // Censys scans everything on many ports daily: broad coverage.
      {"censys", 0.80, /*isp_only=*/false, 0.002},
      // NDT speed tests are user-initiated from eyeball networks.
      {"ndt", 0.30, /*isp_only=*/true, 0.001},
      // ISI's ICMP history: wide but ping-responsive hosts only, and the
      // snapshot is weeks old (more stale entries).
      {"isi", 0.55, /*isp_only=*/false, 0.006},
  };
}

HitList HitList::generate(const sim::AddressPlan& plan, const HitListSpec& spec,
                          std::uint64_t seed) {
  trie::Block24Set listed;
  util::Rng base(util::mix64(seed, std::hash<std::string>{}(spec.name)));

  plan.active_blocks().for_each([&](net::Block24 block) {
    if (spec.isp_only) {
      const auto as_index = plan.as_of(block);
      if (!as_index) return;
      if (plan.as_at(*as_index).type != geo::NetType::kIsp) return;
    }
    // Quiet blocks answer probes less often — they are also the blocks the
    // pipeline most needs external evidence for, which is why the paper
    // calls these datasets a lower bound.
    double coverage = spec.coverage;
    if (plan.role(block) == sim::BlockRole::kQuietActive) coverage *= 0.55;
    if (plan.role(block) == sim::BlockRole::kAsymAck) coverage *= 0.85;

    util::Rng rng = base.fork(block.index());
    if (rng.chance(coverage)) listed.insert(block);
  });

  plan.dark_blocks().for_each([&](net::Block24 block) {
    util::Rng rng = base.fork(0x57a1e000000ull | block.index());
    if (rng.chance(spec.stale_rate)) listed.insert(block);
  });

  return HitList(spec.name, std::move(listed));
}

trie::Block24Set hitlist_union(const std::vector<HitList>& lists) {
  trie::Block24Set out;
  for (const HitList& list : lists) out |= list.blocks();
  return out;
}

trie::Block24Set apply_hitlist_correction(const trie::Block24Set& inferred,
                                          const trie::Block24Set& active_union,
                                          std::uint64_t* removed) {
  trie::Block24Set scrubbed = inferred;
  scrubbed -= active_union;
  if (removed != nullptr) *removed = inferred.size() - scrubbed.size();
  return scrubbed;
}

}  // namespace mtscope::pipeline
