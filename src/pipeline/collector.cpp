#include "pipeline/collector.hpp"

#include "pipeline/parallel.hpp"

namespace mtscope::pipeline {

void record_dataset_metrics(obs::MetricsRegistry& metrics, const sim::Simulation& simulation,
                            std::size_t ixp_index, const sim::IxpDayData& data) {
  metrics.counter("collect.datasets").add();
  metrics.counter("collect.flows").add(data.flows.size());
  metrics.counter("collect.parse_drops").add(data.ipfix_sets_skipped);
  const std::string& code = simulation.ixps()[ixp_index].spec().code;
  metrics.counter("collect.vantage." + code + ".datasets").add();
  metrics.counter("collect.vantage." + code + ".flows").add(data.flows.size());
}

void record_store_metrics(obs::MetricsRegistry& metrics, const VantageStats& stats) {
  const BlockStatsStore& store = stats.blocks();
  metrics.gauge("collect.store.blocks").max_with(static_cast<std::int64_t>(store.size()));
  metrics.gauge("collect.store.bytes")
      .max_with(static_cast<std::int64_t>(store.memory_bytes()));
  metrics.gauge("collect.store.load_factor")
      .max_with(static_cast<std::int64_t>(store.load_factor() * 100.0));
  metrics.gauge("collect.store.arena_spills")
      .max_with(static_cast<std::int64_t>(store.arena_spills()));
}

VantageStats collect_stats(const sim::Simulation& simulation,
                           std::span<const std::size_t> ixp_indices,
                           std::span<const int> days, obs::MetricsRegistry* metrics) {
  obs::StageTimer total(metrics, "collect.total_us");
  VantageStats stats(simulation.plan().universe_mask());
  for (const int day : days) {
    for (const std::size_t ixp : ixp_indices) {
      obs::StageTimer ingest(metrics, "collect.ingest_us");
      const sim::IxpDayData data = simulation.run_ixp_day(ixp, day);
      stats.add_flows(data.flows, simulation.ixps()[ixp].sampling_rate(), day);
      ingest.stop();
      if (metrics != nullptr) record_dataset_metrics(*metrics, simulation, ixp, data);
    }
  }
  if (metrics != nullptr) record_store_metrics(*metrics, stats);
  return stats;
}

VantageStats collect_stats(const sim::Simulation& simulation,
                           std::span<const std::size_t> ixp_indices,
                           std::span<const int> days, const CollectOptions& options) {
  return ParallelCollector(simulation, options).collect(ixp_indices, days);
}

std::vector<std::size_t> all_ixps(const sim::Simulation& simulation) {
  std::vector<std::size_t> out(simulation.ixps().size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = i;
  return out;
}

}  // namespace mtscope::pipeline
