#include "pipeline/collector.hpp"

#include "pipeline/parallel.hpp"

namespace mtscope::pipeline {

VantageStats collect_stats(const sim::Simulation& simulation,
                           std::span<const std::size_t> ixp_indices,
                           std::span<const int> days) {
  VantageStats stats(simulation.plan().universe_mask());
  for (const int day : days) {
    for (const std::size_t ixp : ixp_indices) {
      const sim::IxpDayData data = simulation.run_ixp_day(ixp, day);
      stats.add_flows(data.flows, simulation.ixps()[ixp].sampling_rate(), day);
    }
  }
  return stats;
}

VantageStats collect_stats(const sim::Simulation& simulation,
                           std::span<const std::size_t> ixp_indices,
                           std::span<const int> days, const CollectOptions& options) {
  return ParallelCollector(simulation, options).collect(ixp_indices, days);
}

std::vector<std::size_t> all_ixps(const sim::Simulation& simulation) {
  std::vector<std::size_t> out(simulation.ixps().size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = i;
  return out;
}

}  // namespace mtscope::pipeline
