#include "pipeline/classifier.hpp"

namespace mtscope::pipeline {

std::string_view size_feature_name(SizeFeature f) noexcept {
  return f == SizeFeature::kMedian ? "median" : "average";
}

double ClassifierOutcome::fpr() const noexcept {
  const std::uint64_t negatives = false_positive + true_negative;
  return negatives == 0 ? 0.0
                        : static_cast<double>(false_positive) / static_cast<double>(negatives);
}

double ClassifierOutcome::fnr() const noexcept {
  const std::uint64_t positives = false_negative + true_positive;
  return positives == 0 ? 0.0
                        : static_cast<double>(false_negative) / static_cast<double>(positives);
}

double ClassifierOutcome::f1() const noexcept {
  const double denom = static_cast<double>(2 * true_positive + false_positive + false_negative);
  return denom == 0.0 ? 0.0 : 2.0 * static_cast<double>(true_positive) / denom;
}

namespace {

enum class Label { kDark, kActive, kExcluded };

Label label_of(const sim::IspBlockObservation& obs, const LabelConfig& config) {
  if (obs.inbound.counters().rx_packets == 0) return Label::kExcluded;
  if (obs.tx_packets_week == 0) return Label::kDark;
  const double floor =
      static_cast<double>(config.active_min_tx_packets) * config.volume_scale;
  if (static_cast<double>(obs.tx_packets_week) >= floor) return Label::kActive;
  return Label::kExcluded;
}

}  // namespace

LabelSummary summarize_labels(std::span<const sim::IspBlockObservation> data,
                              const LabelConfig& config) {
  LabelSummary out;
  for (const auto& obs : data) {
    ++out.total;
    switch (label_of(obs, config)) {
      case Label::kDark: ++out.labelled_dark; break;
      case Label::kActive: ++out.labelled_active; break;
      case Label::kExcluded: ++out.excluded; break;
    }
  }
  return out;
}

ClassifierOutcome evaluate_classifier(std::span<const sim::IspBlockObservation> data,
                                      SizeFeature feature, double threshold,
                                      const LabelConfig& config) {
  ClassifierOutcome out;
  out.feature = feature;
  out.threshold = threshold;
  for (const auto& obs : data) {
    const Label label = label_of(obs, config);
    if (label == Label::kExcluded) continue;

    double value = 0.0;
    if (feature == SizeFeature::kMedian) {
      value = obs.inbound.median_tcp_packet_size();
    } else {
      value = obs.inbound.avg_tcp_packet_size();
    }
    // No inbound TCP at all -> cannot look dark under either rule.
    const bool classified_dark = obs.inbound.counters().rx_tcp_packets > 0 && value <= threshold;

    if (classified_dark) {
      if (label == Label::kDark) ++out.true_positive;
      else ++out.false_positive;
    } else {
      if (label == Label::kDark) ++out.false_negative;
      else ++out.true_negative;
    }
  }
  return out;
}

std::vector<ClassifierOutcome> sweep_classifier(std::span<const sim::IspBlockObservation> data,
                                                std::span<const double> thresholds,
                                                const LabelConfig& config) {
  std::vector<ClassifierOutcome> out;
  out.reserve(thresholds.size() * 2);
  for (const SizeFeature feature : {SizeFeature::kMedian, SizeFeature::kAverage}) {
    for (const double threshold : thresholds) {
      out.push_back(evaluate_classifier(data, feature, threshold, config));
    }
  }
  return out;
}

}  // namespace mtscope::pipeline
