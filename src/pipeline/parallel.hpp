// Sharded parallel collect/infer engine.
//
// The paper's deployment digests sampled IPFIX from 14 IXPs covering
// millions of /24s per day; one thread ingesting vantage-days serially is
// the scalability wall.  This module fans the work out while keeping the
// output *bit-identical* to the serial path (tests/test_parallel_pipeline
// proves it differentially):
//
//   collect — vantage-day datasets are dealt round-robin to N workers.
//     Each worker accumulates into `shards` thread-local VantageStats
//     keyed by block.index() % shards, so no lock is ever taken on the
//     hot ingest path.  Workers are then tree-merged pairwise, each shard
//     column independently (and concurrently: columns are disjoint key
//     spaces), before the columns fold into one VantageStats.
//
//   infer — the block map is snapshotted into an array, split into
//     contiguous ranges, the seven-step funnel runs per range, and the
//     partial results reduce (counter sums + Block24Set union).
//
// Determinism argument: every per-block quantity is a sum of unsigned
// counters, a bitwise OR of host bitmaps, or a set union (days, dark
// blocks) — all commutative and associative (property-tested in
// tests/test_pipeline_properties), so the assignment of datasets to
// workers, blocks to shards, and the merge-tree shape cannot change the
// result.  Nothing in the pipeline reads insertion order.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "obs/metrics.hpp"
#include "pipeline/inference.hpp"
#include "pipeline/vantage_stats.hpp"
#include "sim/simulation.hpp"

namespace mtscope::pipeline {

/// Tuning knobs for the sharded parallel collector.
struct CollectOptions {
  /// Worker threads; <= 1 selects the serial path.
  unsigned threads = 1;

  /// Thread-local VantageStats shards per worker (block.index() % shards).
  /// More shards mean smaller hash maps and a wider (more concurrent)
  /// merge fan-in; the output never depends on the value.
  unsigned shards = 1;

  /// Optional observability sink.  Workers never touch it directly: each
  /// writes a thread-local registry (per-worker task counts, per-dataset
  /// ingest accounting) that is merged into *metrics in worker-index
  /// order after the join, so counter totals are independent of
  /// scheduling and shard count.  nullptr keeps the engine zero-overhead.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Fans vantage-day datasets out to a worker pool; see the file comment.
class ParallelCollector {
 public:
  ParallelCollector(const sim::Simulation& simulation, CollectOptions options);

  /// Parallel equivalent of collect_stats(simulation, ixp_indices, days).
  [[nodiscard]] VantageStats collect(std::span<const std::size_t> ixp_indices,
                                     std::span<const int> days) const;

 private:
  const sim::Simulation& simulation_;
  CollectOptions options_;
};

/// Runs the seven-step funnel over `stats.blocks()` partitioned into
/// `threads` contiguous ranges and reduces the partial results.
/// Bit-identical to engine.infer(stats); threads <= 1 falls through to it.
/// With a registry attached, workers time their ranges into thread-local
/// registries (merged in worker order) and the funnel counters are
/// recorded from the final reduced result — byte-identical to the values
/// the serial path records.
[[nodiscard]] InferenceResult parallel_infer(const InferenceEngine& engine,
                                             const VantageStats& stats, unsigned threads,
                                             obs::MetricsRegistry* metrics = nullptr);

}  // namespace mtscope::pipeline
