// Sharded parallel collect/infer engine.
//
// The paper's deployment digests sampled IPFIX from 14 IXPs covering
// millions of /24s per day; one thread ingesting vantage-days serially is
// the scalability wall.  This module fans the work out while keeping the
// output *bit-identical* to the serial path (tests/test_parallel_pipeline
// proves it differentially, down to batch size 1):
//
//   collect — vantage-day datasets are dealt round-robin to N workers.
//     Each worker runs the ingestion pipeline in stages (DESIGN.md §14):
//
//       parse  — flow::FlowBatch decodes the hot record fields into flat
//                SoA columns and pipeline::ShardRouter counting-sorts the
//                batch rows by Block24 % shards, once per batch;
//       insert — each routed run lands in the worker's shard-affine
//                VantageStats (stores pre-partitioned by the same
//                Block24 % shards key the rows were dealt by, pre-sized
//                from the batch statistics), so a store's index stays
//                cache-hot for a whole run and no lock is ever taken;
//       merge  — shard columns are disjoint key spaces by construction,
//                so the cross-worker reduction is one fold task per shard
//                on the same pool (no locks, no cross-shard traffic, no
//                barrier rounds), and the final cross-shard fold rides
//                pipeline::merge_stats with the exact row total — the
//                same primitive ingest::SlidingWindow publishes through.
//
//   infer — the block store is dense, so rows split into contiguous
//     ranges, the seven-step funnel runs per range, and the partial
//     results reduce (counter sums + Block24Set union).
//
// Determinism argument: every per-block quantity is a sum of unsigned
// counters, a bitwise OR of host bitmaps, or a set union (days, dark
// blocks) — all commutative and associative (property-tested in
// tests/test_pipeline_properties), so the assignment of datasets to
// workers, rows to batches and shards, and the merge-fold shape cannot
// change the result.  Nothing in the pipeline reads insertion order.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "obs/metrics.hpp"
#include "pipeline/inference.hpp"
#include "pipeline/vantage_stats.hpp"
#include "sim/simulation.hpp"

namespace mtscope::pipeline {

/// Per-stage accounting of one ParallelCollector::collect() call, filled
/// when CollectOptions::profile points at one.  sim/parse/insert are
/// summed across workers — CPU time, so they can exceed wall clock on real
/// multicore hardware — while merge and total are wall clock on the
/// calling thread.  bench/micro_parallel reports these so a regression
/// localizes to a stage instead of one collect lump.
struct CollectProfile {
  double sim_ms = 0.0;     // run_ixp_day: synthesis, export, IPFIX decode
  double parse_ms = 0.0;   // FlowBatch::decode + ShardRouter::route
  double insert_ms = 0.0;  // add_batch_rx / add_batch_tx into shard stores
  double merge_ms = 0.0;   // per-shard-column folds + final disjoint fold
  double total_ms = 0.0;   // wall clock of the whole collect()
};

/// Tuning knobs for the sharded parallel collector.
struct CollectOptions {
  /// Worker threads; <= 1 runs the batched engine inline on the calling
  /// thread (no pool).
  unsigned threads = 1;

  /// Shard-affine VantageStats per worker (key: block.index() % shards).
  /// More shards mean smaller, cache-warmer stores and a wider
  /// (more concurrent) merge fan-out; the output never depends on the
  /// value.
  unsigned shards = 1;

  /// Optional observability sink.  Workers never touch it directly: each
  /// writes a thread-local registry (per-worker task counts, per-dataset
  /// ingest accounting) that is merged into *metrics in worker-index
  /// order after the join, so counter totals are independent of
  /// scheduling and shard count.  nullptr keeps the engine zero-overhead.
  obs::MetricsRegistry* metrics = nullptr;

  /// Records per FlowBatch handed to the parse stage; 0 selects
  /// flow::FlowBatch::kDefaultRecords.  The output never depends on it
  /// (the batched differential grid pins sizes 1, 64 and 4096).
  unsigned batch_records = 0;

  /// Optional per-stage timing sink; nullptr skips nothing but the final
  /// stores.  See CollectProfile.
  CollectProfile* profile = nullptr;

  /// Populate the IBR analytics matrix (analytics/ibr_matrix.hpp) while
  /// collecting: every rx-routed batch row also lands one cell update in
  /// its shard's matrix, and the matrices fold through the same disjoint
  /// merge as the stores.  Never changes the classification output.
  bool analytics = false;
};

/// Fans vantage-day datasets out to a worker pool; see the file comment.
class ParallelCollector {
 public:
  ParallelCollector(const sim::Simulation& simulation, CollectOptions options);

  /// Parallel equivalent of collect_stats(simulation, ixp_indices, days).
  [[nodiscard]] VantageStats collect(std::span<const std::size_t> ixp_indices,
                                     std::span<const int> days) const;

 private:
  const sim::Simulation& simulation_;
  CollectOptions options_;
};

/// Runs the seven-step funnel over `stats.blocks()` partitioned into
/// `threads` contiguous ranges and reduces the partial results.
/// Bit-identical to engine.infer(stats); threads <= 1 falls through to it.
/// With a registry attached, workers time their ranges into thread-local
/// registries (merged in worker order) and the funnel counters are
/// recorded from the final reduced result — byte-identical to the values
/// the serial path records.
[[nodiscard]] InferenceResult parallel_infer(const InferenceEngine& engine,
                                             const VantageStats& stats, unsigned threads,
                                             obs::MetricsRegistry* metrics = nullptr);

}  // namespace mtscope::pipeline
