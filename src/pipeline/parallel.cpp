#include "pipeline/parallel.hpp"

#include <algorithm>
#include <future>
#include <utility>

#include "pipeline/collector.hpp"
#include "util/thread_pool.hpp"

namespace mtscope::pipeline {

namespace {

struct DatasetTask {
  std::size_t ixp = 0;
  int day = 0;
};

}  // namespace

ParallelCollector::ParallelCollector(const sim::Simulation& simulation, CollectOptions options)
    : simulation_(simulation), options_(options) {
  options_.threads = std::max(1u, options_.threads);
  options_.shards = std::max(1u, options_.shards);
}

VantageStats ParallelCollector::collect(std::span<const std::size_t> ixp_indices,
                                        std::span<const int> days) const {
  if (options_.threads <= 1 && options_.shards <= 1) {
    return collect_stats(simulation_, ixp_indices, days);
  }

  // Same dataset order as the serial path (days outer, IXPs inner); the
  // round-robin deal below only matters for load balance, never output.
  std::vector<DatasetTask> tasks;
  tasks.reserve(days.size() * ixp_indices.size());
  for (const int day : days) {
    for (const std::size_t ixp : ixp_indices) tasks.push_back({ixp, day});
  }

  const unsigned workers = static_cast<unsigned>(
      std::min<std::size_t>(options_.threads, std::max<std::size_t>(1, tasks.size())));
  const unsigned shards = options_.shards;
  const auto mask = simulation_.plan().universe_mask();

  std::vector<std::vector<VantageStats>> local(workers);
  for (auto& mine : local) {
    mine.reserve(shards);
    for (unsigned s = 0; s < shards; ++s) mine.emplace_back(mask);
  }

  util::ThreadPool pool(workers);
  {
    std::vector<std::future<void>> jobs;
    jobs.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      jobs.push_back(pool.submit([&, w] {
        std::vector<VantageStats>& mine = local[w];
        for (std::size_t t = w; t < tasks.size(); t += workers) {
          const sim::IxpDayData data = simulation_.run_ixp_day(tasks[t].ixp, tasks[t].day);
          const std::uint32_t rate = simulation_.ixps()[tasks[t].ixp].sampling_rate();
          mine[0].note_day(tasks[t].day);
          for (const flow::FlowRecord& r : data.flows) {
            mine[net::Block24::containing(r.key.dst).index() % shards].add_flow_rx(r, rate);
            mine[net::Block24::containing(r.key.src).index() % shards].add_flow_tx(r);
          }
        }
      }));
    }
    for (auto& job : jobs) job.get();
  }

  // Tree-merge workers pairwise.  Shard columns are disjoint key spaces
  // (all entries for a block live in the same column), so each merge round
  // runs its columns concurrently on the same pool.
  for (unsigned step = 1; step < workers; step *= 2) {
    std::vector<std::future<void>> merges;
    for (unsigned i = 0; i + step < workers; i += 2 * step) {
      merges.push_back(pool.submit([&, i, step] {
        for (unsigned s = 0; s < shards; ++s) local[i][s].merge(local[i + step][s]);
      }));
    }
    for (auto& merge : merges) merge.get();
  }

  VantageStats out = std::move(local[0][0]);
  for (unsigned s = 1; s < shards; ++s) out.merge(local[0][s]);
  return out;
}

InferenceResult parallel_infer(const InferenceEngine& engine, const VantageStats& stats,
                               unsigned threads) {
  if (threads <= 1 || stats.blocks().size() < 2) return engine.infer(stats);

  using Entry = const std::pair<const net::Block24, BlockObservation>*;
  std::vector<Entry> entries;
  entries.reserve(stats.blocks().size());
  for (const auto& entry : stats.blocks()) entries.push_back(&entry);

  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(threads, entries.size()));
  const std::size_t chunk = (entries.size() + workers - 1) / workers;
  const double volume_cap = engine.volume_cap_for(stats);

  std::vector<InferenceResult> partial(workers);
  {
    util::ThreadPool pool(workers);
    std::vector<std::future<void>> jobs;
    jobs.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      jobs.push_back(pool.submit([&, w] {
        const std::size_t first = w * chunk;
        const std::size_t last = std::min(entries.size(), first + chunk);
        for (std::size_t i = first; i < last; ++i) {
          engine.classify_block(entries[i]->first, entries[i]->second, volume_cap,
                                partial[w]);
        }
      }));
    }
    for (auto& job : jobs) job.get();
  }

  InferenceResult out = std::move(partial[0]);
  for (unsigned w = 1; w < workers; ++w) out.merge(partial[w]);
  return out;
}

}  // namespace mtscope::pipeline
