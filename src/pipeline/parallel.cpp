#include "pipeline/parallel.hpp"

#include <algorithm>
#include <future>
#include <string>
#include <utility>

#include "pipeline/collector.hpp"
#include "util/thread_pool.hpp"

namespace mtscope::pipeline {

namespace {

struct DatasetTask {
  std::size_t ixp = 0;
  int day = 0;
};

}  // namespace

ParallelCollector::ParallelCollector(const sim::Simulation& simulation, CollectOptions options)
    : simulation_(simulation), options_(options) {
  options_.threads = std::max(1u, options_.threads);
  options_.shards = std::max(1u, options_.shards);
}

VantageStats ParallelCollector::collect(std::span<const std::size_t> ixp_indices,
                                        std::span<const int> days) const {
  if (options_.threads <= 1 && options_.shards <= 1) {
    return collect_stats(simulation_, ixp_indices, days, options_.metrics);
  }

  obs::MetricsRegistry* metrics = options_.metrics;
  obs::StageTimer total(metrics, "collect.total_us");

  // Same dataset order as the serial path (days outer, IXPs inner); the
  // round-robin deal below only matters for load balance, never output.
  std::vector<DatasetTask> tasks;
  tasks.reserve(days.size() * ixp_indices.size());
  for (const int day : days) {
    for (const std::size_t ixp : ixp_indices) tasks.push_back({ixp, day});
  }

  const unsigned workers = static_cast<unsigned>(
      std::min<std::size_t>(options_.threads, std::max<std::size_t>(1, tasks.size())));
  const unsigned shards = options_.shards;
  const auto mask = simulation_.plan().universe_mask();

  std::vector<std::vector<VantageStats>> local(workers);
  for (auto& mine : local) {
    mine.reserve(shards);
    for (unsigned s = 0; s < shards; ++s) mine.emplace_back(mask);
  }

  // One registry per worker: the ingest path records without sharing, and
  // the post-join merge below folds them in worker-index order.
  std::vector<obs::MetricsRegistry> local_metrics(metrics != nullptr ? workers : 0);

  util::ThreadPool pool(workers);
  {
    std::vector<std::future<void>> jobs;
    jobs.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      jobs.push_back(pool.submit([&, w] {
        std::vector<VantageStats>& mine = local[w];
        obs::MetricsRegistry* my_metrics = metrics != nullptr ? &local_metrics[w] : nullptr;
        obs::Counter* my_tasks =
            my_metrics != nullptr
                ? &my_metrics->counter("parallel.collect.worker." + std::to_string(w) +
                                       ".tasks")
                : nullptr;
        for (std::size_t t = w; t < tasks.size(); t += workers) {
          obs::StageTimer ingest(my_metrics, "collect.ingest_us");
          const sim::IxpDayData data = simulation_.run_ixp_day(tasks[t].ixp, tasks[t].day);
          const std::uint32_t rate = simulation_.ixps()[tasks[t].ixp].sampling_rate();
          mine[0].note_day(tasks[t].day);
          for (const flow::FlowRecord& r : data.flows) {
            mine[net::Block24::containing(r.key.dst).index() % shards].add_flow_rx(r, rate);
            mine[net::Block24::containing(r.key.src).index() % shards].add_flow_tx(r);
          }
          ingest.stop();
          if (my_metrics != nullptr) {
            my_tasks->add();
            record_dataset_metrics(*my_metrics, simulation_, tasks[t].ixp, data);
          }
        }
      }));
    }
    for (auto& job : jobs) job.get();
  }

  if (metrics != nullptr) {
    for (const obs::MetricsRegistry& lm : local_metrics) metrics->merge(lm);
    metrics->gauge("parallel.collect.workers").max_with(workers);
    metrics->gauge("parallel.collect.shards").max_with(shards);
    // Shard balance: blocks per shard column, summed over workers before
    // the tree merge collapses them (the skew the modulo deal produced).
    for (unsigned s = 0; s < shards; ++s) {
      std::int64_t blocks = 0;
      for (unsigned w = 0; w < workers; ++w) {
        blocks += static_cast<std::int64_t>(local[w][s].blocks().size());
      }
      metrics->gauge("parallel.collect.shard." + std::to_string(s) + ".blocks")
          .max_with(blocks);
    }
  }

  // Tree-merge workers pairwise.  Shard columns are disjoint key spaces
  // (all entries for a block live in the same column), so each merge round
  // runs its columns concurrently on the same pool.
  obs::StageTimer merge_timer(metrics, "parallel.collect.merge_us");
  std::int64_t merge_depth = 0;
  for (unsigned step = 1; step < workers; step *= 2) {
    ++merge_depth;
    std::vector<std::future<void>> merges;
    for (unsigned i = 0; i + step < workers; i += 2 * step) {
      merges.push_back(pool.submit([&, i, step] {
        for (unsigned s = 0; s < shards; ++s) local[i][s].merge(local[i + step][s]);
      }));
    }
    for (auto& merge : merges) merge.get();
  }

  VantageStats out = std::move(local[0][0]);
  for (unsigned s = 1; s < shards; ++s) out.merge(local[0][s]);
  merge_timer.stop();
  if (metrics != nullptr) {
    metrics->gauge("parallel.collect.merge.depth").max_with(merge_depth);
    record_store_metrics(*metrics, out);
  }
  return out;
}

InferenceResult parallel_infer(const InferenceEngine& engine, const VantageStats& stats,
                               unsigned threads, obs::MetricsRegistry* metrics) {
  if (threads <= 1 || stats.blocks().size() < 2) return engine.infer(stats, metrics);

  obs::StageTimer total(metrics, "infer.total_us");

  // The store is dense: rows are contiguous indices, so range partitioning
  // needs no pointer snapshot of the table.
  const BlockStatsStore& store = stats.blocks();
  const std::size_t rows = store.size();

  const unsigned workers = static_cast<unsigned>(std::min<std::size_t>(threads, rows));
  const std::size_t chunk = (rows + workers - 1) / workers;
  const double volume_cap = engine.volume_cap_for(stats);

  std::vector<InferenceResult> partial(workers);
  std::vector<obs::MetricsRegistry> local_metrics(metrics != nullptr ? workers : 0);
  std::vector<StepDurations> local_durations(metrics != nullptr ? workers : 0);
  {
    util::ThreadPool pool(workers);
    std::vector<std::future<void>> jobs;
    jobs.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      jobs.push_back(pool.submit([&, w] {
        const std::size_t first = w * chunk;
        const std::size_t last = std::min(rows, first + chunk);
        if (metrics == nullptr) {
          for (std::size_t i = first; i < last; ++i) {
            engine.classify_block(store.row(i), volume_cap, partial[w]);
          }
          return;
        }
        obs::MetricsRegistry& my_metrics = local_metrics[w];
        obs::StageTimer range(&my_metrics, "parallel.infer.range_us");
        for (std::size_t i = first; i < last; ++i) {
          engine.classify_block_timed(store.row(i), volume_cap, partial[w],
                                      local_durations[w]);
        }
        range.stop();
        my_metrics.counter("parallel.infer.worker." + std::to_string(w) + ".blocks")
            .add(last - first);
      }));
    }
    for (auto& job : jobs) job.get();
  }

  InferenceResult out = std::move(partial[0]);
  for (unsigned w = 1; w < workers; ++w) out.merge(partial[w]);

  if (metrics != nullptr) {
    for (const obs::MetricsRegistry& lm : local_metrics) metrics->merge(lm);
    metrics->gauge("parallel.infer.workers").max_with(workers);
    StepDurations durations;
    for (const StepDurations& d : local_durations) durations.merge(d);
    durations.record(*metrics);
    // Recorded from the merged result, exactly like the serial path — the
    // snapshot can never disagree with the returned FunnelCounts.
    record_inference_metrics(out, *metrics);
  }
  return out;
}

}  // namespace mtscope::pipeline
