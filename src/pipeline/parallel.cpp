#include "pipeline/parallel.hpp"

#include <algorithm>
#include <chrono>
#include <future>
#include <optional>
#include <string>
#include <utility>

#include "flow/flow_batch.hpp"
#include "pipeline/collector.hpp"
#include "pipeline/shard_router.hpp"
#include "util/thread_pool.hpp"

namespace mtscope::pipeline {

namespace {

struct DatasetTask {
  std::size_t ixp = 0;
  int day = 0;
};

/// Per-worker stage-time accumulators (milliseconds).  One struct per
/// worker, written only by that worker and summed after the join.
struct StageTimes {
  double sim = 0.0;
  double parse = 0.0;
  double insert = 0.0;
};

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ParallelCollector::ParallelCollector(const sim::Simulation& simulation, CollectOptions options)
    : simulation_(simulation), options_(options) {
  options_.threads = std::max(1u, options_.threads);
  options_.shards = std::max(1u, options_.shards);
  if (options_.batch_records == 0) {
    options_.batch_records = static_cast<unsigned>(flow::FlowBatch::kDefaultRecords);
  }
}

VantageStats ParallelCollector::collect(std::span<const std::size_t> ixp_indices,
                                        std::span<const int> days) const {
  obs::MetricsRegistry* metrics = options_.metrics;
  obs::StageTimer total(metrics, "collect.total_us");
  const double wall_start = now_ms();

  // Same dataset order as the serial path (days outer, IXPs inner); the
  // round-robin deal below only matters for load balance, never output.
  std::vector<DatasetTask> tasks;
  tasks.reserve(days.size() * ixp_indices.size());
  for (const int day : days) {
    for (const std::size_t ixp : ixp_indices) tasks.push_back({ixp, day});
  }

  const unsigned workers = static_cast<unsigned>(
      std::min<std::size_t>(options_.threads, std::max<std::size_t>(1, tasks.size())));
  const unsigned shards = options_.shards;
  const unsigned batch_records = options_.batch_records;
  const auto mask = simulation_.plan().universe_mask();

  std::vector<std::vector<VantageStats>> local(workers);
  for (auto& mine : local) {
    mine.reserve(shards);
    for (unsigned s = 0; s < shards; ++s) mine.emplace_back(mask, options_.analytics);
  }

  // One registry per worker: the ingest path records without sharing, and
  // the post-join merge below folds them in worker-index order.
  std::vector<obs::MetricsRegistry> local_metrics(metrics != nullptr ? workers : 0);
  std::vector<StageTimes> stage_times(workers);

  // The staged ingest loop one worker runs over its share of the datasets:
  // simulate/decode the dataset, then per batch parse (SoA decode + shard
  // routing) and insert (one contiguous routed run per shard store).
  const auto worker_body = [&](unsigned w) {
    std::vector<VantageStats>& mine = local[w];
    StageTimes& times = stage_times[w];
    flow::FlowBatch batch;
    ShardRouter router;
    obs::MetricsRegistry* my_metrics = metrics != nullptr ? &local_metrics[w] : nullptr;
    obs::Counter* my_tasks =
        my_metrics != nullptr
            ? &my_metrics->counter("parallel.collect.worker." + std::to_string(w) +
                                   ".tasks")
            : nullptr;
    for (std::size_t t = w; t < tasks.size(); t += workers) {
      obs::StageTimer ingest(my_metrics, "collect.ingest_us");
      double t0 = now_ms();
      const sim::IxpDayData data = simulation_.run_ixp_day(tasks[t].ixp, tasks[t].day);
      times.sim += now_ms() - t0;
      const std::uint32_t rate = simulation_.ixps()[tasks[t].ixp].sampling_rate();
      mine[0].note_day(tasks[t].day);
      const std::span<const flow::FlowRecord> flows(data.flows);
      for (std::size_t first = 0; first < flows.size(); first += batch_records) {
        const std::size_t count = std::min<std::size_t>(batch_records, flows.size() - first);
        t0 = now_ms();
        batch.decode(flows.subspan(first, count), rate);
        router.route(batch, shards);
        const double t1 = now_ms();
        times.parse += t1 - t0;
        for (unsigned s = 0; s < shards; ++s) {
          mine[s].add_batch_rx(batch, router.rx_rows(s));
          mine[s].add_batch_tx(batch, router.tx_rows(s));
          // The rx-routed runs partition the batch, so the analytics tap
          // sees every record exactly once across the shard matrices.
          mine[s].add_analytics_batch(batch, router.rx_rows(s), tasks[t].day);
        }
        times.insert += now_ms() - t1;
      }
      ingest.stop();
      if (my_metrics != nullptr) {
        my_tasks->add();
        record_dataset_metrics(*my_metrics, simulation_, tasks[t].ixp, data);
      }
    }
  };

  // threads <= 1 runs the same staged engine inline: no pool, no thread
  // spawn, still batched — the single-worker configuration the CLI default
  // uses and the differential grid pins.
  std::optional<util::ThreadPool> pool;
  if (workers > 1) {
    pool.emplace(workers);
    std::vector<std::future<void>> jobs;
    jobs.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      jobs.push_back(pool->submit([&worker_body, w] { worker_body(w); }));
    }
    for (auto& job : jobs) job.get();
  } else {
    worker_body(0);
  }

  if (metrics != nullptr) {
    for (const obs::MetricsRegistry& lm : local_metrics) metrics->merge(lm);
    metrics->gauge("parallel.collect.workers").max_with(workers);
    metrics->gauge("parallel.collect.shards").max_with(shards);
    // Shard balance: blocks per shard column, summed over workers before
    // the fold collapses them (the skew the modulo deal produced).
    for (unsigned s = 0; s < shards; ++s) {
      std::int64_t blocks = 0;
      for (unsigned w = 0; w < workers; ++w) {
        blocks += static_cast<std::int64_t>(local[w][s].blocks().size());
      }
      metrics->gauge("parallel.collect.shard." + std::to_string(s) + ".blocks")
          .max_with(blocks);
    }
  }

  // Contention-free merge.  Shard columns are disjoint key spaces (all
  // entries for a block live in the same column), so the cross-worker
  // reduction is one independent fold task per shard — no locks, no
  // barrier rounds, no cross-shard traffic.
  obs::StageTimer merge_timer(metrics, "parallel.collect.merge_us");
  const double merge_start = now_ms();
  if (workers > 1) {
    std::vector<std::future<void>> merges;
    merges.reserve(shards);
    for (unsigned s = 0; s < shards; ++s) {
      merges.push_back(pool->submit([&local, workers, s] {
        for (unsigned w = 1; w < workers; ++w) local[0][s].merge(local[w][s]);
      }));
    }
    for (auto& merge : merges) merge.get();
  }

  // Final fold across shard columns through the shared merge primitive.
  // Disjointness makes the row total exact, so the output store's index is
  // built once at its final size and every merge append is rehash-free.
  std::size_t total_rows = 0;
  for (unsigned s = 0; s < shards; ++s) total_rows += local[0][s].blocks().size();
  std::vector<const VantageStats*> rest;
  rest.reserve(shards - 1);
  for (unsigned s = 1; s < shards; ++s) rest.push_back(&local[0][s]);
  VantageStats out = merge_stats(std::move(local[0][0]), rest, total_rows);
  merge_timer.stop();
  const double merge_ms = now_ms() - merge_start;

  if (metrics != nullptr) {
    // Longest sequential merge chain: W-1 folds within a shard column,
    // then S-1 folds across columns.
    metrics->gauge("parallel.collect.merge.depth")
        .max_with(static_cast<std::int64_t>(workers - 1) +
                  static_cast<std::int64_t>(shards - 1));
    record_store_metrics(*metrics, out);
    if (options_.analytics) {
      metrics->gauge("analytics.matrix.rx_cells")
          .max_with(static_cast<std::int64_t>(out.ibr().rx_cell_count()));
      metrics->gauge("analytics.matrix.sources")
          .max_with(static_cast<std::int64_t>(out.ibr().src_touch_count()));
      metrics->gauge("analytics.matrix.memory_bytes")
          .max_with(static_cast<std::int64_t>(out.ibr().memory_bytes()));
    }
  }
  if (options_.profile != nullptr) {
    CollectProfile& profile = *options_.profile;
    for (const StageTimes& times : stage_times) {
      profile.sim_ms += times.sim;
      profile.parse_ms += times.parse;
      profile.insert_ms += times.insert;
    }
    profile.merge_ms += merge_ms;
    profile.total_ms += now_ms() - wall_start;
  }
  return out;
}

InferenceResult parallel_infer(const InferenceEngine& engine, const VantageStats& stats,
                               unsigned threads, obs::MetricsRegistry* metrics) {
  if (threads <= 1 || stats.blocks().size() < 2) return engine.infer(stats, metrics);

  obs::StageTimer total(metrics, "infer.total_us");

  // The store is dense: rows are contiguous indices, so range partitioning
  // needs no pointer snapshot of the table.
  const BlockStatsStore& store = stats.blocks();
  const std::size_t rows = store.size();

  const unsigned workers = static_cast<unsigned>(std::min<std::size_t>(threads, rows));
  const std::size_t chunk = (rows + workers - 1) / workers;
  const double volume_cap = engine.volume_cap_for(stats);

  std::vector<InferenceResult> partial(workers);
  std::vector<obs::MetricsRegistry> local_metrics(metrics != nullptr ? workers : 0);
  std::vector<StepDurations> local_durations(metrics != nullptr ? workers : 0);
  {
    util::ThreadPool pool(workers);
    std::vector<std::future<void>> jobs;
    jobs.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      jobs.push_back(pool.submit([&, w] {
        const std::size_t first = w * chunk;
        const std::size_t last = std::min(rows, first + chunk);
        if (metrics == nullptr) {
          for (std::size_t i = first; i < last; ++i) {
            engine.classify_block(store.row(i), volume_cap, partial[w]);
          }
          return;
        }
        obs::MetricsRegistry& my_metrics = local_metrics[w];
        obs::StageTimer range(&my_metrics, "parallel.infer.range_us");
        for (std::size_t i = first; i < last; ++i) {
          engine.classify_block_timed(store.row(i), volume_cap, partial[w],
                                      local_durations[w]);
        }
        range.stop();
        my_metrics.counter("parallel.infer.worker." + std::to_string(w) + ".blocks")
            .add(last - first);
      }));
    }
    for (auto& job : jobs) job.get();
  }

  InferenceResult out = std::move(partial[0]);
  for (unsigned w = 1; w < workers; ++w) out.merge(partial[w]);

  if (metrics != nullptr) {
    for (const obs::MetricsRegistry& lm : local_metrics) metrics->merge(lm);
    metrics->gauge("parallel.infer.workers").max_with(workers);
    StepDurations durations;
    for (const StepDurations& d : local_durations) durations.merge(d);
    durations.record(*metrics);
    // Recorded from the merged result, exactly like the serial path — the
    // snapshot can never disagree with the returned FunnelCounts.
    record_inference_metrics(out, *metrics);
  }
  return out;
}

}  // namespace mtscope::pipeline
