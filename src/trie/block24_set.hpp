// Dense bitset over the universe of 2^24 possible /24 blocks.
//
// The inference pipeline makes millions of membership queries per simulated
// day ("was this /24 ever seen as a source?", "is it routed?").  A flat
// 2 MiB bitset answers them in one cache line where a hash set would chase
// pointers; the micro_trie bench quantifies the difference.
#pragma once

#include <bit>
#include <cstdint>
#include <functional>
#include <vector>

#include "net/ipv4.hpp"

namespace mtscope::trie {

class Block24Set {
 public:
  Block24Set() : words_(kWordCount, 0) {}

  void insert(net::Block24 block) noexcept {
    const std::uint32_t i = block.index();
    std::uint64_t& word = words_[i >> 6];
    const std::uint64_t bit = std::uint64_t{1} << (i & 63);
    if (!(word & bit)) {
      word |= bit;
      ++size_;
    }
  }

  void erase(net::Block24 block) noexcept {
    const std::uint32_t i = block.index();
    std::uint64_t& word = words_[i >> 6];
    const std::uint64_t bit = std::uint64_t{1} << (i & 63);
    if (word & bit) {
      word &= ~bit;
      --size_;
    }
  }

  [[nodiscard]] bool contains(net::Block24 block) const noexcept {
    const std::uint32_t i = block.index();
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  void clear() noexcept {
    words_.assign(kWordCount, 0);
    size_ = 0;
  }

  /// In-place union / intersection / difference.
  Block24Set& operator|=(const Block24Set& other) noexcept {
    for (std::size_t w = 0; w < kWordCount; ++w) words_[w] |= other.words_[w];
    recount();
    return *this;
  }

  Block24Set& operator&=(const Block24Set& other) noexcept {
    for (std::size_t w = 0; w < kWordCount; ++w) words_[w] &= other.words_[w];
    recount();
    return *this;
  }

  Block24Set& operator-=(const Block24Set& other) noexcept {
    for (std::size_t w = 0; w < kWordCount; ++w) words_[w] &= ~other.words_[w];
    recount();
    return *this;
  }

  [[nodiscard]] friend Block24Set operator|(Block24Set lhs, const Block24Set& rhs) noexcept {
    lhs |= rhs;
    return lhs;
  }

  [[nodiscard]] friend Block24Set operator&(Block24Set lhs, const Block24Set& rhs) noexcept {
    lhs &= rhs;
    return lhs;
  }

  [[nodiscard]] friend Block24Set operator-(Block24Set lhs, const Block24Set& rhs) noexcept {
    lhs -= rhs;
    return lhs;
  }

  friend bool operator==(const Block24Set& lhs, const Block24Set& rhs) noexcept {
    return lhs.words_ == rhs.words_;
  }

  /// Visit every member block in ascending index order.
  void for_each(const std::function<void(net::Block24)>& visit) const {
    for (std::size_t w = 0; w < kWordCount; ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const int bit = std::countr_zero(word);
        visit(net::Block24(static_cast<std::uint32_t>((w << 6) + bit)));
        word &= word - 1;
      }
    }
  }

  [[nodiscard]] std::vector<net::Block24> to_vector() const {
    std::vector<net::Block24> out;
    out.reserve(size_);
    for_each([&](net::Block24 b) { out.push_back(b); });
    return out;
  }

  /// Count of members within [first, last] block indices inclusive.
  [[nodiscard]] std::size_t count_in_range(std::uint32_t first, std::uint32_t last) const noexcept;

 private:
  static constexpr std::size_t kWordCount = net::Block24::kUniverseSize / 64;

  void recount() noexcept {
    std::size_t total = 0;
    for (std::uint64_t word : words_) total += static_cast<std::size_t>(std::popcount(word));
    size_ = total;
  }

  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
};

}  // namespace mtscope::trie
