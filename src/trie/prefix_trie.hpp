// Binary radix trie keyed by IPv4 CIDR prefixes.
//
// Backbone of the routing substrate: the RIB, the prefix-to-AS mapping and
// the geolocation database are all PrefixTrie instances.  Supports exact
// insert/lookup/erase, longest-prefix match, covering-prefix enumeration and
// pre-order traversal.  Nodes are held in a contiguous arena (indices, not
// pointers) for cache-friendliness and trivial move semantics.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <vector>

#include "net/prefix.hpp"

namespace mtscope::trie {

template <typename T>
class PrefixTrie {
 public:
  PrefixTrie() { nodes_.push_back(Node{}); }

  /// Insert or overwrite the value at `prefix`.  Returns true if the prefix
  /// was newly inserted, false if an existing value was replaced.
  bool insert(const net::Prefix& prefix, T value) {
    const std::uint32_t node = descend_create(prefix);
    Node& n = nodes_[node];
    const bool fresh = !n.value.has_value();
    n.value = std::move(value);
    if (fresh) ++size_;
    return fresh;
  }

  /// Exact-match lookup.
  [[nodiscard]] const T* find(const net::Prefix& prefix) const {
    const std::uint32_t node = descend(prefix);
    if (node == kInvalid) return nullptr;
    const Node& n = nodes_[node];
    return n.value.has_value() ? &*n.value : nullptr;
  }

  [[nodiscard]] T* find(const net::Prefix& prefix) {
    return const_cast<T*>(static_cast<const PrefixTrie*>(this)->find(prefix));
  }

  /// Remove the value at `prefix`.  Returns true if a value was present.
  /// (Structural nodes are retained; the arena never shrinks.)
  bool erase(const net::Prefix& prefix) {
    const std::uint32_t node = descend(prefix);
    if (node == kInvalid || !nodes_[node].value.has_value()) return false;
    nodes_[node].value.reset();
    --size_;
    return true;
  }

  /// Longest-prefix match for an address: the most specific stored prefix
  /// containing `addr`, together with its value.
  [[nodiscard]] std::optional<std::pair<net::Prefix, const T*>> longest_match(
      net::Ipv4Addr addr) const {
    std::uint32_t node = 0;
    std::optional<std::pair<net::Prefix, const T*>> best;
    int depth = 0;
    const std::uint32_t bits = addr.value();
    for (;;) {
      const Node& n = nodes_[node];
      if (n.value.has_value()) {
        best = {net::Prefix::canonical(addr, depth), &*n.value};
      }
      if (depth == 32) break;
      const int bit = (bits >> (31 - depth)) & 1;
      const std::uint32_t child = n.children[bit];
      if (child == kInvalid) break;
      node = child;
      ++depth;
    }
    return best;
  }

  /// All stored prefixes that cover `addr`, least specific first.
  [[nodiscard]] std::vector<std::pair<net::Prefix, const T*>> matches(net::Ipv4Addr addr) const {
    std::vector<std::pair<net::Prefix, const T*>> out;
    std::uint32_t node = 0;
    int depth = 0;
    const std::uint32_t bits = addr.value();
    for (;;) {
      const Node& n = nodes_[node];
      if (n.value.has_value()) out.emplace_back(net::Prefix::canonical(addr, depth), &*n.value);
      if (depth == 32) break;
      const int bit = (bits >> (31 - depth)) & 1;
      const std::uint32_t child = n.children[bit];
      if (child == kInvalid) break;
      node = child;
      ++depth;
    }
    return out;
  }

  /// True if any stored prefix covers `addr`.
  [[nodiscard]] bool covers(net::Ipv4Addr addr) const { return longest_match(addr).has_value(); }

  /// Pre-order visit of every (prefix, value) pair.
  void walk(const std::function<void(const net::Prefix&, const T&)>& visit) const {
    walk_node(0, net::Prefix{}, visit);
  }

  /// All stored prefixes contained within `within` (including an exact hit).
  [[nodiscard]] std::vector<std::pair<net::Prefix, T>> covered_by(const net::Prefix& within) const {
    std::vector<std::pair<net::Prefix, T>> out;
    // Descend to the node for `within` (following the path as far as it
    // exists), then collect the whole subtree.
    std::uint32_t node = 0;
    for (int depth = 0; depth < within.length(); ++depth) {
      const std::uint32_t child = nodes_[node].children[within.bit(depth) ? 1 : 0];
      if (child == kInvalid) return out;
      node = child;
    }
    collect(node, within, out);
    return out;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }

 private:
  static constexpr std::uint32_t kInvalid = 0xffffffffu;

  struct Node {
    std::uint32_t children[2] = {kInvalid, kInvalid};
    std::optional<T> value;
  };

  /// Walk to the node for `prefix`, creating nodes as needed.
  std::uint32_t descend_create(const net::Prefix& prefix) {
    std::uint32_t node = 0;
    for (int depth = 0; depth < prefix.length(); ++depth) {
      const int bit = prefix.bit(depth) ? 1 : 0;
      std::uint32_t child = nodes_[node].children[bit];
      if (child == kInvalid) {
        child = static_cast<std::uint32_t>(nodes_.size());
        nodes_.push_back(Node{});
        nodes_[node].children[bit] = child;
      }
      node = child;
    }
    return node;
  }

  /// Walk to the node for `prefix`; kInvalid if the path does not exist.
  [[nodiscard]] std::uint32_t descend(const net::Prefix& prefix) const {
    std::uint32_t node = 0;
    for (int depth = 0; depth < prefix.length(); ++depth) {
      const std::uint32_t child = nodes_[node].children[prefix.bit(depth) ? 1 : 0];
      if (child == kInvalid) return kInvalid;
      node = child;
    }
    return node;
  }

  void walk_node(std::uint32_t node, const net::Prefix& at,
                 const std::function<void(const net::Prefix&, const T&)>& visit) const {
    const Node& n = nodes_[node];
    if (n.value.has_value()) visit(at, *n.value);
    if (at.length() == 32) return;
    const auto [low, high] = at.children();
    if (n.children[0] != kInvalid) walk_node(n.children[0], low, visit);
    if (n.children[1] != kInvalid) walk_node(n.children[1], high, visit);
  }

  void collect(std::uint32_t node, const net::Prefix& at,
               std::vector<std::pair<net::Prefix, T>>& out) const {
    const Node& n = nodes_[node];
    if (n.value.has_value()) out.emplace_back(at, *n.value);
    if (at.length() == 32) return;
    const auto [low, high] = at.children();
    if (n.children[0] != kInvalid) collect(n.children[0], low, out);
    if (n.children[1] != kInvalid) collect(n.children[1], high, out);
  }

  std::vector<Node> nodes_;
  std::size_t size_ = 0;
};

/// A set of prefixes: PrefixTrie with unit payload plus set-flavoured API.
class PrefixSet {
 public:
  bool insert(const net::Prefix& prefix) { return trie_.insert(prefix, Unit{}); }
  bool erase(const net::Prefix& prefix) { return trie_.erase(prefix); }
  [[nodiscard]] bool contains(const net::Prefix& prefix) const {
    return trie_.find(prefix) != nullptr;
  }
  /// True if any member prefix covers the address.
  [[nodiscard]] bool covers(net::Ipv4Addr addr) const { return trie_.covers(addr); }
  /// True if any member prefix covers the whole /24.
  [[nodiscard]] bool covers(net::Block24 block) const {
    for (const auto& [prefix, unused] : trie_.matches(block.first_address())) {
      (void)unused;
      if (prefix.contains(block)) return true;
    }
    return false;
  }
  [[nodiscard]] std::size_t size() const noexcept { return trie_.size(); }
  [[nodiscard]] bool empty() const noexcept { return trie_.empty(); }

  void walk(const std::function<void(const net::Prefix&)>& visit) const {
    trie_.walk([&](const net::Prefix& p, const Unit&) { visit(p); });
  }

  [[nodiscard]] std::vector<net::Prefix> to_vector() const {
    std::vector<net::Prefix> out;
    out.reserve(size());
    walk([&](const net::Prefix& p) { out.push_back(p); });
    return out;
  }

 private:
  struct Unit {};
  PrefixTrie<Unit> trie_;
};

}  // namespace mtscope::trie
