#include "trie/block24_set.hpp"

#include <bit>

namespace mtscope::trie {

std::size_t Block24Set::count_in_range(std::uint32_t first, std::uint32_t last) const noexcept {
  if (first > last || first >= net::Block24::kUniverseSize) return 0;
  if (last >= net::Block24::kUniverseSize) last = net::Block24::kUniverseSize - 1;

  const std::size_t first_word = first >> 6;
  const std::size_t last_word = last >> 6;
  std::size_t total = 0;

  if (first_word == last_word) {
    std::uint64_t word = words_[first_word];
    word >>= (first & 63);
    const unsigned width = last - first + 1;
    if (width < 64) word &= (std::uint64_t{1} << width) - 1;
    return static_cast<std::size_t>(std::popcount(word));
  }

  // Head word: mask off bits below `first`.
  total += static_cast<std::size_t>(std::popcount(words_[first_word] >> (first & 63)));
  // Full middle words.
  for (std::size_t w = first_word + 1; w < last_word; ++w) {
    total += static_cast<std::size_t>(std::popcount(words_[w]));
  }
  // Tail word: keep bits up to and including `last`.
  const unsigned tail_bits = (last & 63) + 1;
  std::uint64_t tail = words_[last_word];
  if (tail_bits < 64) tail &= (std::uint64_t{1} << tail_bits) - 1;
  total += static_cast<std::size_t>(std::popcount(tail));
  return total;
}

}  // namespace mtscope::trie
