// Country-level IP geolocation (MaxMind GeoLite2 analogue) and the
// country -> continent mapping used by the regional analyses.
#pragma once

#include <array>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "net/ipv4.hpp"
#include "net/prefix.hpp"
#include "trie/prefix_trie.hpp"
#include "util/result.hpp"

namespace mtscope::geo {

/// World regions as the paper groups them (Figure 11 et al.).
enum class Continent : std::uint8_t {
  kNorthAmerica,
  kSouthAmerica,
  kEurope,
  kAfrica,
  kAsia,
  kOceania,
  kInternational,  // prefixes that map to no single region
};

inline constexpr std::array<Continent, 7> kAllContinents = {
    Continent::kNorthAmerica, Continent::kSouthAmerica, Continent::kEurope,
    Continent::kAfrica,       Continent::kAsia,         Continent::kOceania,
    Continent::kInternational};

[[nodiscard]] std::string_view continent_code(Continent c) noexcept;
[[nodiscard]] std::string_view continent_name(Continent c) noexcept;

/// Continent of an ISO 3166 alpha-2 country code; kInternational if unknown.
[[nodiscard]] Continent continent_of_country(std::string_view iso_country) noexcept;

/// Country-level geolocation database with longest-prefix-match semantics.
class GeoDb {
 public:
  void add(const net::Prefix& prefix, std::string iso_country);

  /// ISO country of the most specific entry covering `addr`.
  [[nodiscard]] std::optional<std::string> country_of(net::Ipv4Addr addr) const;
  [[nodiscard]] std::optional<std::string> country_of(net::Block24 block) const {
    return country_of(block.first_address());
  }

  [[nodiscard]] Continent continent_of(net::Ipv4Addr addr) const;
  [[nodiscard]] Continent continent_of(net::Block24 block) const {
    return continent_of(block.first_address());
  }

  [[nodiscard]] std::size_t size() const noexcept { return trie_.size(); }

  /// CSV format: "prefix,country" per line.
  void save(std::ostream& out) const;
  [[nodiscard]] static util::Result<GeoDb> load(std::istream& in);

 private:
  trie::PrefixTrie<std::string> trie_;
};

}  // namespace mtscope::geo
