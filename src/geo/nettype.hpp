// AS business-type classification (IPinfo "IP to Company" analogue).
#pragma once

#include <array>
#include <iosfwd>
#include <optional>
#include <string_view>
#include <unordered_map>

#include "net/ipv4.hpp"
#include "util/result.hpp"

namespace mtscope::geo {

/// Network classes the paper analyses (Table 7, Figure 12).
enum class NetType : std::uint8_t {
  kIsp,
  kEnterprise,
  kEducation,
  kDataCenter,
};

inline constexpr std::array<NetType, 4> kAllNetTypes = {
    NetType::kIsp, NetType::kEnterprise, NetType::kEducation, NetType::kDataCenter};

[[nodiscard]] std::string_view net_type_name(NetType t) noexcept;

/// Parse "ISP" / "Enterprise" / "Education" / "Data Center" (case-insensitive).
[[nodiscard]] std::optional<NetType> parse_net_type(std::string_view text) noexcept;

/// AS -> network-type database.
class NetTypeDb {
 public:
  void add(net::AsNumber asn, NetType type) { by_asn_[asn] = type; }

  [[nodiscard]] std::optional<NetType> resolve(net::AsNumber asn) const {
    const auto it = by_asn_.find(asn);
    if (it == by_asn_.end()) return std::nullopt;
    return it->second;
  }

  [[nodiscard]] std::size_t size() const noexcept { return by_asn_.size(); }

  /// CSV format: "asn,type" per line.
  void save(std::ostream& out) const;
  [[nodiscard]] static util::Result<NetTypeDb> load(std::istream& in);

 private:
  std::unordered_map<net::AsNumber, NetType> by_asn_;
};

}  // namespace mtscope::geo
