#include "geo/nettype.hpp"

#include <istream>
#include <map>
#include <ostream>

#include "util/strings.hpp"

namespace mtscope::geo {

std::string_view net_type_name(NetType t) noexcept {
  switch (t) {
    case NetType::kIsp: return "ISP";
    case NetType::kEnterprise: return "Enterprise";
    case NetType::kEducation: return "Education";
    case NetType::kDataCenter: return "Data Center";
  }
  return "ISP";
}

std::optional<NetType> parse_net_type(std::string_view text) noexcept {
  const std::string lowered = util::to_lower(util::trim(text));
  if (lowered == "isp") return NetType::kIsp;
  if (lowered == "enterprise") return NetType::kEnterprise;
  if (lowered == "education") return NetType::kEducation;
  if (lowered == "data center" || lowered == "datacenter" || lowered == "data_center") {
    return NetType::kDataCenter;
  }
  return std::nullopt;
}

void NetTypeDb::save(std::ostream& out) const {
  std::map<std::uint32_t, NetType> ordered;
  for (const auto& [asn, type] : by_asn_) ordered[asn.value()] = type;
  for (const auto& [asn, type] : ordered) {
    out << asn << ',' << net_type_name(type) << '\n';
  }
}

util::Result<NetTypeDb> NetTypeDb::load(std::istream& in) {
  NetTypeDb out;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const auto fields = util::split(trimmed, ',');
    if (fields.size() != 2) {
      return util::make_error("nettype.fields",
                              "line " + std::to_string(line_no) + ": expected asn,type");
    }
    const auto asn = util::parse_uint<std::uint32_t>(util::trim(fields[0]));
    const auto type = parse_net_type(fields[1]);
    if (!asn || !type) {
      return util::make_error("nettype.parse",
                              "line " + std::to_string(line_no) + ": malformed entry");
    }
    out.add(net::AsNumber(*asn), *type);
  }
  return out;
}

}  // namespace mtscope::geo
