#include "geo/geodb.hpp"

#include <istream>
#include <ostream>
#include <unordered_map>

#include "util/strings.hpp"

namespace mtscope::geo {

std::string_view continent_code(Continent c) noexcept {
  switch (c) {
    case Continent::kNorthAmerica: return "NA";
    case Continent::kSouthAmerica: return "SA";
    case Continent::kEurope: return "EU";
    case Continent::kAfrica: return "AF";
    case Continent::kAsia: return "AS";
    case Continent::kOceania: return "OC";
    case Continent::kInternational: return "INT";
  }
  return "INT";
}

std::string_view continent_name(Continent c) noexcept {
  switch (c) {
    case Continent::kNorthAmerica: return "North America";
    case Continent::kSouthAmerica: return "South America";
    case Continent::kEurope: return "Europe";
    case Continent::kAfrica: return "Africa";
    case Continent::kAsia: return "Asia";
    case Continent::kOceania: return "Oceania";
    case Continent::kInternational: return "International";
  }
  return "International";
}

Continent continent_of_country(std::string_view iso_country) noexcept {
  // ISO 3166 alpha-2 -> continent, covering the codes the simulator and the
  // common real-world datasets emit.
  static const std::unordered_map<std::string_view, Continent> kTable = {
      // North America (incl. Central America & Caribbean per UN M49 "Americas" split).
      {"US", Continent::kNorthAmerica}, {"CA", Continent::kNorthAmerica},
      {"MX", Continent::kNorthAmerica}, {"GT", Continent::kNorthAmerica},
      {"CU", Continent::kNorthAmerica}, {"PA", Continent::kNorthAmerica},
      {"CR", Continent::kNorthAmerica}, {"DO", Continent::kNorthAmerica},
      {"HN", Continent::kNorthAmerica}, {"JM", Continent::kNorthAmerica},
      // South America.
      {"BR", Continent::kSouthAmerica}, {"AR", Continent::kSouthAmerica},
      {"CL", Continent::kSouthAmerica}, {"CO", Continent::kSouthAmerica},
      {"PE", Continent::kSouthAmerica}, {"VE", Continent::kSouthAmerica},
      {"EC", Continent::kSouthAmerica}, {"UY", Continent::kSouthAmerica},
      {"BO", Continent::kSouthAmerica}, {"PY", Continent::kSouthAmerica},
      // Europe.
      {"DE", Continent::kEurope}, {"FR", Continent::kEurope}, {"GB", Continent::kEurope},
      {"NL", Continent::kEurope}, {"IT", Continent::kEurope}, {"ES", Continent::kEurope},
      {"PL", Continent::kEurope}, {"SE", Continent::kEurope}, {"CH", Continent::kEurope},
      {"AT", Continent::kEurope}, {"BE", Continent::kEurope}, {"CZ", Continent::kEurope},
      {"PT", Continent::kEurope}, {"GR", Continent::kEurope}, {"RO", Continent::kEurope},
      {"UA", Continent::kEurope}, {"RU", Continent::kEurope}, {"NO", Continent::kEurope},
      {"FI", Continent::kEurope}, {"DK", Continent::kEurope}, {"IE", Continent::kEurope},
      {"HU", Continent::kEurope}, {"BG", Continent::kEurope}, {"RS", Continent::kEurope},
      // Africa.
      {"ZA", Continent::kAfrica}, {"NG", Continent::kAfrica}, {"EG", Continent::kAfrica},
      {"KE", Continent::kAfrica}, {"MA", Continent::kAfrica}, {"GH", Continent::kAfrica},
      {"TN", Continent::kAfrica}, {"DZ", Continent::kAfrica}, {"ET", Continent::kAfrica},
      {"TZ", Continent::kAfrica}, {"UG", Continent::kAfrica}, {"SN", Continent::kAfrica},
      // Asia.
      {"CN", Continent::kAsia}, {"JP", Continent::kAsia}, {"IN", Continent::kAsia},
      {"KR", Continent::kAsia}, {"SG", Continent::kAsia}, {"HK", Continent::kAsia},
      {"TW", Continent::kAsia}, {"TH", Continent::kAsia}, {"VN", Continent::kAsia},
      {"ID", Continent::kAsia}, {"MY", Continent::kAsia}, {"PH", Continent::kAsia},
      {"TR", Continent::kAsia}, {"IL", Continent::kAsia}, {"SA", Continent::kAsia},
      {"AE", Continent::kAsia}, {"PK", Continent::kAsia}, {"BD", Continent::kAsia},
      {"IR", Continent::kAsia}, {"KZ", Continent::kAsia}, {"KP", Continent::kAsia},
      // Oceania.
      {"AU", Continent::kOceania}, {"NZ", Continent::kOceania}, {"FJ", Continent::kOceania},
      {"PG", Continent::kOceania}, {"NC", Continent::kOceania},
  };
  const auto it = kTable.find(iso_country);
  return it == kTable.end() ? Continent::kInternational : it->second;
}

void GeoDb::add(const net::Prefix& prefix, std::string iso_country) {
  trie_.insert(prefix, std::move(iso_country));
}

std::optional<std::string> GeoDb::country_of(net::Ipv4Addr addr) const {
  const auto match = trie_.longest_match(addr);
  if (!match) return std::nullopt;
  return *match->second;
}

Continent GeoDb::continent_of(net::Ipv4Addr addr) const {
  const auto country = country_of(addr);
  if (!country) return Continent::kInternational;
  return continent_of_country(*country);
}

void GeoDb::save(std::ostream& out) const {
  trie_.walk([&](const net::Prefix& p, const std::string& country) {
    out << p.to_string() << ',' << country << '\n';
  });
}

util::Result<GeoDb> GeoDb::load(std::istream& in) {
  GeoDb out;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const auto fields = util::split(trimmed, ',');
    if (fields.size() != 2) {
      return util::make_error("geodb.fields",
                              "line " + std::to_string(line_no) + ": expected prefix,country");
    }
    const auto prefix = net::Prefix::parse(util::trim(fields[0]));
    if (!prefix) {
      return util::make_error("geodb.parse", "line " + std::to_string(line_no) + ": bad prefix");
    }
    out.add(*prefix, std::string(util::trim(fields[1])));
  }
  return out;
}

}  // namespace mtscope::geo
