// Empirical cumulative distribution function over double-valued samples —
// the representation behind Figures 7, 16 and 17.
//
// Thread safety: const accessors are safe to call concurrently on a shared
// Ecdf (the parallel pipeline's workers do).  The sample vector is sorted
// lazily — add() stays O(1) amortised so million-sample ECDF builds stay
// linear — but the deferred sort runs exactly once, under a mutex with a
// double-checked atomic flag, so concurrent const readers never race on
// it.  Mutations (add) still require exclusive access, like any container.
#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

namespace mtscope::telemetry {

class Ecdf {
 public:
  Ecdf() = default;
  explicit Ecdf(std::vector<double> samples);

  // The sort synchronisation state is not copyable, so copies materialise
  // the sorted view first (a const read, safe on a shared source).
  Ecdf(const Ecdf& other);
  Ecdf& operator=(const Ecdf& other);
  Ecdf(Ecdf&& other) noexcept;
  Ecdf& operator=(Ecdf&& other) noexcept;

  void add(double sample);

  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  /// Fraction of samples <= x.  0 for an empty ECDF.
  [[nodiscard]] double fraction_at_most(double x) const;

  /// Smallest sample s such that fraction_at_most(s) >= q.  Throws on empty.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;

  /// Evaluate at evenly spaced x positions in [lo, hi] — a plottable series.
  /// Throws std::invalid_argument for points < 2.
  [[nodiscard]] std::vector<std::pair<double, double>> sample_curve(double lo, double hi,
                                                                    std::size_t points) const;

  /// ASCII sparkline of the curve over [lo, hi] (for bench harness output).
  /// Throws std::invalid_argument for width < 2, like sample_curve.
  [[nodiscard]] std::string sparkline(double lo, double hi, std::size_t width = 60) const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable std::atomic<bool> sorted_{true};
  mutable std::mutex sort_mutex_;
};

}  // namespace mtscope::telemetry
