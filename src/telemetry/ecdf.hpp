// Empirical cumulative distribution function over double-valued samples —
// the representation behind Figures 7, 16 and 17.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mtscope::telemetry {

class Ecdf {
 public:
  Ecdf() = default;
  explicit Ecdf(std::vector<double> samples);

  void add(double sample);

  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  /// Fraction of samples <= x.  0 for an empty ECDF.
  [[nodiscard]] double fraction_at_most(double x) const;

  /// Smallest sample s such that fraction_at_most(s) >= q.  Throws on empty.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;

  /// Evaluate at evenly spaced x positions in [lo, hi] — a plottable series.
  [[nodiscard]] std::vector<std::pair<double, double>> sample_curve(double lo, double hi,
                                                                    std::size_t points) const;

  /// ASCII sparkline of the curve over [lo, hi] (for bench harness output).
  [[nodiscard]] std::string sparkline(double lo, double hi, std::size_t width = 60) const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace mtscope::telemetry
