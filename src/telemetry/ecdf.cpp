#include "telemetry/ecdf.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <utility>

namespace mtscope::telemetry {

Ecdf::Ecdf(std::vector<double> samples) : samples_(std::move(samples)), sorted_(false) {}

Ecdf::Ecdf(const Ecdf& other) {
  other.ensure_sorted();
  samples_ = other.samples_;
}

Ecdf& Ecdf::operator=(const Ecdf& other) {
  if (this != &other) {
    other.ensure_sorted();
    samples_ = other.samples_;
    sorted_.store(true, std::memory_order_relaxed);
  }
  return *this;
}

Ecdf::Ecdf(Ecdf&& other) noexcept
    : samples_(std::move(other.samples_)),
      sorted_(other.sorted_.load(std::memory_order_relaxed)) {}

Ecdf& Ecdf::operator=(Ecdf&& other) noexcept {
  if (this != &other) {
    samples_ = std::move(other.samples_);
    sorted_.store(other.sorted_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  }
  return *this;
}

void Ecdf::add(double sample) {
  samples_.push_back(sample);
  sorted_.store(false, std::memory_order_release);
}

void Ecdf::ensure_sorted() const {
  if (sorted_.load(std::memory_order_acquire)) return;
  const std::lock_guard<std::mutex> lock(sort_mutex_);
  if (!sorted_.load(std::memory_order_relaxed)) {
    std::sort(samples_.begin(), samples_.end());
    sorted_.store(true, std::memory_order_release);
  }
}

double Ecdf::fraction_at_most(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) / static_cast<double>(samples_.size());
}

double Ecdf::quantile(double q) const {
  if (samples_.empty()) throw std::logic_error("Ecdf::quantile on empty ECDF");
  ensure_sorted();
  if (q <= 0.0) return samples_.front();
  if (q >= 1.0) return samples_.back();
  const auto rank = static_cast<std::size_t>(std::ceil(q * static_cast<double>(samples_.size()))) - 1;
  return samples_[std::min(rank, samples_.size() - 1)];
}

double Ecdf::min() const {
  if (samples_.empty()) throw std::logic_error("Ecdf::min on empty ECDF");
  ensure_sorted();
  return samples_.front();
}

double Ecdf::max() const {
  if (samples_.empty()) throw std::logic_error("Ecdf::max on empty ECDF");
  ensure_sorted();
  return samples_.back();
}

double Ecdf::mean() const {
  if (samples_.empty()) throw std::logic_error("Ecdf::mean on empty ECDF");
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> Ecdf::sample_curve(double lo, double hi,
                                                          std::size_t points) const {
  if (points < 2) throw std::invalid_argument("Ecdf::sample_curve: need at least 2 points");
  std::vector<std::pair<double, double>> out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(x, fraction_at_most(x));
  }
  return out;
}

std::string Ecdf::sparkline(double lo, double hi, std::size_t width) const {
  if (width < 2) throw std::invalid_argument("Ecdf::sparkline: need width of at least 2");
  static constexpr char kLevels[] = " .:-=+*#%@";
  const std::size_t levels = sizeof(kLevels) - 2;  // exclude NUL, index max
  std::string out;
  out.reserve(width);
  for (std::size_t i = 0; i < width; ++i) {
    const double x = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(width - 1);
    const double f = fraction_at_most(x);
    const auto level = static_cast<std::size_t>(f * static_cast<double>(levels));
    out.push_back(kLevels[std::min(level, levels)]);
  }
  return out;
}

}  // namespace mtscope::telemetry
