// Per-/24 traffic accumulators — the measurement state the inference
// pipeline reads.
//
// Two granularities:
//  * BlockCounters: compact counters kept for every /24 seen at a vantage
//    point (millions of blocks — must stay small).
//  * DetailedBlockStats: adds an exact packet-size histogram; used for the
//    labelled ISP dataset that tunes the classifier (Table 3) where medians
//    are required.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "flow/record.hpp"
#include "net/ipv4.hpp"
#include "telemetry/histogram.hpp"

namespace mtscope::telemetry {

struct BlockCounters {
  std::uint64_t rx_packets = 0;       // sampled packets destined to the block
  std::uint64_t rx_bytes = 0;
  std::uint64_t rx_tcp_packets = 0;
  std::uint64_t rx_tcp_bytes = 0;
  std::uint64_t rx_udp_packets = 0;
  std::uint64_t tx_packets = 0;       // sampled packets sourced from the block

  /// Average IP packet size of inbound TCP traffic (0 when none).
  [[nodiscard]] double avg_tcp_packet_size() const noexcept {
    return rx_tcp_packets == 0
               ? 0.0
               : static_cast<double>(rx_tcp_bytes) / static_cast<double>(rx_tcp_packets);
  }
};

/// Accumulates per-/24 counters from flow records.  All counts are in
/// *sampled* packets; `sampling_rate()` reports the common rate so callers
/// can scale to volume estimates (the 1.7M pkts/day filter does).
class BlockStatsMap {
 public:
  BlockStatsMap() = default;

  /// Account one flow record: destination-side counters for dst's /24,
  /// source-side counters for src's /24.
  void add_flow(const flow::FlowRecord& record);

  [[nodiscard]] const BlockCounters* find(net::Block24 block) const {
    const auto it = map_.find(block);
    return it == map_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] const std::unordered_map<net::Block24, BlockCounters>& all() const noexcept {
    return map_;
  }

  [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }
  [[nodiscard]] std::uint64_t flows_seen() const noexcept { return flows_; }
  [[nodiscard]] std::uint64_t packets_seen() const noexcept { return packets_; }

  /// Merge counters from another map (multi-day / multi-VP accumulation).
  void merge(const BlockStatsMap& other);

 private:
  std::unordered_map<net::Block24, BlockCounters> map_;
  std::uint64_t flows_ = 0;
  std::uint64_t packets_ = 0;
};

/// Per-/24 statistics with an exact inbound-TCP packet-size histogram.
class DetailedBlockStats {
 public:
  DetailedBlockStats() : sizes_(make_packet_size_histogram()) {}

  void add_flow(const flow::FlowRecord& record);

  [[nodiscard]] const BlockCounters& counters() const noexcept { return counters_; }
  [[nodiscard]] const Histogram& tcp_sizes() const noexcept { return sizes_; }

  /// Median inbound TCP IP packet size; 0 when no TCP traffic.
  [[nodiscard]] double median_tcp_packet_size() const {
    return sizes_.empty() ? 0.0 : static_cast<double>(sizes_.median());
  }

  [[nodiscard]] double avg_tcp_packet_size() const noexcept {
    return counters_.avg_tcp_packet_size();
  }

 private:
  BlockCounters counters_;
  Histogram sizes_;
};

}  // namespace mtscope::telemetry
