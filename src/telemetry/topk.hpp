// Space-Saving heavy-hitter sketch (Metwally, Agrawal, El Abbadi 2005).
//
// Port-popularity analyses need "top-k destination ports" over streams with
// arbitrarily many distinct keys; Space-Saving bounds memory to the monitor
// capacity while guaranteeing no true heavy hitter is evicted once its count
// exceeds the minimum monitored count.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace mtscope::telemetry {

template <typename Key>
class SpaceSaving {
 public:
  struct Entry {
    Key key{};
    std::uint64_t count = 0;
    std::uint64_t overestimate = 0;  // error bound: count may exceed truth by this
  };

  explicit SpaceSaving(std::size_t capacity) : capacity_(capacity) {
    if (capacity == 0) throw std::invalid_argument("SpaceSaving: capacity must be >= 1");
  }

  void add(const Key& key, std::uint64_t weight = 1) {
    const auto it = index_.find(key);
    if (it != index_.end()) {
      entries_[it->second].count += weight;
      return;
    }
    if (entries_.size() < capacity_) {
      index_[key] = entries_.size();
      entries_.push_back(Entry{key, weight, 0});
      return;
    }
    // Replace the minimum-count monitored key.
    std::size_t victim = 0;
    for (std::size_t i = 1; i < entries_.size(); ++i) {
      if (entries_[i].count < entries_[victim].count) victim = i;
    }
    index_.erase(entries_[victim].key);
    const std::uint64_t floor = entries_[victim].count;
    entries_[victim] = Entry{key, floor + weight, floor};
    index_[key] = victim;
  }

  /// Top `k` entries by estimated count, descending; ties broken by key for
  /// determinism.
  [[nodiscard]] std::vector<Entry> top(std::size_t k) const {
    std::vector<Entry> sorted = entries_;
    std::sort(sorted.begin(), sorted.end(), [](const Entry& a, const Entry& b) {
      if (a.count != b.count) return a.count > b.count;
      return a.key < b.key;
    });
    if (sorted.size() > k) sorted.resize(k);
    return sorted;
  }

  [[nodiscard]] std::uint64_t estimate(const Key& key) const {
    const auto it = index_.find(key);
    return it == index_.end() ? 0 : entries_[it->second].count;
  }

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  std::size_t capacity_;
  std::vector<Entry> entries_;
  std::unordered_map<Key, std::size_t> index_;
};

}  // namespace mtscope::telemetry
