#include "telemetry/block_stats.hpp"

#include <cmath>

namespace mtscope::telemetry {

void BlockStatsMap::add_flow(const flow::FlowRecord& record) {
  ++flows_;
  packets_ += record.packets;

  BlockCounters& dst = map_[net::Block24::containing(record.key.dst)];
  dst.rx_packets += record.packets;
  dst.rx_bytes += record.bytes;
  switch (record.key.proto) {
    case net::IpProto::kTcp:
      dst.rx_tcp_packets += record.packets;
      dst.rx_tcp_bytes += record.bytes;
      break;
    case net::IpProto::kUdp:
      dst.rx_udp_packets += record.packets;
      break;
    default:
      break;
  }

  BlockCounters& src = map_[net::Block24::containing(record.key.src)];
  src.tx_packets += record.packets;
}

void BlockStatsMap::merge(const BlockStatsMap& other) {
  for (const auto& [block, counters] : other.map_) {
    BlockCounters& mine = map_[block];
    mine.rx_packets += counters.rx_packets;
    mine.rx_bytes += counters.rx_bytes;
    mine.rx_tcp_packets += counters.rx_tcp_packets;
    mine.rx_tcp_bytes += counters.rx_tcp_bytes;
    mine.rx_udp_packets += counters.rx_udp_packets;
    mine.tx_packets += counters.tx_packets;
  }
  flows_ += other.flows_;
  packets_ += other.packets_;
}

void DetailedBlockStats::add_flow(const flow::FlowRecord& record) {
  counters_.rx_packets += record.packets;
  counters_.rx_bytes += record.bytes;
  if (record.key.proto == net::IpProto::kTcp) {
    counters_.rx_tcp_packets += record.packets;
    counters_.rx_tcp_bytes += record.bytes;
    // Flow records carry aggregate bytes; attribute the flow's mean size to
    // each of its packets.  Synthetic flows are constant-size, so this is
    // exact for our data and a standard approximation for real IPFIX.
    if (record.packets > 0) {
      const auto size = static_cast<std::uint32_t>(
          std::llround(static_cast<double>(record.bytes) / static_cast<double>(record.packets)));
      sizes_.add(size, record.packets);
    }
  } else if (record.key.proto == net::IpProto::kUdp) {
    counters_.rx_udp_packets += record.packets;
  }
}

}  // namespace mtscope::telemetry
