// Fixed-bin histogram for bounded integer observations (packet sizes).
//
// IP packet sizes live in [20, 65535] but in practice [40, 1500]; an exact
// per-byte-bin histogram gives exact means and medians, which matters
// because the paper's classifier thresholds (40/42/44/46 bytes) sit right
// on top of each other.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace mtscope::telemetry {

class Histogram {
 public:
  /// Bins cover [min_value, max_value] inclusive, one bin per integer.
  Histogram(std::uint32_t min_value, std::uint32_t max_value)
      : min_(min_value), max_(max_value) {
    if (min_value > max_value) throw std::invalid_argument("Histogram: min > max");
    bins_.assign(max_value - min_value + 1, 0);
  }

  /// Record `count` observations of `value`; clamped into range.
  void add(std::uint32_t value, std::uint64_t count = 1) noexcept {
    if (value < min_) value = min_;
    if (value > max_) value = max_;
    bins_[value - min_] += count;
    total_ += count;
    sum_ += static_cast<std::uint64_t>(value) * count;
  }

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] bool empty() const noexcept { return total_ == 0; }

  [[nodiscard]] double mean() const noexcept {
    return total_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(total_);
  }

  /// Value at quantile q in [0, 1]: the smallest value v such that at least
  /// ceil(q * total) observations are <= v (q = 0 yields the smallest
  /// observed value).  Throws on empty.
  [[nodiscard]] std::uint32_t quantile(double q) const {
    if (total_ == 0) throw std::logic_error("Histogram::quantile on empty histogram");
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    // The epsilon keeps ceil() exact when q * total is mathematically an
    // integer but lands an ulp high in floating point (0.1 * 10 > 1.0).
    const auto need = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total_) - 1e-9)));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
      seen += bins_[i];
      if (seen >= need) return min_ + static_cast<std::uint32_t>(i);
    }
    return max_;
  }

  [[nodiscard]] std::uint32_t median() const { return quantile(0.5); }

  /// Count of observations with value <= v.
  [[nodiscard]] std::uint64_t count_at_most(std::uint32_t v) const noexcept {
    if (v < min_) return 0;
    if (v > max_) v = max_;
    std::uint64_t out = 0;
    for (std::uint32_t i = 0; i <= v - min_; ++i) out += bins_[i];
    return out;
  }

  [[nodiscard]] std::uint64_t count_of(std::uint32_t value) const noexcept {
    if (value < min_ || value > max_) return 0;
    return bins_[value - min_];
  }

  void merge(const Histogram& other) {
    if (other.min_ != min_ || other.max_ != max_) {
      throw std::invalid_argument("Histogram::merge: incompatible ranges");
    }
    for (std::size_t i = 0; i < bins_.size(); ++i) bins_[i] += other.bins_[i];
    total_ += other.total_;
    sum_ += other.sum_;
  }

 private:
  std::uint32_t min_;
  std::uint32_t max_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t total_ = 0;
  std::uint64_t sum_ = 0;
};

/// Histogram sized for IP packet lengths.
[[nodiscard]] inline Histogram make_packet_size_histogram() { return Histogram(20, 1500); }

}  // namespace mtscope::telemetry
