// Minimal CSV reader/writer for dataset import/export (hit lists, report
// dumps).  Handles quoting per RFC 4180 on output; the reader supports
// quoted fields with embedded separators and doubled quotes.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.hpp"

namespace mtscope::util {

/// Parse one CSV line into fields.  Returns an error on unterminated quotes.
[[nodiscard]] Result<std::vector<std::string>> parse_csv_line(std::string_view line);

/// Escape a single field for CSV output.
[[nodiscard]] std::string csv_escape(std::string_view field);

/// Streaming CSV writer.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void write_row(const std::vector<std::string>& fields);

 private:
  std::ostream& out_;
};

/// Read a whole CSV document (no header interpretation).
[[nodiscard]] Result<std::vector<std::vector<std::string>>> read_csv(std::istream& in);

}  // namespace mtscope::util
