#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace mtscope::util {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("TextTable: at least one column required");
  alignment_.assign(headers_.size(), Align::kRight);
  alignment_[0] = Align::kLeft;
}

void TextTable::set_alignment(std::size_t column, Align align) {
  if (column >= alignment_.size()) throw std::out_of_range("TextTable::set_alignment: bad column");
  alignment_[column] = align;
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TextTable::add_row: cell count does not match header count");
  }
  rows_.push_back(Row{std::move(cells), pending_separator_});
  pending_separator_ = false;
}

void TextTable::add_separator() { pending_separator_ = true; }

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const Row& row : rows_) {
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  const auto hline = [&] {
    std::string line = "+";
    for (std::size_t w : widths) {
      line.append(w + 2, '-');
      line.push_back('+');
    }
    line.push_back('\n');
    return line;
  }();

  const auto emit_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::size_t pad = widths[c] - cells[c].size();
      line.push_back(' ');
      if (alignment_[c] == Align::kRight) line.append(pad, ' ');
      line.append(cells[c]);
      if (alignment_[c] == Align::kLeft) line.append(pad, ' ');
      line.append(" |");
    }
    line.push_back('\n');
    return line;
  };

  std::string out = hline;
  out += emit_row(headers_);
  out += hline;
  for (const Row& row : rows_) {
    if (row.separator_before) out += hline;
    out += emit_row(row.cells);
  }
  out += hline;
  return out;
}

std::string fixed(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", precision, value);
  return buffer;
}

std::string percent(double ratio, int precision) {
  return fixed(ratio * 100.0, precision) + "%";
}

}  // namespace mtscope::util
