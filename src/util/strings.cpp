#include "util/strings.hpp"

#include <algorithm>
#include <cctype>

namespace mtscope::util {

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (;;) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string_view> split_ws(std::string_view text) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v';
  };
  while (i < text.size()) {
    while (i < text.size() && is_space(text[i])) ++i;
    const std::size_t start = i;
    while (i < text.size() && !is_space(text[i])) ++i;
    if (i > start) out.push_back(text.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view text) noexcept {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v';
  };
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && is_space(text[begin])) ++begin;
  while (end > begin && is_space(text[end - 1])) --end;
  return text.substr(begin, end - begin);
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::optional<double> parse_double(std::string_view text) noexcept {
  if (text.empty()) return std::nullopt;
  double value{};
  const char* first = text.data();
  const char* last = first + text.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return value;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string with_commas(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

}  // namespace mtscope::util
