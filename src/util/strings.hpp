// Small string utilities shared by the text-format loaders and report
// writers.  Kept allocation-conscious: splitting returns string_views into
// the caller's buffer.
#pragma once

#include <charconv>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mtscope::util {

/// Split `text` on `sep`, returning views into `text`.  Adjacent separators
/// yield empty fields (CSV semantics).
[[nodiscard]] std::vector<std::string_view> split(std::string_view text, char sep);

/// Split on arbitrary whitespace runs; never yields empty fields.
[[nodiscard]] std::vector<std::string_view> split_ws(std::string_view text);

/// Strip leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view text) noexcept;

[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix) noexcept;

/// Parse an unsigned integer; rejects trailing garbage, signs and empties.
template <typename UInt>
[[nodiscard]] std::optional<UInt> parse_uint(std::string_view text) noexcept {
  if (text.empty()) return std::nullopt;
  UInt value{};
  const char* first = text.data();
  const char* last = first + text.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return value;
}

/// Parse a double; rejects trailing garbage and empties.
[[nodiscard]] std::optional<double> parse_double(std::string_view text) noexcept;

/// Join with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Format a count with thousands separators, e.g. 1234567 -> "1,234,567".
[[nodiscard]] std::string with_commas(std::uint64_t value);

/// Lower-case an ASCII string.
[[nodiscard]] std::string to_lower(std::string_view text);

}  // namespace mtscope::util
