// Deterministic pseudo-random number generation for the whole project.
//
// Everything stochastic in mtscope flows from a single 64-bit seed through
// this generator so that every experiment is exactly reproducible.  The
// engine is xoshiro256** (Blackman & Vigna) seeded via splitmix64, which is
// both faster and statistically stronger than std::mt19937_64 and — unlike
// the standard distributions — gives identical streams across standard
// library implementations because we implement the distributions ourselves.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

namespace mtscope::util {

/// splitmix64 step; used for seeding and as a cheap stateless mixer.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mix of two values; handy for deriving per-entity seeds.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t s = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  return splitmix64(s);
}

/// xoshiro256** deterministic random number generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x4d595df4d0f33173ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Derive an independent generator for a named sub-stream.  Use this to
  /// give every simulated entity its own stream so that adding one entity
  /// does not perturb the randomness of the others.
  [[nodiscard]] Rng fork(std::uint64_t stream_id) const noexcept {
    Rng child(mix64(state_[0] ^ state_[2], stream_id));
    return child;
  }

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound).  bound == 0 is a precondition violation.
  std::uint64_t uniform(std::uint64_t bound) {
    if (bound == 0) throw std::invalid_argument("Rng::uniform: bound must be > 0");
    // Lemire's nearly-divisionless method with rejection for exactness.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t x = next();
      const auto m = static_cast<unsigned __int128>(x) * bound;
      if (static_cast<std::uint64_t>(m) >= threshold) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform_in(std::uint64_t lo, std::uint64_t hi) {
    if (lo > hi) throw std::invalid_argument("Rng::uniform_in: lo > hi");
    const std::uint64_t span = hi - lo;
    if (span == std::numeric_limits<std::uint64_t>::max()) return next();
    return lo + uniform(span + 1);
  }

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform01() < p;
  }

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean) {
    if (!(mean > 0.0)) throw std::invalid_argument("Rng::exponential: mean must be > 0");
    double u;
    do { u = uniform01(); } while (u == 0.0);
    return -mean * std::log(u);
  }

  /// Poisson-distributed count with the given mean (>= 0).  Uses Knuth's
  /// method for small means and a normal approximation for large ones (the
  /// simulator draws per-day packet counts whose means can reach millions).
  std::uint64_t poisson(double mean) {
    if (mean < 0.0) throw std::invalid_argument("Rng::poisson: mean must be >= 0");
    if (mean == 0.0) return 0;
    if (mean < 30.0) {
      const double limit = std::exp(-mean);
      double product = uniform01();
      std::uint64_t count = 0;
      while (product > limit) {
        ++count;
        product *= uniform01();
      }
      return count;
    }
    const double draw = mean + std::sqrt(mean) * normal();
    if (draw < 0.0) return 0;
    return static_cast<std::uint64_t>(std::llround(draw));
  }

  /// Standard normal via Box-Muller (polar form avoided to stay branch-light).
  double normal() noexcept {
    double u1;
    do { u1 = uniform01(); } while (u1 == 0.0);
    const double u2 = uniform01();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * 3.14159265358979323846 * u2);
  }

  /// Pareto-distributed value with scale xm > 0 and shape alpha > 0.  Heavy
  /// tails show up all over Internet traffic (flow sizes, AS sizes).
  double pareto(double xm, double alpha) {
    if (!(xm > 0.0) || !(alpha > 0.0)) {
      throw std::invalid_argument("Rng::pareto: xm and alpha must be > 0");
    }
    double u;
    do { u = uniform01(); } while (u == 0.0);
    return xm / std::pow(u, 1.0 / alpha);
  }

  /// Zipf-like rank selection over [0, n): rank r chosen with probability
  /// proportional to 1/(r+1)^s.  Used for port and prefix popularity.
  std::size_t zipf(std::size_t n, double s);

  /// Pick a uniformly random element index weighted by `weights` (all >= 0,
  /// at least one > 0).
  std::size_t weighted_pick(std::span<const double> weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[uniform(i)]);
    }
  }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace mtscope::util
