#include "util/rng.hpp"

#include <numeric>

namespace mtscope::util {

std::size_t Rng::zipf(std::size_t n, double s) {
  if (n == 0) throw std::invalid_argument("Rng::zipf: n must be > 0");
  if (!(s >= 0.0)) throw std::invalid_argument("Rng::zipf: s must be >= 0");
  // Inverse-CDF over the (small) support.  n is bounded by the number of
  // distinct ports / prefixes a generator cares about, so O(n) is fine; the
  // harmonic normaliser is cached per (n, s) by callers that loop.
  double norm = 0.0;
  for (std::size_t r = 0; r < n; ++r) norm += 1.0 / std::pow(static_cast<double>(r + 1), s);
  double target = uniform01() * norm;
  for (std::size_t r = 0; r < n; ++r) {
    target -= 1.0 / std::pow(static_cast<double>(r + 1), s);
    if (target <= 0.0) return r;
  }
  return n - 1;
}

std::size_t Rng::weighted_pick(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("Rng::weighted_pick: negative weight");
    total += w;
  }
  if (!(total > 0.0)) throw std::invalid_argument("Rng::weighted_pick: all weights zero");
  double target = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target <= 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace mtscope::util
