// Byte-order helpers shared by every wire codec and on-disk format.
//
// Three families, all operating on explicit byte sequences so the code is
// host-endianness-agnostic by construction:
//
//   * be_put_* / be_get_* — network byte order (big-endian), used by the
//     IPFIX and NetFlow v5 codecs and the packet-header serializers.
//   * le_put_* / le_get_* — little-endian, the byte order of the telescope
//     snapshot format (DESIGN.md §10): snapshots are written once and
//     served many times on x86-class hardware, so the on-disk layout
//     matches the dominant load target.
//   * crc32 — IEEE 802.3 polynomial (reflected, init/xorout 0xffffffff),
//     the per-section checksum of the snapshot format.
//
// Getters deliberately take (span, offset) instead of a raw pointer: all
// callers already hold a span, and the span's bounds are the only defence
// a parser has.  Callers are responsible for offset+width <= size (the
// codecs all check lengths up front).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace mtscope::util {

// --- big-endian (network order) -------------------------------------------

inline void be_put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
}

inline void be_put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  be_put_u16(out, static_cast<std::uint16_t>(v >> 16));
  be_put_u16(out, static_cast<std::uint16_t>(v & 0xffff));
}

inline void be_put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  be_put_u32(out, static_cast<std::uint32_t>(v >> 32));
  be_put_u32(out, static_cast<std::uint32_t>(v & 0xffffffff));
}

[[nodiscard]] inline std::uint16_t be_get_u16(std::span<const std::uint8_t> b, std::size_t at) {
  return static_cast<std::uint16_t>((std::uint16_t{b[at]} << 8) | b[at + 1]);
}

[[nodiscard]] inline std::uint32_t be_get_u32(std::span<const std::uint8_t> b, std::size_t at) {
  return (std::uint32_t{be_get_u16(b, at)} << 16) | be_get_u16(b, at + 2);
}

[[nodiscard]] inline std::uint64_t be_get_u64(std::span<const std::uint8_t> b, std::size_t at) {
  return (std::uint64_t{be_get_u32(b, at)} << 32) | be_get_u32(b, at + 4);
}

// --- little-endian (snapshot on-disk order) -------------------------------

inline void le_put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

inline void le_put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  le_put_u16(out, static_cast<std::uint16_t>(v & 0xffff));
  le_put_u16(out, static_cast<std::uint16_t>(v >> 16));
}

inline void le_put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  le_put_u32(out, static_cast<std::uint32_t>(v & 0xffffffff));
  le_put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

[[nodiscard]] inline std::uint16_t le_get_u16(std::span<const std::uint8_t> b, std::size_t at) {
  return static_cast<std::uint16_t>(std::uint16_t{b[at]} | (std::uint16_t{b[at + 1]} << 8));
}

[[nodiscard]] inline std::uint32_t le_get_u32(std::span<const std::uint8_t> b, std::size_t at) {
  return std::uint32_t{le_get_u16(b, at)} | (std::uint32_t{le_get_u16(b, at + 2)} << 16);
}

[[nodiscard]] inline std::uint64_t le_get_u64(std::span<const std::uint8_t> b, std::size_t at) {
  return std::uint64_t{le_get_u32(b, at)} | (std::uint64_t{le_get_u32(b, at + 4)} << 32);
}

/// Overwrite already-emitted little-endian fields in place — for length /
/// checksum fields patched after their section is serialized, and for
/// writing into fixed-width frames held in stack arrays (serve/wire.hpp).
inline void le_patch_u16(std::span<std::uint8_t> b, std::size_t at, std::uint16_t v) {
  b[at] = static_cast<std::uint8_t>(v & 0xff);
  b[at + 1] = static_cast<std::uint8_t>(v >> 8);
}

inline void le_patch_u32(std::span<std::uint8_t> b, std::size_t at, std::uint32_t v) {
  le_patch_u16(b, at, static_cast<std::uint16_t>(v & 0xffff));
  le_patch_u16(b, at + 2, static_cast<std::uint16_t>(v >> 16));
}

inline void le_patch_u64(std::span<std::uint8_t> b, std::size_t at, std::uint64_t v) {
  le_patch_u32(b, at, static_cast<std::uint32_t>(v & 0xffffffff));
  le_patch_u32(b, at + 4, static_cast<std::uint32_t>(v >> 32));
}

// --- CRC32 (IEEE 802.3) ---------------------------------------------------

namespace detail {
inline constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}
inline constexpr std::array<std::uint32_t, 256> kCrc32Table = make_crc32_table();
}  // namespace detail

/// Incremental form: pass the previous return value as `seed` to checksum a
/// logically contiguous stream in pieces.  Start with the default seed.
[[nodiscard]] inline std::uint32_t crc32(std::span<const std::uint8_t> data,
                                         std::uint32_t seed = 0) {
  std::uint32_t c = seed ^ 0xffffffffu;
  for (const std::uint8_t byte : data) {
    c = detail::kCrc32Table[(c ^ byte) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace mtscope::util
