// Plain-text table renderer used by every bench harness to print
// paper-style tables with aligned columns.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mtscope::util {

/// Column alignment for TextTable.
enum class Align { kLeft, kRight };

/// A simple monospace table: set headers, add rows, render.
///
///   TextTable t({"IXP", "#Members", "Region"});
///   t.add_row({"CE1", "1,000+", "Central Europe"});
///   std::cout << t.render();
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Override per-column alignment (default: first column left, rest right).
  void set_alignment(std::size_t column, Align align);

  /// Add a data row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Insert a horizontal separator before the next added row.
  void add_separator();

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Render with unicode-free ASCII borders.
  [[nodiscard]] std::string render() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator_before = false;
  };

  std::vector<std::string> headers_;
  std::vector<Align> alignment_;
  std::vector<Row> rows_;
  bool pending_separator_ = false;
};

/// Format a double with fixed precision (no locale surprises).
[[nodiscard]] std::string fixed(double value, int precision);

/// Format a ratio as a percentage string with the given precision.
[[nodiscard]] std::string percent(double ratio, int precision = 2);

}  // namespace mtscope::util
