#include "util/csv.hpp"

#include <istream>
#include <ostream>

namespace mtscope::util {

Result<std::vector<std::string>> parse_csv_line(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  std::size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
    ++i;
  }
  if (in_quotes) return make_error("csv.unterminated_quote", "unterminated quoted field");
  fields.push_back(std::move(current));
  return fields;
}

std::string csv_escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << csv_escape(fields[i]);
  }
  out_ << '\n';
}

Result<std::vector<std::vector<std::string>>> read_csv(std::istream& in) {
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    auto parsed = parse_csv_line(line);
    if (!parsed.ok()) return parsed.error();
    rows.push_back(std::move(parsed.value()));
  }
  return rows;
}

}  // namespace mtscope::util
