// Lightweight Result<T> for *expected* failures (wire decoding, text
// parsing).  API-contract violations still throw; see DESIGN.md §11.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace mtscope::util {

/// Error payload: a short machine-stable code plus a human message.
struct Error {
  std::string code;
  std::string message;

  [[nodiscard]] std::string to_string() const { return code + ": " + message; }
};

/// Result<T>: either a value or an Error.  Deliberately minimal — just what
/// the codecs and parsers need, with an ergonomic `value_or_throw`.
template <typename T>
class Result {
 public:
  Result(T value) : storage_(std::move(value)) {}             // NOLINT(google-explicit-constructor)
  Result(Error error) : storage_(std::move(error)) {}         // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const noexcept { return std::holds_alternative<T>(storage_); }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] const T& value() const& {
    check();
    return std::get<T>(storage_);
  }
  [[nodiscard]] T& value() & {
    check();
    return std::get<T>(storage_);
  }
  [[nodiscard]] T&& value() && {
    check();
    return std::get<T>(std::move(storage_));
  }

  [[nodiscard]] const Error& error() const {
    if (ok()) throw std::logic_error("Result::error called on success value");
    return std::get<Error>(storage_);
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<T>(storage_) : std::move(fallback);
  }

  /// Unwrap, converting an error into a std::runtime_error.
  [[nodiscard]] T value_or_throw() && {
    if (!ok()) throw std::runtime_error(error().to_string());
    return std::get<T>(std::move(storage_));
  }

 private:
  void check() const {
    if (!ok()) throw std::logic_error("Result::value called on error: " + error().to_string());
  }

  std::variant<T, Error> storage_;
};

/// Convenience factory.
inline Error make_error(std::string code, std::string message) {
  return Error{std::move(code), std::move(message)};
}

}  // namespace mtscope::util
