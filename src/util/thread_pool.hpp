// Minimal fixed-size worker pool for the parallel pipeline.
//
// Deliberately small: a FIFO queue of void() tasks drained by N threads.
// The parallel collector/inference code partitions its work statically and
// submits one job per partition, so the pool never needs work stealing,
// priorities or resizing.  Exceptions thrown by a task are captured into
// the future returned by submit() (std::packaged_task semantics).
#pragma once

#include <condition_variable>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

namespace mtscope::util {

class ThreadPool {
 public:
  /// Spawns max(1, thread_count) workers immediately.
  explicit ThreadPool(unsigned thread_count) {
    const unsigned count = thread_count == 0 ? 1 : thread_count;
    workers_.reserve(count);
    for (unsigned i = 0; i < count; ++i) {
      workers_.emplace_back([this] { run(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queue (already-submitted tasks still run), then joins.
  ~ThreadPool() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    ready_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueue a void() callable.  The future completes when the task has run
  /// and rethrows whatever the task threw.
  template <typename Fn>
  std::future<void> submit(Fn&& fn) {
    std::packaged_task<void()> task(std::forward<Fn>(fn));
    std::future<void> future = task.get_future();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      queue_.push(std::move(task));
    }
    ready_.notify_one();
    return future;
  }

 private:
  void run() {
    for (;;) {
      std::packaged_task<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping and drained
        task = std::move(queue_.front());
        queue_.pop();
      }
      task();
    }
  }

  std::mutex mutex_;
  std::condition_variable ready_;
  std::queue<std::packaged_task<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace mtscope::util
