// Minimal fixed-size worker pool for the parallel pipeline.
//
// Deliberately small: a FIFO queue of void() tasks drained by N threads.
// The parallel collector/inference code partitions its work statically and
// submits one job per partition, so the pool never needs work stealing,
// priorities or resizing.  Exceptions thrown by a task are captured into
// the future returned by submit() (std::packaged_task semantics).
//
// Shutdown contract: once shutdown() begins (the destructor calls it),
// every task already accepted by submit() still runs to completion and its
// future becomes ready; submit() racing with or following shutdown()
// throws std::runtime_error instead of accepting the task.  The
// stopping check and the enqueue happen under one mutex hold, so no task
// can slip in after a worker has taken the "stopping and drained" exit —
// the pre-fix race where a late submit() enqueued a task nobody would ever
// run, leaving its future permanently pending and hanging any .get().
#pragma once

#include <condition_variable>
#include <future>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

namespace mtscope::util {

class ThreadPool {
 public:
  /// Spawns max(1, thread_count) workers immediately.
  explicit ThreadPool(unsigned thread_count) {
    const unsigned count = thread_count == 0 ? 1 : thread_count;
    workers_.reserve(count);
    for (unsigned i = 0; i < count; ++i) {
      workers_.emplace_back([this] { run(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queue (already-submitted tasks still run), then joins.
  ~ThreadPool() { shutdown(); }

  /// Stop accepting work, finish everything already queued, join the
  /// workers.  Idempotent from the owning thread (the destructor calls it
  /// again harmlessly); like the destructor, it must not race itself.
  void shutdown() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    ready_.notify_all();
    for (std::thread& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
  }

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueue a void() callable.  The future completes when the task has run
  /// and rethrows whatever the task threw.  Throws std::runtime_error once
  /// shutdown has begun — the task is NOT enqueued, so an accepted submit
  /// always yields a future that eventually becomes ready.
  template <typename Fn>
  std::future<void> submit(Fn&& fn) {
    std::packaged_task<void()> task(std::forward<Fn>(fn));
    std::future<void> future = task.get_future();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) {
        throw std::runtime_error("ThreadPool::submit after shutdown");
      }
      queue_.push(std::move(task));
    }
    ready_.notify_one();
    return future;
  }

 private:
  void run() {
    for (;;) {
      std::packaged_task<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping and drained
        task = std::move(queue_.front());
        queue_.pop();
      }
      task();
    }
  }

  std::mutex mutex_;
  std::condition_variable ready_;
  std::queue<std::packaged_task<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace mtscope::util
