// RFC 1071 Internet checksum.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace mtscope::net {

/// One's-complement sum accumulator, foldable into the 16-bit checksum.
/// Usable incrementally (header + pseudo-header + payload).
class ChecksumAccumulator {
 public:
  /// Feed bytes; an odd-length chunk may only be the final chunk.
  void update(std::span<const std::uint8_t> bytes) noexcept;

  /// Feed a single 16-bit word (host order).
  void update_word(std::uint16_t word) noexcept;

  /// Final folded, complemented checksum in host order.
  [[nodiscard]] std::uint16_t finish() const noexcept;

 private:
  std::uint64_t sum_ = 0;
  bool odd_ = false;  // true if the previous update ended mid-word
};

/// Convenience: checksum of a single contiguous buffer.
[[nodiscard]] std::uint16_t internet_checksum(std::span<const std::uint8_t> bytes) noexcept;

}  // namespace mtscope::net
