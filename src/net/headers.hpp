// IPv4 / TCP / UDP / ICMP header structs with wire (de)serialisation.
//
// The telescope observers store raw packets (pcap) and the port-statistics
// analyses parse them back, exactly as the paper extracts port statistics
// from raw telescope PCAPs.  Every decode path bounds-checks and reports
// failure through Result<> — wire input is never trusted.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/ipv4.hpp"
#include "util/result.hpp"

namespace mtscope::net {

/// IP protocol numbers used throughout the project.
enum class IpProto : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
};

/// TCP flag bits (subset we model).
struct TcpFlags {
  static constexpr std::uint8_t kFin = 0x01;
  static constexpr std::uint8_t kSyn = 0x02;
  static constexpr std::uint8_t kRst = 0x04;
  static constexpr std::uint8_t kPsh = 0x08;
  static constexpr std::uint8_t kAck = 0x10;
};

/// IPv4 header (no options beyond what ihl expresses; we emit ihl=5).
struct Ipv4Header {
  static constexpr std::size_t kMinSize = 20;

  std::uint8_t ihl = 5;             // header length in 32-bit words
  std::uint8_t dscp_ecn = 0;
  std::uint16_t total_length = 0;   // entire IP packet length in bytes
  std::uint16_t identification = 0;
  std::uint16_t flags_fragment = 0x4000;  // DF set, no fragmentation
  std::uint8_t ttl = 64;
  IpProto protocol = IpProto::kTcp;
  std::uint16_t checksum = 0;       // filled in by serialise
  Ipv4Addr src;
  Ipv4Addr dst;

  /// Append the 20-byte header to `out`, computing the checksum.
  void serialize(std::vector<std::uint8_t>& out) const;

  /// Parse from the start of `bytes`.  Validates version, ihl, length and
  /// checksum.
  [[nodiscard]] static util::Result<Ipv4Header> parse(std::span<const std::uint8_t> bytes);
};

/// TCP header (options expressed only through data_offset; emitted payloads
/// in this project are header-only, matching IBR's SYN-dominated profile).
struct TcpHeader {
  static constexpr std::size_t kMinSize = 20;

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t data_offset = 5;  // in 32-bit words
  std::uint8_t flags = 0;
  std::uint16_t window = 65535;
  std::uint16_t checksum = 0;
  std::uint16_t urgent = 0;

  /// Append `data_offset * 4` bytes; option bytes beyond 20 are zero-padded
  /// (an MSS option in real SYNs — the paper's 48-byte step — is modelled as
  /// 8 option bytes).  Checksum covers the pseudo header for src/dst.
  void serialize(std::vector<std::uint8_t>& out, Ipv4Addr src, Ipv4Addr dst,
                 std::span<const std::uint8_t> payload = {}) const;

  [[nodiscard]] static util::Result<TcpHeader> parse(std::span<const std::uint8_t> bytes);
};

/// UDP header.
struct UdpHeader {
  static constexpr std::size_t kSize = 8;

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 8;  // header + payload
  std::uint16_t checksum = 0;

  void serialize(std::vector<std::uint8_t>& out, Ipv4Addr src, Ipv4Addr dst,
                 std::span<const std::uint8_t> payload = {}) const;

  [[nodiscard]] static util::Result<UdpHeader> parse(std::span<const std::uint8_t> bytes);
};

/// ICMP header (echo / unreachable style, 8 bytes).
struct IcmpHeader {
  static constexpr std::size_t kSize = 8;

  std::uint8_t type = 8;
  std::uint8_t code = 0;
  std::uint16_t checksum = 0;
  std::uint32_t rest = 0;

  void serialize(std::vector<std::uint8_t>& out,
                 std::span<const std::uint8_t> payload = {}) const;

  [[nodiscard]] static util::Result<IcmpHeader> parse(std::span<const std::uint8_t> bytes);
};

/// A fully parsed packet (IP header + transport header view).
struct ParsedPacket {
  Ipv4Header ip;
  // Only the fields meaningful for the parsed protocol are set.
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t tcp_flags = 0;
};

/// Parse an IPv4 packet with a TCP/UDP/ICMP payload.
[[nodiscard]] util::Result<ParsedPacket> parse_packet(std::span<const std::uint8_t> bytes);

/// Synthesize a full wire packet.  `ip_total_length` must be at least the
/// header sizes implied by the arguments; the payload is zero-filled.
[[nodiscard]] std::vector<std::uint8_t> synthesize_packet(
    Ipv4Addr src, Ipv4Addr dst, IpProto proto, std::uint16_t src_port, std::uint16_t dst_port,
    std::uint8_t tcp_flags, std::uint16_t ip_total_length);

}  // namespace mtscope::net
