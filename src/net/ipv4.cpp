#include "net/ipv4.hpp"

#include <charconv>

namespace mtscope::net {

std::optional<Ipv4Addr> Ipv4Addr::parse(std::string_view text) noexcept {
  std::uint32_t value = 0;
  const char* cursor = text.data();
  const char* const end = cursor + text.size();
  for (int octet = 0; octet < 4; ++octet) {
    if (octet != 0) {
      if (cursor == end || *cursor != '.') return std::nullopt;
      ++cursor;
    }
    unsigned parsed = 0;
    auto [ptr, ec] = std::from_chars(cursor, end, parsed);
    if (ec != std::errc{} || ptr == cursor || parsed > 255) return std::nullopt;
    // Reject over-long octets like "0001" (max 3 digits).
    if (ptr - cursor > 3) return std::nullopt;
    value = (value << 8) | parsed;
    cursor = ptr;
  }
  if (cursor != end) return std::nullopt;
  return Ipv4Addr(value);
}

std::string Ipv4Addr::to_string() const {
  std::string out;
  out.reserve(15);
  for (int i = 0; i < 4; ++i) {
    if (i != 0) out.push_back('.');
    out += std::to_string(octet(i));
  }
  return out;
}

std::string Block24::to_string() const {
  return first_address().to_string() + "/24";
}

}  // namespace mtscope::net
