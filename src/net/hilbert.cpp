#include "net/hilbert.hpp"

namespace mtscope::net {

namespace {

/// Rotate/flip a quadrant appropriately (classic Hilbert construction).
void rotate(std::uint32_t n, std::uint32_t& x, std::uint32_t& y, std::uint32_t rx,
            std::uint32_t ry) noexcept {
  if (ry == 0) {
    if (rx == 1) {
      x = n - 1 - x;
      y = n - 1 - y;
    }
    std::uint32_t t = x;
    x = y;
    y = t;
  }
}

}  // namespace

HilbertPoint hilbert_d2xy(int order, std::uint64_t d) noexcept {
  const std::uint32_t n = 1u << order;
  std::uint32_t x = 0;
  std::uint32_t y = 0;
  std::uint64_t t = d;
  for (std::uint32_t s = 1; s < n; s <<= 1) {
    const auto rx = static_cast<std::uint32_t>(1 & (t / 2));
    const auto ry = static_cast<std::uint32_t>(1 & (t ^ rx));
    rotate(s, x, y, rx, ry);
    x += s * rx;
    y += s * ry;
    t /= 4;
  }
  return {x, y};
}

std::uint64_t hilbert_xy2d(int order, HilbertPoint p) noexcept {
  const std::uint32_t n = 1u << order;
  std::uint64_t d = 0;
  std::uint32_t x = p.x;
  std::uint32_t y = p.y;
  for (std::uint32_t s = n / 2; s > 0; s /= 2) {
    const std::uint32_t rx = (x & s) > 0 ? 1 : 0;
    const std::uint32_t ry = (y & s) > 0 ? 1 : 0;
    d += std::uint64_t{s} * s * ((3 * rx) ^ ry);
    rotate(s, x, y, rx, ry);
  }
  return d;
}

}  // namespace mtscope::net
