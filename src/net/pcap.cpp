#include "net/pcap.hpp"

#include <istream>
#include <ostream>

namespace mtscope::net {

namespace {

constexpr std::uint32_t kMagic = 0xa1b2c3d4;  // classic pcap, microseconds
constexpr std::uint32_t kLinkTypeRaw = 101;

void put_u32le(std::ostream& out, std::uint32_t v) {
  const char bytes[4] = {
      static_cast<char>(v & 0xff), static_cast<char>((v >> 8) & 0xff),
      static_cast<char>((v >> 16) & 0xff), static_cast<char>((v >> 24) & 0xff)};
  out.write(bytes, 4);
}

void put_u16le(std::ostream& out, std::uint16_t v) {
  const char bytes[2] = {static_cast<char>(v & 0xff), static_cast<char>((v >> 8) & 0xff)};
  out.write(bytes, 2);
}

[[nodiscard]] bool get_u32le(std::istream& in, std::uint32_t& v) {
  unsigned char bytes[4];
  if (!in.read(reinterpret_cast<char*>(bytes), 4)) return false;
  v = std::uint32_t{bytes[0]} | (std::uint32_t{bytes[1]} << 8) | (std::uint32_t{bytes[2]} << 16) |
      (std::uint32_t{bytes[3]} << 24);
  return true;
}

}  // namespace

PcapWriter::PcapWriter(std::ostream& out, std::uint32_t snaplen)
    : out_(out), snaplen_(snaplen) {
  put_u32le(out_, kMagic);
  put_u16le(out_, 2);   // version major
  put_u16le(out_, 4);   // version minor
  put_u32le(out_, 0);   // thiszone
  put_u32le(out_, 0);   // sigfigs
  put_u32le(out_, snaplen_);
  put_u32le(out_, kLinkTypeRaw);
}

void PcapWriter::write(std::uint64_t timestamp_us, std::span<const std::uint8_t> packet) {
  const auto captured = static_cast<std::uint32_t>(
      packet.size() > snaplen_ ? snaplen_ : packet.size());
  put_u32le(out_, static_cast<std::uint32_t>(timestamp_us / 1'000'000));
  put_u32le(out_, static_cast<std::uint32_t>(timestamp_us % 1'000'000));
  put_u32le(out_, captured);
  put_u32le(out_, static_cast<std::uint32_t>(packet.size()));
  out_.write(reinterpret_cast<const char*>(packet.data()), captured);
  ++packets_;
}

util::Result<std::vector<CapturedPacket>> read_pcap(std::istream& in) {
  std::uint32_t magic = 0;
  if (!get_u32le(in, magic)) return util::make_error("pcap.truncated", "missing global header");
  if (magic != kMagic) {
    return util::make_error("pcap.magic", "unsupported pcap magic (expect LE microsecond pcap)");
  }
  // Skip version (2+2), thiszone (4) and sigfigs (4), then read snaplen +
  // linktype.
  in.ignore(12);
  std::uint32_t snaplen = 0;
  std::uint32_t linktype = 0;
  if (!get_u32le(in, snaplen) || !get_u32le(in, linktype)) {
    return util::make_error("pcap.truncated", "global header too short");
  }
  if (linktype != kLinkTypeRaw) {
    return util::make_error("pcap.linktype", "expected LINKTYPE_RAW (101)");
  }

  std::vector<CapturedPacket> packets;
  for (;;) {
    std::uint32_t sec = 0;
    if (!get_u32le(in, sec)) break;  // clean EOF
    std::uint32_t usec = 0;
    std::uint32_t incl_len = 0;
    std::uint32_t orig_len = 0;
    if (!get_u32le(in, usec) || !get_u32le(in, incl_len) || !get_u32le(in, orig_len)) {
      return util::make_error("pcap.truncated", "packet header cut short");
    }
    if (incl_len > snaplen) {
      return util::make_error("pcap.record", "captured length exceeds snaplen");
    }
    CapturedPacket p;
    p.timestamp_us = std::uint64_t{sec} * 1'000'000 + usec;
    p.data.resize(incl_len);
    if (!in.read(reinterpret_cast<char*>(p.data.data()), incl_len)) {
      return util::make_error("pcap.truncated", "packet body cut short");
    }
    packets.push_back(std::move(p));
  }
  return packets;
}

}  // namespace mtscope::net
