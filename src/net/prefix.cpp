#include "net/prefix.hpp"

#include <charconv>
#include <stdexcept>

namespace mtscope::net {

Prefix::Prefix(Ipv4Addr base, int length) : base_(base), length_(length) {
  if (length < 0 || length > 32) {
    throw std::invalid_argument("Prefix: length must be in [0, 32], got " +
                                std::to_string(length));
  }
  if ((base.value() & ~mask_for(length)) != 0) {
    throw std::invalid_argument("Prefix: host bits set in " + base.to_string() + "/" +
                                std::to_string(length));
  }
}

Prefix Prefix::canonical(Ipv4Addr addr, int length) {
  if (length < 0 || length > 32) {
    throw std::invalid_argument("Prefix::canonical: length must be in [0, 32]");
  }
  return Prefix(Ipv4Addr(addr.value() & mask_for(length)), length);
}

std::optional<Prefix> Prefix::parse(std::string_view text) noexcept {
  const std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = Ipv4Addr::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  const std::string_view len_text = text.substr(slash + 1);
  unsigned length = 0;
  const char* first = len_text.data();
  const char* last = first + len_text.size();
  auto [ptr, ec] = std::from_chars(first, last, length);
  if (ec != std::errc{} || ptr != last || length > 32) return std::nullopt;
  if ((addr->value() & ~mask_for(static_cast<int>(length))) != 0) return std::nullopt;
  return Prefix(*addr, static_cast<int>(length));
}

Prefix Prefix::from_block24(Block24 block) noexcept {
  return Prefix(block.first_address(), 24);
}

std::optional<Prefix> Prefix::parent() const noexcept {
  if (length_ == 0) return std::nullopt;
  return canonical(base_, length_ - 1);
}

std::pair<Prefix, Prefix> Prefix::children() const {
  if (length_ >= 32) throw std::logic_error("Prefix::children: cannot split a /32");
  const int child_len = length_ + 1;
  const Prefix low(base_, child_len);
  const Prefix high(Ipv4Addr(base_.value() | (1u << (32 - child_len))), child_len);
  return {low, high};
}

Block24 Prefix::first_block24() const {
  if (length_ > 24) throw std::logic_error("Prefix::first_block24: prefix longer than /24");
  return Block24::containing(base_);
}

std::vector<Block24> Prefix::blocks24() const {
  if (length_ > 24) throw std::logic_error("Prefix::blocks24: prefix longer than /24");
  const std::uint64_t count = block24_count();
  std::vector<Block24> out;
  out.reserve(count);
  const std::uint32_t first = base_.value() >> 8;
  for (std::uint64_t i = 0; i < count; ++i) {
    out.emplace_back(first + static_cast<std::uint32_t>(i));
  }
  return out;
}

std::string Prefix::to_string() const {
  return base_.to_string() + "/" + std::to_string(length_);
}

}  // namespace mtscope::net
