// CIDR prefix type with containment / subdivision algebra.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/ipv4.hpp"

namespace mtscope::net {

/// An IPv4 CIDR prefix, always stored in canonical form (host bits zero).
class Prefix {
 public:
  /// Default: 0.0.0.0/0 (the whole address space).
  constexpr Prefix() noexcept = default;

  /// Construct from base address and length.  Throws std::invalid_argument
  /// if length > 32 or the address has non-zero host bits.
  Prefix(Ipv4Addr base, int length);

  /// Construct, silently canonicalising (masking off host bits).
  [[nodiscard]] static Prefix canonical(Ipv4Addr addr, int length);

  /// Parse "a.b.c.d/len".
  [[nodiscard]] static std::optional<Prefix> parse(std::string_view text) noexcept;

  /// The /24 `block` as a prefix.
  [[nodiscard]] static Prefix from_block24(Block24 block) noexcept;

  [[nodiscard]] constexpr Ipv4Addr base() const noexcept { return base_; }
  [[nodiscard]] constexpr int length() const noexcept { return length_; }

  /// Network mask for this prefix length.
  [[nodiscard]] constexpr std::uint32_t mask() const noexcept { return mask_for(length_); }

  [[nodiscard]] static constexpr std::uint32_t mask_for(int length) noexcept {
    return length == 0 ? 0u : (~0u << (32 - length));
  }

  /// Number of addresses covered (as 64-bit; /0 covers 2^32).
  [[nodiscard]] constexpr std::uint64_t address_count() const noexcept {
    return std::uint64_t{1} << (32 - length_);
  }

  /// Number of /24 blocks covered; 0 for prefixes longer than /24.
  [[nodiscard]] constexpr std::uint64_t block24_count() const noexcept {
    return length_ <= 24 ? (std::uint64_t{1} << (24 - length_)) : 0;
  }

  [[nodiscard]] constexpr bool contains(Ipv4Addr addr) const noexcept {
    return (addr.value() & mask()) == base_.value();
  }

  [[nodiscard]] constexpr bool contains(Block24 block) const noexcept {
    return length_ <= 24 && contains(block.first_address());
  }

  /// True if `other` is fully inside (or equal to) this prefix.
  [[nodiscard]] constexpr bool contains(const Prefix& other) const noexcept {
    return other.length_ >= length_ && contains(other.base_);
  }

  [[nodiscard]] constexpr bool overlaps(const Prefix& other) const noexcept {
    return contains(other) || other.contains(*this);
  }

  /// Parent prefix one bit shorter; nullopt at /0.
  [[nodiscard]] std::optional<Prefix> parent() const noexcept;

  /// The two children one bit longer; throws at /32.
  [[nodiscard]] std::pair<Prefix, Prefix> children() const;

  /// First /24 inside this prefix; only valid for length <= 24.
  [[nodiscard]] Block24 first_block24() const;

  /// Enumerate all /24 blocks inside this prefix (length <= 24 required).
  [[nodiscard]] std::vector<Block24> blocks24() const;

  /// Value of the bit at `position` (0 = most significant) of the base.
  [[nodiscard]] constexpr bool bit(int position) const noexcept {
    return (base_.value() >> (31 - position)) & 1u;
  }

  [[nodiscard]] std::string to_string() const;

  constexpr auto operator<=>(const Prefix&) const noexcept = default;

 private:
  Ipv4Addr base_{};
  int length_ = 0;
};

}  // namespace mtscope::net

template <>
struct std::hash<mtscope::net::Prefix> {
  std::size_t operator()(const mtscope::net::Prefix& prefix) const noexcept {
    const std::uint64_t packed =
        (std::uint64_t{prefix.base().value()} << 8) | static_cast<std::uint64_t>(prefix.length());
    return std::hash<std::uint64_t>{}(packed);
  }
};
