#include "net/headers.hpp"

#include <stdexcept>

#include "net/checksum.hpp"
#include "util/bytes.hpp"

namespace mtscope::net {

namespace {

using util::be_get_u16;
using util::be_get_u32;
using util::be_put_u16;
using util::be_put_u32;

/// TCP/UDP pseudo-header contribution to the transport checksum.
void feed_pseudo_header(ChecksumAccumulator& acc, Ipv4Addr src, Ipv4Addr dst, IpProto proto,
                        std::uint16_t transport_length) {
  acc.update_word(static_cast<std::uint16_t>(src.value() >> 16));
  acc.update_word(static_cast<std::uint16_t>(src.value() & 0xffff));
  acc.update_word(static_cast<std::uint16_t>(dst.value() >> 16));
  acc.update_word(static_cast<std::uint16_t>(dst.value() & 0xffff));
  acc.update_word(static_cast<std::uint16_t>(proto));
  acc.update_word(transport_length);
}

}  // namespace

void Ipv4Header::serialize(std::vector<std::uint8_t>& out) const {
  if (ihl < 5 || ihl > 15) throw std::invalid_argument("Ipv4Header: ihl out of range");
  const std::size_t start = out.size();
  out.push_back(static_cast<std::uint8_t>((4u << 4) | ihl));
  out.push_back(dscp_ecn);
  be_put_u16(out, total_length);
  be_put_u16(out, identification);
  be_put_u16(out, flags_fragment);
  out.push_back(ttl);
  out.push_back(static_cast<std::uint8_t>(protocol));
  be_put_u16(out, 0);  // checksum placeholder
  be_put_u32(out, src.value());
  be_put_u32(out, dst.value());
  // Zero-fill any option space implied by ihl > 5.
  out.resize(start + std::size_t{ihl} * 4, 0);
  const std::uint16_t sum = internet_checksum(
      std::span<const std::uint8_t>(out.data() + start, std::size_t{ihl} * 4));
  out[start + 10] = static_cast<std::uint8_t>(sum >> 8);
  out[start + 11] = static_cast<std::uint8_t>(sum & 0xff);
}

util::Result<Ipv4Header> Ipv4Header::parse(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kMinSize) {
    return util::make_error("ipv4.truncated", "buffer shorter than 20 bytes");
  }
  const std::uint8_t version = bytes[0] >> 4;
  if (version != 4) return util::make_error("ipv4.version", "not an IPv4 packet");
  Ipv4Header h;
  h.ihl = bytes[0] & 0x0f;
  if (h.ihl < 5) return util::make_error("ipv4.ihl", "ihl below minimum");
  const std::size_t header_len = std::size_t{h.ihl} * 4;
  if (bytes.size() < header_len) {
    return util::make_error("ipv4.truncated", "buffer shorter than ihl indicates");
  }
  h.dscp_ecn = bytes[1];
  h.total_length = be_get_u16(bytes, 2);
  if (h.total_length < header_len) {
    return util::make_error("ipv4.length", "total_length smaller than header");
  }
  h.identification = be_get_u16(bytes, 4);
  h.flags_fragment = be_get_u16(bytes, 6);
  h.ttl = bytes[8];
  h.protocol = static_cast<IpProto>(bytes[9]);
  h.checksum = be_get_u16(bytes, 10);
  h.src = Ipv4Addr(be_get_u32(bytes, 12));
  h.dst = Ipv4Addr(be_get_u32(bytes, 16));
  if (internet_checksum(bytes.first(header_len)) != 0) {
    return util::make_error("ipv4.checksum", "header checksum mismatch");
  }
  return h;
}

void TcpHeader::serialize(std::vector<std::uint8_t>& out, Ipv4Addr src, Ipv4Addr dst,
                          std::span<const std::uint8_t> payload) const {
  if (data_offset < 5 || data_offset > 15) {
    throw std::invalid_argument("TcpHeader: data_offset out of range");
  }
  const std::size_t start = out.size();
  const std::size_t header_len = std::size_t{data_offset} * 4;
  be_put_u16(out, src_port);
  be_put_u16(out, dst_port);
  be_put_u32(out, seq);
  be_put_u32(out, ack);
  out.push_back(static_cast<std::uint8_t>(data_offset << 4));
  out.push_back(flags);
  be_put_u16(out, window);
  be_put_u16(out, 0);  // checksum placeholder
  be_put_u16(out, urgent);
  out.resize(start + header_len, 0);  // zero option bytes
  out.insert(out.end(), payload.begin(), payload.end());

  ChecksumAccumulator acc;
  const auto transport_len = static_cast<std::uint16_t>(header_len + payload.size());
  feed_pseudo_header(acc, src, dst, IpProto::kTcp, transport_len);
  acc.update(std::span<const std::uint8_t>(out.data() + start, transport_len));
  const std::uint16_t sum = acc.finish();
  out[start + 16] = static_cast<std::uint8_t>(sum >> 8);
  out[start + 17] = static_cast<std::uint8_t>(sum & 0xff);
}

util::Result<TcpHeader> TcpHeader::parse(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kMinSize) {
    return util::make_error("tcp.truncated", "buffer shorter than 20 bytes");
  }
  TcpHeader h;
  h.src_port = be_get_u16(bytes, 0);
  h.dst_port = be_get_u16(bytes, 2);
  h.seq = be_get_u32(bytes, 4);
  h.ack = be_get_u32(bytes, 8);
  h.data_offset = bytes[12] >> 4;
  if (h.data_offset < 5) return util::make_error("tcp.offset", "data offset below minimum");
  if (bytes.size() < std::size_t{h.data_offset} * 4) {
    return util::make_error("tcp.truncated", "buffer shorter than data offset indicates");
  }
  h.flags = bytes[13];
  h.window = be_get_u16(bytes, 14);
  h.checksum = be_get_u16(bytes, 16);
  h.urgent = be_get_u16(bytes, 18);
  return h;
}

void UdpHeader::serialize(std::vector<std::uint8_t>& out, Ipv4Addr src, Ipv4Addr dst,
                          std::span<const std::uint8_t> payload) const {
  const std::size_t start = out.size();
  const auto total = static_cast<std::uint16_t>(kSize + payload.size());
  be_put_u16(out, src_port);
  be_put_u16(out, dst_port);
  be_put_u16(out, total);
  be_put_u16(out, 0);  // checksum placeholder
  out.insert(out.end(), payload.begin(), payload.end());

  ChecksumAccumulator acc;
  feed_pseudo_header(acc, src, dst, IpProto::kUdp, total);
  acc.update(std::span<const std::uint8_t>(out.data() + start, total));
  std::uint16_t sum = acc.finish();
  if (sum == 0) sum = 0xffff;  // RFC 768: transmitted zero means "no checksum"
  out[start + 6] = static_cast<std::uint8_t>(sum >> 8);
  out[start + 7] = static_cast<std::uint8_t>(sum & 0xff);
}

util::Result<UdpHeader> UdpHeader::parse(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kSize) return util::make_error("udp.truncated", "buffer shorter than 8 bytes");
  UdpHeader h;
  h.src_port = be_get_u16(bytes, 0);
  h.dst_port = be_get_u16(bytes, 2);
  h.length = be_get_u16(bytes, 4);
  if (h.length < kSize) return util::make_error("udp.length", "length below header size");
  h.checksum = be_get_u16(bytes, 6);
  return h;
}

void IcmpHeader::serialize(std::vector<std::uint8_t>& out,
                           std::span<const std::uint8_t> payload) const {
  const std::size_t start = out.size();
  out.push_back(type);
  out.push_back(code);
  be_put_u16(out, 0);  // checksum placeholder
  be_put_u32(out, rest);
  out.insert(out.end(), payload.begin(), payload.end());
  const std::uint16_t sum = internet_checksum(
      std::span<const std::uint8_t>(out.data() + start, kSize + payload.size()));
  out[start + 2] = static_cast<std::uint8_t>(sum >> 8);
  out[start + 3] = static_cast<std::uint8_t>(sum & 0xff);
}

util::Result<IcmpHeader> IcmpHeader::parse(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kSize) {
    return util::make_error("icmp.truncated", "buffer shorter than 8 bytes");
  }
  IcmpHeader h;
  h.type = bytes[0];
  h.code = bytes[1];
  h.checksum = be_get_u16(bytes, 2);
  h.rest = be_get_u32(bytes, 4);
  return h;
}

util::Result<ParsedPacket> parse_packet(std::span<const std::uint8_t> bytes) {
  auto ip = Ipv4Header::parse(bytes);
  if (!ip.ok()) return ip.error();
  ParsedPacket out;
  out.ip = ip.value();
  const std::size_t ip_header_len = std::size_t{out.ip.ihl} * 4;
  const auto rest = bytes.subspan(ip_header_len);
  switch (out.ip.protocol) {
    case IpProto::kTcp: {
      auto tcp = TcpHeader::parse(rest);
      if (!tcp.ok()) return tcp.error();
      out.src_port = tcp.value().src_port;
      out.dst_port = tcp.value().dst_port;
      out.tcp_flags = tcp.value().flags;
      break;
    }
    case IpProto::kUdp: {
      auto udp = UdpHeader::parse(rest);
      if (!udp.ok()) return udp.error();
      out.src_port = udp.value().src_port;
      out.dst_port = udp.value().dst_port;
      break;
    }
    case IpProto::kIcmp: {
      auto icmp = IcmpHeader::parse(rest);
      if (!icmp.ok()) return icmp.error();
      break;
    }
    default:
      return util::make_error("ip.protocol", "unsupported transport protocol");
  }
  return out;
}

std::vector<std::uint8_t> synthesize_packet(Ipv4Addr src, Ipv4Addr dst, IpProto proto,
                                            std::uint16_t src_port, std::uint16_t dst_port,
                                            std::uint8_t tcp_flags,
                                            std::uint16_t ip_total_length) {
  std::vector<std::uint8_t> out;
  out.reserve(ip_total_length);

  std::size_t transport_header = 0;
  std::uint8_t tcp_offset_words = 5;
  switch (proto) {
    case IpProto::kTcp: {
      // Model TCP options via the data offset: a 48-byte SYN (paper's second
      // most common size) is 20 IP + 28 TCP, i.e. data_offset 7.
      const std::size_t budget =
          ip_total_length > Ipv4Header::kMinSize ? ip_total_length - Ipv4Header::kMinSize : 0;
      if (budget >= TcpHeader::kMinSize) {
        const std::size_t option_space = std::min<std::size_t>(budget - TcpHeader::kMinSize, 40);
        tcp_offset_words = static_cast<std::uint8_t>(5 + option_space / 4);
      }
      transport_header = std::size_t{tcp_offset_words} * 4;
      break;
    }
    case IpProto::kUdp:
      transport_header = UdpHeader::kSize;
      break;
    case IpProto::kIcmp:
      transport_header = IcmpHeader::kSize;
      break;
  }

  const std::size_t min_total = Ipv4Header::kMinSize + transport_header;
  const std::size_t total = std::max<std::size_t>(ip_total_length, min_total);
  const std::size_t payload_len = total - min_total;
  const std::vector<std::uint8_t> payload(payload_len, 0);

  Ipv4Header ip;
  ip.total_length = static_cast<std::uint16_t>(total);
  ip.protocol = proto;
  ip.src = src;
  ip.dst = dst;
  ip.serialize(out);

  switch (proto) {
    case IpProto::kTcp: {
      TcpHeader tcp;
      tcp.src_port = src_port;
      tcp.dst_port = dst_port;
      tcp.flags = tcp_flags;
      tcp.data_offset = tcp_offset_words;
      tcp.serialize(out, src, dst, payload);
      break;
    }
    case IpProto::kUdp: {
      UdpHeader udp;
      udp.src_port = src_port;
      udp.dst_port = dst_port;
      udp.serialize(out, src, dst, payload);
      break;
    }
    case IpProto::kIcmp: {
      IcmpHeader icmp;
      icmp.serialize(out, payload);
      break;
    }
  }
  return out;
}

}  // namespace mtscope::net
