// Minimal libpcap-format file writer/reader (LINKTYPE_RAW: packets start at
// the IPv4 header).  Telescope observers persist their captures in this
// format so downstream analyses can parse raw packets, mirroring the paper's
// use of telescope PCAPs for port statistics.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "util/result.hpp"

namespace mtscope::net {

/// One captured packet: microsecond timestamp plus raw bytes.
struct CapturedPacket {
  std::uint64_t timestamp_us = 0;
  std::vector<std::uint8_t> data;
};

/// Streaming pcap writer (classic pcap, magic 0xa1b2c3d4, LINKTYPE_RAW=101).
class PcapWriter {
 public:
  /// Writes the global header immediately.
  explicit PcapWriter(std::ostream& out, std::uint32_t snaplen = 65535);

  void write(std::uint64_t timestamp_us, std::span<const std::uint8_t> packet);

  [[nodiscard]] std::uint64_t packets_written() const noexcept { return packets_; }

 private:
  std::ostream& out_;
  std::uint32_t snaplen_;
  std::uint64_t packets_ = 0;
};

/// Whole-file pcap reader.  Accepts only the little-endian microsecond
/// variant this library writes (sufficient for round-tripping; foreign
/// captures with other magics produce a clean error, not garbage).
[[nodiscard]] util::Result<std::vector<CapturedPacket>> read_pcap(std::istream& in);

}  // namespace mtscope::net
