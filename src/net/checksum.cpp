#include "net/checksum.hpp"

namespace mtscope::net {

void ChecksumAccumulator::update(std::span<const std::uint8_t> bytes) noexcept {
  std::size_t i = 0;
  if (odd_ && !bytes.empty()) {
    // Complete the dangling high byte from the previous chunk.
    sum_ += bytes[0];
    odd_ = false;
    i = 1;
  }
  for (; i + 1 < bytes.size(); i += 2) {
    sum_ += (static_cast<std::uint32_t>(bytes[i]) << 8) | bytes[i + 1];
  }
  if (i < bytes.size()) {
    sum_ += static_cast<std::uint32_t>(bytes[i]) << 8;
    odd_ = true;
  }
}

void ChecksumAccumulator::update_word(std::uint16_t word) noexcept {
  const std::uint8_t bytes[2] = {static_cast<std::uint8_t>(word >> 8),
                                 static_cast<std::uint8_t>(word & 0xff)};
  update(bytes);
}

std::uint16_t ChecksumAccumulator::finish() const noexcept {
  std::uint64_t folded = sum_;
  while (folded >> 16) folded = (folded & 0xffff) + (folded >> 16);
  return static_cast<std::uint16_t>(~folded & 0xffff);
}

std::uint16_t internet_checksum(std::span<const std::uint8_t> bytes) noexcept {
  ChecksumAccumulator acc;
  acc.update(bytes);
  return acc.finish();
}

}  // namespace mtscope::net
