// IPv4 address and /24-block primitives.
//
// Ipv4Addr is a strong type over the host-order 32-bit address value;
// Block24 identifies one of the 2^24 possible /24 blocks.  Both are value
// types with total ordering so they can key maps and sort ranges.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace mtscope::net {

/// An IPv4 address held in host byte order.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() noexcept = default;
  constexpr explicit Ipv4Addr(std::uint32_t host_order_value) noexcept
      : value_(host_order_value) {}

  /// Build from dotted octets, e.g. Ipv4Addr::from_octets(192, 0, 2, 1).
  [[nodiscard]] static constexpr Ipv4Addr from_octets(std::uint8_t a, std::uint8_t b,
                                                      std::uint8_t c, std::uint8_t d) noexcept {
    return Ipv4Addr((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                    (std::uint32_t{c} << 8) | std::uint32_t{d});
  }

  /// Parse dotted-quad text.  Rejects leading zeros ambiguity is allowed
  /// ("010" parses as 10), but octets > 255, missing octets and trailing
  /// garbage are rejected.
  [[nodiscard]] static std::optional<Ipv4Addr> parse(std::string_view text) noexcept;

  [[nodiscard]] constexpr std::uint32_t value() const noexcept { return value_; }

  [[nodiscard]] constexpr std::uint8_t octet(int index) const noexcept {
    return static_cast<std::uint8_t>(value_ >> (8 * (3 - index)));
  }

  [[nodiscard]] std::string to_string() const;

  constexpr auto operator<=>(const Ipv4Addr&) const noexcept = default;

 private:
  std::uint32_t value_ = 0;
};

/// Identifier of a /24 block: the top 24 bits of the address space.
/// Value range is [0, 2^24).
class Block24 {
 public:
  static constexpr std::uint32_t kUniverseSize = 1u << 24;

  constexpr Block24() noexcept = default;
  constexpr explicit Block24(std::uint32_t index) noexcept : index_(index & 0x00ffffffu) {}

  [[nodiscard]] static constexpr Block24 containing(Ipv4Addr addr) noexcept {
    return Block24(addr.value() >> 8);
  }

  [[nodiscard]] constexpr std::uint32_t index() const noexcept { return index_; }

  /// First address of the block (the .0 address).
  [[nodiscard]] constexpr Ipv4Addr first_address() const noexcept {
    return Ipv4Addr(index_ << 8);
  }

  /// Last address of the block (the .255 address).
  [[nodiscard]] constexpr Ipv4Addr last_address() const noexcept {
    return Ipv4Addr((index_ << 8) | 0xffu);
  }

  [[nodiscard]] constexpr bool contains(Ipv4Addr addr) const noexcept {
    return (addr.value() >> 8) == index_;
  }

  /// Renders as "a.b.c.0/24".
  [[nodiscard]] std::string to_string() const;

  constexpr auto operator<=>(const Block24&) const noexcept = default;

 private:
  std::uint32_t index_ = 0;
};

/// Autonomous-system number (strong type; 32-bit ASNs supported).
class AsNumber {
 public:
  constexpr AsNumber() noexcept = default;
  constexpr explicit AsNumber(std::uint32_t value) noexcept : value_(value) {}

  [[nodiscard]] constexpr std::uint32_t value() const noexcept { return value_; }
  [[nodiscard]] std::string to_string() const { return "AS" + std::to_string(value_); }

  constexpr auto operator<=>(const AsNumber&) const noexcept = default;

 private:
  std::uint32_t value_ = 0;
};

}  // namespace mtscope::net

template <>
struct std::hash<mtscope::net::Ipv4Addr> {
  std::size_t operator()(const mtscope::net::Ipv4Addr& addr) const noexcept {
    return std::hash<std::uint32_t>{}(addr.value());
  }
};

template <>
struct std::hash<mtscope::net::Block24> {
  std::size_t operator()(const mtscope::net::Block24& block) const noexcept {
    return std::hash<std::uint32_t>{}(block.index());
  }
};

template <>
struct std::hash<mtscope::net::AsNumber> {
  std::size_t operator()(const mtscope::net::AsNumber& asn) const noexcept {
    return std::hash<std::uint32_t>{}(asn.value());
  }
};
