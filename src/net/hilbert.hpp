// Hilbert curve index <-> (x, y) mapping.
//
// The paper visualises /8 address blocks as 256x256 Hilbert maps where each
// pixel is one /24 (Figures 3, 5, 6).  A Hilbert order-8 curve maps the
// 2^16 /24s of a /8 to pixels so that numerically adjacent blocks stay
// spatially adjacent.
#pragma once

#include <cstdint>
#include <utility>

namespace mtscope::net {

/// Point on the Hilbert grid.
struct HilbertPoint {
  std::uint32_t x = 0;
  std::uint32_t y = 0;
  friend bool operator==(const HilbertPoint&, const HilbertPoint&) = default;
};

/// Convert distance-along-curve `d` to (x, y) for a curve of the given
/// `order` (grid side = 2^order).  d must be < 4^order.
[[nodiscard]] HilbertPoint hilbert_d2xy(int order, std::uint64_t d) noexcept;

/// Convert (x, y) back to distance.  Coordinates must be < 2^order.
[[nodiscard]] std::uint64_t hilbert_xy2d(int order, HilbertPoint p) noexcept;

}  // namespace mtscope::net
