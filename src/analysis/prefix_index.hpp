// Prefix index (paper §6.4): for each large announced prefix, the share of
// its /24s inferred as meta-telescope prefixes; summarised as ECDFs per
// covering-prefix size (Figure 7), per network type (Figure 16) and per
// continent (Figure 17).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "geo/geodb.hpp"
#include "geo/nettype.hpp"
#include "net/prefix.hpp"
#include "routing/as_maps.hpp"
#include "routing/rib.hpp"
#include "telemetry/ecdf.hpp"
#include "trie/block24_set.hpp"

namespace mtscope::analysis {

struct PrefixIndexEntry {
  net::Prefix prefix;
  net::AsNumber origin;
  std::uint64_t total_24s = 0;
  std::uint64_t dark_24s = 0;

  [[nodiscard]] double index() const noexcept {
    return total_24s == 0 ? 0.0
                          : static_cast<double>(dark_24s) / static_cast<double>(total_24s);
  }
};

/// Compute the prefix index for every announcement whose length lies in
/// [min_len, max_len] (paper: /8 .. /16).
[[nodiscard]] std::vector<PrefixIndexEntry> compute_prefix_index(
    const routing::Rib& rib, const trie::Block24Set& dark, int min_len = 8, int max_len = 16);

/// Figure 7: one ECDF of index values per prefix length.
[[nodiscard]] std::map<int, telemetry::Ecdf> index_ecdf_by_length(
    const std::vector<PrefixIndexEntry>& entries);

/// Figure 16: one ECDF per network type of the origin AS.
[[nodiscard]] std::map<geo::NetType, telemetry::Ecdf> index_ecdf_by_type(
    const std::vector<PrefixIndexEntry>& entries, const geo::NetTypeDb& nettypes);

/// Figure 17: one ECDF per continent of the prefix's geolocation.
[[nodiscard]] std::map<geo::Continent, telemetry::Ecdf> index_ecdf_by_continent(
    const std::vector<PrefixIndexEntry>& entries, const geo::GeoDb& geodb);

}  // namespace mtscope::analysis
