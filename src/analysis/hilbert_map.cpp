#include "analysis/hilbert_map.hpp"

#include <ostream>
#include <stdexcept>
#include <vector>

#include "net/hilbert.hpp"

namespace mtscope::analysis {

namespace {
constexpr int kOrder = 8;       // 2^8 x 2^8 grid = 65,536 /24s of a /8
constexpr std::uint32_t kSide = 256;
}  // namespace

HilbertMap::HilbertMap(std::uint8_t slash8,
                       const std::function<HilbertPixel(net::Block24)>& classify)
    : slash8_(slash8), pixels_(kSide * kSide, HilbertPixel::kNoData) {
  const std::uint32_t first = std::uint32_t{slash8} << 16;
  for (std::uint32_t i = 0; i < kSide * kSide; ++i) {
    const HilbertPixel p = classify(net::Block24(first + i));
    const net::HilbertPoint point = net::hilbert_d2xy(kOrder, i);
    pixels_[point.y * kSide + point.x] = p;
    ++counts_[static_cast<std::size_t>(p)];
  }
}

HilbertPixel HilbertMap::at(std::uint32_t x, std::uint32_t y) const {
  if (x >= kSide || y >= kSide) throw std::out_of_range("HilbertMap::at: out of grid");
  return pixels_[y * kSide + x];
}

std::string HilbertMap::render_ascii(std::uint32_t width) const {
  if (width == 0 || width > kSide) throw std::invalid_argument("HilbertMap: bad ascii width");
  const std::uint32_t cell = kSide / width;
  const std::uint32_t rows = kSide / cell;
  std::string out;
  out.reserve((width + 1) * rows);

  for (std::uint32_t cy = 0; cy < rows; ++cy) {
    for (std::uint32_t cx = 0; cx < width; ++cx) {
      std::uint32_t dark = 0;
      std::uint32_t marked = 0;
      std::uint32_t total = 0;
      for (std::uint32_t y = cy * cell; y < (cy + 1) * cell; ++y) {
        for (std::uint32_t x = cx * cell; x < (cx + 1) * cell; ++x) {
          const HilbertPixel p = pixels_[y * kSide + x];
          ++total;
          if (p == HilbertPixel::kDark || p == HilbertPixel::kDarkMarked) ++dark;
          if (p == HilbertPixel::kMarked || p == HilbertPixel::kDarkMarked) ++marked;
        }
      }
      const double density = static_cast<double>(dark) / static_cast<double>(total);
      char glyph = ' ';
      if (density > 0.75) glyph = '#';
      else if (density > 0.5) glyph = '*';
      else if (density > 0.25) glyph = '=';
      else if (density > 0.05) glyph = '.';
      if (glyph == ' ' && marked > 0) glyph = '+';  // telescope boundary, not inferred
      out.push_back(glyph);
    }
    out.push_back('\n');
  }
  return out;
}

void HilbertMap::write_pgm(std::ostream& out) const {
  out << "P5\n" << kSide << ' ' << kSide << "\n255\n";
  std::vector<unsigned char> row(kSide);
  for (std::uint32_t y = 0; y < kSide; ++y) {
    for (std::uint32_t x = 0; x < kSide; ++x) {
      switch (pixels_[y * kSide + x]) {
        case HilbertPixel::kDark: row[x] = 0; break;
        case HilbertPixel::kDarkMarked: row[x] = 32; break;
        case HilbertPixel::kMarked: row[x] = 160; break;
        case HilbertPixel::kNoData: row[x] = 255; break;
      }
    }
    out.write(reinterpret_cast<const char*>(row.data()), row.size());
  }
}

}  // namespace mtscope::analysis
