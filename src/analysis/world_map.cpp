#include "analysis/world_map.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "util/strings.hpp"
#include "util/table.hpp"

namespace mtscope::analysis {

GeoSummary summarize_geography(const trie::Block24Set& blocks, const geo::GeoDb& geodb,
                               const routing::PrefixToAs& pfx2as) {
  GeoSummary out;
  std::unordered_map<std::string, std::uint64_t> country_counts;
  std::unordered_set<std::uint32_t> ases;

  blocks.for_each([&](net::Block24 block) {
    ++out.total_blocks;
    const auto country = geodb.country_of(block);
    const std::string code = country.value_or("??");
    ++country_counts[code];
    ++out.by_continent[country ? geo::continent_of_country(*country)
                               : geo::Continent::kInternational];
    if (const auto asn = pfx2as.resolve(block)) ases.insert(asn->value());
  });

  out.by_country.reserve(country_counts.size());
  for (auto& [country, count] : country_counts) {
    out.by_country.push_back(CountryCount{country, count});
  }
  std::sort(out.by_country.begin(), out.by_country.end(),
            [](const CountryCount& a, const CountryCount& b) {
              if (a.blocks != b.blocks) return a.blocks > b.blocks;
              return a.country < b.country;
            });
  out.distinct_countries = out.by_country.size();
  out.distinct_ases = ases.size();
  return out;
}

std::string render_world_table(const GeoSummary& summary, std::size_t top_n) {
  util::TextTable table({"Country", "#/24 blocks", "log-scale"});
  table.set_alignment(2, util::Align::kLeft);
  const std::size_t limit = std::min(top_n, summary.by_country.size());
  for (std::size_t i = 0; i < limit; ++i) {
    const CountryCount& cc = summary.by_country[i];
    const auto bar_len = static_cast<std::size_t>(
        std::max(1.0, 4.0 * std::log10(static_cast<double>(cc.blocks) + 1.0)));
    table.add_row({cc.country, util::with_commas(cc.blocks), std::string(bar_len, '#')});
  }
  std::string out = table.render();
  out += "continents: ";
  bool first = true;
  for (const auto& [continent, count] : summary.by_continent) {
    if (!first) out += ", ";
    first = false;
    out += std::string(geo::continent_code(continent)) + "=" + util::with_commas(count);
  }
  out += "\n";
  return out;
}

}  // namespace mtscope::analysis
