// Hilbert-map rendering of a /8 (Figures 3, 5, 6): each of the 65,536 /24s
// maps to a pixel of a 256x256 grid along an order-8 Hilbert curve, so
// numerically adjacent blocks stay spatially adjacent.
//
// Two outputs: a downscaled ASCII rendering for terminals/bench logs, and a
// binary PGM (portable graymap) for real image tooling.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

#include "net/ipv4.hpp"

namespace mtscope::analysis {

/// Pixel classification for one /24.
enum class HilbertPixel : std::uint8_t {
  kNoData,    // nothing observed / not inferred
  kDark,      // inferred meta-telescope prefix
  kMarked,    // highlighted region boundary (e.g. a known telescope)
  kDarkMarked // inferred AND inside the highlighted region
};

class HilbertMap {
 public:
  /// Build the map for the /8 with the given first octet.  `classify` is
  /// called once per /24 of that /8.
  HilbertMap(std::uint8_t slash8, const std::function<HilbertPixel(net::Block24)>& classify);

  [[nodiscard]] std::uint8_t slash8() const noexcept { return slash8_; }
  [[nodiscard]] HilbertPixel at(std::uint32_t x, std::uint32_t y) const;

  /// Count of /24s in each class.
  [[nodiscard]] std::uint64_t count(HilbertPixel p) const noexcept {
    return counts_[static_cast<std::size_t>(p)];
  }

  /// ASCII art: the 256x256 grid aggregated into `width`-character rows
  /// (each character covers a square of pixels; the glyph reflects the
  /// dark-pixel density, '#'-heavy = dense dark space, '+' = marked).
  [[nodiscard]] std::string render_ascii(std::uint32_t width = 64) const;

  /// Binary PGM, 256x256, 8-bit: dark=0, dark+marked=32, marked=160,
  /// no-data=255.
  void write_pgm(std::ostream& out) const;

 private:
  std::uint8_t slash8_;
  std::vector<HilbertPixel> pixels_;  // 256*256, row-major
  std::uint64_t counts_[4] = {0, 0, 0, 0};
};

}  // namespace mtscope::analysis
