#include "analysis/ports.hpp"

#include <algorithm>
#include <cmath>

#include "util/table.hpp"

namespace mtscope::analysis {

void PortCounter::add_packets(std::span<const flow::PacketMeta> packets) {
  for (const flow::PacketMeta& p : packets) {
    if (p.proto == net::IpProto::kTcp) add(p.dst_port);
  }
}

std::vector<std::pair<std::uint16_t, std::uint64_t>> PortCounter::top(std::size_t k) const {
  std::vector<std::pair<std::uint16_t, std::uint64_t>> out(counts_.begin(), counts_.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

std::uint64_t PortCounter::total() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& [port, count] : counts_) sum += count;
  return sum;
}

std::uint64_t PortCounter::count_of(std::uint16_t port) const {
  const auto it = counts_.find(port);
  return it == counts_.end() ? 0 : it->second;
}

PortActivity::PortActivity(const geo::GeoDb& geodb, const geo::NetTypeDb& nettypes,
                           const routing::PrefixToAs& pfx2as)
    : geodb_(geodb), nettypes_(nettypes), pfx2as_(pfx2as) {}

void PortActivity::add_flows(std::span<const flow::FlowRecord> flows,
                             const trie::Block24Set& dark) {
  for (const flow::FlowRecord& r : flows) {
    if (r.key.proto != net::IpProto::kTcp) continue;
    const net::Block24 block = net::Block24::containing(r.key.dst);
    if (!dark.contains(block)) continue;

    const auto region = static_cast<std::size_t>(geodb_.continent_of(block));
    by_region_[r.key.dst_port][region] += r.packets;
    region_totals_[region] += r.packets;
    grand_total_ += r.packets;

    const auto asn = pfx2as_.resolve(block);
    if (asn) {
      if (const auto type = nettypes_.resolve(*asn)) {
        const auto t = static_cast<std::size_t>(*type);
        by_type_[r.key.dst_port][t] += r.packets;
        type_totals_[t] += r.packets;
      }
    }
  }
}

namespace {

template <std::size_t N>
std::vector<std::uint16_t> joint_top(
    const std::unordered_map<std::uint16_t, std::array<std::uint64_t, N>>& table,
    std::size_t k) {
  // Per-group top-k, then union, ordered by total popularity descending.
  std::vector<std::uint16_t> joined;
  for (std::size_t group = 0; group < N; ++group) {
    std::vector<std::pair<std::uint16_t, std::uint64_t>> ranked;
    for (const auto& [port, counts] : table) {
      if (counts[group] > 0) ranked.emplace_back(port, counts[group]);
    }
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    for (std::size_t i = 0; i < std::min(k, ranked.size()); ++i) {
      if (std::find(joined.begin(), joined.end(), ranked[i].first) == joined.end()) {
        joined.push_back(ranked[i].first);
      }
    }
  }
  std::sort(joined.begin(), joined.end(), [&](std::uint16_t a, std::uint16_t b) {
    std::uint64_t ta = 0;
    std::uint64_t tb = 0;
    if (const auto it = table.find(a); it != table.end()) {
      for (std::uint64_t c : it->second) ta += c;
    }
    if (const auto it = table.find(b); it != table.end()) {
      for (std::uint64_t c : it->second) tb += c;
    }
    if (ta != tb) return ta > tb;
    return a < b;
  });
  return joined;
}

}  // namespace

std::vector<std::uint16_t> PortActivity::joint_top_ports_by_region(std::size_t k) const {
  return joint_top(by_region_, k);
}

std::vector<std::uint16_t> PortActivity::joint_top_ports_by_type(std::size_t k) const {
  return joint_top(by_type_, k);
}

std::uint64_t PortActivity::count(geo::Continent region, std::uint16_t port) const {
  const auto it = by_region_.find(port);
  return it == by_region_.end() ? 0 : it->second[static_cast<std::size_t>(region)];
}

std::uint64_t PortActivity::count(geo::NetType type, std::uint16_t port) const {
  const auto it = by_type_.find(port);
  return it == by_type_.end() ? 0 : it->second[static_cast<std::size_t>(type)];
}

double PortActivity::share(geo::Continent region, std::uint16_t port) const {
  const std::uint64_t denom = total(region);
  return denom == 0 ? 0.0
                    : static_cast<double>(count(region, port)) / static_cast<double>(denom);
}

double PortActivity::share(geo::NetType type, std::uint16_t port) const {
  const std::uint64_t denom = total(type);
  return denom == 0 ? 0.0 : static_cast<double>(count(type, port)) / static_cast<double>(denom);
}

double PortActivity::global_share(geo::Continent region, std::uint16_t port) const {
  return grand_total_ == 0
             ? 0.0
             : static_cast<double>(count(region, port)) / static_cast<double>(grand_total_);
}

std::uint64_t PortActivity::total(geo::Continent region) const {
  return region_totals_[static_cast<std::size_t>(region)];
}

std::uint64_t PortActivity::total(geo::NetType type) const {
  return type_totals_[static_cast<std::size_t>(type)];
}

namespace {

std::string bean(double share) {
  // 0..20 character bar on a sqrt scale so small-but-present activity shows.
  const auto width = static_cast<std::size_t>(std::round(20.0 * std::sqrt(share)));
  return std::string(width, '#');
}

}  // namespace

std::string PortActivity::render_region_matrix(std::span<const std::uint16_t> ports) const {
  std::vector<std::string> headers = {"Port"};
  for (geo::Continent c : geo::kAllContinents) headers.emplace_back(geo::continent_code(c));
  util::TextTable table(std::move(headers));
  for (std::size_t col = 1; col <= geo::kAllContinents.size(); ++col) {
    table.set_alignment(col, util::Align::kLeft);
  }
  for (const std::uint16_t port : ports) {
    std::vector<std::string> row = {std::to_string(port)};
    for (geo::Continent c : geo::kAllContinents) row.push_back(bean(share(c, port)));
    table.add_row(std::move(row));
  }
  return table.render();
}

std::string PortActivity::render_type_matrix(std::span<const std::uint16_t> ports) const {
  std::vector<std::string> headers = {"Port"};
  for (geo::NetType t : geo::kAllNetTypes) headers.emplace_back(geo::net_type_name(t));
  util::TextTable table(std::move(headers));
  for (std::size_t col = 1; col <= geo::kAllNetTypes.size(); ++col) {
    table.set_alignment(col, util::Align::kLeft);
  }
  for (const std::uint16_t port : ports) {
    std::vector<std::string> row = {std::to_string(port)};
    for (geo::NetType t : geo::kAllNetTypes) row.push_back(bean(share(t, port)));
    table.add_row(std::move(row));
  }
  return table.render();
}

}  // namespace mtscope::analysis
