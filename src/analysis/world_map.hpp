// Geographic aggregation of an inferred meta-telescope set (Figure 4 and
// Appendix A's world maps, rendered as tables; Table 6's per-IXP country and
// AS counts).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "geo/geodb.hpp"
#include "routing/as_maps.hpp"
#include "trie/block24_set.hpp"

namespace mtscope::analysis {

struct CountryCount {
  std::string country;  // ISO alpha-2; "??" when unmapped
  std::uint64_t blocks = 0;
};

struct GeoSummary {
  std::vector<CountryCount> by_country;          // descending by count
  std::map<geo::Continent, std::uint64_t> by_continent;
  std::uint64_t distinct_countries = 0;
  std::uint64_t distinct_ases = 0;
  std::uint64_t total_blocks = 0;
};

/// Aggregate an inferred block set by country / continent / origin AS.
[[nodiscard]] GeoSummary summarize_geography(const trie::Block24Set& blocks,
                                             const geo::GeoDb& geodb,
                                             const routing::PrefixToAs& pfx2as);

/// Text rendering of the "world map": top countries with log-scale bars.
[[nodiscard]] std::string render_world_table(const GeoSummary& summary, std::size_t top_n = 20);

}  // namespace mtscope::analysis
