// Port-popularity analyses.
//
// Two consumers:
//  * operational telescopes (Table 5): rank destination TCP ports from raw
//    captured packets;
//  * the meta-telescope (§8, Figures 11/12/18-20): rank ports from IXP
//    flows destined to inferred dark blocks, split by world region and by
//    network type — the "bean plot" data.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "flow/packet.hpp"
#include "flow/record.hpp"
#include "geo/geodb.hpp"
#include "geo/nettype.hpp"
#include "routing/as_maps.hpp"
#include "trie/block24_set.hpp"

namespace mtscope::analysis {

/// Simple exact TCP destination-port counter.
class PortCounter {
 public:
  void add(std::uint16_t port, std::uint64_t packets = 1) { counts_[port] += packets; }

  /// Count TCP packets from a raw capture.
  void add_packets(std::span<const flow::PacketMeta> packets);

  [[nodiscard]] std::vector<std::pair<std::uint16_t, std::uint64_t>> top(std::size_t k) const;
  [[nodiscard]] std::uint64_t total() const noexcept;
  [[nodiscard]] std::uint64_t count_of(std::uint16_t port) const;

 private:
  std::unordered_map<std::uint16_t, std::uint64_t> counts_;
};

/// Port activity toward inferred meta-telescope prefixes, bucketed by the
/// destination's world region and network type.
class PortActivity {
 public:
  PortActivity(const geo::GeoDb& geodb, const geo::NetTypeDb& nettypes,
               const routing::PrefixToAs& pfx2as);

  /// Ingest flows; only TCP flows destined to `dark` blocks count.
  void add_flows(std::span<const flow::FlowRecord> flows, const trie::Block24Set& dark);

  /// Union of each region's top-k ports, ordered by global popularity
  /// (paper: "we first compile the list of top-targeted ports for each
  /// region, then join these lists").
  [[nodiscard]] std::vector<std::uint16_t> joint_top_ports_by_region(std::size_t k) const;
  [[nodiscard]] std::vector<std::uint16_t> joint_top_ports_by_type(std::size_t k) const;

  /// Packets to `port` within one region / type.
  [[nodiscard]] std::uint64_t count(geo::Continent region, std::uint16_t port) const;
  [[nodiscard]] std::uint64_t count(geo::NetType type, std::uint16_t port) const;

  /// Share of the region's (type's) total activity on this port.
  [[nodiscard]] double share(geo::Continent region, std::uint16_t port) const;
  [[nodiscard]] double share(geo::NetType type, std::uint16_t port) const;

  /// Share relative to ALL meta-telescope traffic (Figure 18's variant).
  [[nodiscard]] double global_share(geo::Continent region, std::uint16_t port) const;

  [[nodiscard]] std::uint64_t total(geo::Continent region) const;
  [[nodiscard]] std::uint64_t total(geo::NetType type) const;
  [[nodiscard]] std::uint64_t grand_total() const noexcept { return grand_total_; }

  /// ASCII "bean plot": a matrix of ports x groups where cell width encodes
  /// the within-group share.
  [[nodiscard]] std::string render_region_matrix(std::span<const std::uint16_t> ports) const;
  [[nodiscard]] std::string render_type_matrix(std::span<const std::uint16_t> ports) const;

 private:
  const geo::GeoDb& geodb_;
  const geo::NetTypeDb& nettypes_;
  const routing::PrefixToAs& pfx2as_;

  std::unordered_map<std::uint16_t, std::array<std::uint64_t, 7>> by_region_;
  std::unordered_map<std::uint16_t, std::array<std::uint64_t, 4>> by_type_;
  std::array<std::uint64_t, 7> region_totals_{};
  std::array<std::uint64_t, 4> type_totals_{};
  std::uint64_t grand_total_ = 0;
};

}  // namespace mtscope::analysis
