#include "analysis/prefix_index.hpp"

namespace mtscope::analysis {

std::vector<PrefixIndexEntry> compute_prefix_index(const routing::Rib& rib,
                                                   const trie::Block24Set& dark, int min_len,
                                                   int max_len) {
  std::vector<PrefixIndexEntry> out;
  for (const auto& [prefix, origin] : rib.announcements_up_to(max_len)) {
    if (prefix.length() < min_len) continue;
    PrefixIndexEntry entry;
    entry.prefix = prefix;
    entry.origin = origin;
    entry.total_24s = prefix.block24_count();
    const std::uint32_t first = prefix.base().value() >> 8;
    entry.dark_24s =
        dark.count_in_range(first, first + static_cast<std::uint32_t>(entry.total_24s) - 1);
    out.push_back(entry);
  }
  return out;
}

std::map<int, telemetry::Ecdf> index_ecdf_by_length(
    const std::vector<PrefixIndexEntry>& entries) {
  std::map<int, telemetry::Ecdf> out;
  for (const PrefixIndexEntry& e : entries) out[e.prefix.length()].add(e.index());
  return out;
}

std::map<geo::NetType, telemetry::Ecdf> index_ecdf_by_type(
    const std::vector<PrefixIndexEntry>& entries, const geo::NetTypeDb& nettypes) {
  std::map<geo::NetType, telemetry::Ecdf> out;
  for (const PrefixIndexEntry& e : entries) {
    const auto type = nettypes.resolve(e.origin);
    if (type) out[*type].add(e.index());
  }
  return out;
}

std::map<geo::Continent, telemetry::Ecdf> index_ecdf_by_continent(
    const std::vector<PrefixIndexEntry>& entries, const geo::GeoDb& geodb) {
  std::map<geo::Continent, telemetry::Ecdf> out;
  for (const PrefixIndexEntry& e : entries) {
    out[geodb.continent_of(e.prefix.base())].add(e.index());
  }
  return out;
}

}  // namespace mtscope::analysis
