#include "analytics/scanner.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "telemetry/topk.hpp"

namespace mtscope::analytics {

std::vector<ServicePortStat> top_services(std::span<const LabeledPortCount> cells,
                                          std::size_t per_group) {
  // One Space-Saving monitor per (continent, net_type) group, created
  // lazily; std::map keeps group iteration deterministic.
  std::map<std::pair<std::uint8_t, std::uint8_t>, telemetry::SpaceSaving<std::uint16_t>>
      groups;
  constexpr std::size_t kMonitorCapacity = 256;
  for (const LabeledPortCount& cell : cells) {
    const auto key = std::make_pair(cell.continent, cell.net_type);
    auto it = groups.find(key);
    if (it == groups.end()) {
      it = groups.emplace(key, telemetry::SpaceSaving<std::uint16_t>(kMonitorCapacity)).first;
    }
    it->second.add(cell.port, cell.packets);
  }

  std::vector<ServicePortStat> out;
  for (const auto& [key, sketch] : groups) {
    const auto top = sketch.top(per_group);
    for (std::size_t rank = 0; rank < top.size(); ++rank) {
      if (top[rank].count == 0) continue;
      out.push_back({key.first, key.second, top[rank].key,
                     static_cast<std::uint32_t>(rank), top[rank].count});
    }
  }
  return out;
}

std::vector<ScannerProfile> top_scanners(const IbrMatrix& matrix,
                                         const std::function<bool(std::uint32_t)>& in_map,
                                         std::size_t limit) {
  // src_touches is sorted by (src, dst), so each source's run is
  // contiguous: fold coverage and volume in one pass.
  std::vector<ScannerProfile> profiles;
  for (const IbrMatrix::SrcTouch& touch : matrix.src_touches()) {
    if (!in_map(touch.dst_block)) continue;
    if (profiles.empty() || profiles.back().src_block != touch.src_block) {
      profiles.push_back({touch.src_block, 0, 0, 0});
    }
    profiles.back().blocks_touched += 1;
    profiles.back().est_packets += touch.packets;
  }

  // Port breadth: src_ports is sorted by (src, port); count each source's
  // distinct ports with a parallel sorted walk.
  const auto ports = matrix.src_ports();
  std::size_t p = 0;
  for (ScannerProfile& profile : profiles) {
    while (p < ports.size() && ports[p].src_block < profile.src_block) ++p;
    while (p < ports.size() && ports[p].src_block == profile.src_block) {
      profile.ports_touched += 1;
      ++p;
    }
  }

  std::sort(profiles.begin(), profiles.end(),
            [](const ScannerProfile& a, const ScannerProfile& b) {
              if (a.est_packets != b.est_packets) return a.est_packets > b.est_packets;
              return a.src_block < b.src_block;
            });
  if (profiles.size() > limit) profiles.resize(limit);
  return profiles;
}

}  // namespace mtscope::analytics
