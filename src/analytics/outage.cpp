#include "analytics/outage.hpp"

#include <algorithm>
#include <cmath>

namespace mtscope::analytics {

namespace {

/// Median of a scratch copy (the caller's order is preserved).
double median_of(std::vector<double> values) {
  const std::size_t n = values.size();
  const std::size_t mid = n / 2;
  std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid),
                   values.end());
  const double upper = values[mid];
  if (n % 2 == 1) return upper;
  std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid) - 1,
                   values.begin() + static_cast<std::ptrdiff_t>(mid));
  return (values[mid - 1] + upper) / 2.0;
}

}  // namespace

std::vector<OutageEvent> detect_outages(std::span<const PrefixDaySeries> series,
                                        std::uint32_t first_day, const OutageConfig& config) {
  std::vector<OutageEvent> events;
  std::vector<double> obs;
  std::vector<double> deviations;

  for (const PrefixDaySeries& s : series) {
    const std::size_t days = s.packets.size();
    if (static_cast<int>(days) < config.min_days) continue;

    obs.assign(s.packets.begin(), s.packets.end());
    const double baseline = median_of(obs);
    if (baseline < static_cast<double>(config.min_baseline)) continue;

    deviations.clear();
    deviations.reserve(days);
    for (const double v : obs) deviations.push_back(std::abs(v - baseline));
    const double mad = median_of(deviations);

    // Both gates: a deep relative drop that is also far outside the
    // series' own robust spread.
    const double floor = std::min(config.ratio * baseline, baseline - config.mad_k * mad);
    OutageEvent open;
    bool in_event = false;
    for (std::size_t d = 0; d < days; ++d) {
      const double v = obs[d];
      const bool flagged = v < floor;
      if (flagged && !in_event) {
        in_event = true;
        open = OutageEvent{};
        open.prefix_id = s.prefix_id;
        open.start_day = first_day + static_cast<std::uint32_t>(d);
        open.end_day = open.start_day;
        open.baseline = static_cast<std::uint64_t>(baseline);
        open.observed = s.packets[d];
      } else if (flagged) {
        open.end_day = first_day + static_cast<std::uint32_t>(d);
        open.observed = std::min(open.observed, s.packets[d]);
      }
      if ((!flagged || d + 1 == days) && in_event) {
        in_event = false;
        const double worst = static_cast<double>(open.observed);
        const double severity = 100.0 - 100.0 * worst / baseline;
        open.severity_pct =
            static_cast<std::uint32_t>(std::clamp(severity, 0.0, 100.0) + 0.5);
        events.push_back(open);
      }
    }
  }
  return events;
}

}  // namespace mtscope::analytics
