#include "analytics/ibr_matrix.hpp"

#include <algorithm>

namespace mtscope::analytics {

namespace {

constexpr std::size_t kInitialCapacity = 1024;  // power of two

/// splitmix64 finalizer: full-avalanche mix so packed keys (which differ
/// only in low bits for adjacent ports/days) spread across the table.
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

std::size_t CounterTable::slot_for(std::uint64_t key) const noexcept {
  const std::size_t mask = keys_.size() - 1;
  std::size_t slot = static_cast<std::size_t>(mix(key)) & mask;
  while (used_[slot] != 0 && keys_[slot] != key) slot = (slot + 1) & mask;
  return slot;
}

void CounterTable::grow(std::size_t min_capacity) {
  std::size_t capacity = keys_.empty() ? kInitialCapacity : keys_.size() * 2;
  while (capacity < min_capacity) capacity *= 2;

  std::vector<std::uint64_t> old_keys = std::move(keys_);
  std::vector<std::uint64_t> old_values = std::move(values_);
  std::vector<std::uint8_t> old_used = std::move(used_);
  keys_.assign(capacity, 0);
  values_.assign(capacity, 0);
  used_.assign(capacity, 0);
  for (std::size_t i = 0; i < old_keys.size(); ++i) {
    if (old_used[i] == 0) continue;
    const std::size_t slot = slot_for(old_keys[i]);
    keys_[slot] = old_keys[i];
    values_[slot] = old_values[i];
    used_[slot] = 1;
  }
}

void CounterTable::add(std::uint64_t key, std::uint64_t delta) {
  // Grow at ~0.7 load so probe chains stay short.
  if (keys_.empty() || size_ * 10 >= keys_.size() * 7) grow(keys_.size() + 1);
  const std::size_t slot = slot_for(key);
  if (used_[slot] == 0) {
    keys_[slot] = key;
    used_[slot] = 1;
    ++size_;
  }
  values_[slot] += delta;
}

std::uint64_t CounterTable::find(std::uint64_t key) const noexcept {
  if (keys_.empty()) return 0;
  const std::size_t slot = slot_for(key);
  return used_[slot] != 0 ? values_[slot] : 0;
}

void CounterTable::merge(const CounterTable& other) {
  for (std::size_t i = 0; i < other.keys_.size(); ++i) {
    if (other.used_[i] != 0) add(other.keys_[i], other.values_[i]);
  }
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> CounterTable::sorted() const {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    if (used_[i] != 0) out.emplace_back(keys_[i], values_[i]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void IbrMatrix::add_flow(std::uint32_t src_block, std::uint32_t dst_block,
                         std::uint16_t dst_port, int day, std::uint64_t est_packets) {
  if (!enabled_) return;
  first_day_ = std::min(first_day_, day);
  last_day_ = std::max(last_day_, day);
  const std::uint64_t day16 = static_cast<std::uint64_t>(day) & 0xffffu;
  rx_.add((std::uint64_t{dst_block} << 32) | (std::uint64_t{dst_port} << 16) | day16,
          est_packets);
  src_ports_.add((std::uint64_t{src_block} << 16) | dst_port, est_packets);
  src_touch_.add((std::uint64_t{src_block} << 24) | dst_block, est_packets);
}

void IbrMatrix::add_batch(const flow::FlowBatch& batch, std::span<const std::uint32_t> rows,
                          int day) {
  if (!enabled_ || rows.empty()) return;
  const std::span<const std::uint32_t> src = batch.src_block();
  const std::span<const std::uint32_t> dst = batch.dst_block();
  const std::span<const std::uint16_t> port = batch.dst_port();
  const std::span<const std::uint64_t> est = batch.est_packets();
  for (const std::uint32_t i : rows) {
    add_flow(src[i], dst[i], port[i], day, est[i]);
  }
}

void IbrMatrix::merge(const IbrMatrix& other) {
  enabled_ = enabled_ || other.enabled_;
  first_day_ = std::min(first_day_, other.first_day_);
  last_day_ = std::max(last_day_, other.last_day_);
  rx_.merge(other.rx_);
  src_ports_.merge(other.src_ports_);
  src_touch_.merge(other.src_touch_);
}

std::vector<IbrMatrix::RxCell> IbrMatrix::rx_cells() const {
  std::vector<RxCell> out;
  out.reserve(rx_.size());
  for (const auto& [key, value] : rx_.sorted()) {
    out.push_back({static_cast<std::uint32_t>(key >> 32),
                   static_cast<std::uint16_t>((key >> 16) & 0xffffu),
                   static_cast<std::uint16_t>(key & 0xffffu), value});
  }
  return out;
}

std::vector<IbrMatrix::SrcPort> IbrMatrix::src_ports() const {
  std::vector<SrcPort> out;
  out.reserve(src_ports_.size());
  for (const auto& [key, value] : src_ports_.sorted()) {
    out.push_back({static_cast<std::uint32_t>(key >> 16),
                   static_cast<std::uint16_t>(key & 0xffffu), value});
  }
  return out;
}

std::vector<IbrMatrix::SrcTouch> IbrMatrix::src_touches() const {
  std::vector<SrcTouch> out;
  out.reserve(src_touch_.size());
  for (const auto& [key, value] : src_touch_.sorted()) {
    out.push_back({static_cast<std::uint32_t>(key >> 24),
                   static_cast<std::uint32_t>(key & 0xffffffu), value});
  }
  return out;
}

}  // namespace mtscope::analytics
