// IbrMatrix: compressed-sparse spatio-temporal store of the telescope's
// IBR signal — time-binned per-/24 x per-port traffic counts, in the
// spirit of Kepner et al.'s sparse darkspace matrices.
//
// The classification pipeline reduces each /24 to a verdict; the analytics
// workloads (Chocolatine-style outage detection, scanner/IoT insight) need
// the signal *behind* the verdict: who sent how much, to which block, on
// which port, on which day.  Materialising a dense (block x port x day)
// cube is hopeless — 2^24 x 2^16 x 7 cells — but the observed IBR is
// extremely sparse: sampled IXP data touches a few ports per block per
// day.  So the matrix is three open-addressing counter tables over packed
// integer keys:
//
//   rx        (dst_block, dst_port, day)  -> estimated packets
//   src_ports (src_block, dst_port)       -> estimated packets (port breadth)
//   src_touch (src_block, dst_block)      -> estimated packets (fan-out)
//
// Population is a batched tap beside the FlowBatch insert path
// (VantageStats::add_analytics_batch): every rx-routed row adds one cell
// update, so the matrix rides the collector's existing shard partition.
// No filtering happens at collect time — block classification does not
// exist yet; serve::build_analytics intersects the matrix with the
// published map when the snapshot is built.
//
// Merge contract: every table value is a sum of unsigned counters and the
// day bounds fold through min/max, so merge() is commutative and
// associative exactly like VantageStats::merge — the sliding window and
// the parallel workers fold matrices bit-identically to a from-scratch
// batch build (tests/test_analytics pins this differentially).
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "flow/flow_batch.hpp"

namespace mtscope::analytics {

/// Open-addressing u64 -> u64 counter map (linear probing, power-of-two
/// capacity).  Key 0 is reachable (block 0, port 0, day 0), so occupancy
/// lives in a separate byte vector instead of a sentinel key.
class CounterTable {
 public:
  void add(std::uint64_t key, std::uint64_t delta);

  /// Current value for `key`; 0 when absent (indistinguishable from an
  /// explicit zero, which the add path never stores).
  [[nodiscard]] std::uint64_t find(std::uint64_t key) const noexcept;

  /// Fold `other` into this table: per-key counter sums.
  void merge(const CounterTable& other);

  /// All (key, value) pairs sorted by key ascending — the deterministic
  /// export order every consumer iterates in.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, std::uint64_t>> sorted() const;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return keys_.capacity() * sizeof(std::uint64_t) +
           values_.capacity() * sizeof(std::uint64_t) + used_.capacity();
  }

 private:
  void grow(std::size_t min_capacity);
  [[nodiscard]] std::size_t slot_for(std::uint64_t key) const noexcept;

  std::vector<std::uint64_t> keys_;
  std::vector<std::uint64_t> values_;
  std::vector<std::uint8_t> used_;
  std::size_t size_ = 0;
};

class IbrMatrix {
 public:
  /// A default-constructed matrix is disabled: every add is a no-op and no
  /// table allocates, so the non-analytics pipeline pays one branch.
  IbrMatrix() = default;
  explicit IbrMatrix(bool enabled) : enabled_(enabled) {}

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// One destination-side record: `est_packets` is the sampled count times
  /// the exporter sampling rate (the same volume estimate the funnel
  /// thresholds).  `day` is the logical time bin.
  void add_flow(std::uint32_t src_block, std::uint32_t dst_block, std::uint16_t dst_port,
                int day, std::uint64_t est_packets);

  /// Batched tap: add_flow for every batch row in `rows` (the collector
  /// passes each shard's rx-routed run, which partitions the batch — every
  /// record lands in exactly one shard's matrix).
  void add_batch(const flow::FlowBatch& batch, std::span<const std::uint32_t> rows, int day);

  /// Commutative, associative fold — the same contract as
  /// VantageStats::merge, which carries this matrix through merge_stats.
  void merge(const IbrMatrix& other);

  // --- deterministic exports (sorted by packed key) ----------------------

  struct RxCell {
    std::uint32_t block = 0;
    std::uint16_t port = 0;
    std::uint16_t day = 0;
    std::uint64_t packets = 0;
  };
  /// (block, port, day) cells sorted by (block, port, day).
  [[nodiscard]] std::vector<RxCell> rx_cells() const;

  struct SrcPort {
    std::uint32_t src_block = 0;
    std::uint16_t port = 0;
    std::uint64_t packets = 0;
  };
  /// (src_block, port) pairs sorted by (src_block, port).
  [[nodiscard]] std::vector<SrcPort> src_ports() const;

  struct SrcTouch {
    std::uint32_t src_block = 0;
    std::uint32_t dst_block = 0;
    std::uint64_t packets = 0;
  };
  /// (src_block, dst_block) pairs sorted by (src_block, dst_block).
  [[nodiscard]] std::vector<SrcTouch> src_touches() const;

  /// Day-bin bounds over everything added; meaningless when empty().
  [[nodiscard]] int first_day() const noexcept { return first_day_; }
  [[nodiscard]] int last_day() const noexcept { return last_day_; }
  [[nodiscard]] bool empty() const noexcept { return rx_.empty(); }

  [[nodiscard]] std::size_t rx_cell_count() const noexcept { return rx_.size(); }
  [[nodiscard]] std::size_t src_port_count() const noexcept { return src_ports_.size(); }
  [[nodiscard]] std::size_t src_touch_count() const noexcept { return src_touch_.size(); }
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return rx_.memory_bytes() + src_ports_.memory_bytes() + src_touch_.memory_bytes();
  }

 private:
  bool enabled_ = false;
  int first_day_ = std::numeric_limits<int>::max();
  int last_day_ = std::numeric_limits<int>::min();
  CounterTable rx_;         // key: block<<32 | port<<16 | day
  CounterTable src_ports_;  // key: src_block<<16 | port
  CounterTable src_touch_;  // key: src_block<<24 | dst_block
};

}  // namespace mtscope::analytics
