// Scanner/IoT insight over the IBR matrix (Merit-telescope-style):
//
//   top_services — the most scanned destination ports per (continent,
//     network-type) group, the paper's Figure 11/12 regional-skew view.
//     Counting rides telemetry::SpaceSaving so the per-group state stays
//     bounded no matter how many distinct ports the radiation touches;
//     at map scale the monitors are far larger than the live port set,
//     so the estimates are exact.
//
//   top_scanners — per-source fan-out profiles: for each source /24,
//     how many map blocks it touched (block coverage), how many distinct
//     destination ports it probed (port breadth), and its total estimated
//     packet volume into the map.  Sources are ranked by that volume;
//     wide coverage + narrow ports reads as a scanning campaign, narrow
//     coverage + wide ports as a targeted probe.
//
// Both are pure functions of deterministic sorted matrix exports, so the
// published rankings are identical across thread/shard configurations and
// between the live ingest path and a batch build.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "analytics/ibr_matrix.hpp"

namespace mtscope::analytics {

/// One (block, port) aggregate labeled with the block's geography and
/// network type — the join of a matrix rx cell with the published map.
struct LabeledPortCount {
  std::uint8_t continent = 0;  // geo::Continent ordinal
  std::uint8_t net_type = 0;   // geo::NetType ordinal
  std::uint16_t port = 0;
  std::uint64_t packets = 0;
};

/// One ranked service entry for a (continent, net_type) group.
struct ServicePortStat {
  std::uint8_t continent = 0;
  std::uint8_t net_type = 0;
  std::uint16_t port = 0;
  std::uint32_t rank = 0;  // 0 = most scanned within the group
  std::uint64_t packets = 0;

  bool operator==(const ServicePortStat&) const = default;
};

/// Top `per_group` scanned ports per (continent, net_type) group present
/// in `cells`.  Output is sorted by (continent, net_type, rank); input
/// order must be deterministic (pass cells grouped or sorted).
[[nodiscard]] std::vector<ServicePortStat> top_services(std::span<const LabeledPortCount> cells,
                                                        std::size_t per_group = 8);

/// One source /24's fan-out profile.
struct ScannerProfile {
  std::uint32_t src_block = 0;
  std::uint32_t blocks_touched = 0;  // distinct map /24s reached
  std::uint32_t ports_touched = 0;   // distinct destination ports probed
  std::uint64_t est_packets = 0;     // estimated packets into the map

  bool operator==(const ScannerProfile&) const = default;
};

/// Rank sources by estimated packets into the map (descending, ties by
/// source block ascending), keeping the top `limit`.  `in_map` filters
/// destination blocks to the published map; port breadth is a property of
/// the source across all its observed traffic (a scanner's port set does
/// not depend on which of its targets the map kept).
[[nodiscard]] std::vector<ScannerProfile> top_scanners(
    const IbrMatrix& matrix, const std::function<bool(std::uint32_t)>& in_map,
    std::size_t limit = 64);

}  // namespace mtscope::analytics
