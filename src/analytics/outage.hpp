// Chocolatine-style outage detection on the IBR signal (Guillot et al.):
// a prefix that normally attracts background radiation and suddenly goes
// quiet has (most likely) lost connectivity — the absence of unsolicited
// traffic is itself a connectivity signal.
//
// Model, per announced prefix in the published map:
//
//   baseline  — the median of the prefix's per-day estimated packet
//               counts over the analysis window.  The median is the
//               seasonal-robust forecast: a few outage days cannot drag
//               it down the way a mean would be dragged.
//   spread    — the median absolute deviation (MAD) around that median,
//               the robust counterpart of the standard deviation.
//   anomaly   — day d is flagged when the observation drops below
//               ratio x baseline AND below baseline - k x MAD, with the
//               baseline itself above min_baseline (tiny prefixes carry
//               too little IBR to judge).  Both gates must fire: the
//               ratio test rejects ordinary day-of-week modulation, the
//               MAD test rejects prefixes whose signal is noisy enough
//               that a deep dip is still in-distribution.
//
// Consecutive flagged days coalesce into one OutageEvent carrying the
// baseline, the worst observation and a severity percentage.  The
// detector is a pure function of the per-prefix series, so it runs
// identically on a live ingest epoch and on a from-scratch batch build.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace mtscope::analytics {

struct OutageConfig {
  /// MAD multiplier for the robust z-test gate.
  double mad_k = 4.0;
  /// A flagged day must fall below this fraction of the baseline.
  double ratio = 0.35;
  /// Prefixes whose median daily volume is below this carry too little
  /// IBR for a drop to mean anything; they are never flagged.
  std::uint64_t min_baseline = 5'000;
  /// A series needs at least this many day bins before any day is judged
  /// (a 1-2 day window has no history to forecast from).
  int min_days = 4;
};

/// One detected outage: `prefix_id` indexes the published snapshot's
/// prefix table; days are inclusive logical day bins.
struct OutageEvent {
  std::uint32_t prefix_id = 0;
  std::uint32_t start_day = 0;
  std::uint32_t end_day = 0;
  /// 100 - 100 x worst_observation / baseline, clamped to [0, 100].
  std::uint32_t severity_pct = 0;
  std::uint64_t baseline = 0;  // median daily estimated packets
  std::uint64_t observed = 0;  // worst (minimum) flagged-day observation

  bool operator==(const OutageEvent&) const = default;
};

/// One prefix's dense per-day series: packets[i] is the estimated packet
/// count on day first_day + i.  Days with no observed traffic are zeros —
/// a silent day is exactly the signal the detector exists to catch.
struct PrefixDaySeries {
  std::uint32_t prefix_id = 0;
  std::vector<std::uint64_t> packets;
};

/// Run the detector over every series.  Events are emitted in input order
/// (series order), coalesced per prefix; deterministic for a given input.
[[nodiscard]] std::vector<OutageEvent> detect_outages(std::span<const PrefixDaySeries> series,
                                                      std::uint32_t first_day,
                                                      const OutageConfig& config = {});

}  // namespace mtscope::analytics
