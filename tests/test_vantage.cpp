#include "sim/vantage.hpp"

#include <gtest/gtest.h>

namespace mtscope::sim {
namespace {

class VantageTest : public ::testing::Test {
 protected:
  static const AddressPlan& plan() {
    static const AddressPlan instance{SimConfig::tiny(3)};
    return instance;
  }
};

TEST_F(VantageTest, VisibilityWithinBounds) {
  const Ixp ixp(SimConfig::tiny().ixps[0], 0, plan(), 3);
  for (std::size_t a = 0; a < plan().ases().size(); ++a) {
    EXPECT_GE(ixp.visibility(a), 0.0);
    EXPECT_LE(ixp.visibility(a), 0.05);
  }
}

TEST_F(VantageTest, DeterministicConstruction) {
  const Ixp a(SimConfig::tiny().ixps[0], 0, plan(), 3);
  const Ixp b(SimConfig::tiny().ixps[0], 0, plan(), 3);
  for (std::size_t i = 0; i < plan().ases().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.visibility(i), b.visibility(i));
    EXPECT_EQ(a.is_member(i), b.is_member(i));
  }
  EXPECT_EQ(a.member_count(), b.member_count());
}

TEST_F(VantageTest, MembersHaveVisibility) {
  const Ixp ixp(SimConfig::tiny().ixps[0], 0, plan(), 3);
  EXPECT_GT(ixp.member_count(), 0u);
  for (std::size_t a = 0; a < plan().ases().size(); ++a) {
    if (ixp.is_member(a)) {
      EXPECT_GT(ixp.visibility(a), 0.0);
    }
  }
}

TEST_F(VantageTest, SameRegionMembershipBias) {
  const Ixp ce(SimConfig::tiny().ixps[0], 0, plan(), 3);  // Central Europe
  std::size_t eu_members = 0;
  std::size_t eu_total = 0;
  std::size_t other_members = 0;
  std::size_t other_total = 0;
  for (std::size_t a = 0; a < plan().ases().size(); ++a) {
    const bool eu = plan().ases()[a].continent == geo::Continent::kEurope;
    (eu ? eu_total : other_total) += 1;
    if (ce.is_member(a)) (eu ? eu_members : other_members) += 1;
  }
  ASSERT_GT(eu_total, 0u);
  ASSERT_GT(other_total, 0u);
  const double eu_rate = static_cast<double>(eu_members) / eu_total;
  const double other_rate = static_cast<double>(other_members) / other_total;
  EXPECT_GT(eu_rate, other_rate * 1.5);
}

TEST_F(VantageTest, SetVisibilityOverrides) {
  Ixp ixp(SimConfig::tiny().ixps[0], 0, plan(), 3);
  ixp.set_visibility(0, 0.77);
  EXPECT_DOUBLE_EQ(ixp.visibility(0), 0.77);
}

TEST_F(VantageTest, SpoofShareScalesWithBoost) {
  IxpSpec big = SimConfig::tiny().ixps[0];
  big.visibility_boost = 1.0;
  IxpSpec small = big;
  small.visibility_boost = 0.1;
  const Ixp ixp_big(big, 0, plan(), 3);
  const Ixp ixp_small(small, 1, plan(), 3);
  EXPECT_GT(ixp_big.spoof_share(), 50 * ixp_small.spoof_share());
}

TEST(IxpRegion, ContinentMapping) {
  EXPECT_EQ(ixp_region_continent("North America"), geo::Continent::kNorthAmerica);
  EXPECT_EQ(ixp_region_continent("Central Europe"), geo::Continent::kEurope);
  EXPECT_EQ(ixp_region_continent("South Europe"), geo::Continent::kEurope);
  EXPECT_EQ(ixp_region_continent("South America"), geo::Continent::kSouthAmerica);
}

}  // namespace
}  // namespace mtscope::sim
