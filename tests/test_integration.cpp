// End-to-end integration: simulated traffic -> export path -> inference ->
// evaluation, exercising the same composition the bench harnesses use.
#include <gtest/gtest.h>

#include "pipeline/collector.hpp"
#include "pipeline/evaluation.hpp"
#include "pipeline/hitlists.hpp"
#include "pipeline/inference.hpp"
#include "pipeline/spoof_tolerance.hpp"
#include "sim/simulation.hpp"

namespace mtscope {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static const sim::Simulation& simulation() {
    static const sim::Simulation instance{sim::SimConfig::tiny(21)};
    return instance;
  }

  static const pipeline::VantageStats& day0_stats() {
    static const pipeline::VantageStats stats = [] {
      const std::size_t ixps[] = {0, 1};
      const int days[] = {0};
      return pipeline::collect_stats(simulation(), ixps, days);
    }();
    return stats;
  }

  static pipeline::InferenceEngine make_engine(std::uint64_t tolerance = 0) {
    pipeline::PipelineConfig config;
    config.volume_scale = simulation().config().volume_scale;
    config.spoof_tolerance_pkts = tolerance;
    static const routing::SpecialPurposeRegistry registry =
        routing::SpecialPurposeRegistry::standard();
    return pipeline::InferenceEngine(config, simulation().plan().rib(), registry);
  }
};

TEST_F(IntegrationTest, InfersSubstantialDarkSpace) {
  const auto result = make_engine().infer(day0_stats());
  EXPECT_GT(result.dark.size(), 1000u);
  EXPECT_GT(result.gray, result.unclean);  // most classified blocks are used space
  EXPECT_GT(result.funnel.seen, result.funnel.after_volume);
}

TEST_F(IntegrationTest, FalsePositiveRateIsLow) {
  const auto result = make_engine().infer(day0_stats());
  const auto eval =
      pipeline::evaluate_against_ground_truth(result.dark, simulation().plan());
  EXPECT_EQ(eval.inferred, result.dark.size());
  EXPECT_EQ(eval.unallocated, 0u);  // routed filter guarantees allocation
  // The paper found 13.9% before hit-list correction; the conservative
  // pipeline should stay well under one-in-four here.
  EXPECT_LT(eval.false_positive_rate(), 0.25);
  EXPECT_GT(eval.truly_dark, 0u);
}

TEST_F(IntegrationTest, HitListCorrectionReducesFalsePositives) {
  const auto result = make_engine().infer(day0_stats());
  std::vector<pipeline::HitList> lists;
  for (const auto& spec : pipeline::default_hitlist_specs()) {
    lists.push_back(pipeline::HitList::generate(simulation().plan(), spec,
                                                simulation().config().seed));
  }
  const auto active_union = pipeline::hitlist_union(lists);

  std::uint64_t removed = 0;
  const auto corrected =
      pipeline::apply_hitlist_correction(result.dark, active_union, &removed);

  const auto before = pipeline::evaluate_against_ground_truth(result.dark, simulation().plan());
  const auto after = pipeline::evaluate_against_ground_truth(corrected, simulation().plan());
  EXPECT_LT(after.false_positive_rate(), before.false_positive_rate());
  EXPECT_EQ(corrected.size() + removed, result.dark.size());
}

TEST_F(IntegrationTest, ToleranceRecoversSpoofedBlocks) {
  const auto strict = make_engine(0).infer(day0_stats());
  const std::uint64_t tolerance = pipeline::compute_spoof_tolerance(
      day0_stats(), simulation().plan().unrouted_slash8s());
  const auto tolerant = make_engine(tolerance + 1).infer(day0_stats());
  EXPECT_GT(tolerant.dark.size(), strict.dark.size());
}

TEST_F(IntegrationTest, MultiDayIncreasesTelescopeCoverage) {
  const std::size_t ixps[] = {1};  // NA1 sees TUS1
  const int day0[] = {0};
  const auto stats_1day = pipeline::collect_stats(simulation(), ixps, day0);
  const int days3[] = {0, 1, 2};
  const auto stats_3day = pipeline::collect_stats(simulation(), ixps, days3);

  const auto engine = make_engine(2);
  const auto& tus1 = simulation().plan().telescopes()[0];
  const auto cover_1 = pipeline::evaluate_telescope_coverage(
      engine.infer(stats_1day).dark, tus1, nullptr);
  const auto cover_3 = pipeline::evaluate_telescope_coverage(
      engine.infer(stats_3day).dark, tus1, nullptr);
  EXPECT_GT(cover_3.inferred, cover_1.inferred);
}

TEST_F(IntegrationTest, Tus1InvisibleAtEuropeanVantage) {
  const std::size_t ixps[] = {0};  // CE1
  const int days[] = {0};
  const auto stats = pipeline::collect_stats(simulation(), ixps, days);
  const auto result = make_engine().infer(stats);
  const auto coverage = pipeline::evaluate_telescope_coverage(
      result.dark, simulation().plan().telescopes()[0], nullptr);
  EXPECT_EQ(coverage.inferred, 0u);
}

TEST_F(IntegrationTest, UnannouncedSpaceNeverInferred) {
  const auto result = make_engine().infer(day0_stats());
  const std::uint32_t legacy = std::uint32_t{simulation().plan().legacy_slash8()} << 16;
  // The first /10 of the legacy /8 is allocated but unannounced.
  EXPECT_EQ(result.dark.count_in_range(legacy, legacy + 16383), 0u);
}

TEST_F(IntegrationTest, ReservedSpaceNeverInferred) {
  const auto result = make_engine().infer(day0_stats());
  result.dark.for_each([&](net::Block24 block) {
    EXPECT_FALSE(routing::SpecialPurposeRegistry::standard().is_reserved(block));
  });
}

}  // namespace
}  // namespace mtscope
