#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace mtscope::util {
namespace {

TEST(Split, BasicFields) {
  const auto fields = split("a,b,c", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(Split, EmptyFieldsPreserved) {
  const auto fields = split(",x,,", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "");
  EXPECT_EQ(fields[1], "x");
  EXPECT_EQ(fields[2], "");
  EXPECT_EQ(fields[3], "");
}

TEST(Split, SingleFieldNoSeparator) {
  const auto fields = split("abc", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "abc");
}

TEST(SplitWs, CollapsesRuns) {
  const auto fields = split_ws("  a \t b\n\nc  ");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
  EXPECT_EQ(fields[2], "c");
}

TEST(SplitWs, EmptyAndBlank) {
  EXPECT_TRUE(split_ws("").empty());
  EXPECT_TRUE(split_ws(" \t\n").empty());
}

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim("hi"), "hi");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

// The query paths (CLI --ips and the TCP server's line parser) rely on
// trim to absorb Windows CRLF line endings and editor padding before
// Ipv4Addr::parse sees the token.
TEST(Trim, StripsCrlfAndControlPadding) {
  EXPECT_EQ(trim("1.2.3.4\r"), "1.2.3.4");
  EXPECT_EQ(trim("1.2.3.4\r\n"), "1.2.3.4");
  EXPECT_EQ(trim("\t 1.2.3.4 \t"), "1.2.3.4");
  EXPECT_EQ(trim("\r\n"), "");
  EXPECT_EQ(trim("\f\v1.2.3.4\f\v"), "1.2.3.4");
}

TEST(StartsWith, Cases) {
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_TRUE(starts_with("foo", "foo"));
  EXPECT_FALSE(starts_with("fo", "foo"));
  EXPECT_TRUE(starts_with("anything", ""));
}

TEST(ParseUint, Valid) {
  EXPECT_EQ(parse_uint<std::uint32_t>("0").value(), 0u);
  EXPECT_EQ(parse_uint<std::uint32_t>("4294967295").value(), 4294967295u);
  EXPECT_EQ(parse_uint<std::uint16_t>("65535").value(), 65535u);
}

TEST(ParseUint, Invalid) {
  EXPECT_FALSE(parse_uint<std::uint32_t>(""));
  EXPECT_FALSE(parse_uint<std::uint32_t>("-1"));
  EXPECT_FALSE(parse_uint<std::uint32_t>("12x"));
  EXPECT_FALSE(parse_uint<std::uint32_t>("4294967296"));  // overflow
  EXPECT_FALSE(parse_uint<std::uint16_t>("65536"));
}

TEST(ParseDouble, ValidAndInvalid) {
  EXPECT_DOUBLE_EQ(parse_double("3.5").value(), 3.5);
  EXPECT_DOUBLE_EQ(parse_double("-2").value(), -2.0);
  EXPECT_FALSE(parse_double(""));
  EXPECT_FALSE(parse_double("1.2.3"));
  EXPECT_FALSE(parse_double("abc"));
}

TEST(Join, Basic) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(WithCommas, Grouping) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(1234567), "1,234,567");
  EXPECT_EQ(with_commas(1000000000ull), "1,000,000,000");
}

TEST(ToLower, Ascii) {
  EXPECT_EQ(to_lower("AbC"), "abc");
  EXPECT_EQ(to_lower("Data Center"), "data center");
}

}  // namespace
}  // namespace mtscope::util
