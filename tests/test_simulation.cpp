#include "sim/simulation.hpp"

#include <gtest/gtest.h>

namespace mtscope::sim {
namespace {

class SimulationTest : public ::testing::Test {
 protected:
  static const Simulation& simulation() {
    static const Simulation instance{SimConfig::tiny(5)};
    return instance;
  }
};

TEST_F(SimulationTest, IxpIndexLookup) {
  EXPECT_EQ(simulation().ixp_index("CE1"), 0u);
  EXPECT_EQ(simulation().ixp_index("NA1"), 1u);
  EXPECT_THROW((void)simulation().ixp_index("XX9"), std::invalid_argument);
}

TEST_F(SimulationTest, SpecialVisibilityWiring) {
  const auto& plan = simulation().plan();
  const std::size_t ce1 = simulation().ixp_index("CE1");
  const std::size_t na1 = simulation().ixp_index("NA1");

  // TUS1's ISP is invisible in Europe, visible in North America.
  EXPECT_DOUBLE_EQ(simulation().ixps()[ce1].visibility(plan.isp().as_index), 0.0);
  EXPECT_GT(simulation().ixps()[na1].visibility(plan.isp().as_index), 0.0);

  // TEU1's host is CE-only.
  EXPECT_GT(simulation().ixps()[ce1].visibility(plan.teu1_as_index()), 0.0);
  EXPECT_DOUBLE_EQ(simulation().ixps()[na1].visibility(plan.teu1_as_index()), 0.0);

  // The legacy /9 is CE1-only; the legacy /14 is NA1-only (Figure 5).
  EXPECT_GT(simulation().ixps()[ce1].visibility(plan.legacy9_as_index()), 0.0);
  EXPECT_DOUBLE_EQ(simulation().ixps()[na1].visibility(plan.legacy9_as_index()), 0.0);
  EXPECT_DOUBLE_EQ(simulation().ixps()[ce1].visibility(plan.legacy14_as_index()), 0.0);
  EXPECT_GT(simulation().ixps()[na1].visibility(plan.legacy14_as_index()), 0.0);

  // TEU2 is unusually well observed.
  double teu2_total = 0.0;
  for (const Ixp& ixp : simulation().ixps()) teu2_total += ixp.visibility(plan.teu2_as_index());
  EXPECT_NEAR(teu2_total, 0.48, 1e-9);
}

TEST_F(SimulationTest, IxpDayDataConsistency) {
  const auto day = simulation().run_ixp_day(0, 0);
  EXPECT_EQ(day.ixp_index, 0u);
  EXPECT_EQ(day.day, 0);
  EXPECT_GT(day.sampled_packets, 0u);
  EXPECT_GT(day.ipfix_messages, 0u);
  EXPECT_GT(day.ipfix_bytes, day.ipfix_messages * 16);  // at least header-sized

  // Conservation: decoded flow packets equal sampled packets.
  std::uint64_t flow_packets = 0;
  std::uint64_t flow_bytes = 0;
  for (const auto& flow : day.flows) {
    flow_packets += flow.packets;
    flow_bytes += flow.bytes;
    EXPECT_EQ(flow.sampling_rate, simulation().ixps()[0].sampling_rate());
  }
  EXPECT_EQ(flow_packets, day.sampled_packets);
  EXPECT_EQ(flow_bytes, day.sampled_bytes);
}

TEST_F(SimulationTest, TelescopeDayRespectsWindow) {
  const auto capture = simulation().run_telescope_day(2, 0);  // TEU2
  EXPECT_EQ(capture.captured_blocks, 8u);
  EXPECT_GT(capture.packets.size(), 0u);
}

TEST_F(SimulationTest, IspWeekBlocksComeFromIspAndTus1) {
  const auto observations = simulation().run_isp_week();
  const auto& plan = simulation().plan();
  std::size_t telescope_blocks = 0;
  for (const auto& obs : observations) {
    const auto as_index = plan.as_of(obs.block);
    ASSERT_TRUE(as_index);
    EXPECT_EQ(*as_index, plan.isp().as_index);
    if (obs.role == BlockRole::kTelescope) ++telescope_blocks;
  }
  EXPECT_GT(telescope_blocks, 0u);
}

TEST(SimulationConfig, DefaultFleetMatchesPaper) {
  const auto ixps = SimConfig::default_ixps();
  ASSERT_EQ(ixps.size(), 14u);
  EXPECT_EQ(ixps[0].code, "CE1");
  EXPECT_EQ(ixps[13].code, "SE6");
  int ce = 0;
  int na = 0;
  int se = 0;
  for (const auto& spec : ixps) {
    if (spec.code.starts_with("CE")) ++ce;
    if (spec.code.starts_with("NA")) ++na;
    if (spec.code.starts_with("SE")) ++se;
  }
  EXPECT_EQ(ce, 4);
  EXPECT_EQ(na, 4);
  EXPECT_EQ(se, 6);

  const auto telescopes = SimConfig::default_telescopes();
  ASSERT_EQ(telescopes.size(), 3u);
  EXPECT_EQ(telescopes[1].blocked_ports.size(), 2u);
  EXPECT_TRUE(telescopes[2].announced_at_many_ixps);
}

}  // namespace
}  // namespace mtscope::sim
