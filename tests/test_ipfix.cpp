#include "flow/ipfix.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace mtscope::flow {
namespace {

FlowRecord sample_record(std::uint32_t i) {
  FlowRecord r;
  r.key.src = net::Ipv4Addr(0x0a000000u + i);
  r.key.dst = net::Ipv4Addr(0xc6336400u + i);
  r.key.src_port = static_cast<std::uint16_t>(1000 + i);
  r.key.dst_port = static_cast<std::uint16_t>(i % 3 == 0 ? 23 : 443);
  r.key.proto = i % 4 == 0 ? net::IpProto::kUdp : net::IpProto::kTcp;
  r.first_us = 1'000'000ull * i;
  r.last_us = r.first_us + 999;
  r.packets = i + 1;
  r.bytes = (i + 1) * 40ull;
  r.tcp_flags_or = static_cast<std::uint8_t>(i & 0x3f);
  r.sampling_rate = 1000;
  return r;
}

class IpfixRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(IpfixRoundTrip, ExactRecovery) {
  std::vector<FlowRecord> records;
  for (std::size_t i = 0; i < GetParam(); ++i) records.push_back(sample_record(i));

  IpfixEncoder encoder;
  IpfixDecoder decoder;
  const auto messages = encoder.encode(records, 12345);
  EXPECT_FALSE(messages.empty());
  for (const auto& m : messages) {
    auto fed = decoder.feed(m);
    ASSERT_TRUE(fed.ok()) << fed.error().to_string();
  }
  const auto decoded = decoder.drain();
  ASSERT_EQ(decoded.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(decoded[i], records[i]) << "record " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Counts, IpfixRoundTrip, ::testing::Values(0, 1, 2, 33, 500, 5000));

TEST(Ipfix, MessagesRespectSizeCap) {
  std::vector<FlowRecord> records;
  for (std::size_t i = 0; i < 1000; ++i) records.push_back(sample_record(i));
  IpfixEncoderConfig config;
  config.max_message_bytes = 600;
  IpfixEncoder encoder(config);
  const auto messages = encoder.encode(records, 0);
  EXPECT_GT(messages.size(), 10u);
  for (const auto& m : messages) EXPECT_LE(m.size(), 600u);
}

TEST(Ipfix, SequenceAdvancesByDataRecordCount) {
  IpfixEncoder encoder;
  std::vector<FlowRecord> records = {sample_record(0), sample_record(1), sample_record(2)};
  (void)encoder.encode(records, 0);
  EXPECT_EQ(encoder.sequence(), 3u);
  (void)encoder.encode(records, 0);
  EXPECT_EQ(encoder.sequence(), 6u);
}

TEST(Ipfix, TemplateOnlyOnceStillDecodes) {
  IpfixEncoderConfig config;
  config.template_in_every_message = false;
  config.max_message_bytes = 600;
  IpfixEncoder encoder(config);
  std::vector<FlowRecord> records;
  for (std::size_t i = 0; i < 200; ++i) records.push_back(sample_record(i));
  const auto messages = encoder.encode(records, 0);
  ASSERT_GT(messages.size(), 1u);

  IpfixDecoder decoder;
  for (const auto& m : messages) ASSERT_TRUE(decoder.feed(m).ok());
  EXPECT_EQ(decoder.drain().size(), 200u);
}

TEST(Ipfix, DataBeforeTemplateFails) {
  // Hand-crafted message: a data set referencing template 256 that the
  // decoder has never seen.
  std::vector<std::uint8_t> message = {
      0x00, 0x0a,              // version 10
      0x00, 0x18,              // length 24
      0, 0, 0, 0,              // export time
      0, 0, 0, 0,              // sequence
      0, 0, 0, 0,              // domain
      0x01, 0x00, 0x00, 0x08,  // set id 256, length 8
      0xde, 0xad, 0xbe, 0xef,  // 4 bytes of "data"
  };
  IpfixDecoder decoder;
  auto fed = decoder.feed(message);
  ASSERT_FALSE(fed.ok());
  EXPECT_EQ(fed.error().code, "ipfix.data");
}

TEST(Ipfix, SeparateObservationDomainsKeepSeparateTemplates) {
  IpfixEncoderConfig a_config;
  a_config.observation_domain = 1;
  IpfixEncoderConfig b_config;
  b_config.observation_domain = 2;
  IpfixEncoder a(a_config);
  IpfixEncoder b(b_config);
  std::vector<FlowRecord> records = {sample_record(7)};

  IpfixDecoder decoder;
  for (const auto& m : a.encode(records, 0)) ASSERT_TRUE(decoder.feed(m).ok());
  for (const auto& m : b.encode(records, 0)) ASSERT_TRUE(decoder.feed(m).ok());
  EXPECT_EQ(decoder.drain().size(), 2u);
}

TEST(Ipfix, RejectsGarbage) {
  IpfixDecoder decoder;
  const std::vector<std::uint8_t> junk = {0, 1, 2, 3};
  EXPECT_FALSE(decoder.feed(junk).ok());

  std::vector<std::uint8_t> bad_version(16, 0);
  bad_version[1] = 9;   // version 9 (NetFlow), not IPFIX
  bad_version[3] = 16;  // length
  EXPECT_EQ(decoder.feed(bad_version).error().code, "ipfix.version");
}

TEST(Ipfix, RejectsLyingLengthFields) {
  IpfixEncoder encoder;
  std::vector<FlowRecord> records = {sample_record(0)};
  auto messages = encoder.encode(records, 0);
  ASSERT_EQ(messages.size(), 1u);
  auto& m = messages[0];

  // Declared message length beyond the buffer.
  auto truncated = m;
  truncated.resize(truncated.size() - 4);
  EXPECT_FALSE(IpfixDecoder().feed(truncated).ok());

  // Corrupt a set length to spill past the message end.
  auto corrupt = m;
  corrupt[18] = 0xff;  // first set's length high byte
  EXPECT_FALSE(IpfixDecoder().feed(corrupt).ok());
}

TEST(Ipfix, SkipsUnknownLowSetIds) {
  // Craft a message with an options-template set (id 3), which we skip.
  std::vector<std::uint8_t> message = {
      0x00, 0x0a,              // version 10
      0x00, 0x14,              // length 20
      0, 0, 0, 0,              // export time
      0, 0, 0, 0,              // sequence
      0, 0, 0, 0,              // domain
      0x00, 0x03, 0x00, 0x04,  // set id 3, length 4 (empty body)
  };
  IpfixDecoder decoder;
  auto fed = decoder.feed(message);
  ASSERT_TRUE(fed.ok());
  EXPECT_EQ(decoder.sets_skipped(), 1u);
}

TEST(Ipfix, EncoderValidatesConfig) {
  IpfixEncoderConfig bad_template;
  bad_template.template_id = 100;
  EXPECT_THROW(IpfixEncoder{bad_template}, std::invalid_argument);

  IpfixEncoderConfig too_small;
  too_small.max_message_bytes = 40;
  EXPECT_THROW(IpfixEncoder{too_small}, std::invalid_argument);
}

}  // namespace
}  // namespace mtscope::flow
