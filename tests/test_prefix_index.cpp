#include "analysis/prefix_index.hpp"

#include <gtest/gtest.h>

namespace mtscope::analysis {
namespace {

using net::AsNumber;
using net::Block24;
using net::Prefix;

TEST(PrefixIndex, ComputesDarkShares) {
  routing::Rib rib;
  rib.announce(*Prefix::parse("60.0.0.0/8"), AsNumber(1));
  rib.announce(*Prefix::parse("61.0.0.0/16"), AsNumber(2));
  rib.announce(*Prefix::parse("61.1.0.0/24"), AsNumber(3));  // longer than /16: excluded

  trie::Block24Set dark;
  // 10% of the /8's blocks dark.
  for (std::uint32_t i = 0; i < 6554; ++i) dark.insert(Block24((60u << 16) + i));
  // All of the /16 dark.
  for (std::uint32_t i = 0; i < 256; ++i) dark.insert(Block24((61u << 16) + i));

  const auto entries = compute_prefix_index(rib, dark, 8, 16);
  ASSERT_EQ(entries.size(), 2u);

  for (const auto& entry : entries) {
    if (entry.prefix.length() == 8) {
      EXPECT_EQ(entry.total_24s, 65536u);
      EXPECT_EQ(entry.dark_24s, 6554u);
      EXPECT_NEAR(entry.index(), 0.1, 0.001);
      EXPECT_EQ(entry.origin, AsNumber(1));
    } else {
      EXPECT_EQ(entry.prefix.length(), 16);
      EXPECT_DOUBLE_EQ(entry.index(), 1.0);
    }
  }
}

TEST(PrefixIndex, LengthBoundsRespected) {
  routing::Rib rib;
  rib.announce(*Prefix::parse("60.0.0.0/8"), AsNumber(1));
  rib.announce(*Prefix::parse("61.0.0.0/20"), AsNumber(2));
  const auto entries = compute_prefix_index(rib, trie::Block24Set{}, 9, 16);
  EXPECT_TRUE(entries.empty());
}

TEST(PrefixIndex, EcdfGroupings) {
  routing::Rib rib;
  rib.announce(*Prefix::parse("60.0.0.0/16"), AsNumber(1));
  rib.announce(*Prefix::parse("60.1.0.0/16"), AsNumber(2));
  rib.announce(*Prefix::parse("61.0.0.0/12"), AsNumber(3));

  trie::Block24Set dark;
  for (std::uint32_t i = 0; i < 128; ++i) dark.insert(Block24((60u << 16) + i));  // 50% of first /16

  const auto entries = compute_prefix_index(rib, dark, 8, 16);
  ASSERT_EQ(entries.size(), 3u);

  const auto by_length = index_ecdf_by_length(entries);
  ASSERT_EQ(by_length.count(16), 1u);
  ASSERT_EQ(by_length.count(12), 1u);
  EXPECT_EQ(by_length.at(16).size(), 2u);
  EXPECT_DOUBLE_EQ(by_length.at(16).max(), 0.5);
  EXPECT_DOUBLE_EQ(by_length.at(12).max(), 0.0);

  geo::NetTypeDb nettypes;
  nettypes.add(AsNumber(1), geo::NetType::kIsp);
  nettypes.add(AsNumber(2), geo::NetType::kIsp);
  nettypes.add(AsNumber(3), geo::NetType::kDataCenter);
  const auto by_type = index_ecdf_by_type(entries, nettypes);
  EXPECT_EQ(by_type.at(geo::NetType::kIsp).size(), 2u);
  EXPECT_EQ(by_type.at(geo::NetType::kDataCenter).size(), 1u);

  geo::GeoDb geodb;
  geodb.add(*Prefix::parse("60.0.0.0/8"), "US");
  geodb.add(*Prefix::parse("61.0.0.0/8"), "DE");
  const auto by_continent = index_ecdf_by_continent(entries, geodb);
  EXPECT_EQ(by_continent.at(geo::Continent::kNorthAmerica).size(), 2u);
  EXPECT_EQ(by_continent.at(geo::Continent::kEurope).size(), 1u);
}

TEST(PrefixIndex, UnknownTypeSkipped) {
  routing::Rib rib;
  rib.announce(*Prefix::parse("60.0.0.0/16"), AsNumber(1));
  const auto entries = compute_prefix_index(rib, trie::Block24Set{}, 8, 16);
  const auto by_type = index_ecdf_by_type(entries, geo::NetTypeDb{});
  EXPECT_TRUE(by_type.empty());
}

}  // namespace
}  // namespace mtscope::analysis
