#include "geo/geodb.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace mtscope::geo {
namespace {

using net::Ipv4Addr;
using net::Prefix;

TEST(GeoDb, CountryLongestMatch) {
  GeoDb db;
  db.add(*Prefix::parse("10.0.0.0/8"), "US");
  db.add(*Prefix::parse("10.99.0.0/16"), "DE");
  EXPECT_EQ(db.country_of(Ipv4Addr::from_octets(10, 99, 1, 1)).value(), "DE");
  EXPECT_EQ(db.country_of(Ipv4Addr::from_octets(10, 1, 1, 1)).value(), "US");
  EXPECT_FALSE(db.country_of(Ipv4Addr::from_octets(11, 0, 0, 0)));
}

TEST(GeoDb, ContinentLookups) {
  GeoDb db;
  db.add(*Prefix::parse("10.0.0.0/8"), "CN");
  EXPECT_EQ(db.continent_of(Ipv4Addr::from_octets(10, 0, 0, 1)), Continent::kAsia);
  EXPECT_EQ(db.continent_of(Ipv4Addr::from_octets(11, 0, 0, 1)), Continent::kInternational);
}

TEST(GeoDb, SaveLoadRoundTrip) {
  GeoDb db;
  db.add(*Prefix::parse("10.0.0.0/8"), "BR");
  db.add(*Prefix::parse("192.0.2.0/24"), "JP");
  std::stringstream buffer;
  db.save(buffer);
  auto loaded = GeoDb::load(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.error().to_string();
  EXPECT_EQ(loaded.value().size(), 2u);
  EXPECT_EQ(loaded.value().country_of(Ipv4Addr::from_octets(192, 0, 2, 200)).value(), "JP");
}

TEST(GeoDb, LoadRejectsMalformed) {
  std::stringstream bad("10.0.0.0/8\n");
  EXPECT_FALSE(GeoDb::load(bad).ok());
  std::stringstream bad_prefix("10.0.0.0/99,US\n");
  EXPECT_FALSE(GeoDb::load(bad_prefix).ok());
}

struct ContinentCase {
  const char* country;
  Continent continent;
};

class CountryContinent : public ::testing::TestWithParam<ContinentCase> {};

TEST_P(CountryContinent, Maps) {
  EXPECT_EQ(continent_of_country(GetParam().country), GetParam().continent);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CountryContinent,
    ::testing::Values(ContinentCase{"US", Continent::kNorthAmerica},
                      ContinentCase{"CA", Continent::kNorthAmerica},
                      ContinentCase{"BR", Continent::kSouthAmerica},
                      ContinentCase{"DE", Continent::kEurope},
                      ContinentCase{"RU", Continent::kEurope},
                      ContinentCase{"CN", Continent::kAsia},
                      ContinentCase{"JP", Continent::kAsia},
                      ContinentCase{"ZA", Continent::kAfrica},
                      ContinentCase{"AU", Continent::kOceania},
                      ContinentCase{"KP", Continent::kAsia},
                      ContinentCase{"XX", Continent::kInternational},
                      ContinentCase{"", Continent::kInternational}));

TEST(Continent, CodesAndNames) {
  EXPECT_EQ(continent_code(Continent::kNorthAmerica), "NA");
  EXPECT_EQ(continent_code(Continent::kInternational), "INT");
  EXPECT_EQ(continent_name(Continent::kOceania), "Oceania");
  EXPECT_EQ(kAllContinents.size(), 7u);
}

}  // namespace
}  // namespace mtscope::geo
