// The CLI argument surface: every accept/reject decision and diagnostic
// string of cli::parse_args is pinned here, so an accidental change to the
// option grammar (or an error message a script greps for) fails a test
// instead of surfacing in someone's cron job.
#include "cli_options.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace mtscope {
namespace {

struct ParseOutcome {
  bool ok = false;
  cli::Options opt;
  std::string error;
};

ParseOutcome parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"mtscope"};
  argv.insert(argv.end(), args.begin(), args.end());
  ParseOutcome outcome;
  outcome.ok = cli::parse_args(static_cast<int>(argv.size()), argv.data(), outcome.opt,
                               outcome.error);
  return outcome;
}

// --- command selection ------------------------------------------------------

TEST(CliArgs, MissingCommand) {
  const auto r = parse({});
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, "missing command");
}

TEST(CliArgs, UnknownCommand) {
  const auto r = parse({"transmogrify"});
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, "unknown command: transmogrify");
}

TEST(CliArgs, AllCommandsAccepted) {
  for (const char* cmd : {"infer", "query", "serve", "loadgen", "stream", "ingest", "analyze",
                          "capture", "datasets", "ports"}) {
    const auto r = parse({cmd});
    EXPECT_TRUE(r.ok) << cmd << ": " << r.error;
    EXPECT_EQ(r.opt.command, cmd);
  }
}

// --- defaults ---------------------------------------------------------------

TEST(CliArgs, InferDefaults) {
  const auto r = parse({"infer"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.opt.seed, 42u);
  EXPECT_FALSE(r.opt.tiny);
  EXPECT_EQ(r.opt.days, 1);
  EXPECT_EQ(r.opt.threads, 1u);
  EXPECT_EQ(r.opt.shards, 0u);
  EXPECT_TRUE(r.opt.tolerance);
  EXPECT_TRUE(r.opt.metrics_path.empty());
  EXPECT_TRUE(r.opt.snapshot_out.empty());
  EXPECT_FALSE(r.opt.bench);
  EXPECT_EQ(r.opt.bench_lookups, 2'000'000u);
}

// --- numeric validation -----------------------------------------------------

TEST(CliArgs, ThreadsParses) {
  const auto r = parse({"infer", "--threads", "8", "--shards", "16"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.opt.threads, 8u);
  EXPECT_EQ(r.opt.shards, 16u);
}

TEST(CliArgs, ThreadsZeroRejected) {
  const auto r = parse({"infer", "--threads", "0"});
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, "--threads must be >= 1");
}

TEST(CliArgs, ShardsZeroRejected) {
  const auto r = parse({"infer", "--shards", "0"});
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, "--shards must be >= 1");
}

TEST(CliArgs, PartiallyNumericTokenRejected) {
  const auto r = parse({"infer", "--threads", "4x"});
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, "invalid value for --threads: '4x' (expected a non-negative integer)");
}

TEST(CliArgs, NegativeSeedRejected) {
  const auto r = parse({"infer", "--seed", "-1"});
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, "invalid value for --seed: '-1' (expected a non-negative integer)");
}

TEST(CliArgs, DaysZeroRejected) {
  const auto r = parse({"infer", "--days", "0"});
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, "--days must be >= 1");
}

// --- missing values ---------------------------------------------------------

TEST(CliArgs, MissingValueForMetricsOut) {
  const auto r = parse({"infer", "--metrics-out"});
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, "missing value for --metrics-out");
}

TEST(CliArgs, MissingValueForSnapshot) {
  const auto r = parse({"query", "--snapshot"});
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, "missing value for --snapshot");
}

TEST(CliArgs, MissingValueForThreads) {
  const auto r = parse({"infer", "--threads"});
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, "missing value for --threads");
}

// --- unknown options --------------------------------------------------------

TEST(CliArgs, UnknownOptionRejected) {
  const auto r = parse({"infer", "--frobnicate"});
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, "unknown option: --frobnicate");
}

// --- enumerated values ------------------------------------------------------

TEST(CliArgs, ScaleValidatesMembers) {
  EXPECT_TRUE(parse({"infer", "--scale", "tiny"}).opt.tiny);
  EXPECT_FALSE(parse({"infer", "--scale", "full"}).opt.tiny);
  const auto r = parse({"infer", "--scale", "medium"});
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, "invalid value for --scale: 'medium' (expected tiny or full)");
}

// --- hilbert (two-token option) --------------------------------------------

TEST(CliArgs, HilbertTakesOctetAndPath) {
  const auto r = parse({"infer", "--hilbert", "60", "map.pgm"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.opt.hilbert_octet, 60);
  EXPECT_EQ(r.opt.hilbert_path, "map.pgm");
}

TEST(CliArgs, HilbertOctetRangeChecked) {
  const auto r = parse({"infer", "--hilbert", "256", "map.pgm"});
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, "--hilbert octet must be in [0, 255]");
}

TEST(CliArgs, HilbertMissingPath) {
  const auto r = parse({"infer", "--hilbert", "60"});
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, "missing output path for --hilbert");
}

// --- query surface ----------------------------------------------------------

TEST(CliArgs, QueryOptionsParse) {
  const auto r = parse({"query", "--snapshot", "run.snap", "--ips", "-", "--bench",
                        "--lookups", "5000000", "--metrics-out", "m.json"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.opt.snapshot_path, "run.snap");
  EXPECT_EQ(r.opt.ips_path, "-");
  EXPECT_TRUE(r.opt.bench);
  EXPECT_EQ(r.opt.bench_lookups, 5'000'000u);
  EXPECT_EQ(r.opt.metrics_path, "m.json");
}

TEST(CliArgs, LookupsZeroRejected) {
  const auto r = parse({"query", "--lookups", "0"});
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, "--lookups must be >= 1");
}

// --- serve surface ----------------------------------------------------------

TEST(CliArgs, ServeDefaults) {
  const auto r = parse({"serve"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.opt.port, -1);  // unset: cmd_serve demands an explicit --port
  EXPECT_EQ(r.opt.max_conns, 1024u);
  EXPECT_EQ(r.opt.idle_timeout_ms, 30'000u);
}

TEST(CliArgs, ServeOptionsParse) {
  const auto r = parse({"serve", "--snapshot", "run.snap", "--port", "7070",
                        "--max-conns", "64", "--idle-timeout-ms", "5000",
                        "--metrics-out", "m.json"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.opt.snapshot_path, "run.snap");
  EXPECT_EQ(r.opt.port, 7070);
  EXPECT_EQ(r.opt.max_conns, 64u);
  EXPECT_EQ(r.opt.idle_timeout_ms, 5000u);
  EXPECT_EQ(r.opt.metrics_path, "m.json");
}

TEST(CliArgs, ServePortZeroIsEphemeral) {
  const auto r = parse({"serve", "--port", "0"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.opt.port, 0);
}

TEST(CliArgs, ServePortRangeChecked) {
  const auto r = parse({"serve", "--port", "65536"});
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, "--port must be in [0, 65535]");
}

TEST(CliArgs, ServeMaxConnsZeroRejected) {
  const auto r = parse({"serve", "--max-conns", "0"});
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, "--max-conns must be >= 1");
}

TEST(CliArgs, ServeIdleTimeoutZeroRejected) {
  const auto r = parse({"serve", "--idle-timeout-ms", "0"});
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, "--idle-timeout-ms must be >= 1");
}

TEST(CliArgs, MissingValueForPort) {
  const auto r = parse({"serve", "--port"});
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, "missing value for --port");
}

TEST(CliArgs, ServeReactorsParses) {
  const auto r = parse({"serve", "--port", "7070", "--reactors", "4"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.opt.reactors, 4u);
}

TEST(CliArgs, ServeReactorsDefaultsToOne) {
  const auto r = parse({"serve", "--port", "7070"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.opt.reactors, 1u);
}

TEST(CliArgs, ServeReactorsZeroRejected) {
  const auto r = parse({"serve", "--reactors", "0"});
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, "--reactors must be >= 1");
}

TEST(CliArgs, ServeReactorsRangeChecked) {
  const auto r = parse({"serve", "--reactors", "257"});
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, "--reactors must be in [1, 256]");
}

// --- loadgen surface --------------------------------------------------------

TEST(CliArgs, LoadgenDefaults) {
  const auto r = parse({"loadgen"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.opt.command, "loadgen");
  EXPECT_EQ(r.opt.host, "127.0.0.1");
  EXPECT_EQ(r.opt.load_mode, "open");
  EXPECT_TRUE(r.opt.steps.empty());  // cmd_loadgen demands explicit --steps
  EXPECT_EQ(r.opt.conns, 4u);
  EXPECT_EQ(r.opt.warmup_ms, 200u);
  EXPECT_EQ(r.opt.measure_ms, 1000u);
  EXPECT_EQ(r.opt.cooldown_ms, 200u);
}

TEST(CliArgs, LoadgenOptionsParse) {
  const auto r = parse({"loadgen", "--port", "7070", "--host", "10.0.0.9",
                        "--mode", "closed", "--steps", "1000,5000", "--conns", "8",
                        "--warmup-ms", "50", "--measure-ms", "500",
                        "--cooldown-ms", "100", "--out", "curve.json"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.opt.port, 7070);
  EXPECT_EQ(r.opt.host, "10.0.0.9");
  EXPECT_EQ(r.opt.load_mode, "closed");
  EXPECT_EQ(r.opt.steps, "1000,5000");
  EXPECT_EQ(r.opt.conns, 8u);
  EXPECT_EQ(r.opt.warmup_ms, 50u);
  EXPECT_EQ(r.opt.measure_ms, 500u);
  EXPECT_EQ(r.opt.cooldown_ms, 100u);
  EXPECT_EQ(r.opt.stream_out, "curve.json");
}

TEST(CliArgs, LoadgenModeValidatesMembers) {
  const auto r = parse({"loadgen", "--mode", "sideways"});
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, "invalid value for --mode: 'sideways' (expected open or closed)");
}

TEST(CliArgs, ProtoDefaultsToLineAndValidatesMembers) {
  const auto defaulted = parse({"loadgen"});
  ASSERT_TRUE(defaulted.ok) << defaulted.error;
  EXPECT_EQ(defaulted.opt.proto, "line");

  const auto binary = parse({"loadgen", "--proto", "binary"});
  ASSERT_TRUE(binary.ok) << binary.error;
  EXPECT_EQ(binary.opt.proto, "binary");

  // Shared with query --bench: the same flag selects the measured codec.
  const auto bench = parse({"query", "--bench", "--proto", "binary"});
  ASSERT_TRUE(bench.ok) << bench.error;
  EXPECT_TRUE(bench.opt.bench);
  EXPECT_EQ(bench.opt.proto, "binary");

  const auto bad = parse({"loadgen", "--proto", "mtbin"});
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(bad.error, "invalid value for --proto: 'mtbin' (expected line or binary)");
}

TEST(CliArgs, LoadgenMeasureZeroRejected) {
  const auto r = parse({"loadgen", "--measure-ms", "0"});
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, "--measure-ms must be >= 1");
}

TEST(CliArgs, LoadgenWarmupZeroAccepted) {
  const auto r = parse({"loadgen", "--warmup-ms", "0", "--cooldown-ms", "0"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.opt.warmup_ms, 0u);
  EXPECT_EQ(r.opt.cooldown_ms, 0u);
}

// --- snapshot-out + usage text ---------------------------------------------

TEST(CliArgs, SnapshotOutParses) {
  const auto r = parse({"infer", "--snapshot-out", "run.snap"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.opt.snapshot_out, "run.snap");
}

TEST(CliArgs, UsageTextMentionsEveryCommand) {
  const std::string usage = cli::usage_text();
  for (const char* cmd : {"infer", "query", "serve", "loadgen", "stream", "ingest", "analyze",
                          "capture", "datasets", "ports"}) {
    EXPECT_NE(usage.find(cmd), std::string::npos) << cmd;
  }
  EXPECT_NE(usage.find("--snapshot-out"), std::string::npos);
  EXPECT_NE(usage.find("--bench"), std::string::npos);
  EXPECT_NE(usage.find("--port"), std::string::npos);
  EXPECT_NE(usage.find("--idle-timeout-ms"), std::string::npos);
  EXPECT_NE(usage.find("--reactors"), std::string::npos);
  EXPECT_NE(usage.find("--steps"), std::string::npos);
  EXPECT_NE(usage.find("--mode"), std::string::npos);
  EXPECT_NE(usage.find("--proto line|binary"), std::string::npos);
  EXPECT_NE(usage.find("--analytics"), std::string::npos);
  EXPECT_NE(usage.find("--query"), std::string::npos);
}

// --- analyze ----------------------------------------------------------------

TEST(CliArgs, AnalyzeDefaults) {
  const auto r = parse({"analyze"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.opt.snapshot_path.empty());
  EXPECT_TRUE(r.opt.analyze_query.empty());
  EXPECT_EQ(r.opt.top, 10u);
  EXPECT_FALSE(r.opt.analytics);
}

TEST(CliArgs, AnalyzeOptionsParse) {
  const auto r = parse(
      {"analyze", "--snapshot", "epoch.snap", "--query", "top-ports 10.0.0.0/8", "--top", "3"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.opt.snapshot_path, "epoch.snap");
  EXPECT_EQ(r.opt.analyze_query, "top-ports 10.0.0.0/8");
  EXPECT_EQ(r.opt.top, 3u);
}

TEST(CliArgs, AnalyzeQueryRequiresValue) {
  const auto r = parse({"analyze", "--query"});
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, "missing value for --query");
}

TEST(CliArgs, InferAnalyticsFlagParses) {
  const auto r = parse({"infer", "--analytics", "--snapshot-out", "run.snap"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.opt.analytics);
  EXPECT_EQ(r.opt.snapshot_out, "run.snap");
}

}  // namespace
}  // namespace mtscope
