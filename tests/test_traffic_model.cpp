#include "sim/traffic_model.hpp"

#include <gtest/gtest.h>

#include <map>

namespace mtscope::sim {
namespace {

TEST(PortModel, DrawsOnlyKnownPorts) {
  PortModel model;
  util::Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const std::uint16_t port =
        model.scan_port(rng, geo::Continent::kEurope, geo::NetType::kIsp);
    const auto& ports = model.base_ports();
    EXPECT_NE(std::find(ports.begin(), ports.end(), port), ports.end());
  }
}

std::map<std::uint16_t, int> sample_ports(const PortModel& model, geo::Continent c,
                                          geo::NetType t, int n = 50'000) {
  util::Rng rng(static_cast<std::uint64_t>(c) * 100 + static_cast<std::uint64_t>(t));
  std::map<std::uint16_t, int> counts;
  for (int i = 0; i < n; ++i) ++counts[model.scan_port(rng, c, t)];
  return counts;
}

TEST(PortModel, Port23DominatesInEurope) {
  PortModel model;
  const auto counts = sample_ports(model, geo::Continent::kEurope, geo::NetType::kIsp);
  for (const auto& [port, count] : counts) {
    if (port != 23) {
      EXPECT_GE(counts.at(23), count) << port;
    }
  }
}

TEST(PortModel, SatoriPortsHotInAfrica) {
  PortModel model;
  const auto af = sample_ports(model, geo::Continent::kAfrica, geo::NetType::kIsp);
  const auto eu = sample_ports(model, geo::Continent::kEurope, geo::NetType::kIsp);
  // Ports 37215 and 52869 must be strongly over-represented in AF.
  EXPECT_GT(af.at(37215), 4 * eu.at(37215));
  EXPECT_GT(af.at(52869), 4 * eu.at(52869));
}

TEST(PortModel, Port6001HotInOceania) {
  PortModel model;
  const auto oc = sample_ports(model, geo::Continent::kOceania, geo::NetType::kIsp);
  const auto eu = sample_ports(model, geo::Continent::kEurope, geo::NetType::kIsp);
  EXPECT_GT(oc.at(6001), 3 * eu.at(6001));
}

TEST(PortModel, Port80HotterInDataCenters) {
  PortModel model;
  const auto dc = sample_ports(model, geo::Continent::kNorthAmerica, geo::NetType::kDataCenter);
  const auto isp = sample_ports(model, geo::Continent::kNorthAmerica, geo::NetType::kIsp);
  const double dc_share = static_cast<double>(dc.at(80)) / 50'000;
  const double isp_share = static_cast<double>(isp.at(80)) / 50'000;
  EXPECT_GT(dc_share, 1.5 * isp_share);
}

TEST(BlockTraits, Syn40ShareDistribution) {
  BlockTraits traits(42);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    const double p = traits.syn40_share(net::Block24(static_cast<std::uint32_t>(i)));
    EXPECT_GE(p, 0.30);
    EXPECT_LE(p, 0.99);
    sum += p;
    sum_sq += p * p;
  }
  const double mean = sum / n;
  const double sd = std::sqrt(sum_sq / n - mean * mean);
  EXPECT_NEAR(mean, 0.785, 0.01);
  EXPECT_NEAR(sd, 0.096, 0.015);
}

TEST(BlockTraits, DeterministicPerSeedAndBlock) {
  BlockTraits a(1);
  BlockTraits b(1);
  BlockTraits c(2);
  const net::Block24 block(12345);
  EXPECT_DOUBLE_EQ(a.syn40_share(block), b.syn40_share(block));
  EXPECT_NE(a.syn40_share(block), c.syn40_share(block));
  EXPECT_EQ(a.isp_active_size_class(block), b.isp_active_size_class(block));
}

TEST(BlockTraits, IspSizeClassProportions) {
  BlockTraits traits(7);
  int counts[3] = {0, 0, 0};
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    ++counts[traits.isp_active_size_class(net::Block24(static_cast<std::uint32_t>(i)))];
  }
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.075, 0.01);  // ack-heavy
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.15, 0.01);   // smallish
}

TEST(BlockTraits, LeaseFractionApproximatelyHonoured) {
  BlockTraits traits(9);
  const double fraction = 0.65;
  int leased = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    if (traits.leased_today(net::Block24(static_cast<std::uint32_t>(i)), 3, fraction)) ++leased;
  }
  // Pool fraction plus ~5% symmetric churn keeps the daily rate close.
  EXPECT_NEAR(static_cast<double>(leased) / n, fraction * 0.95 + (1 - fraction) * 0.05, 0.02);
}

TEST(BlockTraits, LeasePoolIsStickyWithChurn) {
  BlockTraits traits(9);
  // Across many blocks: day-to-day flips exist (churn) but are rare.
  int flips = 0;
  int comparisons = 0;
  for (std::uint32_t b = 0; b < 2000; ++b) {
    const bool day0 = traits.leased_today(net::Block24(b), 0, 0.65);
    for (int day = 1; day < 7; ++day) {
      ++comparisons;
      if (traits.leased_today(net::Block24(b), day, 0.65) != day0) ++flips;
    }
  }
  const double flip_rate = static_cast<double>(flips) / comparisons;
  EXPECT_GT(flip_rate, 0.02);   // churn exists
  EXPECT_LT(flip_rate, 0.20);   // but the pool is sticky
}

TEST(DayFactors, ShapesMatchDesign) {
  // Production dips hard on the weekend (days 5, 6).
  EXPECT_LT(DayFactors::production(5), 0.6);
  EXPECT_LT(DayFactors::production(6), 0.6);
  EXPECT_GT(DayFactors::production(2), 0.9);
  // Scanning surges on the report day and never collapses.
  EXPECT_GT(DayFactors::scan(0), DayFactors::scan(3));
  for (int d = 0; d < 7; ++d) EXPECT_GT(DayFactors::scan(d), 0.9);
  // Spoofed DDoS is weekday-heavy.
  EXPECT_GT(DayFactors::spoof(0), DayFactors::spoof(6));
  // Periodic beyond the week.
  EXPECT_DOUBLE_EQ(DayFactors::scan(7), DayFactors::scan(0));
  EXPECT_DOUBLE_EQ(DayFactors::production(-1), DayFactors::production(6));
}

TEST(DrawScanSize, OnlyExpectedSizes) {
  util::Rng rng(5);
  int n40 = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    const std::uint16_t size = draw_scan_size(rng, 0.9);
    EXPECT_TRUE(size == 40 || size == 48 || size == 56) << size;
    if (size == 40) ++n40;
  }
  EXPECT_NEAR(static_cast<double>(n40) / n, 0.9, 0.01);
}

TEST(DrawProductionSize, LargeOnAverage) {
  util::Rng rng(6);
  double sum = 0.0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) sum += draw_production_size(rng);
  EXPECT_GT(sum / n, 500.0);  // far above the 44-byte dark threshold
}

}  // namespace
}  // namespace mtscope::sim
