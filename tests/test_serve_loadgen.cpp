// The stepped load generator (serve/loadgen.hpp): percentile and step-list
// parsing units, the JSON curve writer, and open-/closed-loop smokes
// against a real in-process QueryServer — every step must account for all
// of its requests (sent == received, zero errors) and produce sane
// latency numbers.  Under MTSCOPE_SANITIZE=thread/address this binary
// doubles as the tsan_loadgen_smoke / asan_loadgen_smoke sanitizer
// ctests (sender/receiver threads sharing the in-flight queue, paced
// against a multi-reactor server).
#include "serve/loadgen.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/server.hpp"
#include "serve/snapshot.hpp"

namespace mtscope {
namespace {

// ---------------------------------------------------------------------------
// Nearest-rank percentiles.

TEST(LoadgenPercentile, NearestRankContract) {
  // The caller sorts once and reads every percentile from the same span —
  // the old by-value signature copied and re-sorted per call.
  const std::vector<std::uint64_t> sorted{10, 20, 30, 40, 50};
  EXPECT_EQ(serve::percentile_us(sorted, 50.0), 30u);   // ceil(0.5*5)=3rd
  EXPECT_EQ(serve::percentile_us(sorted, 90.0), 50u);   // ceil(0.9*5)=5th
  EXPECT_EQ(serve::percentile_us(sorted, 99.0), 50u);
  EXPECT_EQ(serve::percentile_us(sorted, 100.0), 50u);
  EXPECT_EQ(serve::percentile_us(sorted, 20.0), 10u);   // ceil(0.2*5)=1st
  EXPECT_EQ(serve::percentile_us(sorted, 1.0), 10u);    // clamps to the 1st
  const std::vector<std::uint64_t> one{7};
  EXPECT_EQ(serve::percentile_us(one, 99.0), 7u);
  EXPECT_EQ(serve::percentile_us({}, 50.0), 0u);  // zero samples must not UB
}

// ---------------------------------------------------------------------------
// Step-list grammar.

TEST(LoadgenSteps, ParsesCommaSeparatedPositives) {
  const auto steps = serve::parse_step_list("1000,5000,20000");
  ASSERT_TRUE(steps.ok());
  EXPECT_EQ(steps.value(), (std::vector<std::uint64_t>{1000, 5000, 20000}));

  const auto single = serve::parse_step_list("42");
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(single.value(), (std::vector<std::uint64_t>{42}));
}

TEST(LoadgenSteps, RejectsMalformedLists) {
  for (const char* bad : {"", "1000,", ",1000", "10,,20", "abc", "10x", "0", "10,0", "-5"}) {
    const auto steps = serve::parse_step_list(bad);
    EXPECT_FALSE(steps.ok()) << "accepted '" << bad << "'";
    if (!steps.ok()) EXPECT_EQ(steps.error().code, "loadgen.steps") << bad;
  }
}

// ---------------------------------------------------------------------------
// Config validation.

TEST(LoadgenConfigCheck, RejectsUnusableConfigs) {
  serve::LoadgenConfig config;
  config.steps = {1000};
  EXPECT_EQ(serve::run_loadgen(config).error().code, "loadgen.config");  // port 0

  config.port = 59999;
  config.steps.clear();
  EXPECT_EQ(serve::run_loadgen(config).error().code, "loadgen.config");  // no steps

  config.steps = {1000};
  config.connections = 0;
  EXPECT_EQ(serve::run_loadgen(config).error().code, "loadgen.config");

  config.connections = 1;
  config.measure_ms = 0;
  EXPECT_EQ(serve::run_loadgen(config).error().code, "loadgen.config");
}

TEST(LoadgenConfigCheck, ConnectFailureIsTyped) {
  serve::LoadgenConfig config;
  config.port = 1;  // nothing listens on tcp/1
  config.steps = {100};
  config.connections = 1;
  const auto run = serve::run_loadgen(config);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.error().code, "loadgen.socket");
}

// ---------------------------------------------------------------------------
// The JSON curve writer: stable shape, parseable by the CI gate.

TEST(LoadgenJson, WritesStableCurveDocument) {
  serve::LoadgenConfig config;
  config.port = 4242;
  config.mode = serve::LoadMode::kClosed;
  config.connections = 2;
  config.steps = {8};

  serve::StepResult step;
  step.target = 8;
  step.sent = 1000;
  step.received = 1000;
  step.samples = 1000;
  step.offered_qps = 2000.0;
  step.achieved_qps = 1999.5;
  step.min_us = 5;
  step.mean_us = 12.25;
  step.p50_us = 11;
  step.p90_us = 20;
  step.p99_us = 42;
  step.max_us = 90;

  std::ostringstream out;
  serve::write_loadgen_json(out, config, {step});
  const std::string json = out.str();
  EXPECT_NE(json.find("\"mode\": \"closed\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"target\": 8"), std::string::npos);
  EXPECT_NE(json.find("\"offered_qps\": 2000.0"), std::string::npos);
  EXPECT_NE(json.find("\"achieved_qps\": 1999.5"), std::string::npos);
  EXPECT_NE(json.find("\"p99\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"mean\": 12.2"), std::string::npos);  // %.1f rounding
  // Balanced braces/brackets — the cheap structural sanity check.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));

  std::ostringstream empty;
  serve::write_loadgen_json(empty, config, {});
  EXPECT_NE(empty.str().find("\"steps\": []"), std::string::npos);
}

// ---------------------------------------------------------------------------
// End to end against a real server.

serve::TelescopeSnapshot tiny_snapshot() {
  serve::TelescopeSnapshot snap;
  snap.meta.seed = 5;
  snap.meta.created_unix_s = 1'700'000'000;
  snap.meta.source = "loadgen test";
  snap.prefixes.push_back(serve::PrefixEntry{0x3c000000u, 65100, 6});  // 60.0.0.0/6
  snap.blocks.push_back(serve::BlockEntry::make(
      net::Block24::containing(net::Ipv4Addr::from_octets(60, 0, 0, 0)),
      serve::BlockClass::kDark, 0));
  snap.dark_count = 1;
  return snap;
}

struct LoadgenServer {
  std::string path;
  std::unique_ptr<serve::QueryServer> server;
  std::thread thread;

  explicit LoadgenServer(int reactors) {
    path = ::testing::TempDir() + "loadgen_target.snap";
    const auto written = serve::write_snapshot_file(tiny_snapshot(), path);
    EXPECT_TRUE(written.ok());
    serve::ServerConfig config;
    config.snapshot_path = path;
    config.port = 0;
    config.reactors = reactors;
    config.max_conns = 64;
    config.max_pending_bytes = 4 * 1024 * 1024;
    server = std::make_unique<serve::QueryServer>(std::move(config));
    const auto started = server->start();
    EXPECT_TRUE(started.ok()) << started.error().to_string();
    thread = std::thread([this] { server->run(); });
  }

  ~LoadgenServer() {
    server->request_stop();
    thread.join();
  }
};

void expect_clean_steps(const std::vector<serve::StepResult>& steps, std::size_t count) {
  ASSERT_EQ(steps.size(), count);
  for (const auto& step : steps) {
    EXPECT_EQ(step.errors, 0u) << "step " << step.target;
    EXPECT_GT(step.samples, 0u) << "step " << step.target;
    // Every measured request was answered: the cool-down phase plus the
    // half-close drain guarantee nothing sampled is still in flight.
    EXPECT_EQ(step.sent, step.samples) << "step " << step.target;
    EXPECT_GT(step.achieved_qps, 0.0);
    EXPECT_LE(step.min_us, step.p50_us);
    EXPECT_LE(step.p50_us, step.p90_us);
    EXPECT_LE(step.p90_us, step.p99_us);
    EXPECT_LE(step.p99_us, step.max_us);
  }
}

TEST(LoadgenRun, OpenLoopSweepAgainstMultiReactorServer) {
  LoadgenServer target(2);
  serve::LoadgenConfig config;
  config.port = target.server->port();
  config.mode = serve::LoadMode::kOpen;
  config.connections = 2;
  config.steps = {2'000, 10'000};
  config.warmup_ms = 50;
  config.measure_ms = 200;
  config.cooldown_ms = 50;
  const auto run = serve::run_loadgen(config);
  ASSERT_TRUE(run.ok()) << run.error().to_string();
  expect_clean_steps(run.value(), 2);
  // The paced open loop offers close to the target; on a loaded CI box
  // allow generous slack but reject an order-of-magnitude miss.
  EXPECT_GT(run.value()[0].offered_qps, 200.0);
  EXPECT_GT(run.value()[1].offered_qps, run.value()[0].offered_qps);
}

TEST(LoadgenRun, BinaryProtocolOpenLoopSweep) {
  LoadgenServer target(2);
  serve::LoadgenConfig config;
  config.port = target.server->port();
  config.mode = serve::LoadMode::kOpen;
  config.proto = serve::WireProtocol::kBinary;
  config.connections = 2;
  config.steps = {2'000, 10'000};
  config.warmup_ms = 50;
  config.measure_ms = 200;
  config.cooldown_ms = 50;
  const auto run = serve::run_loadgen(config);
  ASSERT_TRUE(run.ok()) << run.error().to_string();
  expect_clean_steps(run.value(), 2);
  // Every reply the server produced over MTBIN was a well-formed frame:
  // a framing error (bad CRC, short read) would surface as errors > 0 or
  // a sent/samples mismatch, both rejected by expect_clean_steps.
}

TEST(LoadgenRun, BinaryClosedLoopDepthSweep) {
  LoadgenServer target(1);
  serve::LoadgenConfig config;
  config.port = target.server->port();
  config.mode = serve::LoadMode::kClosed;
  config.proto = serve::WireProtocol::kBinary;
  config.connections = 2;
  config.steps = {1, 8};
  config.warmup_ms = 50;
  config.measure_ms = 200;
  config.cooldown_ms = 50;
  const auto run = serve::run_loadgen(config);
  ASSERT_TRUE(run.ok()) << run.error().to_string();
  expect_clean_steps(run.value(), 2);
  EXPECT_GT(run.value()[1].received, run.value()[0].received);
}

TEST(LoadgenRun, ClosedLoopDepthSweep) {
  LoadgenServer target(1);
  serve::LoadgenConfig config;
  config.port = target.server->port();
  config.mode = serve::LoadMode::kClosed;
  config.connections = 2;
  config.steps = {1, 8};
  config.warmup_ms = 50;
  config.measure_ms = 200;
  config.cooldown_ms = 50;
  const auto run = serve::run_loadgen(config);
  ASSERT_TRUE(run.ok()) << run.error().to_string();
  expect_clean_steps(run.value(), 2);
  // Depth 8 keeps more requests in flight than depth 1, so it must
  // complete more of them in the same window.
  EXPECT_GT(run.value()[1].received, run.value()[0].received);
}

}  // namespace
}  // namespace mtscope
