#include "util/result.hpp"

#include <gtest/gtest.h>

namespace mtscope::util {
namespace {

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.value(), 42);
}

TEST(Result, HoldsError) {
  Result<int> r(make_error("e.code", "boom"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "e.code");
  EXPECT_EQ(r.error().message, "boom");
  EXPECT_EQ(r.error().to_string(), "e.code: boom");
}

TEST(Result, ValueOnErrorThrows) {
  Result<int> r(make_error("e", "m"));
  EXPECT_THROW((void)r.value(), std::logic_error);
}

TEST(Result, ErrorOnValueThrows) {
  Result<int> r(7);
  EXPECT_THROW((void)r.error(), std::logic_error);
}

TEST(Result, ValueOr) {
  Result<int> good(3);
  Result<int> bad(make_error("e", "m"));
  EXPECT_EQ(good.value_or(9), 3);
  EXPECT_EQ(bad.value_or(9), 9);
}

TEST(Result, ValueOrThrowConvertsError) {
  Result<int> bad(make_error("e", "m"));
  EXPECT_THROW((void)std::move(bad).value_or_throw(), std::runtime_error);
  Result<int> good(5);
  EXPECT_EQ(std::move(good).value_or_throw(), 5);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  const std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

TEST(Result, MutableValueAccess) {
  Result<std::string> r(std::string("a"));
  r.value() += "b";
  EXPECT_EQ(r.value(), "ab");
}

}  // namespace
}  // namespace mtscope::util
