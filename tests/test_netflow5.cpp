#include "flow/netflow5.hpp"

#include <gtest/gtest.h>

namespace mtscope::flow {
namespace {

FlowRecord sample_record(std::uint32_t i) {
  FlowRecord r;
  r.key.src = net::Ipv4Addr(0x0a000000u + i);
  r.key.dst = net::Ipv4Addr(0x2c000000u + i);
  r.key.src_port = static_cast<std::uint16_t>(1024 + i);
  r.key.dst_port = 23;
  r.key.proto = net::IpProto::kTcp;
  r.packets = 1 + i;
  r.bytes = (1 + i) * 40ull;
  r.first_us = 1'000'000ull + i * 1000;
  r.last_us = r.first_us + 5000;
  r.tcp_flags_or = 0x02;
  return r;
}

class NetflowRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(NetflowRoundTrip, KeyFieldsSurvive) {
  std::vector<FlowRecord> records;
  for (std::size_t i = 0; i < GetParam(); ++i) records.push_back(sample_record(i));

  NetflowV5Config config;
  config.sampling_interval = 100;
  NetflowV5Encoder encoder(config);
  // Timestamps round-trip exactly when unix_secs*1000 == uptime_ms (the
  // sysuptime epoch then coincides with the unix epoch).
  const auto datagrams = encoder.encode(records, /*unix_secs=*/10, /*uptime_ms=*/10'000);

  NetflowV5Decoder decoder;
  for (const auto& d : datagrams) {
    auto fed = decoder.feed(d);
    ASSERT_TRUE(fed.ok()) << fed.error().to_string();
  }
  const auto decoded = decoder.drain();
  ASSERT_EQ(decoded.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(decoded[i].key, records[i].key) << i;
    EXPECT_EQ(decoded[i].packets, records[i].packets);
    EXPECT_EQ(decoded[i].bytes, records[i].bytes);
    EXPECT_EQ(decoded[i].tcp_flags_or, records[i].tcp_flags_or);
    EXPECT_EQ(decoded[i].sampling_rate, 100u);
    // Millisecond-resolution timestamps survive exactly (ours are whole ms).
    EXPECT_EQ(decoded[i].first_us, records[i].first_us);
    EXPECT_EQ(decoded[i].last_us, records[i].last_us);
  }
}

INSTANTIATE_TEST_SUITE_P(Counts, NetflowRoundTrip, ::testing::Values(0, 1, 29, 30, 31, 100));

TEST(NetflowV5, ThirtyRecordsPerDatagram) {
  std::vector<FlowRecord> records;
  for (std::size_t i = 0; i < 61; ++i) records.push_back(sample_record(i));
  NetflowV5Encoder encoder;
  const auto datagrams = encoder.encode(records, 0, 1'000'000);
  ASSERT_EQ(datagrams.size(), 3u);  // 30 + 30 + 1
  EXPECT_EQ(datagrams[0].size(), 24u + 30 * 48u);
  EXPECT_EQ(datagrams[2].size(), 24u + 1 * 48u);
  EXPECT_EQ(encoder.flow_sequence(), 61u);
}

TEST(NetflowV5, RejectsGarbage) {
  NetflowV5Decoder decoder;
  const std::vector<std::uint8_t> tiny = {0, 5, 0, 1};
  EXPECT_EQ(decoder.feed(tiny).error().code, "netflow5.truncated");

  std::vector<std::uint8_t> wrong_version(24, 0);
  wrong_version[1] = 9;
  EXPECT_EQ(decoder.feed(wrong_version).error().code, "netflow5.version");

  std::vector<std::uint8_t> bad_count(24, 0);
  bad_count[1] = 5;
  bad_count[3] = 31;  // > 30 records
  EXPECT_EQ(decoder.feed(bad_count).error().code, "netflow5.count");

  std::vector<std::uint8_t> short_body(24 + 10, 0);
  short_body[1] = 5;
  short_body[3] = 1;
  EXPECT_EQ(decoder.feed(short_body).error().code, "netflow5.truncated");
}

TEST(NetflowV5, ConfigValidation) {
  NetflowV5Config zero;
  zero.sampling_interval = 0;
  EXPECT_THROW(NetflowV5Encoder{zero}, std::invalid_argument);
  NetflowV5Config wide;
  wide.sampling_interval = 0x4000;
  EXPECT_THROW(NetflowV5Encoder{wide}, std::invalid_argument);
}

TEST(NetflowV5, SamplingDefaultsToOneWhenZeroOnWire) {
  // A datagram whose sampling field is zero must not divide by zero.
  NetflowV5Encoder encoder;  // interval 1, mode bits set
  std::vector<FlowRecord> records = {sample_record(0)};
  auto datagrams = encoder.encode(records, 0, 10'000);
  auto& d = datagrams[0];
  d[22] = 0;  // clear the sampling field entirely
  d[23] = 0;
  NetflowV5Decoder decoder;
  ASSERT_TRUE(decoder.feed(d).ok());
  EXPECT_EQ(decoder.drain()[0].sampling_rate, 1u);
}

}  // namespace
}  // namespace mtscope::flow
