#include "flow/sampler.hpp"

#include <gtest/gtest.h>

namespace mtscope::flow {
namespace {

TEST(DeterministicSampler, EveryNth) {
  DeterministicSampler s(4);
  int accepted = 0;
  std::vector<int> hits;
  for (int i = 0; i < 16; ++i) {
    if (s.accept()) {
      ++accepted;
      hits.push_back(i);
    }
  }
  EXPECT_EQ(accepted, 4);
  // Strictly periodic: gaps of exactly 4.
  for (std::size_t i = 1; i < hits.size(); ++i) EXPECT_EQ(hits[i] - hits[i - 1], 4);
}

TEST(DeterministicSampler, RateOneAcceptsAll) {
  DeterministicSampler s(1);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(s.accept());
}

TEST(DeterministicSampler, PhaseShiftsFirstAccept) {
  DeterministicSampler a(4, 0);
  DeterministicSampler b(4, 2);
  int first_a = -1;
  int first_b = -1;
  for (int i = 0; i < 8; ++i) {
    if (a.accept() && first_a < 0) first_a = i;
    if (b.accept() && first_b < 0) first_b = i;
  }
  EXPECT_NE(first_a, first_b);
}

TEST(DeterministicSampler, ZeroRateRejected) {
  EXPECT_THROW(DeterministicSampler(0), std::invalid_argument);
}

class ProbabilisticRate : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ProbabilisticRate, LongRunFrequencyMatches) {
  const std::uint32_t rate = GetParam();
  ProbabilisticSampler s(rate, util::Rng(rate * 977));
  const int n = 200'000;
  int accepted = 0;
  for (int i = 0; i < n; ++i) {
    if (s.accept()) ++accepted;
  }
  const double expected = static_cast<double>(n) / rate;
  EXPECT_NEAR(accepted, expected, 5.0 * std::sqrt(expected) + 1);
}

INSTANTIATE_TEST_SUITE_P(Rates, ProbabilisticRate, ::testing::Values(1, 2, 10, 100, 1000));

TEST(ProbabilisticSampler, ZeroRateRejected) {
  EXPECT_THROW(ProbabilisticSampler(0, util::Rng(1)), std::invalid_argument);
}

}  // namespace
}  // namespace mtscope::flow
