#include "telemetry/topk.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace mtscope::telemetry {
namespace {

TEST(SpaceSaving, ExactUnderCapacity) {
  SpaceSaving<int> sketch(10);
  sketch.add(1, 5);
  sketch.add(2, 3);
  sketch.add(1, 2);
  EXPECT_EQ(sketch.estimate(1), 7u);
  EXPECT_EQ(sketch.estimate(2), 3u);
  EXPECT_EQ(sketch.estimate(99), 0u);
  const auto top = sketch.top(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key, 1);
  EXPECT_EQ(top[0].overestimate, 0u);
}

TEST(SpaceSaving, TopTruncatesAndOrders) {
  SpaceSaving<int> sketch(10);
  for (int i = 0; i < 8; ++i) sketch.add(i, static_cast<std::uint64_t>(i + 1));
  const auto top = sketch.top(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].key, 7);
  EXPECT_EQ(top[1].key, 6);
  EXPECT_EQ(top[2].key, 5);
}

TEST(SpaceSaving, EvictionKeepsHeavyHitters) {
  // One dominant key among a stream of one-off keys must survive.
  SpaceSaving<int> sketch(8);
  util::Rng rng(3);
  for (int i = 0; i < 10'000; ++i) {
    sketch.add(-1, 5);                                    // heavy
    sketch.add(static_cast<int>(rng.uniform(100'000)));   // noise
  }
  const auto top = sketch.top(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].key, -1);
  // Estimate >= true count (Space-Saving never underestimates monitored keys).
  EXPECT_GE(top[0].count, 50'000u);
}

TEST(SpaceSaving, OverestimateBoundedByMinCount) {
  SpaceSaving<int> sketch(2);
  sketch.add(1, 10);
  sketch.add(2, 20);
  sketch.add(3, 1);  // evicts key 1 (min count 10), inherits its count
  EXPECT_EQ(sketch.estimate(3), 11u);
  const auto top = sketch.top(2);
  const auto entry3 = top[1];
  EXPECT_EQ(entry3.key, 3);
  EXPECT_EQ(entry3.overestimate, 10u);
}

TEST(SpaceSaving, CapacityRespected) {
  SpaceSaving<int> sketch(4);
  for (int i = 0; i < 100; ++i) sketch.add(i);
  EXPECT_EQ(sketch.size(), 4u);
  EXPECT_EQ(sketch.capacity(), 4u);
}

TEST(SpaceSaving, ZeroCapacityRejected) {
  EXPECT_THROW(SpaceSaving<int>(0), std::invalid_argument);
}

TEST(SpaceSaving, DeterministicTieBreak) {
  SpaceSaving<int> sketch(4);
  sketch.add(5, 2);
  sketch.add(3, 2);
  const auto top = sketch.top(2);
  EXPECT_EQ(top[0].key, 3);  // equal counts -> smaller key first
}

}  // namespace
}  // namespace mtscope::telemetry
