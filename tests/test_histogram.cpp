#include "telemetry/histogram.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace mtscope::telemetry {
namespace {

TEST(Histogram, MeanAndMedianExact) {
  Histogram h(0, 100);
  h.add(10);
  h.add(20);
  h.add(30);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
  EXPECT_EQ(h.median(), 20u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, WeightedAdd) {
  Histogram h(0, 100);
  h.add(40, 93);
  h.add(48, 7);
  EXPECT_NEAR(h.mean(), (40.0 * 93 + 48.0 * 7) / 100.0, 1e-9);
  EXPECT_EQ(h.median(), 40u);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(20, 1500);
  h.add(5);      // below min
  h.add(90000);  // above max
  EXPECT_EQ(h.count_of(20), 1u);
  EXPECT_EQ(h.count_of(1500), 1u);
}

TEST(Histogram, QuantilesAgainstSortedVector) {
  Histogram h(0, 1000);
  util::Rng rng(42);
  std::vector<std::uint32_t> values;
  for (int i = 0; i < 5000; ++i) {
    const auto v = static_cast<std::uint32_t>(rng.uniform(1001));
    values.push_back(v);
    h.add(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.9, 0.999, 1.0}) {
    // Documented contract: the smallest v with at least ceil(q*total)
    // observations <= v, i.e. 0-indexed rank max(1, ceil(q*n)) - 1.
    const auto need = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(q * static_cast<double>(values.size()) - 1e-9)));
    EXPECT_EQ(h.quantile(q), values[need - 1]) << "q=" << q;
  }
}

TEST(Histogram, CountAtMost) {
  Histogram h(0, 10);
  h.add(3);
  h.add(5);
  h.add(5);
  h.add(9);
  EXPECT_EQ(h.count_at_most(2), 0u);
  EXPECT_EQ(h.count_at_most(3), 1u);
  EXPECT_EQ(h.count_at_most(5), 3u);
  EXPECT_EQ(h.count_at_most(100), 4u);
}

TEST(Histogram, EmptyBehaviour) {
  Histogram h(0, 10);
  EXPECT_TRUE(h.empty());
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_THROW((void)h.quantile(0.5), std::logic_error);
}

TEST(Histogram, MergeSumsEverything) {
  Histogram a(0, 100);
  Histogram b(0, 100);
  a.add(10, 5);
  b.add(20, 5);
  a.merge(b);
  EXPECT_EQ(a.total(), 10u);
  EXPECT_DOUBLE_EQ(a.mean(), 15.0);

  Histogram incompatible(0, 50);
  EXPECT_THROW(a.merge(incompatible), std::invalid_argument);
}

TEST(Histogram, InvalidRangeRejected) {
  EXPECT_THROW(Histogram(10, 5), std::invalid_argument);
}

TEST(Histogram, PacketSizeFactory) {
  Histogram h = make_packet_size_histogram();
  h.add(40);
  h.add(1500);
  EXPECT_EQ(h.total(), 2u);
  EXPECT_EQ(h.median(), 40u);
}

TEST(Histogram, MedianBoundaryBetweenTwoValues) {
  Histogram h(0, 100);
  h.add(40, 50);
  h.add(48, 50);
  // Even split: ceil(0.5*100) = 50 observations are <= 40 already.
  EXPECT_EQ(h.median(), 40u);
  h.add(48);  // tip the balance: ceil(0.5*101) = 51 needs a 48
  EXPECT_EQ(h.median(), 48u);
}

TEST(Histogram, QuantileBoundariesAtPacketSizeThresholds) {
  // Regression for the documented contract (smallest v such that at least
  // ceil(q*total) observations are <= v).  The old implementation walked to
  // rank q*(total-1), which under-reports exactly at bin boundaries — the
  // thresholds the paper's size filter cares about.
  Histogram h(0, 100);
  for (const std::uint32_t v : {40, 42, 44, 46}) h.add(v, 4);  // total 16

  EXPECT_EQ(h.quantile(0.0), 40u);    // clamps to the first observation
  EXPECT_EQ(h.quantile(0.25), 40u);   // need 4, all at 40
  EXPECT_EQ(h.quantile(0.26), 42u);   // need 5 crosses the boundary
  EXPECT_EQ(h.quantile(0.5), 42u);
  EXPECT_EQ(h.quantile(0.75), 44u);
  EXPECT_EQ(h.quantile(0.76), 46u);   // old formula reported 44 here
  EXPECT_EQ(h.quantile(1.0), 46u);

  // Two-and-two: q=0.75 needs 3 observations <= v, so the answer is 44;
  // the old rank-walk returned 40.
  Histogram pair(0, 100);
  pair.add(40, 2);
  pair.add(44, 2);
  EXPECT_EQ(pair.quantile(0.75), 44u);
}

TEST(Histogram, QuantileImmuneToFloatingPointNoise) {
  // 0.1 * 30 is 3.0000000000000004 in doubles; without the epsilon guard
  // ceil() would demand a 4th observation and skip past the true answer.
  Histogram h(0, 10);
  h.add(1, 3);
  h.add(2, 27);
  EXPECT_EQ(h.quantile(0.1), 1u);
}

}  // namespace
}  // namespace mtscope::telemetry
