#include "telemetry/histogram.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.hpp"

namespace mtscope::telemetry {
namespace {

TEST(Histogram, MeanAndMedianExact) {
  Histogram h(0, 100);
  h.add(10);
  h.add(20);
  h.add(30);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
  EXPECT_EQ(h.median(), 20u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, WeightedAdd) {
  Histogram h(0, 100);
  h.add(40, 93);
  h.add(48, 7);
  EXPECT_NEAR(h.mean(), (40.0 * 93 + 48.0 * 7) / 100.0, 1e-9);
  EXPECT_EQ(h.median(), 40u);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(20, 1500);
  h.add(5);      // below min
  h.add(90000);  // above max
  EXPECT_EQ(h.count_of(20), 1u);
  EXPECT_EQ(h.count_of(1500), 1u);
}

TEST(Histogram, QuantilesAgainstSortedVector) {
  Histogram h(0, 1000);
  util::Rng rng(42);
  std::vector<std::uint32_t> values;
  for (int i = 0; i < 5000; ++i) {
    const auto v = static_cast<std::uint32_t>(rng.uniform(1001));
    values.push_back(v);
    h.add(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.9, 0.999, 1.0}) {
    const auto rank = static_cast<std::size_t>(q * (values.size() - 1));
    EXPECT_EQ(h.quantile(q), values[rank]) << "q=" << q;
  }
}

TEST(Histogram, CountAtMost) {
  Histogram h(0, 10);
  h.add(3);
  h.add(5);
  h.add(5);
  h.add(9);
  EXPECT_EQ(h.count_at_most(2), 0u);
  EXPECT_EQ(h.count_at_most(3), 1u);
  EXPECT_EQ(h.count_at_most(5), 3u);
  EXPECT_EQ(h.count_at_most(100), 4u);
}

TEST(Histogram, EmptyBehaviour) {
  Histogram h(0, 10);
  EXPECT_TRUE(h.empty());
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_THROW((void)h.quantile(0.5), std::logic_error);
}

TEST(Histogram, MergeSumsEverything) {
  Histogram a(0, 100);
  Histogram b(0, 100);
  a.add(10, 5);
  b.add(20, 5);
  a.merge(b);
  EXPECT_EQ(a.total(), 10u);
  EXPECT_DOUBLE_EQ(a.mean(), 15.0);

  Histogram incompatible(0, 50);
  EXPECT_THROW(a.merge(incompatible), std::invalid_argument);
}

TEST(Histogram, InvalidRangeRejected) {
  EXPECT_THROW(Histogram(10, 5), std::invalid_argument);
}

TEST(Histogram, PacketSizeFactory) {
  Histogram h = make_packet_size_histogram();
  h.add(40);
  h.add(1500);
  EXPECT_EQ(h.total(), 2u);
  EXPECT_EQ(h.median(), 40u);
}

TEST(Histogram, MedianBoundaryBetweenTwoValues) {
  Histogram h(0, 100);
  h.add(40, 50);
  h.add(48, 50);
  // Even split: rank 49 (0-indexed, q*(n-1)=49.5 floored) lands in the 40s.
  EXPECT_EQ(h.median(), 40u);
  h.add(48);  // tip the balance
  EXPECT_EQ(h.median(), 48u);
}

}  // namespace
}  // namespace mtscope::telemetry
