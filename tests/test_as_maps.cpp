#include "routing/as_maps.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace mtscope::routing {
namespace {

using net::AsNumber;
using net::Ipv4Addr;
using net::Prefix;

TEST(PrefixToAs, ResolveLongestMatch) {
  PrefixToAs map;
  map.add(*Prefix::parse("10.0.0.0/8"), AsNumber(100));
  map.add(*Prefix::parse("10.2.0.0/16"), AsNumber(200));
  EXPECT_EQ(map.resolve(Ipv4Addr::from_octets(10, 2, 3, 4)).value(), AsNumber(200));
  EXPECT_EQ(map.resolve(Ipv4Addr::from_octets(10, 9, 0, 0)).value(), AsNumber(100));
  EXPECT_FALSE(map.resolve(Ipv4Addr::from_octets(11, 0, 0, 0)));
  EXPECT_EQ(map.resolve(net::Block24::containing(Ipv4Addr::from_octets(10, 2, 3, 0))).value(),
            AsNumber(200));
}

TEST(PrefixToAs, SaveLoadRoundTrip) {
  PrefixToAs map;
  map.add(*Prefix::parse("10.0.0.0/8"), AsNumber(100));
  map.add(*Prefix::parse("198.51.100.0/24"), AsNumber(64500));

  std::stringstream buffer;
  map.save(buffer);
  auto loaded = PrefixToAs::load(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.error().to_string();
  EXPECT_EQ(loaded.value().size(), 2u);
  EXPECT_EQ(loaded.value().resolve(Ipv4Addr::from_octets(198, 51, 100, 7)).value(),
            AsNumber(64500));
}

TEST(PrefixToAs, LoadRejectsMalformed) {
  std::stringstream bad_fields("10.0.0.0 8\n");
  EXPECT_FALSE(PrefixToAs::load(bad_fields).ok());
  std::stringstream bad_len("10.0.0.0 33 100\n");
  EXPECT_FALSE(PrefixToAs::load(bad_len).ok());
  std::stringstream bad_addr("10.0.0 8 100\n");
  EXPECT_FALSE(PrefixToAs::load(bad_addr).ok());
}

TEST(PrefixToAs, LoadSkipsCommentsAndBlanks) {
  std::stringstream in("# caida-style comment\n\n10.0.0.0\t8\t77\n");
  auto loaded = PrefixToAs::load(in);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), 1u);
}

TEST(AsToOrg, ResolveAndRoundTrip) {
  AsToOrg map;
  map.add(AsNumber(100), {"ORG-1", "Example Net", "DE"});
  map.add(AsNumber(200), {"ORG-2", "Other Org", "US"});

  const Organization* org = map.resolve(AsNumber(100));
  ASSERT_NE(org, nullptr);
  EXPECT_EQ(org->name, "Example Net");
  EXPECT_EQ(map.resolve(AsNumber(999)), nullptr);

  std::stringstream buffer;
  map.save(buffer);
  auto loaded = AsToOrg::load(buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), 2u);
  EXPECT_EQ(loaded.value().resolve(AsNumber(200))->country, "US");
}

TEST(AsToOrg, SaveIsSortedByAsn) {
  AsToOrg map;
  map.add(AsNumber(300), {"c", "C", "FR"});
  map.add(AsNumber(100), {"a", "A", "DE"});
  std::stringstream buffer;
  map.save(buffer);
  const std::string text = buffer.str();
  EXPECT_LT(text.find("100|"), text.find("300|"));
}

TEST(AsToOrg, LoadRejectsMalformed) {
  std::stringstream bad("not-a-number|x|y|z\n");
  EXPECT_FALSE(AsToOrg::load(bad).ok());
  std::stringstream missing("100|x|y\n");
  EXPECT_FALSE(AsToOrg::load(missing).ok());
}

}  // namespace
}  // namespace mtscope::routing
