#include "sim/generators.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/simulation.hpp"

namespace mtscope::sim {
namespace {

class GeneratorsTest : public ::testing::Test {
 protected:
  static const Simulation& simulation() {
    static const Simulation instance{SimConfig::tiny(11)};
    return instance;
  }
};

TEST_F(GeneratorsTest, TimestampsWithinDayWindow) {
  const auto day = simulation().run_ixp_day(0, 2);
  for (const auto& flow : day.flows) {
    EXPECT_GE(flow.first_us, 2ull * kDayUs);
    EXPECT_LT(flow.last_us, 3ull * kDayUs);
    EXPECT_LE(flow.first_us, flow.last_us);
  }
}

TEST_F(GeneratorsTest, ScanPacketsUseExpectedSizes) {
  // Telescope capture contains only IBR; every TCP packet must be one of
  // the scan/backscatter sizes.
  const auto capture = simulation().run_telescope_day(0, 0);
  ASSERT_FALSE(capture.packets.empty());
  for (const auto& p : capture.packets) {
    if (p.proto == net::IpProto::kTcp) {
      EXPECT_TRUE(p.ip_length == 40 || p.ip_length == 44 || p.ip_length == 48 ||
                  p.ip_length == 56)
          << p.ip_length;
    }
  }
}

TEST_F(GeneratorsTest, TelescopeCaptureIsSynDominated) {
  const auto capture = simulation().run_telescope_day(0, 0);
  std::uint64_t tcp = 0;
  std::uint64_t tcp40 = 0;
  for (const auto& p : capture.packets) {
    if (p.proto == net::IpProto::kTcp) {
      ++tcp;
      if (p.ip_length == 40) ++tcp40;
    }
  }
  ASSERT_GT(tcp, 1000u);
  // Paper: >= 93% of telescope TCP packets are 40 bytes.  Allow slack for
  // backscatter mixing.
  EXPECT_GT(static_cast<double>(tcp40) / static_cast<double>(tcp), 0.70);
}

TEST_F(GeneratorsTest, Teu1BlockedPortsAbsent) {
  // Telescope index 1 = TEU1, which blocks 23 and 445 at its ingress.
  const auto capture = simulation().run_telescope_day(1, 0);
  for (const auto& p : capture.packets) {
    if (p.proto == net::IpProto::kTcp) {
      EXPECT_NE(p.dst_port, 23);
      EXPECT_NE(p.dst_port, 445);
    }
  }
}

TEST_F(GeneratorsTest, Tus1SeesBlockedPorts) {
  const auto capture = simulation().run_telescope_day(0, 0);
  std::uint64_t port23 = 0;
  for (const auto& p : capture.packets) {
    if (p.proto == net::IpProto::kTcp && p.dst_port == 23) ++port23;
  }
  EXPECT_GT(port23, 0u);
}

TEST_F(GeneratorsTest, Teu2ReceivesMoreUdp) {
  const auto tus1 = simulation().run_telescope_day(0, 0);
  const auto teu2 = simulation().run_telescope_day(2, 0);
  const auto udp_share = [](const std::vector<flow::PacketMeta>& packets) {
    std::uint64_t udp = 0;
    for (const auto& p : packets) {
      if (p.proto == net::IpProto::kUdp) ++udp;
    }
    return static_cast<double>(udp) / static_cast<double>(packets.size());
  };
  EXPECT_GT(udp_share(teu2.packets), 2.0 * udp_share(tus1.packets));
}

TEST_F(GeneratorsTest, CaptureTargetsStayInsideTelescope) {
  const auto& telescope = simulation().plan().telescopes()[0];
  trie::Block24Set members;
  for (const net::Block24 block : telescope.blocks) members.insert(block);
  const auto capture = simulation().run_telescope_day(0, 0);
  for (const auto& p : capture.packets) {
    EXPECT_TRUE(members.contains(net::Block24::containing(p.dst)));
  }
}

TEST_F(GeneratorsTest, IspWeekLabelsArePlausible) {
  const auto observations = simulation().run_isp_week();
  ASSERT_FALSE(observations.empty());

  std::size_t dark_with_zero_tx = 0;
  std::size_t dark_total = 0;
  std::size_t active_total = 0;
  std::size_t active_high_tx = 0;
  for (const auto& obs : observations) {
    EXPECT_GT(obs.inbound.counters().rx_packets, 0u) << "every block receives IBR";
    if (obs.role == BlockRole::kDark || obs.role == BlockRole::kTelescope) {
      ++dark_total;
      if (obs.tx_packets_week == 0) ++dark_with_zero_tx;
    } else if (obs.role == BlockRole::kActive) {
      ++active_total;
      if (obs.tx_packets_week > 10'000) ++active_high_tx;
    }
  }
  ASSERT_GT(dark_total, 0u);
  ASSERT_GT(active_total, 0u);
  // ~5% spoof contamination: most dark blocks never send.
  EXPECT_GT(static_cast<double>(dark_with_zero_tx) / dark_total, 0.85);
  // Active blocks send far above the scaled 10M/week threshold.
  EXPECT_GT(static_cast<double>(active_high_tx) / active_total, 0.95);
}

TEST_F(GeneratorsTest, IspDarkBlocksLookLikeIbr) {
  const auto observations = simulation().run_isp_week();
  for (const auto& obs : observations) {
    if (obs.role == BlockRole::kTelescope) {
      EXPECT_LE(obs.inbound.avg_tcp_packet_size(), 50.0);
      EXPECT_DOUBLE_EQ(obs.inbound.median_tcp_packet_size(), 40.0);
    }
  }
}

TEST_F(GeneratorsTest, DeterministicAcrossRuns) {
  const auto a = simulation().run_ixp_day(1, 4);
  const auto b = simulation().run_ixp_day(1, 4);
  EXPECT_EQ(a.sampled_packets, b.sampled_packets);
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) EXPECT_EQ(a.flows[i], b.flows[i]);
}

TEST_F(GeneratorsTest, DifferentDaysDiffer) {
  const auto a = simulation().run_ixp_day(0, 0);
  const auto b = simulation().run_ixp_day(0, 1);
  EXPECT_NE(a.sampled_packets, b.sampled_packets);
}

}  // namespace
}  // namespace mtscope::sim
