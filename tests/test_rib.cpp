#include "routing/rib.hpp"

#include <gtest/gtest.h>

namespace mtscope::routing {
namespace {

using net::AsNumber;
using net::Block24;
using net::Ipv4Addr;
using net::Prefix;

Prefix p(const char* text) { return *Prefix::parse(text); }

TEST(Rib, AnnounceLookupWithdraw) {
  Rib rib;
  EXPECT_TRUE(rib.announce(p("10.0.0.0/8"), AsNumber(100)));
  EXPECT_FALSE(rib.announce(p("10.0.0.0/8"), AsNumber(200)));  // implicit replace
  EXPECT_EQ(rib.size(), 1u);

  const auto match = rib.lookup(Ipv4Addr::from_octets(10, 5, 5, 5));
  ASSERT_TRUE(match);
  EXPECT_EQ(match->second.origin, AsNumber(200));

  EXPECT_TRUE(rib.withdraw(p("10.0.0.0/8")));
  EXPECT_FALSE(rib.withdraw(p("10.0.0.0/8")));
  EXPECT_FALSE(rib.lookup(Ipv4Addr::from_octets(10, 5, 5, 5)));
}

TEST(Rib, LongestMatchWins) {
  Rib rib;
  rib.announce(p("10.0.0.0/8"), AsNumber(8));
  rib.announce(p("10.64.0.0/10"), AsNumber(10));
  EXPECT_EQ(rib.origin_of(Ipv4Addr::from_octets(10, 64, 0, 1)).value(), AsNumber(10));
  EXPECT_EQ(rib.origin_of(Ipv4Addr::from_octets(10, 0, 0, 1)).value(), AsNumber(8));
  EXPECT_FALSE(rib.origin_of(Ipv4Addr::from_octets(11, 0, 0, 1)));
}

TEST(Rib, IsRoutedBlockNeedsFullCoverage) {
  Rib rib;
  rib.announce(p("10.0.0.0/25"), AsNumber(1));  // covers only half the /24
  const Block24 block = Block24::containing(Ipv4Addr::from_octets(10, 0, 0, 0));
  EXPECT_FALSE(rib.is_routed(block));
  EXPECT_TRUE(rib.is_routed(Ipv4Addr::from_octets(10, 0, 0, 1)));

  rib.announce(p("10.0.0.0/24"), AsNumber(2));
  EXPECT_TRUE(rib.is_routed(block));
}

TEST(Rib, AnnouncementsEnumeration) {
  Rib rib;
  rib.announce(p("10.0.0.0/8"), AsNumber(1));
  rib.announce(p("172.16.0.0/12"), AsNumber(2));
  rib.announce(p("192.168.5.0/24"), AsNumber(3));
  EXPECT_EQ(rib.announcements().size(), 3u);
  EXPECT_EQ(rib.announcements_up_to(16).size(), 2u);
  EXPECT_EQ(rib.announcements_up_to(8).size(), 1u);
}

TEST(Rib, MergeExistingWins) {
  Rib a;
  a.announce(p("10.0.0.0/8"), AsNumber(1));
  Rib b;
  b.announce(p("10.0.0.0/8"), AsNumber(99));
  b.announce(p("11.0.0.0/8"), AsNumber(2));
  a.merge(b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.origin_of(Ipv4Addr::from_octets(10, 0, 0, 1)).value(), AsNumber(1));
  EXPECT_EQ(a.origin_of(Ipv4Addr::from_octets(11, 0, 0, 1)).value(), AsNumber(2));
}

TEST(RouteViews, DumpsUnionPerDay) {
  RouteViews views;
  Rib dump1;
  dump1.announce(p("10.0.0.0/8"), AsNumber(1));
  Rib dump2;
  dump2.announce(p("11.0.0.0/8"), AsNumber(2));
  views.add_dump(0, dump1);
  views.add_dump(0, dump2);
  views.add_dump(1, dump1);

  EXPECT_EQ(views.dump_count(0), 2u);
  EXPECT_EQ(views.dump_count(1), 1u);
  EXPECT_EQ(views.daily_rib(0).size(), 2u);
  EXPECT_EQ(views.daily_rib(1).size(), 1u);
  EXPECT_TRUE(views.daily_rib(2).empty());
  EXPECT_EQ(views.dump_count(5), 0u);
}

}  // namespace
}  // namespace mtscope::routing
