#include "pipeline/spoof_tolerance.hpp"

#include <gtest/gtest.h>

namespace mtscope::pipeline {
namespace {

flow::FlowRecord tx_record(std::uint32_t src, std::uint64_t packets) {
  flow::FlowRecord r;
  r.key.src = net::Ipv4Addr(src);
  r.key.dst = net::Ipv4Addr(0x08080808);
  r.key.proto = net::IpProto::kTcp;
  r.packets = packets;
  r.bytes = packets * 40;
  return r;
}

TEST(SpoofTolerance, ZeroWhenNoSpoofing) {
  VantageStats stats;
  const std::uint8_t slash8s[] = {37, 102};
  EXPECT_EQ(compute_spoof_tolerance(stats, slash8s), 0u);
}

TEST(SpoofTolerance, ZeroWhenNoUnroutedGiven) {
  VantageStats stats;
  stats.add_flows(std::vector<flow::FlowRecord>{tx_record(37u << 24, 100)}, 1, 0);
  EXPECT_EQ(compute_spoof_tolerance(stats, {}), 0u);
}

TEST(SpoofTolerance, RankInsideZeroMassIsZero) {
  // A single hit among 131,072 blocks: the 99.99th percentile is still 0...
  // only with a far smaller percentile would it become nonzero.
  VantageStats stats;
  stats.add_flows(std::vector<flow::FlowRecord>{tx_record((37u << 24) | 0x100, 5)}, 1, 0);
  const std::uint8_t slash8s[] = {37, 102};
  SpoofToleranceConfig config;
  config.percentile = 0.5;
  EXPECT_EQ(compute_spoof_tolerance(stats, slash8s, config), 0u);
}

TEST(SpoofTolerance, PercentilePicksTail) {
  VantageStats stats;
  std::vector<flow::FlowRecord> flows;
  // Hit 1% of blocks in 37/8 once and a handful of blocks heavily.
  for (std::uint32_t i = 0; i < 655; ++i) {
    flows.push_back(tx_record((37u << 24) | (i * 100u << 8) | 1, 1));
  }
  for (std::uint32_t i = 0; i < 5; ++i) {
    flows.push_back(tx_record((37u << 24) | ((60000u + i) << 8) | 1, 50));
  }
  stats.add_flows(flows, 1, 0);

  const std::uint8_t slash8s[] = {37, 102};
  // 99.99th percentile over 131,072 blocks: rank 131,059 -> zeros cover
  // 130,412 -> lands in the single-packet mass.
  EXPECT_EQ(compute_spoof_tolerance(stats, slash8s), 1u);

  // 99.999th percentile: rank 131,071 -> lands among the heavy five.
  SpoofToleranceConfig config;
  config.percentile = 0.99999;
  EXPECT_EQ(compute_spoof_tolerance(stats, slash8s, config), 50u);
}

TEST(SpoofTolerance, OnlyCountsGivenSlash8s) {
  VantageStats stats;
  std::vector<flow::FlowRecord> flows;
  for (std::uint32_t i = 0; i < 60000; ++i) {
    flows.push_back(tx_record((99u << 24) | (i << 8) | 1, 9));  // 99/8: not ours
  }
  stats.add_flows(flows, 1, 0);
  const std::uint8_t slash8s[] = {37};
  EXPECT_EQ(compute_spoof_tolerance(stats, slash8s), 0u);
}

TEST(SpoofTolerance, HeavySpoofingRaisesTolerance) {
  VantageStats stats;
  std::vector<flow::FlowRecord> flows;
  // Hit half the blocks of 37/8 with 3 packets each.
  for (std::uint32_t i = 0; i < 65536; i += 2) {
    flows.push_back(tx_record((37u << 24) | (i << 8) | 1, 3));
  }
  stats.add_flows(flows, 1, 0);
  const std::uint8_t slash8s[] = {37};
  EXPECT_EQ(compute_spoof_tolerance(stats, slash8s), 3u);
}

}  // namespace
}  // namespace mtscope::pipeline
