// Unit tests for the seven-step pipeline over hand-built fixtures: each
// filter step gets a block engineered to fail exactly that step.
#include "pipeline/inference.hpp"

#include <gtest/gtest.h>

namespace mtscope::pipeline {
namespace {

using net::AsNumber;
using net::Ipv4Addr;
using net::Prefix;

flow::FlowRecord record(std::uint32_t src, std::uint32_t dst, net::IpProto proto,
                        std::uint64_t packets, std::uint64_t bytes) {
  flow::FlowRecord r;
  r.key.src = net::Ipv4Addr(src);
  r.key.dst = net::Ipv4Addr(dst);
  r.key.proto = proto;
  r.packets = packets;
  r.bytes = bytes;
  return r;
}

class InferenceFixture : public ::testing::Test {
 protected:
  InferenceFixture() : registry_(routing::SpecialPurposeRegistry::standard()) {
    rib_.announce(*Prefix::parse("60.0.0.0/8"), AsNumber(1));
  }

  InferenceEngine engine(PipelineConfig config = {}) const {
    return InferenceEngine(config, rib_, registry_);
  }

  routing::Rib rib_;
  routing::SpecialPurposeRegistry registry_;
};

// 60.x.y.z helper (inside the announced /8).
constexpr std::uint32_t addr(std::uint8_t b, std::uint8_t c, std::uint8_t d) {
  return (60u << 24) | (std::uint32_t{b} << 16) | (std::uint32_t{c} << 8) | d;
}

TEST_F(InferenceFixture, CleanDarkBlockIsInferred) {
  VantageStats stats;
  stats.add_flows(std::vector<flow::FlowRecord>{
                      record(addr(9, 9, 9), addr(1, 1, 5), net::IpProto::kTcp, 3, 120)},
                  100, 0);
  const auto result = engine().infer(stats);
  EXPECT_EQ(result.funnel.seen, 1u);  // only the dst block received traffic
  EXPECT_TRUE(result.dark.contains(net::Block24(addr(1, 1, 0) >> 8)));
  EXPECT_EQ(result.dark.size(), 1u);
  EXPECT_EQ(result.gray, 0u);
}

TEST_F(InferenceFixture, Step1NoTcpFails) {
  VantageStats stats;
  stats.add_flows(std::vector<flow::FlowRecord>{
                      record(addr(9, 9, 9), addr(1, 2, 5), net::IpProto::kUdp, 3, 120)},
                  100, 0);
  const auto result = engine().infer(stats);
  EXPECT_EQ(result.funnel.seen, 1u);
  EXPECT_EQ(result.funnel.after_tcp, 0u);
  EXPECT_EQ(result.dark.size(), 0u);
}

TEST_F(InferenceFixture, Step2LargePacketsFail) {
  VantageStats stats;
  stats.add_flows(std::vector<flow::FlowRecord>{
                      record(addr(9, 9, 9), addr(1, 3, 5), net::IpProto::kTcp, 2, 2800)},
                  100, 0);
  const auto result = engine().infer(stats);
  EXPECT_EQ(result.funnel.after_tcp, 1u);
  EXPECT_EQ(result.funnel.after_size, 0u);
  EXPECT_EQ(result.dark.size(), 0u);
}

TEST_F(InferenceFixture, Step2ThresholdIsInclusive) {
  VantageStats stats;
  stats.add_flows(std::vector<flow::FlowRecord>{
                      record(addr(9, 9, 9), addr(1, 4, 5), net::IpProto::kTcp, 1, 44)},
                  100, 0);
  EXPECT_EQ(engine().infer(stats).dark.size(), 1u);  // exactly 44 passes

  VantageStats stats45;
  stats45.add_flows(std::vector<flow::FlowRecord>{
                        record(addr(9, 9, 9), addr(1, 4, 5), net::IpProto::kTcp, 1, 45)},
                    100, 0);
  EXPECT_EQ(engine().infer(stats45).dark.size(), 0u);
}

TEST_F(InferenceFixture, Step3SourceSeenBecomesGray) {
  VantageStats stats;
  stats.add_flows(
      std::vector<flow::FlowRecord>{
          record(addr(9, 9, 9), addr(1, 5, 5), net::IpProto::kTcp, 1, 40),   // inbound scan
          record(addr(1, 5, 200), addr(9, 9, 9), net::IpProto::kTcp, 2, 96)  // block sends
      },
      100, 0);
  const auto result = engine().infer(stats);
  EXPECT_EQ(result.dark.size(), 0u);
  EXPECT_EQ(result.gray, 1u);
  // The block still flows down the funnel: the receiving IP (.5) is clean.
  EXPECT_EQ(result.funnel.after_source, 1u);
}

TEST_F(InferenceFixture, Step3ToleranceForgivesSpoof) {
  VantageStats stats;
  stats.add_flows(
      std::vector<flow::FlowRecord>{
          record(addr(9, 9, 9), addr(1, 6, 5), net::IpProto::kTcp, 1, 40),
          // One spoofed packet "from" the block toward unrouted space.
          record(addr(1, 6, 200), 0x08080808, net::IpProto::kTcp, 1, 40)
      },
      100, 0);
  PipelineConfig config;
  config.spoof_tolerance_pkts = 1;
  const auto result = engine(config).infer(stats);
  EXPECT_EQ(result.dark.size(), 1u);
  EXPECT_EQ(result.gray, 0u);
}

TEST_F(InferenceFixture, Step3SameIpSendsAndReceives) {
  // The receiving IP itself is the sender: with no other clean IP the block
  // leaves the funnel at step 3.
  VantageStats stats;
  stats.add_flows(
      std::vector<flow::FlowRecord>{
          record(addr(9, 9, 9), addr(1, 7, 5), net::IpProto::kTcp, 1, 40),
          record(addr(1, 7, 5), 0x08080808, net::IpProto::kTcp, 5, 250),
      },
      100, 0);
  const auto result = engine().infer(stats);
  EXPECT_EQ(result.funnel.after_size, 1u);
  EXPECT_EQ(result.funnel.after_source, 0u);
  EXPECT_EQ(result.dark.size(), 0u);
}

TEST_F(InferenceFixture, Step4ReservedSpaceFails) {
  VantageStats stats;
  // 10.0.0.0/8 is RFC 1918 space.
  stats.add_flows(std::vector<flow::FlowRecord>{
                      record(addr(9, 9, 9), 0x0a000105, net::IpProto::kTcp, 1, 40)},
                  100, 0);
  const auto result = engine().infer(stats);
  EXPECT_EQ(result.funnel.after_source, 1u);
  EXPECT_EQ(result.funnel.after_reserved, 0u);
}

TEST_F(InferenceFixture, Step5UnroutedFails) {
  VantageStats stats;
  // 61.x is not announced in this fixture's RIB.
  stats.add_flows(std::vector<flow::FlowRecord>{
                      record(addr(9, 9, 9), 0x3d010105, net::IpProto::kTcp, 1, 40)},
                  100, 0);
  const auto result = engine().infer(stats);
  EXPECT_EQ(result.funnel.after_reserved, 1u);
  EXPECT_EQ(result.funnel.after_routed, 0u);
}

TEST_F(InferenceFixture, Step6VolumeFails) {
  VantageStats stats;
  // 20,000 sampled packets at rate 100 = 2M estimated > 1.7M cap.
  stats.add_flows(std::vector<flow::FlowRecord>{
                      record(addr(9, 9, 9), addr(1, 8, 5), net::IpProto::kTcp, 20'000, 800'000)},
                  100, 0);
  const auto result = engine().infer(stats);
  EXPECT_EQ(result.funnel.after_routed, 1u);
  EXPECT_EQ(result.funnel.after_volume, 0u);
}

TEST_F(InferenceFixture, Step6VolumeAveragesOverDays) {
  // Same 2M total over two days = 1M/day: passes.
  VantageStats stats;
  stats.add_flows(std::vector<flow::FlowRecord>{
                      record(addr(9, 9, 9), addr(1, 8, 5), net::IpProto::kTcp, 10'000, 400'000)},
                  100, 0);
  stats.add_flows(std::vector<flow::FlowRecord>{
                      record(addr(9, 9, 9), addr(1, 8, 5), net::IpProto::kTcp, 10'000, 400'000)},
                  100, 1);
  const auto result = engine().infer(stats);
  EXPECT_EQ(result.funnel.after_volume, 1u);
  EXPECT_EQ(result.dark.size(), 1u);
}

TEST_F(InferenceFixture, Step6VolumeScaleRescalesCap) {
  VantageStats stats;
  // 30 sampled x rate 100 = 3,000 estimated; at volume_scale 1e-3 the cap
  // is 1,700 -> fails.
  stats.add_flows(std::vector<flow::FlowRecord>{
                      record(addr(9, 9, 9), addr(1, 9, 5), net::IpProto::kTcp, 30, 1200)},
                  100, 0);
  PipelineConfig config;
  config.volume_scale = 1e-3;
  const auto result = engine(config).infer(stats);
  EXPECT_EQ(result.funnel.after_volume, 0u);
}

TEST_F(InferenceFixture, Step7UncleanMixedIps) {
  VantageStats stats;
  stats.add_flows(
      std::vector<flow::FlowRecord>{
          record(addr(9, 9, 9), addr(1, 10, 5), net::IpProto::kTcp, 1, 40),    // clean IP
          record(addr(9, 9, 9), addr(1, 10, 6), net::IpProto::kTcp, 1, 1400),  // big-packet IP
      },
      100, 0);
  const auto result = engine().infer(stats);
  EXPECT_EQ(result.dark.size(), 0u);
  EXPECT_EQ(result.unclean, 1u);
  EXPECT_EQ(result.gray, 0u);
}

TEST_F(InferenceFixture, Step7UdpOnlyIpIsIbrConsistent) {
  // A stray UDP probe at another address is normal IBR, not liveness
  // evidence: the block stays dark.
  VantageStats stats;
  stats.add_flows(
      std::vector<flow::FlowRecord>{
          record(addr(9, 9, 9), addr(1, 11, 5), net::IpProto::kTcp, 1, 40),
          record(addr(9, 9, 9), addr(1, 11, 6), net::IpProto::kUdp, 1, 200),
      },
      100, 0);
  const auto result = engine().infer(stats);
  EXPECT_EQ(result.unclean, 0u);
  EXPECT_EQ(result.dark.size(), 1u);
}

TEST_F(InferenceFixture, Step7SingleSynWithOptionsIsTolerated) {
  // One 48-byte SYN (MSS option) at a second address is IBR-consistent.
  VantageStats stats;
  stats.add_flows(
      std::vector<flow::FlowRecord>{
          record(addr(9, 9, 9), addr(1, 13, 5), net::IpProto::kTcp, 1, 40),
          record(addr(9, 9, 9), addr(1, 13, 6), net::IpProto::kTcp, 1, 48),
      },
      100, 0);
  const auto result = engine().infer(stats);
  EXPECT_EQ(result.dark.size(), 1u);
  EXPECT_EQ(result.unclean, 0u);
}

TEST_F(InferenceFixture, Step7RepeatedBigPacketsAreLiveness) {
  // Two TCP packets averaging above the option-SYN ceiling (48B) demote the
  // block to unclean.
  VantageStats stats;
  stats.add_flows(
      std::vector<flow::FlowRecord>{
          record(addr(9, 9, 9), addr(1, 14, 5), net::IpProto::kTcp, 1, 40),
          record(addr(9, 9, 9), addr(1, 14, 6), net::IpProto::kTcp, 2, 120),
      },
      100, 0);
  const auto result = engine().infer(stats);
  EXPECT_EQ(result.unclean, 1u);
  EXPECT_EQ(result.dark.size(), 0u);
}

TEST_F(InferenceFixture, Step7RepeatedOptionSynsStayDark) {
  // Two 48-byte SYNs at one address are still IBR-consistent.
  VantageStats stats;
  stats.add_flows(
      std::vector<flow::FlowRecord>{
          record(addr(9, 9, 9), addr(1, 15, 5), net::IpProto::kTcp, 1, 40),
          record(addr(9, 9, 9), addr(1, 15, 6), net::IpProto::kTcp, 2, 96),
      },
      100, 0);
  const auto result = engine().infer(stats);
  EXPECT_EQ(result.dark.size(), 1u);
  EXPECT_EQ(result.unclean, 0u);
}

TEST_F(InferenceFixture, FunnelIsMonotone) {
  // Throw a pile of mixed traffic at the engine; every funnel stage count
  // must be <= the previous stage.
  VantageStats stats;
  std::vector<flow::FlowRecord> flows;
  for (std::uint32_t i = 0; i < 200; ++i) {
    flows.push_back(record(addr(9, 9, static_cast<std::uint8_t>(i)),
                           addr(static_cast<std::uint8_t>(i % 8), static_cast<std::uint8_t>(i), 5),
                           i % 3 == 0 ? net::IpProto::kUdp : net::IpProto::kTcp, 1 + i % 5,
                           40 * (1 + i % 5) + (i % 7) * 100));
  }
  stats.add_flows(flows, 100, 0);
  const auto result = engine().infer(stats);
  const FunnelCounts& f = result.funnel;
  EXPECT_GE(f.seen, f.after_tcp);
  EXPECT_GE(f.after_tcp, f.after_size);
  EXPECT_GE(f.after_size, f.after_source);
  EXPECT_GE(f.after_source, f.after_reserved);
  EXPECT_GE(f.after_reserved, f.after_routed);
  EXPECT_GE(f.after_routed, f.after_volume);
  EXPECT_EQ(result.dark.size() + result.unclean + result.gray, f.after_volume);
}

TEST_F(InferenceFixture, SourceOnlyBlocksAreNotCandidates) {
  VantageStats stats;
  stats.add_flows(std::vector<flow::FlowRecord>{
                      record(addr(1, 12, 5), addr(9, 9, 9), net::IpProto::kTcp, 1, 40)},
                  100, 0);
  const auto result = engine().infer(stats);
  // 60.9.9.0/24 received; 60.1.12.0/24 only sent.
  EXPECT_EQ(result.funnel.seen, 1u);
  EXPECT_FALSE(result.dark.contains(net::Block24(addr(1, 12, 0) >> 8)));
}

TEST_F(InferenceFixture, ConfigValidation) {
  PipelineConfig bad_size;
  bad_size.avg_size_threshold = 0.0;
  EXPECT_THROW(engine(bad_size), std::invalid_argument);
  PipelineConfig bad_scale;
  bad_scale.volume_scale = 0.0;
  EXPECT_THROW(engine(bad_scale), std::invalid_argument);
}

}  // namespace
}  // namespace mtscope::pipeline
