#include "net/hilbert.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace mtscope::net {
namespace {

class HilbertOrder : public ::testing::TestWithParam<int> {};

TEST_P(HilbertOrder, BijectionOverFullCurve) {
  const int order = GetParam();
  const std::uint64_t cells = 1ull << (2 * order);
  const std::uint32_t side = 1u << order;
  for (std::uint64_t d = 0; d < cells; ++d) {
    const HilbertPoint p = hilbert_d2xy(order, d);
    EXPECT_LT(p.x, side);
    EXPECT_LT(p.y, side);
    EXPECT_EQ(hilbert_xy2d(order, p), d);
  }
}

TEST_P(HilbertOrder, ConsecutiveCellsAreGridNeighbours) {
  const int order = GetParam();
  const std::uint64_t cells = 1ull << (2 * order);
  HilbertPoint prev = hilbert_d2xy(order, 0);
  for (std::uint64_t d = 1; d < cells; ++d) {
    const HilbertPoint p = hilbert_d2xy(order, d);
    const int dx = std::abs(static_cast<int>(p.x) - static_cast<int>(prev.x));
    const int dy = std::abs(static_cast<int>(p.y) - static_cast<int>(prev.y));
    EXPECT_EQ(dx + dy, 1) << "discontinuity at d=" << d;
    prev = p;
  }
}

INSTANTIATE_TEST_SUITE_P(SmallOrders, HilbertOrder, ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(Hilbert, Order8BijectionSpotChecks) {
  // Order 8 is the map size used for /8 visualisations; full sweep of
  // 65,536 cells plus inverse.
  for (std::uint64_t d = 0; d < 65536; ++d) {
    EXPECT_EQ(hilbert_xy2d(8, hilbert_d2xy(8, d)), d);
  }
}

TEST(Hilbert, OriginIsDistanceZero) {
  const HilbertPoint p = hilbert_d2xy(4, 0);
  EXPECT_EQ(p.x, 0u);
  EXPECT_EQ(p.y, 0u);
  EXPECT_EQ(hilbert_xy2d(4, HilbertPoint{0, 0}), 0u);
}

TEST(Hilbert, FirstQuarterStaysInOneQuadrant) {
  // Locality: the first quarter of the curve fills exactly one quadrant —
  // this is what makes /10 blocks show up as solid quadrants in the maps.
  const int order = 6;
  const std::uint32_t half = 1u << (order - 1);
  const std::uint64_t quarter = 1ull << (2 * order - 2);
  for (std::uint64_t d = 0; d < quarter; ++d) {
    const HilbertPoint p = hilbert_d2xy(order, d);
    EXPECT_LT(p.x, half);
    EXPECT_LT(p.y, half);
  }
}

}  // namespace
}  // namespace mtscope::net
