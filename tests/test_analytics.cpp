// The IBR analytics subsystem (DESIGN.md §15), proven in layers:
//
//  * the sparse counter tables and the IbrMatrix itself — key packing,
//    growth, the commutative merge contract, and the batched tap's
//    bit-identicality to the per-record path;
//  * the collect differential — the matrix a thread/shard collect grid
//    produces must equal the serial per-record oracle's, and the sliding
//    window's incrementally folded matrix must equal a from-scratch batch
//    build at every advance step;
//  * the Chocolatine-style outage detector on synthetic series and on a
//    scripted simulator outage (perfect recall on the labeled event, zero
//    false positives on the clean baseline, and the suppression touching
//    nothing outside the outage prefix);
//  * the ANALYTICS snapshot section — v1 byte-compatibility when absent,
//    byte-identical v2 round trips, typed rejection of corruption;
//  * the shared query formatter and the TCP server's analytics verbs
//    (one formatter, so the wire and `mtscope analyze` cannot drift);
//  * TelescopeIndex rollup edge cases (/0, past-the-end prefixes, empty
//    snapshots) that the scoped top-ports queries lean on.
//
// Under MTSCOPE_SANITIZE=thread/address this binary doubles as the
// tsan_analytics_smoke / asan_analytics_smoke sanitizer ctests.
#include "analytics/ibr_matrix.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <tuple>
#include <vector>

#include "analytics/outage.hpp"
#include "analytics/scanner.hpp"
#include "flow/flow_batch.hpp"
#include "ingest/daemon.hpp"
#include "ingest/window.hpp"
#include "pipeline/collector.hpp"
#include "pipeline/inference.hpp"
#include "pipeline/parallel.hpp"
#include "pipeline/spoof_tolerance.hpp"
#include "serve/analytics_format.hpp"
#include "serve/server.hpp"
#include "serve/snapshot.hpp"
#include "serve/telescope_index.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"

namespace mtscope {
namespace {

using analytics::IbrMatrix;
using serve::AnalyticsData;
using serve::BlockClass;
using serve::BlockEntry;
using serve::BlockLabel;
using serve::PrefixEntry;
using serve::TelescopeSnapshot;

// ---------------------------------------------------------------------------
// Matrix equality down to every table entry, via the deterministic sorted
// exports (the structs carry no operator==; tuples do).

std::vector<std::tuple<std::uint32_t, std::uint16_t, std::uint16_t, std::uint64_t>> rx_tuples(
    const IbrMatrix& m) {
  std::vector<std::tuple<std::uint32_t, std::uint16_t, std::uint16_t, std::uint64_t>> out;
  for (const auto& c : m.rx_cells()) out.emplace_back(c.block, c.port, c.day, c.packets);
  return out;
}

std::vector<std::tuple<std::uint32_t, std::uint16_t, std::uint64_t>> src_port_tuples(
    const IbrMatrix& m) {
  std::vector<std::tuple<std::uint32_t, std::uint16_t, std::uint64_t>> out;
  for (const auto& s : m.src_ports()) out.emplace_back(s.src_block, s.port, s.packets);
  return out;
}

std::vector<std::tuple<std::uint32_t, std::uint32_t, std::uint64_t>> src_touch_tuples(
    const IbrMatrix& m) {
  std::vector<std::tuple<std::uint32_t, std::uint32_t, std::uint64_t>> out;
  for (const auto& s : m.src_touches()) out.emplace_back(s.src_block, s.dst_block, s.packets);
  return out;
}

void expect_matrix_equal(const IbrMatrix& x, const IbrMatrix& y) {
  EXPECT_EQ(x.rx_cell_count(), y.rx_cell_count());
  EXPECT_EQ(rx_tuples(x), rx_tuples(y));
  EXPECT_EQ(src_port_tuples(x), src_port_tuples(y));
  EXPECT_EQ(src_touch_tuples(x), src_touch_tuples(y));
  if (!x.empty() && !y.empty()) {
    EXPECT_EQ(x.first_day(), y.first_day());
    EXPECT_EQ(x.last_day(), y.last_day());
  }
}

// ---------------------------------------------------------------------------
// CounterTable: the open-addressing substrate.

TEST(AnalyticsCounterTable, AddsSumAndAbsentKeysReadZero) {
  analytics::CounterTable table;
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.find(7), 0u);

  table.add(7, 5);
  table.add(7, 10);
  table.add(0, 3);  // key 0 must be a first-class citizen (block 0, port 0, day 0)
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.find(7), 15u);
  EXPECT_EQ(table.find(0), 3u);
  EXPECT_EQ(table.find(8), 0u);
}

TEST(AnalyticsCounterTable, GrowthPreservesEveryEntry) {
  analytics::CounterTable table;
  constexpr std::uint64_t kEntries = 50'000;  // forces several rehashes
  util::Rng rng(11);
  for (std::uint64_t i = 0; i < kEntries; ++i) {
    // Adjacent packed keys differ only in low bits — the worst case the
    // splitmix finalizer exists for.
    table.add(i, i + 1);
  }
  EXPECT_EQ(table.size(), kEntries);
  for (int probe = 0; probe < 1000; ++probe) {
    const std::uint64_t key = rng.uniform(kEntries);
    EXPECT_EQ(table.find(key), key + 1);
  }
  const auto sorted = table.sorted();
  ASSERT_EQ(sorted.size(), kEntries);
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
}

TEST(AnalyticsCounterTable, MergeIsPerKeySum) {
  analytics::CounterTable a, b;
  a.add(1, 10);
  a.add(2, 20);
  b.add(2, 5);
  b.add(3, 7);
  a.merge(b);
  EXPECT_EQ(a.find(1), 10u);
  EXPECT_EQ(a.find(2), 25u);
  EXPECT_EQ(a.find(3), 7u);
  EXPECT_EQ(a.size(), 3u);
}

// ---------------------------------------------------------------------------
// IbrMatrix: packing, tap, merge laws.

TEST(AnalyticsMatrix, DisabledMatrixIgnoresEverything) {
  IbrMatrix off;
  off.add_flow(1, 2, 80, 0, 100);
  EXPECT_FALSE(off.enabled());
  EXPECT_TRUE(off.empty());
  EXPECT_EQ(off.rx_cell_count(), 0u);
  EXPECT_EQ(off.memory_bytes(), 0u);
}

TEST(AnalyticsMatrix, ExportsAreSortedAndKeepDayBounds) {
  IbrMatrix m(true);
  m.add_flow(/*src=*/9, /*dst=*/5, /*port=*/443, /*day=*/2, 10);
  m.add_flow(9, 5, 80, 1, 20);
  m.add_flow(8, 5, 80, 1, 5);
  m.add_flow(9, 4, 23, 3, 7);
  m.add_flow(9, 5, 80, 1, 1);  // same cell, sums

  EXPECT_EQ(m.first_day(), 1);
  EXPECT_EQ(m.last_day(), 3);
  const auto rx = rx_tuples(m);
  ASSERT_EQ(rx.size(), 3u);
  EXPECT_EQ(rx[0], std::make_tuple(4u, std::uint16_t{23}, std::uint16_t{3}, 7ull));
  EXPECT_EQ(rx[1], std::make_tuple(5u, std::uint16_t{80}, std::uint16_t{1}, 26ull));
  EXPECT_EQ(rx[2], std::make_tuple(5u, std::uint16_t{443}, std::uint16_t{2}, 10ull));
  EXPECT_TRUE(std::is_sorted(rx.begin(), rx.end()));

  const auto sp = src_port_tuples(m);
  ASSERT_EQ(sp.size(), 4u);  // (8,80), (9,23), (9,80), (9,443)
  EXPECT_TRUE(std::is_sorted(sp.begin(), sp.end()));
  const auto st = src_touch_tuples(m);
  ASSERT_EQ(st.size(), 3u);  // (8,5), (9,4), (9,5)
  EXPECT_EQ(st[0], std::make_tuple(8u, 5u, 5ull));
  EXPECT_EQ(st[1], std::make_tuple(9u, 4u, 7ull));
  EXPECT_EQ(st[2], std::make_tuple(9u, 5u, 31ull));
}

std::vector<flow::FlowRecord> tap_records(std::uint64_t seed, std::size_t count) {
  util::Rng rng(seed);
  std::vector<flow::FlowRecord> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    flow::FlowRecord r;
    r.key.src = net::Ipv4Addr(0x0a000000u + static_cast<std::uint32_t>(rng.uniform(1u << 12)));
    r.key.dst = net::Ipv4Addr(0x14000000u + static_cast<std::uint32_t>(rng.uniform(1u << 12)));
    r.key.dst_port = static_cast<std::uint16_t>(rng.uniform(1024));
    r.key.proto = rng.chance(0.8) ? net::IpProto::kTcp : net::IpProto::kUdp;
    r.packets = 1 + rng.uniform(5);
    r.bytes = r.packets * 64;
    out.push_back(r);
  }
  return out;
}

TEST(AnalyticsMatrix, BatchTapMatchesPerRecordTap) {
  constexpr std::uint32_t kRate = 100;
  const auto records = tap_records(3, 4'000);

  IbrMatrix serial(true);
  for (const auto& r : records) {
    serial.add_flow(net::Block24::containing(r.key.src).index(),
                    net::Block24::containing(r.key.dst).index(), r.key.dst_port, /*day=*/2,
                    r.packets * kRate);
  }

  IbrMatrix batched(true);
  flow::FlowBatch batch;
  std::span<const flow::FlowRecord> all(records);
  for (std::size_t first = 0; first < all.size(); first += 512) {
    batch.decode(all.subspan(first, std::min<std::size_t>(512, all.size() - first)), kRate);
    std::vector<std::uint32_t> rows(batch.size());
    for (std::uint32_t i = 0; i < batch.size(); ++i) rows[i] = i;
    batched.add_batch(batch, rows, 2);
  }
  expect_matrix_equal(batched, serial);
}

TEST(AnalyticsMatrix, MergeCommutesAndFoldsSums) {
  const auto records = tap_records(5, 2'000);
  const auto fill = [&](IbrMatrix& m, std::size_t begin, std::size_t end, int day) {
    for (std::size_t i = begin; i < end; ++i) {
      const auto& r = records[i];
      m.add_flow(net::Block24::containing(r.key.src).index(),
                 net::Block24::containing(r.key.dst).index(), r.key.dst_port, day,
                 r.packets * 10);
    }
  };
  // Overlapping halves so the merge actually sums shared cells.
  IbrMatrix a(true), b(true), ab(true), ba(true), whole(true);
  fill(a, 0, 1'200, 0);
  fill(b, 800, 2'000, 1);
  fill(ab, 0, 1'200, 0);
  fill(ba, 800, 2'000, 1);
  fill(whole, 0, 1'200, 0);
  fill(whole, 800, 2'000, 1);

  ab.merge(b);   // a + b
  ba.merge(a);   // b + a
  expect_matrix_equal(ab, ba);
  expect_matrix_equal(ab, whole);
  EXPECT_EQ(ab.first_day(), 0);
  EXPECT_EQ(ab.last_day(), 1);
}

// ---------------------------------------------------------------------------
// Collect differential: the tap across the thread/shard grid vs the serial
// per-record oracle.

struct TapConfig {
  unsigned threads;
  unsigned shards;
};

void PrintTo(const TapConfig& config, std::ostream* os) {
  *os << config.threads << " thread(s) x " << config.shards << " shard(s)";
}

struct TapBaseline {
  sim::Simulation simulation{sim::SimConfig::tiny(101)};
  std::vector<std::size_t> ixps = pipeline::all_ixps(simulation);
  std::vector<int> days{0, 1, 2};
  pipeline::VantageStats serial = [this] {
    pipeline::VantageStats stats(simulation.plan().universe_mask(), /*analytics=*/true);
    for (const int day : days) {
      for (const std::size_t ixp : ixps) {
        const auto data = simulation.run_ixp_day(ixp, day);
        stats.add_flows(data.flows, simulation.ixps()[ixp].sampling_rate(), day);
      }
    }
    return stats;
  }();
};

const TapBaseline& tap_baseline() {
  static const TapBaseline shared;
  return shared;
}

class AnalyticsCollectDifferential : public ::testing::TestWithParam<TapConfig> {};

TEST_P(AnalyticsCollectDifferential, TapMatchesSerialAcrossThreadShardGrid) {
  const TapBaseline& base = tap_baseline();
  pipeline::CollectOptions options;
  options.threads = GetParam().threads;
  options.shards = GetParam().shards;
  options.analytics = true;
  const auto stats =
      pipeline::collect_stats(base.simulation, base.ixps, base.days, options);
  EXPECT_TRUE(stats.ibr().enabled());
  expect_matrix_equal(stats.ibr(), base.serial.ibr());
}

INSTANTIATE_TEST_SUITE_P(ThreadShardGrid, AnalyticsCollectDifferential,
                         ::testing::Values(TapConfig{1, 1}, TapConfig{2, 4}, TapConfig{3, 5},
                                           TapConfig{4, 16}));

TEST(AnalyticsCollectDifferential, DisabledCollectKeepsMatrixEmpty) {
  const TapBaseline& base = tap_baseline();
  pipeline::CollectOptions options;
  options.threads = 2;
  options.shards = 4;
  const auto stats =
      pipeline::collect_stats(base.simulation, base.ixps, base.days, options);
  EXPECT_FALSE(stats.ibr().enabled());
  EXPECT_TRUE(stats.ibr().empty());
}

// ---------------------------------------------------------------------------
// Sliding-window differential: the per-day matrix slices must fold to the
// batch matrix at every advance step, across eviction.

TEST(AnalyticsWindowDifferential, IncrementalMatrixMatchesBatchAtEveryAdvanceStep) {
  constexpr int kWindow = 3;
  constexpr int kTotalDays = 6;
  constexpr std::uint32_t kRate = 50;
  ingest::SlidingWindow window(kWindow, nullptr, /*analytics=*/true);

  for (int day = 0; day < kTotalDays; ++day) {
    for (int vantage = 0; vantage < 2; ++vantage) {
      window.add_flows(day, tap_records(100 + day * 10 + vantage, 1'500), kRate);
    }
    window.note_day(day);
    window.advance_to(day);

    pipeline::VantageStats batch(nullptr, /*analytics=*/true);
    for (int d = std::max(0, day - kWindow + 1); d <= day; ++d) {
      for (int vantage = 0; vantage < 2; ++vantage) {
        batch.add_flows(tap_records(100 + d * 10 + vantage, 1'500), kRate, d);
      }
    }
    const pipeline::VantageStats merged = window.merged();
    EXPECT_TRUE(merged.ibr().enabled()) << "day " << day;
    expect_matrix_equal(merged.ibr(), batch.ibr());
  }
}

// ---------------------------------------------------------------------------
// Outage detector on synthetic series.

analytics::PrefixDaySeries series_of(std::uint32_t id, std::vector<std::uint64_t> packets) {
  analytics::PrefixDaySeries s;
  s.prefix_id = id;
  s.packets = std::move(packets);
  return s;
}

TEST(AnalyticsOutageDetector, FlatSeriesRaisesNothing) {
  const std::vector<analytics::PrefixDaySeries> series{
      series_of(0, {10'000, 10'100, 9'900, 10'050, 10'000, 9'950, 10'000})};
  EXPECT_TRUE(analytics::detect_outages(series, 0).empty());
}

TEST(AnalyticsOutageDetector, DeepDipCoalescesIntoOneEvent) {
  const std::vector<analytics::PrefixDaySeries> series{
      series_of(3, {12'000, 12'200, 11'800, 12'100, 0, 0, 12'000})};
  const auto events = analytics::detect_outages(series, /*first_day=*/10);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].prefix_id, 3u);
  EXPECT_EQ(events[0].start_day, 14u);
  EXPECT_EQ(events[0].end_day, 15u);
  EXPECT_EQ(events[0].severity_pct, 100u);
  EXPECT_EQ(events[0].baseline, 12'000u);
  EXPECT_EQ(events[0].observed, 0u);
}

TEST(AnalyticsOutageDetector, SeparatedDipsStaySeparateEvents) {
  const std::vector<analytics::PrefixDaySeries> series{
      series_of(1, {20'000, 0, 20'000, 20'000, 20'000, 0, 20'000})};
  const auto events = analytics::detect_outages(series, 0);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].start_day, 1u);
  EXPECT_EQ(events[0].end_day, 1u);
  EXPECT_EQ(events[1].start_day, 5u);
  EXPECT_EQ(events[1].end_day, 5u);
}

TEST(AnalyticsOutageDetector, WeekendModulationIsNotAnOutage) {
  // A 30% day-of-week dip is in-distribution: the ratio gate (0.35 x
  // baseline) must hold its ground.
  const std::vector<analytics::PrefixDaySeries> series{
      series_of(0, {10'000, 10'000, 10'000, 10'000, 10'000, 7'000, 7'000})};
  EXPECT_TRUE(analytics::detect_outages(series, 0).empty());
}

TEST(AnalyticsOutageDetector, TinyBaselinesAreNeverJudged) {
  // Median volume below min_baseline: a silent day means nothing.
  const std::vector<analytics::PrefixDaySeries> series{
      series_of(0, {400, 410, 390, 0, 0, 405, 400})};
  EXPECT_TRUE(analytics::detect_outages(series, 0).empty());
}

TEST(AnalyticsOutageDetector, ShortWindowsAreNeverJudged) {
  const std::vector<analytics::PrefixDaySeries> series{series_of(0, {50'000, 0, 50'000})};
  EXPECT_TRUE(analytics::detect_outages(series, 0).empty());
}

// ---------------------------------------------------------------------------
// Scanner insight.

TEST(AnalyticsScanner, TopServicesRanksPerGroup) {
  std::vector<analytics::LabeledPortCount> cells;
  // Group (1, 2): port 23 dominates, then 80, then 443.
  cells.push_back({1, 2, 80, 500});
  cells.push_back({1, 2, 23, 900});
  cells.push_back({1, 2, 443, 100});
  cells.push_back({1, 2, 23, 100});  // summed with the other 23 entry
  // Group (2, 1): single port.
  cells.push_back({2, 1, 7, 42});

  const auto ranked = analytics::top_services(cells, /*per_group=*/2);
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0], (analytics::ServicePortStat{1, 2, 23, 0, 1'000}));
  EXPECT_EQ(ranked[1], (analytics::ServicePortStat{1, 2, 80, 1, 500}));
  EXPECT_EQ(ranked[2], (analytics::ServicePortStat{2, 1, 7, 0, 42}));
}

TEST(AnalyticsScanner, TopScannersRankAndFilterByMap) {
  IbrMatrix m(true);
  // Source 100: wide fan-out into the map (blocks 10..14, port 23 only).
  for (std::uint32_t b = 10; b < 15; ++b) m.add_flow(100, b, 23, 0, 1'000);
  // Source 200: one in-map block, many ports, higher volume per cell.
  for (std::uint16_t p = 1; p <= 4; ++p) m.add_flow(200, 11, p, 0, 2'000);
  // Source 300: only talks to out-of-map space — must not appear at all.
  m.add_flow(300, 99, 23, 0, 50'000);

  const auto in_map = [](std::uint32_t block) { return block >= 10 && block < 15; };
  const auto scanners = analytics::top_scanners(m, in_map, /*limit=*/10);
  ASSERT_EQ(scanners.size(), 2u);
  EXPECT_EQ(scanners[0], (analytics::ScannerProfile{200, 1, 4, 8'000}));
  EXPECT_EQ(scanners[1], (analytics::ScannerProfile{100, 5, 1, 5'000}));

  const auto top1 = analytics::top_scanners(m, in_map, 1);
  ASSERT_EQ(top1.size(), 1u);
  EXPECT_EQ(top1[0].src_block, 200u);
}

// ---------------------------------------------------------------------------
// A hand-built map + matrix for build_analytics, the formatter, and the
// codec: two announced /16s with known labels, an orphan block, and
// out-of-map noise that the meta-telescope filter must drop.

constexpr std::uint32_t kPrefixA = 0;  // 10.1.0.0/16, AS65001, "US"
constexpr std::uint32_t kPrefixB = 1;  // 10.2.0.0/16, AS65002, "DE"

net::Block24 block_at(std::uint8_t a, std::uint8_t b, std::uint8_t c) {
  return net::Block24::containing(net::Ipv4Addr::from_octets(a, b, c, 0));
}

TelescopeSnapshot synthetic_snapshot() {
  TelescopeSnapshot snap;
  snap.meta.seed = 9;
  snap.meta.days = 7;
  snap.meta.created_unix_s = 1'700'000'000;
  snap.meta.source = "analytics fixture";
  snap.prefixes.push_back(PrefixEntry{0x0a010000u, 65'001, 16});
  snap.prefixes.push_back(PrefixEntry{0x0a020000u, 65'002, 16});
  for (std::uint8_t c = 0; c < 4; ++c) {
    snap.blocks.push_back(BlockEntry::make(block_at(10, 1, c), BlockClass::kDark, kPrefixA));
  }
  snap.blocks.push_back(BlockEntry::make(block_at(10, 2, 0), BlockClass::kDark, kPrefixB));
  snap.blocks.push_back(BlockEntry::make(block_at(10, 2, 1), BlockClass::kDark, kPrefixB));
  // A gray block (no series contribution) and an orphan dark block.
  snap.blocks.push_back(BlockEntry::make(block_at(10, 2, 2), BlockClass::kGray, kPrefixB));
  snap.blocks.push_back(
      BlockEntry::make(block_at(203, 0, 113), BlockClass::kDark, BlockEntry::kNoPrefix));
  snap.dark_count = 7;
  snap.gray_count = 1;
  return snap;
}

serve::BlockLabeler synthetic_labeler() {
  return [](net::Block24 block) {
    BlockLabel label;
    const std::uint32_t second_octet = (block.index() >> 8) & 0xff;
    if (second_octet == 1) {
      label.country[0] = 'U';
      label.country[1] = 'S';
      label.continent = 1;
      label.net_type = 1;
    } else if (second_octet == 2) {
      label.country[0] = 'D';
      label.country[1] = 'E';
      label.continent = 2;
      label.net_type = 2;
    }
    return label;
  };
}

/// Seven days of radiation: prefix A's blocks hum steadily; prefix B goes
/// silent on days 5-6 (the scripted outage); an out-of-map block attracts
/// traffic that must be filtered; one noisy scanner fans out.
IbrMatrix synthetic_matrix() {
  IbrMatrix m(true);
  const std::uint32_t scanner = block_at(198, 18, 0).index();
  const std::uint32_t other_src = block_at(198, 18, 1).index();
  for (int day = 0; day < 7; ++day) {
    for (std::uint8_t c = 0; c < 4; ++c) {
      const std::uint32_t dst = block_at(10, 1, c).index();
      m.add_flow(scanner, dst, 23, day, 3'000);
      m.add_flow(other_src, dst, 80, day, 2'000);
    }
    if (day < 5) {
      m.add_flow(scanner, block_at(10, 2, 0).index(), 23, day, 4'000);
      m.add_flow(other_src, block_at(10, 2, 1).index(), 443, day, 2'000);
    }
    // The gray block and out-of-map noise.
    m.add_flow(other_src, block_at(10, 2, 2).index(), 53, day, 1'000);
    m.add_flow(scanner, block_at(99, 9, 9).index(), 23, day, 9'000);
  }
  return m;
}

struct SyntheticAnalytics {
  TelescopeSnapshot snapshot = synthetic_snapshot();
  SyntheticAnalytics() {
    snapshot.analytics =
        serve::build_analytics(synthetic_matrix(), snapshot, synthetic_labeler());
  }
};

const TelescopeSnapshot& synthetic_with_analytics() {
  static const SyntheticAnalytics shared;
  return shared.snapshot;
}

TEST(AnalyticsBuild, FiltersToTheMapAndLabelsEveryBlock) {
  const TelescopeSnapshot& snap = synthetic_with_analytics();
  ASSERT_TRUE(snap.analytics.has_value());
  const AnalyticsData& a = *snap.analytics;

  EXPECT_EQ(a.first_day, 0u);
  EXPECT_EQ(a.window_days, 7u);
  ASSERT_EQ(a.labels.size(), snap.blocks.size());
  EXPECT_EQ(a.labels[0].country[0], 'U');
  EXPECT_EQ(a.labels[4].country[0], 'D');
  EXPECT_EQ(std::string_view(a.labels[7].country, 2), "--");  // orphan: unknown

  // Cells are per-(block, port) window sums, in-map only, sorted.
  for (const auto& cell : a.cells) {
    EXPECT_NE(cell.block, block_at(99, 9, 9).index()) << "out-of-map cell survived";
  }
  std::vector<std::pair<std::uint32_t, std::uint16_t>> order;
  for (const auto& cell : a.cells) order.emplace_back(cell.block, cell.port);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
  // 4 A-blocks x 2 ports + 2 B-blocks x 1 port + 1 gray x 1 port = 11.
  EXPECT_EQ(a.cells.size(), 11u);
  EXPECT_EQ(a.cells[0].block, block_at(10, 1, 0).index());
  EXPECT_EQ(a.cells[0].port, 23);
  EXPECT_EQ(a.cells[0].packets, 21'000u);  // 3000 x 7 days

  // Series: dark blocks with a prefix only — the gray block's port-53
  // traffic must not leak into prefix B's series.
  std::uint64_t b_day0 = 0;
  for (const auto& p : a.series) {
    EXPECT_LT(p.prefix_id, snap.prefixes.size());
    if (p.prefix_id == kPrefixB) {
      EXPECT_LT(p.day, 5u) << "silent day stored explicitly";
      if (p.day == 0) b_day0 = p.packets;
    }
  }
  EXPECT_EQ(b_day0, 6'000u);  // 4000 + 2000, no gray 1000

  // The scripted silence: exactly one event, prefix B, days 5-6, total.
  ASSERT_EQ(a.outages.size(), 1u);
  EXPECT_EQ(a.outages[0].prefix_id, kPrefixB);
  EXPECT_EQ(a.outages[0].start_day, 5u);
  EXPECT_EQ(a.outages[0].end_day, 6u);
  EXPECT_EQ(a.outages[0].severity_pct, 100u);
  EXPECT_EQ(a.outages[0].baseline, 6'000u);

  // Scanners: both sources profile over in-map traffic only.
  ASSERT_EQ(a.scanners.size(), 2u);
  EXPECT_EQ(a.scanners[0].src_block, block_at(198, 18, 0).index());
  EXPECT_EQ(a.scanners[0].blocks_touched, 5u);  // 4 A-blocks + B-block 0
  EXPECT_EQ(a.scanners[0].est_packets, 4u * 21'000u + 5u * 4'000u);
  EXPECT_GE(a.scanners[0].est_packets, a.scanners[1].est_packets);

  // Services carry the group labels.
  EXPECT_FALSE(a.services.empty());
  for (const auto& s : a.services) {
    EXPECT_TRUE(s.continent == 1 || s.continent == 2) << unsigned{s.continent};
  }
}

TEST(AnalyticsBuild, EmptyMatrixYieldsLabelsOnly) {
  const TelescopeSnapshot base = synthetic_snapshot();
  const IbrMatrix empty(true);
  const AnalyticsData a = serve::build_analytics(empty, base, synthetic_labeler());
  EXPECT_EQ(a.first_day, 0u);
  EXPECT_EQ(a.window_days, 0u);
  EXPECT_EQ(a.labels.size(), base.blocks.size());
  EXPECT_TRUE(a.cells.empty());
  EXPECT_TRUE(a.series.empty());
  EXPECT_TRUE(a.outages.empty());
  EXPECT_TRUE(a.scanners.empty());
}

// ---------------------------------------------------------------------------
// The ANALYTICS wire section.

TEST(AnalyticsSnapshotCodec, AnalyticsFreeSnapshotsStayVersionOne) {
  const auto bytes = serve::serialize_snapshot(synthetic_snapshot());
  // Version u16 sits right after the 8-byte magic.
  ASSERT_GT(bytes.size(), 10u);
  EXPECT_EQ(bytes[8], 1);
  EXPECT_EQ(bytes[9], 0);
  const auto parsed = serve::parse_snapshot(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_FALSE(parsed.value().analytics.has_value());
}

TEST(AnalyticsSnapshotCodec, RoundTripsByteIdentical) {
  const TelescopeSnapshot& snap = synthetic_with_analytics();
  const auto bytes = serve::serialize_snapshot(snap);
  EXPECT_EQ(bytes[8], 2);  // five-section layout

  const auto parsed = serve::parse_snapshot(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  ASSERT_TRUE(parsed.value().analytics.has_value());
  EXPECT_TRUE(parsed.value() == snap);
  EXPECT_EQ(serve::serialize_snapshot(parsed.value()), bytes);
}

TEST(AnalyticsSnapshotCodec, EmptyWindowAnalyticsRoundTrips) {
  TelescopeSnapshot snap = synthetic_snapshot();
  snap.analytics = serve::build_analytics(IbrMatrix(true), snap, synthetic_labeler());
  const auto bytes = serve::serialize_snapshot(snap);
  const auto parsed = serve::parse_snapshot(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_TRUE(parsed.value() == snap);
}

TEST(AnalyticsSnapshotCodec, CorruptAnalyticsBytesFailTyped) {
  const auto good = serve::serialize_snapshot(synthetic_with_analytics());

  // Flip one byte inside the last section's payload: the CRC must catch it.
  auto flipped = good;
  flipped[flipped.size() - 5] ^= 0x40;
  const auto crc = serve::parse_snapshot(flipped);
  ASSERT_FALSE(crc.ok());
  EXPECT_EQ(crc.error().code, "snapshot.bad_crc");

  auto truncated = good;
  truncated.resize(truncated.size() - 3);
  const auto trunc = serve::parse_snapshot(truncated);
  ASSERT_FALSE(trunc.ok());
  EXPECT_EQ(trunc.error().code, "snapshot.truncated");
}

TEST(AnalyticsSnapshotCodec, MalformedSectionContentIsRejected) {
  // serialize is a pure writer, so a semantically broken AnalyticsData
  // produces valid framing with invalid content — parse must refuse it.
  TelescopeSnapshot out_of_order = synthetic_with_analytics();
  ASSERT_GE(out_of_order.analytics->cells.size(), 2u);
  std::swap(out_of_order.analytics->cells[0], out_of_order.analytics->cells[1]);
  const auto cells = serve::parse_snapshot(serve::serialize_snapshot(out_of_order));
  ASSERT_FALSE(cells.ok());
  EXPECT_EQ(cells.error().code, "snapshot.bad_section");

  TelescopeSnapshot dangling = synthetic_with_analytics();
  ASSERT_FALSE(dangling.analytics->series.empty());
  dangling.analytics->series[0].prefix_id = 999;  // past the prefix table
  const auto series = serve::parse_snapshot(serve::serialize_snapshot(dangling));
  ASSERT_FALSE(series.ok());
  EXPECT_EQ(series.error().code, "snapshot.bad_section");

  TelescopeSnapshot misaligned = synthetic_with_analytics();
  misaligned.analytics->labels.pop_back();  // no longer block-aligned
  const auto labels = serve::parse_snapshot(serve::serialize_snapshot(misaligned));
  ASSERT_FALSE(labels.ok());
  EXPECT_EQ(labels.error().code, "snapshot.bad_section");
}

// ---------------------------------------------------------------------------
// The shared formatter.

TEST(AnalyticsFormatter, VerbDetectionIsFirstTokenOnly) {
  EXPECT_TRUE(serve::is_analytics_verb("top-ports"));
  EXPECT_TRUE(serve::is_analytics_verb("  outages 3  "));
  EXPECT_TRUE(serve::is_analytics_verb("scanners 5"));
  EXPECT_FALSE(serve::is_analytics_verb("10.0.0.1"));
  EXPECT_FALSE(serve::is_analytics_verb(""));
  EXPECT_FALSE(serve::is_analytics_verb("ports top"));
}

TEST(AnalyticsFormatter, AnswersEveryQueryShape) {
  const serve::TelescopeIndex index(synthetic_with_analytics());

  // Map-wide: port 23 dominates (21000x4 + 4000x5 = 104000), then 80.
  EXPECT_EQ(serve::answer_analytics_query(index, "top-ports", 2),
            "top-ports map blocks=8 23:104000 80:56000");

  // Scoped by prefix, ASN and country — the same blocks three ways.
  const std::string by_prefix =
      serve::answer_analytics_query(index, "top-ports 10.2.0.0/16", 5);
  EXPECT_EQ(by_prefix, "top-ports 10.2.0.0/16 blocks=3 23:20000 443:10000 53:7000");
  const std::string by_asn = serve::answer_analytics_query(index, "top-ports 65002", 5);
  EXPECT_EQ(by_asn, "top-ports 65002 blocks=3 23:20000 443:10000 53:7000");
  const std::string by_cc = serve::answer_analytics_query(index, "top-ports de", 5);
  EXPECT_EQ(by_cc, "top-ports de blocks=3 23:20000 443:10000 53:7000");

  // A prefix covering nothing published.
  EXPECT_EQ(serve::answer_analytics_query(index, "top-ports 172.16.0.0/16", 5),
            "top-ports 172.16.0.0/16 blocks=0");

  // Outages, with and without the since-day filter.
  EXPECT_EQ(serve::answer_analytics_query(index, "outages", 5),
            "outages n=1 10.2.0.0/16:d5-d6:-100%");
  EXPECT_EQ(serve::answer_analytics_query(index, "outages 6", 5),
            "outages n=1 10.2.0.0/16:d5-d6:-100%");
  EXPECT_EQ(serve::answer_analytics_query(index, "outages 7", 5), "outages n=0");

  // Scanners, ranked by volume.
  const std::string scanners = serve::answer_analytics_query(index, "scanners 1", 5);
  EXPECT_EQ(scanners, "scanners n=1 198.18.0.0/24:pkts=104000:blocks=5:ports=1");

  // Malformed arguments echo sanitized + " invalid".
  EXPECT_EQ(serve::answer_analytics_query(index, "top-ports 1.2.3.0/33", 5),
            "top-ports 1.2.3.0/33 invalid");
  EXPECT_EQ(serve::answer_analytics_query(index, "top-ports USA", 5),
            "top-ports USA invalid");
  EXPECT_EQ(serve::answer_analytics_query(index, "outages soon", 5),
            "outages soon invalid");
  EXPECT_EQ(serve::answer_analytics_query(index, "scanners 0", 5), "scanners 0 invalid");
  EXPECT_EQ(serve::answer_analytics_query(index, "scanners 1 2", 5),
            "scanners 1 2 invalid");
}

TEST(AnalyticsFormatter, VersionOneSnapshotsAnswerUnavailable) {
  const serve::TelescopeIndex index(synthetic_snapshot());
  EXPECT_EQ(serve::answer_analytics_query(index, "top-ports", 5), "top-ports unavailable");
  EXPECT_EQ(serve::answer_analytics_query(index, "outages 3", 5), "outages unavailable");
  EXPECT_EQ(serve::answer_analytics_query(index, "scanners", 5), "scanners unavailable");
}

// ---------------------------------------------------------------------------
// The TCP server speaks the same strings.

struct VerbClient {
  int fd = -1;

  explicit VerbClient(std::uint16_t port) {
    fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return;
    const timeval timeout{10, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      fd = -1;
    }
  }
  ~VerbClient() {
    if (fd >= 0) ::close(fd);
  }
  VerbClient(const VerbClient&) = delete;
  VerbClient& operator=(const VerbClient&) = delete;

  bool send_all(std::string_view data) const {
    std::size_t sent = 0;
    while (sent < data.size()) {
      const auto n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  std::vector<std::string> read_lines(std::size_t count) const {
    std::vector<std::string> lines;
    std::string buffer;
    char chunk[4096];
    while (lines.size() < count) {
      const auto n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      buffer.append(chunk, static_cast<std::size_t>(n));
      std::size_t start = 0;
      for (std::size_t nl; (nl = buffer.find('\n', start)) != std::string::npos;
           start = nl + 1) {
        lines.push_back(buffer.substr(start, nl - start));
      }
      buffer.erase(0, start);
    }
    return lines;
  }
};

TEST(AnalyticsServerVerbs, WireRepliesMatchTheSharedFormatter) {
  const std::string path = ::testing::TempDir() + "analytics_verbs.snap";
  const auto written = serve::write_snapshot_file(synthetic_with_analytics(), path);
  ASSERT_TRUE(written.ok()) << written.error().to_string();

  serve::ServerConfig config;
  config.snapshot_path = path;
  config.port = 0;
  serve::QueryServer server(config);
  const auto started = server.start();
  ASSERT_TRUE(started.ok()) << started.error().to_string();
  std::thread runner([&server] { server.run(); });

  const serve::TelescopeIndex index(synthetic_with_analytics());
  {
    VerbClient client(server.port());
    ASSERT_GE(client.fd, 0);
    // Verbs interleave with the IPv4 fast path on one connection; the
    // wire default ranking depth is the formatter's (top 5).
    ASSERT_TRUE(client.send_all("top-ports\n10.1.0.7\noutages\nscanners 2\n"
                                "top-ports us\nnot-a-verb\n"));
    const auto lines = client.read_lines(6);
    ASSERT_EQ(lines.size(), 6u);
    EXPECT_EQ(lines[0], serve::answer_analytics_query(index, "top-ports"));
    EXPECT_EQ(lines[1],
              serve::format_verdict(*net::Ipv4Addr::parse("10.1.0.7"),
                                    index.lookup(*net::Ipv4Addr::parse("10.1.0.7"))));
    EXPECT_EQ(lines[2], serve::answer_analytics_query(index, "outages"));
    EXPECT_EQ(lines[3], serve::answer_analytics_query(index, "scanners 2"));
    EXPECT_EQ(lines[4], serve::answer_analytics_query(index, "top-ports us"));
    EXPECT_EQ(lines[5], "not-a-verb invalid");
  }
  server.request_stop();
  runner.join();
  EXPECT_GE(server.stats().queries, 5u);
}

// ---------------------------------------------------------------------------
// The scripted simulator outage, end to end.

using FlowTuple = std::tuple<std::uint32_t, std::uint32_t, std::uint16_t, std::uint16_t,
                             std::uint8_t, std::uint64_t, std::uint64_t>;

std::vector<FlowTuple> sorted_flow_tuples(const std::vector<flow::FlowRecord>& flows,
                                          const net::Prefix* excluding_dst = nullptr) {
  std::vector<FlowTuple> out;
  out.reserve(flows.size());
  for (const auto& r : flows) {
    if (excluding_dst != nullptr &&
        excluding_dst->contains(net::Block24::containing(r.key.dst))) {
      continue;
    }
    out.emplace_back(r.key.src.value(), r.key.dst.value(), r.key.src_port, r.key.dst_port,
                     static_cast<std::uint8_t>(r.key.proto), r.packets, r.bytes);
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(AnalyticsSimOutage, SuppressionTouchesNothingOutsideThePrefix) {
  constexpr std::uint64_t kSeed = 77;
  sim::SimConfig clean_config = sim::SimConfig::tiny(kSeed);
  sim::SimConfig outage_config = sim::SimConfig::tiny(kSeed);
  outage_config.outage = {/*start_day=*/2, /*duration_days=*/1};
  const sim::Simulation clean(clean_config);
  const sim::Simulation scripted(outage_config);

  const net::Prefix& prefix = scripted.plan().outage_prefix();
  EXPECT_LE(prefix.length(), 14);
  EXPECT_EQ(clean.plan().outage_prefix().to_string(), prefix.to_string());

  std::size_t removed = 0;
  for (int day = 0; day < 4; ++day) {
    for (std::size_t ixp = 0; ixp < clean.ixps().size(); ++ixp) {
      const auto base = clean.run_ixp_day(ixp, day).flows;
      const auto with = scripted.run_ixp_day(ixp, day).flows;
      if (day != 2) {
        // RNG preservation: days outside the outage are bit-identical.
        ASSERT_EQ(sorted_flow_tuples(with), sorted_flow_tuples(base))
            << "day " << day << " ixp " << ixp;
      } else {
        // The outage day loses dark-prefix-destined IBR and nothing else.
        // A single IXP may legitimately sample zero flows into the /14
        // that day, so the "something was removed" check is day-global.
        ASSERT_EQ(sorted_flow_tuples(with, &prefix), sorted_flow_tuples(base, &prefix))
            << "ixp " << ixp;
        const auto with_all = sorted_flow_tuples(with);
        const auto base_all = sorted_flow_tuples(base);
        EXPECT_TRUE(std::includes(base_all.begin(), base_all.end(), with_all.begin(),
                                  with_all.end()));
        removed += base_all.size() - with_all.size();
      }
    }
  }
  EXPECT_GT(removed, 0u) << "outage removed nothing anywhere";
}

/// Collect a 7-day tiny window with analytics and publish it the way
/// `mtscope infer --analytics` does.
TelescopeSnapshot analyzed_week(const sim::Simulation& simulation) {
  const auto ixps = pipeline::all_ixps(simulation);
  const std::vector<int> days{0, 1, 2, 3, 4, 5, 6};
  pipeline::CollectOptions options;
  options.threads = 4;
  options.shards = 4;
  options.analytics = true;
  const auto stats = pipeline::collect_stats(simulation, ixps, days, options);
  pipeline::PipelineConfig config;
  config.volume_scale = simulation.config().volume_scale;
  config.spoof_tolerance_pkts =
      pipeline::compute_spoof_tolerance(stats, simulation.plan().unrouted_slash8s());
  const auto registry = routing::SpecialPurposeRegistry::standard();
  const pipeline::InferenceEngine engine(config, simulation.plan().rib(), registry);
  const auto result = pipeline::parallel_infer(engine, stats, options.threads);

  serve::RunMetadata meta;
  meta.seed = simulation.config().seed;
  meta.days = 7;
  auto snapshot = serve::build_snapshot(result, simulation.plan().rib(), meta);
  snapshot.analytics = serve::build_analytics(stats.ibr(), snapshot,
                                              ingest::plan_labeler(simulation.plan()));
  return snapshot;
}

TEST(AnalyticsSimOutage, DetectorHasPerfectRecallAndZeroFalsePositives) {
  constexpr std::uint64_t kSeed = 42;
  sim::SimConfig clean_config = sim::SimConfig::tiny(kSeed);
  sim::SimConfig outage_config = sim::SimConfig::tiny(kSeed);
  outage_config.outage = {/*start_day=*/4, /*duration_days=*/2};

  // Zero false positives: a clean week raises no events at all.
  const sim::Simulation clean(clean_config);
  const auto clean_snapshot = analyzed_week(clean);
  ASSERT_TRUE(clean_snapshot.analytics.has_value());
  EXPECT_TRUE(clean_snapshot.analytics->outages.empty());

  // Perfect recall: the scripted silence is found, attributed to the dark
  // /14's covering announcement, on exactly the scripted days — and no
  // other prefix is dragged in (zero false positives under the outage run
  // too; ground truth labels exactly one).
  const sim::Simulation scripted(outage_config);
  const auto snapshot = analyzed_week(scripted);
  ASSERT_TRUE(snapshot.analytics.has_value());
  const auto& outages = snapshot.analytics->outages;
  ASSERT_EQ(outages.size(), 1u);
  EXPECT_EQ(snapshot.prefixes[outages[0].prefix_id].prefix().to_string(),
            scripted.plan().outage_prefix().to_string());
  EXPECT_EQ(outages[0].start_day, 4u);
  EXPECT_EQ(outages[0].end_day, 5u);
  EXPECT_EQ(outages[0].observed, 0u);
  EXPECT_EQ(outages[0].severity_pct, 100u);
  EXPECT_GE(outages[0].baseline, 5'000u);

  // The wire view of the same events.
  const serve::TelescopeIndex index(snapshot);
  const std::string reply = serve::answer_analytics_query(index, "outages");
  EXPECT_EQ(reply, "outages n=1 " + scripted.plan().outage_prefix().to_string() +
                       ":d4-d5:-100%");
}

// ---------------------------------------------------------------------------
// TelescopeIndex rollup edges: the range queries the scoped top-ports
// lean on.

TelescopeSnapshot rollup_snapshot() {
  TelescopeSnapshot snap;
  snap.prefixes.push_back(PrefixEntry{0x00000000u, 65'000, 8});
  // Extremes on purpose: the very first and very last possible /24.
  snap.blocks.push_back(BlockEntry::make(net::Block24(0x000000u), BlockClass::kDark, 0));
  snap.blocks.push_back(BlockEntry::make(block_at(10, 0, 1), BlockClass::kGray,
                                         BlockEntry::kNoPrefix));
  snap.blocks.push_back(BlockEntry::make(block_at(10, 0, 2), BlockClass::kDark,
                                         BlockEntry::kNoPrefix));
  snap.blocks.push_back(BlockEntry::make(net::Block24(0xffffffu), BlockClass::kUnclean,
                                         BlockEntry::kNoPrefix));
  snap.dark_count = 2;
  snap.unclean_count = 1;
  snap.gray_count = 1;
  return snap;
}

TEST(TelescopeIndexRollup, SlashZeroVisitsEveryBlockInOrder) {
  const serve::TelescopeIndex index(rollup_snapshot());
  const net::Prefix everything(net::Ipv4Addr(0), 0);
  std::vector<std::uint32_t> visited;
  index.for_each_in(everything,
                    [&](net::Block24 block, BlockClass) { visited.push_back(block.index()); });
  EXPECT_EQ(visited, (std::vector<std::uint32_t>{0x000000u, block_at(10, 0, 1).index(),
                                                 block_at(10, 0, 2).index(), 0xffffffu}));
  EXPECT_EQ(index.count_in(everything), 4u);
}

TEST(TelescopeIndexRollup, PrefixPastTheLastBlockVisitsNothing) {
  TelescopeSnapshot snap;
  snap.blocks.push_back(BlockEntry::make(block_at(10, 0, 0), BlockClass::kDark,
                                         BlockEntry::kNoPrefix));
  snap.dark_count = 1;
  const serve::TelescopeIndex index(std::move(snap));

  const auto beyond = *net::Prefix::parse("200.0.0.0/8");
  EXPECT_EQ(index.count_in(beyond), 0u);
  index.for_each_in(beyond, [](net::Block24, BlockClass) { FAIL() << "visited past end"; });

  const auto before = *net::Prefix::parse("9.0.0.0/8");
  EXPECT_EQ(index.count_in(before), 0u);
  EXPECT_EQ(index.count_in(*net::Prefix::parse("10.0.0.0/8")), 1u);
}

TEST(TelescopeIndexRollup, EmptySnapshotAnswersEveryRangeWithNothing) {
  const serve::TelescopeIndex index(TelescopeSnapshot{});
  EXPECT_EQ(index.size(), 0u);
  EXPECT_EQ(index.count_in(net::Prefix(net::Ipv4Addr(0), 0)), 0u);
  index.for_each_in(net::Prefix(net::Ipv4Addr(0), 0),
                    [](net::Block24, BlockClass) { FAIL() << "visited in empty index"; });
  EXPECT_EQ(index.count_in(*net::Prefix::parse("255.255.255.0/24")), 0u);
}

TEST(TelescopeIndexRollup, LongerThanSlash24VisitsNothing) {
  const serve::TelescopeIndex index(rollup_snapshot());
  const net::Prefix host(net::Ipv4Addr::from_octets(10, 0, 1, 0), 32);
  EXPECT_EQ(index.count_in(host), 0u);
  index.for_each_in(host, [](net::Block24, BlockClass) { FAIL() << "visited sub-/24 range"; });
}

TEST(TelescopeIndexRollup, CountMatchesVisitEverywhere) {
  const serve::TelescopeIndex index(rollup_snapshot());
  for (const char* text : {"0.0.0.0/8", "10.0.0.0/15", "10.0.0.0/23", "10.0.2.0/24",
                           "255.255.255.0/24", "128.0.0.0/1"}) {
    const auto prefix = *net::Prefix::parse(text);
    std::size_t visits = 0;
    index.for_each_in(prefix, [&](net::Block24 block, BlockClass) {
      EXPECT_TRUE(prefix.contains(block)) << text;
      ++visits;
    });
    EXPECT_EQ(index.count_in(prefix), visits) << text;
  }
}

}  // namespace
}  // namespace mtscope
