// FlowBatch is pure projection: every column must equal the value the
// per-record ingest path computes from the same FlowRecord.  These tests
// pin that equivalence field by field (the batched differential grid in
// test_parallel_pipeline then pins the whole pipeline), plus the reuse
// contract — a decode replaces previous contents entirely.
#include <gtest/gtest.h>

#include <vector>

#include "flow/flow_batch.hpp"
#include "flow/record.hpp"
#include "net/ipv4.hpp"
#include "util/rng.hpp"

namespace mtscope {
namespace {

std::vector<flow::FlowRecord> make_records(std::size_t count, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<flow::FlowRecord> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    flow::FlowRecord r;
    r.key.src = net::Ipv4Addr(static_cast<std::uint32_t>(rng.uniform(std::uint64_t{1} << 32)));
    r.key.dst = net::Ipv4Addr(static_cast<std::uint32_t>(rng.uniform(std::uint64_t{1} << 32)));
    r.key.dst_port = static_cast<std::uint16_t>(rng.uniform(65536));
    r.key.proto = rng.chance(0.7) ? net::IpProto::kTcp
                                  : (rng.chance(0.5) ? net::IpProto::kUdp
                                                     : net::IpProto::kIcmp);
    r.packets = 1 + rng.uniform(1000);
    r.bytes = r.packets * (40 + rng.uniform(1400));
    r.sampling_rate = 1000;
    out.push_back(r);
  }
  return out;
}

void expect_matches_records(const flow::FlowBatch& batch,
                            std::span<const flow::FlowRecord> records,
                            std::uint32_t sampling_rate) {
  ASSERT_EQ(batch.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    const flow::FlowRecord& r = records[i];
    // Same arithmetic the per-record path runs inside add_flow_rx/tx.
    EXPECT_EQ(batch.dst_block()[i], net::Block24::containing(r.key.dst).index()) << i;
    EXPECT_EQ(batch.dst_host()[i], static_cast<std::uint8_t>(r.key.dst.value() & 0xff))
        << i;
    EXPECT_EQ(batch.src_block()[i], net::Block24::containing(r.key.src).index()) << i;
    EXPECT_EQ(batch.src_host()[i], static_cast<std::uint8_t>(r.key.src.value() & 0xff))
        << i;
    EXPECT_EQ(batch.packets()[i], r.packets) << i;
    EXPECT_EQ(batch.est_packets()[i], r.packets * sampling_rate) << i;
    EXPECT_EQ(batch.bytes()[i], r.bytes) << i;
    EXPECT_EQ(batch.tcp()[i], r.key.proto == net::IpProto::kTcp ? 1 : 0) << i;
  }
}

TEST(FlowBatch, DecodeProjectsEveryHotField) {
  const auto records = make_records(513, 7);
  flow::FlowBatch batch;
  batch.decode(records, 1000);
  expect_matches_records(batch, records, 1000);
}

TEST(FlowBatch, EmptyDecode) {
  flow::FlowBatch batch;
  batch.decode({}, 100);
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.size(), 0u);
}

TEST(FlowBatch, SingleRecord) {
  const auto records = make_records(1, 11);
  flow::FlowBatch batch;
  batch.decode(records, 64);
  expect_matches_records(batch, records, 64);
}

TEST(FlowBatch, ReuseReplacesPreviousContents) {
  // The collector reuses one batch per worker across thousands of chunks;
  // a decode after a larger decode must not leak stale rows.
  const auto big = make_records(1000, 13);
  const auto small = make_records(37, 17);
  flow::FlowBatch batch;
  batch.decode(big, 100);
  ASSERT_EQ(batch.size(), big.size());
  batch.decode(small, 250);
  expect_matches_records(batch, small, 250);
}

TEST(FlowBatch, ClearEmptiesColumns) {
  flow::FlowBatch batch;
  batch.decode(make_records(64, 19), 100);
  batch.clear();
  EXPECT_TRUE(batch.empty());
  EXPECT_TRUE(batch.dst_block().empty());
  EXPECT_TRUE(batch.tcp().empty());
}

TEST(FlowBatch, ChunkedDecodeCoversWholeSpan) {
  // The worker loop slices a dataset into subspans; decoded chunks
  // concatenated must cover exactly the records of the whole span.
  const auto records = make_records(300, 23);
  const std::span<const flow::FlowRecord> all(records);
  flow::FlowBatch batch;
  std::size_t covered = 0;
  for (std::size_t first = 0; first < all.size(); first += 128) {
    const std::size_t count = std::min<std::size_t>(128, all.size() - first);
    batch.decode(all.subspan(first, count), 500);
    expect_matches_records(batch, all.subspan(first, count), 500);
    covered += batch.size();
  }
  EXPECT_EQ(covered, records.size());
}

}  // namespace
}  // namespace mtscope
