#include "telemetry/ecdf.hpp"

#include <gtest/gtest.h>

namespace mtscope::telemetry {
namespace {

TEST(Ecdf, FractionAtMost) {
  Ecdf e({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(e.fraction_at_most(0.5), 0.0);
  EXPECT_DOUBLE_EQ(e.fraction_at_most(1.0), 0.25);
  EXPECT_DOUBLE_EQ(e.fraction_at_most(2.5), 0.5);
  EXPECT_DOUBLE_EQ(e.fraction_at_most(4.0), 1.0);
  EXPECT_DOUBLE_EQ(e.fraction_at_most(99.0), 1.0);
}

TEST(Ecdf, EmptyBehaviour) {
  Ecdf e;
  EXPECT_TRUE(e.empty());
  EXPECT_DOUBLE_EQ(e.fraction_at_most(1.0), 0.0);
  EXPECT_THROW((void)e.quantile(0.5), std::logic_error);
  EXPECT_THROW((void)e.min(), std::logic_error);
  EXPECT_THROW((void)e.mean(), std::logic_error);
}

TEST(Ecdf, AddKeepsWorking) {
  Ecdf e;
  e.add(5.0);
  e.add(1.0);
  e.add(3.0);
  EXPECT_EQ(e.size(), 3u);
  EXPECT_DOUBLE_EQ(e.min(), 1.0);
  EXPECT_DOUBLE_EQ(e.max(), 5.0);
  EXPECT_DOUBLE_EQ(e.mean(), 3.0);
  EXPECT_DOUBLE_EQ(e.fraction_at_most(3.0), 2.0 / 3.0);
}

TEST(Ecdf, QuantileInverse) {
  Ecdf e({10.0, 20.0, 30.0, 40.0, 50.0});
  EXPECT_DOUBLE_EQ(e.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.2), 10.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.5), 30.0);
  EXPECT_DOUBLE_EQ(e.quantile(1.0), 50.0);
}

TEST(Ecdf, QuantileFractionConsistency) {
  Ecdf e({1, 2, 2, 3, 5, 8, 13, 21});
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    EXPECT_GE(e.fraction_at_most(e.quantile(q)), q);
  }
}

TEST(Ecdf, SampleCurveMonotone) {
  Ecdf e({1.0, 5.0, 9.0});
  const auto curve = e.sample_curve(0.0, 10.0, 11);
  ASSERT_EQ(curve.size(), 11u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].second, curve[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(curve.front().second, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
  EXPECT_THROW((void)e.sample_curve(0, 1, 1), std::invalid_argument);
}

TEST(Ecdf, SparklineShape) {
  Ecdf e({0.5});
  const std::string line = e.sparkline(0.0, 1.0, 20);
  EXPECT_EQ(line.size(), 20u);
  EXPECT_EQ(line.front(), ' ');   // below the sample: fraction 0
  EXPECT_EQ(line.back(), '@');    // above: fraction 1
}

TEST(Ecdf, SparklineRejectsDegenerateWidths) {
  // Regression: width 1 used to divide by (width - 1) == 0 inside
  // sample_curve and width 0 returned an empty string without complaint.
  // Both now throw, matching the sample_curve contract.
  Ecdf e({0.5});
  EXPECT_THROW((void)e.sparkline(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW((void)e.sparkline(0.0, 1.0, 1), std::invalid_argument);

  const std::string line = e.sparkline(0.0, 1.0, 2);  // smallest legal width
  EXPECT_EQ(line.size(), 2u);
  EXPECT_EQ(line.front(), ' ');
  EXPECT_EQ(line.back(), '@');
}

}  // namespace
}  // namespace mtscope::telemetry
