#include "net/ipv4.hpp"

#include <gtest/gtest.h>

namespace mtscope::net {
namespace {

TEST(Ipv4Addr, FromOctetsAndBack) {
  const Ipv4Addr a = Ipv4Addr::from_octets(192, 0, 2, 1);
  EXPECT_EQ(a.value(), 0xc0000201u);
  EXPECT_EQ(a.octet(0), 192);
  EXPECT_EQ(a.octet(1), 0);
  EXPECT_EQ(a.octet(2), 2);
  EXPECT_EQ(a.octet(3), 1);
  EXPECT_EQ(a.to_string(), "192.0.2.1");
}

struct ParseCase {
  const char* text;
  bool valid;
  std::uint32_t value;
};

class Ipv4Parse : public ::testing::TestWithParam<ParseCase> {};

TEST_P(Ipv4Parse, Matches) {
  const ParseCase& c = GetParam();
  const auto parsed = Ipv4Addr::parse(c.text);
  EXPECT_EQ(parsed.has_value(), c.valid) << c.text;
  if (c.valid && parsed) {
    EXPECT_EQ(parsed->value(), c.value) << c.text;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, Ipv4Parse,
    ::testing::Values(
        ParseCase{"0.0.0.0", true, 0x00000000u},
        ParseCase{"255.255.255.255", true, 0xffffffffu},
        ParseCase{"10.1.2.3", true, 0x0a010203u},
        ParseCase{"1.2.3", false, 0},         // missing octet
        ParseCase{"1.2.3.4.5", false, 0},     // extra octet
        ParseCase{"256.1.1.1", false, 0},     // octet overflow
        ParseCase{"1.2.3.x", false, 0},       // garbage
        ParseCase{"", false, 0},
        ParseCase{"1..2.3", false, 0},
        ParseCase{" 1.2.3.4", false, 0},      // leading whitespace
        ParseCase{"1.2.3.4 ", false, 0},      // trailing whitespace
        ParseCase{" 1.2.3.4 ", false, 0},     // padded both sides (callers must trim)
        ParseCase{"1.2.3.4\r", false, 0},     // CRLF remnant (callers must trim)
        ParseCase{"1.2.3.4\n", false, 0},     // stray newline
        ParseCase{"\t1.2.3.4", false, 0},     // tab padding
        ParseCase{"+1.2.3.4", false, 0},      // explicit sign
        ParseCase{"1.2.3.+4", false, 0},      // signed inner octet
        ParseCase{"-1.2.3.4", false, 0},      // negative octet
        ParseCase{"1.2.3.4.", false, 0},      // trailing dot
        ParseCase{".1.2.3.4", false, 0},      // leading dot
        ParseCase{"0001.2.3.4", false, 0}));  // over-long octet

TEST(Ipv4Addr, Ordering) {
  EXPECT_LT(Ipv4Addr(1), Ipv4Addr(2));
  EXPECT_EQ(Ipv4Addr(7), Ipv4Addr(7));
}

TEST(Ipv4Addr, RoundTripAllOctetEdges) {
  for (std::uint32_t v : {0u, 1u, 0x7fffffffu, 0x80000000u, 0xffffffffu, 0x0a0b0c0du}) {
    const Ipv4Addr a(v);
    const auto parsed = Ipv4Addr::parse(a.to_string());
    ASSERT_TRUE(parsed);
    EXPECT_EQ(parsed->value(), v);
  }
}

TEST(Block24, ContainingAndBounds) {
  const Ipv4Addr addr = Ipv4Addr::from_octets(198, 51, 100, 37);
  const Block24 block = Block24::containing(addr);
  EXPECT_TRUE(block.contains(addr));
  EXPECT_EQ(block.first_address(), Ipv4Addr::from_octets(198, 51, 100, 0));
  EXPECT_EQ(block.last_address(), Ipv4Addr::from_octets(198, 51, 100, 255));
  EXPECT_FALSE(block.contains(Ipv4Addr::from_octets(198, 51, 101, 0)));
  EXPECT_EQ(block.to_string(), "198.51.100.0/24");
}

TEST(Block24, IndexMasked) {
  // Constructor masks to 24 bits.
  EXPECT_EQ(Block24(0xff000001u).index(), 0x000001u);
  EXPECT_EQ(Block24::kUniverseSize, 1u << 24);
}

TEST(AsNumber, Basics) {
  const AsNumber asn(64512);
  EXPECT_EQ(asn.value(), 64512u);
  EXPECT_EQ(asn.to_string(), "AS64512");
  EXPECT_LT(AsNumber(1), AsNumber(2));
}

TEST(HashSpecializations, Usable) {
  EXPECT_EQ(std::hash<Ipv4Addr>{}(Ipv4Addr(5)), std::hash<Ipv4Addr>{}(Ipv4Addr(5)));
  EXPECT_EQ(std::hash<Block24>{}(Block24(9)), std::hash<Block24>{}(Block24(9)));
  EXPECT_EQ(std::hash<AsNumber>{}(AsNumber(3)), std::hash<AsNumber>{}(AsNumber(3)));
}

}  // namespace
}  // namespace mtscope::net
