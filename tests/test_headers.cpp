#include "net/headers.hpp"

#include <gtest/gtest.h>

#include "net/checksum.hpp"

namespace mtscope::net {
namespace {

TEST(Ipv4Header, SerializeParseRoundTrip) {
  Ipv4Header h;
  h.total_length = 40;
  h.identification = 0x1234;
  h.ttl = 57;
  h.protocol = IpProto::kTcp;
  h.src = Ipv4Addr::from_octets(10, 1, 2, 3);
  h.dst = Ipv4Addr::from_octets(198, 51, 100, 7);

  std::vector<std::uint8_t> wire;
  h.serialize(wire);
  ASSERT_EQ(wire.size(), Ipv4Header::kMinSize);

  auto parsed = Ipv4Header::parse(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().src, h.src);
  EXPECT_EQ(parsed.value().dst, h.dst);
  EXPECT_EQ(parsed.value().total_length, 40);
  EXPECT_EQ(parsed.value().identification, 0x1234);
  EXPECT_EQ(parsed.value().ttl, 57);
}

TEST(Ipv4Header, ChecksumValidated) {
  Ipv4Header h;
  h.total_length = 40;
  std::vector<std::uint8_t> wire;
  h.serialize(wire);
  wire[8] ^= 0xff;  // corrupt TTL
  auto parsed = Ipv4Header::parse(wire);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().code, "ipv4.checksum");
}

TEST(Ipv4Header, RejectsTruncationAndBadVersion) {
  std::vector<std::uint8_t> tiny(10, 0);
  EXPECT_FALSE(Ipv4Header::parse(tiny).ok());

  Ipv4Header h;
  h.total_length = 40;
  std::vector<std::uint8_t> wire;
  h.serialize(wire);
  wire[0] = (6u << 4) | 5;  // IPv6 version nibble
  EXPECT_EQ(Ipv4Header::parse(wire).error().code, "ipv4.version");
}

TEST(Ipv4Header, OptionsViaIhl) {
  Ipv4Header h;
  h.ihl = 7;  // 8 option bytes
  h.total_length = 48;
  std::vector<std::uint8_t> wire;
  h.serialize(wire);
  ASSERT_EQ(wire.size(), 28u);
  auto parsed = Ipv4Header::parse(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().ihl, 7);
}

TEST(TcpHeader, RoundTripWithChecksum) {
  const Ipv4Addr src = Ipv4Addr::from_octets(1, 2, 3, 4);
  const Ipv4Addr dst = Ipv4Addr::from_octets(5, 6, 7, 8);
  TcpHeader t;
  t.src_port = 43210;
  t.dst_port = 443;
  t.seq = 0xdeadbeef;
  t.flags = TcpFlags::kSyn;

  std::vector<std::uint8_t> wire;
  t.serialize(wire, src, dst);
  ASSERT_EQ(wire.size(), TcpHeader::kMinSize);

  auto parsed = TcpHeader::parse(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().src_port, 43210);
  EXPECT_EQ(parsed.value().dst_port, 443);
  EXPECT_EQ(parsed.value().seq, 0xdeadbeefu);
  EXPECT_EQ(parsed.value().flags, TcpFlags::kSyn);

  // Verify the transport checksum over pseudo-header + segment.
  ChecksumAccumulator acc;
  acc.update_word(static_cast<std::uint16_t>(src.value() >> 16));
  acc.update_word(static_cast<std::uint16_t>(src.value() & 0xffff));
  acc.update_word(static_cast<std::uint16_t>(dst.value() >> 16));
  acc.update_word(static_cast<std::uint16_t>(dst.value() & 0xffff));
  acc.update_word(6);  // TCP
  acc.update_word(static_cast<std::uint16_t>(wire.size()));
  acc.update(wire);
  EXPECT_EQ(acc.finish(), 0);
}

TEST(UdpHeader, RoundTripAndLength) {
  const Ipv4Addr src = Ipv4Addr::from_octets(9, 9, 9, 9);
  const Ipv4Addr dst = Ipv4Addr::from_octets(8, 8, 8, 8);
  UdpHeader u;
  u.src_port = 5353;
  u.dst_port = 53;
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};

  std::vector<std::uint8_t> wire;
  u.serialize(wire, src, dst, payload);
  ASSERT_EQ(wire.size(), UdpHeader::kSize + payload.size());

  auto parsed = UdpHeader::parse(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().length, wire.size());
  EXPECT_NE(parsed.value().checksum, 0);  // RFC 768 zero-means-absent
}

TEST(IcmpHeader, RoundTrip) {
  IcmpHeader i;
  i.type = 8;
  i.code = 0;
  i.rest = 0x00010002;
  std::vector<std::uint8_t> wire;
  i.serialize(wire);
  auto parsed = IcmpHeader::parse(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().type, 8);
  EXPECT_EQ(parsed.value().rest, 0x00010002u);
  EXPECT_EQ(internet_checksum(wire), 0);
}

struct SynthCase {
  IpProto proto;
  std::uint16_t requested_length;
};

class SynthesizePacket : public ::testing::TestWithParam<SynthCase> {};

TEST_P(SynthesizePacket, ParsesBackAndHonoursLength) {
  const SynthCase& c = GetParam();
  const auto wire = synthesize_packet(Ipv4Addr::from_octets(10, 0, 0, 1),
                                      Ipv4Addr::from_octets(10, 0, 0, 2), c.proto, 1234, 80,
                                      TcpFlags::kSyn, c.requested_length);
  auto parsed = parse_packet(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().ip.protocol, c.proto);
  EXPECT_EQ(parsed.value().ip.total_length, wire.size());
  EXPECT_GE(wire.size(), c.requested_length);  // padded up to minimum if needed
  if (c.proto != IpProto::kIcmp) {
    EXPECT_EQ(parsed.value().src_port, 1234);
    EXPECT_EQ(parsed.value().dst_port, 80);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SynthesizePacket,
                         ::testing::Values(SynthCase{IpProto::kTcp, 40},
                                           SynthCase{IpProto::kTcp, 48},
                                           SynthCase{IpProto::kTcp, 56},
                                           SynthCase{IpProto::kTcp, 1500},
                                           SynthCase{IpProto::kTcp, 0},  // clamped to min
                                           SynthCase{IpProto::kUdp, 28},
                                           SynthCase{IpProto::kUdp, 300},
                                           SynthCase{IpProto::kIcmp, 28}));

TEST(SynthesizePacket, Exact40ByteSynIsMinimal) {
  const auto wire = synthesize_packet(Ipv4Addr(1), Ipv4Addr(2), IpProto::kTcp, 1, 23,
                                      TcpFlags::kSyn, 40);
  EXPECT_EQ(wire.size(), 40u);  // 20 IP + 20 TCP, no options
  auto parsed = parse_packet(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().tcp_flags, TcpFlags::kSyn);
}

TEST(SynthesizePacket, FortyEightByteSynUsesOptions) {
  const auto wire = synthesize_packet(Ipv4Addr(1), Ipv4Addr(2), IpProto::kTcp, 1, 23,
                                      TcpFlags::kSyn, 48);
  EXPECT_EQ(wire.size(), 48u);
  auto tcp = TcpHeader::parse(std::span<const std::uint8_t>(wire).subspan(20));
  ASSERT_TRUE(tcp.ok());
  EXPECT_EQ(tcp.value().data_offset, 7);  // 28-byte TCP header
}

TEST(ParsePacket, RejectsUnknownTransport) {
  Ipv4Header h;
  h.total_length = 28;
  h.protocol = static_cast<IpProto>(132);  // SCTP, unsupported
  std::vector<std::uint8_t> wire;
  h.serialize(wire);
  wire.resize(28, 0);
  auto parsed = parse_packet(wire);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().code, "ip.protocol");
}

TEST(ParsePacket, RejectsTruncatedTransport) {
  Ipv4Header h;
  h.total_length = 30;
  h.protocol = IpProto::kTcp;
  std::vector<std::uint8_t> wire;
  h.serialize(wire);
  wire.resize(30, 0);  // only 10 bytes of "TCP"
  EXPECT_FALSE(parse_packet(wire).ok());
}

}  // namespace
}  // namespace mtscope::net
