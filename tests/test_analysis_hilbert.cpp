#include "analysis/hilbert_map.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace mtscope::analysis {
namespace {

TEST(HilbertMap, CountsClassifiedPixels) {
  const HilbertMap map(44, [](net::Block24 block) {
    const std::uint32_t i = block.index() & 0xffff;
    if (i < 16384) return HilbertPixel::kDark;
    if (i < 32768) return HilbertPixel::kMarked;
    if (i < 49152) return HilbertPixel::kDarkMarked;
    return HilbertPixel::kNoData;
  });
  EXPECT_EQ(map.count(HilbertPixel::kDark), 16384u);
  EXPECT_EQ(map.count(HilbertPixel::kMarked), 16384u);
  EXPECT_EQ(map.count(HilbertPixel::kDarkMarked), 16384u);
  EXPECT_EQ(map.count(HilbertPixel::kNoData), 16384u);
}

TEST(HilbertMap, FirstQuarterFillsOneQuadrant) {
  // The first /10 of the /8 occupies exactly one 128x128 quadrant.
  const HilbertMap map(44, [](net::Block24 block) {
    return (block.index() & 0xffff) < 16384 ? HilbertPixel::kDark : HilbertPixel::kNoData;
  });
  std::uint32_t dark_in_q = 0;
  for (std::uint32_t y = 0; y < 128; ++y) {
    for (std::uint32_t x = 0; x < 128; ++x) {
      if (map.at(x, y) == HilbertPixel::kDark) ++dark_in_q;
    }
  }
  EXPECT_EQ(dark_in_q, 16384u);
}

TEST(HilbertMap, AtBoundsChecked) {
  const HilbertMap map(44, [](net::Block24) { return HilbertPixel::kNoData; });
  EXPECT_THROW((void)map.at(256, 0), std::out_of_range);
  EXPECT_THROW((void)map.at(0, 256), std::out_of_range);
}

TEST(HilbertMap, AsciiRendering) {
  const HilbertMap map(44, [](net::Block24 block) {
    return (block.index() & 0xffff) < 32768 ? HilbertPixel::kDark : HilbertPixel::kNoData;
  });
  const std::string art = map.render_ascii(64);
  // 64 columns + newline, 64 rows.
  EXPECT_EQ(art.size(), 65u * 64u);
  EXPECT_NE(art.find('#'), std::string::npos);  // dense dark region present
  EXPECT_NE(art.find(' '), std::string::npos);  // empty region present
  EXPECT_THROW((void)map.render_ascii(0), std::invalid_argument);
  EXPECT_THROW((void)map.render_ascii(512), std::invalid_argument);
}

TEST(HilbertMap, MarkedRegionRenders) {
  const HilbertMap map(44, [](net::Block24 block) {
    return (block.index() & 0xffff) < 16384 ? HilbertPixel::kMarked : HilbertPixel::kNoData;
  });
  const std::string art = map.render_ascii(32);
  EXPECT_NE(art.find('+'), std::string::npos);
}

TEST(HilbertMap, PgmOutput) {
  const HilbertMap map(44, [](net::Block24 block) {
    return (block.index() & 0xffff) == 0 ? HilbertPixel::kDark : HilbertPixel::kNoData;
  });
  std::stringstream out;
  map.write_pgm(out);
  const std::string data = out.str();
  EXPECT_TRUE(data.starts_with("P5\n256 256\n255\n"));
  EXPECT_EQ(data.size(), std::string("P5\n256 256\n255\n").size() + 256 * 256);
  // Exactly one black pixel (value 0).
  std::size_t zeros = 0;
  for (std::size_t i = 15; i < data.size(); ++i) {
    if (data[i] == '\0') ++zeros;
  }
  EXPECT_EQ(zeros, 1u);
}

}  // namespace
}  // namespace mtscope::analysis
