#include "routing/special_purpose.hpp"

#include <gtest/gtest.h>

namespace mtscope::routing {
namespace {

using net::Block24;
using net::Ipv4Addr;

struct ReservedCase {
  const char* address;
  bool reserved;
};

class StandardRegistry : public ::testing::TestWithParam<ReservedCase> {};

TEST_P(StandardRegistry, Classification) {
  const auto registry = SpecialPurposeRegistry::standard();
  const auto addr = Ipv4Addr::parse(GetParam().address);
  ASSERT_TRUE(addr);
  EXPECT_EQ(registry.is_reserved(*addr), GetParam().reserved) << GetParam().address;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, StandardRegistry,
    ::testing::Values(ReservedCase{"10.1.2.3", true},          // RFC1918
                      ReservedCase{"172.16.0.1", true},        // RFC1918
                      ReservedCase{"172.32.0.1", false},       // just outside /12
                      ReservedCase{"192.168.255.255", true},   // RFC1918
                      ReservedCase{"127.0.0.1", true},         // loopback
                      ReservedCase{"169.254.1.1", true},       // link local
                      ReservedCase{"100.64.0.1", true},        // CGN
                      ReservedCase{"100.128.0.1", false},      // outside CGN /10
                      ReservedCase{"192.0.2.7", true},         // TEST-NET-1
                      ReservedCase{"198.18.0.1", true},        // benchmarking
                      ReservedCase{"198.20.0.1", false},
                      ReservedCase{"224.0.0.1", true},         // multicast
                      ReservedCase{"240.0.0.1", true},         // reserved
                      ReservedCase{"255.255.255.255", true},   // broadcast
                      ReservedCase{"0.1.2.3", true},           // this network
                      ReservedCase{"192.88.99.1", false},      // 6to4 anycast: global
                      ReservedCase{"8.8.8.8", false},
                      ReservedCase{"203.0.114.1", false}));    // adjacent to TEST-NET-3

TEST(SpecialPurposeRegistry, BlockGranularity) {
  const auto registry = SpecialPurposeRegistry::standard();
  EXPECT_TRUE(registry.is_reserved(Block24::containing(Ipv4Addr::from_octets(10, 0, 0, 0))));
  EXPECT_FALSE(registry.is_reserved(Block24::containing(Ipv4Addr::from_octets(9, 255, 255, 0))));
}

TEST(SpecialPurposeRegistry, LookupReturnsEntryMetadata) {
  const auto registry = SpecialPurposeRegistry::standard();
  const auto* entry = registry.lookup(Ipv4Addr::from_octets(192, 0, 2, 1));
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->rfc, "RFC5737");
  EXPECT_EQ(registry.lookup(Ipv4Addr::from_octets(8, 8, 8, 8)), nullptr);
}

TEST(SpecialPurposeRegistry, MostSpecificEntryWins) {
  SpecialPurposeRegistry registry;
  registry.add({*net::Prefix::parse("192.0.0.0/8"), "outer", "X", true});
  registry.add({*net::Prefix::parse("192.0.2.0/24"), "inner", "Y", false});
  const auto* entry = registry.lookup(Ipv4Addr::from_octets(192, 0, 2, 9));
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->name, "inner");
  EXPECT_TRUE(registry.is_reserved(Ipv4Addr::from_octets(192, 0, 2, 9)));
  EXPECT_FALSE(registry.is_reserved(Ipv4Addr::from_octets(192, 9, 9, 9)));
}

TEST(SpecialPurposeRegistry, StandardEntryCount) {
  EXPECT_EQ(SpecialPurposeRegistry::standard().size(), 16u);
}

}  // namespace
}  // namespace mtscope::routing
