// The streaming ingest tentpole, proven differentially (DESIGN.md §13):
//
//  * the differential grid — seeds x funnel threads x window lengths x
//    eviction schedules — drives a SlidingWindow day by day and, at every
//    advance step, demands the incremental window's stats, InferenceResult
//    AND serialized snapshot be byte-identical to a from-scratch batch run
//    over the same retained days;
//  * the daemon differential — every epoch `mtscope ingest` publishes from
//    a simulated flow stream must be byte-identical to the batch
//    collect_stats + infer + build_snapshot pipeline over that epoch's
//    window, spoofing tolerance re-derived per window included;
//  * the zero-touch end-to-end — an IngestDaemon publishes consecutive
//    epochs into a live watching QueryServer while a client queries
//    continuously: every epoch must be picked up without a signal, every
//    reply must byte-match a published epoch's verdict (continuity across
//    the swap), and no query may be dropped.
//
// Under MTSCOPE_SANITIZE=thread/address this binary doubles as the
// tsan_ingest_smoke / asan_ingest_smoke sanitizer ctests.
#include "ingest/window.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iterator>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ingest/daemon.hpp"
#include "ingest/flow_stream.hpp"
#include "ingest/publish.hpp"
#include "pipeline/collector.hpp"
#include "pipeline/inference.hpp"
#include "pipeline/parallel.hpp"
#include "pipeline/spoof_tolerance.hpp"
#include "serve/server.hpp"
#include "serve/snapshot.hpp"
#include "serve/telescope_index.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"

namespace mtscope {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// Synthetic datasets for the grid: deterministic flows in 60/8, two
// vantage points per day, occasionally TCP-light — the same address space
// and shape the pipeline property tests use.

constexpr std::uint32_t kSampling = 100;
constexpr int kVantages = 2;

std::vector<flow::FlowRecord> dataset_flows(std::uint64_t seed, int day, int vantage) {
  util::Rng rng(seed * 1'000'003 + static_cast<std::uint64_t>(day) * 131 +
                static_cast<std::uint64_t>(vantage));
  std::vector<flow::FlowRecord> out;
  out.reserve(3000);
  for (std::size_t i = 0; i < 3000; ++i) {
    flow::FlowRecord r;
    r.key.src = net::Ipv4Addr((60u << 24) | static_cast<std::uint32_t>(rng.uniform(1u << 20)));
    r.key.dst = net::Ipv4Addr((60u << 24) | static_cast<std::uint32_t>(rng.uniform(1u << 20)));
    r.key.src_port = static_cast<std::uint16_t>(rng.uniform(65536));
    r.key.dst_port = static_cast<std::uint16_t>(rng.uniform(65536));
    r.key.proto = rng.chance(0.85) ? net::IpProto::kTcp : net::IpProto::kUdp;
    r.packets = 1 + rng.uniform(4);
    r.bytes = r.packets * (rng.chance(0.8) ? 40 : 1400);
    r.sampling_rate = kSampling;
    out.push_back(r);
  }
  return out;
}

const routing::Rib& grid_rib() {
  static const routing::Rib rib = [] {
    routing::Rib r;
    r.announce(*net::Prefix::parse("60.0.0.0/8"), net::AsNumber(1));
    return r;
  }();
  return rib;
}

pipeline::InferenceResult grid_infer(const pipeline::VantageStats& stats, unsigned threads) {
  static const routing::SpecialPurposeRegistry registry =
      routing::SpecialPurposeRegistry::standard();
  const pipeline::InferenceEngine engine({}, grid_rib(), registry);
  return pipeline::parallel_infer(engine, stats, threads);
}

/// The daemon's byte contract, reproduced for a synthetic window: serialize
/// through the same metadata function every publish uses.
std::vector<std::uint8_t> grid_snapshot_bytes(const pipeline::InferenceResult& result,
                                              std::uint64_t seed, int window_days,
                                              const std::vector<int>& days,
                                              std::uint64_t flows_ingested) {
  const auto meta = ingest::publish_metadata({seed, true}, window_days, days, flows_ingested,
                                             0, 1'700'000'000);
  return serve::serialize_snapshot(serve::build_snapshot(result, grid_rib(), meta));
}

/// Full structural equality (same checks as the pipeline property suite).
void expect_stats_equal(const pipeline::VantageStats& x, const pipeline::VantageStats& y) {
  EXPECT_EQ(x.day_count(), y.day_count());
  EXPECT_EQ(x.flows_ingested(), y.flows_ingested());
  ASSERT_EQ(x.blocks().size(), y.blocks().size());
  for (const pipeline::BlockStatsStore::ConstRow xo : x.blocks()) {
    const net::Block24 block = xo.block();
    const pipeline::BlockStatsStore::ConstRow yo = y.find(block);
    ASSERT_TRUE(yo) << block.to_string();
    EXPECT_EQ(xo.rx_packets(), yo.rx_packets()) << block.to_string();
    EXPECT_EQ(xo.rx_tcp_packets(), yo.rx_tcp_packets()) << block.to_string();
    EXPECT_EQ(xo.rx_tcp_bytes(), yo.rx_tcp_bytes()) << block.to_string();
    EXPECT_EQ(xo.rx_est_packets(), yo.rx_est_packets()) << block.to_string();
    EXPECT_EQ(xo.tx_packets(), yo.tx_packets()) << block.to_string();
  }
}

void expect_results_equal(const pipeline::InferenceResult& x,
                          const pipeline::InferenceResult& y) {
  EXPECT_EQ(x.funnel, y.funnel);
  EXPECT_EQ(x.dark, y.dark);
  EXPECT_EQ(x.unclean_blocks, y.unclean_blocks);
  EXPECT_EQ(x.gray_blocks, y.gray_blocks);
  EXPECT_EQ(x.unclean, y.unclean);
  EXPECT_EQ(x.gray, y.gray);
}

// ---------------------------------------------------------------------------
// The differential grid.

struct GridCase {
  std::uint64_t seed = 0;
  int window_days = 1;
  bool deferred_eviction = false;  // advance every other day instead of daily

  friend std::ostream& operator<<(std::ostream& os, const GridCase& c) {
    return os << "seed" << c.seed << "_w" << c.window_days
              << (c.deferred_eviction ? "_deferred" : "_daily");
  }
};

std::vector<GridCase> grid_cases() {
  std::vector<GridCase> cases;
  for (const std::uint64_t seed : {42ull, 7ull, 1337ull}) {
    for (const int window : {1, 3, 7}) {
      for (const bool deferred : {false, true}) {
        cases.push_back({seed, window, deferred});
      }
    }
  }
  return cases;
}

class IngestDifferential : public ::testing::TestWithParam<GridCase> {};

TEST_P(IngestDifferential, IncrementalWindowMatchesBatchAtEveryAdvanceStep) {
  const auto [seed, window_days, deferred] = GetParam();
  const int total_days = window_days + 2;  // at least two evictions happen
  constexpr int kEmptyDay = 1;             // an outage day: elapses, carries no data

  ingest::SlidingWindow window(window_days);
  int compared_steps = 0;

  for (int day = 0; day < total_days; ++day) {
    if (day != kEmptyDay) {
      for (int v = 0; v < kVantages; ++v) {
        window.add_flows(day, dataset_flows(seed, day, v), kSampling);
      }
    }
    window.note_day(day);

    // Daily schedule advances (and compares) after every day; the deferred
    // schedule lets admissions pile up and evicts two days at once.
    if (deferred && day % 2 == 0 && day != total_days - 1) continue;
    window.advance_to(day);

    std::vector<int> retained;
    for (int d = std::max(0, day - window_days + 1); d <= day; ++d) retained.push_back(d);
    ASSERT_EQ(window.days(), retained);

    // The from-scratch batch baseline over exactly the retained days.
    pipeline::VantageStats batch;
    for (const int d : retained) {
      if (d != kEmptyDay) {
        for (int v = 0; v < kVantages; ++v) {
          batch.add_flows(dataset_flows(seed, d, v), kSampling, d);
        }
      }
      batch.note_day(d);
    }

    const pipeline::VantageStats merged = window.merged();
    expect_stats_equal(merged, batch);

    const auto batch_result = grid_infer(batch, 1);
    const auto batch_bytes =
        grid_snapshot_bytes(batch_result, seed, window_days, retained, batch.flows_ingested());
    for (const unsigned threads : {1u, 4u}) {
      const auto incremental = grid_infer(merged, threads);
      expect_results_equal(incremental, batch_result);
      const auto incremental_bytes = grid_snapshot_bytes(incremental, seed, window_days,
                                                         window.days(), merged.flows_ingested());
      ASSERT_EQ(incremental_bytes, batch_bytes)
          << "snapshot bytes diverged at day " << day << " threads " << threads;
    }
    ++compared_steps;
  }
  EXPECT_GE(compared_steps, 2);
}

INSTANTIATE_TEST_SUITE_P(Grid, IngestDifferential, ::testing::ValuesIn(grid_cases()),
                         [](const ::testing::TestParamInfo<GridCase>& info) {
                           std::ostringstream os;
                           os << info.param;
                           return os.str();
                         });

// ---------------------------------------------------------------------------
// Daemon-level differential over a real simulated flow stream.

/// Write `days` tiny-simulation days as a flow stream (what `mtscope
/// stream` does) and return the path.
std::string write_stream_file(const sim::Simulation& simulation, std::uint64_t seed, int days,
                              const std::string& name) {
  const std::string path = ::testing::TempDir() + "ingest_" + name + ".mtflow";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  EXPECT_TRUE(out.good());
  ingest::FlowStreamWriter writer(out);
  writer.write_header({seed, true});
  for (int day = 0; day < days; ++day) {
    for (std::size_t ixp = 0; ixp < simulation.ixps().size(); ++ixp) {
      const auto data = simulation.run_ixp_day(ixp, day);
      writer.write_dataset(day, simulation.ixps()[ixp].sampling_rate(),
                           simulation.ixps()[ixp].spec().code, data.flows);
    }
    writer.write_day_end(day);
  }
  writer.write_stream_end();
  EXPECT_TRUE(writer.ok());
  return path;
}

TEST(IngestDaemon, EveryPublishedEpochIsByteIdenticalToBatch) {
  constexpr std::uint64_t kSeed = 42;
  constexpr int kDays = 4;
  constexpr int kWindow = 2;
  const sim::Simulation simulation(sim::SimConfig::tiny(kSeed));
  const auto stream_path = write_stream_file(simulation, kSeed, kDays, "differential");
  const std::string snapshot_path = ::testing::TempDir() + "ingest_differential.snap";

  ingest::IngestConfig config;
  config.source_path = stream_path;
  config.snapshot_out = snapshot_path;
  config.window_days = kWindow;
  config.cadence_days = 1;
  config.threads = 2;  // must not change published bytes
  config.created_unix_s = 1'700'000'000;

  // Capture what each epoch published — both the in-memory snapshot and
  // the actual file bytes on disk at that instant.
  std::vector<std::vector<std::uint8_t>> published_bytes;
  std::vector<std::vector<std::uint8_t>> file_bytes;
  ingest::IngestDaemon daemon(config);
  daemon.on_publish = [&](std::uint64_t, const serve::TelescopeSnapshot& snapshot) {
    published_bytes.push_back(serve::serialize_snapshot(snapshot));
    std::ifstream in(snapshot_path, std::ios::binary);
    file_bytes.emplace_back(std::istreambuf_iterator<char>(in),
                            std::istreambuf_iterator<char>());
  };
  const auto finished = daemon.run();
  ASSERT_TRUE(finished.ok()) << finished.error().to_string();
  EXPECT_EQ(finished.value().publishes, static_cast<std::uint64_t>(kDays));
  EXPECT_EQ(finished.value().publish_failures, 0u);
  EXPECT_EQ(finished.value().days_evicted, static_cast<std::uint64_t>(kDays - kWindow));
  ASSERT_EQ(published_bytes.size(), static_cast<std::size_t>(kDays));

  const auto ixps = pipeline::all_ixps(simulation);
  const auto registry = routing::SpecialPurposeRegistry::standard();
  for (int epoch = 1; epoch <= kDays; ++epoch) {
    const int newest = epoch - 1;
    std::vector<int> days;
    for (int d = std::max(0, newest - kWindow + 1); d <= newest; ++d) days.push_back(d);

    // From-scratch batch pipeline over this epoch's window, exactly as a
    // one-shot `mtscope infer --analytics` over those days would run it —
    // the daemon attaches the ANALYTICS section by default, so the batch
    // side must carry the matrix too for the bytes to have a chance.
    pipeline::CollectOptions collect_options;
    collect_options.analytics = true;
    const auto stats = pipeline::collect_stats(simulation, ixps, days, collect_options);
    const std::uint64_t tolerance =
        pipeline::compute_spoof_tolerance(stats, simulation.plan().unrouted_slash8s());
    pipeline::PipelineConfig pipeline_config;
    pipeline_config.volume_scale = simulation.config().volume_scale;
    pipeline_config.spoof_tolerance_pkts = tolerance;
    const pipeline::InferenceEngine engine(pipeline_config, simulation.plan().rib(), registry);
    const auto result = engine.infer(stats);
    const auto meta = ingest::publish_metadata({kSeed, true}, kWindow, days,
                                               stats.flows_ingested(), tolerance,
                                               config.created_unix_s);
    auto batch_snapshot = serve::build_snapshot(result, simulation.plan().rib(), meta);
    batch_snapshot.analytics = serve::build_analytics(
        stats.ibr(), batch_snapshot, ingest::plan_labeler(simulation.plan()));
    const auto batch_bytes = serve::serialize_snapshot(batch_snapshot);

    EXPECT_EQ(published_bytes[epoch - 1], batch_bytes) << "epoch " << epoch;
    EXPECT_EQ(file_bytes[epoch - 1], batch_bytes) << "epoch " << epoch << " (on disk)";
  }
}

// ---------------------------------------------------------------------------
// Zero-touch end to end: daemon -> atomic publish -> watching server,
// under continuous client queries.

struct EndToEndClient {
  int fd = -1;

  explicit EndToEndClient(std::uint16_t port) {
    fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return;
    const timeval timeout{10, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      fd = -1;
    }
  }

  ~EndToEndClient() {
    if (fd >= 0) ::close(fd);
  }

  bool send_all(std::string_view data) const {
    std::size_t sent = 0;
    while (sent < data.size()) {
      const auto n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  std::vector<std::string> read_lines(std::size_t count) const {
    std::vector<std::string> lines;
    std::string buffer;
    char chunk[4096];
    while (lines.size() < count) {
      const auto n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      buffer.append(chunk, static_cast<std::size_t>(n));
      std::size_t start = 0;
      for (std::size_t nl; (nl = buffer.find('\n', start)) != std::string::npos;
           start = nl + 1) {
        lines.push_back(buffer.substr(start, nl - start));
      }
      buffer.erase(0, start);
    }
    return lines;
  }
};

TEST(IngestServe, ZeroTouchPublishReachesAWatchingServerWithVerdictContinuity) {
  constexpr std::uint64_t kSeed = 7;
  constexpr int kDays = 3;  // cadence 1 => 3 consecutive epochs
  const sim::Simulation simulation(sim::SimConfig::tiny(kSeed));
  const auto stream_path = write_stream_file(simulation, kSeed, kDays, "e2e");
  const std::string snapshot_path = ::testing::TempDir() + "ingest_e2e.snap";

  ingest::IngestConfig config;
  config.source_path = stream_path;
  config.snapshot_out = snapshot_path;
  config.window_days = 2;
  config.cadence_days = 1;
  config.created_unix_s = 1'700'000'000;

  // Every epoch's index, in publish order — the byte-level ground truth
  // replies are verified against.
  std::mutex epochs_mutex;
  std::vector<std::unique_ptr<serve::TelescopeIndex>> epochs;

  std::unique_ptr<serve::QueryServer> server;
  std::thread server_thread;
  std::atomic<bool> server_up{false};

  ingest::IngestDaemon daemon(config);
  daemon.on_publish = [&](std::uint64_t epoch, const serve::TelescopeSnapshot& snapshot) {
    {
      const std::lock_guard<std::mutex> lock(epochs_mutex);
      epochs.push_back(std::make_unique<serve::TelescopeIndex>(snapshot));
    }
    if (epoch == 1) {
      // First epoch on disk: bring the watching server up on it.
      serve::ServerConfig server_config;
      server_config.snapshot_path = snapshot_path;
      server_config.port = 0;
      server_config.watch_interval_ms = 10;
      server = std::make_unique<serve::QueryServer>(server_config);
      const auto started = server->start();
      ASSERT_TRUE(started.ok()) << started.error().to_string();
      server_thread = std::thread([&] { (void)server->run(); });
      server_up.store(true, std::memory_order_release);
      return;
    }
    // Later epochs: block the producer until the watcher has picked this
    // epoch up with zero touches — manager epoch e == publish ordinal e
    // (the initial load was epoch 1).  The gate makes "three consecutive
    // epochs served" deterministic rather than racy.
    const auto deadline = std::chrono::steady_clock::now() + 10s;
    while (server->manager().epoch() < epoch &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(1ms);
    }
    EXPECT_GE(server->manager().epoch(), epoch) << "watcher missed epoch " << epoch;
  };

  std::thread daemon_thread([&] {
    const auto finished = daemon.run();
    EXPECT_TRUE(finished.ok()) << finished.error().to_string();
    if (finished.ok()) EXPECT_EQ(finished.value().publishes, 3u);
  });

  // Continuous query load while epochs swap underneath.
  const auto deadline = std::chrono::steady_clock::now() + 30s;
  while (!server_up.load(std::memory_order_acquire)) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "first epoch never published";
    std::this_thread::sleep_for(1ms);
  }

  // Probe set: blocks of the first epoch (verdicts that may change as the
  // window slides) plus guaranteed misses.
  std::vector<std::string> probes;
  {
    const std::lock_guard<std::mutex> lock(epochs_mutex);
    const auto& blocks = epochs.front()->snapshot().blocks;
    for (std::size_t i = 0; i < blocks.size() && probes.size() < 12; i += 97) {
      probes.push_back(net::Ipv4Addr((blocks[i].block_index() << 8) | 1).to_string());
    }
  }
  probes.push_back("203.0.113.9");
  probes.push_back("8.8.8.8");

  std::atomic<bool> stop_queries{false};
  std::uint64_t sent = 0, answered = 0, unmatched = 0;
  std::thread query_thread([&] {
    EndToEndClient client(server->port());
    ASSERT_GE(client.fd, 0);
    std::string request;
    for (const auto& ip : probes) request += ip + "\n";
    while (!stop_queries.load(std::memory_order_acquire)) {
      if (!client.send_all(request)) break;
      sent += probes.size();
      const auto lines = client.read_lines(probes.size());
      answered += lines.size();
      if (lines.size() != probes.size()) break;
      // Continuity: every reply must byte-match some published epoch's
      // verdict (the swap may land mid-batch, so neighbouring epochs are
      // both legitimate — but a torn or never-published state is not).
      const std::lock_guard<std::mutex> lock(epochs_mutex);
      for (std::size_t i = 0; i < lines.size(); ++i) {
        const auto addr = net::Ipv4Addr::parse(probes[i]);
        bool matched = false;
        for (const auto& index : epochs) {
          if (lines[i] == serve::format_verdict(*addr, index->lookup(*addr))) {
            matched = true;
            break;
          }
        }
        if (!matched) {
          ++unmatched;
          ADD_FAILURE() << "reply '" << lines[i] << "' matches no published epoch";
        }
      }
    }
  });

  daemon_thread.join();
  stop_queries.store(true, std::memory_order_release);
  query_thread.join();

  ASSERT_TRUE(server != nullptr);
  const auto stats = server->stats();
  server->request_stop();
  server_thread.join();

  EXPECT_GE(epochs.size(), 3u);                      // >= 3 consecutive epochs published
  EXPECT_GE(server->manager().epoch(), 3u);          // ...and picked up zero-touch
  EXPECT_GE(stats.reloads, 2u);                      // epochs 2 and 3 arrived via the watcher
  EXPECT_EQ(stats.reload_failures, 0u);
  EXPECT_EQ(stats.drops, 0u);                        // zero dropped queries
  EXPECT_GT(sent, 0u);
  EXPECT_EQ(answered, sent);                         // every query answered
  EXPECT_EQ(unmatched, 0u);
}

}  // namespace
}  // namespace mtscope
