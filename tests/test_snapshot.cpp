// The snapshot subsystem end to end: round-trip fidelity over real
// inference runs (every seed x threads x shards cell must produce the same
// bytes and survive serialize -> parse -> re-serialize untouched),
// corruption robustness (truncation, bad magic, future versions, flipped
// bits -> typed errors, never crashes), TelescopeIndex lookup correctness
// against the membership sets it was built from, the SnapshotManager
// epoch-swap contract under concurrent readers, and fault injection on
// the atomic publish path (src/ingest/publish.hpp): every crash window
// must leave the target file untouched.  Under MTSCOPE_SANITIZE=thread
// this binary doubles as the serve-layer TSan smoke test.
#include "serve/snapshot.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <map>
#include <optional>
#include <span>
#include <string_view>
#include <thread>
#include <vector>

#include "ingest/publish.hpp"
#include "pipeline/collector.hpp"
#include "pipeline/inference.hpp"
#include "pipeline/parallel.hpp"
#include "pipeline/spoof_tolerance.hpp"
#include "serve/telescope_index.hpp"
#include "sim/simulation.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace mtscope {
namespace {

using serve::BlockClass;
using serve::BlockEntry;
using serve::PrefixEntry;
using serve::RunMetadata;
using serve::TelescopeSnapshot;

// ---------------------------------------------------------------------------
// Real-pipeline fixtures, one per seed, built lazily and shared.

struct SeedBaseline {
  explicit SeedBaseline(std::uint64_t seed)
      : simulation(sim::SimConfig::tiny(seed)),
        ixps(pipeline::all_ixps(simulation)),
        stats(pipeline::collect_stats(simulation, ixps, days)) {
    pipeline::PipelineConfig config;
    config.volume_scale = simulation.config().volume_scale;
    config.spoof_tolerance_pkts =
        pipeline::compute_spoof_tolerance(stats, simulation.plan().unrouted_slash8s());
    engine.emplace(config, simulation.plan().rib(), registry);
    result = engine->infer(stats);
  }

  sim::Simulation simulation;
  std::vector<std::size_t> ixps;
  std::vector<int> days{0};
  pipeline::VantageStats stats;
  routing::SpecialPurposeRegistry registry = routing::SpecialPurposeRegistry::standard();
  std::optional<pipeline::InferenceEngine> engine;
  pipeline::InferenceResult result;
};

const SeedBaseline& baseline_for(std::uint64_t seed) {
  static std::map<std::uint64_t, SeedBaseline> cache;
  return cache.try_emplace(seed, seed).first->second;
}

/// Snapshot metadata is a function of the seed alone (fixed timestamp,
/// canonical thread/shard fields), so producer-configuration independence
/// of the *payload* shows up as byte-identical files.
RunMetadata canonical_meta(std::uint64_t seed) {
  RunMetadata meta;
  meta.seed = seed;
  meta.created_unix_s = 1'700'000'000;
  meta.source = "test tiny";
  return meta;
}

std::vector<std::uint8_t> snapshot_bytes_for(const SeedBaseline& base,
                                             unsigned threads, unsigned shards) {
  pipeline::CollectOptions options;
  options.threads = threads;
  options.shards = shards;
  const auto stats = pipeline::collect_stats(base.simulation, base.ixps, base.days, options);
  const auto result = pipeline::parallel_infer(*base.engine, stats, threads);
  const auto snapshot = serve::build_snapshot(result, base.simulation.plan().rib(),
                                              canonical_meta(base.simulation.config().seed));
  return serve::serialize_snapshot(snapshot);
}

// ---------------------------------------------------------------------------
// Round-trip fidelity over real inference runs.

class SnapshotRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SnapshotRoundTrip, ParseRestoresEveryField) {
  const SeedBaseline& base = baseline_for(GetParam());
  const auto snapshot = serve::build_snapshot(base.result, base.simulation.plan().rib(),
                                              canonical_meta(GetParam()));
  const auto bytes = serve::serialize_snapshot(snapshot);
  const auto restored = serve::parse_snapshot(bytes);
  ASSERT_TRUE(restored.ok()) << restored.error().to_string();
  EXPECT_EQ(restored.value(), snapshot);
}

TEST_P(SnapshotRoundTrip, ReserializationIsByteIdentical) {
  const SeedBaseline& base = baseline_for(GetParam());
  const auto snapshot = serve::build_snapshot(base.result, base.simulation.plan().rib(),
                                              canonical_meta(GetParam()));
  const auto bytes = serve::serialize_snapshot(snapshot);
  auto restored = serve::parse_snapshot(bytes);
  ASSERT_TRUE(restored.ok()) << restored.error().to_string();
  EXPECT_EQ(serve::serialize_snapshot(restored.value()), bytes);
}

TEST_P(SnapshotRoundTrip, CapturesTheInferenceResult) {
  const SeedBaseline& base = baseline_for(GetParam());
  const auto snapshot = serve::build_snapshot(base.result, base.simulation.plan().rib(),
                                              canonical_meta(GetParam()));
  EXPECT_EQ(snapshot.dark_count, base.result.dark.size());
  EXPECT_EQ(snapshot.unclean_count, base.result.unclean);
  EXPECT_EQ(snapshot.gray_count, base.result.gray);
  EXPECT_EQ(snapshot.funnel, base.result.funnel);
  EXPECT_EQ(snapshot.blocks.size(),
            base.result.dark.size() + base.result.unclean + base.result.gray);
  for (std::size_t i = 1; i < snapshot.blocks.size(); ++i) {
    ASSERT_LT(snapshot.blocks[i - 1].block_index(), snapshot.blocks[i].block_index());
  }
  for (std::size_t i = 1; i < snapshot.prefixes.size(); ++i) {
    ASSERT_LT(std::pair(snapshot.prefixes[i - 1].base, snapshot.prefixes[i - 1].length),
              std::pair(snapshot.prefixes[i].base, snapshot.prefixes[i].length));
  }
}

TEST_P(SnapshotRoundTrip, ProducerConfigurationDoesNotChangeTheBytes) {
  // The parallel engine is bit-identical to the serial path, so every
  // threads x shards cell must serialize to the exact same file.
  const SeedBaseline& base = baseline_for(GetParam());
  const auto serial = snapshot_bytes_for(base, 1, 1);
  for (const unsigned threads : {1u, 4u}) {
    for (const unsigned shards : {1u, 16u}) {
      EXPECT_EQ(snapshot_bytes_for(base, threads, shards), serial)
          << threads << " thread(s) x " << shards << " shard(s)";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotRoundTrip, ::testing::Values(42u, 7u, 1337u));

// ---------------------------------------------------------------------------
// TelescopeIndex correctness against the sets the snapshot came from.

TEST(TelescopeIndex, ClassifyAgreesWithMembershipSets) {
  const SeedBaseline& base = baseline_for(42);
  const serve::TelescopeIndex index(serve::build_snapshot(
      base.result, base.simulation.plan().rib(), canonical_meta(42)));

  std::size_t checked = 0;
  base.result.dark.for_each([&](net::Block24 block) {
    ASSERT_EQ(index.classify(block), BlockClass::kDark) << block.to_string();
    ++checked;
  });
  base.result.unclean_blocks.for_each([&](net::Block24 block) {
    ASSERT_EQ(index.classify(block), BlockClass::kUnclean) << block.to_string();
    ++checked;
  });
  base.result.gray_blocks.for_each([&](net::Block24 block) {
    ASSERT_EQ(index.classify(block), BlockClass::kGray) << block.to_string();
    ++checked;
  });
  EXPECT_EQ(checked, index.size());

  // Blocks in no membership set must miss.
  std::size_t misses = 0;
  for (std::uint32_t i = 0; i < (1u << 24) && misses < 1000; i += 4099) {
    const net::Block24 block(i);
    if (!base.result.dark.contains(block) && !base.result.unclean_blocks.contains(block) &&
        !base.result.gray_blocks.contains(block)) {
      ASSERT_EQ(index.classify(block), std::nullopt) << block.to_string();
      ++misses;
    }
  }
  EXPECT_GT(misses, 0u);
}

TEST(TelescopeIndex, LookupReturnsTheCoveringAnnouncement) {
  const SeedBaseline& base = baseline_for(42);
  const serve::TelescopeIndex index(serve::build_snapshot(
      base.result, base.simulation.plan().rib(), canonical_meta(42)));
  const auto& rib = base.simulation.plan().rib();

  std::size_t with_prefix = 0;
  for (const BlockEntry& entry : index.snapshot().blocks) {
    const net::Ipv4Addr addr = entry.block().first_address();
    const auto verdict = index.lookup(addr);
    ASSERT_TRUE(verdict.has_value());
    EXPECT_EQ(verdict->cls, entry.cls());
    const auto covering = rib.lookup(addr);
    if (covering.has_value()) {
      ASSERT_TRUE(verdict->prefix.has_value());
      EXPECT_EQ(*verdict->prefix, covering->first);
      ASSERT_TRUE(verdict->origin.has_value());
      EXPECT_EQ(*verdict->origin, covering->second.origin);
      ++with_prefix;
    } else {
      EXPECT_FALSE(verdict->prefix.has_value());
    }
  }
  EXPECT_GT(with_prefix, 0u);
}

TEST(TelescopeIndex, RangeQueriesMatchPointLookups) {
  const SeedBaseline& base = baseline_for(42);
  const serve::TelescopeIndex index(serve::build_snapshot(
      base.result, base.simulation.plan().rib(), canonical_meta(42)));

  // The whole space: every block, in ascending order.
  std::uint32_t previous = 0;
  std::size_t visited = 0;
  index.for_each_in(net::Prefix(net::Ipv4Addr(0), 0), [&](net::Block24 block, BlockClass cls) {
    if (visited > 0) {
      ASSERT_GT(block.index(), previous);
    }
    previous = block.index();
    ASSERT_EQ(index.classify(block), cls);
    ++visited;
  });
  EXPECT_EQ(visited, index.size());
  EXPECT_EQ(index.count_in(net::Prefix(net::Ipv4Addr(0), 0)), index.size());

  // A mid-size range around the first classified block.
  ASSERT_FALSE(index.snapshot().blocks.empty());
  const net::Block24 first = index.snapshot().blocks.front().block();
  const net::Prefix slash16(net::Ipv4Addr(first.first_address().value() & 0xffff0000u), 16);
  std::size_t manual = 0;
  for (std::uint32_t i = 0; i < 256; ++i) {
    if (index.classify(net::Block24(slash16.first_block24().index() + i)).has_value()) ++manual;
  }
  EXPECT_EQ(index.count_in(slash16), manual);
  EXPECT_GT(manual, 0u);

  // Prefixes longer than a /24 identify less than a block; nothing to visit.
  EXPECT_EQ(index.count_in(net::Prefix(net::Ipv4Addr(0), 25)), 0u);
}

// ---------------------------------------------------------------------------
// Corruption robustness on a small hand-built snapshot.

TelescopeSnapshot sample_snapshot() {
  TelescopeSnapshot s;
  s.meta = canonical_meta(9);
  s.meta.flows_ingested = 12345;
  s.funnel.seen = 100;
  s.funnel.after_tcp = 90;
  s.funnel.after_size = 80;
  s.funnel.after_source = 70;
  s.funnel.after_reserved = 60;
  s.funnel.after_routed = 50;
  s.funnel.after_volume = 40;
  s.prefixes = {
      {0x0a000000u, 65001, 8},   // 10.0.0.0/8
      {0x0a010000u, 65002, 16},  // 10.1.0.0/16
  };
  s.blocks = {
      BlockEntry::make(net::Block24(0x0a0000), BlockClass::kDark, 0),
      BlockEntry::make(net::Block24(0x0a0100), BlockClass::kGray, 1),
      BlockEntry::make(net::Block24(0x0a0101), BlockClass::kDark, 1),
      BlockEntry::make(net::Block24(0x0b0000), BlockClass::kUnclean, BlockEntry::kNoPrefix),
  };
  s.dark_count = 2;
  s.unclean_count = 1;
  s.gray_count = 1;
  return s;
}

void expect_error(std::span<const std::uint8_t> bytes, std::string_view code,
                  std::string_view context) {
  const auto parsed = serve::parse_snapshot(bytes);
  ASSERT_FALSE(parsed.ok()) << context;
  EXPECT_EQ(parsed.error().code, code)
      << context << ": " << parsed.error().to_string();
}

TEST(SnapshotCorruption, SampleRoundTrips) {
  const auto sample = sample_snapshot();
  const auto bytes = serve::serialize_snapshot(sample);
  const auto restored = serve::parse_snapshot(bytes);
  ASSERT_TRUE(restored.ok()) << restored.error().to_string();
  EXPECT_EQ(restored.value(), sample);
}

TEST(SnapshotCorruption, TruncationAtEveryLengthIsATypedError) {
  const auto bytes = serve::serialize_snapshot(sample_snapshot());
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const auto parsed = serve::parse_snapshot(std::span(bytes.data(), cut));
    ASSERT_FALSE(parsed.ok()) << "cut at " << cut;
    EXPECT_EQ(parsed.error().code, "snapshot.truncated")
        << "cut at " << cut << ": " << parsed.error().to_string();
  }
}

TEST(SnapshotCorruption, TrailingGarbageRejected) {
  auto bytes = serve::serialize_snapshot(sample_snapshot());
  bytes.push_back(0);
  expect_error(bytes, "snapshot.truncated", "one trailing byte");
}

TEST(SnapshotCorruption, BadMagicRejected) {
  auto bytes = serve::serialize_snapshot(sample_snapshot());
  bytes[0] ^= 0x01;
  expect_error(bytes, "snapshot.bad_magic", "flipped first byte");
}

TEST(SnapshotCorruption, NewlineTranslationRejected) {
  // A text-mode transport turning the magic's \r\n into \n shifts the
  // whole file; the PNG-style magic catches it immediately.
  auto bytes = serve::serialize_snapshot(sample_snapshot());
  bytes.erase(bytes.begin() + 6);  // drop the \r
  expect_error(bytes, "snapshot.bad_magic", "CRLF -> LF translation");
}

TEST(SnapshotCorruption, FutureVersionRejected) {
  auto bytes = serve::serialize_snapshot(sample_snapshot());
  bytes[8] = static_cast<std::uint8_t>(serve::kSnapshotVersion + 1);
  bytes[9] = 0;
  expect_error(bytes, "snapshot.unsupported_version", "version + 1");
  bytes[8] = 0;
  expect_error(bytes, "snapshot.unsupported_version", "version 0");
}

TEST(SnapshotCorruption, FlippedBitsAreCaughtByChecksums) {
  const auto clean = serve::serialize_snapshot(sample_snapshot());
  // One bit in the section table (sealed by table_crc)...
  auto bytes = clean;
  bytes[28] ^= 0x40;
  expect_error(bytes, "snapshot.bad_crc", "bit flip in the section table");
  // ...and one in each section payload (sealed by its own crc).
  const std::size_t payload_start = 24 + 4 * 24 + 4;
  for (const std::size_t at : {payload_start, payload_start + 60, clean.size() - 1}) {
    bytes = clean;
    bytes[at] ^= 0x10;
    expect_error(bytes, "snapshot.bad_crc", "bit flip at payload offset");
  }
}

TEST(SnapshotCorruption, MalformedPayloadsRejected) {
  {
    auto sample = sample_snapshot();
    std::swap(sample.blocks[1], sample.blocks[2]);  // break strict ordering
    expect_error(serve::serialize_snapshot(sample), "snapshot.bad_section",
                 "unsorted blocks");
  }
  {
    auto sample = sample_snapshot();
    sample.blocks[0].prefix_id = 7;  // dangling reference
    expect_error(serve::serialize_snapshot(sample), "snapshot.bad_section",
                 "dangling prefix id");
  }
  {
    auto sample = sample_snapshot();
    sample.dark_count = 3;  // disagrees with the block records
    expect_error(serve::serialize_snapshot(sample), "snapshot.bad_section",
                 "wrong class total");
  }
  {
    auto sample = sample_snapshot();
    sample.prefixes[1].base = 0x0a010001;  // not canonical for /16
    expect_error(serve::serialize_snapshot(sample), "snapshot.bad_section",
                 "non-canonical prefix");
  }
}

TEST(SnapshotCorruption, SeededSingleByteCorruptionsAllFailTyped) {
  // CRC32 detects every single-byte error, and the format seals every byte
  // — header+table under table_crc, each payload under its section crc —
  // so no single-byte corruption anywhere in the file may parse.  Which
  // typed error fires depends on the byte hit (magic, version, size field,
  // crc); all of them must be snapshot.* — never a crash, never success.
  const auto clean = serve::serialize_snapshot(sample_snapshot());
  util::Rng rng(0xc0ffee);
  for (int i = 0; i < 512; ++i) {
    auto bytes = clean;
    const std::size_t at = rng.uniform(bytes.size());
    const auto flip = static_cast<std::uint8_t>(1 + rng.uniform(255));
    bytes[at] ^= flip;
    const auto parsed = serve::parse_snapshot(bytes);
    ASSERT_FALSE(parsed.ok()) << "byte " << at << " ^= " << int{flip} << " parsed clean";
    EXPECT_TRUE(parsed.error().code.starts_with("snapshot."))
        << "byte " << at << ": " << parsed.error().to_string();
  }
}

TEST(SnapshotFile, WriteReadRoundTrip) {
  const auto sample = sample_snapshot();
  const std::string path = ::testing::TempDir() + "mtscope_test_snapshot.snap";
  const auto written = serve::write_snapshot_file(sample, path);
  ASSERT_TRUE(written.ok()) << written.error().to_string();
  EXPECT_EQ(written.value(), serve::serialize_snapshot(sample).size());
  const auto restored = serve::read_snapshot_file(path);
  ASSERT_TRUE(restored.ok()) << restored.error().to_string();
  EXPECT_EQ(restored.value(), sample);
  std::remove(path.c_str());
}

TEST(SnapshotFile, MissingFileIsAnIoError) {
  const auto result = serve::read_snapshot_file("/nonexistent/mtscope.snap");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "snapshot.io");
}

// ---------------------------------------------------------------------------
// Atomic publish fault injection: every crash window in
// ingest::publish_snapshot must leave the target path untouched, and the
// one failure it cannot prevent (silent bit rot) must be caught by the
// reader's CRCs instead.

std::optional<std::vector<std::uint8_t>> file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

TelescopeSnapshot variant_snapshot() {
  auto s = sample_snapshot();
  s.blocks.push_back(
      BlockEntry::make(net::Block24(0x0c0000), BlockClass::kDark, BlockEntry::kNoPrefix));
  ++s.dark_count;
  return s;
}

struct PublishFixture : ::testing::Test {
  const std::string path = ::testing::TempDir() + "mtscope_publish_fault.snap";
  const std::string temp = ingest::publish_temp_path(path);

  void TearDown() override {
    std::remove(path.c_str());
    std::remove(temp.c_str());
  }
};

TEST_F(PublishFixture, CleanPublishIsCompleteAndLeavesNoTemp) {
  const auto sample = sample_snapshot();
  const auto published = ingest::publish_snapshot(sample, path);
  ASSERT_TRUE(published.ok()) << published.error().to_string();
  const auto expected = serve::serialize_snapshot(sample);
  EXPECT_EQ(published.value(), expected.size());
  EXPECT_EQ(file_bytes(path), expected);
  EXPECT_FALSE(file_bytes(temp).has_value()) << "temp file left behind";
}

TEST_F(PublishFixture, TornWriteLeavesTheTargetUntouched) {
  // ENOSPC / power cut mid-write: the temp file stops short, the rename
  // never happens, and whatever was being served keeps being served.
  const auto old = sample_snapshot();
  ASSERT_TRUE(ingest::publish_snapshot(old, path).ok());
  const auto old_bytes = file_bytes(path);

  ingest::PublishFaults faults;
  for (const std::size_t cut : {std::size_t{0}, std::size_t{10}, std::size_t{100}}) {
    faults.truncate_after_bytes = cut;
    const auto torn = ingest::publish_snapshot(variant_snapshot(), path, &faults);
    ASSERT_FALSE(torn.ok()) << "cut at " << cut;
    EXPECT_EQ(torn.error().code, "publish.torn") << "cut at " << cut;
    EXPECT_EQ(file_bytes(path), old_bytes) << "cut at " << cut;
  }

  // Recovery: the next clean publish overwrites the stale temp and swaps.
  const auto recovered = ingest::publish_snapshot(variant_snapshot(), path);
  ASSERT_TRUE(recovered.ok()) << recovered.error().to_string();
  EXPECT_EQ(file_bytes(path), serve::serialize_snapshot(variant_snapshot()));
}

TEST_F(PublishFixture, TornFirstPublishLeavesNoTargetAtAll) {
  ingest::PublishFaults faults;
  faults.truncate_after_bytes = 10;
  const auto torn = ingest::publish_snapshot(sample_snapshot(), path, &faults);
  ASSERT_FALSE(torn.ok());
  EXPECT_EQ(torn.error().code, "publish.torn");
  EXPECT_FALSE(file_bytes(path).has_value()) << "torn publish materialised the target";
}

TEST_F(PublishFixture, CrashBeforeRenameLeavesDurableTempAndOldTarget) {
  // The narrowest window: the image is fully written and fsynced but the
  // swap has not happened.  The target must be the old file; the temp must
  // be the complete new image (durable, parseable), and the next publish
  // must reclaim it.
  const auto old = sample_snapshot();
  ASSERT_TRUE(ingest::publish_snapshot(old, path).ok());

  ingest::PublishFaults faults;
  faults.fail_before_rename = true;
  const auto crashed = ingest::publish_snapshot(variant_snapshot(), path, &faults);
  ASSERT_FALSE(crashed.ok());
  EXPECT_EQ(crashed.error().code, "publish.crashed");
  EXPECT_EQ(file_bytes(path), serve::serialize_snapshot(old));

  const auto staged = file_bytes(temp);
  ASSERT_TRUE(staged.has_value());
  EXPECT_EQ(*staged, serve::serialize_snapshot(variant_snapshot()));
  const auto parsed = serve::parse_snapshot(*staged);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();

  const auto recovered = ingest::publish_snapshot(variant_snapshot(), path);
  ASSERT_TRUE(recovered.ok()) << recovered.error().to_string();
  EXPECT_EQ(file_bytes(path), serve::serialize_snapshot(variant_snapshot()));
  EXPECT_FALSE(file_bytes(temp).has_value());
}

TEST_F(PublishFixture, SilentCorruptionIsCaughtByTheReader) {
  // Bit rot between serialize and write is the one fault the publish path
  // cannot see; it "succeeds", and the defence is the reader's checksums.
  ingest::PublishFaults faults;
  faults.corrupt_first_byte = true;
  const auto published = ingest::publish_snapshot(sample_snapshot(), path, &faults);
  ASSERT_TRUE(published.ok()) << published.error().to_string();

  const auto read = serve::read_snapshot_file(path);
  ASSERT_FALSE(read.ok()) << "corrupt snapshot parsed clean";
  EXPECT_TRUE(read.error().code.starts_with("snapshot."))
      << read.error().to_string();
}

TEST_F(PublishFixture, UnwritableDirectoryIsATypedIoError) {
  const auto result =
      ingest::publish_snapshot(sample_snapshot(), "/nonexistent/dir/mtscope.snap");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "publish.io");
}

TEST(Snapshot, ClassNamesAreStable) {
  EXPECT_EQ(serve::to_string(BlockClass::kDark), "dark");
  EXPECT_EQ(serve::to_string(BlockClass::kUnclean), "unclean");
  EXPECT_EQ(serve::to_string(BlockClass::kGray), "gray");
}

// ---------------------------------------------------------------------------
// SnapshotManager: epoch-swap under concurrent readers.

TEST(SnapshotManager, EpochAdvancesPerInstall) {
  serve::SnapshotManager manager;
  EXPECT_EQ(manager.current(), nullptr);
  EXPECT_EQ(manager.epoch(), 0u);
  const auto index = std::make_shared<const serve::TelescopeIndex>(sample_snapshot());
  EXPECT_EQ(manager.install(index), 1u);
  EXPECT_EQ(manager.current(), index);
  EXPECT_EQ(manager.install(index), 2u);
  EXPECT_EQ(manager.epoch(), 2u);
}

TEST(SnapshotManager, ConcurrentReadersSurviveHotSwaps) {
  // Readers hammer classify() through current() while a writer swaps
  // between two live indexes; every observation must be internally
  // consistent with one of the two.  TSan (tsan_serve_smoke) proves the
  // absence of data races; the assertions prove the absence of torn reads.
  auto variant = sample_snapshot();
  variant.blocks.push_back(
      BlockEntry::make(net::Block24(0x0c0000), BlockClass::kDark, BlockEntry::kNoPrefix));
  ++variant.dark_count;
  const auto a = std::make_shared<const serve::TelescopeIndex>(sample_snapshot());
  const auto b = std::make_shared<const serve::TelescopeIndex>(variant);

  serve::SnapshotManager manager;
  manager.install(a);

  constexpr int kSwaps = 2000;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> observations{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      const net::Ipv4Addr probe(0x0c000001);  // present in b, absent in a
      // Keep observing until the writer is done AND this reader has seen
      // something — on a single core the whole swap loop can complete
      // before any reader is first scheduled.
      std::uint64_t mine = 0;
      while (!stop.load(std::memory_order_relaxed) || mine == 0) {
        const auto index = manager.current();
        ASSERT_NE(index, nullptr);
        const bool in_b = index->size() == b->size();
        EXPECT_EQ(index->classify(probe).has_value(), in_b);
        EXPECT_EQ(index->classify(net::Block24(0x0a0000)), BlockClass::kDark);
        ++mine;
        observations.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int i = 0; i < kSwaps; ++i) {
    manager.install((i % 2 == 0) ? b : a);
    if (i % 64 == 0) std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& reader : readers) reader.join();

  EXPECT_EQ(manager.epoch(), static_cast<std::uint64_t>(kSwaps) + 1);
  EXPECT_GT(observations.load(), 0u);
}

}  // namespace
}  // namespace mtscope
