#include "net/checksum.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mtscope::net {
namespace {

// Classic RFC 1071 worked example: checksum of 00 01 f2 03 f4 f5 f6 f7.
TEST(Checksum, Rfc1071Vector) {
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  // One's complement sum = 0xddf2; checksum = ~0xddf2 = 0x220d.
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(Checksum, EmptyBufferIsAllOnes) {
  EXPECT_EQ(internet_checksum({}), 0xffff);
}

TEST(Checksum, OddLengthPadsWithZero) {
  const std::uint8_t data[] = {0xab};
  // Word = 0xab00; sum = 0xab00; checksum = ~0xab00 = 0x54ff.
  EXPECT_EQ(internet_checksum(data), 0x54ff);
}

TEST(Checksum, VerificationYieldsZero) {
  // A buffer with its own checksum embedded sums to zero.
  std::vector<std::uint8_t> header = {0x45, 0x00, 0x00, 0x28, 0x00, 0x00, 0x40, 0x00,
                                      0x40, 0x06, 0x00, 0x00, 0x0a, 0x00, 0x00, 0x01,
                                      0x0a, 0x00, 0x00, 0x02};
  const std::uint16_t sum = internet_checksum(header);
  header[10] = static_cast<std::uint8_t>(sum >> 8);
  header[11] = static_cast<std::uint8_t>(sum & 0xff);
  EXPECT_EQ(internet_checksum(header), 0);
}

TEST(Checksum, IncrementalMatchesOneShot) {
  std::vector<std::uint8_t> data;
  for (int i = 0; i < 101; ++i) data.push_back(static_cast<std::uint8_t>(i * 37));

  ChecksumAccumulator whole;
  whole.update(data);

  ChecksumAccumulator chunked;
  chunked.update(std::span<const std::uint8_t>(data.data(), 50));
  chunked.update(std::span<const std::uint8_t>(data.data() + 50, 51));
  // NOTE: 50 is even so no mid-word straddle here.
  EXPECT_EQ(whole.finish(), chunked.finish());
}

TEST(Checksum, IncrementalOddBoundary) {
  std::vector<std::uint8_t> data = {1, 2, 3, 4, 5, 6};
  ChecksumAccumulator whole;
  whole.update(data);

  ChecksumAccumulator chunked;
  chunked.update(std::span<const std::uint8_t>(data.data(), 3));   // odd split
  chunked.update(std::span<const std::uint8_t>(data.data() + 3, 3));
  EXPECT_EQ(whole.finish(), chunked.finish());
}

TEST(Checksum, UpdateWord) {
  ChecksumAccumulator a;
  a.update_word(0x1234);
  a.update_word(0x5678);
  const std::uint8_t raw[] = {0x12, 0x34, 0x56, 0x78};
  EXPECT_EQ(a.finish(), internet_checksum(raw));
}

TEST(Checksum, CarryFolding) {
  // Many 0xffff words force repeated carry folds.
  std::vector<std::uint8_t> data(1 << 16, 0xff);
  const std::uint16_t sum = internet_checksum(data);
  // Sum of N 0xffff words folds back to 0xffff; complement = 0.
  EXPECT_EQ(sum, 0);
}

}  // namespace
}  // namespace mtscope::net
